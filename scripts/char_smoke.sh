#!/usr/bin/env bash
# char_smoke.sh — end-to-end smoke test of the trace ingestion + workload
# characterization suite (internal/btrace, cmd/polychar).
#
# Checks, in order:
#   1. the Figure 8 placement table (polychar -all) is byte-identical to
#      the committed golden scripts/golden/fig8_char_300k.txt, and
#      byte-identical across shard counts (-j 1 vs -j 4),
#   2. the round-trip fidelity gate: every Table 1 stand-in is exported
#      to a PBT1 trace by polysim -emit-trace, re-imported and profiled
#      by polychar -trace, and the synthesized stand-in's gshare
#      misprediction rate matches the trace's within ±10% relative
#      (traces below the 0.5% synthesis floor are exempt, like the
#      TestRoundTripFidelity gate),
#   3. polysim -import-trace simulates a synthesized stand-in end to end,
#   4. corrupt traces fail with a typed diagnostic, not a panic.
#
# Characterization artifacts are left in CHAR_OUT (default: a temp dir;
# CI sets it to a workspace path and uploads it when the job fails).
set -euo pipefail

WORKDIR="$(mktemp -d)"
CHAR_OUT="${CHAR_OUT:-$WORKDIR/char}"
mkdir -p "$CHAR_OUT"
trap 'rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."

INSTS=300000
GOLDEN=scripts/golden/fig8_char_300k.txt

echo "== building =="
go build -o "$WORKDIR/polysim" ./cmd/polysim
go build -o "$WORKDIR/polychar" ./cmd/polychar

echo "== figure 8 placement vs committed golden =="
"$WORKDIR/polychar" -all -insts "$INSTS" -j 4 >"$CHAR_OUT/fig8_char.txt"
if ! diff -u "$GOLDEN" "$CHAR_OUT/fig8_char.txt"; then
    echo "FAIL: placement table diverged from $GOLDEN" >&2
    echo "      (an intentional taxonomy change ships by regenerating it:" >&2
    echo "       go run ./cmd/polychar -all -insts $INSTS -j 4 > $GOLDEN)" >&2
    exit 1
fi
"$WORKDIR/polychar" -all -insts "$INSTS" -j 1 >"$CHAR_OUT/fig8_char_j1.txt"
if ! diff -u "$CHAR_OUT/fig8_char.txt" "$CHAR_OUT/fig8_char_j1.txt"; then
    echo "FAIL: placement table differs between -j 4 and -j 1" >&2
    exit 1
fi
echo "  placement table matches golden and is shard-count independent"

echo "== round-trip fidelity gate: all Table 1 stand-ins =="
for name in compress gcc perl go m88ksim xlisp vortex jpeg; do
    trace="$CHAR_OUT/$name.pbt.gz"
    "$WORKDIR/polysim" -workload "$name" -insts "$INSTS" -emit-trace "$trace" \
        >"$CHAR_OUT/$name.emit.txt"
    "$WORKDIR/polychar" -trace "$trace" -insts "$INSTS" -synth -json \
        >"$CHAR_OUT/$name.char.json" 2>"$CHAR_OUT/$name.char.err"
    python3 - "$name" "$CHAR_OUT/$name.char.json" <<'EOF'
import json, sys

name, path = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)

rate = doc["rate"]
synth = doc.get("synth")
assert synth, f"{name}: -synth produced no synthesis report"
if rate < 0.005:
    print(f"  {name:10s} trace rate {rate:.4f} below the synthesis floor; gate n/a")
    sys.exit(0)
rel = synth["rel_err"]
line = (f"  {name:10s} trace {rate:.4f}  stand-in {synth['achieved_rate']:.4f}"
        f"  ({100*rel:+.1f}% relative)  class={doc['class']}")
assert abs(rel) <= 0.10, f"{name}: relative error {100*rel:+.1f}% exceeds the ±10% gate\n{line}"
if synth.get("error"):
    raise AssertionError(f"{name}: calibration near-miss: {synth['error']}")
print(line)
EOF
done

echo "== import-trace closes the loop =="
"$WORKDIR/polysim" -import-trace "$CHAR_OUT/go.pbt.gz" -insts "$INSTS" \
    >"$CHAR_OUT/import_go.txt" 2>&1
grep -q "synthesized trace-" "$CHAR_OUT/import_go.txt" \
    || { echo "FAIL: -import-trace did not report a synthesized stand-in" >&2; exit 1; }
grep -q "IPC" "$CHAR_OUT/import_go.txt" \
    || { echo "FAIL: -import-trace did not produce a simulation report" >&2; exit 1; }
echo "  polysim -import-trace simulated the synthesized stand-in"

echo "== corrupt traces fail closed =="
gunzip -c "$CHAR_OUT/go.pbt.gz" >"$WORKDIR/go.pbt"
head -c 256 "$WORKDIR/go.pbt" >"$WORKDIR/torn.pbt"
if "$WORKDIR/polychar" -trace "$WORKDIR/torn.pbt" >/dev/null 2>"$WORKDIR/torn.err"; then
    echo "FAIL: truncated trace characterized cleanly" >&2
    exit 1
fi
grep -qi "truncat\|corrupt" "$WORKDIR/torn.err" \
    || { echo "FAIL: truncation diagnostic missing:" >&2; cat "$WORKDIR/torn.err" >&2; exit 1; }
printf 'not a trace at all' >"$WORKDIR/junk.pbt"
if "$WORKDIR/polychar" -trace "$WORKDIR/junk.pbt" >/dev/null 2>"$WORKDIR/junk.err"; then
    echo "FAIL: junk bytes characterized cleanly" >&2
    exit 1
fi
grep -qi "magic" "$WORKDIR/junk.err" \
    || { echo "FAIL: bad-magic diagnostic missing:" >&2; cat "$WORKDIR/junk.err" >&2; exit 1; }
echo "  truncation and bad magic both fail with typed diagnostics"

echo "PASS: char smoke (artifacts in $CHAR_OUT)"
