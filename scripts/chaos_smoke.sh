#!/usr/bin/env bash
# chaos_smoke.sh — end-to-end robustness smoke test.
#
# Four independent checks:
#   1. Micro-architectural chaos: every deterministic fault the injector
#      can plant (rename bit flips, dropped wakeups, free-list corruption,
#      CTX-tag flips) surfaces as a typed *pipeline.MachineCheckError under
#      the invariant auditor — never a raw crash (go test ./internal/faultinject).
#   2. Determinism: experiment output with the auditor off is byte-identical
#      to the committed golden table, and turning the auditor on changes
#      nothing (auditing is observation-only).
#   3. Crash containment: a polyserve worker panicking repeatedly fails only
#      its own jobs; the service stays healthy, and the offending request is
#      quarantined (HTTP 403 + /v1/quarantine) after 3 crashes.
#   4. Journal recovery: a restart over a journal with a torn (half-written)
#      record resumes every intact record and counts the damage in
#      journal_dropped, instead of failing startup or losing jobs.
set -euo pipefail

PORT="${PORT:-18090}"
BASE="http://127.0.0.1:${PORT}/v1"
WORKDIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."

echo "== building =="
go build -o "$WORKDIR/polyserve" ./cmd/polyserve
go build -o "$WORKDIR/experiments" ./cmd/experiments

echo "== 1. injected micro-architectural faults become machine checks =="
go test -count=1 ./internal/faultinject

echo "== 2. audit-off output is bit-identical to the committed golden =="
"$WORKDIR/experiments" -exp table1 -bench compress -insts 50000 -audit off | sed '1d;$d' > "$WORKDIR/off.txt"
if ! diff -u scripts/golden/table1_compress_50k.txt "$WORKDIR/off.txt"; then
    echo "FAIL: audit-off output drifted from the committed golden" >&2
    exit 1
fi
"$WORKDIR/experiments" -exp table1 -bench compress -insts 50000 -audit commit | sed '1d;$d' > "$WORKDIR/commit.txt"
if ! diff -u "$WORKDIR/off.txt" "$WORKDIR/commit.txt"; then
    echo "FAIL: enabling the auditor changed simulation output" >&2
    exit 1
fi
echo "golden match (audit off == audit commit == committed golden)"

wait_healthy() {
    for i in $(seq 1 50); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "server did not come up" >&2
    exit 1
}

stat_field() { # stat_field <name>
    curl -fsS "$BASE/stats" | sed -n "s/.*\"$1\": \([0-9]*\).*/\1/p"
}

JOURNAL="$WORKDIR/polyserve.journal"

echo "== 3. worker panics are contained and the request is quarantined =="
"$WORKDIR/polyserve" -addr "127.0.0.1:$PORT" -journal "$JOURNAL" \
    -chaos-panic boom -crash-threshold 3 &
SERVER_PID=$!
wait_healthy
echo "healthz ok"

CHAOS_REQ='{"configs":[{"name":"mono","model":"monopath"}],"title":"boom sweep","benchmarks":["compress"],"insts":10000}'

for n in 1 2 3; do
    ID=$(curl -fsS -X POST "$BASE/jobs" -d "$CHAOS_REQ" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [ -n "$ID" ] || { echo "no job id on chaos submit $n" >&2; exit 1; }
    for i in $(seq 1 100); do
        STATE=$(curl -fsS "$BASE/jobs/$ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
        [ "$STATE" = failed ] && break
        if [ "$STATE" = done ]; then echo "chaos job $n finished instead of crashing" >&2; exit 1; fi
        sleep 0.1
    done
    [ "$STATE" = failed ] || { echo "chaos job $n never failed (state: $STATE)" >&2; exit 1; }
    # The panic must have been contained: the process is still serving.
    curl -fsS "$BASE/healthz" >/dev/null || { echo "server died after panic $n" >&2; exit 1; }
    echo "worker panic $n contained, job $ID failed, server healthy"
done

HTTP_CODE=$(curl -s -o "$WORKDIR/quarantined.json" -w '%{http_code}' -X POST "$BASE/jobs" -d "$CHAOS_REQ")
if [ "$HTTP_CODE" != 403 ]; then
    echo "FAIL: 4th chaos submission got HTTP $HTTP_CODE, want 403: $(cat "$WORKDIR/quarantined.json")" >&2
    exit 1
fi
grep -q quarantine "$WORKDIR/quarantined.json" || { echo "403 body does not mention quarantine" >&2; exit 1; }
curl -fsS "$BASE/quarantine" > "$WORKDIR/qlist.json"
grep -q '"quarantined": true' "$WORKDIR/qlist.json" || { echo "quarantine list missing the offender: $(cat "$WORKDIR/qlist.json")" >&2; exit 1; }
PANICS=$(stat_field worker_panics)
[ "${PANICS:-0}" -ge 3 ] || { echo "worker_panics=$PANICS, want >= 3" >&2; exit 1; }
echo "4th submission refused with 403; quarantine listed; worker_panics=$PANICS"

# A healthy request must still run to completion on the same server.
OK_REQ='{"configs":[{"name":"mono","model":"monopath"}],"benchmarks":["compress"],"insts":10000}'
ID=$(curl -fsS -X POST "$BASE/jobs" -d "$OK_REQ" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
for i in $(seq 1 300); do
    STATE=$(curl -fsS "$BASE/jobs/$ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    [ "$STATE" = done ] && break
    case "$STATE" in failed|cancelled) echo "healthy job $STATE" >&2; exit 1 ;; esac
    sleep 0.1
done
[ "$STATE" = done ] || { echo "healthy job did not finish" >&2; exit 1; }
echo "healthy job still completes alongside the quarantine"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
unset SERVER_PID
echo "clean SIGTERM drain"

echo "== 4. torn journal: restart resumes intact records, drops the tail =="
# Two intact checksummed records plus a third cut off mid-write.
python3 - "$JOURNAL" <<'EOF'
import json, sys, zlib

def record(id):
    payload = json.dumps({
        "id": id,
        "request": {"configs": [{"name": "mono", "model": "monopath"}],
                    "benchmarks": ["compress"], "insts": 10000},
        "submitted_at": "2026-08-06T00:00:00Z",
    }, separators=(",", ":")).encode()
    return b"%08x " % zlib.crc32(payload) + payload + b"\n"

full = record("job-000101") + record("job-000102")
torn = record("job-000103")
with open(sys.argv[1], "wb") as f:
    f.write(full + torn[:len(torn) // 2])
EOF

"$WORKDIR/polyserve" -addr "127.0.0.1:$PORT" -journal "$JOURNAL" &
SERVER_PID=$!
wait_healthy

RESUMED=$(stat_field journal_resumed)
DROPPED=$(stat_field journal_dropped)
[ "${RESUMED:-0}" = 2 ] || { echo "journal_resumed=$RESUMED, want 2" >&2; exit 1; }
[ "${DROPPED:-0}" = 1 ] || { echo "journal_dropped=$DROPPED, want 1" >&2; exit 1; }
echo "resumed 2 intact records, dropped 1 torn record"

# The resumed jobs must actually finish under their journaled IDs.
for ID in job-000101 job-000102; do
    for i in $(seq 1 300); do
        STATE=$(curl -fsS "$BASE/jobs/$ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
        [ "$STATE" = done ] && break
        case "$STATE" in failed|cancelled) echo "resumed job $ID $STATE" >&2; exit 1 ;; esac
        sleep 0.1
    done
    [ "$STATE" = done ] || { echo "resumed job $ID did not finish" >&2; exit 1; }
done
echo "resumed jobs ran to completion"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
unset SERVER_PID

echo "PASS: chaos smoke"
