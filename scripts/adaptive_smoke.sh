#!/usr/bin/env bash
# adaptive_smoke.sh — CI gate for the phase-aware adaptive SEE policy
# family (internal/policy + the fig-adaptive experiment).
#
# Runs fig-adaptive on the m88ksim-phased showcase workload (the phased
# PVN-anomaly stand-in) at a reduced instruction count and checks:
#   1. the rendered table is byte-identical to the committed golden
#      scripts/golden/adaptive_smoke_150k.txt, and byte-identical across
#      shard counts (-j 1 vs -j 4) — the deterministic-scheduler contract
#      extended to the data-dependent two-pass oracle, and
#   2. the adaptation gate, on full-precision JSON output: the online
#      bandit's IPC strictly beats every static policy in its candidate
#      set, and reaches at least 90% of the per-epoch oracle's IPC.
#
# Artifacts are left in ADAPTIVE_OUT (default: a temp dir; CI sets it to
# a workspace path and uploads it when the job fails).
set -euo pipefail

WORKDIR="$(mktemp -d)"
ADAPTIVE_OUT="${ADAPTIVE_OUT:-$WORKDIR/adaptive}"
mkdir -p "$ADAPTIVE_OUT"
trap 'rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."

INSTS=150000
BENCH=m88ksim-phased
GOLDEN=scripts/golden/adaptive_smoke_150k.txt

echo "== building =="
go build -o "$WORKDIR/experiments" ./cmd/experiments

echo "== fig-adaptive vs committed golden =="
"$WORKDIR/experiments" -exp fig-adaptive -bench "$BENCH" -insts "$INSTS" -j 4 \
    | sed '1d' >"$ADAPTIVE_OUT/adaptive.txt"
if ! diff -u "$GOLDEN" "$ADAPTIVE_OUT/adaptive.txt"; then
    echo "FAIL: fig-adaptive table diverged from $GOLDEN" >&2
    echo "      (an intentional policy/workload change ships by regenerating it:" >&2
    echo "       go run ./cmd/experiments -exp fig-adaptive -bench $BENCH -insts $INSTS | sed '1d' > $GOLDEN)" >&2
    exit 1
fi
echo "table byte-identical to golden"

echo "== -j 1 must be byte-identical to -j 4 =="
"$WORKDIR/experiments" -exp fig-adaptive -bench "$BENCH" -insts "$INSTS" -j 1 \
    | sed '1d' >"$ADAPTIVE_OUT/adaptive-j1.txt"
if ! diff -u "$ADAPTIVE_OUT/adaptive.txt" "$ADAPTIVE_OUT/adaptive-j1.txt"; then
    echo "FAIL: fig-adaptive output differs between -j 4 and -j 1" >&2
    exit 1
fi
echo "sharded output byte-identical"

echo "== adaptation gate (full-precision JSON) =="
"$WORKDIR/experiments" -exp fig-adaptive -bench "$BENCH" -insts "$INSTS" -j 4 -json \
    >"$ADAPTIVE_OUT/adaptive.json"
python3 - "$ADAPTIVE_OUT/adaptive.json" <<'PY'
import json, sys
res = json.load(open(sys.argv[1]))["result"]
failed = False
for row in res["Rows"]:
    statics = dict(zip(res["CandidateNames"], row["StaticIPC"]))
    online, oracle = row["OnlineIPC"], row["OracleIPC"]
    print(f"{row['Benchmark']}: statics={statics} oracle={oracle:.4f} "
          f"online={online:.4f} switches={row['Switches']}")
    for name, ipc in statics.items():
        if online <= ipc:
            print(f"FAIL: online IPC {online:.4f} does not beat static/{name} {ipc:.4f}",
                  file=sys.stderr)
            failed = True
    if online < 0.9 * oracle:
        print(f"FAIL: online IPC {online:.4f} below 90% of oracle {oracle:.4f}",
              file=sys.stderr)
        failed = True
sys.exit(1 if failed else 0)
PY
echo "online beats every static and holds >=90% of oracle"

echo "PASS: adaptive smoke"
