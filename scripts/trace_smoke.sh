#!/usr/bin/env bash
# trace_smoke.sh — end-to-end smoke test of the observability subsystem's
# cycle-level tracing.
#
# Runs a 50k-instruction compress cell under polysim with -trace for both
# the see and dualpath models and checks that:
#   1. the exported Chrome/Perfetto trace_event JSON is well-formed: the
#      required keys are present and per-process timestamps are monotonic
#      (so Perfetto and chrome://tracing load it cleanly),
#   2. the Konata export has the expected header and record structure, and
#   3. tracing is observation-only: polysim's statistics report is
#      byte-identical with and without -trace.
#
# Trace artifacts are left in TRACE_OUT (default: a temp dir; CI sets it
# to a workspace path and uploads the directory as a workflow artifact).
set -euo pipefail

WORKDIR="$(mktemp -d)"
TRACE_OUT="${TRACE_OUT:-$WORKDIR/traces}"
mkdir -p "$TRACE_OUT"
trap 'rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."

echo "== building =="
go build -o "$WORKDIR/polysim" ./cmd/polysim
"$WORKDIR/polysim" -version

run_traced() { # model, trace file, extra flags...
    local model="$1" out="$2"
    shift 2
    "$WORKDIR/polysim" -bench compress -insts 50000 -model "$model" \
        -trace "$out" "$@" 2>"$WORKDIR/trace-stderr.txt"
    cat "$WORKDIR/trace-stderr.txt" >&2
}

validate_chrome() { # file
    python3 - "$1" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)  # must be well-formed JSON

events = doc["traceEvents"]
assert events, "traceEvents is empty"
required = {"name", "ph", "ts", "pid", "tid"}
last_ts = {}
n_x = 0
for e in events:
    missing = required - set(e)
    assert not missing, f"event missing keys {missing}: {e}"
    if e["ph"] != "X":
        continue
    n_x += 1
    pid = e["pid"]
    assert e["ts"] >= last_ts.get(pid, 0), \
        f"pid {pid}: ts {e['ts']} after {last_ts[pid]} (not monotonic)"
    last_ts[pid] = e["ts"]
assert n_x > 0, "no complete (ph=X) events"
kinds = {e["name"] for e in events if e["ph"] == "X"}
for kind in ("fetch", "commit"):
    assert kind in kinds, f"no {kind} events in {kinds}"
print(f"  {path}: {n_x} events, kinds={sorted(kinds)}: OK")
EOF
}

echo "== chrome trace: see and dualpath =="
run_traced see "$TRACE_OUT/compress-see.json"
run_traced dualpath "$TRACE_OUT/compress-dualpath.json"
validate_chrome "$TRACE_OUT/compress-see.json"
validate_chrome "$TRACE_OUT/compress-dualpath.json"

echo "== konata trace =="
run_traced see "$TRACE_OUT/compress-see.kanata"
head -1 "$TRACE_OUT/compress-see.kanata" | grep -q '^Kanata' \
    || { echo "FAIL: konata header missing" >&2; exit 1; }
grep -qc '^R' "$TRACE_OUT/compress-see.kanata" \
    || { echo "FAIL: konata trace has no retire records" >&2; exit 1; }
echo "  konata header and retire records: OK"

echo "== tracing is observation-only =="
"$WORKDIR/polysim" -bench compress -insts 50000 -model dualpath >"$WORKDIR/plain.txt"
"$WORKDIR/polysim" -bench compress -insts 50000 -model dualpath \
    -trace "$WORKDIR/scratch.json" >"$WORKDIR/traced.txt" 2>/dev/null
if ! diff -u "$WORKDIR/plain.txt" "$WORKDIR/traced.txt"; then
    echo "FAIL: -trace changed the statistics report" >&2
    exit 1
fi
echo "  report byte-identical with and without -trace"

echo "PASS: trace smoke (artifacts in $TRACE_OUT)"
