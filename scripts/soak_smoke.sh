#!/usr/bin/env bash
# soak_smoke.sh — distributed-mode soak test of the polyserve fleet.
#
# Boots one coordinator and three workers (workers built with -race)
# sharing a content-addressed result store, then runs a 32-cell sweep
# while killing things mid-flight:
#
#   1. SIGKILL worker 2 mid-sweep and restart it,
#   2. SIGKILL worker 3 mid-sweep and restart it,
#   3. SIGKILL the coordinator itself mid-sweep and restart it — the
#      write-ahead journal must resume the job under its original ID,
#      replaying already-completed cells from the shared store,
#
# and finally asserts:
#
#   - the fleet's rendered result is byte-identical to a single-node run
#     of the same request,
#   - zero cells were lost or duplicated: the store holds exactly one
#     entry per cell, the entry names (sha256 of the cell's canonical
#     identity) match the single-node run's store exactly, and the
#     store-conflict counter (divergent re-execution = determinism
#     violation) is zero,
#   - a short open-loop polyload burst against the surviving fleet
#     completes with successes (throughput is reported, not gated here).
#
# Every process log lands in $LOGDIR (kept on failure; CI uploads it).
set -euo pipefail

PORT_C="${PORT_C:-18090}"
PORT_W1="${PORT_W1:-18091}"
PORT_W2="${PORT_W2:-18092}"
PORT_W3="${PORT_W3:-18093}"
BASE="http://127.0.0.1:${PORT_C}/v1"
WORKDIR="$(mktemp -d)"
LOGDIR="${SOAK_LOGS:-$WORKDIR/logs}"
mkdir -p "$LOGDIR"

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "soak_smoke: FAIL: $*" >&2
    echo "soak_smoke: process logs:" >&2
    tail -n 20 "$LOGDIR"/*.log >&2 || true
    exit 1
}

cd "$(dirname "$0")/.."

echo "== building (workers with -race) =="
go build -o "$WORKDIR/polyserve" ./cmd/polyserve
go build -race -o "$WORKDIR/polyserve-race" ./cmd/polyserve
go build -o "$WORKDIR/polyload" ./cmd/polyload

STORE_FLEET="$WORKDIR/store-fleet"
STORE_SOLO="$WORKDIR/store-solo"
WAL="$WORKDIR/coordinator.journal"

json_field() { # json_field <field> — extract a top-level string/number field
    python3 -c "import json,sys; v=json.load(sys.stdin).get('$1',''); print(v if not isinstance(v,(dict,list)) else json.dumps(v))"
}

wait_healthy() { # wait_healthy <url> <what>
    for i in $(seq 1 100); do
        if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    fail "$2 did not come up"
}

# -workers/-queue sized for the polyload phase: jobs are tiny (one cell
# each, mostly memoized), so high concurrency is cheap and the open-loop
# burst needs queue headroom to sustain its target rate.
start_coordinator() {
    "$WORKDIR/polyserve" -role coordinator -node coord -addr "127.0.0.1:$PORT_C" \
        -store "$STORE_FLEET" -journal "$WAL" -lease 2s \
        -workers 64 -queue 8192 -cache 16384 \
        >>"$LOGDIR/coordinator.log" 2>&1 &
    COORD_PID=$!
    PIDS+=("$COORD_PID")
    disown
    wait_healthy "$BASE" "coordinator"
}

# Every process gets an explicit -journal inside WORKDIR: the flag
# defaults to polyserve.journal in the CWD, and a stale journal from an
# unrelated run would be silently resumed into this run's stores,
# corrupting the lost/duplicated-cell audit.
start_worker() { # start_worker <n> <port>
    "$WORKDIR/polyserve-race" -role worker -node "w$1" -addr "127.0.0.1:$2" \
        -coordinator "http://127.0.0.1:$PORT_C" -store "$STORE_FLEET" \
        -journal "$WORKDIR/worker$1.journal" \
        >>"$LOGDIR/worker$1.log" 2>&1 &
    eval "W$1_PID=\$!"
    PIDS+=("$!")
    disown
    wait_healthy "http://127.0.0.1:$2/v1" "worker w$1"
}

store_entries() { ls "$STORE_FLEET" 2>/dev/null | grep -c '\.json$' || true; }

# The reference sweep: 4 models x 8 benchmarks = 32 cells, heavy enough
# (200k insts on race-built workers) that the kill schedule lands
# mid-sweep even on fast machines.
REQ='{"configs":[{"name":"mono","model":"monopath"},{"name":"see","model":"see"},{"name":"dual","model":"dualpath"},{"name":"eager","model":"eager"}],"insts":200000}'
EXPECTED_CELLS=32

echo "== single-node baseline =="
"$WORKDIR/polyserve" -role standalone -addr "127.0.0.1:$PORT_W1" -store "$STORE_SOLO" \
    -journal "$WORKDIR/solo.journal" \
    >>"$LOGDIR/solo.log" 2>&1 &
SOLO_PID=$!
PIDS+=("$SOLO_PID")
disown
wait_healthy "http://127.0.0.1:$PORT_W1/v1" "baseline server"
SOLO_ID=$(curl -fsS -X POST "http://127.0.0.1:$PORT_W1/v1/jobs" -d "$REQ" | json_field id)
[ -n "$SOLO_ID" ] || fail "baseline submit returned no job id"
for i in $(seq 1 600); do
    state=$(curl -fsS "http://127.0.0.1:$PORT_W1/v1/jobs/$SOLO_ID" | json_field state)
    [ "$state" = done ] && break
    case "$state" in failed|cancelled) fail "baseline job $state" ;; esac
    [ "$i" = 600 ] && fail "baseline job did not finish"
    sleep 0.5
done
curl -fsS "http://127.0.0.1:$PORT_W1/v1/results/$SOLO_ID" \
    | python3 -c 'import json,sys; sys.stdout.write(json.load(sys.stdin)["text"])' \
    > "$WORKDIR/solo.txt"
kill "$SOLO_PID" 2>/dev/null || true
wait "$SOLO_PID" 2>/dev/null || true

echo "== starting fleet (1 coordinator + 3 workers) =="
start_coordinator
start_worker 1 "$PORT_W1"
start_worker 2 "$PORT_W2"
start_worker 3 "$PORT_W3"
for i in $(seq 1 100); do
    live=$(curl -fsS "$BASE/workers" | json_field workers_live)
    [ "$live" = 3 ] && break
    [ "$i" = 100 ] && fail "fleet never reached 3 live workers (got '$live')"
    sleep 0.2
done
echo "fleet live: 3 workers"

echo "== submitting the sweep to the coordinator =="
JOB_ID=$(curl -fsS -X POST "$BASE/jobs" -d "$REQ" | json_field id)
[ -n "$JOB_ID" ] || fail "fleet submit returned no job id"
echo "job $JOB_ID"

wait_entries() { # wait_entries <n> — block until the store holds >= n results
    for i in $(seq 1 600); do
        [ "$(store_entries)" -ge "$1" ] && return 0
        state=$(curl -fsS "$BASE/jobs/$JOB_ID" 2>/dev/null | json_field state || true)
        case "$state" in failed|cancelled) fail "fleet job $state before reaching $1 cells" ;; esac
        sleep 0.3
    done
    fail "store never reached $1 entries (at $(store_entries))"
}

echo "== chaos: SIGKILL worker 2 mid-sweep, restart =="
wait_entries 4
kill -9 "$W2_PID"
sleep 1
start_worker 2 "$PORT_W2"

echo "== chaos: SIGKILL worker 3 mid-sweep, restart =="
wait_entries 8
kill -9 "$W3_PID"
sleep 1
start_worker 3 "$PORT_W3"

echo "== chaos: SIGKILL the coordinator mid-sweep, restart =="
wait_entries 12
kill -9 "$COORD_PID"
sleep 1
start_coordinator

echo "== waiting for the WAL-resumed job =="
for i in $(seq 1 600); do
    state=$(curl -fsS "$BASE/jobs/$JOB_ID" 2>/dev/null | json_field state || true)
    case "$state" in
        done) break ;;
        failed|cancelled) fail "resumed job $state" ;;
        "") : ;; # coordinator briefly 404s while reloading the WAL
    esac
    [ "$i" = 600 ] && fail "resumed job never finished (state '$state')"
    sleep 0.5
done

curl -fsS "$BASE/results/$JOB_ID" \
    | python3 -c 'import json,sys; sys.stdout.write(json.load(sys.stdin)["text"])' \
    > "$WORKDIR/fleet.txt"

echo "== audit: byte-identical result =="
if ! cmp -s "$WORKDIR/solo.txt" "$WORKDIR/fleet.txt"; then
    diff "$WORKDIR/solo.txt" "$WORKDIR/fleet.txt" >&2 || true
    fail "fleet result differs from single-node run"
fi
echo "results byte-identical"

echo "== audit: zero lost or duplicated cells =="
got=$(store_entries)
[ "$got" = "$EXPECTED_CELLS" ] || fail "store holds $got entries, want $EXPECTED_CELLS"
# CanonicalHash audit: the store's entry names are sha256 of each cell's
# canonical identity, so the fleet's key set must equal the baseline's.
if ! diff <(ls "$STORE_FLEET" | sort) <(ls "$STORE_SOLO" | sort) >&2; then
    fail "fleet store key set differs from single-node store"
fi
conflicts=$(curl -fsS "$BASE/stats" | json_field store_conflicts)
[ -z "$conflicts" ] || [ "$conflicts" = 0 ] || fail "store recorded $conflicts determinism conflicts"
echo "cell-count + hash audit ok ($got cells, 0 conflicts)"

echo "== polyload burst against the survivors =="
"$WORKDIR/polyload" -url "http://127.0.0.1:$PORT_C" -rate 1200 -duration 5s \
    -hot 0.95 -insts 5000 | tee "$LOGDIR/polyload.log"

echo "soak_smoke: PASS"
