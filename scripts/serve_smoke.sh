#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the polyserve service.
#
# Boots polyserve on a local port, submits the table1 experiment (compress
# only, 50k instructions) through the HTTP API, polls it to completion, and
# checks that:
#   1. the service's rendered table is byte-identical to cmd/experiments
#      output for the same experiment and options, and
#   2. resubmitting the same job is served from the memoization cache
#      (observed via the /v1/stats hit counter),
# then shuts the server down with SIGTERM and expects a clean drain.
set -euo pipefail

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:${PORT}/v1"
WORKDIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."

echo "== building =="
go build -o "$WORKDIR/polyserve" ./cmd/polyserve
go build -o "$WORKDIR/experiments" ./cmd/experiments

echo "== starting polyserve on :$PORT =="
"$WORKDIR/polyserve" -addr "127.0.0.1:$PORT" -journal "$WORKDIR/polyserve.journal" &
SERVER_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "server did not come up" >&2; exit 1; fi
    sleep 0.2
done
echo "healthz ok"

REQ='{"experiment":"table1","benchmarks":["compress"],"insts":50000}'

submit_and_wait() {
    local id
    id=$(curl -fsS -X POST "$BASE/jobs" -d "$REQ" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [ -n "$id" ] || { echo "no job id in submit response" >&2; exit 1; }
    for i in $(seq 1 300); do
        state=$(curl -fsS "$BASE/jobs/$id" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
        case "$state" in
            done) echo "$id"; return 0 ;;
            failed|cancelled) echo "job $id $state" >&2; exit 1 ;;
        esac
        sleep 0.2
    done
    echo "job $id did not finish" >&2
    exit 1
}

echo "== cold run through the service =="
ID1=$(submit_and_wait)
curl -fsS "$BASE/results/$ID1" | python3 -c 'import json,sys; sys.stdout.write(json.load(sys.stdin)["text"])' > "$WORKDIR/served.txt"

echo "== same experiment through cmd/experiments =="
"$WORKDIR/experiments" -exp table1 -bench compress -insts 50000 > "$WORKDIR/cli-raw.txt"
# Strip the CLI's "=== name (X.Xs) ===" header and trailing blank line; the
# remaining bytes are the experiment's rendered table.
sed '1d;$d' "$WORKDIR/cli-raw.txt" > "$WORKDIR/cli.txt"

if ! diff -u "$WORKDIR/cli.txt" "$WORKDIR/served.txt"; then
    echo "FAIL: service output differs from cmd/experiments" >&2
    exit 1
fi
echo "byte-identical to cmd/experiments"

echo "== warm run must hit the cache =="
ID2=$(submit_and_wait)
STATS=$(curl -fsS "$BASE/stats")
HITS=$(echo "$STATS" | sed -n 's/.*"cache_hits": \([0-9]*\).*/\1/p')
if [ -z "$HITS" ] || [ "$HITS" -lt 1 ]; then
    echo "FAIL: expected cache hits after resubmission; stats: $STATS" >&2
    exit 1
fi
echo "cache hits: $HITS"

echo "== graceful shutdown =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
unset SERVER_PID

echo "PASS: polyserve smoke"
