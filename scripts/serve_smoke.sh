#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the polyserve service.
#
# Boots polyserve on a local port, submits the table1 experiment (compress
# only, 50k instructions) through the HTTP API, polls it to completion, and
# checks that:
#   1. the service's rendered table is byte-identical to cmd/experiments
#      output for the same experiment and options, and
#   2. resubmitting the same job is served from the memoization cache
#      (observed via the /v1/stats hit counter),
#   3. cmd/experiments output is byte-identical under -j 8 and -j 1
#      (the deterministic scheduler contract), and
#   4. a /v1/sweeps batch runs sharded to completion, streams its cells,
#      renders the same bytes as the jobs API, and shows up in /metrics,
# then shuts the server down with SIGTERM and expects a clean drain.
set -euo pipefail

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:${PORT}/v1"
WORKDIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

cd "$(dirname "$0")/.."

echo "== building =="
go build -o "$WORKDIR/polyserve" ./cmd/polyserve
go build -o "$WORKDIR/experiments" ./cmd/experiments

echo "== starting polyserve on :$PORT =="
"$WORKDIR/polyserve" -addr "127.0.0.1:$PORT" -journal "$WORKDIR/polyserve.journal" &
SERVER_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "server did not come up" >&2; exit 1; fi
    sleep 0.2
done
echo "healthz ok"

REQ='{"experiment":"table1","benchmarks":["compress"],"insts":50000}'

submit_and_wait() {
    local id
    id=$(curl -fsS -X POST "$BASE/jobs" -d "$REQ" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [ -n "$id" ] || { echo "no job id in submit response" >&2; exit 1; }
    for i in $(seq 1 300); do
        state=$(curl -fsS "$BASE/jobs/$id" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
        case "$state" in
            done) echo "$id"; return 0 ;;
            failed|cancelled) echo "job $id $state" >&2; exit 1 ;;
        esac
        sleep 0.2
    done
    echo "job $id did not finish" >&2
    exit 1
}

echo "== cold run through the service =="
ID1=$(submit_and_wait)
curl -fsS "$BASE/results/$ID1" | python3 -c 'import json,sys; sys.stdout.write(json.load(sys.stdin)["text"])' > "$WORKDIR/served.txt"

echo "== same experiment through cmd/experiments =="
"$WORKDIR/experiments" -exp table1 -bench compress -insts 50000 > "$WORKDIR/cli-raw.txt"
# Strip the CLI's "=== name (X.Xs) ===" header and trailing blank line; the
# remaining bytes are the experiment's rendered table.
sed '1d;$d' "$WORKDIR/cli-raw.txt" > "$WORKDIR/cli.txt"

if ! diff -u "$WORKDIR/cli.txt" "$WORKDIR/served.txt"; then
    echo "FAIL: service output differs from cmd/experiments" >&2
    exit 1
fi
echo "byte-identical to cmd/experiments"

echo "== warm run must hit the cache =="
ID2=$(submit_and_wait)
STATS=$(curl -fsS "$BASE/stats")
HITS=$(echo "$STATS" | sed -n 's/.*"cache_hits": \([0-9]*\).*/\1/p')
if [ -z "$HITS" ] || [ "$HITS" -lt 1 ]; then
    echo "FAIL: expected cache hits after resubmission; stats: $STATS" >&2
    exit 1
fi
echo "cache hits: $HITS"

echo "== -j 8 must be byte-identical to -j 1 =="
"$WORKDIR/experiments" -exp table1 -bench compress -insts 50000 -j 1 | sed '1d' > "$WORKDIR/cli-j1.txt"
"$WORKDIR/experiments" -exp table1 -bench compress -insts 50000 -j 8 | sed '1d' > "$WORKDIR/cli-j8.txt"
if ! diff -u "$WORKDIR/cli-j1.txt" "$WORKDIR/cli-j8.txt"; then
    echo "FAIL: -j 8 output differs from -j 1" >&2
    exit 1
fi
echo "sharded output byte-identical"

echo "== sharded sweep through /v1/sweeps =="
# Four cells: two by model name and two as inline polypath/v2 config
# documents — the TAGE machine (exercising the open predictor registry
# end-to-end through the wire format) and an adaptive-policy machine (the
# fig-adaptive online bandit, exercising the policy registry and the v2
# policy field over the wire).
TAGE_V2='{"schema":"polypath/v2","mode":"polypath","fetch_width":8,"rename_width":8,"commit_width":8,"front_end_stages":5,"window_size":256,"num_int_type0":4,"num_int_type1":4,"num_fp_add":4,"num_fp_mul":4,"num_mem_ports":4,"phys_regs":352,"checkpoints":64,"ctx_history_width":8,"max_paths":24,"max_divergences":0,"predictor":{"kind":"tage","params":{"base_bits":10,"idx_bits":5,"max_hist":64,"min_hist":4,"tables":4,"tag_bits":11}},"confidence":{"kind":"jrs","index_bits":11,"ctr_bits":1,"threshold":0,"enhanced_index":true,"adaptive_min_pvn":0,"adaptive_window":0},"fetch_policy":"exponential","enable_dcache":false,"dcache":{"sets":0,"ways":0,"line_words":0},"dcache_miss_latency":0,"enable_icache":false,"icache":{"sets":0,"ways":0,"line_words":0},"icache_miss_latency":0,"btb_bits":9,"ras_depth":16,"enable_mrc":false,"mrc_bits":8,"resolution_buses":0,"non_speculative_history":false,"max_insts":0}'
ADAPTIVE_V2='{"schema":"polypath/v2","mode":"polypath","fetch_width":4,"rename_width":8,"commit_width":8,"front_end_stages":5,"window_size":256,"num_int_type0":4,"num_int_type1":4,"num_fp_add":4,"num_fp_mul":4,"num_mem_ports":4,"phys_regs":352,"checkpoints":64,"ctx_history_width":8,"max_paths":24,"max_divergences":0,"predictor":{"kind":"gshare","params":{"hist_bits":11}},"confidence":{"kind":"jrs","index_bits":11,"ctr_bits":1,"threshold":0,"enhanced_index":true,"adaptive_min_pvn":0,"adaptive_window":0},"fetch_policy":"exponential","enable_dcache":false,"dcache":{"sets":0,"ways":0,"line_words":0},"dcache_miss_latency":0,"enable_icache":false,"icache":{"sets":0,"ways":0,"line_words":0},"icache_miss_latency":0,"btb_bits":9,"ras_depth":16,"enable_mrc":false,"mrc_bits":8,"resolution_buses":0,"non_speculative_history":false,"max_insts":0,"policy":{"kind":"online","epoch_cycles":1024,"candidates":[{"conf_threshold":0,"max_divergences":0,"fetch_width":0},{"conf_threshold":0,"max_divergences":-1,"fetch_width":0}],"params":{"ema_milli":400,"explore_every":6,"hysteresis_milli":20,"shift_milli":120,"vifr_epochs":0,"vifr_fetch":4,"vifr_lowconf_milli":600}}}'
SWEEP_REQ='{"configs":[{"name":"monopath","model":"monopath"},{"name":"SEE","model":"see"},{"name":"TAGE","config":'"$TAGE_V2"'},{"name":"adaptive","config":'"$ADAPTIVE_V2"'}],"benchmarks":["compress"],"insts":50000,"parallelism":8,"title":"smoke sweep (IPC)"}'
SWEEP_ID=$(curl -fsS -X POST "$BASE/sweeps" -d "$SWEEP_REQ" | sed -n 's/.*"id": "\(sweep-[^"]*\)".*/\1/p')
[ -n "$SWEEP_ID" ] || { echo "no sweep id in submit response" >&2; exit 1; }
for i in $(seq 1 300); do
    state=$(curl -fsS "$BASE/sweeps/$SWEEP_ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    case "$state" in
        done) break ;;
        failed|cancelled) echo "sweep $SWEEP_ID $state" >&2; exit 1 ;;
    esac
    if [ "$i" = 300 ]; then echo "sweep $SWEEP_ID did not finish" >&2; exit 1; fi
    sleep 0.2
done
CELLS=$(curl -fsS "$BASE/sweeps/$SWEEP_ID/cells" | python3 -c 'import json,sys; p=json.load(sys.stdin); print(len(p["cells"]))')
if [ "$CELLS" != 4 ]; then
    echo "FAIL: sweep streamed $CELLS cells, expected 4" >&2
    exit 1
fi
echo "sweep streamed $CELLS cells"
curl -fsS "$BASE/sweeps/$SWEEP_ID/result" | python3 -c 'import json,sys; sys.stdout.write(json.load(sys.stdin)["text"])' > "$WORKDIR/sweep.txt"
REQ='{"configs":[{"name":"monopath","model":"monopath"},{"name":"SEE","model":"see"},{"name":"TAGE","config":'"$TAGE_V2"'},{"name":"adaptive","config":'"$ADAPTIVE_V2"'}],"benchmarks":["compress"],"insts":50000,"title":"smoke sweep (IPC)"}'
JOB_ID=$(submit_and_wait)
curl -fsS "$BASE/results/$JOB_ID" | python3 -c 'import json,sys; sys.stdout.write(json.load(sys.stdin)["text"])' > "$WORKDIR/sweep-job.txt"
if ! diff -u "$WORKDIR/sweep-job.txt" "$WORKDIR/sweep.txt"; then
    echo "FAIL: sharded sweep output differs from the sequential jobs API" >&2
    exit 1
fi
echo "sweep byte-identical to the jobs API"
# Fetch to a file before grepping: `curl | grep -q` under pipefail is
# racy — grep exits on the first match, and curl fails with a write
# error if it had more output in flight.
curl -fsS "http://127.0.0.1:${PORT}/metrics" > "$WORKDIR/metrics.txt"
if ! grep -q 'polyserve_sweeps_total{state="completed"} 1' "$WORKDIR/metrics.txt"; then
    echo "FAIL: /metrics does not report the completed sweep" >&2
    exit 1
fi
echo "sweep visible in /metrics"

echo "== graceful shutdown =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
unset SERVER_PID

echo "PASS: polyserve smoke"
