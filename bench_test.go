// Package repro's root benchmarks regenerate each of the paper's tables
// and figures through the experiment harness (scaled down so a bench run
// completes in minutes), and microbenchmark the simulator's core
// structures. The full-scale regeneration lives in cmd/experiments.
//
//	go test -bench=. -benchmem .
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bpred"
	cachepkg "repro/internal/cache"
	"repro/internal/confidence"
	"repro/internal/core"
	"repro/internal/ctxtag"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/rename"
	"repro/internal/workload"
)

// benchOpts keeps figure regeneration benches fast: two contrasting
// benchmarks (worst and best predictability), short runs.
func benchOpts() harness.Options {
	return harness.Options{TargetInsts: 50_000, Benchmarks: []string{"go", "vortex"}}
}

// BenchmarkTable1 regenerates Table 1 (benchmark characteristics).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Average.MispredictRate, "avg-mispredict-%")
	}
}

// BenchmarkFigure8 regenerates the Figure 8 baseline comparison.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		m := res.Matrix
		b.ReportMetric(m.HarmonicMean("gshare/JRS")/m.HarmonicMean("monopath"), "see-speedup-x")
	}
}

// BenchmarkFigure9 regenerates the predictor-size sweep (reduced to three
// sizes for bench time; cmd/experiments runs the full sweep).
func BenchmarkFigure9(b *testing.B) {
	benchSweep(b, func(o harness.Options) (*harness.SweepResult, error) { return harness.Figure9(o) })
}

// BenchmarkFigure10 regenerates the window-size sweep.
func BenchmarkFigure10(b *testing.B) {
	benchSweep(b, func(o harness.Options) (*harness.SweepResult, error) { return harness.Figure10(o) })
}

// BenchmarkFigure11 regenerates the functional-unit sweep.
func BenchmarkFigure11(b *testing.B) {
	benchSweep(b, func(o harness.Options) (*harness.SweepResult, error) { return harness.Figure11(o) })
}

// BenchmarkFigure12 regenerates the pipeline-depth sweep.
func BenchmarkFigure12(b *testing.B) {
	benchSweep(b, func(o harness.Options) (*harness.SweepResult, error) { return harness.Figure12(o) })
}

func benchSweep(b *testing.B, f func(harness.Options) (*harness.SweepResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := f(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkSimulatorMonopath measures raw simulation throughput
// (simulated instructions per wall-clock second) for the baseline.
func BenchmarkSimulatorMonopath(b *testing.B) {
	benchSimulator(b, core.ConfigMonopath())
}

// BenchmarkSimulatorSEE measures simulation throughput with selective
// eager execution enabled (multi-path overheads included).
func BenchmarkSimulatorSEE(b *testing.B) {
	benchSimulator(b, core.ConfigSEE())
}

func benchSimulator(b *testing.B, cfg core.Config) {
	b.Helper()
	bm, err := workload.ByName("gcc", 100_000)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.Generate(bm.Spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		committed += res.Stats.Committed
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkCycleLoop measures the steady-state cost of one simulated cycle
// (commit/writeback/issue/rename/fetch) on the SEE machine: ns per cycle
// and, with -benchmem, allocations per cycle — the number the hot-path
// optimization pass drives toward zero.
func BenchmarkCycleLoop(b *testing.B) {
	bm, err := workload.ByName("gcc", 100_000)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.Generate(bm.Spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.ConfigSEE()
	m, err := pipeline.New(prog, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Halted() {
			b.StopTimer()
			if m, err = pipeline.New(prog, cfg); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		m.Step()
	}
}

// BenchmarkTracerOff is BenchmarkCycleLoop with tracing explicitly
// detached: the number that must stay within noise of BenchmarkCycleLoop,
// since a disabled tracer costs exactly one nil check per event site.
func BenchmarkTracerOff(b *testing.B) {
	benchCycleLoopTracer(b, nil)
}

// BenchmarkTracerOn measures the same cycle loop with an obs.Ring
// attached, bounding what a traced run pays per cycle (event construction
// plus one atomic fetch-add and a slot store per pipeline event).
func BenchmarkTracerOn(b *testing.B) {
	benchCycleLoopTracer(b, obs.NewRing(1<<16))
}

func benchCycleLoopTracer(b *testing.B, tr pipeline.Tracer) {
	b.Helper()
	bm, err := workload.ByName("gcc", 100_000)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.Generate(bm.Spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.ConfigSEE()
	mk := func() *pipeline.Machine {
		m, err := pipeline.New(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if tr != nil {
			m.SetTracer(tr)
		}
		return m
	}
	m := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Halted() {
			b.StopTimer()
			m = mk()
			b.StartTimer()
		}
		m.Step()
	}
}

// BenchmarkRenamer measures the rename-stage data structures together: map
// update, free-list allocate/free, and the per-branch checkpoint
// take/restore/release cycle.
func BenchmarkRenamer(b *testing.B) {
	fl := rename.NewFreeList(352, isa.NumRegs)
	ck := rename.NewCheckpoints(64)
	mp := rename.NewIdentityMap()
	for i := 0; i < b.N; i++ {
		p, ok := fl.Alloc()
		if !ok {
			b.Fatal("free list exhausted")
		}
		old := mp.Set(isa.Reg(i&31), p)
		if i&7 == 0 {
			id, ok := ck.Take(mp, uint64(i))
			if ok {
				ck.Restore(id, mp)
				ck.Release(id)
			}
		}
		fl.Free(old)
	}
}

// BenchmarkHarnessSweep runs the full Figure 8 configuration sweep (six
// machine configurations) end to end and reports aggregate simulated
// instructions per wall-clock second — the throughput number that bounds
// every experiment in EXPERIMENTS.md. cmd/benchreport records this metric
// in the BENCH_<date>.json snapshots.
func BenchmarkHarnessSweep(b *testing.B) {
	var committed uint64
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		m := res.Matrix
		for _, bench := range m.Benchmarks {
			for _, cfg := range m.Configs {
				if c := m.Cell(bench, cfg); c != nil {
					committed += c.Stats.Committed
				}
			}
		}
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkHarnessParallel measures the internal/sched sharded
// experiment engine at fixed worker counts over one representative
// RunConfigs sweep (2 benchmarks x 3 configurations). The j1/j2/j4/j8
// sub-benchmarks quantify the parallel speedup on the snapshot machine
// (benchreport turns them into the Scaling section and CI gates the
// j4/j1 ratio on multi-core runners); the rendered results are
// byte-identical at every width, so only wall time may differ. Note that
// on a single-core machine (GOMAXPROCS=1) j2/j4/j8 cannot beat j1 — the
// committed BENCH snapshot records whatever the hardware honestly
// delivers.
func BenchmarkHarnessParallel(b *testing.B) {
	configs := []harness.NamedConfig{
		{Name: "monopath", Cfg: core.ConfigMonopath()},
		{Name: "see", Cfg: core.ConfigSEE()},
		{Name: "dualpath", Cfg: core.ConfigDualPath()},
	}
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			var committed uint64
			for i := 0; i < b.N; i++ {
				opts := benchOpts()
				opts.Parallelism = j
				m, err := harness.RunConfigs(opts, configs)
				if err != nil {
					b.Fatal(err)
				}
				for _, bench := range m.Benchmarks {
					for _, cfg := range m.Configs {
						if c := m.Cell(bench, cfg); c != nil {
							committed += c.Stats.Committed
						}
					}
				}
			}
			b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "sim-insts/s")
		})
	}
}

// BenchmarkCtxTagComparator measures the hierarchy comparator of Fig. 5.
func BenchmarkCtxTagComparator(b *testing.B) {
	anc := ctxtag.Root().WithPosition(0, true).WithPosition(3, false)
	desc := anc.WithPosition(5, true).WithPosition(7, false)
	sink := false
	for i := 0; i < b.N; i++ {
		sink = anc.IsAncestorOrSelf(desc)
	}
	_ = sink
}

// BenchmarkGsharePredict measures the branch predictor path.
func BenchmarkGsharePredict(b *testing.B) {
	g := bpred.NewGshare(14)
	hist := uint64(0)
	for i := 0; i < b.N; i++ {
		t := g.Predict(i&4095, hist)
		g.Update(i&4095, hist, t)
		hist = bpred.PushHistory(hist, t)
	}
}

// BenchmarkJRSEstimate measures the confidence estimator path.
func BenchmarkJRSEstimate(b *testing.B) {
	j := confidence.NewJRS(confidence.JRSConfig{IndexBits: 14, CtrBits: 1, EnhancedIndex: true})
	hist := uint64(0)
	for i := 0; i < b.N; i++ {
		hc := j.Estimate(i&4095, hist, i&1 == 0, confidence.Hint{})
		j.Update(i&4095, hist, i&1 == 0, hc)
		hist = hist<<1 | uint64(i&1)
	}
}

// BenchmarkInterp measures the functional interpreter (the architectural
// oracle every simulation is verified against).
func BenchmarkInterp(b *testing.B) {
	bm, err := workload.ByName("compress", 100_000)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.Generate(bm.Spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n uint64
	for i := 0; i < b.N; i++ {
		it := isa.NewInterp(prog)
		if err := it.Run(1 << 30); err != nil {
			b.Fatal(err)
		}
		n += it.InstCount
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "interp-insts/s")
}

// BenchmarkWorkloadGenerate measures benchmark program generation.
func BenchmarkWorkloadGenerate(b *testing.B) {
	bm, err := workload.ByName("gcc", 200_000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(bm.Spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheAccess measures the set-associative cache directory.
func BenchmarkCacheAccess(b *testing.B) {
	c := cachepkg.New(cachepkg.Config{Sets: 64, Ways: 2, LineWords: 8})
	for i := 0; i < b.N; i++ {
		c.Access(i & 4095)
	}
}

// BenchmarkRAS measures return-address stack push/pop plus the per-branch
// snapshot clone the pipeline takes.
func BenchmarkRAS(b *testing.B) {
	r := bpred.NewRAS(16)
	for i := 0; i < b.N; i++ {
		r.Push(i)
		if i%3 == 0 {
			r.Pop()
		}
		if i%7 == 0 {
			s := r.Clone()
			r.CopyFrom(s)
		}
	}
}

// BenchmarkBTBPredict measures the branch target buffer.
func BenchmarkBTBPredict(b *testing.B) {
	btb := bpred.NewBTB(9)
	for i := 0; i < b.N; i++ {
		pc := i & 1023
		if t, ok := btb.Predict(pc); !ok || t != pc+1 {
			btb.Update(pc, pc+1)
		}
	}
}

// BenchmarkAssemble measures the textual assembler on a ~40-line program.
func BenchmarkAssemble(b *testing.B) {
	src := `
.name bench
.data 1 2 3 4
start:
    li   r1, 100
loop:
    load r2, 0(r1)
    add  r3, r3, r2
    addi r1, r1, -1
    bne  r1, r0, loop
    call r28, fn
    halt
fn:
    addi r3, r3, 1
    ret  (r28)
`
	for i := 0; i < b.N; i++ {
		if _, err := isa.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}
