// Command polysim runs a single cycle-level simulation of one benchmark
// under one machine configuration and prints the full statistics report.
//
// Usage:
//
//	polysim -bench go -model see            # PolyPath SEE (gshare + JRS)
//	polysim -bench gcc -model monopath      # baseline
//	polysim -bench perl -model dualpath     # one divergence at a time
//	polysim -bench go -model oracle         # perfect branch prediction
//	polysim -bench go -model see-oracle-ce  # SEE with perfect confidence
//	polysim -bench m88ksim -model adaptive  # SEE + PVN monitor
//
// Multi-model comparison (sharded through internal/sched; the table is
// byte-identical under any -j):
//
//	polysim -bench gcc -compare monopath,dualpath,see -j 4
//
// Observability:
//
//	polysim -bench compress -model dualpath -trace trace.json
//	    # cycle-level event trace, loadable in Perfetto / chrome://tracing
//	polysim -bench go -trace pipe.kanata -trace-format konata
//	    # per-instruction pipeline timeline for the Konata viewer
//	polysim -bench gcc -timeline 40
//	    # print stage timelines of the first 40 instructions
//	polysim -bench go -debug-addr localhost:6060
//	    # net/http/pprof plus live /metrics while the simulation runs
//
// Tracing is observation-only: the statistics report is bit-identical
// with and without it.
//
// Machine parameters (window size, functional units, pipeline depth,
// predictor size) can be overridden with flags; defaults are the paper's
// baseline (Sec. 4.2) with the scaled predictor tables described in
// DESIGN.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/bpred"
	"repro/internal/btrace"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "go", "benchmark: compress,gcc,perl,go,m88ksim,xlisp,vortex,jpeg")
	workloadName := flag.String("workload", "", "run any registered workload by name (alias of -bench covering the extended and runtime-registered families; unknown names list what is registered)")
	asmFile := flag.String("asm", "", "simulate an assembly file instead of a generated benchmark")
	model := flag.String("model", "see", "model: "+strings.Join(core.ModelNames(), ","))
	compare := flag.String("compare", "", "comma-separated models to run side by side through the sharded harness; prints one IPC table instead of a single-model report")
	jobs := flag.Int("j", 0, "worker shards for -compare (0 = GOMAXPROCS); the table is byte-identical under any value")
	insts := flag.Uint64("insts", 0, "dynamic instructions (0 = default 400k)")
	window := flag.Int("window", 0, "instruction window size (0 = 256)")
	depth := flag.Int("depth", 0, "total pipeline depth (0 = 8)")
	units := flag.Int("units", 0, "functional units of each type (0 = 4)")
	histBits := flag.Int("histbits", 0, "predictor hist_bits (0 = scaled baseline 11)")
	pred := flag.String("pred", "", "predictor kind override, any registered kind: "+strings.Join(pipeline.PredictorKinds(), ","))
	predParams := flag.String("pred-params", "", "predictor parameters as name=value[,name=value...] (schema-checked; e.g. -pred tage -pred-params tables=4,tag_bits=11)")
	policyKind := flag.String("policy", "", "adaptive SEE policy controller, any registered kind: "+strings.Join(policy.Kinds(), ","))
	policyCands := flag.String("policy-candidates", "", "comma-separated candidate presets for -policy: "+strings.Join(policy.PresetNames(), ",")+" (default: the model's configured behaviour for static, see,monopath otherwise)")
	policyEpoch := flag.Int("policy-epoch", 0, "policy epoch length in cycles (0 = default 4096)")
	policyParams := flag.String("policy-params", "", "controller parameters as name=value[,name=value...] (schema-checked; e.g. -policy online -policy-params explore_every=6,shift_milli=120)")
	seed := flag.Int64("seed", 0, "workload seed override (0 = benchmark default)")
	emitTrace := flag.String("emit-trace", "", "export the workload's branch trace to this PBT1 file (gzip when it ends in .gz) and exit; print the record count and content digest")
	importTrace := flag.String("import-trace", "", "characterize a PBT1 branch trace, synthesize a calibrated stand-in workload, and simulate it")
	disasm := flag.Bool("disasm", false, "print the generated program and exit")
	mix := flag.Bool("mix", false, "print the dynamic instruction mix and exit")
	timeline := flag.Uint64("timeline", 0, "collect and print pipeline timelines for the first N instructions")
	traceFile := flag.String("trace", "", "write a cycle-level event trace to this file (Chrome/Perfetto JSON, or Konata with -trace-format)")
	traceFormat := flag.String("trace-format", "auto", "trace file format: chrome, konata, auto (by extension: .kanata/.konata = konata)")
	traceLimit := flag.Int("trace-limit", 1<<20, "retain at most this many most-recent trace events")
	audit := flag.String("audit", "off", "invariant-audit level: off, commit, cycle (results are identical at every level)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and live /metrics on this address while simulating")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		fmt.Println("polysim", obs.Version())
		return
	}

	if *workloadName != "" {
		*bench = *workloadName
	}

	if *compare != "" {
		// The multi-config path is the harness's deterministic sharded
		// engine; the single-model observability hooks don't apply there.
		for flagName, set := range map[string]bool{
			"-asm": *asmFile != "", "-disasm": *disasm, "-mix": *mix,
			"-timeline": *timeline > 0, "-trace": *traceFile != "",
			"-debug-addr": *debugAddr != "", "-seed": *seed != 0,
			"-emit-trace": *emitTrace != "", "-import-trace": *importTrace != "",
		} {
			if set {
				fail(fmt.Errorf("%s is incompatible with -compare", flagName))
			}
		}
		runCompare(*compare, *jobs, *bench, *insts, *audit, *window, *depth, *units, *histBits, *pred, *predParams,
			*policyKind, *policyCands, *policyEpoch, *policyParams)
		return
	}

	var prog *isa.Program
	switch {
	case *importTrace != "":
		if *asmFile != "" {
			fail(fmt.Errorf("-asm is incompatible with -import-trace"))
		}
		bm, err := importedBenchmark(*importTrace, *insts)
		fail(err)
		*bench = bm.Spec.Name
		prog, err = workload.Generate(bm.Spec)
		fail(err)
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		fail(err)
		prog, err = isa.Assemble(string(src))
		fail(err)
		*bench = prog.Name
	default:
		bm, err := workload.ByName(*bench, *insts)
		fail(err)
		if *seed != 0 {
			bm.Spec.Seed = *seed
		}
		prog, err = workload.Generate(bm.Spec)
		fail(err)
	}
	if *disasm {
		fmt.Print(isa.DisasmProgram(prog))
		return
	}
	if *mix {
		prof, err := isa.ProfileProgram(prog, 1<<26)
		fail(err)
		fmt.Print(prof.String())
		return
	}
	if *emitTrace != "" {
		fail(emitTraceFile(*emitTrace, prog, *bench, *insts))
		return
	}

	base, err := core.ModelConfig(*model)
	fail(err)
	mods, err := machineMods(*window, *depth, *units, *histBits, *pred, *predParams,
		*policyKind, *policyCands, *policyEpoch, *policyParams)
	fail(err)
	// The validated constructor turns any invalid flag combination into a
	// descriptive typed error instead of a downstream panic.
	cfg, err := pipeline.NewConfigFrom(base, mods...)
	fail(err)
	cfg.Audit, err = pipeline.ParseAuditLevel(*audit)
	fail(err)

	var pt *pipeline.PipeTrace
	if *timeline > 0 {
		pt = pipeline.NewPipeTrace(*timeline)
	}
	var ring *obs.Ring
	if *traceFile != "" {
		ring = obs.NewRing(*traceLimit)
	}

	// Run the machine directly (rather than through core.Run) so the live
	// statistics can back the -debug-addr /metrics endpoint mid-simulation.
	m, err := pipeline.New(prog, cfg)
	fail(err)
	var tracers []pipeline.Tracer
	if pt != nil {
		tracers = append(tracers, pt)
	}
	if ring != nil {
		tracers = append(tracers, ring)
	}
	if tr := obs.Tee(tracers...); tr != nil {
		m.SetTracer(tr)
	}
	if *debugAddr != "" {
		serveDebug(*debugAddr, &m.Stats)
	}
	fail(m.Run())
	fail(m.VerifyArchState())

	fmt.Printf("benchmark %s, model %s (architectural state verified: %v)\n\n%s",
		*bench, *model, true, m.Stats.Summary())
	if cfg.Policy.Kind != "" {
		fmt.Printf("policy %s: %d epoch(s), %d switch(es)\n",
			cfg.Policy.Kind, len(m.Stats.EpochIPC), m.Stats.PolicySwitches)
	}
	if pt != nil {
		fmt.Println()
		fail(pt.Render(os.Stdout))
	}
	if ring != nil {
		fail(writeTrace(*traceFile, *traceFormat, *bench+"/"+*model, ring))
	}
}

// emitTraceFile exports the program's branch trace to path in PBT1 format
// (gzip-compressed when the path ends in .gz) and reports the record count
// and content digest — the digest names the trace when re-imported
// ("trace-<digest[:12]>"), so the round trip is content-addressed.
func emitTraceFile(path string, prog *isa.Program, bench string, insts uint64) error {
	if insts == 0 {
		insts = workload.DefaultTargetInsts
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, digest, err := btrace.WriteProgramTrace(f, prog, insts, bench, strings.HasSuffix(path, ".gz"))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("polysim: wrote %d branch record(s) to %s\ndigest: %s\nworkload: %s\n",
		n, path, digest, btrace.SynthName(digest))
	return nil
}

// importedBenchmark characterizes a PBT1 trace file and synthesizes a
// calibrated stand-in workload from it. A calibration near-miss (target
// rate unreachable within tolerance) is reported on stderr but the best
// candidate still runs.
func importedBenchmark(path string, insts uint64) (workload.Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return workload.Benchmark{}, err
	}
	defer f.Close()
	r, err := btrace.NewReader(f)
	if err != nil {
		return workload.Benchmark{}, err
	}
	ch, err := btrace.Characterize(r)
	if err != nil {
		return workload.Benchmark{}, err
	}
	bm, err := btrace.Synthesize(ch, insts)
	if err != nil {
		var ce *workload.CalibrationError
		if !errors.As(err, &ce) {
			return workload.Benchmark{}, err
		}
		fmt.Fprintln(os.Stderr, "polysim: warning:", err)
	}
	fmt.Fprintf(os.Stderr, "polysim: synthesized %s from %s (trace mispredict %.2f%%, stand-in %.2f%%, class %s)\n",
		bm.Spec.Name, path, 100*ch.Rate, 100*bm.PaperMispredict, ch.Class)
	return bm, nil
}

// runCompare simulates the benchmark under every named model at once,
// sharded over -j workers by the same deterministic engine behind
// cmd/experiments and polyserve sweeps, and prints the IPC table.
// Machine-parameter flag overrides apply to every model uniformly.
func runCompare(models string, workers int, bench string, insts uint64, audit string, window, depth, units, histBits int, pred, predParams, policyKind, policyCands string, policyEpoch int, policyParams string) {
	auditLevel, err := pipeline.ParseAuditLevel(audit)
	fail(err)
	mods, err := machineMods(window, depth, units, histBits, pred, predParams,
		policyKind, policyCands, policyEpoch, policyParams)
	fail(err)
	var configs []harness.NamedConfig
	for _, name := range strings.Split(models, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		base, err := core.ModelConfig(name)
		fail(err)
		cfg, err := pipeline.NewConfigFrom(base, mods...)
		fail(err)
		configs = append(configs, harness.NamedConfig{Name: name, Cfg: cfg})
	}
	opts := harness.Options{
		TargetInsts: insts,
		Parallelism: workers,
		Benchmarks:  []string{bench},
		Audit:       auditLevel,
	}
	m, err := harness.RunConfigs(opts, configs)
	fail(err)
	fmt.Print(harness.RenderTable(fmt.Sprintf("%s: model comparison (IPC)", bench), m))
}

// writeTrace exports the captured ring to path in the requested format.
func writeTrace(path, format, label string, ring *obs.Ring) error {
	if format == "auto" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".kanata", ".konata":
			format = "konata"
		default:
			format = "chrome"
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	events := ring.Snapshot()
	switch format {
	case "chrome":
		err = obs.WriteChromeTrace(f, []obs.CellTrace{{Label: label, Events: events, Dropped: ring.Dropped()}})
	case "konata":
		err = obs.WriteKonata(f, events)
	default:
		err = fmt.Errorf("unknown -trace-format %q (chrome, konata, auto)", format)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "polysim: wrote %d trace event(s) to %s (%d dropped by the %d-event ring)\n",
			len(events), path, ring.Dropped(), ring.Cap())
	}
	return err
}

// serveDebug starts the live-introspection endpoint: net/http/pprof for
// CPU/heap/goroutine profiling of the running simulation, plus the
// simulator's counters and occupancy histograms as Prometheus /metrics.
func serveDebug(addr string, sim *stats.Sim) {
	reg := metrics.NewRegistry()
	reg.GaugeFunc("polysim_build_info", `version="`+strings.ReplaceAll(obs.Version(), `"`, "'")+`"`, "Build identity (constant 1).", func() float64 { return 1 })
	stats.RegisterSim(reg, "polysim", sim)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "polysim: debug server:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "polysim: debug server on http://%s (/debug/pprof/, /metrics)\n", addr)
}

// machineMods translates the machine-parameter flags into config options.
// The -pred override swaps the predictor spec through the open registry:
// any registered kind is accepted, -pred-params feeds its schema, and the
// base model's hist_bits carries over when the new kind's schema accepts it
// (so "-model see -pred combining" keeps the scaled 11-bit sizing).
func machineMods(window, depth, units, histBits int, pred, predParams, policyKind, policyCands string, policyEpoch int, policyParams string) ([]pipeline.Option, error) {
	var mods []pipeline.Option
	if window > 0 {
		mods = append(mods, pipeline.WithWindowSize(window))
	}
	if depth > 0 {
		mods = append(mods, pipeline.WithPipelineDepth(depth))
	}
	if units > 0 {
		mods = append(mods, pipeline.WithUniformUnits(units))
	}
	if pred != "" {
		kind, err := pipeline.ParsePredictorKind(pred)
		if err != nil {
			return nil, err
		}
		params := make(map[string]int)
		if predParams != "" {
			for _, kv := range strings.Split(predParams, ",") {
				name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("-pred-params: %q is not name=value", kv)
				}
				v, err := strconv.Atoi(strings.TrimSpace(val))
				if err != nil {
					return nil, fmt.Errorf("-pred-params %s: %v", name, err)
				}
				params[strings.TrimSpace(name)] = v
			}
		}
		accepts := func(name string) bool {
			e, ok := bpred.Lookup(string(kind))
			if !ok {
				return false
			}
			for _, ps := range e.Params {
				if ps.Name == name {
					return true
				}
			}
			return false
		}
		mods = append(mods, func(c *pipeline.Config) {
			// Fresh map per application: the same option may apply to
			// several -compare configs, which must not share param state.
			p := make(map[string]int, len(params)+1)
			for k, v := range params {
				p[k] = v
			}
			if _, explicit := p["hist_bits"]; !explicit && accepts("hist_bits") {
				if hb := c.Predictor.Param("hist_bits", 0); hb > 0 {
					p["hist_bits"] = hb
				}
			}
			c.Predictor = pipeline.PredictorOf(kind, p)
		})
	}
	if histBits > 0 {
		mods = append(mods, pipeline.WithHistoryBits(histBits))
	}
	if policyKind != "" {
		pmod, err := policyMod(policyKind, policyCands, policyEpoch, policyParams)
		if err != nil {
			return nil, err
		}
		mods = append(mods, pmod)
	} else if policyCands != "" || policyEpoch != 0 || policyParams != "" {
		return nil, fmt.Errorf("-policy-candidates/-policy-epoch/-policy-params require -policy")
	}
	return mods, nil
}

// policyMod builds the config option attaching an adaptive policy
// controller. Candidates are named presets (policy.PresetNames); when the
// flag is empty, static wraps the model's configured behaviour and the
// choosing controllers get the paper's see/monopath pair. Parameters pass
// through to the controller's schema, which validates names and ranges.
func policyMod(kind, cands string, epoch int, paramStr string) (pipeline.Option, error) {
	if cands == "" && kind != "static" {
		cands = "see,monopath"
	}
	var settings []policy.Setting
	for _, name := range strings.Split(cands, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		set, ok := policy.PresetSetting(name)
		if !ok {
			return nil, fmt.Errorf("-policy-candidates: unknown preset %q (valid: %s)",
				name, strings.Join(policy.PresetNames(), ","))
		}
		settings = append(settings, set)
	}
	params := make(map[string]int)
	if paramStr != "" {
		for _, kv := range strings.Split(paramStr, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("-policy-params: %q is not name=value", kv)
			}
			v, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("-policy-params %s: %v", name, err)
			}
			params[strings.TrimSpace(name)] = v
		}
	}
	return func(c *pipeline.Config) {
		// Fresh clones per application: the same option may apply to several
		// -compare configs, which must not share candidate or param state.
		spec := pipeline.PolicySpec{Kind: kind, EpochCycles: epoch}
		spec.Candidates = append([]policy.Setting(nil), settings...)
		if len(params) > 0 {
			spec.Params = make(map[string]int, len(params))
			for k, v := range params {
				spec.Params[k] = v
			}
		}
		c.Policy = spec
	}, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "polysim:", err)
		os.Exit(1)
	}
}
