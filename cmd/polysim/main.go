// Command polysim runs a single cycle-level simulation of one benchmark
// under one machine configuration and prints the full statistics report.
//
// Usage:
//
//	polysim -bench go -model see            # PolyPath SEE (gshare + JRS)
//	polysim -bench gcc -model monopath      # baseline
//	polysim -bench perl -model dualpath     # one divergence at a time
//	polysim -bench go -model oracle         # perfect branch prediction
//	polysim -bench go -model see-oracle-ce  # SEE with perfect confidence
//	polysim -bench m88ksim -model adaptive  # SEE + PVN monitor
//
// Machine parameters (window size, functional units, pipeline depth,
// predictor size) can be overridden with flags; defaults are the paper's
// baseline (Sec. 4.2) with the scaled predictor tables described in
// DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "go", "benchmark: compress,gcc,perl,go,m88ksim,xlisp,vortex,jpeg")
	asmFile := flag.String("asm", "", "simulate an assembly file instead of a generated benchmark")
	model := flag.String("model", "see", "model: monopath,see,dualpath,oracle,see-oracle-ce,dual-oracle-ce,adaptive,eager")
	insts := flag.Uint64("insts", 0, "dynamic instructions (0 = default 400k)")
	window := flag.Int("window", 0, "instruction window size (0 = 256)")
	depth := flag.Int("depth", 0, "total pipeline depth (0 = 8)")
	units := flag.Int("units", 0, "functional units of each type (0 = 4)")
	histBits := flag.Int("histbits", 0, "gshare history bits (0 = scaled baseline 11)")
	seed := flag.Int64("seed", 0, "workload seed override (0 = benchmark default)")
	disasm := flag.Bool("disasm", false, "print the generated program and exit")
	mix := flag.Bool("mix", false, "print the dynamic instruction mix and exit")
	trace := flag.Uint64("trace", 0, "collect and print pipeline timelines for the first N instructions")
	audit := flag.String("audit", "off", "invariant-audit level: off, commit, cycle (results are identical at every level)")
	flag.Parse()

	var prog *isa.Program
	if *asmFile != "" {
		src, err := os.ReadFile(*asmFile)
		fail(err)
		prog, err = isa.Assemble(string(src))
		fail(err)
		*bench = prog.Name
	} else {
		bm, err := workload.ByName(*bench, *insts)
		fail(err)
		if *seed != 0 {
			bm.Spec.Seed = *seed
		}
		prog, err = workload.Generate(bm.Spec)
		fail(err)
	}
	if *disasm {
		fmt.Print(isa.DisasmProgram(prog))
		return
	}
	if *mix {
		prof, err := isa.ProfileProgram(prog, 1<<26)
		fail(err)
		fmt.Print(prof.String())
		return
	}

	base, err := core.ModelConfig(*model)
	fail(err)
	var mods []pipeline.Option
	if *window > 0 {
		mods = append(mods, pipeline.WithWindowSize(*window))
	}
	if *depth > 0 {
		mods = append(mods, pipeline.WithPipelineDepth(*depth))
	}
	if *units > 0 {
		mods = append(mods, pipeline.WithUniformUnits(*units))
	}
	if *histBits > 0 {
		mods = append(mods, pipeline.WithHistoryBits(*histBits))
	}
	// The validated constructor turns any invalid flag combination into a
	// descriptive typed error instead of a downstream panic.
	cfg, err := pipeline.NewConfigFrom(base, mods...)
	fail(err)
	cfg.Audit, err = pipeline.ParseAuditLevel(*audit)
	fail(err)

	var pt *pipeline.PipeTrace
	if *trace > 0 {
		pt = pipeline.NewPipeTrace(*trace)
	}
	var res *core.Result
	var err2 error
	if pt != nil {
		res, err2 = core.RunWithTracer(prog, cfg, pt)
	} else {
		res, err2 = core.Run(prog, cfg)
	}
	fail(err2)
	fmt.Printf("benchmark %s, model %s (architectural state verified: %v)\n\n%s",
		*bench, *model, res.Verified, res.Stats.Summary())
	if pt != nil {
		fmt.Println()
		fail(pt.Render(os.Stdout))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "polysim:", err)
		os.Exit(1)
	}
}
