// Command polyload is an open-loop load generator for polyserve: it
// submits single-cell jobs at a fixed target rate regardless of how fast
// the server answers (so queueing delay is measured, not hidden), with a
// configurable mix of hot jobs (a small set of repeated requests that
// exercise the memoization path) and cold jobs (every request a new
// cell that must simulate). At the end it reports client-side completion
// latency percentiles, the achieved throughput, and the server-side p99
// parsed from /metrics.
//
//	polyload -url http://localhost:8080 -rate 1000 -duration 30s -hot 0.8
//
// The exit status is nonzero only when not a single job succeeded —
// partial degradation (backpressure rejections, a flapping worker) is
// reported, not fatal, because surviving overload is the behaviour under
// test.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// hotModels is the repeated-request working set: jobs drawn from it are
// identical, so after each model's first completion every further hot
// job is a pure cache (or result-store) replay.
var hotModels = []string{"see", "monopath", "dualpath", "eager"}

func main() {
	url := flag.String("url", "http://localhost:8080", "polyserve base URL")
	rate := flag.Float64("rate", 200, "target submission rate in jobs/s (open loop)")
	duration := flag.Duration("duration", 30*time.Second, "submission window")
	hotFrac := flag.Float64("hot", 0.8, "fraction of jobs drawn from the repeated hot set [0,1]")
	insts := flag.Uint64("insts", 20000, "instructions per cell")
	bench := flag.String("bench", "compress", "benchmark each job runs")
	tenant := flag.String("tenant", "", "X-Tenant header value (fair-queuing bucket)")
	poll := flag.Duration("poll", 200*time.Millisecond, "completion poll interval")
	wait := flag.Duration("wait", 2*time.Minute, "per-job completion deadline after the window closes")
	seed := flag.Int64("seed", 1, "hot/cold choice RNG seed")
	flag.Parse()

	if *rate <= 0 || *hotFrac < 0 || *hotFrac > 1 {
		fmt.Fprintln(os.Stderr, "polyload: need -rate > 0 and -hot in [0,1]")
		os.Exit(2)
	}

	// One transport sized for thousands of concurrent pollers; ephemeral
	// port churn, not server capacity, is otherwise the first bottleneck.
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
	}}

	var (
		submitted atomic.Int64
		rejected  atomic.Int64 // submission refused (backpressure etc.)
		failed    atomic.Int64 // terminal failed/cancelled, or wait deadline
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)

	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	deadline := start.Add(*duration)
	// Deficit-based open loop: each wake launches however many jobs the
	// target rate says should exist by now. A one-tick-per-job ticker
	// (1ms at -rate 1000) silently coalesces ticks whenever a launch
	// takes longer than the interval, capping the real rate well below
	// the target; accounting in jobs instead of ticks keeps the
	// generator honest at any rate.
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	target := int(*rate * duration.Seconds())

	fmt.Printf("polyload: %s for %s at %.0f jobs/s (hot %.0f%%, %s/%d insts)\n",
		*url, *duration, *rate, *hotFrac*100, *bench, *insts)

	n := 0
	for now := start; now.Before(deadline) && n < target; now = <-ticker.C {
		expected := int(*rate * now.Sub(start).Seconds())
		if expected > target {
			expected = target
		}
		for launched := n; launched < expected; launched++ {
			n++
			req := server.JobRequest{
				Benchmarks: []string{*bench},
				Insts:      *insts,
			}
			if rng.Float64() < *hotFrac {
				m := hotModels[rng.Intn(len(hotModels))]
				req.Configs = []server.ConfigEntry{{Name: "hot-" + m, Model: m}}
			} else {
				// Cold: a unique instruction count makes a never-before-seen
				// cell without touching the config (and so the config hash).
				req.Insts = *insts + uint64(n)
				req.Configs = []server.ConfigEntry{{Name: "cold", Model: "see"}}
			}
			wg.Add(1)
			go func(req server.JobRequest) {
				defer wg.Done()
				// MaxAttempts 1: open-loop measurement wants to see every
				// rejection, not retry it into the next tick's budget.
				c := &client.Client{BaseURL: *url, HTTP: httpc, MaxAttempts: 1}
				ctx, cancel := context.WithDeadline(context.Background(),
					deadline.Add(*wait))
				defer cancel()
				start := time.Now()
				j, err := submitAs(ctx, c, req, *tenant)
				if err != nil {
					rejected.Add(1)
					return
				}
				submitted.Add(1)
				for {
					cur, err := c.Job(ctx, j.ID)
					if err != nil {
						if ctx.Err() != nil {
							failed.Add(1)
							return
						}
						time.Sleep(*poll)
						continue
					}
					switch cur.State {
					case server.JobDone:
						d := time.Since(start)
						mu.Lock()
						latencies = append(latencies, d)
						mu.Unlock()
						return
					case server.JobFailed, server.JobCancelled:
						failed.Add(1)
						return
					}
					select {
					case <-ctx.Done():
						failed.Add(1)
						return
					case <-time.After(*poll):
					}
				}
			}(req)
		}
	}
	wg.Wait()

	ok := int64(len(latencies))
	total := submitted.Load() + rejected.Load()
	fmt.Printf("polyload: %d launched, %d accepted, %d rejected, %d failed, %d succeeded\n",
		total, submitted.Load(), rejected.Load(), failed.Load(), ok)
	if ok > 0 {
		sort.Slice(latencies, func(i, k int) bool { return latencies[i] < latencies[k] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(latencies)-1))
			return latencies[i].Round(time.Millisecond)
		}
		fmt.Printf("polyload: completion latency p50=%s p95=%s p99=%s max=%s\n",
			q(0.50), q(0.95), q(0.99), latencies[len(latencies)-1].Round(time.Millisecond))
		fmt.Printf("polyload: achieved %.1f jobs/s over the %s window\n",
			float64(ok)/duration.Seconds(), *duration)
	}
	if p99, err := metricsP99(httpc, *url); err == nil && p99 > 0 {
		fmt.Printf("polyload: server job_duration p99 ≈ %.3fs (from /metrics)\n", p99)
	}
	if ok == 0 {
		fmt.Fprintln(os.Stderr, "polyload: FAIL: zero jobs succeeded")
		os.Exit(1)
	}
}

// submitAs posts one job with the optional X-Tenant header. The client
// package's Submit has no header hook, so this speaks the API directly.
func submitAs(ctx context.Context, c *client.Client, req server.JobRequest, tenant string) (server.Job, error) {
	if tenant == "" {
		return c.Submit(ctx, req)
	}
	body, err := jsonBody(req)
	if err != nil {
		return server.Job{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", body)
	if err != nil {
		return server.Job{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Tenant", tenant)
	resp, err := c.HTTP.Do(hreq)
	if err != nil {
		return server.Job{}, err
	}
	defer resp.Body.Close()
	var j server.Job
	if resp.StatusCode != http.StatusAccepted {
		return j, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	return j, decodeJSON(resp, &j)
}

func jsonBody(v any) (io.Reader, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(b), nil
}

func decodeJSON(resp *http.Response, out any) error {
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}

// labelValue extracts one label's value from a Prometheus series line.
func labelValue(line, label string) (string, bool) {
	i := strings.Index(line, label+`="`)
	if i < 0 {
		return "", false
	}
	rest := line[i+len(label)+2:]
	k := strings.Index(rest, `"`)
	if k < 0 {
		return "", false
	}
	return rest[:k], true
}

// metricsP99 scrapes /metrics and estimates the p99 of the
// polyserve_job_duration_seconds{state="done"} histogram by linear
// interpolation within the first bucket whose cumulative count crosses
// the quantile.
func metricsP99(httpc *http.Client, base string) (float64, error) {
	resp, err := httpc.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	sc := bufio.NewScanner(resp.Body)
	const prefix = `polyserve_job_duration_seconds_bucket{state="done"`
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		le, ok := labelValue(line, "le")
		if !ok {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		cum, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		bound := 0.0
		if le == "+Inf" {
			bound = -1 // marker: unbounded
		} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: bound, cum: cum})
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if len(buckets) == 0 {
		return 0, fmt.Errorf("no job duration buckets")
	}
	sort.Slice(buckets, func(i, k int) bool {
		// +Inf (marked -1) sorts last.
		if buckets[i].le < 0 {
			return false
		}
		if buckets[k].le < 0 {
			return true
		}
		return buckets[i].le < buckets[k].le
	})
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, fmt.Errorf("empty histogram")
	}
	want := 0.99 * total
	prevLE, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= want {
			if b.le < 0 { // p99 beyond the last finite bound
				return prevLE, nil
			}
			if b.cum == prevCum {
				return b.le, nil
			}
			return prevLE + (b.le-prevLE)*(want-prevCum)/(b.cum-prevCum), nil
		}
		if b.le >= 0 {
			prevLE, prevCum = b.le, b.cum
		}
	}
	return prevLE, nil
}
