// Command polyserve runs the PolyPath simulation service: an HTTP/JSON
// API over the experiment harness with job scheduling, backpressure, and
// result memoization. See README.md ("Service") for the API and examples.
//
//	polyserve -addr :8080
//	curl -s localhost:8080/v1/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"experiment":"fig8","insts":50000}'
//
// POST /v1/sweeps fans a configuration sweep into sharded cells on the
// deterministic scheduler (results are byte-identical under any
// "parallelism"), streams per-cell completions via
// GET /v1/sweeps/{id}/cells?after=N, and reports shard progress in
// /metrics:
//
//	curl -s -X POST localhost:8080/v1/sweeps -d \
//	  '{"configs":[{"name":"mono","model":"monopath"},{"name":"see","model":"see"}],
//	    "insts":50000,"parallelism":8}'
//
// On SIGINT/SIGTERM the server drains gracefully: in-flight jobs finish,
// still-queued jobs are journaled to -journal and resumed on restart.
//
// The same binary also runs distributed (see README.md "Distributed
// operation"): a coordinator accepts the identical /v1 API and shards
// sweep cells across registered workers,
//
//	polyserve -role coordinator -addr :8080 -store /tmp/store
//	polyserve -role worker -node w1 -addr :8081 -coordinator http://localhost:8080 -store /tmp/store
//
// with lease-based membership, consistent-hash cell ownership, retries,
// hedging, and a write-ahead journal so in-flight sweeps survive a
// coordinator restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/server"
)

// advertiseAddr derives the URL workers hand to the coordinator when
// -advertise is not set: a bare ":8081" listen address advertises as
// loopback (the local-fleet case); anything with a host passes through.
func advertiseAddr(advertise, listen string) string {
	if advertise != "" {
		return advertise
	}
	if strings.HasPrefix(listen, ":") {
		return "http://127.0.0.1" + listen
	}
	return "http://" + listen
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 1, "concurrent jobs (each job parallelizes across cells internally)")
	queue := flag.Int("queue", 16, "job queue capacity (backpressure beyond this)")
	cacheCells := flag.Int("cache", 4096, "memoization cache capacity in cells (0 = disable)")
	par := flag.Int("par", 0, "parallel simulations per job (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "default per-job wall-time cap (0 = none)")
	maxInsts := flag.Uint64("maxinsts", 0, "per-benchmark instruction cap clients may request (0 = unbounded)")
	journal := flag.String("journal", "polyserve.journal", "queued-job journal written on drain (empty = disable)")
	audit := flag.String("audit", "off", "invariant-audit level for every simulation: off, commit, cycle")
	crashThreshold := flag.Int("crash-threshold", 3, "contained worker crashes before a request signature is quarantined")
	chaosPanic := flag.String("chaos-panic", "", "chaos testing only: panic the worker on jobs whose title contains this string")
	traceLimit := flag.Int("trace-limit", 1<<18, "total trace events retained per traced job (jobs submitted with \"trace\": true)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this extra address (metrics are also on the main address)")
	role := flag.String("role", server.RoleStandalone, "fleet role: standalone, coordinator, or worker")
	node := flag.String("node", "", "stable node ID in fleet APIs and logs (default: the role)")
	coordinator := flag.String("coordinator", "", "coordinator base URL this worker attaches to (worker role)")
	advertise := flag.String("advertise", "", "base URL this worker advertises to the coordinator (default: derived from -addr)")
	store := flag.String("store", "", "content-addressed result store directory shared across the fleet (empty = none)")
	lease := flag.Duration("lease", 3*time.Second, "worker lease TTL; a worker missing heartbeats this long is evicted")
	heartbeat := flag.Duration("heartbeat", 0, "worker heartbeat period (0 = a third of the granted lease)")
	cellTimeout := flag.Duration("cell-timeout", 2*time.Minute, "coordinator deadline for one cell including retries")
	cellRetries := flag.Int("cell-retries", 8, "re-dispatches per cell beyond the first attempt")
	hedge := flag.Duration("hedge", 0, "launch a hedged duplicate attempt after a cell runs this long (0 = only on worker eviction)")
	retryBudget := flag.Int("retry-budget", 256, "coordinator-wide re-dispatch token bucket burst (refills at 64/s)")
	perTenant := flag.Int("tenant-queue", 0, "per-tenant share of the job queue (0 = no per-tenant cap)")
	version := flag.Bool("version", false, "print the build version and role, then exit")
	flag.Parse()

	if *version {
		fmt.Printf("polyserve %s (role %s)\n", obs.Version(), *role)
		return
	}

	auditLevel, err := pipeline.ParseAuditLevel(*audit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyserve:", err)
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *chaosPanic != "" {
		logger.Printf("polyserve: CHAOS MODE: worker panics on job titles containing %q", *chaosPanic)
	}
	if *role == server.RoleWorker && *coordinator == "" {
		fmt.Fprintln(os.Stderr, "polyserve: -role worker requires -coordinator")
		os.Exit(2)
	}
	cfg := server.Config{
		Workers:        *workers,
		QueueCapacity:  *queue,
		CacheCells:     *cacheCells,
		SimParallelism: *par,
		DefaultTimeout: *timeout,
		MaxInsts:       *maxInsts,
		JournalPath:    *journal,
		Audit:          auditLevel,
		TraceLimit:     *traceLimit,
		CrashThreshold: *crashThreshold,
		ChaosPanic:     *chaosPanic,
		Log:            logger,

		Role:           *role,
		NodeID:         *node,
		StoreDir:       *store,
		LeaseTTL:       *lease,
		CellTimeout:    *cellTimeout,
		CellRetries:    *cellRetries,
		HedgeDelay:     *hedge,
		RetryBudget:    *retryBudget,
		PerTenantQueue: *perTenant,
	}
	if *role == server.RoleCoordinator {
		cfg.DialWorker = client.DialWorker
		// The coordinator journals write-ahead: accepted jobs survive even
		// an abrupt kill, not just a graceful drain.
		cfg.JournalWAL = *journal != ""
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyserve:", err)
		os.Exit(1)
	}

	// Worker role: keep this node registered with its coordinator. The
	// loop re-registers after coordinator restarts and partitions;
	// /v1/healthz reports the current attachment state.
	attachCtx, attachCancel := context.WithCancel(context.Background())
	defer attachCancel()
	if *role == server.RoleWorker {
		coord := client.New(*coordinator)
		coord.MaxAttempts = 2
		att := &client.Attachment{
			Coordinator: coord,
			ID:          cfg.NodeID,
			Addr:        advertiseAddr(*advertise, *addr),
			Interval:    *heartbeat,
			OnState:     srv.SetAttachment,
			Logf:        logger.Printf,
		}
		if att.ID == "" {
			att.ID = *role
		}
		go att.Run(attachCtx)
	}

	if *debugAddr != "" {
		// Live introspection: pprof profiles of the running service plus a
		// second /metrics mount, on an address that can stay private even
		// when the API address is exposed.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("/metrics", srv.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Printf("polyserve: debug server: %v", err)
			}
		}()
		logger.Printf("polyserve: debug server on http://%s (/debug/pprof/, /metrics)", *debugAddr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	logger.Printf("polyserve: %s listening on %s (workers=%d queue=%d cache=%d, version %s)", *role, *addr, *workers, *queue, *cacheCells, obs.Version())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintln(os.Stderr, "polyserve:", err)
		os.Exit(1)
	case got := <-sig:
		logger.Printf("polyserve: %v: draining (in-flight jobs finish; queued jobs journal to %s)", got, *journal)
	}

	// Stop accepting HTTP first, then drain the scheduler.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("polyserve: http shutdown: %v", err)
	}
	n, err := srv.Drain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyserve: drain:", err)
		os.Exit(1)
	}
	if n > 0 {
		logger.Printf("polyserve: journaled %d queued job(s)", n)
	}
	logger.Printf("polyserve: bye")
}
