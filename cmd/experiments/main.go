// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                 # everything (Table 1, Fig 8-12, ablations)
//	experiments -exp fig8 -insts 800000  # one experiment, longer runs
//	experiments -exp fig10 -bench go,gcc # restrict the benchmark suite
//
// Output is plain text: one block per experiment, formatted as the
// rows/series the paper reports. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/pipeline"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig8..fig12, paths, ablations (or a specific abl-*), ext-cache, ext-cedesign, all")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	insts := flag.Uint64("insts", 0, "dynamic instructions per benchmark (0 = default 400k)")
	bench := flag.String("bench", "", "comma-separated benchmark subset (default: all eight)")
	par := flag.Int("par", 0, "parallel simulations (0 = GOMAXPROCS)")
	reps := flag.Int("reps", 0, "workload-seed replicates averaged per cell (0/1 = single run)")
	audit := flag.String("audit", "off", "invariant-audit level: off, commit, cycle (results are identical at every level)")
	flag.Parse()

	auditLevel, err := pipeline.ParseAuditLevel(*audit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	opts := harness.Options{TargetInsts: *insts, Parallelism: *par, Replicates: *reps, Audit: auditLevel}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}

	// The registry in internal/harness is shared with polyserve, so the
	// same experiment name produces byte-identical tables in both.
	experiments := harness.Experiments()

	selected := map[string]bool{}
	switch *exp {
	case "all":
		for _, e := range experiments {
			selected[e.Name] = true
		}
	case "ablations":
		for _, e := range experiments {
			if strings.HasPrefix(e.Name, "abl-") {
				selected[e.Name] = true
			}
		}
	default:
		for _, name := range strings.Split(*exp, ",") {
			selected[name] = true
		}
	}

	ran := 0
	for _, e := range experiments {
		if !selected[e.Name] {
			continue
		}
		ran++
		start := time.Now()
		r, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *jsonOut {
			blob, err := json.MarshalIndent(map[string]any{"experiment": e.Name, "result": r}, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
				os.Exit(1)
			}
			fmt.Println(string(blob))
			continue
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.Name, time.Since(start).Seconds(), r.Render())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
