// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                 # everything (Table 1, Fig 8-12, ablations)
//	experiments -exp fig8 -insts 800000  # one experiment, longer runs
//	experiments -exp fig10 -bench go,gcc # restrict the benchmark suite
//
// Output is plain text: one block per experiment, formatted as the
// rows/series the paper reports. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

type renderable interface{ Render() string }

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig8..fig12, paths, ablations (or a specific abl-*), ext-cache, ext-cedesign, all")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	insts := flag.Uint64("insts", 0, "dynamic instructions per benchmark (0 = default 400k)")
	bench := flag.String("bench", "", "comma-separated benchmark subset (default: all eight)")
	par := flag.Int("par", 0, "parallel simulations (0 = GOMAXPROCS)")
	reps := flag.Int("reps", 0, "workload-seed replicates averaged per cell (0/1 = single run)")
	flag.Parse()

	opts := harness.Options{TargetInsts: *insts, Parallelism: *par, Replicates: *reps}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}

	type experiment struct {
		name string
		run  func(harness.Options) (renderable, error)
	}
	wrap := func(f func(harness.Options) (*harness.SweepResult, error)) func(harness.Options) (renderable, error) {
		return func(o harness.Options) (renderable, error) { return f(o) }
	}
	wrapA := func(f func(harness.Options) (*harness.AblationResult, error)) func(harness.Options) (renderable, error) {
		return func(o harness.Options) (renderable, error) { return f(o) }
	}
	experiments := []experiment{
		{"table1", func(o harness.Options) (renderable, error) { return harness.Table1(o) }},
		{"fig8", func(o harness.Options) (renderable, error) { return harness.Figure8(o) }},
		{"fig9", wrap(harness.Figure9)},
		{"fig10", wrap(harness.Figure10)},
		{"fig11", wrap(harness.Figure11)},
		{"fig12", wrap(harness.Figure12)},
		{"paths", func(o harness.Options) (renderable, error) { return harness.Paths(o) }},
		{"abl-jrswidth", wrapA(harness.AblationJRSWidth)},
		{"abl-ceindex", wrapA(harness.AblationCEIndex)},
		{"abl-spechistory", wrapA(harness.AblationSpecHistory)},
		{"abl-adaptive", wrapA(harness.AblationAdaptive)},
		{"abl-fetchpolicy", wrapA(harness.AblationFetchPolicy)},
		{"abl-eagerness", wrapA(harness.AblationEagerness)},
		{"abl-predictors", wrapA(harness.AblationPredictors)},
		{"abl-resbuses", wrapA(harness.AblationResolutionBuses)},
		{"abl-mrc", wrapA(harness.AblationMRC)},
		{"ext-cache", func(o harness.Options) (renderable, error) { return harness.ExtensionCacheSensitivity(o) }},
		{"ext-cedesign", func(o harness.Options) (renderable, error) { return harness.ExtensionCEDesignSpace(o) }},
	}

	selected := map[string]bool{}
	switch *exp {
	case "all":
		for _, e := range experiments {
			selected[e.name] = true
		}
	case "ablations":
		for _, e := range experiments {
			if strings.HasPrefix(e.name, "abl-") {
				selected[e.name] = true
			}
		}
	default:
		for _, name := range strings.Split(*exp, ",") {
			selected[name] = true
		}
	}

	ran := 0
	for _, e := range experiments {
		if !selected[e.name] {
			continue
		}
		ran++
		start := time.Now()
		r, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *jsonOut {
			blob, err := json.MarshalIndent(map[string]any{"experiment": e.name, "result": r}, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Println(string(blob))
			continue
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.name, time.Since(start).Seconds(), r.Render())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
