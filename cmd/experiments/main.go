// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                 # everything (Table 1, Fig 8-12, ablations)
//	experiments -exp fig8 -insts 800000  # one experiment, longer runs
//	experiments -exp fig10 -bench go,gcc # restrict the benchmark suite
//	experiments -exp fig8 -j 8           # shard cells over 8 workers
//
// Cells are sharded through the deterministic internal/sched engine, so
// the output is byte-identical under any -j value.
//
// Output is plain text: one block per experiment, formatted as the
// rows/series the paper reports. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig8..fig12, paths, ablations (or a specific abl-*), ext-cache, ext-cedesign, all")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	insts := flag.Uint64("insts", 0, "dynamic instructions per benchmark (0 = default 400k)")
	bench := flag.String("bench", "", "comma-separated benchmark subset (default: all eight)")
	par := flag.Int("par", 0, "parallel simulations (0 = GOMAXPROCS)")
	jFlag := flag.Int("j", 0, "worker shards for parallel simulation (alias of -par; takes precedence when both are set). Tables are byte-identical under any value")
	reps := flag.Int("reps", 0, "workload-seed replicates averaged per cell (0/1 = single run)")
	audit := flag.String("audit", "off", "invariant-audit level: off, commit, cycle (results are identical at every level)")
	traceFile := flag.String("trace", "", "write a merged cycle-level Chrome/Perfetto trace of every simulated cell to this file (observation-only: tables are unchanged)")
	traceLimit := flag.Int("trace-limit", 65536, "retain at most this many most-recent trace events per cell")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		fmt.Println("experiments", obs.Version())
		return
	}

	auditLevel, err := pipeline.ParseAuditLevel(*audit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	parallelism := *par
	if *jFlag > 0 {
		parallelism = *jFlag
	}
	opts := harness.Options{TargetInsts: *insts, Parallelism: parallelism, Replicates: *reps, Audit: auditLevel}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}

	// -trace: collect each simulated cell's event stream; cells land in
	// harness-worker order, so they are sorted before export to keep the
	// file deterministic.
	var traceMu sync.Mutex
	var traceCells []obs.CellTrace
	if *traceFile != "" {
		opts.TraceLimit = *traceLimit
		opts.OnTrace = func(ev harness.CellEvent, events []pipeline.TraceEvent, dropped uint64) {
			label := fmt.Sprintf("%s/%s", ev.Benchmark, ev.Config)
			if ev.Replicate > 0 {
				label = fmt.Sprintf("%s/r%d", label, ev.Replicate)
			}
			traceMu.Lock()
			traceCells = append(traceCells, obs.CellTrace{Label: label, Events: events, Dropped: dropped})
			traceMu.Unlock()
		}
	}

	// The registry in internal/harness is shared with polyserve, so the
	// same experiment name produces byte-identical tables in both.
	experiments := harness.Experiments()

	selected := map[string]bool{}
	switch *exp {
	case "all":
		for _, e := range experiments {
			selected[e.Name] = true
		}
	case "ablations":
		for _, e := range experiments {
			if strings.HasPrefix(e.Name, "abl-") {
				selected[e.Name] = true
			}
		}
	default:
		for _, name := range strings.Split(*exp, ",") {
			selected[name] = true
		}
	}

	ran := 0
	for _, e := range experiments {
		if !selected[e.Name] {
			continue
		}
		ran++
		start := time.Now()
		r, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *jsonOut {
			blob, err := json.MarshalIndent(map[string]any{"experiment": e.Name, "result": r}, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
				os.Exit(1)
			}
			fmt.Println(string(blob))
			continue
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.Name, time.Since(start).Seconds(), r.Render())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *traceFile != "" {
		sort.Slice(traceCells, func(i, k int) bool { return traceCells[i].Label < traceCells[k].Label })
		f, err := os.Create(*traceFile)
		if err == nil {
			err = obs.WriteChromeTrace(f, traceCells)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote trace of %d cell(s) to %s\n", len(traceCells), *traceFile)
	}
}
