// Command polychar characterizes branch-predictability: it profiles a
// PBT1 branch trace or any registered workload (per-PC bias histogram,
// history-depth response, misprediction clustering) and places it on the
// paper's Figure 8 clustered-vs-isolated spectrum.
//
// Usage:
//
//	polychar -trace app.pbt.gz              # profile a captured trace
//	polychar -workload go                   # profile a registered workload
//	polychar -trace app.pbt.gz -synth       # + synthesize a calibrated stand-in
//	polychar -workload gcc -sites 10        # + hottest conditional sites
//	polychar -all -j 8                      # Figure 8 placement table, all families
//	polychar -all -json                     # machine-readable placement table
//
// polysim closes the loop: `polysim -workload X -emit-trace f.pbt.gz`
// exports a trace that polychar can profile, and `polysim -import-trace`
// simulates the synthesized stand-in.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/btrace"
	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	tracePath := flag.String("trace", "", "characterize a PBT1 branch-trace file (gzip detected transparently)")
	workloadName := flag.String("workload", "", "characterize a registered workload by name (unknown names list what is registered)")
	all := flag.Bool("all", false, "characterize every workload family and print the Figure 8 placement table")
	insts := flag.Uint64("insts", 0, "dynamic instructions for workload characterization and synthesis targets (0 = default 400k)")
	sites := flag.Int("sites", 0, "also print the N most-executed conditional sites with their bias")
	synth := flag.Bool("synth", false, "synthesize a calibrated stand-in workload from the profile and report the achieved misprediction rate")
	jobs := flag.Int("j", 0, "worker shards for -all (0 = GOMAXPROCS); the table is byte-identical under any value")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of the text report")
	flag.Parse()

	switch {
	case *all:
		if *tracePath != "" || *workloadName != "" {
			fail(fmt.Errorf("-all is incompatible with -trace and -workload"))
		}
		res, err := harness.CharTable(harness.Options{TargetInsts: *insts, Parallelism: *jobs})
		fail(err)
		if *asJSON {
			emitJSON(res)
			return
		}
		fmt.Print(res.Render())
	case *tracePath != "" && *workloadName != "":
		fail(fmt.Errorf("-trace and -workload are mutually exclusive"))
	case *tracePath != "":
		f, err := os.Open(*tracePath)
		fail(err)
		defer f.Close()
		r, err := btrace.NewReader(f)
		fail(err)
		ch, err := btrace.Characterize(r)
		fail(err)
		report(ch, *insts, *sites, *synth, *asJSON)
	case *workloadName != "":
		bm, err := workload.ByName(*workloadName, *insts)
		fail(err)
		p, err := workload.Generate(bm.Spec)
		fail(err)
		n := bm.Spec.TargetInsts
		ch, err := btrace.CharacterizeProgram(p, n, bm.Spec.Name)
		fail(err)
		report(ch, *insts, *sites, *synth, *asJSON)
	default:
		fail(fmt.Errorf("nothing to characterize: pass -trace <file>, -workload <name>, or -all"))
	}
}

// synthReport is the -synth section of the report.
type synthReport struct {
	Name     string  `json:"name"`
	Target   float64 `json:"target_rate"`
	Achieved float64 `json:"achieved_rate"`
	RelErr   float64 `json:"rel_err"`
	Branches int     `json:"branch_sites"`
	Seed     int64   `json:"seed"`
	// Error carries the calibration near-miss, when the target rate was
	// unreachable within tolerance.
	Error string `json:"error,omitempty"`
}

func report(ch *btrace.Characterization, insts uint64, sites int, synth, asJSON bool) {
	var top []btrace.SiteBias
	if sites > 0 {
		top = ch.TopSites(sites)
	}
	var sr *synthReport
	if synth {
		sr = synthesize(ch, insts)
	}
	if asJSON {
		emitJSON(struct {
			*btrace.Characterization
			TopSites []btrace.SiteBias `json:"top_sites,omitempty"`
			Synth    *synthReport      `json:"synth,omitempty"`
		}{ch, top, sr})
		return
	}
	fmt.Print(ch.Render())
	if sites > 0 {
		fmt.Printf("top %d sites by dynamic count:\n", len(top))
		for _, s := range top {
			fmt.Printf("  pc %-6d %10d  taken %6.2f%%\n", s.PC, s.Count, 100*s.TakenRate)
		}
	}
	if sr != nil {
		fmt.Printf("synthesized %s: gshare(%d) mispredict %.2f%% (target %.2f%%, %+.1f%% relative, %d branch sites, seed %d)\n",
			sr.Name, btrace.RefHistBits, 100*sr.Achieved, 100*sr.Target, 100*sr.RelErr, sr.Branches, sr.Seed)
		if sr.Error != "" {
			fmt.Fprintln(os.Stderr, "polychar: warning:", sr.Error)
		}
	}
}

// synthesize runs the closed-loop calibration. A *workload.CalibrationError
// near-miss is reported but the best candidate is still described; any
// other failure is fatal.
func synthesize(ch *btrace.Characterization, insts uint64) *synthReport {
	bm, err := btrace.Synthesize(ch, insts)
	sr := &synthReport{
		Name:     bm.Spec.Name,
		Target:   ch.Rate,
		Achieved: bm.PaperMispredict,
		Branches: len(bm.Spec.Branches),
		Seed:     bm.Spec.Seed,
	}
	if t := ch.Rate; t > 0 {
		sr.RelErr = (bm.PaperMispredict - t) / t
	}
	if err != nil {
		var ce *workload.CalibrationError
		if !errors.As(err, &ce) {
			fail(err)
		}
		sr.Error = err.Error()
	}
	return sr
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	fail(enc.Encode(v))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "polychar:", err)
		os.Exit(1)
	}
}
