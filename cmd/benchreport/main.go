// Command benchreport runs the repository benchmark suite and writes a
// machine-readable BENCH_<date>.json snapshot: ns/op, B/op, allocs/op and
// the custom metrics the suite reports (notably simulated instructions per
// second), plus a harmonic-mean-IPC fingerprint of the Figure 8 matrix so a
// snapshot also certifies that the simulator still computes the same
// results it was fast at.
//
// Usage:
//
//	go run ./cmd/benchreport                       # run suite, write BENCH_<date>.json
//	go run ./cmd/benchreport -benchtime 5s
//	go run ./cmd/benchreport -input old_bench.txt  # parse an existing `go test -bench` log
//	go run ./cmd/benchreport -baseline BENCH_a.json -out BENCH_b.json
//
// With -baseline, the snapshot embeds the baseline's numbers and the
// speedup ratios against it, so a committed snapshot documents a
// performance change without needing the previous file side by side.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom units, e.g. sim-insts/s
}

// Comparison relates one benchmark to the same benchmark in the baseline.
type Comparison struct {
	Name            string  `json:"name"`
	BaseNsPerOp     float64 `json:"base_ns_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	Speedup         float64 `json:"speedup"` // base_ns_per_op / ns_per_op
	BaseAllocsPerOp float64 `json:"base_allocs_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
}

// Host records the parallel capacity of the machine the suite ran on.
// Scaling numbers are meaningless without it: a j4/j1 ratio of 1.0 is
// expected on one core and a regression on four.
type Host struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// ScalingPoint is one BenchmarkHarnessParallel/j<N> result relative to
// the j1 run of the same suite.
type ScalingPoint struct {
	J                int     `json:"j"`
	NsPerOp          float64 `json:"ns_per_op"`
	SpeedupVsJ1      float64 `json:"speedup_vs_j1"`
	SimInstsPerSec   float64 `json:"sim_insts_per_sec,omitempty"`
	SimInstsPerSecJ1 float64 `json:"sim_insts_per_sec_j1,omitempty"`
}

// Report is the snapshot schema.
type Report struct {
	Date        string         `json:"date"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	CPU         string         `json:"cpu,omitempty"`
	Host        *Host          `json:"host,omitempty"`
	Benchtime   string         `json:"benchtime,omitempty"`
	Benchmarks  []Benchmark    `json:"benchmarks"`
	Scaling     []ScalingPoint `json:"scaling,omitempty"` // harness parallel speedup curve
	Fingerprint *Fingerprint   `json:"fingerprint,omitempty"`
	Baseline    string         `json:"baseline,omitempty"` // file the comparison is against
	Comparisons []Comparison   `json:"comparisons,omitempty"`
}

// Fingerprint pins the simulator's correctness: the harmonic-mean IPC of
// every Figure 8 configuration at a fixed instruction budget. Two
// snapshots with different fingerprints are not measuring the same
// simulator semantics and must not be compared.
type Fingerprint struct {
	TargetInsts uint64             `json:"target_insts"`
	HMeanIPC    map[string]float64 `json:"hmean_ipc"`
}

func main() {
	var (
		benchRe    = flag.String("bench", ".", "benchmark pattern passed to go test -bench")
		benchtime  = flag.String("benchtime", "2s", "benchtime passed to go test")
		input      = flag.String("input", "", "parse this `go test -bench` log instead of running the suite")
		baseline   = flag.String("baseline", "", "BENCH_*.json snapshot to compare against")
		out        = flag.String("out", "", "output path (default BENCH_<date>.json)")
		insts      = flag.Uint64("fingerprint-insts", 100000, "instruction budget for the Figure 8 fingerprint (0 disables)")
		minScaling = flag.Float64("min-scaling", 0, "fail unless the j4/j1 harness speedup reaches this ratio (enforced only when the host has >= 4 CPUs; 0 disables)")
		maxRegress = flag.Float64("max-regress", 0, "with -baseline: fail when a gated benchmark's ns/op regresses by more than this factor (e.g. 1.20; 0 disables)")
		gateRe     = flag.String("gate", "CycleLoop|Renamer|Harness", "regexp selecting the benchmarks -max-regress applies to")
		version    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("benchreport", obs.Version())
		return
	}

	rep := &Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Host:      &Host{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)},
	}

	var raw string
	if *input != "" {
		b, err := os.ReadFile(*input)
		if err != nil {
			fatal(err)
		}
		raw = string(b)
	} else {
		rep.Benchtime = *benchtime
		fmt.Fprintf(os.Stderr, "benchreport: running go test -bench %s -benchtime %s\n", *benchRe, *benchtime)
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", *benchRe,
			"-benchmem", "-benchtime", *benchtime, "-timeout", "1800s")
		cmd.Stderr = os.Stderr
		outB, err := cmd.Output()
		if err != nil {
			fatal(fmt.Errorf("go test -bench: %w", err))
		}
		raw = string(outB)
	}
	benchmarks, cpu, err := parseBenchOutput(raw)
	if err != nil {
		fatal(err)
	}
	if len(benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results found"))
	}
	rep.Benchmarks = benchmarks
	rep.CPU = cpu
	rep.Scaling = scalingCurve(benchmarks)

	if *insts > 0 {
		fmt.Fprintf(os.Stderr, "benchreport: computing Figure 8 fingerprint at %d insts\n", *insts)
		fp, err := fingerprint(*insts)
		if err != nil {
			fatal(err)
		}
		rep.Fingerprint = fp
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fatal(err)
		}
		rep.Baseline = *baseline
		rep.Comparisons = compare(base, rep)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
	for _, c := range rep.Comparisons {
		fmt.Fprintf(os.Stderr, "  %-28s %8.2fx  allocs %10.0f -> %.0f\n",
			c.Name, c.Speedup, c.BaseAllocsPerOp, c.AllocsPerOp)
	}

	// Gates run after the snapshot is on disk so CI can upload the failing
	// report as an artifact.
	failed := false
	if *minScaling > 0 {
		if err := checkScaling(rep, *minScaling); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport: scaling gate:", err)
			failed = true
		}
	}
	if *maxRegress > 0 && *baseline != "" {
		if err := checkRegressions(rep, *gateRe, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport: regression gate:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// scalingCurve extracts the BenchmarkHarnessParallel/j<N> sub-benchmarks
// into a speedup curve relative to j1.
func scalingCurve(benchmarks []Benchmark) []ScalingPoint {
	jRe := regexp.MustCompile(`^BenchmarkHarnessParallel/j(\d+)$`)
	var pts []ScalingPoint
	var j1Ns, j1Rate float64
	for _, b := range benchmarks {
		m := jRe.FindStringSubmatch(b.Name)
		if m == nil {
			continue
		}
		j, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		p := ScalingPoint{J: j, NsPerOp: b.NsPerOp, SimInstsPerSec: b.Metrics["sim-insts/s"]}
		if j == 1 {
			j1Ns, j1Rate = b.NsPerOp, p.SimInstsPerSec
		}
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, k int) bool { return pts[i].J < pts[k].J })
	for i := range pts {
		if j1Ns > 0 && pts[i].NsPerOp > 0 {
			pts[i].SpeedupVsJ1 = j1Ns / pts[i].NsPerOp
		}
		pts[i].SimInstsPerSecJ1 = j1Rate
	}
	return pts
}

// checkScaling enforces the parallel-scaling floor: on a host with at
// least 4 CPUs, the j4 harness run must be at least min times faster than
// j1. Hosts with fewer cores (the pinned container this repo often runs
// in) cannot physically scale, so the gate reports and passes.
func checkScaling(rep *Report, min float64) error {
	if rep.Host == nil || rep.Host.NumCPU < 4 {
		fmt.Fprintf(os.Stderr, "benchreport: scaling gate skipped (host has %d CPUs; need >= 4)\n", hostCPUs(rep))
		return nil
	}
	for _, p := range rep.Scaling {
		if p.J != 4 {
			continue
		}
		if p.SpeedupVsJ1 <= 0 {
			return fmt.Errorf("j4 speedup unavailable (missing j1 sample?)")
		}
		fmt.Fprintf(os.Stderr, "benchreport: scaling gate: j4/j1 = %.2fx on %d CPUs (floor %.2fx)\n",
			p.SpeedupVsJ1, rep.Host.NumCPU, min)
		if p.SpeedupVsJ1 < min {
			return fmt.Errorf("j4/j1 speedup %.2fx below required %.2fx on a %d-CPU host",
				p.SpeedupVsJ1, min, rep.Host.NumCPU)
		}
		return nil
	}
	return fmt.Errorf("no BenchmarkHarnessParallel/j4 result in this run (was -bench too narrow?)")
}

func hostCPUs(rep *Report) int {
	if rep.Host == nil {
		return 0
	}
	return rep.Host.NumCPU
}

// checkRegressions enforces the ns/op floor against the baseline for
// benchmarks matching gate: any slowdown beyond maxRatio (current/base,
// e.g. 1.20 = 20% slower) fails. Benchmarks absent from the baseline are
// skipped — new benchmarks have nothing to regress from.
func checkRegressions(rep *Report, gate string, maxRatio float64) error {
	re, err := regexp.Compile(gate)
	if err != nil {
		return fmt.Errorf("bad -gate pattern: %w", err)
	}
	var failures []string
	gated := 0
	for _, c := range rep.Comparisons {
		if !re.MatchString(c.Name) {
			continue
		}
		gated++
		ratio := c.NsPerOp / c.BaseNsPerOp
		status := "ok"
		if ratio > maxRatio {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx, limit %.2fx)",
				c.Name, c.BaseNsPerOp, c.NsPerOp, ratio, maxRatio))
		}
		fmt.Fprintf(os.Stderr, "benchreport: regression gate: %-40s %.2fx  %s\n", c.Name, ratio, status)
	}
	if gated == 0 {
		return fmt.Errorf("no benchmarks matched gate %q against baseline %s", gate, rep.Baseline)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.2fx:\n  %s",
			len(failures), maxRatio, strings.Join(failures, "\n  "))
	}
	return nil
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseBenchOutput extracts benchmark results and the cpu line from a
// `go test -bench` log. Value/unit pairs after the iteration count are kept
// verbatim: standard units fill the dedicated fields, anything else (the
// suite's sim-insts/s and friends) lands in Metrics.
func parseBenchOutput(raw string) ([]Benchmark, string, error) {
	var (
		benchmarks []Benchmark
		cpu        string
	)
	sc := bufio.NewScanner(strings.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		// Strip the -<gomaxprocs> suffix go test appends to benchmark names.
		name := regexp.MustCompile(`-\d+$`).ReplaceAllString(m[1], "")
		b := Benchmark{Name: name, Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("parsing %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = val
			}
		}
		benchmarks = append(benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	return benchmarks, cpu, nil
}

// fingerprint runs the Figure 8 matrix in-process and records its
// harmonic-mean IPC per configuration.
func fingerprint(insts uint64) (*Fingerprint, error) {
	res, err := harness.Figure8(harness.Options{TargetInsts: insts})
	if err != nil {
		return nil, err
	}
	fp := &Fingerprint{TargetInsts: insts, HMeanIPC: make(map[string]float64)}
	for _, c := range res.Matrix.Configs {
		fp.HMeanIPC[c] = res.Matrix.HarmonicMean(c)
	}
	return fp, nil
}

func readReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compare pairs benchmarks present in both reports.
func compare(base, cur *Report) []Comparison {
	byName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	var cs []Comparison
	for _, b := range cur.Benchmarks {
		old, ok := byName[b.Name]
		if !ok || old.NsPerOp == 0 || b.NsPerOp == 0 {
			continue
		}
		cs = append(cs, Comparison{
			Name:            b.Name,
			BaseNsPerOp:     old.NsPerOp,
			NsPerOp:         b.NsPerOp,
			Speedup:         old.NsPerOp / b.NsPerOp,
			BaseAllocsPerOp: old.AllocsPerOp,
			AllocsPerOp:     b.AllocsPerOp,
		})
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	return cs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
