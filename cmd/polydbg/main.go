// Command polydbg is an interactive cycle-level debugger for the PolyPath
// simulator: step the machine cycle by cycle and inspect the instruction
// window, the CTX path table, architectural registers and memory.
//
//	polydbg -bench go                 # debug a generated benchmark
//	polydbg -asm prog.s -model see    # debug an assembly file
//
// Commands:
//
//	step [n]        advance n cycles (default 1)
//	run  [n]        run until halt or n more committed instructions
//	window [n]      show the first n instruction window entries
//	paths           show the CTX path table
//	regs            show committed architectural registers
//	mem a [n]       show n memory words starting at a
//	stats           show the statistics summary
//	disasm [a [n]]  disassemble n instructions from address a
//	help            this text
//	quit            exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "go", "benchmark name")
	asmFile := flag.String("asm", "", "debug an assembly file instead of a benchmark")
	model := flag.String("model", "see", "model: "+strings.Join(core.ModelNames(), ","))
	insts := flag.Uint64("insts", 0, "dynamic instruction target (0 = default)")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		fmt.Println("polydbg", obs.Version())
		return
	}

	var prog *isa.Program
	if *asmFile != "" {
		src, err := os.ReadFile(*asmFile)
		fail(err)
		p, err := isa.Assemble(string(src))
		fail(err)
		prog = p
	} else {
		bm, err := workload.ByName(*bench, *insts)
		fail(err)
		p, err := workload.Generate(bm.Spec)
		fail(err)
		prog = p
	}

	cfg, err := core.ModelConfig(*model)
	fail(err)

	m, err := pipeline.New(prog, cfg)
	fail(err)
	fmt.Printf("polydbg: %q on %s (%d static instructions). Type 'help'.\n",
		prog.Name, *model, len(prog.Code))
	repl(m, os.Stdin, os.Stdout)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "polydbg:", err)
		os.Exit(1)
	}
}

// repl drives the debugger loop; split out for testing.
func repl(m *pipeline.Machine, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprintf(out, "[cyc %d, committed %d]> ", m.Cycle(), m.Stats.Committed)
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "q", "exit":
			return
		case "help", "h", "?":
			fmt.Fprint(out, helpText)
		case "step", "s":
			n := argInt(args, 0, 1)
			for i := 0; i < n && !m.Halted(); i++ {
				m.Step()
			}
			if m.Halted() {
				fmt.Fprintln(out, "machine halted")
			}
		case "run", "r":
			target := m.Stats.Committed + uint64(argInt(args, 0, 1<<31))
			for !m.Halted() && m.Stats.Committed < target {
				m.Step()
			}
			if m.Halted() {
				fmt.Fprintln(out, "machine halted")
			}
		case "window", "w":
			n := argInt(args, 0, 16)
			views := m.WindowView(n)
			fmt.Fprintf(out, "window: %d entries in flight\n", m.WindowLen())
			for _, v := range views {
				mark := " "
				if v.Diverged {
					mark = "D"
				} else if v.Branch {
					mark = "B"
				}
				fmt.Fprintf(out, "  %6d %s pc=%-5d %-9s %-8s %s\n",
					v.Seq, mark, v.PC, v.State, v.Tag, v.Disasm)
			}
		case "paths", "p":
			for _, p := range m.PathsView() {
				status := "fetching"
				switch {
				case p.Halted:
					status = "halted"
				case p.Zombie:
					status = "zombie"
				case !p.Fetching:
					status = "stalled"
				}
				fmt.Fprintf(out, "  path %-2d %-8s %-8s pc=%-5d pending=%d onTrace=%v\n",
					p.ID, p.Tag, status, p.FetchPC, p.Pending, p.OnTrace)
			}
		case "regs":
			regs := m.ArchRegs()
			for r := 0; r < isa.NumRegs; r += 4 {
				fmt.Fprintf(out, "  r%-2d=%-12d r%-2d=%-12d r%-2d=%-12d r%-2d=%-12d\n",
					r, regs[r], r+1, regs[r+1], r+2, regs[r+2], r+3, regs[r+3])
			}
		case "mem":
			if len(args) < 1 {
				fmt.Fprintln(out, "usage: mem addr [n]")
				continue
			}
			a := argInt(args, 0, 0)
			n := argInt(args, 1, 8)
			mem := m.Memory()
			for i := 0; i < n && a+i < len(mem); i++ {
				fmt.Fprintf(out, "  [%d] = %d\n", a+i, mem[a+i])
			}
		case "stats":
			fmt.Fprint(out, m.Stats.Summary())
		case "disasm", "d":
			a := argInt(args, 0, 0)
			n := argInt(args, 1, 12)
			code := m.Program().Code
			for i := a; i < a+n && i < len(code); i++ {
				fmt.Fprintf(out, "  %5d: %s\n", i, isa.Disasm(code[i]))
			}
		default:
			fmt.Fprintf(out, "unknown command %q (try 'help')\n", cmd)
		}
	}
}

func argInt(args []string, idx, def int) int {
	if idx >= len(args) {
		return def
	}
	v, err := strconv.Atoi(args[idx])
	if err != nil {
		return def
	}
	return v
}

const helpText = `  step [n]        advance n cycles (default 1)
  run  [n]        run until halt or n more committed instructions
  window [n]      show the first n instruction window entries
  paths           show the CTX path table
  regs            show committed architectural registers
  mem a [n]       show n memory words starting at a
  stats           statistics summary
  disasm [a [n]]  disassemble n instructions from address a
  quit            exit
`
