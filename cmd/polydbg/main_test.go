package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

func debugMachine(t *testing.T) *pipeline.Machine {
	t.Helper()
	p := isa.MustAssemble(`
.name dbg
.data 5 7
  li r1, 0
  li r2, 20
top:
  load r3, 0(r0)
  add  r4, r4, r3
  addi r1, r1, 1
  blt  r1, r2, top
  store r4, 8(r0)
  halt
`)
	m, err := pipeline.New(p, core.ConfigSEE())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func drive(t *testing.T, script string) string {
	t.Helper()
	m := debugMachine(t)
	var out strings.Builder
	repl(m, strings.NewReader(script), &out)
	return out.String()
}

func TestReplStepAndRun(t *testing.T) {
	out := drive(t, "step 3\nwindow 4\nrun\nstats\nquit\n")
	if !strings.Contains(out, "[cyc 3, committed 0]") {
		t.Errorf("step did not advance 3 cycles:\n%s", out)
	}
	if !strings.Contains(out, "machine halted") {
		t.Errorf("run did not reach halt:\n%s", out)
	}
	if !strings.Contains(out, "IPC") {
		t.Error("stats missing")
	}
}

func TestReplWindowAndPaths(t *testing.T) {
	out := drive(t, "step 8\nwindow 8\npaths\nquit\n")
	if !strings.Contains(out, "entries in flight") {
		t.Error("window header missing")
	}
	if !strings.Contains(out, "li") {
		t.Errorf("window should show disassembly:\n%s", out)
	}
	if !strings.Contains(out, "path 0") {
		t.Error("paths listing missing")
	}
}

func TestReplRegsMemDisasm(t *testing.T) {
	out := drive(t, "run\nregs\nmem 8 1\ndisasm 0 3\nquit\n")
	// r4 accumulates 20 * 5 = 100; mem[8] = 100.
	if !strings.Contains(out, "r4 =100") && !strings.Contains(out, "r4=100") {
		// formatting uses r%-2d=
		if !strings.Contains(out, "=100") {
			t.Errorf("expected accumulated value 100 in regs/mem:\n%s", out)
		}
	}
	if !strings.Contains(out, "[8] = 100") {
		t.Errorf("mem inspection:\n%s", out)
	}
	if !strings.Contains(out, "0: li") {
		t.Errorf("disasm listing:\n%s", out)
	}
}

func TestReplErrorsAndHelp(t *testing.T) {
	out := drive(t, "bogus\nhelp\nmem\nquit\n")
	if !strings.Contains(out, `unknown command "bogus"`) {
		t.Error("unknown command handling")
	}
	if !strings.Contains(out, "step [n]") {
		t.Error("help text")
	}
	if !strings.Contains(out, "usage: mem") {
		t.Error("mem usage")
	}
}

func TestReplEOFExits(t *testing.T) {
	out := drive(t, "step\n") // no quit: EOF must end the loop
	if out == "" {
		t.Error("expected prompt output")
	}
}
