package btrace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"testing"
)

// testRecords builds a deterministic mixed stream: conditional branches
// over a small PC set (forward and backward deltas) plus indirect jumps.
func testRecords(n int) []Record {
	rng := rand.New(rand.NewSource(42))
	pcs := []uint64{16, 48, 112, 4096, 19}
	recs := make([]Record, n)
	for i := range recs {
		pc := pcs[rng.Intn(len(pcs))]
		if rng.Intn(8) == 0 {
			recs[i] = Record{PC: pc, Indirect: true, Target: pcs[rng.Intn(len(pcs))]}
		} else {
			recs[i] = Record{PC: pc, Taken: rng.Intn(2) == 0}
		}
	}
	return recs
}

func encode(t *testing.T, recs []Record, opts ...WriterOption) ([]byte, string) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, opts...)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes(), w.Digest()
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []WriterOption
	}{
		{"plain", []WriterOption{WithSource("unit"), WithCountHint(10_000)}},
		{"gzip", []WriterOption{WithSource("unit"), WithGzip()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Spans multiple blocks (blockRecords = 4096).
			want := testRecords(10_000)
			blob, wdig := encode(t, want, tc.opts...)

			r, err := NewReader(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			if h := r.Header(); h.Version != Version || h.Source != "unit" {
				t.Fatalf("header = %+v", h)
			}
			got, err := ReadAll(r)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("decoded %d records, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
				}
			}
			if rdig := r.Digest(); rdig != wdig {
				t.Fatalf("reader digest %s != writer digest %s", rdig, wdig)
			}
		})
	}
}

func TestEmptyTrace(t *testing.T) {
	blob, _ := encode(t, nil, WithSource("empty"))
	r, err := NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next on empty trace = %v, want io.EOF", err)
	}
}

func TestDigestIndependentOfBlocking(t *testing.T) {
	recs := testRecords(blockRecords + 100) // forces a mid-stream flush
	_, d1 := encode(t, recs)
	_, d2 := encode(t, recs, WithGzip())
	if d1 != d2 {
		t.Fatalf("digest differs across compression: %s vs %s", d1, d2)
	}
	// Same records hand-fed to the digester (no framing at all).
	d := newDigester()
	for _, r := range recs {
		d.add(r)
	}
	if d.sum() != d1 {
		t.Fatalf("canonical digest %s != writer digest %s", d.sum(), d1)
	}
}

func TestBadMagic(t *testing.T) {
	for _, blob := range [][]byte{
		nil,
		[]byte("PBT"),
		[]byte("NOTATRACEFILE"),
		[]byte("PBTR2\n"),
	} {
		_, err := NewReader(bytes.NewReader(blob))
		if !errors.Is(err, ErrBadMagic) {
			t.Errorf("NewReader(%q) = %v, want ErrBadMagic", blob, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("NewReader(%q) error is not *CorruptError: %v", blob, err)
		}
	}
}

// drain decodes everything it can, returning the count of records decoded
// before the first error (io.EOF = clean end).
func drain(blob []byte) (records uint64, err error) {
	r, err := NewReader(bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	for {
		_, err := r.Next()
		if err != nil {
			return r.Count(), err
		}
	}
}

// TestTruncationAtEveryBoundary cuts a small uncompressed trace at every
// byte offset: each prefix must decode to some intact record prefix and
// then report either a clean EOF (exact frame boundary) or a typed
// *CorruptError — never a panic, never silently wrong data.
func TestTruncationAtEveryBoundary(t *testing.T) {
	recs := testRecords(300)
	blob, _ := encode(t, recs, WithSource("x"))
	cleanEnds := 0
	for cut := 0; cut < len(blob); cut++ {
		n, err := drain(blob[:cut])
		if err == io.EOF {
			cleanEnds++
			continue
		}
		if err == nil {
			t.Fatalf("cut %d: no error from a truncated stream", cut)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("cut %d: error %v is not a *CorruptError", cut, err)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("cut %d: unexpected cause %v", cut, err)
		}
		if n > uint64(len(recs)) {
			t.Fatalf("cut %d: decoded %d records from a %d-record trace", cut, n, len(recs))
		}
	}
	// The only clean-EOF cut of a (magic, header, one block) stream is at
	// the header/block boundary; everything else must be flagged.
	if cleanEnds != 1 {
		t.Fatalf("%d clean EOF cut points, want exactly 1 (the header/block frame boundary)", cleanEnds)
	}
}

// TestBitFlipAtEveryByte flips one bit in every byte of the stream in
// turn. Every flip must surface as a typed error or — only when it lands
// in the informational header fields (count hint, source label) — leave
// the decoded records identical. A flip must never alter decoded records
// silently.
func TestBitFlipAtEveryByte(t *testing.T) {
	recs := testRecords(300)
	blob, wantDigest := encode(t, recs, WithSource("x"))
	for i := 0; i < len(blob); i++ {
		mut := bytes.Clone(blob)
		mut[i] ^= 0x10
		r, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("byte %d: NewReader error %v is not *CorruptError", i, err)
			}
			continue
		}
		all, err := ReadAll(r)
		if err == nil {
			// CRC32 catches every single-bit payload flip; a surviving flip
			// must have landed in a part that does not affect record content
			// (there is none in PBT1 outside the header fields, which are
			// covered by their frame CRC — so the only undetected flips are
			// those the CRC word itself... which would mismatch). Ergo: the
			// decode must be byte-identical to the original.
			if len(all) != len(recs) || r.Digest() != wantDigest {
				t.Fatalf("byte %d: flip silently altered the decoded stream (%d records, digest %s)",
					i, len(all), r.Digest())
			}
			continue
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("byte %d: error %v is not a *CorruptError", i, err)
		}
	}
}

// TestCorruptErrorDetail spot-checks the three mid-stream corruption
// classes and their reported positions.
func TestCorruptErrorDetail(t *testing.T) {
	recs := testRecords(100)
	blob, _ := encode(t, recs, WithSource("x"))

	// Locate the data frame: magic(6) + header frame.
	hdrLen := int(uint32(blob[6]) | uint32(blob[7])<<8 | uint32(blob[8])<<16 | uint32(blob[9])<<24)
	data := 6 + 8 + hdrLen // offset of the data frame's length word

	t.Run("torn length word", func(t *testing.T) {
		_, err := drain(blob[:data+3])
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("short payload", func(t *testing.T) {
		_, err := drain(blob[:data+8+4])
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("payload bit rot", func(t *testing.T) {
		mut := bytes.Clone(blob)
		mut[data+8+2] ^= 0x01
		n, err := drain(mut)
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
		if n != 0 {
			t.Fatalf("decoded %d records from a frame that fails its CRC", n)
		}
	})
	t.Run("oversized length word", func(t *testing.T) {
		mut := bytes.Clone(blob)
		mut[data+3] = 0xff // length word now far beyond MaxFramePayload
		_, err := drain(mut)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *CorruptError", err)
		}
	})
	t.Run("bad record flags", func(t *testing.T) {
		// A CRC-valid frame with garbage records: rebuild the frame by hand.
		payload := []byte{0xff, 0x00} // flags 0xff is invalid
		var buf bytes.Buffer
		w := NewWriter(&buf, WithSource("x"))
		if err := w.Close(); err != nil { // magic + header only
			t.Fatal(err)
		}
		frame := buf.Bytes()
		frame = append(frame, frameBytes(payload)...)
		n, err := drain(frame)
		if !errors.Is(err, ErrBadRecord) {
			t.Fatalf("err = %v, want ErrBadRecord", err)
		}
		if n != 0 {
			t.Fatalf("decoded %d records", n)
		}
	})
}

// frameBytes wraps payload in the length+crc framing (test helper for
// hand-built corrupt frames).
func frameBytes(payload []byte) []byte {
	var word [8]byte
	binary.LittleEndian.PutUint32(word[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(word[4:8], crc32.ChecksumIEEE(payload))
	return append(word[:], payload...)
}

func TestWriterCountAndDigestStable(t *testing.T) {
	recs := testRecords(50)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 50 {
		t.Fatalf("Count = %d", w.Count())
	}
	d := w.Digest()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Digest() != d {
		t.Fatalf("digest changed across Close")
	}
}
