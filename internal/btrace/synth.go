package btrace

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"repro/internal/workload"
)

// synthSites is the static conditional-site budget of a synthesized
// program: the trace's dynamic-weighted bias histogram is quantized onto
// this many generator branch sites.
const synthSites = 10

// calMaxInsts caps the dynamic length of each calibration measurement so
// the closed loop stays fast even for long synthesis targets; gshare
// rates for these generators converge well before this.
const calMaxInsts = 250_000

// SynthName returns the canonical name of a workload synthesized from the
// trace with the given content digest: "trace-" + the first 12 digest hex
// digits. The name is content-addressed, so the harness cell-key and
// polyserve result-store stories are unchanged for trace-derived cells.
func SynthName(digest string) string {
	return "trace-" + shortDigest(digest)
}

// Synthesize converts a trace characterization into a calibrated
// generator spec: the bias histogram becomes Bernoulli/pattern/loop
// branch sites (high-magnitude mass becomes learnable structure, the rest
// stays data-driven), and a closed calibration loop against the gshare
// instrument scales the Bernoulli biases until the generated program's
// misprediction rate at RefHistBits matches the trace's within tolerance.
//
// The benchmark is deterministic in the characterization: name and seed
// derive from the content digest. On an unreachable target the returned
// error wraps *workload.CalibrationError and the returned benchmark is
// the best candidate found — callers (polychar) surface the error but can
// still inspect the near-miss.
func Synthesize(ch *Characterization, targetInsts uint64) (workload.Benchmark, error) {
	if targetInsts == 0 {
		targetInsts = workload.DefaultTargetInsts
	}
	if ch.Digest == "" {
		return workload.Benchmark{}, fmt.Errorf("btrace: synthesize: characterization has no digest")
	}
	build := func(alpha float64) workload.Spec {
		spec := workload.Spec{
			Name:        SynthName(ch.Digest),
			Seed:        seedFromDigest(ch.Digest),
			TargetInsts: targetInsts,
			Branches:    branchesFromHist(ch, alpha),
			BlockLen:    8,
			Chains:      6,
			LoadFrac:    0.20, StoreFrac: 0.08, MulFrac: 0.02,
			// Clustered traces (go-like) come from chains of data-dependent
			// predicates; give their stand-ins deeper predicate resolution.
			PredDepth: 4,
		}
		if ch.Placement >= 0.5 {
			spec.PredDepth = 8
		}
		return spec
	}

	// The structured fraction alpha is an estimate; history-window
	// dilution and quantization shift the real achievable range, so when
	// the inner calibration loop reports the target unreachable, trade
	// structure for randomness (or back) and retry.
	alpha := structuredFraction(ch)
	var bench workload.Benchmark
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		spec := build(alpha)
		if err := workload.CheckSpec(spec); err != nil {
			return workload.Benchmark{}, fmt.Errorf("btrace: synthesize: %w", err)
		}
		cal, rate, err := workload.CalibrateBias(spec, ch.Rate, RefHistBits, calMaxInsts, 0.05)
		bench = workload.Benchmark{Spec: cal, PaperMispredict: rate}
		if err == nil {
			return bench, nil
		}
		var ce *workload.CalibrationError
		if !errors.As(err, &ce) {
			return workload.Benchmark{}, fmt.Errorf("btrace: synthesize %s: %w", spec.Name, err)
		}
		lastErr = fmt.Errorf("btrace: synthesize %s: %w", spec.Name, err)
		switch {
		case ch.Rate > ce.Hi && alpha > 0:
			alpha = math.Max(0, alpha-0.34)
		case ch.Rate < ce.Lo && alpha < 1:
			alpha = math.Min(1, alpha+0.34)
		default:
			return bench, lastErr
		}
	}
	return bench, lastErr
}

// structuredFraction estimates what share of the high-bias (magnitude ≥
// 0.80) histogram mass is learnable structure rather than skewed
// randomness: purely random sites of magnitude m mispredict at ≈ 1-m, so
// the gap between that prediction and the observed rate is mass that a
// predictor actually learned.
func structuredFraction(ch *Characterization) float64 {
	var lowRand, highRand float64
	for i, share := range ch.BiasHist {
		mag := 0.5 + (float64(i)+0.5)/(2*BiasBins)
		if mag >= 0.80 {
			highRand += share * (1 - mag)
		} else {
			lowRand += share * (1 - mag)
		}
	}
	if highRand <= 0 {
		return 0
	}
	return math.Max(0, math.Min(1, (lowRand+highRand-ch.Rate)/highRand))
}

// seedFromDigest derives a deterministic generator seed from the first 15
// hex digits of the content digest.
func seedFromDigest(digest string) int64 {
	n := len(digest)
	if n > 15 {
		n = 15
	}
	v, err := strconv.ParseInt(digest[:n], 16, 64)
	if err != nil || v == 0 {
		return 1
	}
	return v
}

// branchesFromHist quantizes the dynamic-weighted bias histogram onto
// synthSites generator branch sites.
//
// The key decision is whether high-bias histogram mass is *structure*
// (loop back edges and periodic predicates — learnable, near-zero
// misprediction) or *skewed randomness* (m88ksim-style biased data
// branches — gshare is stuck at the minority rate). Per-PC bias alone
// cannot distinguish them; alpha (from structuredFraction, possibly
// adjusted by Synthesize's retry loop) is the fraction of each high-bias
// bin's sites that become structure — counted loops, or, when the trace
// shows a strong history-depth response, periodic pattern branches. The
// rest stays Bernoulli at the bin magnitude, signed by the trace's
// overall taken rate, for the closed calibration loop to scale.
func branchesFromHist(ch *Characterization, alpha float64) []workload.BranchSpec {
	// History sensitivity: how much deepening history from 2 bits to the
	// reference depth improves predictability — structure that needs
	// history is pattern-shaped rather than loop-shaped.
	var shallow float64
	for _, p := range ch.HistCurve {
		if p.Bits == 2 {
			shallow = p.Rate
		}
	}
	histSensitive := shallow > 0 && (shallow-ch.Rate)/shallow > 0.30

	var out []workload.BranchSpec
	patterns := 0
	for i, share := range ch.BiasHist {
		n := int(math.Round(share * synthSites))
		if n == 0 {
			continue
		}
		mag := 0.5 + (float64(i)+0.5)/(2*BiasBins) // bin center
		nStruct := int(math.Round(alpha * float64(n)))
		for k := 0; k < n; k++ {
			if mag >= 0.80 && k < nStruct {
				if histSensitive && patterns < 4 && mag < 0.94 {
					period := clampInt(int(math.Round(1/(1-mag))), 2, 16)
					out = append(out, workload.BranchSpec{Kind: workload.KindPattern, Period: period})
					patterns++
				} else {
					trip := clampInt(int(math.Round(1/(1-mag))), 2, 64)
					out = append(out, workload.BranchSpec{Kind: workload.KindLoop, Trip: trip})
				}
				continue
			}
			bias := mag
			if bias > 0.995 {
				bias = 0.995
			}
			if ch.TakenRate < 0.5 {
				bias = 1 - bias
			}
			out = append(out, workload.BranchSpec{Kind: workload.KindBernoulli, Bias: bias})
		}
	}
	if len(out) == 0 {
		// Degenerate histogram (e.g. a branchless trace): one learnable
		// long loop keeps the spec valid with a near-zero rate.
		out = []workload.BranchSpec{{Kind: workload.KindLoop, Trip: 64}}
	}
	if ch.Rate >= 0.005 {
		// Calibration needs a knob: if the quantizer allocated only
		// structured sites (their small random mass rounded away), give it
		// Bernoulli sites to scale, or the target rate is unreachable.
		hasBern := false
		for _, b := range out {
			if b.Kind == workload.KindBernoulli {
				hasBern = true
				break
			}
		}
		if !hasBern {
			// One site only: even a near-constant extra branch dilutes the
			// finite history window and degrades the structured sites, so
			// the knob must stay as small as possible.
			bias := 0.75
			if ch.TakenRate < 0.5 {
				bias = 0.25
			}
			out = append(out, workload.BranchSpec{Kind: workload.KindBernoulli, Bias: bias})
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
