// Package btrace defines the portable PolyPath branch-trace format (PBT1)
// and the tooling that grows the workload suite from real-world traces: a
// streaming CRC-protected reader/writer, a predictability characterizer
// (per-PC bias, history-depth response, misprediction clustering — the
// taxonomy of "Workload Characterization for Branch Predictability"), and
// an importer that synthesizes a calibrated synthetic program whose gshare
// misprediction profile matches the trace.
//
// # Format specification (PBT1)
//
// A trace file is a 6-byte magic followed by a sequence of CRC-protected
// frames. Byte order is little-endian throughout.
//
//	magic:  "PBTR" 0x31 0x0a            ("PBTR1\n", 6 bytes)
//	frame:  uint32 payloadLen | uint32 crc32(payload) | payload
//
// The first frame is the header frame; every following frame is a record
// block. End of file at a frame boundary is a clean end; anything else
// (torn length word, short payload, CRC mismatch) is reported as a typed
// *CorruptError. payloadLen is bounded by MaxFramePayload, so a corrupt
// length word cannot drive unbounded allocation.
//
// Header frame payload:
//
//	uvarint version (must be 1)
//	uvarint count hint (0 = unknown; informational only)
//	uvarint len(source) | source bytes (UTF-8 label, informational)
//
// Record block payload — a sequence of records, delta-encoded:
//
//	flags byte: bit0 = taken, bit1 = indirect
//	zigzag-varint PC delta from the previous record's PC
//	    (the first record of each block encodes its absolute PC as a
//	    delta from 0, making every block independently decodable)
//	if indirect: zigzag-varint (target - pc)
//
// A record is one dynamic control-flow decision, CBP-style: the PC of a
// conditional branch and its direction, or (indirect) the resolved target
// of an indirect jump. The format is gzip-transparent: NewReader detects
// the gzip magic and decompresses on the fly, and the Writer compresses
// when the file name or an option asks for it. Readers are streaming —
// the trace is never loaded into memory.
//
// The identity of a trace is its content digest: sha256 over the decoded
// record stream in a canonical serialization (independent of block
// boundaries and compression). Workloads synthesized from a trace carry
// the digest in their name, which keeps the harness cell-key /
// result-store story content-addressed end to end.
package btrace

import (
	"bufio"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Record is one dynamic control-flow decision.
type Record struct {
	PC    uint64
	Taken bool
	// Indirect marks an indirect-jump record: Taken is meaningless and
	// Target holds the resolved destination.
	Indirect bool
	Target   uint64
}

// Format constants.
const (
	// Version is the current PBT format version.
	Version = 1
	// MaxFramePayload bounds a frame payload; a corrupt length word fails
	// fast instead of driving a giant allocation.
	MaxFramePayload = 1 << 20
	// blockRecords is the writer's records-per-block flush threshold.
	blockRecords = 4096
)

var magic = []byte{'P', 'B', 'T', 'R', '1', '\n'}

// Typed corruption causes, matchable with errors.Is.
var (
	// ErrTruncated marks a file cut off mid-frame (torn tail).
	ErrTruncated = errors.New("btrace: truncated frame")
	// ErrChecksum marks a frame whose payload fails its CRC.
	ErrChecksum = errors.New("btrace: frame checksum mismatch")
	// ErrBadMagic marks a stream that is not a PBT trace at all.
	ErrBadMagic = errors.New("btrace: bad magic")
	// ErrBadRecord marks a CRC-valid payload with undecodable records.
	ErrBadRecord = errors.New("btrace: malformed record")
)

// CorruptError is the typed decode failure: what went wrong, where, and
// how much was safely recovered before the damage.
type CorruptError struct {
	// Cause is one of ErrTruncated, ErrChecksum, ErrBadMagic, ErrBadRecord.
	Cause error
	// Frame is the 0-based index of the bad frame (header frame = 0).
	Frame int
	// Records is the count of records decoded from intact frames before
	// the corruption.
	Records uint64
	Detail  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("%v (frame %d, after %d intact records): %s", e.Cause, e.Frame, e.Records, e.Detail)
}

func (e *CorruptError) Unwrap() error { return e.Cause }

// Header is the trace file header.
type Header struct {
	Version int
	// Count is the writer's record-count hint (0 = unknown). Informational:
	// readers must tolerate a trailing torn frame regardless.
	Count uint64
	// Source labels the trace's origin (program name, collection tool).
	Source string
}

// ---- digest ----

// digester folds records into the canonical content digest.
type digester struct {
	h   hash.Hash
	buf [2*binary.MaxVarintLen64 + 1]byte
}

func newDigester() *digester { return &digester{h: sha256.New()} }

func (d *digester) add(r Record) {
	n := binary.PutUvarint(d.buf[:], r.PC)
	d.buf[n] = recFlags(r)
	n++
	if r.Indirect {
		n += binary.PutUvarint(d.buf[n:], r.Target)
	}
	d.h.Write(d.buf[:n])
}

func (d *digester) sum() string { return hex.EncodeToString(d.h.Sum(nil)) }

func recFlags(r Record) byte {
	var f byte
	if r.Taken {
		f |= 1
	}
	if r.Indirect {
		f |= 2
	}
	return f
}

// ---- writer ----

// Writer streams records into a PBT1 trace. It buffers one block at a
// time; Close flushes the final partial block. Writer does not close the
// underlying io.Writer.
type Writer struct {
	w       *bufio.Writer
	gz      *gzip.Writer
	payload []byte
	inBlock int
	lastPC  uint64
	count   uint64
	dig     *digester
	err     error
	header  Header
	started bool
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WithGzip compresses the stream with gzip (readers detect it
// transparently).
func WithGzip() WriterOption {
	return func(w *Writer) {
		w.gz = gzip.NewWriter(nil) // bound to the sink in NewWriter
	}
}

// WithSource sets the header's source label.
func WithSource(source string) WriterOption {
	return func(w *Writer) { w.header.Source = source }
}

// WithCountHint records the expected record count in the header.
func WithCountHint(n uint64) WriterOption {
	return func(w *Writer) { w.header.Count = n }
}

// NewWriter creates a PBT1 writer over sink. The magic and header frame
// are emitted lazily on the first write (or on Close for an empty trace).
func NewWriter(sink io.Writer, opts ...WriterOption) *Writer {
	w := &Writer{header: Header{Version: Version}, dig: newDigester()}
	for _, o := range opts {
		o(w)
	}
	if w.gz != nil {
		w.gz.Reset(sink)
		w.w = bufio.NewWriter(w.gz)
	} else {
		w.w = bufio.NewWriter(sink)
	}
	return w
}

func (w *Writer) start() error {
	if w.started {
		return nil
	}
	w.started = true
	if _, err := w.w.Write(magic); err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(w.header.Version))
	hdr = binary.AppendUvarint(hdr, w.header.Count)
	hdr = binary.AppendUvarint(hdr, uint64(len(w.header.Source)))
	hdr = append(hdr, w.header.Source...)
	return w.writeFrame(hdr)
}

func (w *Writer) writeFrame(payload []byte) error {
	var word [8]byte
	binary.LittleEndian.PutUint32(word[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(word[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(word[:]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	if w.err = w.start(); w.err != nil {
		return w.err
	}
	if w.inBlock == 0 {
		w.lastPC = 0 // every block restarts delta encoding from 0
	}
	w.payload = append(w.payload, recFlags(r))
	w.payload = binary.AppendVarint(w.payload, int64(r.PC)-int64(w.lastPC))
	if r.Indirect {
		w.payload = binary.AppendVarint(w.payload, int64(r.Target)-int64(r.PC))
	}
	w.lastPC = r.PC
	w.inBlock++
	w.count++
	w.dig.add(r)
	if w.inBlock >= blockRecords || len(w.payload) >= MaxFramePayload-16 {
		w.err = w.flushBlock()
	}
	return w.err
}

func (w *Writer) flushBlock() error {
	if w.inBlock == 0 {
		return nil
	}
	err := w.writeFrame(w.payload)
	w.payload = w.payload[:0]
	w.inBlock = 0
	return err
}

// Count returns the records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Digest returns the content digest of the records written so far
// (stable once Close has been called).
func (w *Writer) Digest() string { return w.dig.sum() }

// Close flushes buffered frames and the compression stream. It does not
// close the underlying sink.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.start(); err != nil { // empty trace still gets magic+header
		return err
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		return w.gz.Close()
	}
	return nil
}

// ---- reader ----

// Reader streams records out of a PBT1 trace without ever holding the
// whole trace in memory. It transparently decompresses gzip input.
type Reader struct {
	r       *bufio.Reader
	header  Header
	payload []byte
	off     int // decode offset into payload
	lastPC  uint64
	frame   int
	count   uint64
	dig     *digester
	done    bool
}

// NewReader opens a PBT1 stream, sniffing and unwrapping gzip, and reads
// the header frame. A stream that is not a PBT trace fails with
// *CorruptError(ErrBadMagic).
func NewReader(src io.Reader) (*Reader, error) {
	br := bufio.NewReader(src)
	if hdr, err := br.Peek(2); err == nil && hdr[0] == 0x1f && hdr[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("btrace: gzip: %w", err)
		}
		br = bufio.NewReader(gz)
	}
	r := &Reader{r: br, dig: newDigester()}
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, r.corrupt(ErrBadMagic, fmt.Sprintf("short magic: %v", err))
	}
	if string(got) != string(magic) {
		return nil, r.corrupt(ErrBadMagic, fmt.Sprintf("got % x, want % x (%q)", got, magic, magic))
	}
	payload, err := r.readFrame()
	if err == io.EOF {
		// Magic with no header frame: a torn write, not a clean end.
		return nil, r.corrupt(ErrTruncated, "missing header frame")
	}
	if err != nil {
		return nil, err
	}
	if err := r.decodeHeader(payload); err != nil {
		return nil, err
	}
	// The header frame is fully consumed; empty the payload view (keeping
	// its capacity for reuse) so Next starts at the first record block.
	r.payload = r.payload[:0]
	r.frame = 1
	return r, nil
}

// Header returns the trace header.
func (r *Reader) Header() Header { return r.header }

func (r *Reader) corrupt(cause error, detail string) error {
	return &CorruptError{Cause: cause, Frame: r.frame, Records: r.count, Detail: detail}
}

// readFrame reads one length+crc+payload frame. io.EOF exactly at a frame
// boundary is returned as io.EOF; any partial read is a typed corruption.
func (r *Reader) readFrame() ([]byte, error) {
	var word [8]byte
	n, err := io.ReadFull(r.r, word[:])
	if err == io.EOF && n == 0 {
		return nil, io.EOF
	}
	if err != nil {
		return nil, r.corrupt(ErrTruncated, fmt.Sprintf("frame length word: %d of 8 bytes", n))
	}
	length := binary.LittleEndian.Uint32(word[0:4])
	crc := binary.LittleEndian.Uint32(word[4:8])
	if length > MaxFramePayload {
		return nil, r.corrupt(ErrChecksum, fmt.Sprintf("frame payload length %d exceeds cap %d", length, MaxFramePayload))
	}
	if cap(r.payload) < int(length) {
		r.payload = make([]byte, length)
	}
	payload := r.payload[:length]
	if n, err := io.ReadFull(r.r, payload); err != nil {
		return nil, r.corrupt(ErrTruncated, fmt.Sprintf("frame payload: %d of %d bytes", n, length))
	}
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, r.corrupt(ErrChecksum, fmt.Sprintf("crc %08x, want %08x over %d bytes", got, crc, length))
	}
	return payload, nil
}

func (r *Reader) decodeHeader(payload []byte) error {
	off := 0
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	ver, ok := next()
	if !ok {
		return r.corrupt(ErrBadRecord, "header: unreadable version")
	}
	if ver != Version {
		return r.corrupt(ErrBadRecord, fmt.Sprintf("header: unsupported version %d (have %d)", ver, Version))
	}
	count, ok := next()
	if !ok {
		return r.corrupt(ErrBadRecord, "header: unreadable count hint")
	}
	slen, ok := next()
	if !ok || int(slen) > len(payload)-off {
		return r.corrupt(ErrBadRecord, "header: unreadable source label")
	}
	r.header = Header{Version: int(ver), Count: count, Source: string(payload[off : off+int(slen)])}
	return nil
}

// Next returns the next record, io.EOF at a clean end of trace, or a
// *CorruptError describing the damage. After a corruption error the
// reader stays usable only for Count/Digest of the intact prefix.
func (r *Reader) Next() (Record, error) {
	for {
		if r.done {
			return Record{}, io.EOF
		}
		if r.off < len(r.payload) {
			rec, n, err := decodeRecord(r.payload[r.off:], r.lastPC)
			if err != nil {
				r.done = true
				return Record{}, r.corrupt(ErrBadRecord, fmt.Sprintf("offset %d in block: %v", r.off, err))
			}
			r.off += n
			r.lastPC = rec.PC
			r.count++
			r.dig.add(rec)
			return rec, nil
		}
		payload, err := r.readFrame()
		if err != nil {
			r.done = true
			return Record{}, err
		}
		r.payload = payload
		r.off = 0
		r.lastPC = 0
		r.frame++
	}
}

// decodeRecord decodes one record from buf given the previous PC.
func decodeRecord(buf []byte, lastPC uint64) (Record, int, error) {
	if len(buf) == 0 {
		return Record{}, 0, fmt.Errorf("empty")
	}
	flags := buf[0]
	if flags&^byte(3) != 0 {
		return Record{}, 0, fmt.Errorf("unknown flag bits %#x", flags)
	}
	off := 1
	delta, n := binary.Varint(buf[off:])
	if n <= 0 {
		return Record{}, 0, fmt.Errorf("unreadable pc delta")
	}
	off += n
	rec := Record{
		PC:       uint64(int64(lastPC) + delta),
		Taken:    flags&1 != 0,
		Indirect: flags&2 != 0,
	}
	if rec.Indirect {
		tdelta, n := binary.Varint(buf[off:])
		if n <= 0 {
			return Record{}, 0, fmt.Errorf("unreadable target delta")
		}
		off += n
		rec.Target = uint64(int64(rec.PC) + tdelta)
	}
	return rec, off, nil
}

// Count returns the records decoded so far.
func (r *Reader) Count() uint64 { return r.count }

// Digest returns the content digest of the records decoded so far; after
// Next has returned io.EOF it is the digest of the whole trace and equals
// the producing Writer's Digest.
func (r *Reader) Digest() string { return r.dig.sum() }

// ReadAll drains a reader into memory — a convenience for tests and small
// traces; production paths should stream via Next.
func ReadAll(r *Reader) ([]Record, error) {
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
