package btrace

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/workload"
)

// fidelityInsts is the dynamic length of the round-trip fidelity gate —
// long enough for gshare to reach steady state on every family, short
// enough to keep the gate in tier-1 time.
const fidelityInsts = 300_000

// TestRoundTripFidelity is the acceptance gate of the trace pipeline:
// every workload family is exported to a PBT1 stream, read back,
// characterized, and re-synthesized, and the stand-in's gshare
// misprediction rate at RefHistBits must match the original trace's
// within ±10% relative. The same gate runs against committed goldens in
// scripts/char_smoke.sh.
func TestRoundTripFidelity(t *testing.T) {
	names := append(workload.Names(), "ptrchase", "interp-dispatch", "branchless")
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := workload.ByName(name, fidelityInsts)
			if err != nil {
				t.Fatal(err)
			}
			p, err := workload.Generate(b.Spec)
			if err != nil {
				t.Fatal(err)
			}

			// Full file round trip: export, re-read, characterize.
			var buf bytes.Buffer
			n, digest, err := WriteProgramTrace(&buf, p, fidelityInsts, name, true)
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			r, err := NewReader(&buf)
			if err != nil {
				t.Fatalf("import: %v", err)
			}
			ch, err := Characterize(r)
			if err != nil {
				t.Fatalf("characterize: %v", err)
			}
			if ch.Records != n {
				t.Fatalf("characterized %d records, exported %d", ch.Records, n)
			}
			if ch.Digest != digest {
				t.Fatalf("round-trip digest %s != export digest %s", ch.Digest, digest)
			}

			// The direct (no file) profile must be identical — same digest,
			// same rate.
			direct, err := CharacterizeProgram(p, fidelityInsts, name)
			if err != nil {
				t.Fatal(err)
			}
			if direct.Digest != ch.Digest || direct.Rate != ch.Rate {
				t.Fatalf("CharacterizeProgram diverges from file round trip: digest %s/%s rate %v/%v",
					direct.Digest, ch.Digest, direct.Rate, ch.Rate)
			}

			if ch.Rate < 0.005 {
				t.Logf("%s: rate %.4f below the synthesis floor; fidelity gate not applicable", name, ch.Rate)
				return
			}
			bench, err := Synthesize(ch, fidelityInsts)
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			if bench.Spec.Name != SynthName(ch.Digest) {
				t.Fatalf("synthesized name %q, want %q", bench.Spec.Name, SynthName(ch.Digest))
			}
			sp, err := workload.Generate(bench.Spec)
			if err != nil {
				t.Fatal(err)
			}
			rate, _, err := workload.GshareMispredictRate(sp, RefHistBits, fidelityInsts)
			if err != nil {
				t.Fatal(err)
			}
			rel := (rate - ch.Rate) / ch.Rate
			t.Logf("%s: trace %.4f, stand-in %.4f (%+.1f%% relative)", name, ch.Rate, rate, 100*rel)
			if rel > 0.10 || rel < -0.10 {
				t.Errorf("%s: stand-in rate %.4f vs trace %.4f: relative error %+.1f%% exceeds ±10%%",
					name, rate, ch.Rate, 100*rel)
			}
		})
	}
}

// TestSynthesizeDeterministic: the same characterization must synthesize
// the byte-identical spec (content-addressed workloads cannot drift).
func TestSynthesizeDeterministic(t *testing.T) {
	b, err := workload.ByName("perl", 100_000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Generate(b.Spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := CharacterizeProgram(p, 100_000, "perl")
	if err != nil {
		t.Fatal(err)
	}
	b1, err1 := Synthesize(ch, 100_000)
	b2, err2 := Synthesize(ch, 100_000)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
	}
	if b1.Spec.Name != b2.Spec.Name || b1.Spec.Seed != b2.Spec.Seed ||
		len(b1.Spec.Branches) != len(b2.Spec.Branches) || b1.PaperMispredict != b2.PaperMispredict {
		t.Fatalf("nondeterministic synthesis:\n%+v\n%+v", b1.Spec, b2.Spec)
	}
	for i := range b1.Spec.Branches {
		if b1.Spec.Branches[i] != b2.Spec.Branches[i] {
			t.Fatalf("branch %d differs: %+v vs %+v", i, b1.Spec.Branches[i], b2.Spec.Branches[i])
		}
	}
}

func TestSynthNameAndSeed(t *testing.T) {
	digest := "deadbeefcafe0123456789abcdef0123456789abcdef0123456789abcdef0123"
	if got := SynthName(digest); got != "trace-deadbeefcafe" {
		t.Fatalf("SynthName = %q", got)
	}
	if seedFromDigest(digest) == seedFromDigest("0000aa"+digest[6:]) {
		t.Fatal("distinct digests must give distinct seeds")
	}
	if seedFromDigest("zzzz") != 1 {
		t.Fatalf("non-hex digest must fall back to seed 1")
	}
}

// TestCalibrationErrorSurfaced: an impossible target (a misprediction
// rate above the Bernoulli coin-flip ceiling — an adversarially
// anti-correlated trace) must surface the typed near-miss, with the
// achievable range populated, not a silent clamp.
func TestCalibrationErrorSurfaced(t *testing.T) {
	ch := &Characterization{
		Digest:    "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff",
		Records:   100_000,
		Cond:      100_000,
		Sites:     10,
		TakenRate: 0.95,
		Rate:      0.85, // beyond any Bernoulli stand-in's ~0.5 ceiling
		HistCurve: []HistPoint{{Bits: 2, Rate: 0.85}, {Bits: RefHistBits, Rate: 0.85}},
	}
	ch.BiasHist[BiasBins-1] = 1.0 // all sites in [0.95, 1.0)
	ch.MeanBias = 0.975

	bench, err := Synthesize(ch, 100_000)
	if err == nil {
		t.Fatal("Synthesize must report the unreachable target")
	}
	var ce *workload.CalibrationError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v does not wrap *workload.CalibrationError", err)
	}
	if ce.Lo < 0 || ce.Hi >= ce.Target || ce.Tolerance <= 0 {
		t.Fatalf("near-miss range not populated: %+v", ce)
	}
	// The best candidate still comes back for inspection.
	if bench.Spec.Name != SynthName(ch.Digest) || len(bench.Spec.Branches) == 0 {
		t.Fatalf("near-miss benchmark not returned: %+v", bench.Spec)
	}
}
