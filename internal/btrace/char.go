package btrace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/bpred"
)

// RefHistBits is the reference gshare history depth for the headline
// misprediction rate and the clustering analysis — the reproduction's
// scaled Table 1 baseline (see DESIGN.md).
const RefHistBits = 11

// HistDepths is the history-depth response curve's x axis: gshare history
// lengths swept in one streaming pass.
var HistDepths = []int{1, 2, 4, 6, 8, 11, 14}

// clusterWindow is the look-back distance (in conditional branches) of the
// misprediction-clustering test: a misprediction is "clustered" when at
// least one of the preceding clusterWindow conditional branches also
// mispredicted.
const clusterWindow = 4

// Taxonomy classes, in the spirit of "Workload Characterization for Branch
// Predictability": where a workload's mispredictions come from and how
// they arrive.
const (
	// ClassPredictable: almost everything is learnable; mispredictions are
	// too rare to have structure (vortex-like).
	ClassPredictable = "predictable"
	// ClassClustered: mispredictions arrive in bursts — the paper's go-like
	// end of the Figure 8 spectrum, where JRS confidence PVN is high.
	ClassClustered = "clustered"
	// ClassIsolated: mispredictions arrive alone, surrounded by correctly
	// predicted branches — the m88ksim-like end, the paper's PVN anomaly.
	ClassIsolated = "isolated"
	// ClassMixed: between the two ends.
	ClassMixed = "mixed"
)

// HistPoint is one point of the history-depth response curve.
type HistPoint struct {
	Bits int     `json:"bits"`
	Rate float64 `json:"rate"`
}

// BiasBins is the number of per-PC bias-magnitude histogram bins, covering
// magnitude [0.5, 1.0] in equal steps.
const BiasBins = 10

// Characterization is the predictability profile of a branch trace.
type Characterization struct {
	// Digest is the trace's content digest (sha256 of the canonical record
	// stream); the identity under which synthesized workloads are named.
	Digest string `json:"digest"`
	Source string `json:"source,omitempty"`

	Records   uint64  `json:"records"`
	Cond      uint64  `json:"cond_branches"`
	Indirect  uint64  `json:"indirect_jumps"`
	Sites     int     `json:"static_sites"`
	TakenRate float64 `json:"taken_rate"`

	// BiasHist is the dynamic-execution-weighted share of conditional
	// branches by per-PC bias magnitude: bin i covers max(p,1-p) in
	// [0.5+i/20, 0.5+(i+1)/20).
	BiasHist [BiasBins]float64 `json:"bias_hist"`
	// MeanBias is the dynamic-weighted mean per-PC bias magnitude.
	MeanBias float64 `json:"mean_bias"`

	// HistCurve is the gshare misprediction rate at each history depth of
	// HistDepths — the history-depth response.
	HistCurve []HistPoint `json:"hist_curve"`
	// Rate is the misprediction rate at RefHistBits (the headline number,
	// directly comparable to Table 1).
	Rate float64 `json:"rate"`

	// NeighborProb is the observed probability that a misprediction at
	// RefHistBits has another misprediction within the preceding
	// clusterWindow conditional branches — the absolute clustering density.
	NeighborProb float64 `json:"neighbor_prob"`
	// ClusterScore normalizes NeighborProb by what an independent
	// (Bernoulli) misprediction stream of the same rate would show:
	// ~1 = independent arrivals, >1 = clustered beyond rate, <1 =
	// anti-clustered.
	ClusterScore float64 `json:"cluster_score"`
	// RunLenMean is the mean length of consecutive-misprediction runs.
	RunLenMean float64 `json:"run_len_mean"`

	// Placement is the workload's position on the paper's Figure 8
	// clustered-vs-isolated misprediction spectrum: 0 = fully isolated
	// (m88ksim-like: mispredictions arrive alone amid correct predictions,
	// low JRS PVN), 1 = fully clustered (go-like: a misprediction is
	// usually near another, high JRS PVN). This is NeighborProb clamped to
	// [0,1] — the paper's spectrum tracks how densely mispredictions pack,
	// which is what makes JRS confidence informative.
	Placement float64 `json:"placement"`
	// Class is the taxonomy class: predictable, clustered, isolated, mixed.
	Class string `json:"class"`

	// c retains the finished characterizer so per-site diagnostics
	// (TopSites) stay available after the one-pass profile closes.
	c *Characterizer
}

// siteStat accumulates one static conditional branch site.
type siteStat struct {
	count uint64
	taken uint64
}

// warmupBranches is how many conditional branches the clustering
// statistics skip while the reference predictor trains: cold-start
// mispredictions are dense regardless of the workload's steady-state
// character and would read as spurious clustering. (4× the reference
// table's 2048 counters.)
const warmupBranches = 8192

// clusterAcc accumulates misprediction-arrival statistics over one span
// of the trace.
type clusterAcc struct {
	recent    uint64 // bitmask of the last clusterWindow mispredict flags
	seen      uint64 // cond branches folded in (primes the window)
	miss      uint64
	clustered uint64 // mispredicts with a mispredict in the window
	den       uint64 // mispredicts with a fully-primed window
	runLen    uint64
	runSum    uint64
	runCount  uint64
}

func (a *clusterAcc) add(mispredict bool) {
	if mispredict {
		a.miss++
		if a.seen >= clusterWindow {
			a.den++
			if a.recent&((1<<clusterWindow)-1) != 0 {
				a.clustered++
			}
		}
		a.recent = a.recent<<1 | 1
		a.runLen++
	} else {
		a.recent <<= 1
		if a.runLen > 0 {
			a.runSum += a.runLen
			a.runCount++
			a.runLen = 0
		}
	}
	a.seen++
}

func (a *clusterAcc) finish() {
	if a.runLen > 0 { // span ended mid-run
		a.runSum += a.runLen
		a.runCount++
		a.runLen = 0
	}
}

// Characterizer is the streaming trace profiler: feed records with Add,
// then Finish. One pass, O(static sites) memory.
type Characterizer struct {
	source string

	records  uint64
	cond     uint64
	indirect uint64
	taken    uint64
	sites    map[uint64]*siteStat

	preds  []*bpred.Gshare
	hists  []uint64
	misses []uint64

	// clustering at RefHistBits: all holds the whole trace, warm the
	// post-warmup steady state (preferred when populated).
	refIdx int
	all    clusterAcc
	warm   clusterAcc
}

// NewCharacterizer creates a streaming characterizer. source labels the
// output (use the trace header's Source).
func NewCharacterizer(source string) *Characterizer {
	c := &Characterizer{
		source: source,
		sites:  make(map[uint64]*siteStat),
		preds:  make([]*bpred.Gshare, len(HistDepths)),
		hists:  make([]uint64, len(HistDepths)),
		misses: make([]uint64, len(HistDepths)),
		refIdx: -1,
	}
	for i, bits := range HistDepths {
		c.preds[i] = bpred.NewGshare(bits)
		if bits == RefHistBits {
			c.refIdx = i
		}
	}
	if c.refIdx < 0 {
		panic("btrace: HistDepths must include RefHistBits")
	}
	return c
}

// Add feeds one record.
func (c *Characterizer) Add(r Record) {
	c.records++
	if r.Indirect {
		c.indirect++
		return
	}
	c.cond++
	if r.Taken {
		c.taken++
	}
	s := c.sites[r.PC]
	if s == nil {
		s = &siteStat{}
		c.sites[r.PC] = s
	}
	s.count++
	if r.Taken {
		s.taken++
	}
	for i, g := range c.preds {
		pred := g.Predict(int(r.PC), c.hists[i])
		mispredict := pred != r.Taken
		if mispredict {
			c.misses[i]++
		}
		if i == c.refIdx {
			c.all.add(mispredict)
			if c.all.seen > warmupBranches {
				c.warm.add(mispredict)
			}
		}
		g.Update(int(r.PC), c.hists[i], r.Taken)
		c.hists[i] = bpred.PushHistory(c.hists[i], r.Taken)
	}
}

// Finish closes the pass and computes the profile. digest is the trace
// content digest (Reader.Digest / Writer.Digest).
func (c *Characterizer) Finish(digest string) *Characterization {
	ch := &Characterization{
		Digest:   digest,
		Source:   c.source,
		Records:  c.records,
		Cond:     c.cond,
		Indirect: c.indirect,
		Sites:    len(c.sites),
	}
	c.all.finish()
	c.warm.finish()
	if c.cond == 0 {
		ch.Class = ClassPredictable
		ch.c = c
		return ch
	}
	ch.TakenRate = float64(c.taken) / float64(c.cond)

	var biasSum float64
	for _, s := range c.sites {
		p := float64(s.taken) / float64(s.count)
		mag := math.Max(p, 1-p)
		bin := int((mag - 0.5) * 2 * BiasBins)
		if bin >= BiasBins {
			bin = BiasBins - 1
		}
		if bin < 0 {
			bin = 0
		}
		w := float64(s.count) / float64(c.cond)
		ch.BiasHist[bin] += w
		biasSum += mag * w
	}
	ch.MeanBias = biasSum

	ch.HistCurve = make([]HistPoint, len(HistDepths))
	for i, bits := range HistDepths {
		ch.HistCurve[i] = HistPoint{Bits: bits, Rate: float64(c.misses[i]) / float64(c.cond)}
	}
	ch.Rate = ch.HistCurve[c.refIdx].Rate

	// Prefer steady-state (post-warmup) clustering statistics; fall back
	// to the whole trace when it is too short to escape warmup.
	acc := &c.warm
	if acc.den < 100 {
		acc = &c.all
	}
	if acc.runCount > 0 {
		ch.RunLenMean = float64(acc.runSum) / float64(acc.runCount)
	}
	// Expected neighbor-miss probability under independent arrivals of the
	// span's own rate: 1 - (1-r)^W.
	spanRate := float64(acc.miss) / math.Max(float64(acc.seen), 1)
	expect := 1 - math.Pow(1-spanRate, clusterWindow)
	if acc.den > 0 {
		ch.NeighborProb = float64(acc.clustered) / float64(acc.den)
		if expect > 0 {
			ch.ClusterScore = ch.NeighborProb / expect
		}
	}
	ch.Placement = math.Max(0, math.Min(1, ch.NeighborProb))
	ch.Class = classify(ch.Rate, ch.Placement)
	ch.c = c
	return ch
}

// classify assigns the taxonomy class from the headline rate and spectrum
// placement.
func classify(rate, place float64) string {
	switch {
	case rate < 0.025:
		return ClassPredictable
	case place >= 0.5:
		return ClassClustered
	case place <= 0.3:
		return ClassIsolated
	default:
		return ClassMixed
	}
}

// Characterize profiles an open trace reader, streaming to the end.
func Characterize(r *Reader) (*Characterization, error) {
	c := NewCharacterizer(r.Header().Source)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return c.Finish(r.Digest()), nil
		}
		if err != nil {
			return nil, err
		}
		c.Add(rec)
	}
}

// Render formats the characterization as the polychar report block.
func (ch *Characterization) Render() string {
	var b strings.Builder
	src := ch.Source
	if src == "" {
		src = "(unlabelled)"
	}
	fmt.Fprintf(&b, "trace %s  source %s\n", shortDigest(ch.Digest), src)
	fmt.Fprintf(&b, "records %d  cond %d  indirect %d  static sites %d  taken %.1f%%\n",
		ch.Records, ch.Cond, ch.Indirect, ch.Sites, 100*ch.TakenRate)
	fmt.Fprintf(&b, "gshare(%d) mispredict %.2f%%  mean bias %.3f\n", RefHistBits, 100*ch.Rate, ch.MeanBias)
	b.WriteString("bias histogram (per-PC magnitude, dynamic-weighted):\n")
	for i, share := range ch.BiasHist {
		lo := 0.5 + float64(i)/(2*BiasBins)
		hi := lo + 1.0/(2*BiasBins)
		fmt.Fprintf(&b, "  [%.2f,%.2f) %6.1f%% %s\n", lo, hi, 100*share, bar(share, 40))
	}
	b.WriteString("history-depth response (gshare mispredict rate):\n")
	for _, p := range ch.HistCurve {
		fmt.Fprintf(&b, "  h=%-2d %6.2f%% %s\n", p.Bits, 100*p.Rate, bar(p.Rate, 40))
	}
	fmt.Fprintf(&b, "clustering: neighbor-prob %.2f  score %.2f  run-length mean %.2f\n",
		ch.NeighborProb, ch.ClusterScore, ch.RunLenMean)
	fmt.Fprintf(&b, "figure-8 placement %.2f (0=isolated, 1=clustered)  class %s\n", ch.Placement, ch.Class)
	return b.String()
}

func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// TopSites returns the n most-executed conditional sites with their
// per-site bias, sorted by dynamic count descending (PC ascending on
// ties) — diagnostic output for polychar -sites.
func (c *Characterizer) TopSites(n int) []SiteBias {
	out := make([]SiteBias, 0, len(c.sites))
	for pc, s := range c.sites {
		out = append(out, SiteBias{PC: pc, Count: s.count, TakenRate: float64(s.taken) / float64(s.count)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopSites exposes the per-site diagnostics on a finished profile.
func (ch *Characterization) TopSites(n int) []SiteBias {
	if ch.c == nil {
		return nil
	}
	return ch.c.TopSites(n)
}

// SiteBias is one static site's dynamic profile.
type SiteBias struct {
	PC        uint64  `json:"pc"`
	Count     uint64  `json:"count"`
	TakenRate float64 `json:"taken_rate"`
}
