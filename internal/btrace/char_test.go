package btrace

import (
	"math"
	"math/rand"
	"testing"
)

// feed pushes n conditional records at pc through a characterizer using
// outcome(i) as the direction.
func feed(c *Characterizer, pc uint64, n int, outcome func(i int) bool) {
	for i := 0; i < n; i++ {
		c.Add(Record{PC: pc, Taken: outcome(i)})
	}
}

// TestCharacterizePeriodic: a strictly periodic branch is learnable —
// near-zero rate, class predictable, all bias mass in one bin.
func TestCharacterizePeriodic(t *testing.T) {
	c := NewCharacterizer("unit")
	feed(c, 64, 50_000, func(i int) bool { return i%4 != 3 }) // TNT T pattern
	ch := c.Finish("d")
	if ch.Class != ClassPredictable {
		t.Fatalf("class = %s, want predictable (rate %.4f)", ch.Class, ch.Rate)
	}
	if ch.Rate > 0.01 {
		t.Fatalf("periodic branch rate = %.4f", ch.Rate)
	}
	// Bias magnitude is 0.75 → bin [0.75, 0.80).
	var sum float64
	for _, share := range ch.BiasHist {
		sum += share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("bias histogram sums to %v", sum)
	}
	if ch.BiasHist[5] < 0.99 {
		t.Fatalf("bias mass not in [0.75,0.80): %v", ch.BiasHist)
	}
	if ch.TakenRate < 0.74 || ch.TakenRate > 0.76 {
		t.Fatalf("taken rate = %v", ch.TakenRate)
	}
}

// TestCharacterizeRandom: an unbiased random branch is unpredictable at
// every history depth, with near-rate clustering (independent arrivals).
func TestCharacterizeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewCharacterizer("unit")
	feed(c, 64, 100_000, func(int) bool { return rng.Intn(2) == 0 })
	ch := c.Finish("d")
	if ch.Rate < 0.45 || ch.Rate > 0.55 {
		t.Fatalf("coin-flip rate = %.4f, want ~0.5", ch.Rate)
	}
	for _, p := range ch.HistCurve {
		if p.Rate < 0.45 {
			t.Fatalf("history depth %d learned a coin flip: %.4f", p.Bits, p.Rate)
		}
	}
	// Independent arrivals: cluster score ~1.
	if ch.ClusterScore < 0.8 || ch.ClusterScore > 1.2 {
		t.Fatalf("cluster score = %.2f, want ~1 for independent arrivals", ch.ClusterScore)
	}
	if ch.Class != ClassClustered {
		// At 50% rate a window of 4 almost always holds a miss, so the
		// paper's spectrum puts a coin flip at the clustered end.
		t.Fatalf("class = %s", ch.Class)
	}
}

// TestCharacterizeIsolated: rare, independent mispredictions from a
// heavily biased site land at the isolated end of the spectrum.
func TestCharacterizeIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewCharacterizer("unit")
	feed(c, 64, 200_000, func(int) bool { return rng.Float64() < 0.95 })
	ch := c.Finish("d")
	if ch.Rate < 0.03 || ch.Rate > 0.08 {
		t.Fatalf("rate = %.4f, want ~0.05", ch.Rate)
	}
	if ch.Class != ClassIsolated {
		t.Fatalf("class = %s (placement %.2f), want isolated", ch.Class, ch.Placement)
	}
	if ch.Placement > 0.3 {
		t.Fatalf("placement = %.2f", ch.Placement)
	}
}

func TestCharacterizeEmpty(t *testing.T) {
	c := NewCharacterizer("unit")
	ch := c.Finish("d")
	if ch.Class != ClassPredictable || ch.Records != 0 {
		t.Fatalf("empty profile = %+v", ch)
	}
	if s := ch.Render(); s == "" {
		t.Fatal("Render of empty profile is empty")
	}
}

// TestIndirectRecordsCounted: indirect jumps count in Records/Indirect
// but do not touch the conditional statistics.
func TestIndirectRecordsCounted(t *testing.T) {
	c := NewCharacterizer("unit")
	for i := 0; i < 1000; i++ {
		c.Add(Record{PC: 32, Indirect: true, Target: uint64(i % 7)})
	}
	feed(c, 64, 1000, func(i int) bool { return true })
	ch := c.Finish("d")
	if ch.Records != 2000 || ch.Indirect != 1000 || ch.Cond != 1000 {
		t.Fatalf("records=%d indirect=%d cond=%d", ch.Records, ch.Indirect, ch.Cond)
	}
	if ch.Sites != 1 {
		t.Fatalf("static sites = %d, want 1 (conditional only)", ch.Sites)
	}
}

func TestTopSites(t *testing.T) {
	c := NewCharacterizer("unit")
	feed(c, 10, 500, func(int) bool { return true })
	feed(c, 20, 1500, func(i int) bool { return i%2 == 0 })
	feed(c, 30, 1000, func(int) bool { return false })
	ch := c.Finish("d")
	top := ch.TopSites(2)
	if len(top) != 2 || top[0].PC != 20 || top[1].PC != 30 {
		t.Fatalf("TopSites = %+v", top)
	}
	if top[0].Count != 1500 || math.Abs(top[0].TakenRate-0.5) > 1e-9 {
		t.Fatalf("site stats = %+v", top[0])
	}
}
