package btrace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzTraceDecode drives the decoder with arbitrary bytes: it must never
// panic, never allocate beyond the frame cap, and classify every failure
// as a typed *CorruptError (io.EOF only at a clean frame boundary). A
// fully decoded stream must re-encode to the same canonical digest.
func FuzzTraceDecode(f *testing.F) {
	// Seed with well-formed traces (plain and gzip), a truncation, and a
	// bit flip, so the fuzzer starts at the interesting boundaries.
	recs := testRecords(300)
	var buf bytes.Buffer
	w := NewWriter(&buf, WithSource("fuzz"))
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	plain := buf.Bytes()
	f.Add(plain)
	f.Add(plain[:len(plain)/2])
	flipped := bytes.Clone(plain)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)

	var gz bytes.Buffer
	wg := NewWriter(&gz, WithSource("fuzz"), WithGzip())
	for _, r := range recs[:50] {
		if err := wg.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := wg.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(gz.Bytes())
	f.Add([]byte("PBTR1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) && !isGzipErr(err) {
				t.Fatalf("NewReader error %v is neither *CorruptError nor a gzip error", err)
			}
			return
		}
		var decoded []Record
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) && !isGzipErr(err) {
					t.Fatalf("Next error %v is neither *CorruptError nor a gzip error", err)
				}
				return
			}
			decoded = append(decoded, rec)
			if len(decoded) > 1<<22 {
				t.Skip("unreasonably long decode")
			}
		}
		// Clean decode: re-encoding must reproduce the digest (the decode
		// lost nothing the canonical serialization keeps).
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, rec := range decoded {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if w.Digest() != r.Digest() {
			t.Fatalf("re-encode digest %s != decode digest %s over %d records", w.Digest(), r.Digest(), len(decoded))
		}
	})
}

// isGzipErr reports whether err came from the gzip layer (a stream whose
// first two bytes happen to be the gzip magic but whose body is not valid
// deflate reaches the decoder through gzip and fails there).
func isGzipErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	s := err.Error()
	return bytes.Contains([]byte(s), []byte("gzip")) || bytes.Contains([]byte(s), []byte("flate"))
}
