package btrace

import (
	"io"

	"repro/internal/isa"
)

// ExportProgram functionally executes p (up to maxInsts dynamic
// instructions) and streams its branch trace into w, record by record —
// the trace is never materialized in memory. The caller owns w (and must
// Close it to flush the final block).
func ExportProgram(w *Writer, p *isa.Program, maxInsts uint64) error {
	_, err := isa.TraceStream(p, maxInsts, func(r isa.BranchRecord) error {
		return w.Write(Record{
			PC:       uint64(uint32(r.PC)),
			Taken:    r.Taken,
			Indirect: r.Indirect,
			Target:   uint64(uint32(r.Target)),
		})
	})
	return err
}

// WriteProgramTrace exports p's branch trace to sink as a complete PBT1
// stream (gzip-compressed when gz is set) and returns the record count
// and content digest.
func WriteProgramTrace(sink io.Writer, p *isa.Program, maxInsts uint64, source string, gz bool) (uint64, string, error) {
	opts := []WriterOption{WithSource(source)}
	if gz {
		opts = append(opts, WithGzip())
	}
	w := NewWriter(sink, opts...)
	if err := ExportProgram(w, p, maxInsts); err != nil {
		return 0, "", err
	}
	if err := w.Close(); err != nil {
		return 0, "", err
	}
	return w.Count(), w.Digest(), nil
}

// CharacterizeProgram profiles a program's branch behaviour directly
// (no trace file round trip): one streaming functional execution feeding
// the characterizer and the digest hash, so the digest is identical to
// what exporting + importing the trace would produce.
func CharacterizeProgram(p *isa.Program, maxInsts uint64, source string) (*Characterization, error) {
	c := NewCharacterizer(source)
	d := newDigester()
	_, err := isa.TraceStream(p, maxInsts, func(r isa.BranchRecord) error {
		rec := Record{
			PC:       uint64(uint32(r.PC)),
			Taken:    r.Taken,
			Indirect: r.Indirect,
			Target:   uint64(uint32(r.Target)),
		}
		c.Add(rec)
		d.add(rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c.Finish(d.sum()), nil
}
