// Package server implements polyserve, a long-running HTTP/JSON
// simulation service over the PolyPath experiment harness.
//
// Jobs (a registered experiment or a custom configuration sweep) are
// submitted to POST /v1/jobs, run FIFO on a bounded worker pool, and
// polled via GET /v1/jobs/{id}; the rendered table — byte-identical to
// cmd/experiments output for the same request — is served by
// GET /v1/results/{id}. Per-cell results are memoized in an LRU keyed by
// the canonical polypath/v1 config hash plus workload identity, so
// resubmitting a sweep replays bit-identical metrics without simulating.
// When the queue is full, submissions are rejected with 429 and a
// Retry-After hint (backpressure). Drain lets in-flight jobs finish and
// journals still-queued jobs to disk for resumption on restart.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// Fleet roles. A standalone node is the original single-process service.
// A coordinator accepts the same /v1 API but executes no simulations
// itself: every cell is dispatched to a registered worker. A worker
// executes cells (POST /v1/cells) on behalf of a coordinator and still
// serves the full standalone API for direct use.
const (
	RoleStandalone  = "standalone"
	RoleCoordinator = "coordinator"
	RoleWorker      = "worker"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent jobs (default 1: jobs already
	// parallelize across cells internally).
	Workers int
	// QueueCapacity bounds the FIFO backlog (default 16).
	QueueCapacity int
	// CacheCells caps the per-cell memoization LRU (default 4096 entries;
	// 0 disables caching).
	CacheCells int
	// SimParallelism bounds concurrent simulations within one job
	// (0 = GOMAXPROCS).
	SimParallelism int
	// DefaultTimeout caps a job's wall time when the request does not
	// set timeout_sec (0 = no cap).
	DefaultTimeout time.Duration
	// MaxInsts bounds the per-benchmark dynamic length a client may
	// request (0 = unbounded).
	MaxInsts uint64
	// JournalPath is where queued jobs are persisted on Drain and loaded
	// from on New (empty = no journaling).
	JournalPath string
	// Audit, when not AuditOff, runs every simulation under the pipeline's
	// invariant auditor at the given level. Auditing is excluded from the
	// canonical config hash, so memoized cells stay shared with unaudited
	// runs.
	Audit pipeline.AuditLevel
	// TraceLimit is the total number of cycle-level trace events retained
	// per traced job (default 1<<18). Cells whose captured stream would
	// exceed the remaining budget are dropped whole and counted. Tracing
	// is observation-only: results and memoization are unchanged.
	TraceLimit int
	// CrashThreshold is how many contained worker crashes (panics or
	// machine checks) a request signature may accumulate before further
	// submissions of it are refused with HTTP 403 (default 3).
	CrashThreshold int
	// ChaosPanic, when non-empty, makes the worker panic on any job whose
	// title contains the string — a deliberate crash trigger for chaos
	// testing the recover/quarantine path. Never set in production.
	ChaosPanic string
	// Log receives service events (nil = log.Default).
	Log *log.Logger

	// ---- fleet (coordinator/worker mode) ----

	// Role selects the node's fleet role: RoleStandalone (default),
	// RoleCoordinator, or RoleWorker.
	Role string
	// NodeID names this node in fleet APIs, logs, quarantine records, and
	// per-worker metrics (default: the role).
	NodeID string
	// StoreDir mounts the content-addressed result store at the given
	// directory (empty = no store). A local fleet sharing one StoreDir
	// deduplicates cells fleet-wide; a per-node directory is still a
	// restart-durable cache, and the coordinator's copy is the byte-level
	// determinism audit.
	StoreDir string
	// DialWorker connects the coordinator to a registered worker's base
	// URL. Required for RoleCoordinator; internal/client.DialWorker is
	// the production implementation (the indirection avoids an import
	// cycle and lets tests use in-process fakes).
	DialWorker func(addr string) WorkerCaller
	// LeaseTTL is how long a worker lease lives without a heartbeat
	// before eviction (default 3s).
	LeaseTTL time.Duration
	// CellTimeout deadlines one cell's whole dispatch, retries and
	// hedges included (default 2m).
	CellTimeout time.Duration
	// CellRetries caps re-dispatches per cell beyond the first attempt
	// (default 8).
	CellRetries int
	// HedgeDelay, when > 0, launches a hedged second attempt when the
	// owner has not answered within the delay. 0 (the default) hedges
	// only when the owner stops heartbeating mid-call.
	HedgeDelay time.Duration
	// RetryBudget and RetryRefillPerSec bound coordinator-wide cell
	// re-dispatches: a token bucket of RetryBudget burst refilled at
	// RetryRefillPerSec tokens/s (defaults 256 and 64). A flapping
	// worker degrades throughput; it cannot amplify load without bound.
	RetryBudget       int
	RetryRefillPerSec float64
	// PerTenantQueue caps one tenant's share of the job queue (default:
	// QueueCapacity, i.e. only the global bound). Tenancy comes from the
	// X-Tenant request header; queued tenants are served round-robin.
	PerTenantQueue int
	// CellConcurrency bounds concurrent direct cell executions
	// (POST /v1/cells) on this node (default GOMAXPROCS). Excess calls
	// queue inside their request until a slot frees or the caller's
	// deadline fires.
	CellConcurrency int
	// JournalWAL switches the journal from drain-time snapshots to a
	// write-ahead log: an "accept" record at admission and a "done"
	// record at any terminal state, so pending jobs survive a SIGKILL,
	// not just a graceful Drain. Requires JournalPath.
	JournalWAL bool
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueueCapacity < 1 {
		c.QueueCapacity = 16
	}
	if c.TraceLimit < 1 {
		c.TraceLimit = 1 << 18
	}
	if c.CrashThreshold < 1 {
		c.CrashThreshold = 3
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	if c.Role == "" {
		c.Role = RoleStandalone
	}
	if c.NodeID == "" {
		c.NodeID = c.Role
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.CellTimeout <= 0 {
		c.CellTimeout = 2 * time.Minute
	}
	if c.CellRetries < 1 {
		c.CellRetries = 8
	}
	if c.RetryBudget < 1 {
		c.RetryBudget = 256
	}
	if c.RetryRefillPerSec <= 0 {
		c.RetryRefillPerSec = 64
	}
	if c.CellConcurrency < 1 {
		c.CellConcurrency = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server is the polyserve service. Create with New, mount via Handler,
// shut down with Drain.
type Server struct {
	cfg   Config
	sched *scheduler
	svc   stats.Service
	memo  *cache.LRU[harness.MemoValue]
	quar  *quarantine

	// Observability (see metrics.go): the Prometheus registry behind
	// GET /metrics, plus the histograms runJob feeds directly.
	reg     *metrics.Registry
	jobDur  map[JobState]*metrics.Histogram
	cellDur *metrics.Histogram

	// Sweep-shard observability (see sweepObserver in metrics.go).
	sweepInflight atomic.Int64
	shardMu       sync.Mutex
	shardDur      map[int]*metrics.Histogram
	shardOverflow *metrics.Histogram

	// Fleet state: the shared result store (any role), and the worker
	// registry + dispatch admission control (coordinator only).
	store       *resultStore
	registry    *registry
	retryTokens *tokenBucket
	cellSlots   chan struct{}
	arenas      sync.Pool

	// Per-config wire-encoding cache for dispatch (see dispatch.go).
	encMu  sync.Mutex
	encCfg map[string][]byte

	// Write-ahead journal file (see journal.go; nil unless JournalWAL).
	walMu sync.Mutex
	walF  *os.File

	// Worker-role attachment state, reported by /v1/healthz.
	attachMu    sync.Mutex
	attachState string

	// Per-worker dispatch latency histograms (see metrics.go).
	workerMu       sync.Mutex
	workerDur      map[string]*metrics.Histogram
	workerOverflow *metrics.Histogram

	mu        sync.Mutex
	jobs      map[string]*Job
	nextID    uint64
	sweeps    map[string]*sweepRec
	nextSweep uint64
}

// New builds a Server and, if cfg.JournalPath names a journal written by
// a previous Drain, re-enqueues the jobs recorded there.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	switch cfg.Role {
	case RoleStandalone, RoleCoordinator, RoleWorker:
	default:
		return nil, fmt.Errorf("server: unknown role %q (valid: %s, %s, %s)", cfg.Role, RoleStandalone, RoleCoordinator, RoleWorker)
	}
	if cfg.Role == RoleCoordinator && cfg.DialWorker == nil {
		return nil, fmt.Errorf("server: coordinator role requires Config.DialWorker")
	}
	if cfg.JournalWAL && cfg.JournalPath == "" {
		return nil, fmt.Errorf("server: JournalWAL requires JournalPath")
	}
	s := &Server{cfg: cfg, jobs: make(map[string]*Job), sweeps: make(map[string]*sweepRec)}
	s.quar = newQuarantine(cfg.CrashThreshold)
	if cfg.CacheCells > 0 {
		s.memo = cache.NewLRU[harness.MemoValue](cfg.CacheCells)
	}
	if cfg.StoreDir != "" {
		st, err := openStore(cfg.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.store = st
	}
	if cfg.Role == RoleCoordinator {
		s.registry = newRegistry(cfg.LeaseTTL, cfg.DialWorker, func(id string) {
			s.svc.WorkersEvicted.Add(1)
			cfg.Log.Printf("polyserve: worker %s evicted (missed heartbeat lease %s)", id, cfg.LeaseTTL)
		})
		s.retryTokens = newTokenBucket(cfg.RetryBudget, cfg.RetryRefillPerSec)
	}
	s.cellSlots = make(chan struct{}, cfg.CellConcurrency)
	s.arenas = arenaPool()
	s.sched = newTenantScheduler(cfg.Workers, cfg.QueueCapacity, cfg.PerTenantQueue, s.runJob)
	s.initMetrics()
	if cfg.JournalPath != "" {
		n, err := s.loadJournal(cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("server: journal %s: %w", cfg.JournalPath, err)
		}
		if n > 0 {
			cfg.Log.Printf("polyserve: resumed %d journaled job(s) from %s", n, cfg.JournalPath)
		}
	}
	return s, nil
}

func (s *Server) isCoordinator() bool { return s.cfg.Role == RoleCoordinator }

// SetAttachment records a worker's coordinator-attachment state
// ("attached" / "detached"), surfaced by /v1/healthz; cmd/polyserve's
// attachment loop calls it on every transition.
func (s *Server) SetAttachment(state string) {
	s.attachMu.Lock()
	s.attachState = state
	s.attachMu.Unlock()
}

// Attachment returns the worker's coordinator-attachment state.
func (s *Server) Attachment() string {
	s.attachMu.Lock()
	defer s.attachMu.Unlock()
	if s.attachState == "" {
		return "detached"
	}
	return s.attachState
}

// Drain stops accepting jobs, waits for in-flight jobs to finish, and
// journals still-queued jobs to cfg.JournalPath (if set) so a restarted
// server picks them up. It returns the number of journaled jobs. In WAL
// mode the queued jobs' accept records are already durable; Drain only
// closes the log.
func (s *Server) Drain() (int, error) {
	left := s.sched.drain()
	if s.registry != nil {
		s.registry.close()
	}
	if s.cfg.JournalWAL {
		s.walClose()
		return len(left), nil
	}
	if len(left) == 0 || s.cfg.JournalPath == "" {
		return 0, nil
	}
	if err := writeJournal(s.cfg.JournalPath, left); err != nil {
		return 0, err
	}
	return len(left), nil
}

// Stats returns a point-in-time service snapshot (the /v1/stats body).
func (s *Server) Stats() Snapshot {
	queued, running := s.sched.depth()
	snap := Snapshot{
		ServiceSnapshot: s.svc.Snapshot(),
		QueueDepth:      queued,
		RunningJobs:     running,
		QueueCapacity:   s.cfg.QueueCapacity,
	}
	if s.memo != nil {
		hits, misses := s.memo.Stats()
		snap.CacheEntries = s.memo.Len()
		snap.CacheHits = hits
		snap.CacheMisses = misses
		if hits+misses > 0 {
			snap.CacheHitRate = float64(hits) / float64(hits+misses)
		}
	}
	snap.Role = s.cfg.Role
	snap.Node = s.cfg.NodeID
	if s.registry != nil {
		snap.WorkersLive = s.registry.liveCount()
	}
	if s.store != nil {
		snap.StoreEntries = s.store.Len()
	}
	return snap
}

// Snapshot is the /v1/stats response body.
type Snapshot struct {
	stats.ServiceSnapshot
	QueueDepth    int     `json:"queue_depth"`
	RunningJobs   int     `json:"running_jobs"`
	QueueCapacity int     `json:"queue_capacity"`
	CacheEntries  int     `json:"cache_entries"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Role          string  `json:"role,omitempty"`
	Node          string  `json:"node,omitempty"`
	WorkersLive   int     `json:"workers_live,omitempty"`
	StoreEntries  int     `json:"store_entries,omitempty"`
}

// Handler mounts the /v1 API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/quarantine", s.handleQuarantine)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/cells", s.handleSweepCells)
	mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleSweepResult)
	mux.HandleFunc("POST /v1/cells", s.handleCellRun)
	mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
	mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	mux.Handle("GET /metrics", s.MetricsHandler())
	return mux
}

// ErrQuarantined is returned by Submit (HTTP 403) for a request whose
// signature has crashed the worker CrashThreshold times.
var ErrQuarantined = errors.New("server: request quarantined after repeated worker crashes")

// Submit validates a request and enqueues it under the default tenant,
// returning the new job. Validation failures are *RequestError (HTTP
// 400); a full queue is ErrQueueFull (a full tenant share
// ErrTenantQueueFull), a draining server ErrDraining, and a
// repeatedly-crashing request ErrQuarantined.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	return s.submit(req, "", nil)
}

// SubmitAs enqueues a request under the named fair-queuing tenant.
func (s *Server) SubmitAs(req JobRequest, tenant string) (*Job, error) {
	return s.submit(req, tenant, nil)
}

// submit is the shared enqueue path of Submit and SubmitSweep; sw, when
// non-nil, attaches the job to the sweep record it executes.
func (s *Server) submit(req JobRequest, tenant string, sw *sweepRec) (*Job, error) {
	if s.isCoordinator() && req.Trace {
		return nil, &RequestError{Err: fmt.Errorf("trace is not supported in coordinator mode: cells execute on remote workers and produce no local trace events")}
	}
	configs, err := req.resolve(s.cfg.MaxInsts)
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	if sig, bad := s.quar.check(req); bad {
		s.svc.JobsQuarantined.Add(1)
		return nil, fmt.Errorf("%w (signature %s; see /v1/quarantine)", ErrQuarantined, sig)
	}
	j := &Job{
		State:     JobQueued,
		Request:   req,
		Submitted: time.Now().UTC(),
		Tenant:    tenant,
		configs:   configs,
		sweep:     sw,
	}
	s.mu.Lock()
	s.nextID++
	j.ID = fmt.Sprintf("job-%06d", s.nextID)
	s.jobs[j.ID] = j
	s.mu.Unlock()

	if err := s.sched.submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		if errors.Is(err, ErrQueueFull) {
			s.svc.JobsRejected.Add(1)
		}
		if errors.Is(err, ErrTenantQueueFull) {
			s.svc.JobsRejected.Add(1)
			s.svc.TenantRejected.Add(1)
		}
		return nil, err
	}
	s.walAppend("accept", j)
	s.svc.JobsSubmitted.Add(1)
	return j, nil
}

// RequestError marks a client (HTTP 400) error.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// Job returns a snapshot copy of the job (false if unknown).
func (s *Server) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Cancel cancels a queued or running job. It returns false when the job
// is unknown and an error when it has already finished.
func (s *Server) Cancel(id string) (bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false, nil
	}
	switch j.State {
	case JobQueued:
		// Pull it out of the FIFO before it starts. If the race is lost
		// (a worker grabbed it between checks), fall through to the
		// running case on the next attempt by the client.
		if s.sched.remove(j) {
			now := time.Now().UTC()
			j.State = JobCancelled
			j.Finished = &now
			s.svc.JobsCancelled.Add(1)
			s.mu.Unlock()
			s.walAppend("done", j)
			return true, nil
		}
		s.mu.Unlock()
		return true, fmt.Errorf("job %s is starting; retry cancellation", id)
	case JobRunning:
		cancel := j.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true, nil
	default:
		s.mu.Unlock()
		return true, fmt.Errorf("job %s already %s", id, j.State)
	}
}

// runJob executes one job on a scheduler worker.
func (s *Server) runJob(j *Job) {
	ctx := context.Background()
	timeout := s.cfg.DefaultTimeout
	if j.Request.TimeoutSec > 0 {
		timeout = time.Duration(j.Request.TimeoutSec) * time.Second
	}
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	now := time.Now().UTC()
	s.mu.Lock()
	j.State = JobRunning
	j.Started = &now
	j.cancel = cancel
	s.mu.Unlock()

	var cells, cacheHits int
	var simInsts uint64
	var cellMu sync.Mutex
	opts := harness.Options{
		TargetInsts: j.Request.Insts,
		Benchmarks:  j.Request.Benchmarks,
		Extra:       j.Request.extra(),
		Replicates:  j.Request.Replicates,
		Parallelism: s.cfg.SimParallelism,
		Context:     ctx,
		OnCell: func(ev harness.CellEvent) {
			cellMu.Lock()
			cells++
			if ev.FromCache {
				cacheHits++
			}
			simInsts += ev.Committed
			cellMu.Unlock()
			if ev.FromCache {
				s.svc.CellsFromCache.Add(1)
			} else {
				s.svc.CellsSimulated.Add(1)
				s.svc.SimInsts.Add(ev.Committed)
				s.svc.SimNanos.Add(int64(ev.Elapsed))
				s.cellDur.Observe(ev.Elapsed.Seconds())
			}
		},
	}
	if s.isCoordinator() {
		// Coordinator: every non-memoized cell becomes one remote dispatch
		// (dispatch.go). The local LRU stays as the first tier; the shared
		// result store is consulted inside execRemote, so it is not
		// layered into the memo here (that would double the store writes).
		opts.Exec = s.execRemote
		if s.cfg.SimParallelism == 0 {
			// Dispatch is network-bound, not CPU-bound: fan out wider than
			// GOMAXPROCS so a small coordinator keeps a larger fleet busy.
			opts.Parallelism = 4 * runtime.GOMAXPROCS(0)
		}
		if s.memo != nil {
			opts.Memo = s.memo
		}
	} else if m := s.cellMemo(); m != nil {
		// Standalone/worker: the in-memory LRU backed by the persistent
		// result store when one is mounted.
		opts.Memo = m
	}
	if s.cfg.Audit != pipeline.AuditOff {
		opts.Audit = s.cfg.Audit
	}
	if sw := j.sweep; sw != nil {
		// Sweep jobs run under the requested shard count, report scheduler
		// lifecycle into the shard metrics, and log every completed cell
		// for the /v1/sweeps/{id}/cells stream. Per-cell wall time sums
		// into the "serial seconds" counter; the job's own wall time is
		// added below, so serial/wall is the observed sharding speedup.
		opts.Parallelism = sw.parallelism
		opts.Observer = sweepObserver{s}
		prev := opts.OnCell
		opts.OnCell = func(ev harness.CellEvent) {
			prev(ev)
			sw.addCell(ev)
			s.svc.SweepCellsDone.Add(1)
			s.svc.SweepSerialNanos.Add(int64(ev.Elapsed))
		}
	}
	if j.Request.Trace {
		// Per-cell ring capacity: the client's trace_limit, bounded by the
		// server's whole-job budget (which also caps total retention).
		perCell := j.Request.TraceLimit
		if perCell <= 0 || perCell > s.cfg.TraceLimit {
			perCell = s.cfg.TraceLimit
		}
		tr := newJobTrace(s.cfg.TraceLimit)
		s.mu.Lock()
		j.trace = tr
		s.mu.Unlock()
		opts.TraceLimit = perCell
		opts.OnTrace = tr.add
	}

	text, err, crashed := s.renderContained(j, opts)
	crashNode := s.cfg.NodeID
	var mce *pipeline.MachineCheckError
	if errors.As(err, &mce) {
		// A machine check escaping the simulator is a contained crash just
		// like a worker panic: the request corrupted (or exposed corruption
		// in) simulator state and counts against its quarantine budget.
		crashed = true
		s.svc.WorkerPanics.Add(1)
	}
	if node, ok := IsWorkerCrash(err); ok {
		// A remote worker crashed executing one of this job's cells: the
		// request counts against quarantine here too, attributed to the
		// worker node that observed the crash (the worker already counted
		// its own panic; only attribution happens coordinator-side).
		crashed = true
		if node != "" {
			crashNode = node
		}
	}

	finished := time.Now().UTC()
	if crashed {
		sig, quarantinedNow := s.quar.recordCrash(j.Request, j.describe(), err.Error(), crashNode, finished)
		if quarantinedNow {
			s.cfg.Log.Printf("polyserve: quarantined request signature %s after %d crashes (%s, node %s)", sig, s.cfg.CrashThreshold, j.describe(), crashNode)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j.Finished = &finished
	j.cancel = nil
	switch {
	case err == nil:
		j.State = JobDone
		j.Result = &JobResult{Text: text, Cells: cells, CacheHits: cacheHits, SimInsts: simInsts}
		s.svc.JobsCompleted.Add(1)
		if j.sweep != nil {
			s.svc.SweepsCompleted.Add(1)
			s.svc.SweepWallNanos.Add(finished.Sub(now).Nanoseconds())
		}
	case errors.Is(err, context.Canceled):
		j.State = JobCancelled
		j.Error = "cancelled"
		s.svc.JobsCancelled.Add(1)
	default:
		j.State = JobFailed
		j.Error = err.Error()
		s.svc.JobsFailed.Add(1)
	}
	s.observeJobDuration(j.State, finished.Sub(now))
	s.walAppend("done", j)
	s.cfg.Log.Printf("polyserve: %s %s (%s) in %s", j.ID, j.State, j.describe(), finished.Sub(now).Round(time.Millisecond))
}

// renderContained runs the job's simulation with the worker protected by a
// recover barrier: a panicking worker fails its job instead of killing the
// process, keeping one poisoned request from taking the service down. The
// crashed result reports whether a panic was contained.
func (s *Server) renderContained(j *Job, opts harness.Options) (text string, err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			s.svc.WorkerPanics.Add(1)
			crashed = true
			err = fmt.Errorf("worker panic: %v", r)
			s.cfg.Log.Printf("polyserve: %s worker panic contained: %v\n%s", j.ID, r, debug.Stack())
		}
	}()
	if s.cfg.ChaosPanic != "" && strings.Contains(j.Request.Title, s.cfg.ChaosPanic) {
		panic("chaos: deliberate worker panic (title contains " + strconv.Quote(s.cfg.ChaosPanic) + ")")
	}
	text, err = s.render(j, opts)
	return text, err, false
}

func (j *Job) describe() string {
	if j.Request.Experiment != "" {
		return "experiment " + j.Request.Experiment
	}
	return fmt.Sprintf("sweep of %d config(s)", len(j.Request.Configs))
}

// render produces the job's table text, byte-identical to what
// cmd/experiments prints (sans the "=== name (Xs) ===" header) for the
// same experiment and options.
func (s *Server) render(j *Job, opts harness.Options) (string, error) {
	if j.Request.Experiment != "" {
		r, err := harness.RunExperiment(j.Request.Experiment, opts)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}
	m, err := harness.RunConfigs(opts, j.configs)
	if err != nil {
		return "", err
	}
	return harness.RenderTable(j.Request.title(), m), nil
}

// ---- HTTP layer ----

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// decodeBody strictly decodes a bounded JSON request body into v,
// writing the 400 itself on failure (returns false).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	return true
}

// writeSubmitError maps a Submit/SubmitSweep error to its HTTP status.
func writeSubmitError(w http.ResponseWriter, err error, queueCapacity int) {
	var reqErr *RequestError
	var cfgErr *pipeline.ConfigError
	switch {
	case errors.As(err, &cfgErr), errors.As(err, &reqErr):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQueueFull):
		// Backpressure: tell the client when to come back. The hint
		// scales with the backlog; precision is not required.
		w.Header().Set("Retry-After", strconv.Itoa(2*queueCapacity))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrQuarantined):
		writeError(w, http.StatusForbidden, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	j, err := s.SubmitAs(req, r.Header.Get("X-Tenant"))
	if err != nil {
		writeSubmitError(w, err, s.cfg.QueueCapacity)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	snap, _ := s.Job(j.ID)
	writeJSON(w, http.StatusAccepted, snap)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		list = append(list, *j)
	}
	s.mu.Unlock()
	sort.Slice(list, func(i, k int) bool { return list[i].ID < list[k].ID })
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := s.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	j, _ := s.Job(id)
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.writeJobResult(w, r.PathValue("id"))
}

// writeJobResult serves a job's result by state: 200 with the JobResult
// when done, 410 when failed/cancelled, 202 + Retry-After otherwise.
// Shared by /v1/results/{id} and /v1/sweeps/{id}/result.
func (s *Server) writeJobResult(w http.ResponseWriter, id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state JobState
	var res *JobResult
	var jobErr string
	if ok {
		state, res, jobErr = j.State, j.Result, j.Error
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	switch state {
	case JobDone:
		writeJSON(w, http.StatusOK, res)
	case JobFailed, JobCancelled:
		writeError(w, http.StatusGone, fmt.Errorf("job %s %s: %s", id, state, jobErr))
	default:
		// Not finished yet: poll again shortly.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusAccepted, fmt.Errorf("job %s is %s", id, state))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]string{
		"status":  "ok",
		"version": obs.Version(),
		"role":    s.cfg.Role,
		"node":    s.cfg.NodeID,
	}
	switch s.cfg.Role {
	case RoleWorker:
		body["coordinator"] = s.Attachment()
	case RoleCoordinator:
		body["workers_live"] = strconv.Itoa(s.registry.liveCount())
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.quar.list())
}

// ---- fleet HTTP: worker registration and membership ----

// WorkerRegistration is the body of POST /v1/workers.
type WorkerRegistration struct {
	// ID is the worker's stable node identity; re-registering under the
	// same ID after a restart reclaims the old ring position.
	ID string `json:"id"`
	// Addr is the worker's reachable base URL (e.g. "http://10.0.0.7:8081").
	Addr string `json:"addr"`
}

// WorkerLease is the response to registration and heartbeats.
type WorkerLease struct {
	// LeaseMS is how long the lease lives without a heartbeat; workers
	// should beat at a small fraction of it.
	LeaseMS int64 `json:"lease_ms"`
	// Coordinator is the coordinator's node ID.
	Coordinator string `json:"coordinator"`
}

// FleetStatus is the GET /v1/workers response.
type FleetStatus struct {
	Coordinator  string         `json:"coordinator"`
	WorkersLive  int            `json:"workers_live"`
	Workers      []WorkerStatus `json:"workers"`
	StoreEntries int            `json:"store_entries,omitempty"`
}

// requireCoordinator gates the fleet-membership endpoints.
func (s *Server) requireCoordinator(w http.ResponseWriter) bool {
	if !s.isCoordinator() {
		writeError(w, http.StatusConflict, fmt.Errorf("node %s has role %s; fleet membership lives on the coordinator", s.cfg.NodeID, s.cfg.Role))
		return false
	}
	return true
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	var req WorkerRegistration
	if !decodeBody(w, r, &req) {
		return
	}
	ttl, err := s.registry.register(req.ID, req.Addr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.cfg.Log.Printf("polyserve: worker %s registered at %s (lease %s)", req.ID, req.Addr, ttl)
	writeJSON(w, http.StatusOK, WorkerLease{LeaseMS: ttl.Milliseconds(), Coordinator: s.cfg.NodeID})
}

func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	id := r.PathValue("id")
	if !s.registry.beat(id) {
		// The coordinator restarted (empty registry) or evicted this
		// worker long enough ago to forget it; either way the worker must
		// re-register to resume.
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown worker %q: re-register", id))
		return
	}
	writeJSON(w, http.StatusOK, WorkerLease{LeaseMS: s.cfg.LeaseTTL.Milliseconds(), Coordinator: s.cfg.NodeID})
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	st := FleetStatus{
		Coordinator: s.cfg.NodeID,
		WorkersLive: s.registry.liveCount(),
		Workers:     s.registry.snapshot(),
	}
	if s.store != nil {
		st.StoreEntries = s.store.Len()
	}
	if st.Workers == nil {
		st.Workers = []WorkerStatus{}
	}
	writeJSON(w, http.StatusOK, st)
}
