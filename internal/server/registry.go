package server

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// registry.go tracks the coordinator's worker fleet: lease-based
// registration with heartbeats, a reaper that evicts workers whose lease
// expired, and a consistent-hash ring over the live members so cell
// ownership is stable under churn. Hashing on the cell's content address
// (harness.CellKey, which embeds the canonical config hash) keeps each
// worker's memoization cache hot: the same cell lands on the same worker
// across sweeps as long as the membership holds, and moves to exactly one
// other worker when its owner dies.

// ringVnodes is how many virtual points each worker contributes to the
// hash ring; enough to spread load within a few percent on small fleets.
const ringVnodes = 64

// WorkerStatus is one fleet member as reported by GET /v1/workers.
type WorkerStatus struct {
	ID            string    `json:"id"`
	Addr          string    `json:"addr"`
	Live          bool      `json:"live"`
	Registered    time.Time `json:"registered_at"`
	LastHeartbeat time.Time `json:"last_heartbeat"`
	CellsOK       uint64    `json:"cells_ok"`
	CellsFailed   uint64    `json:"cells_failed"`
}

// workerEntry is the registry's record of one worker. Identity fields are
// immutable after registration; liveness fields are guarded by the
// registry mutex; counters are atomics updated by dispatch goroutines.
type workerEntry struct {
	id     string
	addr   string
	caller WorkerCaller

	registered time.Time
	lastBeat   time.Time // guarded by registry.mu
	live       bool      // guarded by registry.mu

	cellsOK     atomic.Uint64
	cellsFailed atomic.Uint64
}

type ringPoint struct {
	h uint64
	w *workerEntry
}

// registry is the coordinator's fleet membership table plus the
// consistent-hash ring rebuilt on every membership change.
type registry struct {
	mu      sync.Mutex
	ttl     time.Duration
	dial    func(addr string) WorkerCaller
	workers map[string]*workerEntry
	ring    []ringPoint // live workers only, sorted by point hash
	nLive   int

	onEvict func(id string) // eviction hook (metrics + log), called without mu

	stopOnce sync.Once
	stopCh   chan struct{}
}

func newRegistry(ttl time.Duration, dial func(addr string) WorkerCaller, onEvict func(id string)) *registry {
	r := &registry{
		ttl:     ttl,
		dial:    dial,
		workers: make(map[string]*workerEntry),
		onEvict: onEvict,
		stopCh:  make(chan struct{}),
	}
	go r.reaper()
	return r
}

// close stops the reaper goroutine.
func (r *registry) close() {
	r.stopOnce.Do(func() { close(r.stopCh) })
}

// register adds a worker (or revives/re-homes a known one after a restart)
// and returns the lease TTL the worker must heartbeat within.
func (r *registry) register(id, addr string) (time.Duration, error) {
	if id == "" || addr == "" {
		return 0, fmt.Errorf("worker registration needs both id and addr")
	}
	now := time.Now().UTC()
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[id]
	if e == nil || e.addr != addr {
		// New worker, or a known ID returning at a different address (a
		// restart with a fresh port): dial a fresh caller either way.
		e = &workerEntry{id: id, addr: addr, caller: r.dial(addr), registered: now}
		r.workers[id] = e
	}
	e.lastBeat = now
	if !e.live {
		e.live = true
		r.rebuildLocked()
	}
	return r.ttl, nil
}

// beat renews a worker's lease; false means the worker is unknown (the
// coordinator restarted, or the worker was dropped) and must re-register.
func (r *registry) beat(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[id]
	if e == nil {
		return false
	}
	e.lastBeat = time.Now().UTC()
	if !e.live {
		e.live = true
		r.rebuildLocked()
	}
	return true
}

// isLive reports whether the worker currently holds a valid lease.
func (r *registry) isLive(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[id]
	return e != nil && e.live
}

// liveCount returns the number of lease-holding workers.
func (r *registry) liveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nLive
}

// reaper periodically expires leases. Eviction only flips liveness (and
// removes the worker from the ring); the entry itself is kept so a
// restarted worker reclaims its identity, counters, and ring position.
func (r *registry) reaper() {
	tick := r.ttl / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case now := <-t.C:
			var evicted []string
			r.mu.Lock()
			for id, e := range r.workers {
				if e.live && now.Sub(e.lastBeat) > r.ttl {
					e.live = false
					evicted = append(evicted, id)
				}
			}
			if len(evicted) > 0 {
				r.rebuildLocked()
			}
			r.mu.Unlock()
			if r.onEvict != nil {
				for _, id := range evicted {
					r.onEvict(id)
				}
			}
		}
	}
}

// rebuildLocked regenerates the hash ring from the live members.
func (r *registry) rebuildLocked() {
	r.ring = r.ring[:0]
	r.nLive = 0
	for _, e := range r.workers {
		if !e.live {
			continue
		}
		r.nLive++
		for v := 0; v < ringVnodes; v++ {
			r.ring = append(r.ring, ringPoint{h: ringHash(fmt.Sprintf("%s#%d", e.id, v)), w: e})
		}
	}
	sort.Slice(r.ring, func(i, k int) bool { return r.ring[i].h < r.ring[k].h })
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is splitmix64's avalanche finalizer. FNV alone barely diffuses
// short, similar inputs — every vnode label "w2#<v>" of one worker lands
// in a single arc of the ring, which collapses consistent hashing into
// "one worker owns nearly everything". The finalizer spreads them.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// owner returns the live worker owning key on the consistent-hash ring,
// skipping workers whose ID is in skip (used to walk ring successors on
// retry). nil when no live worker remains outside skip.
func (r *registry) owner(key string, skip map[string]bool) *workerEntry {
	h := ringHash(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.ring)
	if n == 0 {
		return nil
	}
	start := sort.Search(n, func(i int) bool { return r.ring[i].h >= h })
	for i := 0; i < n; i++ {
		w := r.ring[(start+i)%n].w
		if skip == nil || !skip[w.id] {
			return w
		}
	}
	return nil
}

// snapshot returns the full membership table, live workers first, then by
// ID, for GET /v1/workers.
func (r *registry) snapshot() []WorkerStatus {
	r.mu.Lock()
	out := make([]WorkerStatus, 0, len(r.workers))
	for _, e := range r.workers {
		out = append(out, WorkerStatus{
			ID:            e.id,
			Addr:          e.addr,
			Live:          e.live,
			Registered:    e.registered,
			LastHeartbeat: e.lastBeat,
			CellsOK:       e.cellsOK.Load(),
			CellsFailed:   e.cellsFailed.Load(),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if out[i].Live != out[k].Live {
			return out[i].Live
		}
		return out[i].ID < out[k].ID
	})
	return out
}
