package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

const traceBody = `{"configs":[{"name":"see","model":"see"}],"benchmarks":["go"],"insts":20000,"trace":true,"trace_limit":2000}`

// TestMetricsEndpoint checks the Prometheus exposition: valid text
// format with the job latency histogram and memo counters the dashboards
// scrape.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheCells: 16})
	submitAndWait(t, ts, `{"configs":[{"name":"see","model":"see"}],"benchmarks":["go"],"insts":20000}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		`polyserve_jobs_total{state="completed"} 1`,
		`polyserve_cells_total{source="simulated"} 1`,
		"polyserve_memo_hits_total 0",
		"polyserve_memo_misses_total 1",
		`polyserve_job_duration_seconds_count{state="done"} 1`,
		`polyserve_job_duration_seconds_bucket{state="done",le="+Inf"} 1`,
		"polyserve_queue_depth 0",
		"# TYPE polyserve_job_duration_seconds histogram",
		"polyserve_build_info{version=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics output:\n%s", want, out)
		}
	}
	// Minimal format lint: every non-comment line is "name{labels} value"
	// with a parseable numeric value (label values may contain spaces).
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("sample %q has non-numeric value %q", line, line[i+1:])
		}
	}
}

// TestJobTraceEndpoint drives the full trace lifecycle: a traced job
// serves Chrome trace_event JSON after it finishes; an untraced job 404s.
func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	j := submitAndWait(t, ts, traceBody)
	if j.State != JobDone {
		t.Fatalf("job state %s: %s", j.State, j.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("trace body is not valid JSON: %v", err)
	}
	var events, meta int
	var cellName string
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			events++
		case "M":
			meta++
			if e.Name == "process_name" {
				cellName, _ = e.Args["name"].(string)
			}
		}
	}
	if events == 0 {
		t.Fatal("traced job produced no events")
	}
	if cellName != "go/see" {
		t.Fatalf("cell process name %q, want go/see", cellName)
	}
	if meta == 0 {
		t.Fatal("no metadata records")
	}

	// An untraced job has no trace resource.
	plain := submitAndWait(t, ts, `{"configs":[{"name":"see","model":"see"}],"benchmarks":["go"],"insts":20000}`)
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + plain.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced job trace: status %d, want 404", resp2.StatusCode)
	}
}

// TestTracedJobMatchesUntracedResult: tracing must not perturb the
// rendered table (the server-side face of the golden-table guarantee).
func TestTracedJobMatchesUntracedResult(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	plain := submitAndWait(t, ts, `{"configs":[{"name":"see","model":"see"}],"benchmarks":["go"],"insts":20000}`)
	traced := submitAndWait(t, ts, traceBody)
	a := getResult(t, ts, plain.ID)
	b := getResult(t, ts, traced.ID)
	if a.Text != b.Text {
		t.Fatalf("traced job rendered a different table:\n--- untraced ---\n%s\n--- traced ---\n%s", a.Text, b.Text)
	}
}

// TestTraceRequestValidation: trace_limit needs trace, and negatives are
// rejected.
func TestTraceRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"experiment":"table1","trace_limit":100}`,
		`{"experiment":"table1","trace":true,"trace_limit":-1}`,
	} {
		resp, data := post(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", body, resp.StatusCode, data)
		}
	}
}

// TestHealthzReportsVersion: the liveness probe carries the build
// identity so fleet dashboards can tell deployed revisions apart.
func TestHealthzReportsVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("status %q", body["status"])
	}
	if body["version"] == "" {
		t.Fatal("healthz did not report a version")
	}
}
