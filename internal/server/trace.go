package server

import (
	"fmt"
	"net/http"
	"sync"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// trace.go implements per-job cycle-level trace capture: a job submitted
// with "trace": true runs its simulated cells under bounded ring tracers
// (internal/obs) and the captured streams are downloadable from
// GET /v1/jobs/{id}/trace as Chrome/Perfetto trace_event JSON once the
// job has finished. Tracing is observation-only — results, memoization
// identity and golden tables are unchanged — and memoized cells, which
// replay without simulating, produce no events.

// jobTrace accumulates the captured cell streams of one job under a
// total event budget, so a trace-everything sweep cannot hold the whole
// event firehose in memory: cells arriving after the budget is spent are
// counted, not stored.
type jobTrace struct {
	mu           sync.Mutex
	budget       int // remaining stored-event budget
	cells        []obs.CellTrace
	droppedCells int
}

func newJobTrace(budget int) *jobTrace { return &jobTrace{budget: budget} }

// add stores one simulated cell's captured events (an Options.OnTrace
// callback; may run concurrently on harness workers).
func (t *jobTrace) add(ev harness.CellEvent, events []pipeline.TraceEvent, dropped uint64) {
	label := fmt.Sprintf("%s/%s", ev.Benchmark, ev.Config)
	if ev.Replicate > 0 {
		label = fmt.Sprintf("%s/r%d", label, ev.Replicate)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(events) > t.budget {
		t.droppedCells++
		return
	}
	t.budget -= len(events)
	t.cells = append(t.cells, obs.CellTrace{Label: label, Events: events, Dropped: dropped})
}

// snapshot returns the stored cells (shared slices; callers only read).
func (t *jobTrace) snapshot() ([]obs.CellTrace, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cells, t.droppedCells
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state JobState
	var traced bool
	var tr *jobTrace
	if ok {
		state, traced, tr = j.State, j.Request.Trace, j.trace
	}
	s.mu.Unlock()
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	case !traced:
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s was not submitted with \"trace\": true", id))
		return
	case state == JobQueued || state == JobRunning:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusAccepted, fmt.Errorf("job %s is %s; its trace is served once it finishes", id, state))
		return
	}
	var cells []obs.CellTrace
	var droppedCells int
	if tr != nil {
		// tr is nil when the job never ran (e.g. cancelled while queued):
		// serve a valid empty trace rather than an error.
		cells, droppedCells = tr.snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+"-trace.json"))
	if droppedCells > 0 {
		w.Header().Set("X-Polyserve-Trace-Dropped-Cells", fmt.Sprint(droppedCells))
	}
	_ = obs.WriteChromeTrace(w, cells)
}
