package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/workload"
)

// POST /v1/sweeps is the batch front door to the sharded experiment
// engine: one request fans a configuration sweep into its (benchmark,
// config, replicate) cells, runs them on internal/sched with the
// requested parallelism, and exposes per-cell completions while the
// sweep is still running. A sweep is executed by an ordinary job on the
// same scheduler — it shares the FIFO, the memo cache, cancellation
// (DELETE /v1/jobs/{job_id}), quarantine, and the rendered-table result
// — so every durability property of jobs carries over. The one
// intentional degradation: a sweep drained to the journal resumes as a
// plain job (the journal records only the JobRequest), because the
// sweep's live cell stream is meaningless across a restart.

// SweepRequest is the submission body for POST /v1/sweeps: a custom
// configuration sweep (no experiment indirection) plus the shard count.
type SweepRequest struct {
	// Title overrides the rendered table title.
	Title string `json:"title,omitempty"`
	// Configs lists the configurations of the sweep (required).
	Configs []ConfigEntry `json:"configs"`
	// Insts is the dynamic instruction count per benchmark run
	// (0 = the default 400k).
	Insts uint64 `json:"insts,omitempty"`
	// Benchmarks restricts the suite (empty = all eight plus any
	// Workloads entries).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Workloads carries inline workload specs scoped to this sweep (see
	// JobRequest.Workloads) — how a trace-derived stand-in is swept across
	// the fleet.
	Workloads []workload.Spec `json:"workloads,omitempty"`
	// Replicates averages extra workload seeds per cell (0/1 = single).
	Replicates int `json:"replicates,omitempty"`
	// TimeoutSec caps the sweep's wall time (0 = server default).
	TimeoutSec int `json:"timeout_sec,omitempty"`
	// Parallelism is the worker (shard) count cells run under
	// (0 = server default, then GOMAXPROCS). Results are bit-identical
	// under any value; only wall time changes.
	Parallelism int `json:"parallelism,omitempty"`
}

// SweepCell is one completed cell in the /v1/sweeps/{id}/cells stream.
// Seq is the 1-based completion order (schedule-dependent); ID is the
// stable harness.CellID (schedule-independent).
type SweepCell struct {
	Seq       int     `json:"seq"`
	ID        string  `json:"id"`
	Benchmark string  `json:"benchmark"`
	Config    string  `json:"config"`
	Replicate int     `json:"replicate"`
	FromCache bool    `json:"from_cache"`
	Shard     int     `json:"shard"`
	IPC       float64 `json:"ipc"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Sweep is the public snapshot of a sweep: identity, the lifecycle state
// of its executing job, and live cell progress.
type Sweep struct {
	ID          string       `json:"id"`
	JobID       string       `json:"job_id"`
	State       JobState     `json:"state"`
	Request     SweepRequest `json:"request"`
	Submitted   time.Time    `json:"submitted_at"`
	Started     *time.Time   `json:"started_at,omitempty"`
	Finished    *time.Time   `json:"finished_at,omitempty"`
	Error       string       `json:"error,omitempty"`
	Parallelism int          `json:"parallelism"` // resolved shard count
	TotalCells  int          `json:"total_cells"`
	DoneCells   int          `json:"done_cells"`
	CachedCells int          `json:"cached_cells"`
}

// sweepRec is the server-side sweep state. Identity fields are immutable
// after SubmitSweep; the cell log is guarded by its own mutex because
// appends arrive from harness worker goroutines.
type sweepRec struct {
	id          string
	jobID       string
	req         SweepRequest
	submitted   time.Time
	total       int
	parallelism int

	mu     sync.Mutex
	cells  []SweepCell
	cached int
}

// addCell appends one completed cell (called from OnCell on worker
// goroutines, concurrently).
func (r *sweepRec) addCell(ev harness.CellEvent) {
	c := SweepCell{
		ID:        harness.CellID(ev.Benchmark, ev.Config, ev.Replicate),
		Benchmark: ev.Benchmark,
		Config:    ev.Config,
		Replicate: ev.Replicate,
		FromCache: ev.FromCache,
		Shard:     ev.Shard,
		IPC:       ev.IPC,
		ElapsedMS: float64(ev.Elapsed.Nanoseconds()) / 1e6,
	}
	r.mu.Lock()
	c.Seq = len(r.cells) + 1
	r.cells = append(r.cells, c)
	if ev.FromCache {
		r.cached++
	}
	r.mu.Unlock()
}

// cellsAfter returns the cells with Seq > after, plus the current done
// count — the poll-based streaming read behind /v1/sweeps/{id}/cells.
func (r *sweepRec) cellsAfter(after int) (page []SweepCell, done int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after < len(r.cells) {
		page = append(page, r.cells[after:]...)
	}
	return page, len(r.cells)
}

// jobRequest converts the sweep into the job that executes it.
func (r SweepRequest) jobRequest() JobRequest {
	return JobRequest{
		Configs:    r.Configs,
		Title:      r.Title,
		Insts:      r.Insts,
		Benchmarks: r.Benchmarks,
		Workloads:  r.Workloads,
		Replicates: r.Replicates,
		TimeoutSec: r.TimeoutSec,
	}
}

// SubmitSweep validates a sweep, enqueues its executing job under the
// default tenant, and returns the sweep snapshot. Error mapping is
// identical to Submit.
func (s *Server) SubmitSweep(req SweepRequest) (Sweep, error) {
	return s.SubmitSweepAs(req, "")
}

// SubmitSweepAs enqueues a sweep under the named fair-queuing tenant.
func (s *Server) SubmitSweepAs(req SweepRequest, tenant string) (Sweep, error) {
	if len(req.Configs) == 0 {
		return Sweep{}, &RequestError{Err: fmt.Errorf("sweep must list at least one entry in \"configs\"")}
	}
	if req.Parallelism < 0 || req.Parallelism > 64 {
		return Sweep{}, &RequestError{Err: fmt.Errorf("parallelism %d out of [0,64]", req.Parallelism)}
	}
	benches := len(req.Benchmarks)
	if benches == 0 {
		// An unrestricted sweep runs the Table 1 suite plus every inline
		// workload.
		benches = len(workload.Names()) + len(req.Workloads)
	}
	reps := req.Replicates
	if reps < 2 {
		reps = 1
	}
	par := req.Parallelism
	if par == 0 {
		par = s.cfg.SimParallelism
	}
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	rec := &sweepRec{
		req:         req,
		submitted:   time.Now().UTC(),
		total:       benches * len(req.Configs) * reps,
		parallelism: par,
	}
	j, err := s.submit(req.jobRequest(), tenant, rec)
	if err != nil {
		return Sweep{}, err
	}
	rec.jobID = j.ID
	s.mu.Lock()
	s.nextSweep++
	rec.id = fmt.Sprintf("sweep-%06d", s.nextSweep)
	s.sweeps[rec.id] = rec
	s.mu.Unlock()
	s.svc.SweepsSubmitted.Add(1)
	return s.sweepSnapshot(rec), nil
}

// sweepSnapshot assembles the public view: job lifecycle plus cell log.
func (s *Server) sweepSnapshot(rec *sweepRec) Sweep {
	j, _ := s.Job(rec.jobID)
	rec.mu.Lock()
	done, cached := len(rec.cells), rec.cached
	rec.mu.Unlock()
	state := j.State
	if state == "" {
		state = JobQueued
	}
	return Sweep{
		ID:          rec.id,
		JobID:       rec.jobID,
		State:       state,
		Request:     rec.req,
		Submitted:   rec.submitted,
		Started:     j.Started,
		Finished:    j.Finished,
		Error:       j.Error,
		Parallelism: rec.parallelism,
		TotalCells:  rec.total,
		DoneCells:   done,
		CachedCells: cached,
	}
}

// Sweep returns a snapshot of the sweep (false if unknown).
func (s *Server) Sweep(id string) (Sweep, bool) {
	s.mu.Lock()
	rec, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		return Sweep{}, false
	}
	return s.sweepSnapshot(rec), true
}

// ---- HTTP layer ----

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sw, err := s.SubmitSweepAs(req, r.Header.Get("X-Tenant"))
	if err != nil {
		writeSubmitError(w, err, s.cfg.QueueCapacity)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+sw.ID)
	writeJSON(w, http.StatusAccepted, sw)
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recs := make([]*sweepRec, 0, len(s.sweeps))
	for _, rec := range s.sweeps {
		recs = append(recs, rec)
	}
	s.mu.Unlock()
	list := make([]Sweep, 0, len(recs))
	for _, rec := range recs {
		list = append(list, s.sweepSnapshot(rec))
	}
	// Zero-padded IDs: lexicographic order is submission order.
	sort.Slice(list, func(i, k int) bool { return list[i].ID < list[k].ID })
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, sw)
}

// sweepCellsPage is the /v1/sweeps/{id}/cells response: the cells
// completed after the client's cursor, plus enough progress state to
// poll until done. Pass next_after back as ?after=N for the next page;
// the stream is complete when state is terminal and done_cells equals
// the page's end.
type sweepCellsPage struct {
	SweepID    string      `json:"sweep_id"`
	State      JobState    `json:"state"`
	TotalCells int         `json:"total_cells"`
	DoneCells  int         `json:"done_cells"`
	NextAfter  int         `json:"next_after"`
	Cells      []SweepCell `json:"cells"`
}

func (s *Server) handleSweepCells(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rec, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid \"after\" cursor %q", v))
			return
		}
		after = n
	}
	cells, done := rec.cellsAfter(after)
	sw := s.sweepSnapshot(rec)
	page := sweepCellsPage{
		SweepID:    rec.id,
		State:      sw.State,
		TotalCells: rec.total,
		DoneCells:  done,
		NextAfter:  after + len(cells),
		Cells:      cells,
	}
	if page.Cells == nil {
		page.Cells = []SweepCell{}
	}
	writeJSON(w, http.StatusOK, page)
}

func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rec, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	s.writeJobResult(w, rec.jobID)
}
