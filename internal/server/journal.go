package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// journalEntry is one JSON line of the drain journal: enough to re-enqueue
// a still-queued job under its original ID after a restart.
type journalEntry struct {
	ID        string     `json:"id"`
	Request   JobRequest `json:"request"`
	Submitted time.Time  `json:"submitted_at"`
}

// writeJournal persists queued jobs as JSON lines, atomically (write to a
// temp file in the same directory, then rename).
func writeJournal(path string, jobs []*Job) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for _, j := range jobs {
		if err := enc.Encode(journalEntry{ID: j.ID, Request: j.Request, Submitted: j.Submitted}); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadJournal re-enqueues jobs journaled by a previous Drain and removes
// the journal so it is not replayed twice. Jobs whose requests no longer
// validate (e.g. a tightened server cap) are dropped with a log line
// rather than failing startup.
func (s *Server) loadJournal(path string) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()

	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return n, fmt.Errorf("line %d: %w", line, err)
		}
		configs, err := e.Request.resolve(s.cfg.MaxInsts)
		if err != nil {
			s.cfg.Log.Printf("polyserve: dropping journaled job %s: %v", e.ID, err)
			continue
		}
		j := &Job{
			ID:        e.ID,
			State:     JobQueued,
			Request:   e.Request,
			Submitted: e.Submitted,
			configs:   configs,
		}
		s.mu.Lock()
		s.jobs[j.ID] = j
		// Keep fresh IDs past the journaled ones.
		if num, ok := strings.CutPrefix(j.ID, "job-"); ok {
			if v, err := strconv.ParseUint(num, 10, 64); err == nil && v > s.nextID {
				s.nextID = v
			}
		}
		s.mu.Unlock()
		if err := s.sched.submit(j); err != nil {
			s.mu.Lock()
			delete(s.jobs, j.ID)
			s.mu.Unlock()
			s.cfg.Log.Printf("polyserve: dropping journaled job %s: %v", e.ID, err)
			continue
		}
		s.svc.JobsSubmitted.Add(1)
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, os.Remove(path)
}
