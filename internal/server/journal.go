package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// The drain journal is a line-oriented file, one record per still-queued
// job. Each record is
//
//	<crc32-ieee, 8 lowercase hex digits> <space> <json> <newline>
//
// where the checksum covers exactly the JSON bytes. The CRC turns two
// failure modes into detectable, recoverable events instead of lost or
// corrupted jobs:
//
//   - A torn write (crash or power loss mid-record) leaves a final line
//     whose checksum cannot match; the loader drops that tail and resumes
//     every intact record before it.
//   - Bit rot or manual edits anywhere in the file fail that record's
//     checksum; the loader drops the record, counts it in the
//     journal_dropped stat, and keeps going — a damaged journal never
//     fails startup.
//
// Journals written before the checksum existed (lines starting with '{')
// are still accepted, without integrity protection.

// journalEntry is the JSON payload of one record: enough to re-enqueue a
// still-queued job under its original ID after a restart.
type journalEntry struct {
	ID        string     `json:"id"`
	Request   JobRequest `json:"request"`
	Submitted time.Time  `json:"submitted_at"`
}

// appendJournalRecord formats one checksummed record.
func appendJournalRecord(dst []byte, payload []byte) []byte {
	dst = fmt.Appendf(dst, "%08x ", crc32.ChecksumIEEE(payload))
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// writeJournal persists queued jobs as checksummed records, atomically:
// write to a temp file in the same directory, fsync, then rename, so a
// crash during Drain leaves either the old journal or the complete new
// one — never a half-written file under the journal's name.
func writeJournal(path string, jobs []*Job) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, j := range jobs {
		payload, err := json.Marshal(journalEntry{ID: j.ID, Request: j.Request, Submitted: j.Submitted})
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := w.Write(appendJournalRecord(nil, payload)); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// parseJournalLine validates one journal line and returns its JSON
// payload. Legacy records (bare JSON, no checksum) are accepted.
func parseJournalLine(line []byte) ([]byte, error) {
	if len(line) > 0 && line[0] == '{' {
		return line, nil // pre-checksum journal
	}
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("malformed record (no checksum prefix)")
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("malformed checksum %q", line[:8])
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return nil, fmt.Errorf("checksum mismatch (want %08x, got %08x): torn or corrupt record", want, got)
	}
	return payload, nil
}

// loadJournal re-enqueues jobs journaled by a previous Drain and removes
// the journal so it is not replayed twice. Damaged content never fails
// startup: records that are torn, corrupt, unparseable, no longer valid
// under the current server caps, or unsubmittable are dropped with a log
// line and counted in journal_dropped; each resumed job counts in
// journal_resumed.
func (s *Server) loadJournal(path string) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()

	n := 0
	drop := func(line int, id string, why error) {
		s.svc.JournalDropped.Add(1)
		if id != "" {
			id = " (job " + id + ")"
		}
		s.cfg.Log.Printf("polyserve: journal line %d%s dropped: %v", line, id, why)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		payload, err := parseJournalLine(sc.Bytes())
		if err != nil {
			drop(line, "", err)
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			drop(line, "", err)
			continue
		}
		configs, err := e.Request.resolve(s.cfg.MaxInsts)
		if err != nil {
			drop(line, e.ID, err)
			continue
		}
		j := &Job{
			ID:        e.ID,
			State:     JobQueued,
			Request:   e.Request,
			Submitted: e.Submitted,
			configs:   configs,
		}
		s.mu.Lock()
		s.jobs[j.ID] = j
		// Keep fresh IDs past the journaled ones.
		if num, ok := strings.CutPrefix(j.ID, "job-"); ok {
			if v, err := strconv.ParseUint(num, 10, 64); err == nil && v > s.nextID {
				s.nextID = v
			}
		}
		s.mu.Unlock()
		if err := s.sched.submit(j); err != nil {
			s.mu.Lock()
			delete(s.jobs, j.ID)
			s.mu.Unlock()
			drop(line, e.ID, err)
			continue
		}
		s.svc.JobsSubmitted.Add(1)
		s.svc.JournalResumed.Add(1)
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, os.Remove(path)
}
