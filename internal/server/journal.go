package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// The drain journal is a line-oriented file, one record per still-queued
// job. Each record is
//
//	<crc32-ieee, 8 lowercase hex digits> <space> <json> <newline>
//
// where the checksum covers exactly the JSON bytes. The CRC turns two
// failure modes into detectable, recoverable events instead of lost or
// corrupted jobs:
//
//   - A torn write (crash or power loss mid-record) leaves a final line
//     whose checksum cannot match; the loader drops that tail and resumes
//     every intact record before it.
//   - Bit rot or manual edits anywhere in the file fail that record's
//     checksum; the loader drops the record, counts it in the
//     journal_dropped stat, and keeps going — a damaged journal never
//     fails startup.
//
// Journals written before the checksum existed (lines starting with '{')
// are still accepted, without integrity protection.
//
// Two journal modes share this format:
//
//   - Drain journal (the original): records are written only on graceful
//     Drain, one per still-queued job, and the whole file is consumed and
//     removed at startup. A SIGKILL loses the queue.
//   - Write-ahead journal (Config.JournalWAL, the coordinator's mode):
//     an "accept" record is appended the moment a job is admitted and a
//     "done" record when it reaches a terminal state. Pending work is
//     the set of accepts without a matching done, so an in-flight sweep
//     survives even an abrupt coordinator kill — cells already completed
//     are replayed from the result store, the rest re-execute
//     idempotently. At startup the file is compacted back to the pending
//     accepts and reopened for appending.
//
// Records without an "op" field (drain journals, pre-WAL files) read as
// accepts, so the two modes interoperate across restarts and upgrades.

// journalEntry is the JSON payload of one record: enough to re-enqueue a
// still-queued job under its original ID after a restart.
type journalEntry struct {
	ID        string     `json:"id"`
	Request   JobRequest `json:"request"`
	Submitted time.Time  `json:"submitted_at"`
	// Op is the WAL record type: "accept", "done", or "" (legacy drain
	// record, treated as accept).
	Op string `json:"op,omitempty"`
	// Tenant preserves the fair-queuing bucket across restarts.
	Tenant string `json:"tenant,omitempty"`
}

// appendJournalRecord formats one checksummed record.
func appendJournalRecord(dst []byte, payload []byte) []byte {
	dst = fmt.Appendf(dst, "%08x ", crc32.ChecksumIEEE(payload))
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// writeJournal persists queued jobs as checksummed records, atomically:
// write to a temp file in the same directory, fsync, then rename, so a
// crash during Drain leaves either the old journal or the complete new
// one — never a half-written file under the journal's name.
func writeJournal(path string, jobs []*Job) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, j := range jobs {
		payload, err := json.Marshal(journalEntry{ID: j.ID, Request: j.Request, Submitted: j.Submitted})
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := w.Write(appendJournalRecord(nil, payload)); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// parseJournalLine validates one journal line and returns its JSON
// payload. Legacy records (bare JSON, no checksum) are accepted.
func parseJournalLine(line []byte) ([]byte, error) {
	if len(line) > 0 && line[0] == '{' {
		return line, nil // pre-checksum journal
	}
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("malformed record (no checksum prefix)")
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("malformed checksum %q", line[:8])
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return nil, fmt.Errorf("checksum mismatch (want %08x, got %08x): torn or corrupt record", want, got)
	}
	return payload, nil
}

// loadJournal re-enqueues pending jobs from a previous incarnation's
// journal. In drain mode the file is consumed and removed; in WAL mode
// it is compacted to the pending accepts and reopened for appending.
// Damaged content never fails startup: records that are torn, corrupt,
// unparseable, no longer valid under the current server caps, or
// unsubmittable are dropped with a log line and counted in
// journal_dropped; each resumed job counts in journal_resumed.
func (s *Server) loadJournal(path string) (int, error) {
	drop := func(line int, id string, why error) {
		s.svc.JournalDropped.Add(1)
		if id != "" {
			id = " (job " + id + ")"
		}
		s.cfg.Log.Printf("polyserve: journal line %d%s dropped: %v", line, id, why)
	}

	// Pass 1: scan every intact record, resolving accepts against dones.
	// Pending = accepted but never finished, in acceptance order.
	type pendingRec struct {
		entry journalEntry
		line  int
	}
	var pending []pendingRec
	index := make(map[string]int) // job ID -> pending slot (-1 = done)
	f, err := os.Open(path)
	if err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for line := 1; sc.Scan(); line++ {
			if strings.TrimSpace(sc.Text()) == "" {
				continue
			}
			payload, err := parseJournalLine(sc.Bytes())
			if err != nil {
				drop(line, "", err)
				continue
			}
			var e journalEntry
			if err := json.Unmarshal(payload, &e); err != nil {
				drop(line, "", err)
				continue
			}
			switch e.Op {
			case "", "accept":
				if _, dup := index[e.ID]; !dup || index[e.ID] == -1 {
					index[e.ID] = len(pending)
					pending = append(pending, pendingRec{entry: e, line: line})
				}
			case "done":
				if slot, ok := index[e.ID]; ok && slot >= 0 {
					pending[slot].entry.ID = "" // tombstone
					index[e.ID] = -1
				}
			default:
				drop(line, e.ID, fmt.Errorf("unknown journal op %q", e.Op))
			}
		}
		scanErr := sc.Err()
		f.Close()
		if scanErr != nil {
			return 0, scanErr
		}
	} else if !os.IsNotExist(err) {
		return 0, err
	}

	// Pass 2: re-enqueue the pending jobs.
	n := 0
	for _, p := range pending {
		if p.entry.ID == "" {
			continue
		}
		e := p.entry
		configs, err := e.Request.resolve(s.cfg.MaxInsts)
		if err != nil {
			drop(p.line, e.ID, err)
			continue
		}
		j := &Job{
			ID:        e.ID,
			State:     JobQueued,
			Request:   e.Request,
			Submitted: e.Submitted,
			Tenant:    e.Tenant,
			configs:   configs,
		}
		s.mu.Lock()
		s.jobs[j.ID] = j
		// Keep fresh IDs past the journaled ones.
		if num, ok := strings.CutPrefix(j.ID, "job-"); ok {
			if v, err := strconv.ParseUint(num, 10, 64); err == nil && v > s.nextID {
				s.nextID = v
			}
		}
		s.mu.Unlock()
		if err := s.sched.submit(j); err != nil {
			s.mu.Lock()
			delete(s.jobs, j.ID)
			s.mu.Unlock()
			drop(p.line, e.ID, err)
			continue
		}
		s.svc.JobsSubmitted.Add(1)
		s.svc.JournalResumed.Add(1)
		n++
	}

	if !s.cfg.JournalWAL {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return n, err
		}
		return n, nil
	}
	return n, s.walOpen(path)
}

// walOpen compacts the journal down to the currently-pending jobs (one
// accept record each) and opens it for appending. The compaction is the
// same atomic temp+rename as writeJournal, so a crash mid-compaction
// leaves the previous journal intact.
func (s *Server) walOpen(path string) error {
	s.mu.Lock()
	var jobs []*Job
	for _, j := range s.jobs {
		if j.State == JobQueued {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	// Stable order: by ID (IDs are zero-padded sequence numbers).
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobs[k].ID < jobs[k-1].ID; k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
	if err := writeJournal(path, jobs); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.walMu.Lock()
	s.walF = f
	s.walMu.Unlock()
	return nil
}

// walAppend appends one WAL record ("accept" on admission, "done" on any
// terminal state). A write failure degrades durability, not
// availability: it is logged and the job proceeds.
func (s *Server) walAppend(op string, j *Job) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.walF == nil {
		return
	}
	payload, err := json.Marshal(journalEntry{
		ID: j.ID, Request: j.Request, Submitted: j.Submitted, Op: op, Tenant: j.Tenant,
	})
	if err != nil {
		s.cfg.Log.Printf("polyserve: wal %s %s: %v", op, j.ID, err)
		return
	}
	if _, err := s.walF.Write(appendJournalRecord(nil, payload)); err != nil {
		s.cfg.Log.Printf("polyserve: wal %s %s: %v", op, j.ID, err)
	}
}

// walClose closes the WAL file (after Drain).
func (s *Server) walClose() {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.walF != nil {
		s.walF.Close()
		s.walF = nil
	}
}
