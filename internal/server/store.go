package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/harness"
)

// store.go is the fleet's content-addressed result store: one JSON file
// per completed cell, named by the SHA-256 of the cell's content address
// (harness.CellKey). Simulations are deterministic, so the store doubles
// as a cross-restart, cross-node memoization tier AND as a correctness
// audit: two nodes writing different bytes under the same key can only
// mean nondeterminism (or corruption), which Put surfaces as a conflict
// instead of silently overwriting. First write wins; writes are
// temp+rename so readers never observe a torn file.

// storeRecord is the on-disk document. Key is stored inside the file so
// an auditor (scripts/soak_smoke.sh) can recompute the address and verify
// file name ↔ content agreement without a reverse index.
type storeRecord struct {
	Key   string            `json:"key"`
	Value harness.MemoValue `json:"value"`
}

// resultStore is safe for concurrent use by dispatch goroutines.
type resultStore struct {
	dir string

	hits      atomic.Uint64
	puts      atomic.Uint64
	conflicts atomic.Uint64
}

func openStore(dir string) (*resultStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("result store: %w", err)
	}
	return &resultStore{dir: dir}, nil
}

func (st *resultStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(st.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the stored value for key, if present and intact. A corrupt
// or mismatched file reads as a miss — the cell is simply re-executed.
func (st *resultStore) Get(key string) (harness.MemoValue, bool) {
	data, err := os.ReadFile(st.path(key))
	if err != nil {
		return harness.MemoValue{}, false
	}
	var rec storeRecord
	if json.Unmarshal(data, &rec) != nil || rec.Key != key {
		return harness.MemoValue{}, false
	}
	st.hits.Add(1)
	return rec.Value, true
}

// Put stores the value under key. When the key already exists the
// existing result is kept (first write wins) and, if the bytes disagree,
// the conflict counter records a determinism violation for the audit.
// Returned errors are I/O problems; callers treat the store as a cache
// and may continue without it.
func (st *resultStore) Put(key string, v harness.MemoValue) (conflict bool, err error) {
	blob, err := json.Marshal(storeRecord{Key: key, Value: v})
	if err != nil {
		return false, err
	}
	path := st.path(key)
	if old, err := os.ReadFile(path); err == nil {
		if !bytes.Equal(bytes.TrimSpace(old), blob) {
			st.conflicts.Add(1)
			return true, nil
		}
		return false, nil
	}
	tmp, err := os.CreateTemp(st.dir, ".cell-*")
	if err != nil {
		return false, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return false, err
	}
	if err := tmp.Close(); err != nil {
		return false, err
	}
	// A concurrent writer may have landed first; content under one key is
	// identical by construction (same deterministic simulation), so the
	// rename race is benign — but check anyway to feed the audit.
	if old, err := os.ReadFile(path); err == nil && !bytes.Equal(bytes.TrimSpace(old), blob) {
		st.conflicts.Add(1)
		return true, nil
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return false, err
	}
	st.puts.Add(1)
	return false, nil
}

// Len counts stored results (scrape-time only; walks the directory).
func (st *resultStore) Len() int {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") && !strings.HasPrefix(e.Name(), ".") {
			n++
		}
	}
	return n
}

// tieredMemo layers the persistent result store under the in-memory LRU:
// Get falls back to the store (backfilling the LRU), Put writes through.
// It is the harness.Memo a worker or standalone node runs with, making
// every node's cache shared fleet-wide and restart-durable.
type tieredMemo struct {
	lru   harness.Memo // may be nil (caching disabled)
	store *resultStore
}

func (m tieredMemo) Get(key string) (harness.MemoValue, bool) {
	if m.lru != nil {
		if v, ok := m.lru.Get(key); ok {
			return v, true
		}
	}
	v, ok := m.store.Get(key)
	if ok && m.lru != nil {
		m.lru.Put(key, v)
	}
	return v, ok
}

func (m tieredMemo) Put(key string, v harness.MemoValue) {
	if m.lru != nil {
		m.lru.Put(key, v)
	}
	_, _ = m.store.Put(key, v)
}
