package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosBody is a valid request whose title carries the chaos-panic trigger;
// identical bodies share one crash signature.
const chaosBody = `{"configs":[{"name":"mono","model":"monopath"}],"title":"boom sweep (IPC)","benchmarks":["compress"],"insts":10000}`

// TestWorkerPanicContainedAndQuarantined crashes the worker three times
// with the same request and checks: every crash fails only its own job
// (the process and other requests keep working), the fourth submission is
// refused with 403, and /v1/quarantine reports the offender.
func TestWorkerPanicContainedAndQuarantined(t *testing.T) {
	_, ts := newTestServer(t, Config{ChaosPanic: "boom", CrashThreshold: 3})

	for i := 1; i <= 3; i++ {
		j := submitAndWait(t, ts, chaosBody)
		if j.State != JobFailed {
			t.Fatalf("crash %d: state %s (%s), want failed", i, j.State, j.Error)
		}
		if !strings.Contains(j.Error, "worker panic") {
			t.Fatalf("crash %d: error %q does not mention the contained panic", i, j.Error)
		}
		// The process must have survived the panic.
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatalf("healthz after crash %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz after crash %d: status %d", i, resp.StatusCode)
		}
	}

	// The fourth submission of the same request is quarantined.
	resp, data := post(t, ts, chaosBody)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("quarantined submit: status %d, want 403; body: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || !strings.Contains(eb.Error, "quarantine") {
		t.Fatalf("403 body %s does not mention quarantine", data)
	}

	// A different (healthy) request still runs to completion.
	ok := submitAndWait(t, ts, `{"configs":[{"name":"mono","model":"monopath"}],"benchmarks":["compress"],"insts":10000}`)
	if ok.State != JobDone {
		t.Fatalf("healthy job after quarantine: state %s (%s)", ok.State, ok.Error)
	}

	// The quarantine list names the offender.
	qresp, err := http.Get(ts.URL + "/v1/quarantine")
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var entries []QuarantineEntry
	if err := json.NewDecoder(qresp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("quarantine list has %d entries, want 1: %+v", len(entries), entries)
	}
	e := entries[0]
	if !e.Quarantined || e.Crashes != 3 || !strings.Contains(e.LastError, "worker panic") {
		t.Fatalf("quarantine entry: %+v", e)
	}

	snap := getStats(t, ts)
	if snap.WorkerPanics != 3 || snap.JobsQuarantined != 1 || snap.JobsFailed != 3 {
		t.Fatalf("stats: worker_panics=%d jobs_quarantined=%d jobs_failed=%d, want 3/1/3",
			snap.WorkerPanics, snap.JobsQuarantined, snap.JobsFailed)
	}
}

// TestQuarantineSignatures pins the signature semantics: equal requests
// share a crash budget, different requests do not.
func TestQuarantineSignatures(t *testing.T) {
	q := newQuarantine(2)
	a := JobRequest{Experiment: "fig8", Insts: 10000}
	b := JobRequest{Experiment: "table1", Insts: 10000}
	now := time.Unix(1700000000, 0)

	if _, tipped := q.recordCrash(a, "a", "boom", "node-a", now); tipped {
		t.Fatal("first crash must not quarantine at threshold 2")
	}
	if _, bad := q.check(a); bad {
		t.Fatal("one crash below threshold must not quarantine")
	}
	if _, tipped := q.recordCrash(a, "a", "boom", "node-b", now.Add(time.Second)); !tipped {
		t.Fatal("second crash must tip the threshold")
	}
	if _, bad := q.check(a); !bad {
		t.Fatal("request a should be quarantined")
	}
	if _, bad := q.check(b); bad {
		t.Fatal("request b never crashed and must not be quarantined")
	}
	if _, tipped := q.recordCrash(a, "a", "boom", "node-b", now.Add(2*time.Second)); tipped {
		t.Fatal("already-quarantined entries must not re-tip")
	}
	if got := q.list(); len(got) != 1 || got[0].Crashes != 3 {
		t.Fatalf("list: %+v", got)
	}
}

// journalRecord marshals a journal entry for a valid one-config request.
func journalRecord(t *testing.T, id string) []byte {
	t.Helper()
	payload, err := json.Marshal(journalEntry{
		ID: id,
		Request: JobRequest{
			Configs:    []ConfigEntry{{Name: "mono", Model: "monopath"}},
			Benchmarks: []string{"compress"},
			Insts:      10000,
		},
		Submitted: time.Unix(1700000000, 0).UTC(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestJournalCorruptionRecovery loads a journal containing intact records,
// a bit-rotted record, a torn tail, and a legacy (pre-checksum) record.
// The damaged records are dropped and counted; everything intact resumes.
func TestJournalCorruptionRecovery(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "polyserve.journal")

	good1 := appendJournalRecord(nil, journalRecord(t, "job-000001"))
	good2 := appendJournalRecord(nil, journalRecord(t, "job-000002"))
	legacy := append(journalRecord(t, "job-000003"), '\n') // pre-checksum format
	rotten := appendJournalRecord(nil, journalRecord(t, "job-000004"))
	rotten[20] ^= 0x40 // flip one payload bit; the checksum no longer matches
	torn := appendJournalRecord(nil, journalRecord(t, "job-000005"))
	torn = torn[:len(torn)/2] // write cut off mid-record, no newline

	var blob []byte
	for _, rec := range [][]byte{good1, good2, legacy, rotten, torn} {
		blob = append(blob, rec...)
	}
	if err := os.WriteFile(journal, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// A server whose worker blocks, so resumed jobs stay visibly queued.
	s := &Server{cfg: Config{QueueCapacity: 8, JournalPath: journal, Log: testLogger(t)}.withDefaults(), jobs: make(map[string]*Job)}
	release := make(chan struct{})
	s.sched = newScheduler(1, 8, func(j *Job) { <-release })
	defer func() { close(release); s.sched.drain() }()

	n, err := s.loadJournal(journal)
	if err != nil {
		t.Fatalf("loadJournal must survive corruption, got %v", err)
	}
	if n != 3 {
		t.Fatalf("resumed %d jobs, want 3 (two checksummed + one legacy)", n)
	}
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		if _, ok := s.Job(id); !ok {
			t.Fatalf("intact record %s was not resumed", id)
		}
	}
	for _, id := range []string{"job-000004", "job-000005"} {
		if _, ok := s.Job(id); ok {
			t.Fatalf("damaged record %s must not be resumed", id)
		}
	}
	if got := s.svc.JournalResumed.Load(); got != 3 {
		t.Fatalf("journal_resumed = %d, want 3", got)
	}
	if got := s.svc.JournalDropped.Load(); got != 2 {
		t.Fatalf("journal_dropped = %d, want 2", got)
	}
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Fatalf("journal still exists after load (err=%v)", err)
	}
}

// TestJournalRoundTripWithChecksums checks writeJournal output parses
// record-for-record through the loader's line parser.
func TestJournalRoundTripWithChecksums(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "polyserve.journal")
	jobs := []*Job{
		{ID: "job-000007", Request: JobRequest{Experiment: "fig8"}, Submitted: time.Unix(1700000000, 0).UTC()},
		{ID: "job-000008", Request: JobRequest{Experiment: "table1"}, Submitted: time.Unix(1700000100, 0).UTC()},
	}
	if err := writeJournal(journal, jobs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2:\n%s", len(lines), data)
	}
	for i, line := range lines {
		payload, err := parseJournalLine([]byte(line))
		if err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		var e journalEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if e.ID != jobs[i].ID {
			t.Fatalf("line %d: ID %s, want %s", i+1, e.ID, jobs[i].ID)
		}
	}
}

// TestDrainRacesWorkerPanic drains the server while a chaos job is
// panicking in the worker and others sit in the queue: every job must end
// up either failed (panic contained mid-drain) or journaled — never lost.
func TestDrainRacesWorkerPanic(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "polyserve.journal")
	s, err := New(Config{
		Workers:       1,
		QueueCapacity: 8,
		JournalPath:   journal,
		ChaosPanic:    "boom",
		Log:           testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}

	// One chaos job that will panic in the worker, plus queued jobs the
	// drain must journal.
	var ids []string
	crash, err := s.Submit(JobRequest{
		Configs:    []ConfigEntry{{Name: "mono", Model: "monopath"}},
		Title:      "boom sweep (IPC)",
		Benchmarks: []string{"compress"},
		Insts:      10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, crash.ID)
	for i := 0; i < 3; i++ {
		j, err := s.Submit(JobRequest{
			Configs:    []ConfigEntry{{Name: "mono", Model: "monopath"}},
			Benchmarks: []string{"compress"},
			Insts:      20000,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	// Drain concurrently with the in-flight panic (this is what the
	// SIGTERM handler in cmd/polyserve does).
	var wg sync.WaitGroup
	var journaled int
	wg.Add(1)
	go func() {
		defer wg.Done()
		n, err := s.Drain()
		if err != nil {
			t.Errorf("drain: %v", err)
		}
		journaled = n
	}()
	wg.Wait()

	journaledIDs := make(map[string]bool)
	if data, err := os.ReadFile(journal); err == nil {
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			payload, err := parseJournalLine([]byte(line))
			if err != nil {
				t.Fatalf("journal line %q: %v", line, err)
			}
			var e journalEntry
			if err := json.Unmarshal(payload, &e); err != nil {
				t.Fatal(err)
			}
			journaledIDs[e.ID] = true
		}
	}
	if len(journaledIDs) != journaled {
		t.Fatalf("journal has %d records, Drain reported %d", len(journaledIDs), journaled)
	}

	// Account for every job: finished (done/failed) or journaled — a job
	// that is neither was lost by the drain/panic race.
	for _, id := range ids {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch {
		case j.State == JobDone || j.State == JobFailed:
			// Ran to completion (the chaos job must be failed, not lost).
		case j.State == JobQueued && journaledIDs[id]:
			// Still queued at drain time and safely journaled.
		default:
			t.Fatalf("job %s lost: state=%s journaled=%v", id, j.State, journaledIDs[id])
		}
	}
	if crashJob, _ := s.Job(crash.ID); crashJob.State == JobFailed {
		if !strings.Contains(crashJob.Error, "worker panic") {
			t.Fatalf("chaos job error %q does not mention the contained panic", crashJob.Error)
		}
	} else if !journaledIDs[crash.ID] {
		t.Fatalf("chaos job neither failed nor journaled: %+v", crashJob)
	}
}
