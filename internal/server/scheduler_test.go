package server

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSchedulerFIFOAndBackpressure saturates a 1-worker/2-slot scheduler
// and checks FIFO order, queue-full rejection, and drain handing back the
// still-queued jobs.
func TestSchedulerFIFOAndBackpressure(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	s := newScheduler(1, 2, func(j *Job) {
		mu.Lock()
		order = append(order, j.ID)
		mu.Unlock()
		<-release
	})

	j1, j2, j3, j4 := &Job{ID: "a"}, &Job{ID: "b"}, &Job{ID: "c"}, &Job{ID: "d"}
	if err := s.submit(j1); err != nil {
		t.Fatalf("submit a: %v", err)
	}
	waitFor(t, func() bool { q, r := s.depth(); return r == 1 && q == 0 })

	if err := s.submit(j2); err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if err := s.submit(j3); err != nil {
		t.Fatalf("submit c: %v", err)
	}
	if err := s.submit(j4); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit d: got %v, want ErrQueueFull", err)
	}

	// Cancel b out of the queue; c should run next after a finishes.
	if !s.remove(j2) {
		t.Fatal("remove(b) = false, want true")
	}
	if s.remove(j2) {
		t.Fatal("second remove(b) = true, want false")
	}

	done := make(chan []*Job, 1)
	go func() { done <- s.drain() }()
	// Drain must wait for the running job; release both potential runs.
	close(release)
	left := <-done

	// After the drain broadcast, the worker exits without picking up c, or
	// it picked c just before draining was set. Either way nothing is lost:
	// order + leftovers must cover {a} and {c} exactly.
	mu.Lock()
	got := append([]string{}, order...)
	mu.Unlock()
	for _, l := range left {
		got = append(got, l.ID)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("ran+leftover = %v, want [a c]", got)
	}

	if err := s.submit(&Job{ID: "e"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: got %v, want ErrDraining", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	// Generous deadline: under -race, non-cancellable setup (workload
	// generation) can hold a job in the running state for several seconds.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 60s")
}
