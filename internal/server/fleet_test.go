package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/stats"
)

// ---- consistent-hash registry ----

func nopDial(addr string) WorkerCaller { return nil }

// TestRingOwnershipStableUnderChurn: killing one worker moves only the
// cells it owned; every other cell keeps its owner (the property that
// keeps per-worker memoization caches hot across membership changes).
func TestRingOwnershipStableUnderChurn(t *testing.T) {
	reg := newRegistry(time.Hour, nopDial, nil)
	defer reg.close()
	for _, id := range []string{"w1", "w2", "w3"} {
		if _, err := reg.register(id, "http://"+id); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]string, 200)
	before := make(map[string]string)
	for i := range keys {
		keys[i] = fmt.Sprintf("cell-%d", i)
		before[keys[i]] = reg.owner(keys[i], nil).id
	}
	counts := map[string]int{}
	for _, owner := range before {
		counts[owner]++
	}
	for _, id := range []string{"w1", "w2", "w3"} {
		if counts[id] == 0 {
			t.Fatalf("worker %s owns no keys; vnode spread broken: %v", id, counts)
		}
	}

	// Evict w2 by hand (the reaper's job) and re-check ownership.
	reg.mu.Lock()
	reg.workers["w2"].live = false
	reg.rebuildLocked()
	reg.mu.Unlock()
	moved := 0
	for _, k := range keys {
		after := reg.owner(k, nil).id
		if after == "w2" {
			t.Fatalf("key %s still owned by the dead worker", k)
		}
		if before[k] != "w2" && after != before[k] {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, before[k], after)
		}
		if before[k] == "w2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("w2 owned nothing; churn test proved nothing")
	}

	// skip-walk: asking to skip a key's owner yields a different live worker.
	k := keys[0]
	owner := reg.owner(k, nil).id
	next := reg.owner(k, map[string]bool{owner: true})
	if next == nil || next.id == owner {
		t.Fatalf("skip-walk returned %v, want a different live worker", next)
	}
	if got := reg.owner(k, map[string]bool{"w1": true, "w2": true, "w3": true}); got != nil {
		t.Fatalf("all workers skipped must yield nil, got %s", got.id)
	}
}

// TestRegistryLeaseEviction: a worker that stops heartbeating is evicted
// by the reaper (onEvict fires), and a later heartbeat revives it with
// its identity intact.
func TestRegistryLeaseEviction(t *testing.T) {
	evicted := make(chan string, 1)
	reg := newRegistry(40*time.Millisecond, nopDial, func(id string) { evicted <- id })
	defer reg.close()
	if _, err := reg.register("w1", "http://w1"); err != nil {
		t.Fatal(err)
	}
	if !reg.isLive("w1") {
		t.Fatal("freshly registered worker must be live")
	}
	select {
	case id := <-evicted:
		if id != "w1" {
			t.Fatalf("evicted %s, want w1", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reaper never evicted the silent worker")
	}
	if reg.isLive("w1") || reg.liveCount() != 0 {
		t.Fatal("evicted worker still counted live")
	}
	// The lease revives on heartbeat — no re-registration needed while the
	// coordinator still remembers the ID.
	if !reg.beat("w1") {
		t.Fatal("beat on a remembered (evicted) worker must succeed")
	}
	if !reg.isLive("w1") {
		t.Fatal("heartbeat must revive the lease")
	}
	if reg.beat("ghost") {
		t.Fatal("beat on an unknown worker must demand re-registration")
	}
}

// ---- content-addressed result store ----

func TestStoreRoundTripAndConflict(t *testing.T) {
	st, err := openStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v := harness.MemoValue{IPC: 1.25, Stats: stats.Sim{Committed: 1000, Cycles: 800}}
	if _, ok := st.Get("cell-a"); ok {
		t.Fatal("empty store must miss")
	}
	if conflict, err := st.Put("cell-a", v); err != nil || conflict {
		t.Fatalf("first put: conflict=%v err=%v", conflict, err)
	}
	got, ok := st.Get("cell-a")
	if !ok || got.IPC != v.IPC || got.Stats.Committed != v.Stats.Committed {
		t.Fatalf("round trip: ok=%v got=%+v", ok, got)
	}
	// Same key, same value: idempotent re-put, no conflict.
	if conflict, err := st.Put("cell-a", v); err != nil || conflict {
		t.Fatalf("idempotent re-put: conflict=%v err=%v", conflict, err)
	}
	// Same key, different value: the determinism violation the fleet audit
	// is built to catch.
	v2 := v
	v2.IPC = 9.99
	conflict, err := st.Put("cell-a", v2)
	if err != nil {
		t.Fatal(err)
	}
	if !conflict {
		t.Fatal("divergent re-put must report a conflict")
	}
	if got, _ := st.Get("cell-a"); got.IPC != v.IPC {
		t.Fatal("conflict must not overwrite the first-written value")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}

	// A corrupt entry is a miss, never an error.
	st2, _ := openStore(t.TempDir())
	if _, err := st2.Put("cell-b", v); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(st2.dir)
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(st2.dir, e.Name()), []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := st2.Get("cell-b"); ok {
		t.Fatal("corrupt store entry must read as a miss")
	}
}

// ---- per-tenant fair queuing ----

// TestTenantFairQueuing: with one tenant hogging the queue, a second
// tenant's jobs still run in round-robin turn, and the hog is bounded by
// the per-tenant cap while the other tenant is still admitted.
func TestTenantFairQueuing(t *testing.T) {
	started := make(chan string, 32)
	release := make(chan struct{})
	sched := newTenantScheduler(1, 16, 4, func(j *Job) {
		started <- j.Tenant + "/" + j.ID
		<-release
	})
	defer func() { close(release); sched.drain() }()

	submit := func(tenant, id string) error {
		return sched.submit(&Job{ID: id, Tenant: tenant, State: JobQueued})
	}
	// First job starts immediately and occupies the single worker; the
	// rest queue behind it.
	if err := submit("hog", "job-0"); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 1; i <= 4; i++ {
		if err := submit("hog", fmt.Sprintf("job-%d", i)); err != nil {
			t.Fatalf("hog job %d: %v", i, err)
		}
	}
	// The hog's 5th queued job exceeds its per-tenant share.
	if err := submit("hog", "job-5"); err != ErrTenantQueueFull {
		t.Fatalf("over-cap hog submit: err=%v, want ErrTenantQueueFull", err)
	}
	// The polite tenant still gets in.
	if err := submit("polite", "job-p1"); err != nil {
		t.Fatalf("polite tenant must be admitted: %v", err)
	}
	if err := submit("polite", "job-p2"); err != nil {
		t.Fatal(err)
	}
	if got := sched.tenantDepth("hog"); got != 4 {
		t.Fatalf("hog depth = %d, want 4", got)
	}

	// Drain order: the worker must alternate tenants (round-robin), not
	// empty the hog first.
	var order []string
	for i := 0; i < 6; i++ {
		release <- struct{}{}
		select {
		case s := <-started:
			order = append(order, s)
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled after %v", order)
		}
	}
	politeFirst := -1
	for i, s := range order {
		if strings.HasPrefix(s, "polite/") {
			politeFirst = i
			break
		}
	}
	if politeFirst < 0 || politeFirst > 1 {
		t.Fatalf("polite tenant's first job ran at position %d of %v; fair queuing should interleave", politeFirst, order)
	}
}

// ---- WAL journal ----

// TestWALAcceptDoneCycle: accepts without a matching done survive a
// restart; accept+done pairs do not; the reopened file is compacted.
func TestWALAcceptDoneCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.journal")
	mk := func() *Server {
		return &Server{
			cfg:  Config{QueueCapacity: 8, JournalPath: path, JournalWAL: true, Log: testLogger(t)}.withDefaults(),
			jobs: make(map[string]*Job),
		}
	}
	jobA := &Job{ID: "job-000001", State: JobQueued, Submitted: time.Unix(1700000000, 0).UTC(),
		Request: JobRequest{Configs: []ConfigEntry{{Name: "mono", Model: "monopath"}}, Benchmarks: []string{"compress"}, Insts: 10000}}
	jobB := &Job{ID: "job-000002", State: JobQueued, Submitted: jobA.Submitted, Tenant: "acme",
		Request: jobA.Request}

	s1 := mk()
	s1.sched = newScheduler(1, 8, func(j *Job) {})
	if _, err := s1.loadJournal(path); err != nil { // empty file: opens the WAL
		t.Fatal(err)
	}
	s1.walAppend("accept", jobA)
	s1.walAppend("accept", jobB)
	s1.walAppend("done", jobA)
	s1.walClose()
	s1.sched.drain()

	// "Restart": only jobB is pending.
	s2 := mk()
	blocked := make(chan struct{})
	s2.sched = newScheduler(1, 8, func(j *Job) { <-blocked })
	defer func() { close(blocked); s2.sched.drain() }()
	n, err := s2.loadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resumed %d jobs, want 1 (accept without done)", n)
	}
	j, ok := s2.Job("job-000002")
	if !ok {
		t.Fatal("job-000002 (accepted, never done) must resume")
	}
	if j.Tenant != "acme" {
		t.Fatalf("tenant %q lost across restart, want acme", j.Tenant)
	}
	if _, ok := s2.Job("job-000001"); ok {
		t.Fatal("job-000001 (done) must not resume")
	}
	s2.walClose()

	// The load compacted the file: exactly one record remains.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(blob, []byte("\n")); lines != 1 {
		t.Fatalf("compacted WAL has %d records, want 1:\n%s", lines, blob)
	}
}

// TestJournalTornTailEveryByteBoundary cuts the journal's final record at
// every byte boundary — the full sweep of torn-write shapes a crash can
// leave — and requires that every cut resumes exactly the two intact jobs
// and drops the tail without an error.
func TestJournalTornTailEveryByteBoundary(t *testing.T) {
	rec1 := appendJournalRecord(nil, journalRecord(t, "job-000001"))
	rec2 := appendJournalRecord(nil, journalRecord(t, "job-000002"))
	rec3 := appendJournalRecord(nil, journalRecord(t, "job-000003"))

	dir := t.TempDir()
	for cut := 0; cut < len(rec3); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("journal-%03d", cut))
		blob := append(append(append([]byte(nil), rec1...), rec2...), rec3[:cut]...)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		s := &Server{cfg: Config{QueueCapacity: 8, JournalPath: path, Log: testLogger(t)}.withDefaults(), jobs: make(map[string]*Job)}
		release := make(chan struct{})
		s.sched = newScheduler(1, 8, func(j *Job) { <-release })
		n, err := s.loadJournal(path)
		if err != nil {
			t.Fatalf("cut %d: loadJournal error: %v", cut, err)
		}
		// One boundary is special: losing only the trailing newline leaves
		// the record checksum-intact, so it rightly resumes.
		want, tornResumes := 2, false
		if cut == len(rec3)-1 {
			want, tornResumes = 3, true
		}
		if n != want {
			t.Fatalf("cut %d: resumed %d jobs, want %d", cut, n, want)
		}
		if _, ok := s.Job("job-000003"); ok != tornResumes {
			t.Fatalf("cut %d: torn record resumed=%v, want %v", cut, ok, tornResumes)
		}
		close(release)
		s.sched.drain()
	}
}

// ---- fleet end to end (in-process coordinator + workers over HTTP) ----

// httpCaller is the test's stand-in for client.DialWorker: the same
// single-shot POST /v1/cells exchange, without importing internal/client
// (which imports this package).
type httpCaller struct{ base string }

func (c httpCaller) RunCell(ctx context.Context, req CellRequest) (CellResponse, error) {
	var out CellResponse
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return out, &CellCallError{Err: err}
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return out, &CellCallError{Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	node := resp.Header.Get(HeaderNode)
	if err != nil {
		return out, &CellCallError{Node: node, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return out, &CellCallError{Node: node, Crash: resp.Header.Get(HeaderCrash) != "",
			Status: resp.StatusCode, Msg: string(data)}
	}
	return out, json.Unmarshal(data, &out)
}

// deadCaller refuses every call at the transport level.
type deadCaller struct{}

func (deadCaller) RunCell(ctx context.Context, req CellRequest) (CellResponse, error) {
	return CellResponse{}, &CellCallError{Err: fmt.Errorf("connection refused (test)")}
}

// startFleet builds one coordinator plus n live workers sharing a result
// store, all in-process over httptest.
func startFleet(t *testing.T, n int, storeDir string) (*Server, *httptest.Server) {
	t.Helper()
	dial := func(addr string) WorkerCaller {
		if strings.HasPrefix(addr, "dead://") {
			return deadCaller{}
		}
		return httpCaller{base: addr}
	}
	coord, cts := newTestServer(t, Config{
		Role: RoleCoordinator, NodeID: "coord", DialWorker: dial,
		StoreDir: storeDir, LeaseTTL: time.Hour, CellTimeout: 30 * time.Second,
		CacheCells: 1024,
	})
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("w%d", i)
		w, wts := newTestServer(t, Config{
			Role: RoleWorker, NodeID: id, StoreDir: storeDir, CacheCells: 1024,
		})
		_ = w
		if _, err := coord.registry.register(id, wts.URL); err != nil {
			t.Fatal(err)
		}
	}
	return coord, cts
}

const fleetJobBody = `{"configs":[{"name":"mono","model":"monopath"},{"name":"see","model":"see"},{"name":"dual","model":"dualpath"}],"insts":3000,"benchmarks":["compress","gcc"]}`

// TestFleetMatchesStandalone: a job sharded across three workers returns
// the byte-identical rendered result of a single-node run.
func TestFleetMatchesStandalone(t *testing.T) {
	solo, sts := newTestServer(t, Config{})
	_ = solo
	want := submitAndWait(t, sts, fleetJobBody)
	if want.State != JobDone {
		t.Fatalf("standalone run failed: %+v", want)
	}
	wantRes := getResult(t, sts, want.ID)

	coord, cts := startFleet(t, 3, t.TempDir())
	got := submitAndWait(t, cts, fleetJobBody)
	if got.State != JobDone {
		t.Fatalf("fleet run failed: %+v", got)
	}
	gotRes := getResult(t, cts, got.ID)
	if gotRes.Text != wantRes.Text {
		t.Fatalf("fleet result diverged from standalone:\n--- standalone ---\n%s\n--- fleet ---\n%s", wantRes.Text, gotRes.Text)
	}
	if coord.svc.CellsDispatched.Load() == 0 {
		t.Fatal("coordinator dispatched no cells; the run was not remote")
	}
	if coord.svc.StoreConflicts.Load() != 0 {
		t.Fatal("determinism violation: store conflicts in a healthy fleet")
	}
	if coord.store.Len() == 0 {
		t.Fatal("shared store empty after a fleet run")
	}
}

// TestFleetRedispatchAroundDeadWorker: with one registered worker dead at
// the transport level, every cell it owned is redispatched to the ring
// successor and the job still completes.
func TestFleetRedispatchAroundDeadWorker(t *testing.T) {
	coord, cts := startFleet(t, 2, t.TempDir())
	if _, err := coord.registry.register("wdead", "dead://x"); err != nil {
		t.Fatal(err)
	}
	got := submitAndWait(t, cts, fleetJobBody)
	if got.State != JobDone {
		t.Fatalf("fleet with a dead member must still finish: %+v", got)
	}
	// 6 cells over a ring with a dead third member: statistically certain
	// at least one cell needed a redispatch.
	if coord.svc.CellsRedispatched.Load() == 0 {
		t.Fatal("no redispatches recorded around the dead worker")
	}
}

// TestFleetRoleGates: role-gated endpoints answer 409 on the wrong node
// kind, and /v1/healthz reports role identity.
func TestFleetRoleGates(t *testing.T) {
	coord, cts := startFleet(t, 1, t.TempDir())
	_ = coord

	// A coordinator refuses direct cell execution.
	resp, err := http.Post(cts.URL+"/v1/cells", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /v1/cells on coordinator: %d, want 409", resp.StatusCode)
	}
	if node := resp.Header.Get(HeaderNode); node != "coord" {
		t.Fatalf("node header %q, want coord", node)
	}
	// A coordinator refuses trace jobs (no local pipeline under Exec).
	resp2, _ := http.Post(cts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"configs":[{"name":"m","model":"monopath"}],"trace":true}`))
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace job on coordinator: %d, want 400", resp2.StatusCode)
	}

	// A standalone node refuses fleet membership calls.
	_, sts := newTestServer(t, Config{})
	resp3, _ := http.Post(sts.URL+"/v1/workers", "application/json", strings.NewReader(`{"id":"w","addr":"http://x"}`))
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("POST /v1/workers on standalone: %d, want 409", resp3.StatusCode)
	}

	// Healthz reports role and live workers on the coordinator.
	hr, _ := http.Get(cts.URL + "/v1/healthz")
	var health map[string]string
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health["role"] != RoleCoordinator || health["node"] != "coord" || health["workers_live"] != "1" {
		t.Fatalf("healthz = %v", health)
	}

	// GET /v1/workers lists the fleet.
	wr, _ := http.Get(cts.URL + "/v1/workers")
	var fs FleetStatus
	if err := json.NewDecoder(wr.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	wr.Body.Close()
	if fs.Coordinator != "coord" || fs.WorkersLive != 1 || len(fs.Workers) != 1 || fs.Workers[0].ID != "w1" {
		t.Fatalf("fleet status = %+v", fs)
	}
}

// TestWorkerRegistrationAPI: the register/heartbeat endpoints grant and
// renew leases; heartbeats for unknown workers demand re-registration.
func TestWorkerRegistrationAPI(t *testing.T) {
	_, cts := startFleet(t, 0, "")
	reg := func(body string) *http.Response {
		resp, err := http.Post(cts.URL+"/v1/workers", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := reg(`{"id":"w9","addr":"http://127.0.0.1:1"}`)
	var lease WorkerLease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || lease.LeaseMS <= 0 || lease.Coordinator != "coord" {
		t.Fatalf("register: %d %+v", resp.StatusCode, lease)
	}
	hb, err := http.Post(cts.URL+"/v1/workers/w9/heartbeat", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	hb.Body.Close()
	if hb.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat: %d, want 200", hb.StatusCode)
	}
	hb2, _ := http.Post(cts.URL+"/v1/workers/ghost/heartbeat", "application/json", strings.NewReader(`{}`))
	hb2.Body.Close()
	if hb2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown worker heartbeat: %d, want 404", hb2.StatusCode)
	}
	bad := reg(`{"id":"","addr":""}`)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty registration: %d, want 400", bad.StatusCode)
	}
}
