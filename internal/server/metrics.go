package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/metrics"
)

// initMetrics builds the server's Prometheus registry: the service-level
// counters (internal/stats), queue and memoization gauges read at scrape
// time, and per-job latency histograms by outcome. Called once from New.
func (s *Server) initMetrics() {
	reg := metrics.NewRegistry()
	s.reg = reg
	s.svc.Register(reg)

	reg.GaugeFunc("polyserve_queue_depth", "", "Jobs waiting in the FIFO queue.", func() float64 {
		queued, _ := s.sched.depth()
		return float64(queued)
	})
	reg.GaugeFunc("polyserve_jobs_running", "", "Jobs currently executing on workers.", func() float64 {
		_, running := s.sched.depth()
		return float64(running)
	})
	reg.GaugeFunc("polyserve_queue_capacity", "", "FIFO queue capacity (backpressure beyond this).", func() float64 {
		return float64(s.cfg.QueueCapacity)
	})
	if s.memo != nil {
		reg.CounterFunc("polyserve_memo_hits_total", "", "Memoization cache hits.", func() float64 {
			hits, _ := s.memo.Stats()
			return float64(hits)
		})
		reg.CounterFunc("polyserve_memo_misses_total", "", "Memoization cache misses.", func() float64 {
			_, misses := s.memo.Stats()
			return float64(misses)
		})
		reg.GaugeFunc("polyserve_memo_entries", "", "Resident memoization cache entries.", func() float64 {
			return float64(s.memo.Len())
		})
		reg.GaugeFunc("polyserve_memo_hit_ratio", "", "Memoization hit ratio since startup.", func() float64 {
			hits, misses := s.memo.Stats()
			if hits+misses == 0 {
				return 0
			}
			return float64(hits) / float64(hits+misses)
		})
	}
	s.jobDur = map[JobState]*metrics.Histogram{
		JobDone:      reg.Histogram("polyserve_job_duration_seconds", `state="done"`, "Job wall time from start to finish, by outcome.", metrics.LatencyBuckets()),
		JobFailed:    reg.Histogram("polyserve_job_duration_seconds", `state="failed"`, "", metrics.LatencyBuckets()),
		JobCancelled: reg.Histogram("polyserve_job_duration_seconds", `state="cancelled"`, "", metrics.LatencyBuckets()),
	}
	s.cellDur = reg.Histogram("polyserve_cell_duration_seconds", "", "Per-cell simulation wall time (cache replays excluded).", metrics.LatencyBuckets())
	reg.GaugeFunc("polyserve_sweep_cells_inflight", "", "Sweep cells currently executing on scheduler shards.", func() float64 {
		return float64(s.sweepInflight.Load())
	})
	s.shardDur = make(map[int]*metrics.Histogram)
	s.workerDur = make(map[string]*metrics.Histogram)
	if s.registry != nil {
		reg.GaugeFunc("polyserve_workers_live", "", "Fleet workers with a live lease.", func() float64 {
			return float64(s.registry.liveCount())
		})
	}
	if s.store != nil {
		reg.GaugeFunc("polyserve_store_entries", "", "Results resident in the content-addressed store.", func() float64 {
			return float64(s.store.Len())
		})
	}
	version := strings.ReplaceAll(obs.Version(), `"`, "'")
	reg.GaugeFunc("polyserve_build_info", `version="`+version+`"`, "Build identity (constant 1).", func() float64 { return 1 })
}

// maxShardSeries caps the per-shard histogram label cardinality; shards
// beyond it share one overflow series.
const maxShardSeries = 32

// shardHist returns the duration histogram of one scheduler shard,
// registering the labeled series on first use. The registry is
// mutex-guarded, so lazy registration is safe against concurrent
// scrapes; s.shardMu only makes the check-then-register atomic.
func (s *Server) shardHist(shard int) *metrics.Histogram {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	if shard >= maxShardSeries || shard < 0 {
		if s.shardOverflow == nil {
			s.shardOverflow = s.reg.Histogram("polyserve_sweep_shard_duration_seconds",
				`shard="overflow"`, "", metrics.ShortLatencyBuckets())
		}
		return s.shardOverflow
	}
	h := s.shardDur[shard]
	if h == nil {
		help := ""
		if len(s.shardDur) == 0 {
			help = "Per-cell wall time by the scheduler shard that ran it."
		}
		h = s.reg.Histogram("polyserve_sweep_shard_duration_seconds",
			`shard="`+strconv.Itoa(shard)+`"`, help, metrics.ShortLatencyBuckets())
		s.shardDur[shard] = h
	}
	return h
}

// maxWorkerSeries caps the per-worker histogram label cardinality;
// workers beyond it share one overflow series.
const maxWorkerSeries = 32

// workerHist returns the remote-cell duration histogram of one fleet
// worker, registering the labeled series on first use (same shape as
// shardHist).
func (s *Server) workerHist(node string) *metrics.Histogram {
	s.workerMu.Lock()
	defer s.workerMu.Unlock()
	h := s.workerDur[node]
	if h == nil && len(s.workerDur) >= maxWorkerSeries {
		if s.workerOverflow == nil {
			s.workerOverflow = s.reg.Histogram("polyserve_worker_cell_seconds",
				`node="overflow"`, "", metrics.LatencyBuckets())
		}
		return s.workerOverflow
	}
	if h == nil {
		help := ""
		if len(s.workerDur) == 0 {
			help = "Remote cell round-trip time by fleet worker (failures included)."
		}
		h = s.reg.Histogram("polyserve_worker_cell_seconds",
			`node="`+strings.ReplaceAll(node, `"`, "'")+`"`, help, metrics.LatencyBuckets())
		s.workerDur[node] = h
	}
	return h
}

// observeWorkerCell records one remote cell round trip (dispatch.go calls
// it for successes and failures alike; a timeout observes the deadline).
func (s *Server) observeWorkerCell(node string, d time.Duration, err error) {
	s.workerHist(node).Observe(d.Seconds())
}

// sweepObserver adapts the scheduler's lifecycle callbacks onto the
// server's sweep metrics: cells in flight and per-shard durations. It is
// installed as harness Options.Observer for sweep jobs only.
type sweepObserver struct{ s *Server }

func (o sweepObserver) TaskStarted(shard int, id string) {
	o.s.sweepInflight.Add(1)
}

func (o sweepObserver) TaskDone(shard int, id string, elapsed time.Duration, err error) {
	o.s.sweepInflight.Add(-1)
	o.s.shardHist(shard).Observe(elapsed.Seconds())
}

// observeJobDuration records a finished job's wall time into the
// per-outcome latency histogram.
func (s *Server) observeJobDuration(state JobState, d time.Duration) {
	if h := s.jobDur[state]; h != nil {
		h.Observe(d.Seconds())
	}
}

// MetricsHandler serves the registry in Prometheus text exposition
// format; Handler mounts it at GET /metrics, and cmd/polyserve reuses it
// on the -debug-addr endpoint next to net/http/pprof.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	})
}
