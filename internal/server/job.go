package server

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// ConfigEntry names one machine configuration of a job: either a
// registered model name ("see", "monopath", "dualpath", ...) or a full
// polypath/v1 config document. Exactly one of Model/Config must be set.
type ConfigEntry struct {
	Name   string          `json:"name"`
	Model  string          `json:"model,omitempty"`
	Config json.RawMessage `json:"config,omitempty"`
}

// JobRequest is the submission body for POST /v1/jobs. A job is either a
// registered experiment (the exact tables of cmd/experiments: "table1",
// "fig8", ..., "abl-*", "ext-*") or a custom sweep over explicit
// configurations (a single entry is a single-config job).
type JobRequest struct {
	// Experiment names a registered experiment. Mutually exclusive with
	// Configs.
	Experiment string `json:"experiment,omitempty"`
	// Configs lists the configurations of a custom sweep.
	Configs []ConfigEntry `json:"configs,omitempty"`
	// Title overrides the rendered table title for custom sweeps.
	Title string `json:"title,omitempty"`
	// Insts is the dynamic instruction count per benchmark run
	// (0 = the default 400k).
	Insts uint64 `json:"insts,omitempty"`
	// Benchmarks restricts the suite (empty = all eight plus any
	// Workloads entries).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Workloads carries inline workload specs scoped to this job — the
	// trace-derived stand-ins that polychar synthesizes ("trace-<digest>")
	// travel here, so a fleet can sweep a trace-backed workload without
	// any worker-side registration. Names must not collide with the
	// built-in families; the specs join the suite (and may be referenced
	// from Benchmarks). Cell identity is unchanged: a trace-derived
	// workload's name carries its content digest, so the result store
	// stays content-addressed.
	Workloads []workload.Spec `json:"workloads,omitempty"`
	// Replicates averages extra workload seeds per cell (0/1 = single).
	Replicates int `json:"replicates,omitempty"`
	// TimeoutSec caps the job's wall time (0 = server default).
	TimeoutSec int `json:"timeout_sec,omitempty"`
	// Trace captures a bounded cycle-level pipeline trace of every
	// simulated cell, downloadable from GET /v1/jobs/{id}/trace as
	// Chrome/Perfetto trace_event JSON once the job finishes. Tracing is
	// observation-only (results are bit-identical, memoization identity is
	// unchanged); memoized cells replay without simulating and therefore
	// contribute no events.
	Trace bool `json:"trace,omitempty"`
	// TraceLimit caps retained events per cell (0 = server default;
	// bounded by the server's whole-job budget).
	TraceLimit int `json:"trace_limit,omitempty"`
}

// JobResult is the completed outcome of a job.
type JobResult struct {
	// Text is the rendered table, byte-identical to cmd/experiments
	// output for the same request.
	Text string `json:"text"`
	// Cells counts (benchmark, config, replicate) cells; CacheHits of
	// those were replayed from the memoization cache.
	Cells     int `json:"cells"`
	CacheHits int `json:"cache_hits"`
	// SimInsts is the total committed instructions behind the result
	// (cache hits included).
	SimInsts uint64 `json:"sim_insts"`
}

// Job is one submitted experiment. Mutable fields are guarded by the
// owning Server's mutex.
type Job struct {
	ID        string     `json:"id"`
	State     JobState   `json:"state"`
	Request   JobRequest `json:"request"`
	Submitted time.Time  `json:"submitted_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
	Error     string     `json:"error,omitempty"`
	// Tenant is the fair-queuing bucket the job was admitted under (the
	// X-Tenant request header; empty = default tenant).
	Tenant string     `json:"tenant,omitempty"`
	Result *JobResult `json:"-"` // served by /v1/results/{id}

	// configs is the resolved custom sweep (nil for experiment jobs).
	configs []harness.NamedConfig
	// cancel aborts the running simulation (nil unless running).
	cancel context.CancelFunc
	// trace accumulates captured cell streams when Request.Trace is set
	// (nil until the job starts running; see trace.go).
	trace *jobTrace
	// sweep is the sweep record this job executes (nil for plain jobs;
	// see sweep.go). Journal-resumed jobs lose it by design.
	sweep *sweepRec
	// seq is the scheduler's arrival stamp (drain ordering across
	// tenants).
	seq uint64
}

// extra converts the inline workload specs into the harness's job-scoped
// benchmark list (Options.Extra).
func (r JobRequest) extra() []workload.Benchmark {
	if len(r.Workloads) == 0 {
		return nil
	}
	out := make([]workload.Benchmark, len(r.Workloads))
	for i, spec := range r.Workloads {
		out[i] = workload.Benchmark{Spec: spec}
	}
	return out
}

// title returns the rendered-table title of a custom sweep.
func (r JobRequest) title() string {
	if r.Title != "" {
		return r.Title
	}
	if len(r.Configs) == 1 {
		return fmt.Sprintf("single config: %s (IPC)", r.Configs[0].Name)
	}
	return "custom sweep (IPC)"
}

// resolve validates the request and materializes the configurations of a
// custom sweep. maxInsts bounds the per-benchmark dynamic length a client
// may request (0 = unbounded). All errors are client errors (HTTP 400).
func (r JobRequest) resolve(maxInsts uint64) ([]harness.NamedConfig, error) {
	if (r.Experiment == "") == (len(r.Configs) == 0) {
		return nil, fmt.Errorf("request must set exactly one of \"experiment\" or \"configs\"")
	}
	if maxInsts > 0 && r.Insts > maxInsts {
		return nil, fmt.Errorf("insts %d exceeds the server cap %d", r.Insts, maxInsts)
	}
	if r.Replicates < 0 || r.Replicates > 64 {
		return nil, fmt.Errorf("replicates %d out of [0,64]", r.Replicates)
	}
	if r.TimeoutSec < 0 {
		return nil, fmt.Errorf("timeout_sec must be >= 0")
	}
	if r.TraceLimit < 0 {
		return nil, fmt.Errorf("trace_limit must be >= 0")
	}
	if r.TraceLimit > 0 && !r.Trace {
		return nil, fmt.Errorf("trace_limit requires \"trace\": true")
	}
	if len(r.Workloads) > 16 {
		return nil, fmt.Errorf("%d inline workloads exceed the 16-spec bound", len(r.Workloads))
	}
	inline := make(map[string]bool, len(r.Workloads))
	for i, spec := range r.Workloads {
		// TargetInsts 0 means "the job's Insts (or the default)" — the
		// harness applies that override at lookup time.
		c := spec
		if c.TargetInsts == 0 {
			c.TargetInsts = workload.DefaultTargetInsts
		}
		if err := workload.CheckSpec(c); err != nil {
			return nil, fmt.Errorf("workloads[%d]: %w", i, err)
		}
		if inline[spec.Name] {
			return nil, fmt.Errorf("workloads[%d]: duplicate name %q", i, spec.Name)
		}
		if _, err := workload.ByName(spec.Name, 0); err == nil {
			return nil, fmt.Errorf("workloads[%d]: name %q collides with a registered workload", i, spec.Name)
		}
		inline[spec.Name] = true
	}
	for _, b := range r.Benchmarks {
		if inline[b] {
			continue
		}
		if _, err := workload.ByName(b, 0); err != nil {
			return nil, err
		}
	}
	if r.Experiment != "" {
		for _, e := range harness.Experiments() {
			if e.Name == r.Experiment {
				return nil, nil
			}
		}
		return nil, fmt.Errorf("unknown experiment %q (known: %v)", r.Experiment, harness.ExperimentNames())
	}
	if len(r.Configs) > 64 {
		return nil, fmt.Errorf("sweep of %d configs exceeds the 64-config bound", len(r.Configs))
	}
	configs := make([]harness.NamedConfig, 0, len(r.Configs))
	seen := make(map[string]bool, len(r.Configs))
	for i, e := range r.Configs {
		if e.Name == "" {
			return nil, fmt.Errorf("configs[%d]: missing \"name\"", i)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("configs[%d]: duplicate name %q", i, e.Name)
		}
		seen[e.Name] = true
		switch {
		case e.Model != "" && len(e.Config) > 0:
			return nil, fmt.Errorf("configs[%d] (%s): set \"model\" or \"config\", not both", i, e.Name)
		case e.Model != "":
			cfg, err := core.ModelConfig(e.Model)
			if err != nil {
				return nil, fmt.Errorf("configs[%d] (%s): %w", i, e.Name, err)
			}
			configs = append(configs, harness.NamedConfig{Name: e.Name, Cfg: cfg})
		case len(e.Config) > 0:
			// Schema-sniffing decode: accepts both frozen polypath/v1
			// documents (hash-compatible with existing memoized results)
			// and open polypath/v2 documents.
			cfg, err := pipeline.DecodeConfig(e.Config)
			if err != nil {
				return nil, fmt.Errorf("configs[%d] (%s): %w", i, e.Name, err)
			}
			configs = append(configs, harness.NamedConfig{Name: e.Name, Cfg: cfg})
		default:
			return nil, fmt.Errorf("configs[%d] (%s): need \"model\" or \"config\"", i, e.Name)
		}
	}
	return configs, nil
}
