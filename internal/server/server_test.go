package server

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Log = testLogger(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Drain() })
	return s, ts
}

func testLogger(t *testing.T) *log.Logger {
	return log.New(testWriter{t}, "", 0)
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

func post(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// submitAndWait submits a request and polls until the job leaves the
// queued/running states, returning the final job view.
func submitAndWait(t *testing.T, ts *httptest.Server, body string) Job {
	t.Helper()
	resp, data := post(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		got := getJob(t, ts, j.ID)
		if got.State != JobQueued && got.State != JobRunning {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within 60s", j.ID)
	return Job{}
}

func getJob(t *testing.T, ts *httptest.Server, id string) Job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get job %s: status %d", id, resp.StatusCode)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func getResult(t *testing.T, ts *httptest.Server, id string) JobResult {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/results/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d", id, resp.StatusCode)
	}
	var res JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

func getStats(t *testing.T, ts *httptest.Server) Snapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestBadRequests exercises the typed-error surface: every invalid
// request must come back as HTTP 400 with a JSON error, never a panic.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInsts: 100000})
	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{"empty", `{}`, "exactly one of"},
		{"both", `{"experiment":"fig8","configs":[{"name":"x","model":"see"}]}`, "exactly one of"},
		{"not json", `{`, "invalid request body"},
		{"unknown field", `{"experimnt":"fig8"}`, "unknown field"},
		{"unknown experiment", `{"experiment":"fig99"}`, "unknown experiment"},
		{"unknown model", `{"configs":[{"name":"x","model":"warp"}]}`, "unknown model"},
		{"unknown benchmark", `{"experiment":"fig8","benchmarks":["doom"]}`, "unknown benchmark"},
		{"insts over cap", `{"experiment":"fig8","insts":200000}`, "exceeds the server cap"},
		{"negative timeout", `{"experiment":"fig8","timeout_sec":-1}`, "timeout_sec"},
		{"missing name", `{"configs":[{"model":"see"}]}`, "missing \"name\""},
		{"duplicate name", `{"configs":[{"name":"x","model":"see"},{"name":"x","model":"monopath"}]}`, "duplicate name"},
		{"model and config", `{"configs":[{"name":"x","model":"see","config":{"schema":"polypath/v1"}}]}`, "not both"},
		{"neither model nor config", `{"configs":[{"name":"x"}]}`, "need \"model\" or \"config\""},
		{"bad schema", `{"configs":[{"name":"x","config":{"schema":"polypath/v9"}}]}`, "schema"},
		{"invalid machine", `{"configs":[{"name":"x","config":{"schema":"polypath/v1","mode":"see","fetch_width":0}}]}`, "invalid config"},
		{"config unknown field", `{"configs":[{"name":"x","config":{"schema":"polypath/v1","widow_size":64}}]}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body: %s", resp.StatusCode, data)
			}
			var eb errorBody
			if err := json.Unmarshal(data, &eb); err != nil {
				t.Fatalf("error body not JSON: %s", data)
			}
			if !strings.Contains(eb.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", eb.Error, tc.want)
			}
		})
	}
}

// TestBackpressure saturates a 1-worker/1-slot server with a controllable
// scheduler and checks the 429 + Retry-After contract and the rejection
// counter.
func TestBackpressure(t *testing.T) {
	s := &Server{cfg: Config{QueueCapacity: 1, Log: testLogger(t)}, jobs: make(map[string]*Job)}
	release := make(chan struct{})
	s.sched = newScheduler(1, 1, func(j *Job) { <-release })
	defer func() { close(release); s.sched.drain() }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const body = `{"experiment":"fig8"}`
	if resp, data := post(t, ts, body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, data)
	}
	// Wait for the worker to pick the first job up, so the second occupies
	// the single queue slot deterministically.
	waitFor(t, func() bool { q, r := s.sched.depth(); return r == 1 && q == 0 })
	if resp, data := post(t, ts, body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", resp.StatusCode, data)
	}

	resp, data := post(t, ts, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429; body: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if snap := getStats(t, ts); snap.JobsRejected != 1 || snap.QueueDepth != 1 || snap.RunningJobs != 1 {
		t.Fatalf("stats after rejection: %+v", snap)
	}
}

const sweepBody = `{
  "configs": [{"name":"monopath","model":"monopath"},{"name":"SEE","model":"see"}],
  "title": "test sweep (IPC)",
  "benchmarks": ["compress"],
  "insts": 20000
}`

// TestCacheHitServesIdenticalResult runs the same sweep twice and checks
// the second run is served from the memoization cache with byte-identical
// output.
func TestCacheHitServesIdenticalResult(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheCells: 64})

	first := submitAndWait(t, ts, sweepBody)
	if first.State != JobDone {
		t.Fatalf("first job: state %s (%s)", first.State, first.Error)
	}
	cold := getResult(t, ts, first.ID)
	if cold.Cells != 2 || cold.CacheHits != 0 {
		t.Fatalf("cold run: cells=%d hits=%d, want 2/0", cold.Cells, cold.CacheHits)
	}
	if !strings.Contains(cold.Text, "test sweep (IPC)") || !strings.Contains(cold.Text, "compress") {
		t.Fatalf("unexpected table:\n%s", cold.Text)
	}

	second := submitAndWait(t, ts, sweepBody)
	if second.State != JobDone {
		t.Fatalf("second job: state %s (%s)", second.State, second.Error)
	}
	warm := getResult(t, ts, second.ID)
	if warm.CacheHits != warm.Cells || warm.Cells != 2 {
		t.Fatalf("warm run: cells=%d hits=%d, want all 2 from cache", warm.Cells, warm.CacheHits)
	}
	if warm.Text != cold.Text {
		t.Fatalf("cache replay differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", cold.Text, warm.Text)
	}
	if warm.SimInsts != cold.SimInsts {
		t.Fatalf("sim_insts differ: %d vs %d", cold.SimInsts, warm.SimInsts)
	}

	snap := getStats(t, ts)
	if snap.CacheHits != 2 || snap.CacheMisses != 2 || snap.CacheHitRate != 0.5 {
		t.Fatalf("cache stats: %+v", snap)
	}
	if snap.CellsSimulated != 2 || snap.CellsFromCache != 2 || snap.JobsCompleted != 2 {
		t.Fatalf("service stats: %+v", snap)
	}
}

// TestExperimentMatchesHarness checks a service experiment job renders the
// exact bytes the shared registry produces (which is what cmd/experiments
// prints under its header).
func TestExperimentMatchesHarness(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"experiment":"table1","benchmarks":["compress"],"insts":20000}`

	j := submitAndWait(t, ts, body)
	if j.State != JobDone {
		t.Fatalf("job: state %s (%s)", j.State, j.Error)
	}
	got := getResult(t, ts, j.ID)

	r, err := harness.RunExperiment("table1", harness.Options{
		TargetInsts: 20000, Benchmarks: []string{"compress"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := r.Render(); got.Text != want {
		t.Fatalf("service output differs from harness:\n--- service ---\n%s\n--- harness ---\n%s", got.Text, want)
	}
}

// TestCancelRunningJob cancels a long job mid-simulation and checks it
// lands in the cancelled state via context propagation.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, `{"configs":[{"name":"see","model":"see"}],"benchmarks":["compress"],"insts":50000000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return getJob(t, ts, j.ID).State == JobRunning })

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	waitFor(t, func() bool { return getJob(t, ts, j.ID).State == JobCancelled })

	rresp, err := http.Get(ts.URL + "/v1/results/" + j.ID)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusGone {
		t.Fatalf("result of cancelled job: status %d, want 410", rresp.StatusCode)
	}
}

// TestJobTimeout gives a long job a 50ms cap and checks it fails with a
// deadline error instead of running forever.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultTimeout: 50 * time.Millisecond})
	j := submitAndWait(t, ts, `{"configs":[{"name":"see","model":"see"}],"benchmarks":["compress"],"insts":50000000}`)
	if j.State != JobFailed {
		t.Fatalf("state %s (%s), want failed", j.State, j.Error)
	}
	if !strings.Contains(j.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", j.Error)
	}
}

// TestDrainJournalsAndResumes drains a server with a queued job and checks
// a fresh server re-enqueues it from the journal, runs it under its
// original ID, and removes the journal file.
func TestDrainJournalsAndResumes(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "polyserve.journal")

	// A server whose single worker blocks, so the second job stays queued.
	s := &Server{cfg: Config{QueueCapacity: 4, JournalPath: journal, Log: testLogger(t)}, jobs: make(map[string]*Job)}
	release := make(chan struct{})
	s.sched = newScheduler(1, 4, func(j *Job) { <-release })
	ts := httptest.NewServer(s.Handler())

	if resp, data := post(t, ts, `{"experiment":"fig8"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, data)
	}
	waitFor(t, func() bool { _, r := s.sched.depth(); return r == 1 })
	resp, data := post(t, ts, `{"configs":[{"name":"mono","model":"monopath"}],"benchmarks":["compress"],"insts":10000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", resp.StatusCode, data)
	}
	var queued Job
	if err := json.Unmarshal(data, &queued); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	go close(release)
	n, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("journaled %d jobs, want 1", n)
	}

	// Restart: the journaled job must resume under its original ID.
	s2, ts2 := newTestServer(t, Config{JournalPath: journal})
	deadline := time.Now().Add(60 * time.Second)
	for {
		j, ok := s2.Job(queued.ID)
		if ok && j.State == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journaled job %s did not finish (found=%v)", queued.ID, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
	res := getResult(t, ts2, queued.ID)
	if !strings.Contains(res.Text, "compress") {
		t.Fatalf("resumed job produced unexpected table:\n%s", res.Text)
	}
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Fatalf("journal %s still exists after resume (err=%v)", journal, err)
	}

	// A fresh ID must not collide with the resumed one.
	fresh := submitAndWait(t, ts2, `{"configs":[{"name":"mono","model":"monopath"}],"benchmarks":["compress"],"insts":10000}`)
	if fresh.ID == queued.ID {
		t.Fatalf("fresh job reused the resumed ID %s", fresh.ID)
	}
}

// TestUnknownJobRoutes checks 404s on the id-addressed endpoints.
func TestUnknownJobRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, url := range []string{"/v1/jobs/job-999999", "/v1/results/job-999999"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", url, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: status %d, want 404", resp.StatusCode)
	}
}

// TestHealthz is the smoke probe CI uses.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}
