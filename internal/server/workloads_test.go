package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/workload"
)

// traceWorkloadSpec is a stand-in for a polychar-synthesized workload
// travelling inline with a job: content-addressed name, not registered
// anywhere on the server.
func traceWorkloadSpec() workload.Spec {
	return workload.Spec{
		Name: "trace-0123456789ab", Seed: 42, TargetInsts: 3000,
		Branches: []workload.BranchSpec{
			{Kind: workload.KindBernoulli, Bias: 0.7},
			{Kind: workload.KindLoop, Trip: 8},
		},
		BlockLen: 4, Chains: 2,
	}
}

func marshalJob(t *testing.T, req JobRequest) string {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestJobInlineWorkloads: a job carrying an inline trace-derived spec runs
// it alongside registry benchmarks, and the name never leaks into jobs
// that don't carry it.
func TestJobInlineWorkloads(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := marshalJob(t, JobRequest{
		Configs:    []ConfigEntry{{Name: "mono", Model: "monopath"}},
		Insts:      3000,
		Benchmarks: []string{"compress", "trace-0123456789ab"},
		Workloads:  []workload.Spec{traceWorkloadSpec()},
	})
	j := submitAndWait(t, ts, body)
	if j.State != JobDone {
		t.Fatalf("job failed: %+v", j)
	}
	res := getResult(t, ts, j.ID)
	if !strings.Contains(res.Text, "trace-0123456789ab") || !strings.Contains(res.Text, "compress") {
		t.Fatalf("result missing inline workload row:\n%s", res.Text)
	}

	// Without the inline spec the name must be unknown (job-scoped, not
	// registered server-wide by the earlier run).
	resp, data := post(t, ts, marshalJob(t, JobRequest{
		Configs:    []ConfigEntry{{Name: "mono", Model: "monopath"}},
		Insts:      3000,
		Benchmarks: []string{"trace-0123456789ab"},
	}))
	if resp.StatusCode == http.StatusAccepted {
		j2 := submitAndWait(t, ts, marshalJob(t, JobRequest{
			Configs:    []ConfigEntry{{Name: "mono", Model: "monopath"}},
			Insts:      3000,
			Benchmarks: []string{"trace-0123456789ab"},
		}))
		if j2.State == JobDone {
			t.Fatalf("inline workload leaked into the server registry: %s", data)
		}
	}
}

// TestJobInlineWorkloadValidation: malformed Workloads lists are client
// errors at submit time, before any cell runs.
func TestJobInlineWorkloadValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := JobRequest{
		Configs: []ConfigEntry{{Name: "mono", Model: "monopath"}},
		Insts:   3000,
	}

	collide := traceWorkloadSpec()
	collide.Name = "compress"

	bad := traceWorkloadSpec()
	bad.Branches = nil

	many := make([]workload.Spec, 17)
	for i := range many {
		s := traceWorkloadSpec()
		s.Name = "trace-" + strings.Repeat("a", i%12+1)
		many[i] = s
	}

	cases := []struct {
		name      string
		workloads []workload.Spec
		wantErr   string
	}{
		{"registry collision", []workload.Spec{collide}, "compress"},
		{"duplicate names", []workload.Spec{traceWorkloadSpec(), traceWorkloadSpec()}, "duplicate"},
		{"too many", many, "16"},
		{"invalid spec", []workload.Spec{bad}, "branch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := base
			req.Workloads = tc.workloads
			resp, data := post(t, ts, marshalJob(t, req))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
			}
			if !strings.Contains(strings.ToLower(string(data)), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", data, tc.wantErr)
			}
		})
	}
}

// TestFleetInlineWorkloadDispatch: across a real coordinator/worker fleet
// the inline spec travels in the cell request (the worker has no registry
// entry for it) and the sharded run matches the standalone render.
func TestFleetInlineWorkloadDispatch(t *testing.T) {
	req := JobRequest{
		Configs:    []ConfigEntry{{Name: "mono", Model: "monopath"}, {Name: "see", Model: "see"}},
		Insts:      3000,
		Benchmarks: []string{"gcc", "trace-0123456789ab"},
		Workloads:  []workload.Spec{traceWorkloadSpec()},
	}

	solo, sts := newTestServer(t, Config{})
	_ = solo
	body := marshalJob(t, req)
	want := submitAndWait(t, sts, body)
	if want.State != JobDone {
		t.Fatalf("standalone run failed: %+v", want)
	}
	wantRes := getResult(t, sts, want.ID)

	coord, cts := startFleet(t, 2, t.TempDir())
	got := submitAndWait(t, cts, body)
	if got.State != JobDone {
		t.Fatalf("fleet run failed: %+v", got)
	}
	gotRes := getResult(t, cts, got.ID)
	if gotRes.Text != wantRes.Text {
		t.Fatalf("fleet result diverged from standalone:\n--- standalone ---\n%s\n--- fleet ---\n%s", wantRes.Text, gotRes.Text)
	}
	if coord.svc.CellsDispatched.Load() == 0 {
		t.Fatal("coordinator dispatched no cells; the inline spec was never exercised remotely")
	}
}
