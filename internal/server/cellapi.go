package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workload"
)

// cellapi.go is the worker side of the fleet protocol: POST /v1/cells
// executes exactly one (benchmark, config, replicate) cell and returns
// its result. The request carries the cell's full identity — workload
// name, absolute seed, resolved instruction count, and the encoded
// configuration plus its canonical hash — so any worker can regenerate
// the program deterministically and produce the bit-identical MemoValue
// a local run would. Re-execution is therefore idempotent by
// construction, which is what makes the coordinator's redispatch-on-
// failure safe.

// Fleet protocol headers. Every /v1/cells response names the node that
// produced it; contained crashes additionally carry a crash kind so the
// coordinator can attribute the crash to the worker in its quarantine
// records ("bad config" vs "bad node" triage).
const (
	HeaderNode  = "X-Polyserve-Node"
	HeaderCrash = "X-Polyserve-Crash"
)

// CellRequest is the body of POST /v1/cells.
type CellRequest struct {
	Benchmark string `json:"benchmark"`
	// Seed is the absolute workload seed (replicate offset already
	// applied by the coordinator).
	Seed int64 `json:"seed"`
	// Insts is the resolved dynamic instruction count (never 0).
	Insts     uint64 `json:"insts"`
	Replicate int    `json:"replicate,omitempty"`
	// Config is the polypath-encoded configuration document.
	Config json.RawMessage `json:"config"`
	// ConfigHash is the coordinator's canonical hash of Config; the worker
	// recomputes and cross-checks it to catch wire or encoding drift
	// before it can poison the shared result store.
	ConfigHash string `json:"config_hash"`
	// Audit, when non-empty, runs the cell under the named invariant-audit
	// level (results are bit-identical with auditing on or off).
	Audit string `json:"audit,omitempty"`
	// Spec inlines the full workload spec for job-scoped workloads
	// (trace-derived stand-ins) that no worker can resolve by name. When
	// present its Name must equal Benchmark; when absent the worker
	// resolves Benchmark through the registry as before.
	Spec *workload.Spec `json:"spec,omitempty"`
}

// CellResponse is the 200 body of POST /v1/cells.
type CellResponse struct {
	IPC   float64   `json:"ipc"`
	Stats stats.Sim `json:"stats"`
	// Cached reports where the result came from: "" (simulated now),
	// "memo" (worker LRU), or "store" (shared result store).
	Cached string `json:"cached,omitempty"`
	// Node is the executing worker's node ID.
	Node string `json:"node"`
	// ElapsedMS is the worker-side wall time of this execution.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// CellCallError is a failed remote cell execution, carrying enough for
// the coordinator to attribute the failure: the worker's self-reported
// node ID (when the HTTP exchange got far enough to learn it) and
// whether the worker contained a crash (panic or machine check) running
// the cell.
type CellCallError struct {
	Node   string // worker node ID ("" if the transport failed first)
	Crash  bool   // the worker crashed executing this cell (contained)
	Status int    // HTTP status (0 for transport errors)
	Msg    string
	Err    error // underlying transport error, if any
}

func (e *CellCallError) Error() string {
	where := e.Node
	if where == "" {
		where = "worker"
	}
	if e.Err != nil {
		return fmt.Sprintf("cell call to %s: %v", where, e.Err)
	}
	kind := ""
	if e.Crash {
		kind = " (worker crash)"
	}
	return fmt.Sprintf("cell call to %s: HTTP %d%s: %s", where, e.Status, kind, e.Msg)
}

func (e *CellCallError) Unwrap() error { return e.Err }

// IsWorkerCrash reports whether err is a remote cell execution that
// crashed the worker (contained panic or machine check).
func IsWorkerCrash(err error) (node string, ok bool) {
	var ce *CellCallError
	if errors.As(err, &ce) && ce.Crash {
		return ce.Node, true
	}
	return "", false
}

// WorkerCaller is the coordinator's transport to one worker node.
// internal/client implements it over HTTP (client.DialWorker); tests may
// substitute in-process fakes. RunCell errors should be (or wrap)
// *CellCallError so dispatch can attribute crashes.
type WorkerCaller interface {
	RunCell(ctx context.Context, req CellRequest) (CellResponse, error)
}

// cellSlot bounds concurrent cell simulations on this node (workers get
// one independent HTTP request per cell, so the HTTP layer provides no
// backpressure of its own). Blocking here, rather than failing with 429,
// lets the coordinator's per-cell deadline govern queueing delay.
func (s *Server) acquireCellSlot(ctx context.Context) error {
	select {
	case s.cellSlots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) releaseCellSlot() { <-s.cellSlots }

// handleCellRun executes one cell (POST /v1/cells).
func (s *Server) handleCellRun(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(HeaderNode, s.cfg.NodeID)
	if s.isCoordinator() {
		writeError(w, http.StatusConflict, fmt.Errorf("node %s is a coordinator; it does not execute cells", s.cfg.NodeID))
		return
	}
	var req CellRequest
	if !decodeBody(w, r, &req) {
		return
	}
	start := time.Now()
	resp, err, crashKind := s.runCellContained(r.Context(), req)
	if err != nil {
		code := http.StatusBadRequest
		var mce *pipeline.MachineCheckError
		if errors.As(err, &mce) {
			crashKind = "machine-check"
		}
		if crashKind != "" {
			// A contained crash is the worker's fault surface, not the
			// client's: 500 + the crash header for coordinator attribution.
			code = http.StatusInternalServerError
			w.Header().Set(HeaderCrash, crashKind)
			s.svc.WorkerPanics.Add(1)
		} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The coordinator gave up (deadline, hedge winner elsewhere) and
			// closed the request; the status is for the log only.
			code = http.StatusRequestTimeout
		}
		writeError(w, code, err)
		return
	}
	resp.Node = s.cfg.NodeID
	resp.ElapsedMS = time.Since(start).Milliseconds()
	writeJSON(w, http.StatusOK, resp)
}

// runCellContained validates, executes, and memoizes one cell with the
// same recover barrier as job execution: a poisoned cell fails its call,
// never the worker process.
func (s *Server) runCellContained(ctx context.Context, req CellRequest) (resp CellResponse, err error, crashKind string) {
	defer func() {
		if r := recover(); r != nil {
			crashKind = "panic"
			err = fmt.Errorf("worker panic: %v", r)
			s.cfg.Log.Printf("polyserve: cell %s/%d panic contained: %v\n%s", req.Benchmark, req.Replicate, r, debug.Stack())
		}
	}()

	if req.Benchmark == "" || len(req.Config) == 0 {
		return resp, fmt.Errorf("cell request needs benchmark and config"), ""
	}
	if s.cfg.MaxInsts > 0 && req.Insts > s.cfg.MaxInsts {
		return resp, fmt.Errorf("insts %d exceeds the node cap %d", req.Insts, s.cfg.MaxInsts), ""
	}
	var spec workload.Spec
	if req.Spec != nil {
		if req.Spec.Name != req.Benchmark {
			return resp, fmt.Errorf("inline spec name %q does not match benchmark %q", req.Spec.Name, req.Benchmark), ""
		}
		spec = *req.Spec
		if spec.TargetInsts == 0 {
			spec.TargetInsts = req.Insts
		}
		if err := workload.CheckSpec(spec); err != nil {
			return resp, err, ""
		}
	} else {
		bm, err := workload.ByName(req.Benchmark, req.Insts)
		if err != nil {
			return resp, err, ""
		}
		spec = bm.Spec
	}
	spec.Seed = req.Seed
	if req.Insts > 0 {
		spec.TargetInsts = req.Insts
	}
	cfg, err := pipeline.DecodeConfig(req.Config)
	if err != nil {
		return resp, err, ""
	}
	hash, err := pipeline.CanonicalHash(cfg)
	if err != nil {
		return resp, err, ""
	}
	if req.ConfigHash != "" && hash != req.ConfigHash {
		return resp, fmt.Errorf("config hash mismatch: coordinator sent %s, decoded document hashes to %s", req.ConfigHash, hash), ""
	}

	key := harness.CellKey(spec, hash)
	if s.memo != nil {
		if v, ok := s.memo.Get(key); ok {
			s.svc.CellsFromCache.Add(1)
			return CellResponse{IPC: v.IPC, Stats: v.Stats, Cached: "memo"}, nil, ""
		}
	}
	if s.store != nil {
		if v, ok := s.store.Get(key); ok {
			if s.memo != nil {
				s.memo.Put(key, v)
			}
			s.svc.CellsFromCache.Add(1)
			return CellResponse{IPC: v.IPC, Stats: v.Stats, Cached: "store"}, nil, ""
		}
	}

	if err := s.acquireCellSlot(ctx); err != nil {
		return resp, err, ""
	}
	defer s.releaseCellSlot()

	if req.Audit != "" {
		lvl, err := pipeline.ParseAuditLevel(req.Audit)
		if err != nil {
			return resp, err, ""
		}
		cfg.Audit = lvl
	} else if s.cfg.Audit != pipeline.AuditOff {
		cfg.Audit = s.cfg.Audit
	}

	prog, err := workload.Generate(spec)
	if err != nil {
		return resp, err, ""
	}
	arena := s.arenas.Get().(*pipeline.Arena)
	defer s.arenas.Put(arena)
	start := time.Now()
	res, err := core.RunCell(ctx, prog, cfg, nil, arena)
	if err != nil {
		return resp, err, ""
	}
	s.svc.CellsSimulated.Add(1)
	s.svc.SimInsts.Add(res.Stats.Committed)
	s.svc.SimNanos.Add(int64(time.Since(start)))
	s.cellDur.Observe(time.Since(start).Seconds())

	v := harness.MemoValue{IPC: res.IPC, Stats: res.Stats}
	if memo := s.cellMemo(); memo != nil {
		memo.Put(key, v)
	}
	return CellResponse{IPC: v.IPC, Stats: v.Stats}, nil, ""
}

// cellMemo returns the memo tier stack for direct cell execution: the
// shared result store under the in-memory LRU when a store is mounted,
// the LRU alone otherwise, nil with caching fully disabled.
func (s *Server) cellMemo() harness.Memo {
	if s.store != nil {
		var lru harness.Memo
		if s.memo != nil {
			lru = s.memo
		}
		return tieredMemo{lru: lru, store: s.store}
	}
	if s.memo != nil {
		return s.memo
	}
	return nil
}

// arenaPool builds the lazy per-node arena pool for direct cell execution.
func arenaPool() sync.Pool {
	return sync.Pool{New: func() any { return pipeline.NewArena() }}
}
