package server

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by submit when the global FIFO backlog is at
// capacity; the HTTP layer translates it into 429 + Retry-After
// (backpressure).
var ErrQueueFull = errors.New("server: job queue full")

// ErrTenantQueueFull is returned when one tenant's queue share is
// exhausted while the global queue still has room — admission control
// keeping a hot tenant from starving everyone else. Also 429.
var ErrTenantQueueFull = errors.New("server: tenant queue full")

// ErrDraining is returned by submit once a graceful drain has begun.
var ErrDraining = errors.New("server: draining, not accepting jobs")

// scheduler runs jobs from bounded FIFO queues on a fixed pool of worker
// goroutines. It knows nothing about HTTP or simulation: it moves *Job
// values from the queues to the run callback, and supports graceful
// drain (in-flight jobs finish; still-queued jobs are handed back for
// journaling).
//
// Fairness: jobs are queued per tenant (Job.Tenant; the empty string is
// the default tenant) and dispatched round-robin across tenants with a
// backlog, FIFO within each tenant. With a single tenant this is exactly
// the old global FIFO. Admission is bounded twice: `capacity` caps the
// total backlog, `perTenant` caps one tenant's share of it.
type scheduler struct {
	mu        sync.Mutex
	cond      *sync.Cond
	tenants   map[string]*tenantQueue
	order     []string // tenant round-robin cycle, insertion order
	next      int      // round-robin cursor into order
	size      int      // total queued jobs across tenants
	capacity  int
	perTenant int
	seq       uint64 // arrival stamp, for drain ordering
	workers   int
	running   int
	draining  bool
	wg        sync.WaitGroup
	run       func(*Job)
}

type tenantQueue struct {
	jobs []*Job
}

func newScheduler(workers, capacity int, run func(*Job)) *scheduler {
	return newTenantScheduler(workers, capacity, capacity, run)
}

// newTenantScheduler builds a scheduler whose per-tenant backlog share is
// perTenant (≤ capacity; 0 or less defaults to capacity, i.e. no
// per-tenant bound beyond the global one).
func newTenantScheduler(workers, capacity, perTenant int, run func(*Job)) *scheduler {
	if workers < 1 {
		workers = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	if perTenant < 1 || perTenant > capacity {
		perTenant = capacity
	}
	s := &scheduler{
		tenants:   make(map[string]*tenantQueue),
		capacity:  capacity,
		perTenant: perTenant,
		workers:   workers,
		run:       run,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// popLocked removes and returns the next job by round-robin across
// tenants with a backlog (nil when everything is empty). The cursor
// advances past the chosen tenant so one hot tenant cannot monopolize
// the workers while others wait.
func (s *scheduler) popLocked() *Job {
	n := len(s.order)
	for i := 0; i < n; i++ {
		name := s.order[(s.next+i)%n]
		q := s.tenants[name]
		if len(q.jobs) == 0 {
			continue
		}
		j := q.jobs[0]
		q.jobs = q.jobs[1:]
		s.size--
		s.next = (s.next + i + 1) % n
		return j
	}
	return nil
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			if s.draining {
				s.mu.Unlock()
				return
			}
			if j = s.popLocked(); j != nil {
				break
			}
			s.cond.Wait()
		}
		s.running++
		s.mu.Unlock()

		s.run(j)

		s.mu.Lock()
		s.running--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// submit appends a job to its tenant's FIFO queue, failing fast when the
// global backlog or the tenant's share is at capacity, or when the
// scheduler is draining.
func (s *scheduler) submit(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.size >= s.capacity {
		return ErrQueueFull
	}
	q := s.tenants[j.Tenant]
	if q == nil {
		q = &tenantQueue{}
		s.tenants[j.Tenant] = q
		s.order = append(s.order, j.Tenant)
	}
	if len(q.jobs) >= s.perTenant {
		return ErrTenantQueueFull
	}
	s.seq++
	j.seq = s.seq
	q.jobs = append(q.jobs, j)
	s.size++
	s.cond.Signal()
	return nil
}

// remove pulls a specific queued job out of its queue (for cancellation).
// It returns false if the job is not queued (already running, done, or
// never submitted).
func (s *scheduler) remove(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.tenants[j.Tenant]
	if q == nil {
		return false
	}
	for i, queued := range q.jobs {
		if queued == j {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			s.size--
			return true
		}
	}
	return false
}

// depth reports the total queued jobs and the number of running jobs.
func (s *scheduler) depth() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size, s.running
}

// tenantDepth reports one tenant's backlog.
func (s *scheduler) tenantDepth(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.tenants[tenant]; q != nil {
		return len(q.jobs)
	}
	return 0
}

// drain stops accepting work, lets in-flight jobs finish, shuts the
// workers down, and returns the jobs still queued — in arrival order
// across all tenants — so the caller can journal them. Safe to call
// once; later submits fail with ErrDraining.
func (s *scheduler) drain() []*Job {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	for s.running > 0 {
		s.cond.Wait()
	}
	var left []*Job
	for _, name := range s.order {
		left = append(left, s.tenants[name].jobs...)
		s.tenants[name].jobs = nil
	}
	s.size = 0
	s.mu.Unlock()
	s.wg.Wait()
	// Arrival order, not tenant order: the journal replays submissions in
	// the sequence clients made them.
	for i := 1; i < len(left); i++ {
		for k := i; k > 0 && left[k].seq < left[k-1].seq; k-- {
			left[k], left[k-1] = left[k-1], left[k]
		}
	}
	return left
}
