package server

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by submit when the FIFO queue is at capacity;
// the HTTP layer translates it into 429 + Retry-After (backpressure).
var ErrQueueFull = errors.New("server: job queue full")

// ErrDraining is returned by submit once a graceful drain has begun.
var ErrDraining = errors.New("server: draining, not accepting jobs")

// scheduler runs jobs from a bounded FIFO queue on a fixed pool of worker
// goroutines. It knows nothing about HTTP or simulation: it moves *Job
// values from the queue to the run callback, and supports graceful drain
// (in-flight jobs finish; still-queued jobs are handed back for
// journaling).
type scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Job
	capacity int
	workers  int
	running  int
	draining bool
	wg       sync.WaitGroup
	run      func(*Job)
}

func newScheduler(workers, capacity int, run func(*Job)) *scheduler {
	if workers < 1 {
		workers = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	s := &scheduler{queue: make([]*Job, 0, capacity), capacity: capacity, workers: workers, run: run}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.draining {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.running++
		s.mu.Unlock()

		s.run(j)

		s.mu.Lock()
		s.running--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// submit appends a job to the FIFO queue, failing fast when the queue is
// at capacity or the scheduler is draining.
func (s *scheduler) submit(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if len(s.queue) >= s.capacity {
		return ErrQueueFull
	}
	s.queue = append(s.queue, j)
	s.cond.Signal()
	return nil
}

// remove pulls a specific queued job out of the FIFO (for cancellation).
// It returns false if the job is not in the queue (already running, done,
// or never submitted).
func (s *scheduler) remove(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return true
		}
	}
	return false
}

// depth reports the current queue length and the number of running jobs.
func (s *scheduler) depth() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.running
}

// drain stops accepting work, lets in-flight jobs finish, shuts the
// workers down, and returns the jobs still queued (in FIFO order) so the
// caller can journal them. Safe to call once; later submits fail with
// ErrDraining.
func (s *scheduler) drain() []*Job {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	for s.running > 0 {
		s.cond.Wait()
	}
	left := s.queue
	s.queue = nil
	s.mu.Unlock()
	s.wg.Wait()
	return left
}
