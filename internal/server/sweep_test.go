package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postSweep(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getSweep(t *testing.T, ts *httptest.Server, id string) Sweep {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get sweep %s: status %d", id, resp.StatusCode)
	}
	var sw Sweep
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		t.Fatal(err)
	}
	return sw
}

// submitSweepAndWait submits a sweep and polls until its job finishes.
func submitSweepAndWait(t *testing.T, ts *httptest.Server, body string) Sweep {
	t.Helper()
	resp, data := postSweep(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit sweep: status %d: %s", resp.StatusCode, data)
	}
	var sw Sweep
	if err := json.Unmarshal(data, &sw); err != nil {
		t.Fatal(err)
	}
	if want := "/v1/sweeps/" + sw.ID; resp.Header.Get("Location") != want {
		t.Fatalf("Location = %q, want %q", resp.Header.Get("Location"), want)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		got := getSweep(t, ts, sw.ID)
		if got.State != JobQueued && got.State != JobRunning {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish within 60s", sw.ID)
	return Sweep{}
}

const batchSweepBody = `{
  "title": "sweep test (IPC)",
  "configs": [{"name":"monopath","model":"monopath"},{"name":"SEE","model":"see"}],
  "benchmarks": ["compress","gcc"],
  "insts": 3000,
  "parallelism": 4
}`

func TestSweepLifecycleAndCellStream(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheCells: 64})
	sw := submitSweepAndWait(t, ts, batchSweepBody)

	if sw.State != JobDone {
		t.Fatalf("sweep state = %s (error %q), want done", sw.State, sw.Error)
	}
	if sw.TotalCells != 4 {
		t.Fatalf("total_cells = %d, want 4 (2 benchmarks x 2 configs)", sw.TotalCells)
	}
	if sw.DoneCells != sw.TotalCells {
		t.Fatalf("done_cells = %d, want %d", sw.DoneCells, sw.TotalCells)
	}
	if sw.Parallelism != 4 {
		t.Fatalf("parallelism = %d, want 4", sw.Parallelism)
	}

	// Page through the cell stream with the after cursor, one cell at a
	// time, exactly as a live client would.
	var cells []SweepCell
	after := 0
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/sweeps/%s/cells?after=%d", ts.URL, sw.ID, after))
		if err != nil {
			t.Fatal(err)
		}
		var page sweepCellsPage
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		cells = append(cells, page.Cells...)
		if page.NextAfter == after {
			break
		}
		after = page.NextAfter
	}
	if len(cells) != 4 {
		t.Fatalf("cell stream has %d cells, want 4", len(cells))
	}
	seen := make(map[string]bool)
	for i, c := range cells {
		if c.Seq != i+1 {
			t.Fatalf("cells[%d].seq = %d, want %d", i, c.Seq, i+1)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate cell id %q in stream", c.ID)
		}
		seen[c.ID] = true
		if c.Shard < 0 || c.Shard >= sw.Parallelism {
			t.Fatalf("cell %s ran on shard %d, outside [0,%d)", c.ID, c.Shard, sw.Parallelism)
		}
	}
	for _, id := range []string{"compress/monopath", "compress/SEE", "gcc/monopath", "gcc/SEE"} {
		if !seen[id] {
			t.Fatalf("cell %q missing from stream (got %v)", id, cells)
		}
	}
}

// TestSweepResultMatchesJob pins the determinism contract end to end: a
// sweep sharded 4-wide renders the byte-identical table a sequential
// plain job produces for the same request.
func TestSweepResultMatchesJob(t *testing.T) {
	_, ts := newTestServer(t, Config{SimParallelism: 1})
	sw := submitSweepAndWait(t, ts, batchSweepBody)
	if sw.State != JobDone {
		t.Fatalf("sweep state = %s (error %q)", sw.State, sw.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sw.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep result: status %d", resp.StatusCode)
	}
	var sweepRes JobResult
	if err := json.NewDecoder(resp.Body).Decode(&sweepRes); err != nil {
		t.Fatal(err)
	}

	j := submitAndWait(t, ts, `{
	  "title": "sweep test (IPC)",
	  "configs": [{"name":"monopath","model":"monopath"},{"name":"SEE","model":"see"}],
	  "benchmarks": ["compress","gcc"],
	  "insts": 3000
	}`)
	if j.State != JobDone {
		t.Fatalf("job state = %s (error %q)", j.State, j.Error)
	}
	jobRes := getResult(t, ts, j.ID)
	if sweepRes.Text != jobRes.Text {
		t.Fatalf("sweep (parallelism 4) and sequential job rendered different tables:\n--- sweep ---\n%s\n--- job ---\n%s", sweepRes.Text, jobRes.Text)
	}
}

// TestSweepSharesMemoCache: resubmitting the same sweep replays every
// cell from the memo cache the plain jobs API uses.
func TestSweepSharesMemoCache(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheCells: 64})
	first := submitSweepAndWait(t, ts, batchSweepBody)
	if first.State != JobDone || first.CachedCells != 0 {
		t.Fatalf("first sweep: state %s, cached %d", first.State, first.CachedCells)
	}
	second := submitSweepAndWait(t, ts, batchSweepBody)
	if second.State != JobDone {
		t.Fatalf("second sweep state = %s (error %q)", second.State, second.Error)
	}
	if second.CachedCells != second.TotalCells {
		t.Fatalf("second sweep replayed %d/%d cells from cache, want all", second.CachedCells, second.TotalCells)
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, want string
	}{
		{"no configs", `{"benchmarks":["compress"]}`, "at least one"},
		{"bad parallelism", `{"configs":[{"name":"x","model":"see"}],"parallelism":65}`, "out of [0,64]"},
		{"unknown field", `{"configs":[{"name":"x","model":"see"}],"experiment":"fig8"}`, "unknown field"},
		{"unknown benchmark", `{"configs":[{"name":"x","model":"see"}],"benchmarks":["doom"]}`, "unknown benchmark"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postSweep(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, data)
			}
			if !strings.Contains(string(data), tc.want) {
				t.Fatalf("error %s does not mention %q", data, tc.want)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/sweep-000099")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/sweeps/sweep-000099/cells")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep cells: status %d, want 404", resp.StatusCode)
	}
}

func TestSweepStatsAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sw := submitSweepAndWait(t, ts, batchSweepBody)
	if sw.State != JobDone {
		t.Fatalf("sweep state = %s (error %q)", sw.State, sw.Error)
	}

	snap := s.Stats()
	if snap.SweepsSubmitted != 1 || snap.SweepsCompleted != 1 {
		t.Fatalf("sweeps submitted/completed = %d/%d, want 1/1", snap.SweepsSubmitted, snap.SweepsCompleted)
	}
	if snap.SweepCellsDone != uint64(sw.TotalCells) {
		t.Fatalf("sweep_cells_done = %d, want %d", snap.SweepCellsDone, sw.TotalCells)
	}
	if snap.SweepSerialSeconds <= 0 || snap.SweepWallSeconds <= 0 {
		t.Fatalf("sweep serial/wall = %v/%v, want both > 0", snap.SweepSerialSeconds, snap.SweepWallSeconds)
	}
	if snap.SweepSpeedup <= 0 {
		t.Fatalf("sweep_speedup = %v, want > 0", snap.SweepSpeedup)
	}
	if s.sweepInflight.Load() != 0 {
		t.Fatalf("cells in flight after completion = %d, want 0", s.sweepInflight.Load())
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"polyserve_sweep_cells_inflight 0",
		`polyserve_sweeps_total{state="submitted"} 1`,
		`polyserve_sweeps_total{state="completed"} 1`,
		"polyserve_sweep_cells_total 4",
		"polyserve_sweep_serial_seconds_total",
		"polyserve_sweep_wall_seconds_total",
		"polyserve_sweep_speedup",
		// At least one shard ran cells; which one wins the work race is
		// schedule-dependent, so only the family is asserted.
		`polyserve_sweep_shard_duration_seconds_bucket{shard="`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestSweepListOrder: GET /v1/sweeps returns snapshots in submission
// order.
func TestSweepListOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheCells: 64})
	a := submitSweepAndWait(t, ts, batchSweepBody)
	b := submitSweepAndWait(t, ts, batchSweepBody)
	resp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []Sweep
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Fatalf("sweep list %v, want [%s %s]", list, a.ID, b.ID)
	}
}
