package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// dispatch.go is the coordinator's cell executor: it is wired in as
// harness Options.Exec, so every non-memoized cell of a coordinator job
// becomes one remote execution against the worker fleet instead of a
// local simulation. The policy, in order:
//
//   - Result store first: a cell already computed by anyone in the fleet
//     (this sweep, a previous sweep, a previous coordinator incarnation)
//     is served from the content-addressed store without dispatch.
//   - Consistent-hash ownership: the cell's content address picks its
//     worker, so each worker's local memo cache stays hot across sweeps.
//   - Per-cell deadline (Config.CellTimeout) on the whole dispatch
//     including retries and hedges.
//   - Failure → walk the ring successors, never re-trying a worker that
//     already failed this cell in this round; when every live worker has
//     failed it once, the round resets (workers restart under stable IDs,
//     so a comeback deserves a fresh chance).
//   - Every launch after the first consumes a token from the bounded
//     retry budget — a flapping worker degrades throughput but cannot
//     amplify one cell into unbounded fleet load.
//   - Hedged re-dispatch: if the owning worker stops heartbeating while
//     our call is in flight (SIGKILL, wedge, partition), or the optional
//     HedgeDelay elapses, a second attempt launches on the next live
//     successor; first success wins, the loser's response is discarded.
//
// Cells are idempotent (deterministic simulation keyed by content
// address), so duplicated execution from hedging is always safe; the
// result store's conflict audit would catch any violation.

// ErrRetryBudgetExhausted marks cells failed by admission control: the
// coordinator refused to keep re-dispatching.
var ErrRetryBudgetExhausted = errors.New("server: dispatch retry budget exhausted")

// ErrNoWorkers marks a dispatch that found no live worker before the
// cell deadline.
var ErrNoWorkers = errors.New("server: no live workers")

// tokenBucket is the coordinator-wide retry budget: Burst tokens,
// refilled continuously at Rate per second. take is non-blocking.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64
	last   time.Time
}

func newTokenBucket(burst int, rate float64) *tokenBucket {
	return &tokenBucket{tokens: float64(burst), burst: float64(burst), rate: rate, last: time.Now()}
}

func (b *tokenBucket) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// encodedConfig caches the polypath/v2 wire encoding per canonical hash,
// so a 10k-cell sweep encodes each distinct config once, not per cell.
func (s *Server) encodedConfig(cfg pipeline.Config, hash string) ([]byte, error) {
	s.encMu.Lock()
	if blob, ok := s.encCfg[hash]; ok {
		s.encMu.Unlock()
		return blob, nil
	}
	s.encMu.Unlock()
	blob, err := pipeline.EncodeConfigV2(cfg)
	if err != nil {
		return nil, err
	}
	s.encMu.Lock()
	if s.encCfg == nil {
		s.encCfg = make(map[string][]byte)
	}
	s.encCfg[hash] = blob
	s.encMu.Unlock()
	return blob, nil
}

// dispatchPollInterval paces the waiting loops: how often an idle
// dispatch re-checks fleet membership, and how often an in-flight
// dispatch re-evaluates its hedge conditions.
const dispatchPollInterval = 100 * time.Millisecond

// execRemote runs one cell on the worker fleet (the coordinator's
// harness Options.Exec).
func (s *Server) execRemote(ctx context.Context, cell harness.CellSpec) (harness.MemoValue, error) {
	var zero harness.MemoValue
	key := harness.CellKey(cell.Spec, cell.ConfigHash)
	if s.store != nil {
		if v, ok := s.store.Get(key); ok {
			s.svc.StoreHits.Add(1)
			return v, nil
		}
	}
	blob, err := s.encodedConfig(cell.Config, cell.ConfigHash)
	if err != nil {
		return zero, fmt.Errorf("encode config for dispatch: %w", err)
	}
	req := CellRequest{
		Benchmark:  cell.Benchmark,
		Seed:       cell.Spec.Seed,
		Insts:      cell.Spec.TargetInsts,
		Replicate:  cell.Replicate,
		Config:     blob,
		ConfigHash: cell.ConfigHash,
	}
	if _, err := workload.ByName(cell.Benchmark, 0); err != nil {
		// Job-scoped workload (trace-derived stand-in): no worker can
		// resolve the name, so the already-resolved spec travels inline.
		spec := cell.Spec
		req.Spec = &spec
	}
	if s.cfg.Audit != pipeline.AuditOff {
		req.Audit = s.cfg.Audit.String()
	}

	cctx, cancel := context.WithTimeout(ctx, s.cfg.CellTimeout)
	defer cancel()

	type attempt struct {
		resp CellResponse
		err  error
		w    *workerEntry
	}
	// Buffered past the launch cap so abandoned attempts never block on
	// send after we return.
	resCh := make(chan attempt, s.cfg.CellRetries+4)
	tried := make(map[string]bool)    // failed or launched this round
	inflight := make(map[string]bool) // launched, no result yet
	launched := 0
	crashes := 0
	var crashNode string
	var lastErr error

	launch := func(w *workerEntry) {
		tried[w.id] = true
		inflight[w.id] = true
		launched++
		s.svc.CellsDispatched.Add(1)
		go func() {
			start := time.Now()
			resp, err := w.caller.RunCell(cctx, req)
			s.observeWorkerCell(w.id, time.Since(start), err)
			resCh <- attempt{resp: resp, err: err, w: w}
		}()
	}

	// nextWorker picks the cell's owner among workers not yet tried this
	// round, resetting the round when every live worker has already
	// failed it once (a restarted worker re-registers under its old ID
	// and deserves a fresh attempt). Skips in-flight workers on reset.
	nextWorker := func() *workerEntry {
		if w := s.registry.owner(key, tried); w != nil {
			return w
		}
		if len(tried) > len(inflight) && s.registry.liveCount() > 0 {
			for id := range tried {
				if !inflight[id] {
					delete(tried, id)
				}
			}
			return s.registry.owner(key, tried)
		}
		return nil
	}

	var hedgeAt time.Time
	if s.cfg.HedgeDelay > 0 {
		hedgeAt = time.Now().Add(s.cfg.HedgeDelay)
	}
	ticker := time.NewTicker(dispatchPollInterval)
	defer ticker.Stop()

	for {
		// Keep at least one attempt in flight, waiting out windows where
		// the fleet is momentarily empty (worker restart, coordinator
		// just rebooted and workers have not re-registered yet).
		for len(inflight) == 0 {
			if launched > s.cfg.CellRetries {
				return zero, fmt.Errorf("cell %s: gave up after %d dispatches: %w", key, launched, lastErr)
			}
			w := s.nextLiveWorker(cctx, nextWorker)
			if w == nil {
				if lastErr == nil {
					lastErr = ErrNoWorkers
				}
				return zero, fmt.Errorf("cell %s: %w (deadline: %v)", key, lastErr, cctx.Err())
			}
			if launched > 0 {
				if !s.retryTokens.take() {
					s.svc.RetryBudgetExhausted.Add(1)
					return zero, fmt.Errorf("cell %s: %w after %d dispatches: %v", key, ErrRetryBudgetExhausted, launched, lastErr)
				}
				s.svc.CellsRedispatched.Add(1)
			}
			launch(w)
		}

		select {
		case a := <-resCh:
			delete(inflight, a.w.id)
			if a.err == nil {
				a.w.cellsOK.Add(1)
				v := harness.MemoValue{IPC: a.resp.IPC, Stats: a.resp.Stats}
				if s.store != nil {
					if conflict, err := s.store.Put(key, v); err != nil {
						s.cfg.Log.Printf("polyserve: store put %s: %v", key, err)
					} else if conflict {
						s.svc.StoreConflicts.Add(1)
						s.cfg.Log.Printf("polyserve: DETERMINISM VIOLATION: store conflict on %s from worker %s", key, a.w.id)
					} else {
						s.svc.StorePuts.Add(1)
					}
				}
				return v, nil
			}
			a.w.cellsFailed.Add(1)
			lastErr = fmt.Errorf("worker %s: %w", a.w.id, a.err)
			if node, ok := IsWorkerCrash(a.err); ok {
				crashes++
				crashNode = node
				if crashNode == "" {
					crashNode = a.w.id
				}
				if crashes >= 2 {
					// Two distinct dispatches crashed on this cell: that is
					// the request's fault, not a bad node. Redispatching
					// further would just crash more workers.
					return zero, fmt.Errorf("cell %s crashed %d workers (last: %s): %w", key, crashes, crashNode, a.err)
				}
			}
			if cctx.Err() != nil {
				return zero, fmt.Errorf("cell %s: %w (last: %v)", key, cctx.Err(), lastErr)
			}
			// Loop: the launch loop above re-dispatches to the next owner.

		case <-ticker.C:
			// Hedge check: the only worker(s) running this cell stopped
			// heartbeating (evicted), or the configured hedge delay
			// elapsed. Launch one extra attempt on a live successor —
			// budget permitting — without abandoning the in-flight one.
			if len(inflight) == 0 {
				continue
			}
			evicted := true
			for id := range inflight {
				if s.registry.isLive(id) {
					evicted = false
					break
				}
			}
			hedge := evicted || (!hedgeAt.IsZero() && time.Now().After(hedgeAt))
			if !hedge || launched > s.cfg.CellRetries {
				continue
			}
			if w := nextWorker(); w != nil && s.retryTokens.take() {
				s.svc.CellsRedispatched.Add(1)
				launch(w)
				hedgeAt = time.Time{} // one time-based hedge per cell
			}

		case <-cctx.Done():
			if lastErr == nil {
				lastErr = cctx.Err()
			}
			return zero, fmt.Errorf("cell %s: deadline: %w", key, lastErr)
		}
	}
}

// nextLiveWorker waits (bounded by ctx) until nextWorker yields a
// candidate — covering the window where the whole fleet is re-registering
// after a coordinator restart.
func (s *Server) nextLiveWorker(ctx context.Context, nextWorker func() *workerEntry) *workerEntry {
	for {
		if w := nextWorker(); w != nil {
			return w
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(dispatchPollInterval):
		}
	}
}
