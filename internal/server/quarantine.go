package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// quarantine.go implements polyserve's repeated-crash containment: a job
// request whose execution keeps crashing the worker (a contained panic or
// a pipeline machine check) is fingerprinted, counted, and — once it has
// crashed CrashThreshold times — refused at submission with HTTP 403. One
// poisoned request can therefore never grind the service down by being
// resubmitted in a retry loop; every other request keeps flowing.

// QuarantineEntry is one crash-tracked request fingerprint, served by
// GET /v1/quarantine.
type QuarantineEntry struct {
	// Signature fingerprints the job request (hash of its canonical JSON).
	Signature string `json:"signature"`
	// Describe is a human-oriented summary of the offending request.
	Describe string `json:"describe"`
	// Crashes counts contained worker crashes attributed to this request.
	Crashes int `json:"crashes"`
	// Quarantined is true once Crashes reached the server's threshold;
	// further submissions with this signature are rejected.
	Quarantined bool `json:"quarantined"`
	// LastError is the most recent crash's error text.
	LastError string `json:"last_error"`
	// LastCrash is when the most recent crash was recorded.
	LastCrash time.Time `json:"last_crash"`
	// Node is the worker node that observed the most recent crash, and
	// Nodes every node that ever crashed on this signature — the fleet
	// operator's "bad config" (many nodes) vs "bad node" (one node)
	// triage signal. Empty on pre-fleet records.
	Node  string   `json:"node,omitempty"`
	Nodes []string `json:"nodes,omitempty"`
}

// quarantine tracks crash counts per request signature.
type quarantine struct {
	mu        sync.Mutex
	threshold int
	entries   map[string]*QuarantineEntry
}

func newQuarantine(threshold int) *quarantine {
	return &quarantine{threshold: threshold, entries: make(map[string]*QuarantineEntry)}
}

// crashSignature fingerprints a request by hashing its canonical JSON
// encoding (struct field order is fixed, so equal requests hash equally).
func crashSignature(req JobRequest) string {
	blob, err := json.Marshal(req)
	if err != nil {
		// Marshal of a plain data struct cannot fail; collapse the
		// impossible case into a shared bucket rather than panicking.
		return "unhashable"
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:8])
}

// recordCrash counts one contained crash for the request, attributed to
// the worker node that observed it (the local node for in-process
// execution, the remote worker's ID for fleet dispatch), and reports
// whether this crash tipped it into quarantine. All methods tolerate a
// nil receiver (a Server built without New has no quarantine).
func (q *quarantine) recordCrash(req JobRequest, describe, errText, node string, now time.Time) (sig string, quarantinedNow bool) {
	sig = crashSignature(req)
	if q == nil {
		return sig, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	e := q.entries[sig]
	if e == nil {
		e = &QuarantineEntry{Signature: sig, Describe: describe}
		q.entries[sig] = e
	}
	e.Crashes++
	e.LastError = errText
	e.LastCrash = now
	if node != "" {
		e.Node = node
		seen := false
		for _, n := range e.Nodes {
			if n == node {
				seen = true
				break
			}
		}
		if !seen {
			e.Nodes = append(e.Nodes, node)
		}
	}
	if !e.Quarantined && e.Crashes >= q.threshold {
		e.Quarantined = true
		return sig, true
	}
	return sig, false
}

// check reports whether the request is quarantined.
func (q *quarantine) check(req JobRequest) (sig string, quarantined bool) {
	sig = crashSignature(req)
	if q == nil {
		return sig, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	e := q.entries[sig]
	return sig, e != nil && e.Quarantined
}

// list returns all crash-tracked entries, most-recently-crashed first.
func (q *quarantine) list() []QuarantineEntry {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	out := make([]QuarantineEntry, 0, len(q.entries))
	for _, e := range q.entries {
		out = append(out, *e)
	}
	q.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if !out[i].LastCrash.Equal(out[k].LastCrash) {
			return out[i].LastCrash.After(out[k].LastCrash)
		}
		return out[i].Signature < out[k].Signature
	})
	return out
}
