package stats

import (
	"sync"
	"testing"
)

func TestServiceSnapshot(t *testing.T) {
	var s Service
	s.JobsSubmitted.Add(3)
	s.JobsCompleted.Add(2)
	s.JobsRejected.Add(1)
	s.CellsSimulated.Add(10)
	s.CellsFromCache.Add(5)
	s.SimInsts.Add(4_000_000)
	s.SimNanos.Add(2_000_000_000) // 2s

	snap := s.Snapshot()
	if snap.JobsSubmitted != 3 || snap.JobsCompleted != 2 || snap.JobsRejected != 1 {
		t.Errorf("job counters wrong: %+v", snap)
	}
	if snap.SimWallSeconds != 2.0 {
		t.Errorf("SimWallSeconds = %g, want 2", snap.SimWallSeconds)
	}
	if snap.SimInstsPerSec != 2_000_000 {
		t.Errorf("SimInstsPerSec = %g, want 2e6", snap.SimInstsPerSec)
	}
}

func TestServiceZeroSnapshot(t *testing.T) {
	var s Service
	snap := s.Snapshot()
	if snap.SimInstsPerSec != 0 {
		t.Error("zero service must report zero throughput, not NaN")
	}
}

func TestServiceConcurrentUpdates(t *testing.T) {
	var s Service
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.CellsSimulated.Add(1)
				s.SimInsts.Add(100)
			}
		}()
	}
	wg.Wait()
	if got := s.CellsSimulated.Load(); got != 8000 {
		t.Errorf("CellsSimulated = %d, want 8000", got)
	}
}
