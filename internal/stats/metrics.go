package stats

import (
	"sync/atomic"

	"repro/internal/obs/metrics"
)

// Register exposes the service counters on reg in Prometheus naming, as
// scrape-time reads of the existing atomics — no double accounting, no
// extra work on the update hot path.
func (s *Service) Register(reg *metrics.Registry) {
	ctr := func(name, labels, help string, v *atomic.Uint64) {
		reg.CounterFunc(name, labels, help, func() float64 { return float64(v.Load()) })
	}
	ctr("polyserve_jobs_total", `state="submitted"`, "Job lifecycle counts by terminal or entry state.", &s.JobsSubmitted)
	ctr("polyserve_jobs_total", `state="completed"`, "", &s.JobsCompleted)
	ctr("polyserve_jobs_total", `state="failed"`, "", &s.JobsFailed)
	ctr("polyserve_jobs_total", `state="cancelled"`, "", &s.JobsCancelled)
	ctr("polyserve_jobs_total", `state="rejected"`, "", &s.JobsRejected)
	ctr("polyserve_worker_panics_total", "", "Contained worker crashes (panics and machine checks).", &s.WorkerPanics)
	ctr("polyserve_jobs_quarantined_total", "", "Submissions refused by the crash-quarantine list.", &s.JobsQuarantined)
	ctr("polyserve_journal_resumed_total", "", "Journal records re-enqueued at startup.", &s.JournalResumed)
	ctr("polyserve_journal_dropped_total", "", "Corrupt, torn or stale journal records dropped at startup.", &s.JournalDropped)
	ctr("polyserve_cells_total", `source="simulated"`, "Result cells by origin: simulated or replayed from the memo cache.", &s.CellsSimulated)
	ctr("polyserve_cells_total", `source="cache"`, "", &s.CellsFromCache)
	ctr("polyserve_sim_insts_total", "", "Committed instructions across all simulated cells.", &s.SimInsts)
	reg.CounterFunc("polyserve_sim_seconds_total", "", "Wall-clock seconds spent inside simulations.",
		func() float64 { return float64(s.SimNanos.Load()) / 1e9 })
	ctr("polyserve_sweeps_total", `state="submitted"`, "Batch sweeps by lifecycle state.", &s.SweepsSubmitted)
	ctr("polyserve_sweeps_total", `state="completed"`, "", &s.SweepsCompleted)
	ctr("polyserve_sweep_cells_total", "", "Cells completed inside sweeps (cache hits included).", &s.SweepCellsDone)
	reg.CounterFunc("polyserve_sweep_serial_seconds_total", "", "Summed per-cell wall seconds inside sweeps.",
		func() float64 { return float64(s.SweepSerialNanos.Load()) / 1e9 })
	reg.CounterFunc("polyserve_sweep_wall_seconds_total", "", "Start-to-finish wall seconds of sweep jobs; serial/wall is the sharding speedup.",
		func() float64 { return float64(s.SweepWallNanos.Load()) / 1e9 })
	reg.GaugeFunc("polyserve_sweep_speedup", "", "Observed sweep speedup: serial seconds over wall seconds.",
		func() float64 {
			wall := s.SweepWallNanos.Load()
			if wall <= 0 {
				return 0
			}
			return float64(s.SweepSerialNanos.Load()) / float64(wall)
		})
	ctr("polyserve_cells_dispatched_total", "", "Remote cell executions launched at fleet workers.", &s.CellsDispatched)
	ctr("polyserve_cells_redispatched_total", "", "Cell re-dispatches after a worker failure, eviction, or hedge.", &s.CellsRedispatched)
	ctr("polyserve_retry_budget_exhausted_total", "", "Cells failed because the dispatch retry budget ran dry.", &s.RetryBudgetExhausted)
	ctr("polyserve_workers_evicted_total", "", "Workers evicted after missing their heartbeat lease.", &s.WorkersEvicted)
	ctr("polyserve_tenant_rejected_total", "", "Submissions rejected by a full per-tenant queue.", &s.TenantRejected)
	ctr("polyserve_store_ops_total", `op="hit"`, "Shared result-store operations: hits, puts, and write conflicts.", &s.StoreHits)
	ctr("polyserve_store_ops_total", `op="put"`, "", &s.StorePuts)
	ctr("polyserve_store_ops_total", `op="conflict"`, "", &s.StoreConflicts)
}

// Snapshot exports the histogram for the metrics registry: integer-valued
// occupancy buckets become le-bounds, and values clamped into the last
// bucket surface as the overflow (+Inf) count.
func (h *Histogram) Snapshot() metrics.HistogramSnapshot {
	n := len(h.buckets)
	if n == 0 {
		return metrics.HistogramSnapshot{Counts: []uint64{0}}
	}
	s := metrics.HistogramSnapshot{
		Bounds: make([]float64, n-1),
		Counts: make([]uint64, n),
		Count:  h.samples,
		Sum:    float64(h.sum),
	}
	for i := 0; i < n-1; i++ {
		s.Bounds[i] = float64(i)
	}
	copy(s.Counts, h.buckets)
	return s
}

// RegisterSim exposes a simulation's core counters and per-cycle
// occupancy distributions on reg under the given prefix (e.g. "polysim").
// Values are plain scrape-time reads of the Sim fields: exact once the
// run has finished, approximate (but harmless) while it is still
// advancing — the simulator's hot path is untouched.
func RegisterSim(reg *metrics.Registry, prefix string, s *Sim) {
	reg.CounterFunc(prefix+"_cycles_total", "", "Simulated cycles.", func() float64 { return float64(s.Cycles) })
	reg.CounterFunc(prefix+"_insts_total", `stage="fetched"`, "Instruction flow by pipeline stage.", func() float64 { return float64(s.Fetched) })
	reg.CounterFunc(prefix+"_insts_total", `stage="renamed"`, "", func() float64 { return float64(s.Renamed) })
	reg.CounterFunc(prefix+"_insts_total", `stage="committed"`, "", func() float64 { return float64(s.Committed) })
	reg.CounterFunc(prefix+"_insts_total", `stage="killed"`, "", func() float64 { return float64(s.Killed) })
	reg.GaugeFunc(prefix+"_ipc", "", "Committed instructions per cycle so far.", s.IPC)
	reg.CounterFunc(prefix+"_divergences_total", "", "SEE divergences created.", func() float64 { return float64(s.Divergences) })
	reg.CounterFunc(prefix+"_mispredicts_total", "", "Committed conditional-branch mispredictions.", func() float64 { return float64(s.Mispredicts) })
	reg.HistogramFunc(prefix+"_live_paths", "", "Live CTX paths per cycle.", s.PathHist.Snapshot)
	reg.HistogramFunc(prefix+"_window_occupancy", "", "Instruction-window entries per cycle.", s.WindowHist.Snapshot)
	reg.HistogramFunc(prefix+"_commits_per_cycle", "", "Instructions committed per cycle.", s.CommitHist.Snapshot)
}
