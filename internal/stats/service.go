package stats

import "sync/atomic"

// Service accumulates the operational counters of a long-running
// simulation service (polyserve): job lifecycle counts, memoization
// effectiveness, and aggregate simulation throughput. All fields are
// updated with atomics so the hot path (worker goroutines reporting
// per-cell completions) never contends on a lock.
type Service struct {
	JobsSubmitted atomic.Uint64
	JobsCompleted atomic.Uint64
	JobsFailed    atomic.Uint64
	JobsCancelled atomic.Uint64
	JobsRejected  atomic.Uint64 // backpressure: queue-full rejections

	WorkerPanics    atomic.Uint64 // contained worker crashes (panics + machine checks)
	JobsQuarantined atomic.Uint64 // submissions rejected by the crash-quarantine list

	JournalResumed atomic.Uint64 // journal records successfully re-enqueued at startup
	JournalDropped atomic.Uint64 // corrupt, torn or stale journal records dropped at startup

	CellsSimulated atomic.Uint64 // (benchmark, config, replicate) cells actually run
	CellsFromCache atomic.Uint64 // cells served from the memoization cache

	SimInsts atomic.Uint64 // committed instructions across all simulated cells
	SimNanos atomic.Int64  // wall nanoseconds spent inside simulations

	SweepsSubmitted  atomic.Uint64 // /v1/sweeps batch jobs accepted
	SweepsCompleted  atomic.Uint64 // sweeps that finished successfully
	SweepCellsDone   atomic.Uint64 // cells completed inside sweeps (cache hits included)
	SweepSerialNanos atomic.Int64  // summed per-cell wall time inside sweeps ("serial seconds")
	SweepWallNanos   atomic.Int64  // wall time of sweep jobs start-to-finish; serial/wall = speedup

	// Fleet (coordinator/worker mode).
	CellsDispatched      atomic.Uint64 // remote cell executions launched at workers
	CellsRedispatched    atomic.Uint64 // re-dispatches after a worker failure, eviction, or hedge
	RetryBudgetExhausted atomic.Uint64 // cells failed because the dispatch retry budget ran dry
	WorkersEvicted       atomic.Uint64 // workers evicted after missing their heartbeat lease
	TenantRejected       atomic.Uint64 // submissions rejected by a full per-tenant queue
	StoreHits            atomic.Uint64 // cells served from the shared content-addressed result store
	StorePuts            atomic.Uint64 // results written to the store
	StoreConflicts       atomic.Uint64 // store writes that disagreed with an existing result (determinism violation)
}

// ServiceSnapshot is a consistent-enough point-in-time copy of the
// counters, shaped for the /v1/stats JSON response.
type ServiceSnapshot struct {
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	JobsRejected  uint64 `json:"jobs_rejected"`

	WorkerPanics    uint64 `json:"worker_panics"`
	JobsQuarantined uint64 `json:"jobs_quarantined"`

	JournalResumed uint64 `json:"journal_resumed"`
	JournalDropped uint64 `json:"journal_dropped"`

	CellsSimulated uint64 `json:"cells_simulated"`
	CellsFromCache uint64 `json:"cells_from_cache"`

	SimInsts       uint64  `json:"sim_insts"`
	SimWallSeconds float64 `json:"sim_wall_seconds"`
	SimInstsPerSec float64 `json:"sim_insts_per_sec"`

	SweepsSubmitted    uint64  `json:"sweeps_submitted"`
	SweepsCompleted    uint64  `json:"sweeps_completed"`
	SweepCellsDone     uint64  `json:"sweep_cells_done"`
	SweepSerialSeconds float64 `json:"sweep_serial_seconds"`
	SweepWallSeconds   float64 `json:"sweep_wall_seconds"`
	SweepSpeedup       float64 `json:"sweep_speedup"` // serial/wall; >1 means sharding paid off

	CellsDispatched      uint64 `json:"cells_dispatched,omitempty"`
	CellsRedispatched    uint64 `json:"cells_redispatched,omitempty"`
	RetryBudgetExhausted uint64 `json:"retry_budget_exhausted,omitempty"`
	WorkersEvicted       uint64 `json:"workers_evicted,omitempty"`
	TenantRejected       uint64 `json:"tenant_rejected,omitempty"`
	StoreHits            uint64 `json:"store_hits,omitempty"`
	StorePuts            uint64 `json:"store_puts,omitempty"`
	StoreConflicts       uint64 `json:"store_conflicts,omitempty"`
}

// Snapshot reads every counter and derives the throughput figures.
func (s *Service) Snapshot() ServiceSnapshot {
	insts := s.SimInsts.Load()
	nanos := s.SimNanos.Load()
	snap := ServiceSnapshot{
		JobsSubmitted:   s.JobsSubmitted.Load(),
		JobsCompleted:   s.JobsCompleted.Load(),
		JobsFailed:      s.JobsFailed.Load(),
		JobsCancelled:   s.JobsCancelled.Load(),
		JobsRejected:    s.JobsRejected.Load(),
		WorkerPanics:    s.WorkerPanics.Load(),
		JobsQuarantined: s.JobsQuarantined.Load(),
		JournalResumed:  s.JournalResumed.Load(),
		JournalDropped:  s.JournalDropped.Load(),
		CellsSimulated:  s.CellsSimulated.Load(),
		CellsFromCache:  s.CellsFromCache.Load(),
		SimInsts:        insts,
		SimWallSeconds:  float64(nanos) / 1e9,
	}
	if nanos > 0 {
		snap.SimInstsPerSec = float64(insts) / (float64(nanos) / 1e9)
	}
	serial := s.SweepSerialNanos.Load()
	wall := s.SweepWallNanos.Load()
	snap.SweepsSubmitted = s.SweepsSubmitted.Load()
	snap.SweepsCompleted = s.SweepsCompleted.Load()
	snap.SweepCellsDone = s.SweepCellsDone.Load()
	snap.SweepSerialSeconds = float64(serial) / 1e9
	snap.SweepWallSeconds = float64(wall) / 1e9
	if wall > 0 {
		snap.SweepSpeedup = float64(serial) / float64(wall)
	}
	snap.CellsDispatched = s.CellsDispatched.Load()
	snap.CellsRedispatched = s.CellsRedispatched.Load()
	snap.RetryBudgetExhausted = s.RetryBudgetExhausted.Load()
	snap.WorkersEvicted = s.WorkersEvicted.Load()
	snap.TenantRejected = s.TenantRejected.Load()
	snap.StoreHits = s.StoreHits.Load()
	snap.StorePuts = s.StorePuts.Load()
	snap.StoreConflicts = s.StoreConflicts.Load()
	return snap
}
