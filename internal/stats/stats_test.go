package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestIPCAndRates(t *testing.T) {
	s := &Sim{
		Cycles: 1000, Committed: 2500, Fetched: 4650,
		CondBranches: 500, Mispredicts: 50,
		LowConf: 100, LowConfMispred: 40,
	}
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v", got)
	}
	if got := s.MispredictRate(); got != 0.1 {
		t.Errorf("mispredict rate = %v", got)
	}
	if got := s.PVN(); got != 0.4 {
		t.Errorf("PVN = %v", got)
	}
	if got := s.FetchOverhead(); got != 1.86 {
		t.Errorf("fetch overhead = %v", got)
	}
	if got := s.UselessInstructions(); got != 2150 {
		t.Errorf("useless = %v", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	s := &Sim{}
	if s.IPC() != 0 || s.MispredictRate() != 0 || s.PVN() != 0 || s.FetchOverhead() != 0 {
		t.Error("zero-denominator stats must be 0")
	}
	if s.UselessInstructions() != 0 {
		t.Error("useless with no activity must be 0")
	}
	if s.FUUtilization(isa.ClassMem) != 0 {
		t.Error("FU utilization with no capacity must be 0")
	}
}

func TestFUUtilization(t *testing.T) {
	s := &Sim{}
	s.FUIssued[isa.ClassIntEither] = 300
	s.FUCapacity[isa.ClassIntEither] = 400
	if got := s.FUUtilization(isa.ClassIntEither); got != 0.75 {
		t.Errorf("utilization = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{1, 1, 2, 3, 3, 3, 100, -5} {
		h.Add(v)
	}
	if h.Samples() != 8 {
		t.Errorf("samples = %d", h.Samples())
	}
	if h.Bucket(1) != 2 || h.Bucket(3) != 3 {
		t.Error("bucket counts wrong")
	}
	if h.Bucket(8) != 1 { // 100 clamps into last bucket
		t.Error("overflow should clamp into last bucket")
	}
	if h.Bucket(0) != 1 { // -5 clamps to 0
		t.Error("negative should clamp to 0")
	}
	if h.Bucket(-1) != 0 || h.Bucket(100) != 1 {
		t.Error("bucket accessor clamping")
	}
	// mean over 1,1,2,3,3,3,100,0 = 113/8
	if got := h.Mean(); math.Abs(got-113.0/8) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if got := h.FracAtMost(3); math.Abs(got-7.0/8) > 1e-9 {
		t.Errorf("frac<=3 = %v", got)
	}
	if got := h.FracAtMost(1000); got != 1 {
		t.Errorf("frac<=all = %v", got)
	}
}

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.FracAtMost(3) != 0 || h.Samples() != 0 {
		t.Error("zero histogram must report zeros")
	}
	h.Add(2) // lazily allocates
	if h.Samples() != 1 || h.Bucket(2) != 1 {
		t.Error("zero-value histogram must be usable")
	}
}

func TestPathStats(t *testing.T) {
	s := &Sim{PathHist: NewHistogram(16)}
	for i := 0; i < 75; i++ {
		s.PathHist.Add(3)
	}
	for i := 0; i < 25; i++ {
		s.PathHist.Add(5)
	}
	if got := s.PathsAtMost(3); got != 0.75 {
		t.Errorf("paths<=3 = %v", got)
	}
	if got := s.AvgPaths(); got != 3.5 {
		t.Errorf("avg paths = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMeanIPC([]float64{2, 2, 2}); got != 2 {
		t.Errorf("harmonic of equal = %v", got)
	}
	got := HarmonicMeanIPC([]float64{1, 2})
	if math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("harmonic(1,2) = %v", got)
	}
	if got := HarmonicMeanIPC([]float64{0, 0}); got != 0 {
		t.Errorf("harmonic of zeros = %v", got)
	}
	// Zeros skipped.
	if got := HarmonicMeanIPC([]float64{0, 3}); got != 3 {
		t.Errorf("harmonic skipping zeros = %v", got)
	}
	// Harmonic <= arithmetic mean always.
	vals := []float64{1.3, 2.9, 0.8, 4.4}
	var am float64
	for _, v := range vals {
		am += v
	}
	am /= float64(len(vals))
	if HarmonicMeanIPC(vals) > am {
		t.Error("harmonic mean exceeds arithmetic mean")
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{4, 9}); math.Abs(got-6) > 1e-9 {
		t.Errorf("geomean(4,9) = %v", got)
	}
	if got := GeometricMean(nil); got != 0 {
		t.Errorf("geomean(nil) = %v", got)
	}
}

func TestSummaryMentionsKeyMetrics(t *testing.T) {
	s := &Sim{Cycles: 10, Committed: 20, Fetched: 30, CondBranches: 5, Mispredicts: 1}
	s.FUCapacity[isa.ClassMem] = 40
	s.FUIssued[isa.ClassMem] = 10
	out := s.Summary()
	for _, want := range []string{"IPC", "mispredict", "PVN", "paths", "mem"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
