// Package stats collects the performance counters reported in the paper's
// evaluation: IPC, fetch/commit instruction counts (useless-instruction
// accounting), branch prediction and confidence-estimation accuracy (PVN),
// path utilization, functional unit utilization, and instruction window
// occupancy.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/isa"
)

// Sim accumulates all counters for one simulation run.
type Sim struct {
	Cycles uint64

	// Instruction flow.
	Fetched   uint64 // instructions entering the front end
	Renamed   uint64 // instructions dispatched into the window
	Committed uint64 // instructions retired
	Killed    uint64 // instructions squashed (window + front end)

	// Branches (counted at commit, i.e. on the correct path only).
	CondBranches    uint64
	Mispredicts     uint64
	TakenBranches   uint64
	LowConf         uint64 // low-confidence estimates among committed branches
	LowConfMispred  uint64 // ... of which were actually mispredicted
	HighConfMispred uint64

	// Indirect control flow (BTB-predicted).
	IndirectJumps       uint64
	IndirectMispredicts uint64
	IndirectRecoveries  uint64

	// Misprediction recovery cache (comparator extension).
	MRCInjections uint64

	// SEE machinery.
	Divergences        uint64 // divergences actually created
	DivergenceBlocked  uint64 // low-confidence branches that could not diverge (resources)
	WrongSubtreeKills  uint64 // divergence resolutions that killed a subtree
	MonopathRecoveries uint64 // conventional misprediction recoveries

	// Sampled distributions.
	PathHist   Histogram // live paths per cycle
	WindowHist Histogram // window occupancy per cycle
	CommitHist Histogram // instructions committed per cycle

	// Cycle accounting: cycles in which nothing committed, classified by
	// the reason observed at the window head.
	StallEmptyWindow uint64 // front end starved the window (fetch/refill)
	StallExecution   uint64 // head instruction still executing (latency/FU)

	// Functional unit usage: issues per class, and per-class capacity for
	// utilization accounting.
	FUIssued   [isa.NumFUClasses]uint64
	FUCapacity [isa.NumFUClasses]uint64 // units * cycles

	// Store buffer.
	StoreForwards uint64
	LoadsExecuted uint64

	// Optional cache model (zero when the always-hit assumption is used).
	DCacheAccesses uint64
	DCacheMisses   uint64
	ICacheAccesses uint64
	ICacheMisses   uint64

	// Policy controller (populated only when a policy spec is configured;
	// tagged omitempty so policy-free runs keep their exact historical JSON
	// encoding — the polyserve result store byte-compares encodings as a
	// determinism audit).
	EpochIPC       []float64 `json:"EpochIPC,omitempty"`       // per-epoch IPC trajectory
	PolicySwitches uint64    `json:"PolicySwitches,omitempty"` // epoch boundaries where the applied setting changed
}

// DCacheMissRate returns the data cache miss rate (0 with no accesses).
func (s *Sim) DCacheMissRate() float64 {
	if s.DCacheAccesses == 0 {
		return 0
	}
	return float64(s.DCacheMisses) / float64(s.DCacheAccesses)
}

// ICacheMissRate returns the instruction cache miss rate.
func (s *Sim) ICacheMissRate() float64 {
	if s.ICacheAccesses == 0 {
		return 0
	}
	return float64(s.ICacheMisses) / float64(s.ICacheAccesses)
}

// IPC returns committed instructions per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns the fraction of committed conditional branches
// that were mispredicted (Table 1's "branch misprediction" column).
func (s *Sim) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// PVN returns the predictive value of a negative test: the probability
// that a low-confidence estimate is for a mispredicted branch. The paper
// calls this "the most important design parameter" for SEE confidence
// estimators.
func (s *Sim) PVN() float64 {
	if s.LowConf == 0 {
		return 0
	}
	return float64(s.LowConfMispred) / float64(s.LowConf)
}

// FetchOverhead returns fetched/committed — the paper reports 1.86 for the
// monopath baseline ("46% of the fetch cycles are wasted").
func (s *Sim) FetchOverhead() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Fetched) / float64(s.Committed)
}

// UselessInstructions returns the number of fetched instructions that did
// not commit.
func (s *Sim) UselessInstructions() uint64 {
	if s.Fetched < s.Committed {
		return 0
	}
	return s.Fetched - s.Committed
}

// FUUtilization returns issued/capacity for a unit class.
func (s *Sim) FUUtilization(c isa.FUClass) float64 {
	if s.FUCapacity[c] == 0 {
		return 0
	}
	return float64(s.FUIssued[c]) / float64(s.FUCapacity[c])
}

// AvgPaths returns the mean number of live paths per cycle.
func (s *Sim) AvgPaths() float64 { return s.PathHist.Mean() }

// PathsAtMost returns the fraction of cycles with at most n live paths
// (the paper: "SEE uses 3 paths or fewer approximately 75% of the time").
func (s *Sim) PathsAtMost(n int) float64 { return s.PathHist.FracAtMost(n) }

// Summary renders a human-readable multi-line report.
func (s *Sim) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles            %12d\n", s.Cycles)
	fmt.Fprintf(&b, "committed         %12d  (IPC %.3f)\n", s.Committed, s.IPC())
	fmt.Fprintf(&b, "fetched           %12d  (%.2fx committed)\n", s.Fetched, s.FetchOverhead())
	fmt.Fprintf(&b, "killed            %12d\n", s.Killed)
	fmt.Fprintf(&b, "cond branches     %12d  (mispredict %.2f%%)\n", s.CondBranches, 100*s.MispredictRate())
	fmt.Fprintf(&b, "low confidence    %12d  (PVN %.1f%%)\n", s.LowConf, 100*s.PVN())
	fmt.Fprintf(&b, "divergences       %12d  (blocked %d)\n", s.Divergences, s.DivergenceBlocked)
	if s.IndirectJumps > 0 {
		fmt.Fprintf(&b, "indirect jumps    %12d  (target mispredict %.2f%%)\n", s.IndirectJumps,
			100*float64(s.IndirectMispredicts)/float64(s.IndirectJumps))
	}
	fmt.Fprintf(&b, "avg live paths    %12.2f  (<=3 paths %.0f%% of cycles)\n", s.AvgPaths(), 100*s.PathsAtMost(3))
	fmt.Fprintf(&b, "window occupancy  %12.1f  avg entries\n", s.WindowHist.Mean())
	if s.Cycles > 0 {
		fmt.Fprintf(&b, "stall cycles      %11.1f%%  (%.1f%% empty window, %.1f%% execution)\n",
			100*float64(s.StallEmptyWindow+s.StallExecution)/float64(s.Cycles),
			100*float64(s.StallEmptyWindow)/float64(s.Cycles),
			100*float64(s.StallExecution)/float64(s.Cycles))
	}
	fmt.Fprintf(&b, "store forwards    %12d / %d loads\n", s.StoreForwards, s.LoadsExecuted)
	if s.DCacheAccesses > 0 {
		fmt.Fprintf(&b, "dcache            %12d accesses (miss %.1f%%)\n", s.DCacheAccesses, 100*s.DCacheMissRate())
	}
	if s.ICacheAccesses > 0 {
		fmt.Fprintf(&b, "icache            %12d accesses (miss %.1f%%)\n", s.ICacheAccesses, 100*s.ICacheMissRate())
	}
	for c := isa.FUClass(0); int(c) < isa.NumFUClasses; c++ {
		if s.FUCapacity[c] > 0 {
			fmt.Fprintf(&b, "util %-12s %11.1f%%\n", c.String(), 100*s.FUUtilization(c))
		}
	}
	return b.String()
}

// Histogram is a fixed-capacity integer histogram that also tracks the sum
// for mean computation. Values beyond the last bucket clamp into it.
type Histogram struct {
	buckets []uint64
	samples uint64
	sum     uint64
}

// NewHistogram creates a histogram with buckets for values 0..max.
func NewHistogram(max int) Histogram {
	return Histogram{buckets: make([]uint64, max+1)}
}

// Add records one sample of value v.
func (h *Histogram) Add(v int) {
	if h.buckets == nil {
		h.buckets = make([]uint64, 65)
	}
	if v < 0 {
		v = 0
	}
	h.sum += uint64(v)
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.samples++
}

// Samples returns the number of recorded samples.
func (h *Histogram) Samples() uint64 { return h.samples }

// MarshalJSON emits {mean, samples, sum, buckets} so histograms survive
// the machine-readable experiment output — and, paired with
// UnmarshalJSON, round-trip exactly. Exact round-tripping is what lets a
// remote worker ship a stats.Sim over the wire with the bit-identical
// result contract intact (polyserve's coordinator/worker mode).
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Mean    float64  `json:"mean"`
		Samples uint64   `json:"samples"`
		Sum     uint64   `json:"sum,omitempty"`
		Buckets []uint64 `json:"buckets,omitempty"`
	}{h.Mean(), h.samples, h.sum, h.buckets})
}

// UnmarshalJSON restores a histogram written by MarshalJSON. Legacy
// encodings without the "sum" field reconstruct it from mean×samples
// (exact for any realistic simulation length).
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w struct {
		Mean    float64  `json:"mean"`
		Samples uint64   `json:"samples"`
		Sum     uint64   `json:"sum"`
		Buckets []uint64 `json:"buckets"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	h.buckets = w.Buckets
	h.samples = w.Samples
	h.sum = w.Sum
	if h.sum == 0 && w.Mean > 0 && w.Samples > 0 {
		h.sum = uint64(math.Round(w.Mean * float64(w.Samples)))
	}
	return nil
}

// Mean returns the average sample value.
func (h *Histogram) Mean() float64 {
	if h.samples == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.samples)
}

// FracAtMost returns the fraction of samples with value <= n.
func (h *Histogram) FracAtMost(n int) float64 {
	if h.samples == 0 {
		return 0
	}
	if n >= len(h.buckets) {
		n = len(h.buckets) - 1
	}
	var c uint64
	for i := 0; i <= n; i++ {
		c += h.buckets[i]
	}
	return float64(c) / float64(h.samples)
}

// Bucket returns the count of samples with value v (clamped to range).
func (h *Histogram) Bucket(v int) uint64 {
	if v < 0 || h.buckets == nil {
		return 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	return h.buckets[v]
}

// HarmonicMeanIPC computes the harmonic mean the paper uses to average IPC
// across benchmarks. Zero values are skipped (they would otherwise
// dominate to zero).
func HarmonicMeanIPC(vals []float64) float64 {
	var inv float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			inv += 1 / v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(n) / inv
}

// GeometricMean computes the geometric mean of positive values (the paper
// uses it for misprediction-rate aggregation in Sec. 5.3.1).
func GeometricMean(vals []float64) float64 {
	prod := 1.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}
