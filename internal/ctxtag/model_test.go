package ctxtag

import (
	"math/rand"
	"testing"
)

// model_test.go checks the tag algebra against a naive reference model: an
// explicit path tree with parent pointers, driven through the same
// lifecycle the pipeline's context manager enforces:
//
//   - a live path may diverge once (a diverged parent stops fetching);
//   - divergences RESOLVE out of order (the 2-bit encoding's selling point
//     over Adaptive Branch Trees), killing the wrong subtree by tag match;
//   - divergences COMMIT in creation order, and only once resolved — the
//     in-order back end guarantees this — clearing the history position in
//     every live tag, retiring the parent context, and recycling the
//     position for wrap-around reuse.
//
// After every step, the tag-based ancestor relation must agree with tree
// reachability for all live pairs, and every tag-directed kill must agree
// with tree membership of the wrong subtree.

type modelPath struct {
	id       int
	parent   *modelPath // nil for the root; never rewritten
	tag      Tag
	diverged bool
}

func (p *modelPath) isAncestorOrSelf(q *modelPath) bool {
	for cur := q; cur != nil; cur = cur.parent {
		if cur == p {
			return true
		}
	}
	return false
}

type modelDivergence struct {
	pos      int
	parent   *modelPath
	childT   *modelPath
	childN   *modelPath
	resolved bool
	outcome  bool
}

func TestTagRelationMatchesTreeModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		alloc := NewAllocator(8)
		root := &modelPath{id: 0, tag: Root()}
		live := map[*modelPath]bool{root: true}
		nextID := 1
		var divs []*modelDivergence // creation order; front commits first
		committed := 0              // count of committed divergences

		check := func() {
			for a := range live {
				for b := range live {
					want := a.isAncestorOrSelf(b)
					got := a.tag.IsAncestorOrSelf(b.tag)
					if want != got {
						t.Fatalf("trial %d: relation mismatch: tree says %v, tags %q->%q say %v",
							trial, want, a.tag, b.tag, got)
					}
				}
			}
		}

		commitFrontier := func() {
			for committed < len(divs) && divs[committed].resolved {
				d := divs[committed]
				committed++
				// The parent context retires with the divergent branch.
				delete(live, d.parent)
				for p := range live {
					p.tag = p.tag.ClearPosition(d.pos)
				}
				alloc.Free(d.pos)
			}
		}

		for step := 0; step < 80; step++ {
			switch rng.Intn(2) {
			case 0: // diverge a random undiverged live path
				var cands []*modelPath
				for p := range live {
					if !p.diverged {
						cands = append(cands, p)
					}
				}
				for i := 1; i < len(cands); i++ {
					for j := i; j > 0 && cands[j-1].id > cands[j].id; j-- {
						cands[j-1], cands[j] = cands[j], cands[j-1]
					}
				}
				if len(cands) == 0 {
					continue
				}
				pos, ok := alloc.Alloc()
				if !ok {
					continue
				}
				p := cands[rng.Intn(len(cands))]
				p.diverged = true
				cT := &modelPath{id: nextID, parent: p, tag: p.tag.WithPosition(pos, true)}
				cN := &modelPath{id: nextID + 1, parent: p, tag: p.tag.WithPosition(pos, false)}
				nextID += 2
				live[cT], live[cN] = true, true
				divs = append(divs, &modelDivergence{pos: pos, parent: p, childT: cT, childN: cN})
			case 1: // resolve a random unresolved divergence (out of order)
				var unresolved []*modelDivergence
				for _, d := range divs[committed:] {
					if !d.resolved {
						unresolved = append(unresolved, d)
					}
				}
				if len(unresolved) == 0 {
					continue
				}
				d := unresolved[rng.Intn(len(unresolved))]
				d.resolved = true
				d.outcome = rng.Intn(2) == 0
				wrong := d.childN
				if !d.outcome {
					wrong = d.childT
				}
				for p := range live {
					onWrong := p.tag.OnWrongPath(d.pos, d.outcome)
					inWrongSubtree := wrong.isAncestorOrSelf(p)
					if onWrong != inWrongSubtree {
						t.Fatalf("trial %d: kill mismatch for %q: tag says %v, tree says %v",
							trial, p.tag, onWrong, inWrongSubtree)
					}
					if onWrong {
						delete(live, p)
					}
				}
				commitFrontier()
			}
			check()
		}
	}
}
