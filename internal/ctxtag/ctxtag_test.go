package ctxtag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRootTagAllInvalid(t *testing.T) {
	r := Root()
	for i := 0; i < MaxPositions; i++ {
		if r.Valid(i) {
			t.Errorf("root tag has valid position %d", i)
		}
	}
	if r.String() != "XXXX" {
		t.Errorf("root tag string = %q, want XXXX", r.String())
	}
	if r.PopCount() != 0 {
		t.Errorf("root popcount = %d", r.PopCount())
	}
}

func TestWithPositionAndClear(t *testing.T) {
	tg := Root().WithPosition(0, true).WithPosition(2, false)
	if !tg.Valid(0) || !tg.Taken(0) {
		t.Error("position 0 should be valid taken")
	}
	if !tg.Valid(2) || tg.Taken(2) {
		t.Error("position 2 should be valid not-taken")
	}
	if tg.Valid(1) {
		t.Error("position 1 should be invalid")
	}
	if tg.String() != "TXNX" {
		t.Errorf("tag string = %q, want TXNX", tg.String())
	}
	if tg.PopCount() != 2 {
		t.Errorf("popcount = %d, want 2", tg.PopCount())
	}
	tg = tg.ClearPosition(0)
	if tg.Valid(0) {
		t.Error("cleared position 0 still valid")
	}
	if !tg.Valid(2) {
		t.Error("clearing position 0 disturbed position 2")
	}
}

func TestWithPositionOverwritesDirection(t *testing.T) {
	tg := Root().WithPosition(3, true).WithPosition(3, false)
	if tg.Taken(3) {
		t.Error("direction should be overwritten to not-taken")
	}
}

// TestPaperExamples reproduces the worked examples of Sec. 3.2.1:
// T(XXX) vs TNT(X) are related (second-level descendant), TT(XX) vs TNT(X)
// are not; and the comparison is rotation independent: (XX)T(X) vs T(X)TN.
func TestPaperExamples(t *testing.T) {
	// Positions are assigned left-to-right: index 0 is the leftmost symbol.
	tXXX := Root().WithPosition(0, true)
	tntX := Root().WithPosition(0, true).WithPosition(1, false).WithPosition(2, true)
	ttXX := Root().WithPosition(0, true).WithPosition(1, true)

	if !tXXX.IsAncestorOrSelf(tntX) {
		t.Error("T(XXX) must be ancestor of TNT(X)")
	}
	if !tntX.IsDescendantOrSelf(tXXX) {
		t.Error("TNT(X) must be descendant of T(XXX)")
	}
	if ttXX.Related(tntX) {
		t.Error("TT(XX) and TNT(X) must be unrelated")
	}

	// Rotate both tags right by two positions: (XX)T(X) and T(X)TN.
	// The ancestor relation must be unaffected.
	xxTx := Root().WithPosition(2, true)
	txTN := Root().WithPosition(0, true).WithPosition(2, true).WithPosition(3, false)
	if !xxTx.IsAncestorOrSelf(txTN) {
		t.Error("(XX)T(X) must be ancestor of T(X)TN after rotation")
	}
}

func TestAncestorReflexive(t *testing.T) {
	tg := Root().WithPosition(1, true).WithPosition(5, false)
	if !tg.IsAncestorOrSelf(tg) || !tg.IsDescendantOrSelf(tg) {
		t.Error("ancestor/descendant relations must be reflexive")
	}
}

func TestSiblingsUnrelated(t *testing.T) {
	parent := Root().WithPosition(0, true)
	left := parent.WithPosition(1, true)
	right := parent.WithPosition(1, false)
	if left.Related(right) {
		t.Error("sibling paths must be unrelated")
	}
	if !parent.IsAncestorOrSelf(left) || !parent.IsAncestorOrSelf(right) {
		t.Error("parent must be ancestor of both children")
	}
}

func TestOnWrongPath(t *testing.T) {
	// A divergence at position 2; branch resolves taken.
	taken := Root().WithPosition(2, true)
	notTaken := Root().WithPosition(2, false)
	unrelated := Root().WithPosition(1, true)
	if taken.OnWrongPath(2, true) {
		t.Error("taken child is on the correct path")
	}
	if !notTaken.OnWrongPath(2, true) {
		t.Error("not-taken child is on the wrong path")
	}
	if unrelated.OnWrongPath(2, true) {
		t.Error("a tag with position 2 invalid is never on the wrong path of it")
	}
	// Descendants of the wrong child are also wrong.
	grandchild := notTaken.WithPosition(0, true)
	if !grandchild.OnWrongPath(2, true) {
		t.Error("descendant of wrong child must be killed too")
	}
}

// Property: building a random ancestry chain yields tags where every prefix
// is an ancestor of every extension, and a flipped direction breaks the
// relation.
func TestAncestryChainProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		positions := rng.Perm(MaxPositions)[:1+rng.Intn(10)]
		chain := []Tag{Root()}
		cur := Root()
		for _, p := range positions {
			cur = cur.WithPosition(p, rng.Intn(2) == 0)
			chain = append(chain, cur)
		}
		for i := 0; i < len(chain); i++ {
			for j := i; j < len(chain); j++ {
				if !chain[i].IsAncestorOrSelf(chain[j]) {
					t.Fatalf("trial %d: chain[%d] not ancestor of chain[%d]", trial, i, j)
				}
				if j > i && chain[j].IsAncestorOrSelf(chain[i]) && chain[j] != chain[i] {
					t.Fatalf("trial %d: descendant claims ancestry of ancestor", trial)
				}
			}
		}
		// Flip one direction of the deepest tag: must no longer be a
		// descendant of any strict ancestor that has that position valid.
		p := positions[len(positions)-1]
		flipped := cur.WithPosition(p, !cur.Taken(p))
		for i := 0; i < len(chain)-1; i++ {
			if chain[i].Valid(p) && chain[i].IsAncestorOrSelf(flipped) {
				t.Fatalf("trial %d: flipped tag still descendant", trial)
			}
		}
	}
}

// Property: ClearPosition commutes with the ancestor relation the way
// branch commit requires: clearing the same position in two related tags
// keeps them related.
func TestClearPreservesRelation(t *testing.T) {
	f := func(v1, d1, v2, d2 uint16, pos uint8) bool {
		p := int(pos) % MaxPositions
		a := tagFromBits(uint32(v1), uint32(d1))
		b := a // make b a descendant by adding positions from v2
		for i := 0; i < 16; i++ {
			if v2&(1<<uint(i)) != 0 && !b.Valid(i) {
				b = b.WithPosition(i, d2&(1<<uint(i)) != 0)
			}
		}
		if !a.IsAncestorOrSelf(b) {
			return true // construction failed (can't happen), skip
		}
		return a.ClearPosition(p).IsAncestorOrSelf(b.ClearPosition(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func tagFromBits(valid, dir uint32) Tag {
	tg := Root()
	for i := 0; i < MaxPositions; i++ {
		if valid&(1<<uint(i)) != 0 {
			tg = tg.WithPosition(i, dir&(1<<uint(i)) != 0)
		}
	}
	return tg
}

func TestPositionRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range position")
		}
	}()
	Root().WithPosition(MaxPositions, true)
}

func TestAllocatorRoundRobinReuse(t *testing.T) {
	a := NewAllocator(4)
	var got []int
	for i := 0; i < 4; i++ {
		p, ok := a.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		got = append(got, p)
	}
	if got[0] != 0 || got[1] != 1 || got[2] != 2 || got[3] != 3 {
		t.Errorf("positions assigned left to right, got %v", got)
	}
	if _, ok := a.Alloc(); ok {
		t.Error("alloc should fail when full")
	}
	if a.InUse() != 4 {
		t.Errorf("InUse = %d, want 4", a.InUse())
	}
	// Free position 1; the next alloc must wrap around and reuse it.
	a.Free(1)
	p, ok := a.Alloc()
	if !ok || p != 1 {
		t.Errorf("expected wrap-around reuse of position 1, got %d ok=%v", p, ok)
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	a := NewAllocator(2)
	p, _ := a.Alloc()
	a.Free(p)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double free")
		}
	}()
	a.Free(p)
}

func TestAllocatorReset(t *testing.T) {
	a := NewAllocator(3)
	a.Alloc()
	a.Alloc()
	a.Reset()
	if a.InUse() != 0 {
		t.Errorf("InUse after reset = %d", a.InUse())
	}
	for i := 0; i < 3; i++ {
		if _, ok := a.Alloc(); !ok {
			t.Fatal("alloc after reset failed")
		}
	}
}

func TestAllocatorWidthBounds(t *testing.T) {
	for _, w := range []int{0, MaxPositions + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d: expected panic", w)
				}
			}()
			NewAllocator(w)
		}()
	}
	if NewAllocator(MaxPositions).Width() != MaxPositions {
		t.Error("width accessor")
	}
}

// Simulate the full tag life cycle: allocate, diverge, resolve, commit,
// reuse — checking the invariant that live sibling subtrees remain
// distinguishable at all times.
func TestTagLifecycleWithAllocator(t *testing.T) {
	a := NewAllocator(8)
	type path struct{ tag Tag }
	root := path{Root()}

	p1, _ := a.Alloc()
	left := path{root.tag.WithPosition(p1, true)}
	right := path{root.tag.WithPosition(p1, false)}

	p2, _ := a.Alloc()
	ll := path{left.tag.WithPosition(p2, true)}
	lr := path{left.tag.WithPosition(p2, false)}

	// Resolve divergence 2 as taken: lr is on the wrong path, ll survives.
	if !lr.tag.OnWrongPath(p2, true) || ll.tag.OnWrongPath(p2, true) {
		t.Fatal("resolution of divergence 2")
	}
	// right (sibling of left) must be unaffected by divergence 2.
	if right.tag.OnWrongPath(p2, true) {
		t.Fatal("unrelated path killed by resolution")
	}

	// Branch 2 commits: clear position p2 everywhere and free it.
	ll.tag = ll.tag.ClearPosition(p2)
	left.tag = left.tag.ClearPosition(p2)
	right.tag = right.tag.ClearPosition(p2)
	a.Free(p2)

	// p2 can now be reused for a new divergence below ll.
	p3, ok := a.Alloc()
	if !ok {
		t.Fatal("realloc failed")
	}
	nl := path{ll.tag.WithPosition(p3, true)}
	if !ll.tag.IsAncestorOrSelf(nl.tag) {
		t.Error("reused position breaks ancestry")
	}
	// The old, committed direction must not resurrect: nl relates to left.
	if !left.tag.IsAncestorOrSelf(nl.tag) {
		t.Error("cleared position should not block ancestry")
	}
}
