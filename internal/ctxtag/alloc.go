package ctxtag

import "fmt"

// Allocator hands out history positions to divergent branches and reclaims
// them when the branch commits. Following the paper, new positions are
// assigned left to right and the assignment wraps around to reuse vacated
// positions, which the rotation-independent hierarchy comparator makes safe
// without re-aligning any tags.
type Allocator struct {
	width int    // number of usable positions (the CTX tag bit-width / 2)
	used  uint32 // bit i set: position i currently owned by an in-flight branch
	next  int    // round-robin scan start
}

// NewAllocator creates an allocator with the given number of history
// positions (1..MaxPositions). The width bounds the number of unresolved
// divergent branches that can be in flight simultaneously.
func NewAllocator(width int) *Allocator {
	if width < 1 || width > MaxPositions {
		panic(fmt.Sprintf("ctxtag: allocator width %d out of range [1,%d]", width, MaxPositions))
	}
	return &Allocator{width: width}
}

// Width returns the number of history positions managed.
func (a *Allocator) Width() int { return a.width }

// Allocated reports whether history position pos is currently owned by an
// in-flight branch. Out-of-range positions report false, so invariant
// auditors can probe corrupted tag bits safely.
func (a *Allocator) Allocated(pos int) bool {
	return pos >= 0 && pos < a.width && a.used&(1<<uint(pos)) != 0
}

// InUse returns how many positions are currently allocated.
func (a *Allocator) InUse() int {
	n := 0
	for v := a.used; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Alloc returns a free history position, scanning round-robin from the last
// assignment so positions are reused in wrap-around order. ok is false when
// every position is owned by an unresolved branch, in which case the
// divergence must be skipped (the branch is handled monopath-style).
func (a *Allocator) Alloc() (pos int, ok bool) {
	for i := 0; i < a.width; i++ {
		p := (a.next + i) % a.width
		if a.used&(1<<uint(p)) == 0 {
			a.used |= 1 << uint(p)
			a.next = (p + 1) % a.width
			return p, true
		}
	}
	return 0, false
}

// Free releases a history position. Freeing an unallocated position is a
// bookkeeping bug in the caller and panics.
func (a *Allocator) Free(pos int) {
	if pos < 0 || pos >= a.width {
		panic(fmt.Sprintf("ctxtag: free of position %d outside width %d", pos, a.width))
	}
	if a.used&(1<<uint(pos)) == 0 {
		panic(fmt.Sprintf("ctxtag: double free of position %d", pos))
	}
	a.used &^= 1 << uint(pos)
}

// Reset releases all positions.
func (a *Allocator) Reset() {
	a.used = 0
	a.next = 0
}
