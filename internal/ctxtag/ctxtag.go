// Package ctxtag implements the PolyPath context-tag scheme of Klauser,
// Paithankar and Grunwald (ISCA '98, Sec. 3.2.1-3.2.2).
//
// A context (CTX) tag encodes the branch history that leads to an execution
// path. Each history position uses 2 bits: a valid bit and a direction bit
// (taken / not taken); an invalid position reads as X ("don't care").
// Tags define a tree-structured inheritance relation between paths: tag A
// is an ancestor of tag B iff every valid position of A is valid in B with
// the same direction. Because the comparison is independent of position
// order, history positions can be assigned round-robin and reused after the
// owning branch commits, without ever re-aligning tags — the property that
// distinguishes this scheme from the 1-bit Adaptive-Branch-Tree encoding,
// which forces in-order branch resolution.
package ctxtag

import (
	"fmt"
	"strings"
)

// MaxPositions is the maximum number of history positions a Tag can hold.
// A Tag packs 2 bits per position into a uint64.
const MaxPositions = 32

// Tag is a context tag: a fixed-width vector of 2-bit history positions.
// The zero Tag has every position invalid (the oldest path, "XXXX..." in
// the paper's notation) and is ready to use.
type Tag struct {
	valid uint32 // bit i set: position i holds a real direction
	dir   uint32 // bit i: direction at position i (1 = taken); meaningful only if valid
}

// Root returns the tag of the oldest path in the pipeline (all positions
// invalid). It equals the zero value; the function exists for readability.
func Root() Tag { return Tag{} }

// WithPosition returns t extended with a branch direction at history
// position pos. This is how a divergent branch creates the tags of its two
// successor paths: parent.WithPosition(p, true) and
// parent.WithPosition(p, false).
func (t Tag) WithPosition(pos int, taken bool) Tag {
	checkPos(pos)
	t.valid |= 1 << uint(pos)
	if taken {
		t.dir |= 1 << uint(pos)
	} else {
		t.dir &^= 1 << uint(pos)
	}
	return t
}

// ClearPosition returns t with history position pos invalidated. The
// pipeline broadcasts this on the branch commit bus: once the branch that
// owns pos commits, every in-flight tag drops that position so it can be
// reused by new branches.
func (t Tag) ClearPosition(pos int) Tag {
	checkPos(pos)
	t.valid &^= 1 << uint(pos)
	t.dir &^= 1 << uint(pos)
	return t
}

// Valid reports whether history position pos holds a real direction.
func (t Tag) Valid(pos int) bool {
	checkPos(pos)
	return t.valid&(1<<uint(pos)) != 0
}

// Taken reports the direction at position pos. It is only meaningful when
// Valid(pos) is true.
func (t Tag) Taken(pos int) bool {
	checkPos(pos)
	return t.dir&(1<<uint(pos)) != 0
}

// PopCount returns the number of valid history positions in t, i.e. the
// path's depth below the oldest unresolved divergence.
func (t Tag) PopCount() int {
	n := 0
	for v := t.valid; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// IsAncestorOrSelf reports whether t is an ancestor of (or equal to) other
// in the path tree: every valid position of t must be valid in other with
// the same direction. This is the hierarchy comparator of Fig. 5; it is
// used by the instruction-window kill logic and by the store buffer's
// forwarding filter.
func (t Tag) IsAncestorOrSelf(other Tag) bool {
	if t.valid&other.valid != t.valid {
		return false
	}
	return (t.dir^other.dir)&t.valid == 0
}

// IsDescendantOrSelf reports whether t is a descendant of (or equal to)
// other.
func (t Tag) IsDescendantOrSelf(other Tag) bool { return other.IsAncestorOrSelf(t) }

// Related reports whether one of the two tags is an ancestor of the other
// (i.e. the paths lie on one line of the tree). Unrelated paths are on
// opposite sides of some divergence and never interact through register or
// memory dataflow.
func (t Tag) Related(other Tag) bool {
	return t.IsAncestorOrSelf(other) || other.IsAncestorOrSelf(t)
}

// OnWrongPath reports whether a tag lies on the wrong side of a branch that
// resolved with the given outcome at history position pos. This is the
// per-window-entry state machine's "resolution" operation: the entry must
// be killed iff its tag has pos valid with the opposite direction.
func (t Tag) OnWrongPath(pos int, outcome bool) bool {
	checkPos(pos)
	return t.Valid(pos) && t.Taken(pos) != outcome
}

// String renders the tag in the paper's T/N/X notation, position 0 first,
// trimmed to the highest valid position (minimum 4 positions shown).
func (t Tag) String() string {
	hi := 4
	for i := 0; i < MaxPositions; i++ {
		if t.Valid(i) && i+1 > hi {
			hi = i + 1
		}
	}
	var b strings.Builder
	for i := 0; i < hi; i++ {
		switch {
		case !t.Valid(i):
			b.WriteByte('X')
		case t.Taken(i):
			b.WriteByte('T')
		default:
			b.WriteByte('N')
		}
	}
	return b.String()
}

func checkPos(pos int) {
	if pos < 0 || pos >= MaxPositions {
		panic(fmt.Sprintf("ctxtag: position %d out of range [0,%d)", pos, MaxPositions))
	}
}
