// Package obs is the observability subsystem: bounded, lock-free capture
// of cycle-level pipeline trace events (ring.go), exporters for the
// captured streams — Chrome/Perfetto trace_event JSON (export.go) and a
// Konata-style per-instruction pipeline timeline (konata.go) — and build
// introspection (Version).
//
// The subsystem is strictly observation-only: attaching a tracer never
// changes simulation results (the golden-table checks enforce this), and
// with tracing disabled the simulator's hot path pays only a nil check
// (see BenchmarkTracerOff / BenchmarkTracerOn at the repository root).
// The sibling package obs/metrics is the operational-metrics registry
// behind polyserve's GET /metrics endpoint.
package obs

import (
	"fmt"
	"runtime/debug"

	"repro/internal/pipeline"
)

// Version returns the build identity of the running binary: the main
// module version plus the VCS revision embedded by the Go toolchain
// (runtime/debug.ReadBuildInfo). It is reported by the -version flag of
// every command and by polyserve's GET /v1/healthz.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "(unknown)"
	}
	ver := bi.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	rev, modified := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if rev == "" {
		return fmt.Sprintf("%s %s (%s)", bi.Main.Path, ver, bi.GoVersion)
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	dirty := ""
	if modified {
		dirty = "-dirty"
	}
	return fmt.Sprintf("%s %s rev %s%s (%s)", bi.Main.Path, ver, rev, dirty, bi.GoVersion)
}

// Tee fans one pipeline event stream out to several tracers, so e.g. a
// human-readable PipeTrace and a Ring capture can observe the same run.
// Nil tracers are skipped; with zero or one non-nil tracer the fan-out
// indirection is elided.
func Tee(tracers ...pipeline.Tracer) pipeline.Tracer {
	live := make([]pipeline.Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeTracer(live)
}

type teeTracer []pipeline.Tracer

func (t teeTracer) Event(e pipeline.TraceEvent) {
	for _, tr := range t {
		tr.Event(e)
	}
}
