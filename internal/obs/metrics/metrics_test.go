package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", `state="done"`, "Jobs.")
	g := r.Gauge("depth", "", "Depth.")
	c.Inc()
	c.Add(4)
	g.Set(3)
	g.Add(-1.5)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestWritePrometheusExactText(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", `state="done"`, "Jobs by state.").Add(3)
	r.Counter("jobs_total", `state="failed"`, "").Add(1)
	r.GaugeFunc("queue_depth", "", "Waiting jobs.", func() float64 { return 2 })
	h := r.Histogram("latency_seconds", "", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(10)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP jobs_total Jobs by state.",
		"# TYPE jobs_total counter",
		`jobs_total{state="done"} 3`,
		`jobs_total{state="failed"} 1`,
		"# HELP queue_depth Waiting jobs.",
		"# TYPE queue_depth gauge",
		"queue_depth 2",
		"# HELP latency_seconds Latency.",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_sum 11.05",
		"latency_seconds_count 4",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", "", []float64{1, 2})
	h.Observe(1) // exactly on a bound: le="1" is inclusive
	h.Observe(2)
	h.Observe(2.0001)
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("bucket counts = %v, want [1 1 1]", s.Counts)
	}
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as both counter and gauge should panic")
		}
	}()
	r.Gauge("x", "", "")
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", "")
	g := r.Gauge("g", "", "")
	h := r.Histogram("h", "", "", LatencyBuckets())
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.02)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*per)
	}
	if want := float64(workers*per) * 0.02; s.Sum < want*0.999 || s.Sum > want*1.001 {
		t.Fatalf("histogram sum = %v, want ~%v", s.Sum, want)
	}
}

func TestHistogramFunc(t *testing.T) {
	r := NewRegistry()
	r.HistogramFunc("occupancy", "", "Occupancy.", func() HistogramSnapshot {
		return HistogramSnapshot{Bounds: []float64{0, 1}, Counts: []uint64{5, 3, 2}, Count: 10, Sum: 7}
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`occupancy_bucket{le="0"} 5`,
		`occupancy_bucket{le="1"} 8`,
		`occupancy_bucket{le="+Inf"} 10`,
		"occupancy_sum 7",
		"occupancy_count 10",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}
