// Package metrics is a small, dependency-free operational-metrics
// registry in the Prometheus data model: counters, gauges and histograms
// with optional constant labels, rendered in the Prometheus text
// exposition format (WritePrometheus).
//
// The write paths are atomic and allocation-free — a Counter.Add is one
// atomic add, a Histogram.Observe is two atomic adds plus a CAS on the
// sum — so hot paths (worker goroutines reporting per-cell completions)
// never contend on a lock. Registration, by contrast, is expected at
// startup and takes the registry lock.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (stored as float64 bits).
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (CAS loop; d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative le-buckets, Prometheus
// style. Observe is lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an exportable histogram state: per-bucket
// (non-cumulative) counts aligned with Bounds, plus one overflow bucket
// (len(Counts) == len(Bounds)+1), and the total count and sum.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// LatencyBuckets are the default duration bounds (seconds) for job/cell
// latency histograms: 10ms up to 5 minutes.
func LatencyBuckets() []float64 {
	return []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
}

// ShortLatencyBuckets are duration bounds (seconds) for fast, frequent
// operations such as individual sweep cells: 100µs up to 10s. Use these
// where LatencyBuckets would collapse everything into its first bucket.
func ShortLatencyBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// metric is one labeled sample source inside a family.
type metric struct {
	labels string // raw label body, e.g. `state="done"` (may be empty)
	value  func() float64
	hist   func() HistogramSnapshot // histograms only
}

// family is one metric name with HELP/TYPE and its labeled samples.
type family struct {
	name, help, typ string
	metrics         []*metric
}

// Registry holds metric families and renders them in the Prometheus text
// format. The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register adds a sample to the named family, creating it on first use
// and panicking on a type conflict (programmer error, caught at startup).
func (r *Registry) register(name, labels, help, typ string, m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	m.labels = labels
	f.metrics = append(f.metrics, m)
}

// Counter registers and returns a counter. labels is the raw constant
// label body (`state="done"`), empty for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	r.register(name, labels, help, "counter", &metric{value: func() float64 { return float64(c.Value()) }})
	return c
}

// CounterFunc registers a counter whose value is read from f at scrape
// time — the adapter for pre-existing atomic counters (internal/stats).
func (r *Registry) CounterFunc(name, labels, help string, f func() float64) {
	r.register(name, labels, help, "counter", &metric{value: f})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	g := &Gauge{}
	r.register(name, labels, help, "gauge", &metric{value: g.Value})
	return g
}

// GaugeFunc registers a gauge read from f at scrape time.
func (r *Registry) GaugeFunc(name, labels, help string, f func() float64) {
	r.register(name, labels, help, "gauge", &metric{value: f})
}

// Histogram registers and returns a histogram over the given ascending
// upper bounds.
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, labels, help, "histogram", &metric{hist: h.Snapshot})
	return h
}

// HistogramFunc registers a histogram whose snapshot is read from f at
// scrape time — the adapter for external distributions such as the
// simulator's per-cycle occupancy histograms.
func (r *Registry) HistogramFunc(name, labels, help string, f func() HistogramSnapshot) {
	r.register(name, labels, help, "histogram", &metric{hist: f})
}

func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sampleName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func histSampleName(name, labels, le string) string {
	body := `le="` + le + `"`
	if labels != "" {
		body = labels + "," + body
	}
	return name + "_bucket{" + body + "}"
}

// WritePrometheus renders every family in registration order as
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.fams[name]
		cp := *f
		cp.metrics = append([]*metric(nil), f.metrics...)
		fams = append(fams, &cp)
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, m := range f.metrics {
			if f.typ == "histogram" {
				s := m.hist()
				cum := uint64(0)
				for i, b := range s.Bounds {
					cum += s.Counts[i]
					if _, err := fmt.Fprintf(w, "%s %d\n", histSampleName(f.name, m.labels, fmtFloat(b)), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", histSampleName(f.name, m.labels, "+Inf"), s.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name+"_sum", m.labels), fmtFloat(s.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_count", m.labels), s.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name, m.labels), fmtFloat(m.value())); err != nil {
				return err
			}
		}
	}
	return nil
}
