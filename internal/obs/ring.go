package obs

import (
	"sync/atomic"

	"repro/internal/pipeline"
)

// Ring is a bounded, lock-free pipeline-event sink: a power-of-two ring
// buffer that keeps the most recent events and counts the rest as
// dropped. It implements pipeline.Tracer.
//
// Writes are wait-free — one atomic fetch-add claims a slot, one store
// fills it — so the tracer adds no locks to the simulator's cycle loop,
// and Total/Dropped may be read concurrently to observe progress. The
// write side is single-producer: one ring belongs to one simulation
// (the harness allocates a ring per cell; polysim per run). Concurrent
// machines each get their own ring rather than sharing one. Snapshot
// must only be called after the producing simulation has finished; it
// is not synchronized against the writer.
type Ring struct {
	buf  []pipeline.TraceEvent
	mask uint64
	pos  atomic.Uint64 // total events ever written
}

// NewRing creates a ring that retains the last capacity events (rounded
// up to a power of two, minimum 16).
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{buf: make([]pipeline.TraceEvent, n), mask: uint64(n - 1)}
}

// Event implements pipeline.Tracer.
func (r *Ring) Event(e pipeline.TraceEvent) {
	i := r.pos.Add(1) - 1
	r.buf[i&r.mask] = e
}

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int { return len(r.buf) }

// Total returns how many events were ever offered to the ring.
func (r *Ring) Total() uint64 { return r.pos.Load() }

// Dropped returns how many events were overwritten (offered beyond
// capacity); the ring kept the most recent Cap() of them.
func (r *Ring) Dropped() uint64 {
	if t := r.pos.Load(); t > uint64(len(r.buf)) {
		return t - uint64(len(r.buf))
	}
	return 0
}

// Snapshot copies the retained events out in arrival order (oldest
// first). Call only after the traced simulations have completed.
func (r *Ring) Snapshot() []pipeline.TraceEvent {
	total := r.pos.Load()
	n := total
	if n > uint64(len(r.buf)) {
		n = uint64(len(r.buf))
	}
	out := make([]pipeline.TraceEvent, n)
	start := total - n
	for i := uint64(0); i < n; i++ {
		out[i] = r.buf[(start+i)&r.mask]
	}
	return out
}
