package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/pipeline"
)

// CellTrace is the captured event stream of one simulated cell (one
// benchmark under one configuration), the unit the exporters consume.
// A single polysim run is one cell; a harness sweep or polyserve job
// produces one per simulated (non-memoized) cell.
type CellTrace struct {
	// Label identifies the cell, e.g. "compress/see" or "gcc/monopath/r1".
	Label string
	// Events is the retained event stream in arrival order.
	Events []pipeline.TraceEvent
	// Dropped counts events lost to the capture bound (the ring kept the
	// most recent ones).
	Dropped uint64
}

// chromeEvent is one entry of the Chrome trace_event format, the JSON
// schema Perfetto (ui.perfetto.dev) and chrome://tracing load natively.
// Timestamps are in microseconds; we map one simulated cycle to 1us.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container variant of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace renders the captured cells as Chrome trace_event JSON.
// Each cell becomes one "process" (pid = cell index) whose "threads" are
// the CTX-table path slots, so Perfetto shows one swim lane per live
// path; every pipeline event is a 1-cycle complete event carrying the
// sequence number, PC, CTX tag and note as args. Events are emitted in
// nondecreasing timestamp order.
func WriteChromeTrace(w io.Writer, cells []CellTrace) error {
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	out.OtherData = map[string]any{"generator": "polypath obs " + Version()}
	for pid, cell := range cells {
		// Metadata: name the process after the cell and each thread after
		// its CTX path slot.
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": cell.Label},
		})
		if cell.Dropped > 0 {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_labels", Ph: "M", Pid: pid,
				Args: map[string]any{"labels": fmt.Sprintf("%d events dropped at capture", cell.Dropped)},
			})
		}
		paths := map[int]bool{}
		events := make([]chromeEvent, 0, len(cell.Events))
		for _, e := range cell.Events {
			tid := e.Path
			if tid < 0 {
				tid = 0
			}
			paths[tid] = true
			args := map[string]any{"seq": e.Seq, "pc": e.PC, "ctx": e.Tag}
			if e.Note != "" {
				args["note"] = e.Note
			}
			events = append(events, chromeEvent{
				Name: e.Kind.String(),
				Cat:  "pipeline",
				Ph:   "X",
				Ts:   e.Cycle,
				Dur:  1,
				Pid:  pid,
				Tid:  tid,
				Args: args,
			})
		}
		tids := make([]int, 0, len(paths))
		for tid := range paths {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("path %d", tid)},
			})
		}
		// Arrival order is already cycle order per machine, but rings may
		// interleave producers; sort so consumers can rely on monotonic
		// timestamps.
		sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
		out.TraceEvents = append(out.TraceEvents, events...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
