package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/pipeline"
)

// Konata stage mnemonics for the pipeline's trace kinds, in stage order.
const (
	konataStageFetch     = "F"
	konataStageRename    = "Rn"
	konataStageExecute   = "X"
	konataStageWriteback = "Wb"
)

// WriteKonata renders one cell's event stream as a Konata-style pipeline
// timeline (the "Kanata" log format of the Onikiri/Konata visualizer):
// one row per dynamic instruction, with stage start/end records as the
// instruction moves through fetch, rename, execute and writeback, and a
// retire record marking commit (type 0) or squash (type 1).
//
// Only per-instruction events (Seq != 0) appear; path-level control
// events carry no timeline row. Instructions whose fetch event was lost
// to the capture bound are started lazily at their first retained event.
func WriteKonata(w io.Writer, events []pipeline.TraceEvent) error {
	evs := make([]pipeline.TraceEvent, 0, len(events))
	for _, e := range events {
		if e.Seq != 0 {
			evs = append(evs, e)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Kanata\t0004\n")
	var (
		cur     uint64 // current log cycle
		started bool
		nextID  uint64
		ids     = map[uint64]uint64{} // seq -> dense row id
		stage   = map[uint64]string{} // seq -> open stage
		retired = map[uint64]bool{}
		retires uint64
	)
	advance := func(cycle uint64) {
		if !started {
			fmt.Fprintf(bw, "C=\t%d\n", cycle)
			cur, started = cycle, true
			return
		}
		if cycle > cur {
			fmt.Fprintf(bw, "C\t%d\n", cycle-cur)
			cur = cycle
		}
	}
	begin := func(e pipeline.TraceEvent) uint64 {
		id, ok := ids[e.Seq]
		if !ok {
			id = nextID
			nextID++
			ids[e.Seq] = id
			fmt.Fprintf(bw, "I\t%d\t%d\t%d\n", id, e.Seq, e.Path)
			label := e.Note
			if label == "" {
				label = fmt.Sprintf("pc=%d", e.PC)
			}
			fmt.Fprintf(bw, "L\t%d\t0\t%d: %s [%s]\n", id, e.PC, label, e.Tag)
		}
		return id
	}
	enter := func(id uint64, seq uint64, st string) {
		if open := stage[seq]; open != "" {
			fmt.Fprintf(bw, "E\t%d\t0\t%s\n", id, open)
		}
		stage[seq] = st
		if st != "" {
			fmt.Fprintf(bw, "S\t%d\t0\t%s\n", id, st)
		}
	}
	for _, e := range evs {
		if retired[e.Seq] {
			continue
		}
		advance(e.Cycle)
		id := begin(e)
		switch e.Kind {
		case pipeline.TraceFetch:
			enter(id, e.Seq, konataStageFetch)
		case pipeline.TraceRename:
			enter(id, e.Seq, konataStageRename)
		case pipeline.TraceIssue:
			enter(id, e.Seq, konataStageExecute)
		case pipeline.TraceWriteback:
			enter(id, e.Seq, konataStageWriteback)
		case pipeline.TraceCommit:
			enter(id, e.Seq, "")
			retires++
			fmt.Fprintf(bw, "R\t%d\t%d\t0\n", id, retires)
			retired[e.Seq] = true
		case pipeline.TraceKill:
			enter(id, e.Seq, "")
			fmt.Fprintf(bw, "R\t%d\t0\t1\n", id)
			retired[e.Seq] = true
		}
	}
	return bw.Flush()
}
