package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/pipeline"
)

func ev(cycle, seq uint64, kind pipeline.TraceKind, path int) pipeline.TraceEvent {
	return pipeline.TraceEvent{Cycle: cycle, Kind: kind, Seq: seq, PC: int(seq), Path: path, Tag: "X"}
}

func TestRingRoundsCapacityUp(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {1000, 1024}, {1 << 16, 1 << 16},
	} {
		if got := NewRing(tc.ask).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestRingKeepsMostRecentInOrder(t *testing.T) {
	r := NewRing(16)
	const n = 40 // overflow a 16-slot ring
	for i := uint64(1); i <= n; i++ {
		r.Event(ev(i, i, pipeline.TraceFetch, 0))
	}
	if r.Total() != n {
		t.Fatalf("Total = %d, want %d", r.Total(), n)
	}
	if want := uint64(n - 16); r.Dropped() != want {
		t.Fatalf("Dropped = %d, want %d", r.Dropped(), want)
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("Snapshot len = %d, want 16", len(snap))
	}
	for i, e := range snap {
		if want := uint64(n - 16 + 1 + i); e.Seq != want {
			t.Fatalf("snap[%d].Seq = %d, want %d (oldest-first order)", i, e.Seq, want)
		}
	}
}

func TestRingUnderfilled(t *testing.T) {
	r := NewRing(64)
	for i := uint64(1); i <= 5; i++ {
		r.Event(ev(i, i, pipeline.TraceCommit, 1))
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
	snap := r.Snapshot()
	if len(snap) != 5 || snap[0].Seq != 1 || snap[4].Seq != 5 {
		t.Fatalf("unexpected snapshot %+v", snap)
	}
}

// TestRingConcurrentProgressReads: one producer writes while another
// goroutine polls Total/Dropped (the -debug-addr /metrics pattern) —
// the counters must be readable mid-run without a data race.
func TestRingConcurrentProgressReads(t *testing.T) {
	r := NewRing(1 << 10)
	const n = 40000
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				if r.Dropped() > r.Total() {
					t.Error("Dropped exceeded Total mid-run")
					return
				}
			}
		}
	}()
	for i := uint64(1); i <= n; i++ {
		r.Event(ev(i, i, pipeline.TraceIssue, 0))
	}
	close(done)
	wg.Wait()
	if r.Total() != n {
		t.Fatalf("Total = %d, want %d", r.Total(), n)
	}
	if got := len(r.Snapshot()); got != 1<<10 {
		t.Fatalf("Snapshot len = %d, want full ring %d", got, 1<<10)
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil {
		t.Fatal("Tee() should elide to nil")
	}
	if Tee(nil, nil) != nil {
		t.Fatal("Tee(nil, nil) should elide to nil")
	}
	a, b := NewRing(16), NewRing(16)
	if got := Tee(nil, a); got != pipeline.Tracer(a) {
		t.Fatal("Tee with one live tracer should return it directly")
	}
	tee := Tee(a, b)
	tee.Event(ev(1, 1, pipeline.TraceFetch, 0))
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("fan-out missed a tracer: a=%d b=%d", a.Total(), b.Total())
	}
}

func TestVersionNonEmpty(t *testing.T) {
	v := Version()
	if v == "" || v == "(unknown)" {
		t.Fatalf("Version() = %q; want build info under 'go test'", v)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	cells := []CellTrace{
		{Label: "compress/see", Events: []pipeline.TraceEvent{
			ev(3, 2, pipeline.TraceRename, 1),
			ev(1, 1, pipeline.TraceFetch, 0),
			{Cycle: 2, Kind: pipeline.TraceDiverge, Path: -1, Tag: "T", Note: "split"},
		}},
		{Label: "gcc/monopath", Events: []pipeline.TraceEvent{ev(5, 9, pipeline.TraceCommit, 0)}, Dropped: 7},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, cells); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var procNames []string
	lastTs := map[int]uint64{}
	var xPerPid [2]int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procNames = append(procNames, e.Args["name"].(string))
			}
		case "X":
			if e.Ts < lastTs[e.Pid] {
				t.Fatalf("pid %d: ts %d after %d — not monotonic", e.Pid, e.Ts, lastTs[e.Pid])
			}
			lastTs[e.Pid] = e.Ts
			xPerPid[e.Pid]++
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
	}
	if len(procNames) != 2 || procNames[0] != "compress/see" || procNames[1] != "gcc/monopath" {
		t.Fatalf("process names %v", procNames)
	}
	if xPerPid[0] != 3 || xPerPid[1] != 1 {
		t.Fatalf("event counts per cell = %v", xPerPid)
	}
	// A path of -1 (unknown) must land on a valid tid, not break the JSON.
	if !strings.Contains(buf.String(), `"note":"split"`) {
		t.Fatal("diverge note lost")
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	cells := []CellTrace{{Label: "a/b", Events: []pipeline.TraceEvent{
		ev(1, 1, pipeline.TraceFetch, 2), ev(1, 2, pipeline.TraceFetch, 0), ev(2, 1, pipeline.TraceRename, 1),
	}}}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, cells); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, cells); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same cells differ byte-wise")
	}
}

func TestWriteKonata(t *testing.T) {
	events := []pipeline.TraceEvent{
		{Cycle: 1, Kind: pipeline.TraceFetch, Seq: 1, PC: 0, Path: 0, Tag: "X", Note: "li r1, 5"},
		{Cycle: 1, Kind: pipeline.TraceFetch, Seq: 2, PC: 1, Path: 0, Tag: "X", Note: "beq r1, r0"},
		{Cycle: 2, Kind: pipeline.TraceRename, Seq: 1, PC: 0, Path: 0, Tag: "X"},
		{Cycle: 3, Kind: pipeline.TraceIssue, Seq: 1, PC: 0, Path: 0, Tag: "X"},
		{Cycle: 4, Kind: pipeline.TraceWriteback, Seq: 1, PC: 0, Path: 0, Tag: "X"},
		{Cycle: 5, Kind: pipeline.TraceCommit, Seq: 1, PC: 0, Path: 0, Tag: "X"},
		{Cycle: 5, Kind: pipeline.TraceKill, Seq: 2, PC: 1, Path: 0, Tag: "X"},
		{Cycle: 5, Kind: pipeline.TraceResolve, Seq: 0, Path: 0, Tag: "X", Note: "path-level"},
	}
	var buf bytes.Buffer
	if err := WriteKonata(&buf, events); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() || sc.Text() != "Kanata\t0004" {
		t.Fatalf("bad header %q", sc.Text())
	}
	var commits, squashes, rows int
	for sc.Scan() {
		f := strings.Split(sc.Text(), "\t")
		switch f[0] {
		case "I":
			rows++
		case "R":
			if f[3] == "0" {
				commits++
			} else {
				squashes++
			}
		}
	}
	if rows != 2 {
		t.Fatalf("rows = %d, want 2 (path-level event must not create a row)", rows)
	}
	if commits != 1 || squashes != 1 {
		t.Fatalf("commits=%d squashes=%d, want 1 and 1", commits, squashes)
	}
}
