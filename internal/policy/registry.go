package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultEpochCycles is the epoch length used when a spec leaves
// EpochCycles zero: long enough that epoch bookkeeping is invisible in the
// cycle loop, short enough to catch phase changes in the scaled workloads.
const DefaultEpochCycles = 4096

// MaxEpochCycles bounds the epoch length (2^24 cycles ≈ any full run).
const MaxEpochCycles = 1 << 24

// MinEpochCycles bounds the epoch length from below: shorter epochs give
// the controller statistically meaningless deltas.
const MinEpochCycles = 64

// Spec is the kind-agnostic description of a policy controller: which
// controller kind runs, the epoch length in cycles, the candidate setting
// set it selects over, and the kind's extra integer parameters. A
// registered kind's Normalize canonicalizes the fields it does not use, so
// specs describing the same controller compare and hash identically.
type Spec struct {
	Kind        string
	EpochCycles int
	Candidates  []Setting
	// Params carries integer parameters by schema name; a kind's Normalize
	// fills defaults and rejects unknown names. nil and empty are
	// equivalent. Fractional parameters travel in milli-units (e.g.
	// hysteresis_milli 50 = 5%), keeping the wire format integer-only.
	Params map[string]int
}

// Param returns the named parameter, or def when absent.
func (s Spec) Param(name string, def int) int {
	if v, ok := s.Params[name]; ok {
		return v
	}
	return def
}

// SpecError reports a spec field that violates a registered controller's
// constraints; the pipeline converts it into its typed config error.
type SpecError struct {
	Kind   string
	Field  string
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("policy: %s: %s: %s", e.Kind, e.Field, e.Reason)
}

// Entry describes one registered controller kind. Normalize validates the
// spec and returns its canonical form (inert fields zeroed, defaults
// filled); New constructs the controller from a normalized spec.
type Entry struct {
	Kind      string
	Doc       string
	Normalize func(Spec) (Spec, error)
	New       func(Spec) (Controller, error)
}

type registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

var reg = &registry{entries: make(map[string]Entry)}

// Register adds a controller kind; duplicate or malformed registrations
// are errors, never silent replacement.
func Register(e Entry) error {
	e.Kind = strings.ToLower(strings.TrimSpace(e.Kind))
	if e.Kind == "" {
		return fmt.Errorf("policy: register: empty kind")
	}
	if e.New == nil {
		return fmt.Errorf("policy: register %q: nil factory", e.Kind)
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, dup := reg.entries[e.Kind]; dup {
		return fmt.Errorf("policy: register %q: already registered", e.Kind)
	}
	reg.entries[e.Kind] = e
	return nil
}

// MustRegister is Register for init-time built-ins; it panics on error.
func MustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// Lookup returns the entry for a kind (case-insensitive).
func Lookup(kind string) (Entry, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	e, ok := reg.entries[strings.ToLower(strings.TrimSpace(kind))]
	return e, ok
}

// Kinds returns the registered kind spellings, sorted.
func Kinds() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]string, 0, len(reg.entries))
	for k := range reg.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Normalize validates s against its kind's constraints and returns the
// canonical spec. The returned spec never aliases s.Candidates or
// s.Params.
func Normalize(s Spec) (Spec, error) {
	e, ok := Lookup(s.Kind)
	if !ok {
		return Spec{}, fmt.Errorf("policy: unknown controller kind %q (registered: %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
	s.Kind = e.Kind
	ns, err := e.Normalize(s)
	if err != nil {
		return Spec{}, err
	}
	ns.Candidates = append([]Setting(nil), ns.Candidates...)
	if len(ns.Params) == 0 {
		ns.Params = nil
	} else {
		clone := make(map[string]int, len(ns.Params))
		for k, v := range ns.Params {
			clone[k] = v
		}
		ns.Params = clone
	}
	return ns, nil
}

// Build normalizes s and constructs the controller.
func Build(s Spec) (Controller, error) {
	ns, err := Normalize(s)
	if err != nil {
		return nil, err
	}
	e, _ := Lookup(ns.Kind)
	return e.New(ns)
}

// normalizeCommon validates the fields every built-in kind shares: epoch
// length and candidate knob ranges.
func normalizeCommon(kind string, s Spec) (Spec, error) {
	if s.EpochCycles == 0 {
		s.EpochCycles = DefaultEpochCycles
	}
	if s.EpochCycles < MinEpochCycles || s.EpochCycles > MaxEpochCycles {
		return Spec{}, &SpecError{Kind: kind, Field: "EpochCycles", Reason: fmt.Sprintf("%d out of [%d,%d] (0 selects the default %d)", s.EpochCycles, MinEpochCycles, MaxEpochCycles, DefaultEpochCycles)}
	}
	for i, c := range s.Candidates {
		if c.ConfThreshold < -1 || c.ConfThreshold > 255 {
			return Spec{}, &SpecError{Kind: kind, Field: fmt.Sprintf("Candidates[%d].ConfThreshold", i), Reason: fmt.Sprintf("%d out of [-1,255] (-1 = saturation, 0 = configured)", c.ConfThreshold)}
		}
		if c.MaxDivergences < -1 || c.MaxDivergences > 1<<20 {
			return Spec{}, &SpecError{Kind: kind, Field: fmt.Sprintf("Candidates[%d].MaxDivergences", i), Reason: fmt.Sprintf("%d out of [-1,%d] (-1 = divergence off, 0 = configured)", c.MaxDivergences, 1<<20)}
		}
		if c.FetchWidth < 0 || c.FetchWidth > 64 {
			return Spec{}, &SpecError{Kind: kind, Field: fmt.Sprintf("Candidates[%d].FetchWidth", i), Reason: fmt.Sprintf("%d out of [0,64] (0 = configured width)", c.FetchWidth)}
		}
	}
	return s, nil
}

// paramSchema validates s.Params against a closed name set with defaults:
// unknown names are errors, absent names take their defaults, and the
// returned spec carries the fully-filled canonical map.
func paramSchema(kind string, s Spec, defaults map[string]int, check func(name string, v int) error) (Spec, error) {
	for name := range s.Params {
		if _, ok := defaults[name]; !ok {
			names := make([]string, 0, len(defaults))
			for k := range defaults {
				names = append(names, k)
			}
			sort.Strings(names)
			return Spec{}, &SpecError{Kind: kind, Field: "Params." + name, Reason: fmt.Sprintf("unknown parameter (accepted: %s)", strings.Join(names, ", "))}
		}
	}
	filled := make(map[string]int, len(defaults))
	for name, def := range defaults {
		filled[name] = s.Param(name, def)
	}
	for name, v := range filled {
		if err := check(name, v); err != nil {
			return Spec{}, &SpecError{Kind: kind, Field: "Params." + name, Reason: err.Error()}
		}
	}
	s.Params = filled
	return s, nil
}
