package policy

import (
	"reflect"
	"testing"
)

func TestRegistryRejectsBadEntries(t *testing.T) {
	if err := Register(Entry{Kind: "", New: func(Spec) (Controller, error) { return nil, nil }}); err == nil {
		t.Fatal("empty kind accepted")
	}
	if err := Register(Entry{Kind: "nilfactory"}); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := Register(Entry{Kind: "STATIC", New: func(Spec) (Controller, error) { return nil, nil }}); err == nil {
		t.Fatal("duplicate kind (case-folded) accepted")
	}
}

func TestKindsSortedAndComplete(t *testing.T) {
	kinds := Kinds()
	want := map[string]bool{"static": false, "oracle": false, "online": false}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("Kinds not sorted: %v", kinds)
		}
	}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("built-in kind %q missing from Kinds(): %v", k, kinds)
		}
	}
}

func TestNormalizeDoesNotAlias(t *testing.T) {
	in := Spec{Kind: "online", Candidates: []Setting{{}, {MaxDivergences: -1}}, Params: map[string]int{"explore_every": 4}}
	ns, err := Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Candidates[0].FetchWidth = 99
	in.Params["explore_every"] = 99
	if ns.Candidates[0].FetchWidth == 99 {
		t.Fatal("normalized spec aliases input candidates")
	}
	if ns.Params["explore_every"] == 99 {
		t.Fatal("normalized spec aliases input params")
	}
	if ns.EpochCycles != DefaultEpochCycles {
		t.Fatalf("EpochCycles default not filled: %d", ns.EpochCycles)
	}
	// Defaults are filled so equivalent specs canonicalize identically.
	if ns.Params["hysteresis_milli"] != 50 || ns.Params["ema_milli"] != 300 {
		t.Fatalf("online defaults not filled: %v", ns.Params)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []Spec{
		{Kind: "nosuch"},
		{Kind: "static", EpochCycles: 1},
		{Kind: "static", EpochCycles: MaxEpochCycles + 1},
		{Kind: "static", Candidates: []Setting{{}, {}}},
		{Kind: "static", Candidates: []Setting{{ConfThreshold: -2}}},
		{Kind: "static", Candidates: []Setting{{ConfThreshold: 256}}},
		{Kind: "static", Candidates: []Setting{{MaxDivergences: -2}}},
		{Kind: "static", Candidates: []Setting{{FetchWidth: -1}}},
		{Kind: "static", Params: map[string]int{"bogus": 1}},
		{Kind: "oracle"},
		{Kind: "oracle", Candidates: []Setting{{}}, Params: map[string]int{"sched_len": 0}},
		{Kind: "oracle", Candidates: []Setting{{}}, Params: map[string]int{"sched_len": 2, "s0": 0, "s1": 1}},
		{Kind: "oracle", Candidates: []Setting{{}}, Params: map[string]int{"sched_len": 1, "s0": 0, "s5": 0}},
		{Kind: "online"},
		{Kind: "online", Candidates: []Setting{{}}, Params: map[string]int{"explore_every": 1}},
		{Kind: "online", Candidates: []Setting{{}}, Params: map[string]int{"hysteresis_milli": 1001}},
		{Kind: "online", Candidates: []Setting{{}}, Params: map[string]int{"ema_milli": 0}},
		{Kind: "online", Candidates: []Setting{{}}, Params: map[string]int{"vifr_fetch": 0}},
	}
	for _, s := range cases {
		if _, err := Normalize(s); err == nil {
			t.Errorf("Normalize(%+v) accepted", s)
		}
	}
}

func TestStaticController(t *testing.T) {
	c, err := Build(Spec{Kind: "static", Candidates: []Setting{{MaxDivergences: 1, ConfThreshold: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	want := Setting{MaxDivergences: 1, ConfThreshold: 3}
	if c.Initial() != want {
		t.Fatalf("Initial = %+v", c.Initial())
	}
	if got := c.Decide(EpochStats{Epoch: 0, IPC: 1.0}); got != want {
		t.Fatalf("Decide = %+v", got)
	}
	// Empty candidate list canonicalizes to one inert setting.
	ns, err := Normalize(Spec{Kind: "static"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.Candidates) != 1 || ns.Candidates[0] != (Setting{}) {
		t.Fatalf("static default candidates = %+v", ns.Candidates)
	}
}

func TestOracleSchedule(t *testing.T) {
	cands := []Setting{{}, {MaxDivergences: -1}, {MaxDivergences: 1}}
	sched := []int{0, 2, 1, 1}
	c, err := Build(Spec{Kind: "oracle", Candidates: cands, Params: OracleParams(sched)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Initial() != cands[0] {
		t.Fatalf("Initial = %+v", c.Initial())
	}
	// Decide(epoch e) picks the setting for epoch e+1; beyond the
	// schedule the last entry repeats.
	wantIdx := []int{2, 1, 1, 1, 1, 1}
	for e, wi := range wantIdx {
		if got := c.Decide(EpochStats{Epoch: e}); got != cands[wi] {
			t.Fatalf("Decide(epoch %d) = %+v, want candidate %d", e, got, wi)
		}
	}
	if got := ScheduleString(sched); got != "0,2,1,1" {
		t.Fatalf("ScheduleString = %q", got)
	}
}

func TestOnlineConvergesToBestArm(t *testing.T) {
	cands := []Setting{{}, {MaxDivergences: -1}}
	c, err := Build(Spec{Kind: "online", Candidates: cands, Params: map[string]int{"explore_every": 4}})
	if err != nil {
		t.Fatal(err)
	}
	oc := c.(*onlineController)
	if c.Initial() != cands[0] {
		t.Fatalf("Initial = %+v", c.Initial())
	}
	// Candidate 1 pays twice the IPC of candidate 0; after the probe
	// epochs sample it, the incumbent must move and stay there.
	ipc := func(arm int) float64 {
		if arm == 1 {
			return 2.0
		}
		return 1.0
	}
	for e := 0; e < 40; e++ {
		c.Decide(EpochStats{Epoch: e, IPC: ipc(oc.active)})
	}
	if oc.incumbent != 1 {
		t.Fatalf("incumbent = %d after 40 epochs, want 1 (rewards %v)", oc.incumbent, oc.reward)
	}
}

func TestOnlineHysteresisHoldsIncumbent(t *testing.T) {
	cands := []Setting{{}, {MaxDivergences: -1}}
	c, err := Build(Spec{Kind: "online", Candidates: cands, Params: map[string]int{
		"explore_every": 4, "hysteresis_milli": 200,
	}})
	if err != nil {
		t.Fatal(err)
	}
	oc := c.(*onlineController)
	// Candidate 1 is only 5% better — inside the 20% hysteresis band, so
	// the incumbent must never move.
	ipc := func(arm int) float64 {
		if arm == 1 {
			return 1.05
		}
		return 1.0
	}
	for e := 0; e < 60; e++ {
		c.Decide(EpochStats{Epoch: e, IPC: ipc(oc.active)})
		if oc.incumbent != 0 {
			t.Fatalf("incumbent switched to %d at epoch %d despite hysteresis", oc.incumbent, e)
		}
	}
}

func TestOnlineVIFRThrottle(t *testing.T) {
	c, err := Build(Spec{Kind: "online", Candidates: []Setting{{}}, Params: map[string]int{
		"vifr_epochs": 2, "vifr_lowconf_milli": 500, "vifr_fetch": 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// One low-confidence epoch is not enough.
	if got := c.Decide(EpochStats{Epoch: 0, LowConfRate: 0.9}); got.FetchWidth != 0 {
		t.Fatalf("throttled after one epoch: %+v", got)
	}
	// The second consecutive one trips the throttle.
	if got := c.Decide(EpochStats{Epoch: 1, LowConfRate: 0.9}); got.FetchWidth != 4 {
		t.Fatalf("not throttled after streak: %+v", got)
	}
	// Recovery releases it immediately.
	if got := c.Decide(EpochStats{Epoch: 2, LowConfRate: 0.1}); got.FetchWidth != 0 {
		t.Fatalf("throttle not released: %+v", got)
	}
}

func TestOnlineDeterministicAndResettable(t *testing.T) {
	build := func() Controller {
		c, err := Build(Spec{Kind: "online", Candidates: []Setting{{}, {MaxDivergences: -1}, {MaxDivergences: 1}}, Params: map[string]int{
			"explore_every": 3, "vifr_epochs": 2,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	stats := make([]EpochStats, 50)
	for i := range stats {
		stats[i] = EpochStats{Epoch: i, IPC: float64((i*7)%13) / 4, LowConfRate: float64((i*3)%10) / 10}
	}
	run := func(c Controller) []Setting {
		out := []Setting{c.Initial()}
		for _, st := range stats {
			out = append(out, c.Decide(st))
		}
		return out
	}
	a, b := build(), build()
	sa, sb := run(a), run(b)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("two identical controllers diverged on the same stats stream")
	}
	// Reset restores the initial trajectory on the same instance.
	a.Reset()
	if sr := run(a); !reflect.DeepEqual(sa, sr) {
		t.Fatal("Reset did not restore the initial trajectory")
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) == 0 {
		t.Fatal("no presets")
	}
	for _, n := range names {
		if _, ok := PresetSetting(n); !ok {
			t.Fatalf("preset %q missing", n)
		}
	}
	if s, _ := PresetSetting("monopath"); s.MaxDivergences != -1 {
		t.Fatalf("monopath preset = %+v", s)
	}
	if _, ok := PresetSetting("nosuch"); ok {
		t.Fatal("unknown preset resolved")
	}
}
