package policy

import (
	"fmt"
	"strings"
)

// oracleController replays a precomputed per-epoch schedule over the
// candidate set. It has no feedback loop of its own: the schedule is the
// output of an offline two-pass experiment (exhaustive static replay picks
// the best candidate per epoch), so the controller is the upper bound the
// online controller is measured against.
//
// The schedule travels in Params as integers so it survives the wire
// format: "sched_len" is the schedule length and "s0".."s{N-1}" give the
// candidate index per epoch. Epochs beyond the schedule repeat the last
// entry.
type oracleController struct {
	candidates []Setting
	sched      []int
}

func (c *oracleController) Initial() Setting { return c.candidates[c.sched[0]] }

func (c *oracleController) Decide(st EpochStats) Setting {
	idx := st.Epoch + 1
	if idx >= len(c.sched) {
		idx = len(c.sched) - 1
	}
	return c.candidates[c.sched[idx]]
}

func (c *oracleController) Reset() {}

// OracleParams builds the Params map encoding a per-epoch schedule, the
// inverse of the decoding oracle's Normalize performs.
func OracleParams(sched []int) map[string]int {
	p := make(map[string]int, len(sched)+1)
	p["sched_len"] = len(sched)
	for i, s := range sched {
		p[fmt.Sprintf("s%d", i)] = s
	}
	return p
}

// maxOracleSched bounds the schedule length carried in Params.
const maxOracleSched = 1 << 16

func normalizeOracle(s Spec) (Spec, error) {
	if len(s.Candidates) == 0 {
		return Spec{}, &SpecError{Kind: "oracle", Field: "Candidates", Reason: "oracle needs at least one candidate setting"}
	}
	s, err := normalizeCommon("oracle", s)
	if err != nil {
		return Spec{}, err
	}
	n := s.Param("sched_len", 1)
	if n < 1 || n > maxOracleSched {
		return Spec{}, &SpecError{Kind: "oracle", Field: "Params.sched_len", Reason: fmt.Sprintf("%d out of [1,%d]", n, maxOracleSched)}
	}
	filled := map[string]int{"sched_len": n}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%d", i)
		v := s.Param(name, 0)
		if v < 0 || v >= len(s.Candidates) {
			return Spec{}, &SpecError{Kind: "oracle", Field: "Params." + name, Reason: fmt.Sprintf("candidate index %d out of [0,%d]", v, len(s.Candidates)-1)}
		}
		filled[name] = v
	}
	for name := range s.Params {
		if _, ok := filled[name]; !ok {
			return Spec{}, &SpecError{Kind: "oracle", Field: "Params." + name, Reason: "unknown parameter (accepted: sched_len, s0..s{sched_len-1})"}
		}
	}
	s.Params = filled
	return s, nil
}

func oracleSchedule(s Spec) []int {
	n := s.Param("sched_len", 1)
	sched := make([]int, n)
	for i := range sched {
		sched[i] = s.Param(fmt.Sprintf("s%d", i), 0)
	}
	return sched
}

// ScheduleString renders an oracle schedule compactly for tables and logs
// (e.g. "0,0,1,1,0").
func ScheduleString(sched []int) string {
	parts := make([]string, len(sched))
	for i, s := range sched {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ",")
}

func init() {
	MustRegister(Entry{
		Kind:      "oracle",
		Doc:       "replay a precomputed per-epoch candidate schedule (two-pass upper bound; Params: sched_len, s0..sN)",
		Normalize: normalizeOracle,
		New: func(s Spec) (Controller, error) {
			return &oracleController{candidates: s.Candidates, sched: oracleSchedule(s)}, nil
		},
	})
}
