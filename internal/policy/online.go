package policy

import "fmt"

// onlineController is a deterministic bandit over the candidate set. Each
// epoch it attributes the completed epoch's IPC to the candidate that was
// acting, maintains an exponential moving average reward per candidate,
// and picks the next epoch's actor:
//
//   - on probe epochs (every explore_every-th epoch) it round-robins
//     through the candidates so every arm keeps a fresh reward estimate
//     (the deterministic stand-in for epsilon-greedy exploration);
//   - otherwise it runs the incumbent, which a challenger only displaces
//     by beating it with a hysteresis margin (avoiding thrash when two
//     candidates are within noise of each other).
//
// Two refinements make the bandit phase-aware rather than merely
// stationary:
//
//   - unseen-first probing: an arm with no reward estimate (at start, or
//     after a phase shift invalidates estimates) is probed before the
//     incumbent runs again, so fresh phases are surveyed immediately;
//   - shift detection (shift_milli > 0): the controller tracks an EMA of
//     the epoch misprediction rate, and when an epoch's rate jumps by more
//     than shift_milli/1000 from that EMA, it concludes the program
//     changed phase and discards every other arm's reward estimate — the
//     next epochs re-probe them instead of trusting stale rankings from
//     the previous phase.
//
// A VIFR-style fetch throttle rides on top: after vifr_epochs consecutive
// epochs whose low-confidence branch rate is at or above
// vifr_lowconf_milli/1000, the controller overlays a fetch-width cap of
// vifr_fetch onto whatever candidate it selected, releasing it the first
// epoch confidence recovers. All parameters are integers (fractions in
// milli-units) and the controller consumes no randomness or wall-clock,
// so runs are reproducible byte-for-byte.
type onlineController struct {
	candidates []Setting
	// parameters
	exploreEvery int
	hysteresis   float64 // fractional margin a challenger must clear
	emaAlpha     float64 // EMA weight of the newest epoch
	shift        float64 // misprediction-rate jump that signals a phase change (0 = off)
	vifrEpochs   int     // 0 disables the throttle
	vifrLowConf  float64
	vifrFetch    int
	// state
	reward     []float64
	seen       []bool
	active     int // candidate acting during the epoch now running
	incumbent  int
	emaMis     float64 // EMA of epoch misprediction rate (phase signature)
	emaMisInit bool
	lowStreak  int
	throttled  bool
}

func (c *onlineController) Initial() Setting {
	return c.candidates[c.active]
}

func (c *onlineController) Decide(st EpochStats) Setting {
	// Attribute the completed epoch's reward to whoever was acting.
	if !c.seen[c.active] {
		c.reward[c.active] = st.IPC
		c.seen[c.active] = true
	} else {
		c.reward[c.active] += c.emaAlpha * (st.IPC - c.reward[c.active])
	}

	// Phase-shift detection: a misprediction-rate jump means the program
	// entered a new phase, so reward estimates gathered in the old phase
	// no longer rank the arms. Keep only the acting arm's estimate (it
	// just measured the new phase) and re-probe the rest.
	if c.shift > 0 {
		if c.emaMisInit {
			d := st.MispredictRate - c.emaMis
			if d < 0 {
				d = -d
			}
			if d > c.shift {
				for i := range c.seen {
					if i != c.active {
						c.seen[i] = false
					}
				}
				c.emaMisInit = false // re-anchor the signature in the new phase
			}
		}
		if !c.emaMisInit {
			c.emaMis = st.MispredictRate
			c.emaMisInit = true
		} else {
			c.emaMis += c.emaAlpha * (st.MispredictRate - c.emaMis)
		}
	}

	// Promote a challenger only past the hysteresis margin.
	best := c.incumbent
	for i := range c.candidates {
		if c.seen[i] && c.reward[i] > c.reward[best] {
			best = i
		}
	}
	if best != c.incumbent && c.seen[c.incumbent] && c.reward[best] > c.reward[c.incumbent]*(1+c.hysteresis) {
		c.incumbent = best
	}
	if !c.seen[c.incumbent] && c.seen[best] {
		c.incumbent = best
	}

	// Pick the next epoch's actor: an unseen arm first (initial survey or
	// post-shift re-probe), then the periodic round-robin probe, else the
	// incumbent. Epoch indices are of the upcoming epoch.
	next := st.Epoch + 1
	c.active = c.incumbent
	probed := false
	for i := range c.candidates {
		if !c.seen[i] {
			c.active = i
			probed = true
			break
		}
	}
	if !probed && len(c.candidates) > 1 && next%c.exploreEvery == c.exploreEvery-1 {
		c.active = (next / c.exploreEvery) % len(c.candidates)
	}
	out := c.candidates[c.active]

	// VIFR-style throttle on sustained low confidence.
	if c.vifrEpochs > 0 {
		if st.LowConfRate >= c.vifrLowConf {
			c.lowStreak++
		} else {
			c.lowStreak = 0
		}
		c.throttled = c.lowStreak >= c.vifrEpochs
		if c.throttled && (out.FetchWidth == 0 || out.FetchWidth > c.vifrFetch) {
			out.FetchWidth = c.vifrFetch
		}
	}
	return out
}

func (c *onlineController) Reset() {
	for i := range c.reward {
		c.reward[i] = 0
		c.seen[i] = false
	}
	c.active = 0
	c.incumbent = 0
	c.emaMis = 0
	c.emaMisInit = false
	c.lowStreak = 0
	c.throttled = false
}

func init() {
	MustRegister(Entry{
		Kind: "online",
		Doc:  "deterministic bandit over the candidate set: EMA reward, round-robin probes, switch hysteresis, VIFR fetch throttle on sustained low confidence",
		Normalize: func(s Spec) (Spec, error) {
			if len(s.Candidates) == 0 {
				return Spec{}, &SpecError{Kind: "online", Field: "Candidates", Reason: "online needs at least one candidate setting"}
			}
			s, err := normalizeCommon("online", s)
			if err != nil {
				return Spec{}, err
			}
			defaults := map[string]int{
				"explore_every":      8,   // probe one candidate every 8th epoch
				"hysteresis_milli":   50,  // challenger must beat incumbent by 5%
				"ema_milli":          300, // newest epoch carries 30% of the EMA
				"shift_milli":        0,   // mispredict-rate jump = phase change (0 = off)
				"vifr_epochs":        0,   // 0 = fetch throttle disabled
				"vifr_lowconf_milli": 600, // throttle trigger: ≥60% low-conf branches
				"vifr_fetch":         4,   // throttled fetch width
			}
			return paramSchema("online", s, defaults, func(name string, v int) error {
				switch name {
				case "explore_every":
					if v < 2 || v > 1<<16 {
						return fmt.Errorf("%d out of [2,%d]", v, 1<<16)
					}
				case "hysteresis_milli", "shift_milli", "vifr_lowconf_milli":
					if v < 0 || v > 1000 {
						return fmt.Errorf("%d out of [0,1000]", v)
					}
				case "ema_milli":
					if v < 1 || v > 1000 {
						return fmt.Errorf("%d out of [1,1000]", v)
					}
				case "vifr_epochs":
					if v < 0 || v > 1<<16 {
						return fmt.Errorf("%d out of [0,%d]", v, 1<<16)
					}
				case "vifr_fetch":
					if v < 1 || v > 64 {
						return fmt.Errorf("%d out of [1,64]", v)
					}
				}
				return nil
			})
		},
		New: func(s Spec) (Controller, error) {
			return &onlineController{
				candidates:   s.Candidates,
				exploreEvery: s.Param("explore_every", 8),
				hysteresis:   float64(s.Param("hysteresis_milli", 50)) / 1000,
				emaAlpha:     float64(s.Param("ema_milli", 300)) / 1000,
				shift:        float64(s.Param("shift_milli", 0)) / 1000,
				vifrEpochs:   s.Param("vifr_epochs", 0),
				vifrLowConf:  float64(s.Param("vifr_lowconf_milli", 600)) / 1000,
				vifrFetch:    s.Param("vifr_fetch", 4),
				reward:       make([]float64, len(s.Candidates)),
				seen:         make([]bool, len(s.Candidates)),
			}, nil
		},
	})
}
