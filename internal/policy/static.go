package policy

// staticController pins a single candidate setting for the whole run. It
// exists so every pre-existing fixed policy can be expressed inside the
// controller framework — the degenerate case the metamorphic tests pin
// against plain (policy-free) configs.
type staticController struct {
	setting Setting
}

func (c *staticController) Initial() Setting          { return c.setting }
func (c *staticController) Decide(EpochStats) Setting { return c.setting }
func (c *staticController) Reset()                    {}

func init() {
	MustRegister(Entry{
		Kind: "static",
		Doc:  "pin one candidate setting for the whole run (fixed policy expressed in the controller framework)",
		Normalize: func(s Spec) (Spec, error) {
			if len(s.Candidates) == 0 {
				s.Candidates = []Setting{{}}
			}
			if len(s.Candidates) != 1 {
				return Spec{}, &SpecError{Kind: "static", Field: "Candidates", Reason: "static takes exactly one candidate setting"}
			}
			s, err := normalizeCommon("static", s)
			if err != nil {
				return Spec{}, err
			}
			return paramSchema("static", s, map[string]int{}, func(string, int) error { return nil })
		},
		New: func(s Spec) (Controller, error) {
			return &staticController{setting: s.Candidates[0]}, nil
		},
	})
}
