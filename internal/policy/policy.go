// Package policy implements phase-aware dynamic SEE policy control: an
// interval-driven controller framework in which a pluggable Controller
// observes per-epoch pipeline feedback (IPC, misprediction rate, PVN,
// low-confidence rate, live-path occupancy) and actuates the machine's
// eagerness knobs — confidence threshold, divergence budget, fetch-rate
// throttle — at epoch boundaries only.
//
// The framework closes the loop the paper's Sec. 5.1 "lesson learned"
// opens: a fixed SEE policy loses on workloads whose branch behaviour
// changes by phase (the m88ksim PVN anomaly), so the policy itself must be
// selected at runtime. Three controller families ship built in:
//
//   - static: pins one candidate setting for the whole run (any existing
//     fixed policy, expressed in the controller framework);
//   - oracle: replays a precomputed per-epoch schedule, the upper bound a
//     two-pass experiment derives from exhaustive static replay;
//   - online: deterministic bandit-style selection over a candidate set
//     with an EMA reward, round-robin probing, switch hysteresis, and a
//     VIFR-style fetch throttle on sustained low confidence (Variable
//     Instruction Fetch Rate, arXiv 1707.04657).
//
// Like internal/bpred and internal/confidence, the controller set is an
// open registry: a kind registered anywhere (built-in or at runtime) is
// immediately usable by the pipeline config, the wire format, and every
// front end.
package policy

// Setting is one actuation point of the controller: the knob values the
// pipeline applies at an epoch boundary. The zero value means "leave every
// knob at its configured value" — a controller that always returns the
// zero Setting is observationally inert.
type Setting struct {
	// ConfThreshold overrides the confidence estimator's high-confidence
	// threshold: 0 keeps the configured threshold, n > 0 sets threshold n,
	// and -1 selects counter saturation (the JRS default). Estimators that
	// do not support threshold actuation ignore it.
	ConfThreshold int `json:"conf_threshold"`
	// MaxDivergences overrides the divergence budget: 0 keeps the
	// configured cap, n > 0 caps simultaneous divergences at n, and -1
	// disables divergence entirely (monopath behaviour) without touching
	// the estimator.
	MaxDivergences int `json:"max_divergences"`
	// FetchWidth caps the front end's aggregate fetch bandwidth: 0 keeps
	// the configured width, n > 0 fetches at most n instructions per cycle
	// (the VIFR-style throttle).
	FetchWidth int `json:"fetch_width"`
}

// EpochStats is the per-epoch feedback fed to a Controller at each epoch
// boundary: deltas over the just-completed epoch, never cumulative run
// totals, so a controller sees the machine's current phase rather than its
// history-diluted average.
type EpochStats struct {
	// Epoch is the index of the completed epoch, starting at 0.
	Epoch int
	// Cycles and Committed are the epoch's cycle and instruction deltas.
	// The final epoch of a run may be shorter than the epoch length.
	Cycles    uint64
	Committed uint64
	// IPC is Committed/Cycles for this epoch.
	IPC float64
	// Branch-behaviour deltas, counted at commit (correct path only).
	CondBranches   uint64
	Mispredicts    uint64
	LowConf        uint64
	LowConfMispred uint64
	// MispredictRate is Mispredicts/CondBranches for this epoch.
	MispredictRate float64
	// PVN is LowConfMispred/LowConf for this epoch: the paper's "most
	// important design parameter" for SEE, measured per phase.
	PVN float64
	// LowConfRate is LowConf/CondBranches for this epoch (the trigger for
	// VIFR-style fetch throttling on sustained low confidence).
	LowConfRate float64
	// AvgLivePaths is the mean live-path occupancy over the epoch's cycles.
	AvgLivePaths float64
}

// Controller selects the machine's eagerness policy per epoch. The
// pipeline calls Initial once before cycle 0, then Decide at every epoch
// boundary with the completed epoch's stats; the returned Setting takes
// effect for the next epoch. Controllers must be deterministic: the same
// stats sequence must produce the same setting sequence (no wall-clock, no
// RNG), or the harness's byte-identical-output contract breaks.
type Controller interface {
	// Initial returns the setting for epoch 0.
	Initial() Setting
	// Decide consumes the completed epoch's stats and returns the setting
	// for the next epoch.
	Decide(st EpochStats) Setting
	// Reset returns the controller to its initial state.
	Reset()
}

// Preset names the candidate settings the built-in experiments and CLIs
// use, so a candidate set can be spelled "see,monopath,dual,throttle"
// instead of as raw Setting literals.
var presets = map[string]Setting{
	// see: the configured machine unchanged (full selective eager
	// execution as configured).
	"see": {},
	// monopath: divergence disabled; the machine follows every prediction.
	"monopath": {MaxDivergences: -1},
	// dual: the Sec. 5.2 dual-path restriction (one divergence in flight).
	"dual": {MaxDivergences: 1},
	// throttle: divergence off plus a half-width fetch throttle — the
	// VIFR-style low-confidence survival setting.
	"throttle": {MaxDivergences: -1, FetchWidth: 4},
}

// PresetSetting resolves a named candidate setting ("see", "monopath",
// "dual", "throttle").
func PresetSetting(name string) (Setting, bool) {
	s, ok := presets[name]
	return s, ok
}

// PresetNames returns the named candidate settings, in presentation order.
func PresetNames() []string { return []string{"see", "monopath", "dual", "throttle"} }
