// Package cache implements a set-associative cache model with LRU
// replacement, used by the pipeline as an optional replacement for the
// paper's always-hit cache assumption (Sec. 4.2: "Accesses to both caches
// always hit in the cache").
//
// The model is a timing filter, not a data store: the simulator's memory
// values live in the architectural memory image; the cache only decides
// whether an access hits (and therefore which latency applies). That is
// the same role caches play in the paper's AINT-based simulator family.
package cache

import "fmt"

// Config sizes a cache.
type Config struct {
	// Sets is the number of sets (power of two).
	Sets int
	// Ways is the associativity.
	Ways int
	// LineWords is the line size in 64-bit words (power of two).
	LineWords int
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets %d must be a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d must be positive", c.Ways)
	}
	if c.LineWords <= 0 || c.LineWords&(c.LineWords-1) != 0 {
		return fmt.Errorf("cache: line words %d must be a positive power of two", c.LineWords)
	}
	return nil
}

// SizeWords returns the cache capacity in 64-bit words.
func (c Config) SizeWords() int { return c.Sets * c.Ways * c.LineWords }

// Cache is a set-associative LRU cache directory.
type Cache struct {
	cfg      Config
	tags     [][]uint64 // [set][way]
	valid    [][]bool
	lru      [][]uint64 // last-use stamp per way
	stamp    uint64
	hits     uint64
	misses   uint64
	lineMask uint64
	setMask  uint64
}

// New builds a cache; invalid configurations panic (they are programmer
// errors — Config.Validate is the checked path).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:      cfg,
		tags:     make([][]uint64, cfg.Sets),
		valid:    make([][]bool, cfg.Sets),
		lru:      make([][]uint64, cfg.Sets),
		lineMask: uint64(cfg.LineWords - 1),
		setMask:  uint64(cfg.Sets - 1),
	}
	for s := range c.tags {
		c.tags[s] = make([]uint64, cfg.Ways)
		c.valid[s] = make([]bool, cfg.Ways)
		c.lru[s] = make([]uint64, cfg.Ways)
	}
	return c
}

func (c *Cache) locate(wordAddr int) (set int, tag uint64) {
	line := uint64(wordAddr) &^ c.lineMask
	idx := (line / uint64(c.cfg.LineWords)) & c.setMask
	return int(idx), line
}

// Access looks up wordAddr, updating LRU state and, on a miss, allocating
// the line (evicting the LRU way). It returns whether the access hit.
func (c *Cache) Access(wordAddr int) bool {
	c.stamp++
	set, tag := c.locate(wordAddr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.stamp
			c.hits++
			return true
		}
	}
	c.misses++
	victim := 0
	for w := 1; w < c.cfg.Ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lru[set][victim] = c.stamp
	return false
}

// Probe reports whether wordAddr would hit, without updating any state.
func (c *Cache) Probe(wordAddr int) bool {
	set, tag := c.locate(wordAddr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			return true
		}
	}
	return false
}

// Hits returns the hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
			c.lru[s][w] = 0
			c.tags[s][w] = 0
		}
	}
	c.stamp, c.hits, c.misses = 0, 0, 0
}
