package cache

import (
	"container/list"
	"sync"
)

// LRU is a thread-safe, string-keyed, bounded least-recently-used map with
// hit/miss accounting. It is the storage behind polyserve's result
// memoization: values are whole simulation outcomes keyed by the canonical
// hash of (normalized config, workload, instruction cap), so capacity is
// counted in entries, not bytes.
//
// The zero value is not usable; construct with NewLRU.
type LRU[V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

// NewLRU creates an LRU holding at most capacity entries. A capacity < 1
// yields a cache that stores nothing (every Get is a miss) — a valid way
// to disable memoization without branching at call sites.
func NewLRU[V any](capacity int) *LRU[V] {
	return &LRU[V]{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the value for key, marking it most recently used.
func (l *LRU[V]) Get(key string) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		l.order.MoveToFront(el)
		l.hits++
		return el.Value.(*lruEntry[V]).val, true
	}
	l.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes key, evicting the least-recently-used entry
// when the cache is full.
func (l *LRU[V]) Put(key string, val V) {
	if l.capacity < 1 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		l.order.MoveToFront(el)
		return
	}
	for l.order.Len() >= l.capacity {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.items, oldest.Value.(*lruEntry[V]).key)
	}
	l.items[key] = l.order.PushFront(&lruEntry[V]{key: key, val: val})
}

// Len returns the number of resident entries.
func (l *LRU[V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// Stats returns cumulative hit and miss counts.
func (l *LRU[V]) Stats() (hits, misses uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses
}
