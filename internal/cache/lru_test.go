package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU[int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	l.Put("c", 3) // evicts b (a was refreshed)
	if _, ok := l.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := l.Get("a"); !ok {
		t.Error("a should be resident")
	}
	if _, ok := l.Get("c"); !ok {
		t.Error("c should be resident")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	hits, misses := l.Stats()
	if hits != 3 || misses != 2 {
		t.Errorf("stats = %d hits %d misses, want 3/2", hits, misses)
	}
}

func TestLRUPutRefreshesValue(t *testing.T) {
	l := NewLRU[string](4)
	l.Put("k", "old")
	l.Put("k", "new")
	if v, _ := l.Get("k"); v != "new" {
		t.Errorf("Get = %q, want new", v)
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d after double Put", l.Len())
	}
}

// TestLRUEvictionOrder pins the exact eviction sequence: entries leave
// strictly least-recently-used first, where both Get and Put refresh
// recency.
func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU[int](3)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("c", 3) // recency (most..least): c b a
	l.Get("a")    // a c b
	l.Put("b", 2) // b a c
	l.Put("d", 4) // evicts c
	if _, ok := l.Get("c"); ok {
		t.Fatal("c should be the first eviction")
	}
	l.Put("e", 5) // recency was d b a (the Get(c) miss moved nothing): evicts a
	if _, ok := l.Get("a"); ok {
		t.Fatal("a should be the second eviction")
	}
	for _, k := range []string{"b", "d", "e"} {
		if _, ok := l.Get(k); !ok {
			t.Fatalf("%s should survive", k)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
}

func TestLRUZeroCapacityStoresNothing(t *testing.T) {
	for _, capacity := range []int{0, -1, -100} {
		l := NewLRU[int](capacity)
		l.Put("a", 1)
		l.Put("b", 2)
		if _, ok := l.Get("a"); ok {
			t.Errorf("capacity %d cache must not store", capacity)
		}
		if l.Len() != 0 {
			t.Errorf("capacity %d: Len = %d, want 0", capacity, l.Len())
		}
		if hits, misses := l.Stats(); hits != 0 || misses != 1 {
			t.Errorf("capacity %d: stats = %d/%d, want 0 hits 1 miss", capacity, hits, misses)
		}
	}
}

func TestLRUConcurrent(t *testing.T) {
	l := NewLRU[int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				l.Put(k, i)
				l.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if l.Len() > 64 {
		t.Errorf("Len = %d exceeds capacity", l.Len())
	}
}

// TestLRUConcurrentEvictionPressure hammers a tiny cache from many
// goroutines so every Put evicts, exercising the map/list consistency
// under -race; afterwards the cache must be exactly full of live keys.
func TestLRUConcurrentEvictionPressure(t *testing.T) {
	const capacity = 4
	l := NewLRU[int](capacity)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("g%d-%d", g, i)
				l.Put(k, i)
				if v, ok := l.Get(k); ok && v != i {
					t.Errorf("Get(%s) = %d, want %d", k, v, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != capacity {
		t.Errorf("Len = %d, want exactly %d after sustained pressure", l.Len(), capacity)
	}
	hits, misses := l.Stats()
	if hits+misses != 8*2000 {
		t.Errorf("stats account for %d gets, want %d", hits+misses, 8*2000)
	}
}
