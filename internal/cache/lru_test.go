package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU[int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	l.Put("c", 3) // evicts b (a was refreshed)
	if _, ok := l.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := l.Get("a"); !ok {
		t.Error("a should be resident")
	}
	if _, ok := l.Get("c"); !ok {
		t.Error("c should be resident")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	hits, misses := l.Stats()
	if hits != 3 || misses != 2 {
		t.Errorf("stats = %d hits %d misses, want 3/2", hits, misses)
	}
}

func TestLRUPutRefreshesValue(t *testing.T) {
	l := NewLRU[string](4)
	l.Put("k", "old")
	l.Put("k", "new")
	if v, _ := l.Get("k"); v != "new" {
		t.Errorf("Get = %q, want new", v)
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d after double Put", l.Len())
	}
}

func TestLRUZeroCapacityStoresNothing(t *testing.T) {
	l := NewLRU[int](0)
	l.Put("a", 1)
	if _, ok := l.Get("a"); ok {
		t.Error("zero-capacity cache must not store")
	}
}

func TestLRUConcurrent(t *testing.T) {
	l := NewLRU[int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				l.Put(k, i)
				l.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if l.Len() > 64 {
		t.Errorf("Len = %d exceeds capacity", l.Len())
	}
}
