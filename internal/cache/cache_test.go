package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Sets: 64, Ways: 2, LineWords: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.SizeWords() != 512 {
		t.Errorf("size = %d", good.SizeWords())
	}
	bad := []Config{
		{Sets: 0, Ways: 1, LineWords: 1},
		{Sets: 3, Ways: 1, LineWords: 1},
		{Sets: 4, Ways: 0, LineWords: 1},
		{Sets: 4, Ways: 1, LineWords: 0},
		{Sets: 4, Ways: 1, LineWords: 3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{Sets: 16, Ways: 2, LineWords: 4})
	if c.Access(100) {
		t.Error("cold access must miss")
	}
	if !c.Access(100) {
		t.Error("second access must hit")
	}
	// Same line, different word: hit.
	if !c.Access(101) {
		t.Error("same-line access must hit")
	}
	// Different line: miss.
	if c.Access(100 + 4) {
		t.Error("next line must miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 1 set, 2 ways, line 1 word. Three distinct lines
	// thrash; the least recently used must be evicted.
	c := New(Config{Sets: 1, Ways: 2, LineWords: 1})
	c.Access(0) // miss, allocate
	c.Access(1) // miss, allocate
	c.Access(0) // hit, refresh 0
	c.Access(2) // miss, evicts 1 (LRU)
	if !c.Probe(0) {
		t.Error("line 0 should survive (recently used)")
	}
	if c.Probe(1) {
		t.Error("line 1 should be evicted")
	}
	if !c.Probe(2) {
		t.Error("line 2 should be present")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := New(Config{Sets: 4, Ways: 1, LineWords: 1})
	c.Access(0)
	h, m := c.Hits(), c.Misses()
	c.Probe(0)
	c.Probe(99)
	if c.Hits() != h || c.Misses() != m {
		t.Error("probe must not change statistics")
	}
}

func TestWorkingSetFitsPerfectly(t *testing.T) {
	// A working set equal to the cache size must reach 100% hits after
	// the first pass, regardless of access order.
	cfg := Config{Sets: 8, Ways: 2, LineWords: 4}
	c := New(cfg)
	words := cfg.SizeWords()
	for a := 0; a < words; a++ {
		c.Access(a)
	}
	c2hits := c.Hits()
	for pass := 0; pass < 3; pass++ {
		for a := 0; a < words; a++ {
			if !c.Access(a) {
				t.Fatalf("pass %d: address %d missed in a fitting working set", pass, a)
			}
		}
	}
	if c.Hits() <= c2hits {
		t.Error("no hits recorded on repeat passes")
	}
}

func TestThrashingWorkingSetMisses(t *testing.T) {
	// A working set of N+1 lines mapping into one set of N ways, accessed
	// cyclically, must miss every time (classic LRU pathology).
	c := New(Config{Sets: 1, Ways: 4, LineWords: 1})
	for i := 0; i < 50; i++ {
		if c.Access(i % 5) {
			t.Fatalf("access %d hit; cyclic over-capacity set must always miss under LRU", i)
		}
	}
}

func TestReset(t *testing.T) {
	c := New(Config{Sets: 4, Ways: 2, LineWords: 2})
	c.Access(10)
	c.Access(10)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 || c.HitRate() != 0 {
		t.Error("reset must clear stats")
	}
	if c.Probe(10) {
		t.Error("reset must invalidate lines")
	}
}

// Property: Access is consistent with Probe — after Access(a), Probe(a)
// is true until enough conflicting lines evict it.
func TestAccessProbeConsistency(t *testing.T) {
	c := New(Config{Sets: 16, Ways: 2, LineWords: 2})
	f := func(addr uint16) bool {
		a := int(addr)
		c.Access(a)
		return c.Probe(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: hit rate of a small random working set rises with capacity.
func TestHitRateGrowsWithCapacity(t *testing.T) {
	run := func(sets int) float64 {
		c := New(Config{Sets: sets, Ways: 2, LineWords: 4})
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 20000; i++ {
			c.Access(rng.Intn(2048))
		}
		return c.HitRate()
	}
	small, large := run(8), run(128)
	if large <= small {
		t.Errorf("hit rate should grow with capacity: %0.3f vs %0.3f", small, large)
	}
}
