package bpred

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Params carries a predictor's integer sizing parameters by name
// ("hist_bits", "tables", ...). A nil map and an empty map are equivalent:
// both mean "all defaults". Params is the open half of the registry
// contract — a new predictor declares its own parameter schema and the
// pipeline, wire format and CLIs carry the map opaquely.
type Params map[string]int

// Get returns the named parameter, or def when absent (nil maps included).
func (p Params) Get(name string, def int) int {
	if v, ok := p[name]; ok {
		return v
	}
	return def
}

// Clone returns an independent copy (nil stays nil).
func (p Params) Clone() Params {
	if p == nil {
		return nil
	}
	q := make(Params, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// ParamSpec declares one parameter a predictor accepts: its name, the
// accepted range, whether it is required, and the default filled in when it
// is optional and absent.
type ParamSpec struct {
	Name     string
	Doc      string
	Min, Max int
	Default  int
	Required bool
}

// Env is the machine context handed to predictor factories. It carries the
// hooks a predictor may need from the pipeline without coupling the
// registry to the pipeline package.
type Env struct {
	// TargetOf resolves a conditional branch's pc to its target
	// instruction index (the static BTFNT predictor needs it). Nil when
	// the caller has no program, e.g. when sizing tables only.
	TargetOf func(pc int) int
}

// Entry describes one registered predictor kind: its canonical spelling,
// parameter schema, factory, and storage-accounting function. StateBytes
// must agree with the constructed predictor's StateBytes() for any
// normalized params — the equal-area figures rely on computing budgets
// without building machines.
type Entry struct {
	Kind   string
	Doc    string
	Params []ParamSpec
	New    func(p Params, env Env) (Predictor, error)
	// StateBytes returns the hardware budget in bytes for normalized
	// params. Entries with no table state may leave it nil (treated as 0).
	StateBytes func(p Params) int
}

// ParamError reports a parameter that violates a registered schema. The
// pipeline converts it into its own typed config error, preserving Param.
type ParamError struct {
	Kind   string
	Param  string
	Reason string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("bpred: %s: parameter %q: %s", e.Kind, e.Param, e.Reason)
}

type registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

var reg = &registry{entries: make(map[string]Entry)}

// Register adds a predictor kind to the registry. The kind spelling is
// canonicalized to lower case. Registering an already-registered kind, an
// empty kind, or an entry without a factory is an error — kinds are never
// silently replaced.
func Register(e Entry) error {
	e.Kind = strings.ToLower(strings.TrimSpace(e.Kind))
	if e.Kind == "" {
		return fmt.Errorf("bpred: register: empty kind")
	}
	if e.New == nil {
		return fmt.Errorf("bpred: register %q: nil factory", e.Kind)
	}
	seen := make(map[string]bool, len(e.Params))
	for _, ps := range e.Params {
		if ps.Name == "" || seen[ps.Name] {
			return fmt.Errorf("bpred: register %q: duplicate or empty parameter name %q", e.Kind, ps.Name)
		}
		seen[ps.Name] = true
		if ps.Min > ps.Max {
			return fmt.Errorf("bpred: register %q: parameter %q has empty range [%d,%d]", e.Kind, ps.Name, ps.Min, ps.Max)
		}
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, dup := reg.entries[e.Kind]; dup {
		return fmt.Errorf("bpred: register %q: already registered", e.Kind)
	}
	reg.entries[e.Kind] = e
	return nil
}

// MustRegister is Register for init-time built-ins; it panics on error.
func MustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// Lookup returns the entry for a kind (case-insensitive).
func Lookup(kind string) (Entry, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	e, ok := reg.entries[strings.ToLower(strings.TrimSpace(kind))]
	return e, ok
}

// Kinds returns the registered kind spellings, sorted.
func Kinds() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]string, 0, len(reg.entries))
	for k := range reg.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NormalizeParams validates p against the kind's schema and returns the
// canonical parameter map: unknown names and out-of-range values are
// errors, optional absent parameters are filled with their defaults, and
// the result is always a freshly allocated map (nil when the schema is
// empty) — never an alias of the input, so configs copied by value cannot
// share mutable state.
func NormalizeParams(kind string, p Params) (Params, error) {
	e, ok := Lookup(kind)
	if !ok {
		return nil, fmt.Errorf("bpred: unknown predictor kind %q (registered: %s)", kind, strings.Join(Kinds(), ", "))
	}
	known := make(map[string]ParamSpec, len(e.Params))
	for _, ps := range e.Params {
		known[ps.Name] = ps
	}
	for name := range p {
		if _, ok := known[name]; !ok {
			return nil, &ParamError{Kind: e.Kind, Param: name, Reason: fmt.Sprintf("unknown parameter (accepted: %s)", strings.Join(paramNames(e.Params), ", "))}
		}
	}
	var out Params
	for _, ps := range e.Params {
		v, present := p[ps.Name]
		if !present {
			if ps.Required {
				return nil, &ParamError{Kind: e.Kind, Param: ps.Name, Reason: fmt.Sprintf("required, range [%d,%d]", ps.Min, ps.Max)}
			}
			v = ps.Default
		}
		if v < ps.Min || v > ps.Max {
			return nil, &ParamError{Kind: e.Kind, Param: ps.Name, Reason: fmt.Sprintf("%d out of [%d,%d]", v, ps.Min, ps.Max)}
		}
		if out == nil {
			out = make(Params, len(e.Params))
		}
		out[ps.Name] = v
	}
	return out, nil
}

func paramNames(specs []ParamSpec) []string {
	names := make([]string, len(specs))
	for i, ps := range specs {
		names[i] = ps.Name
	}
	sort.Strings(names)
	return names
}

// Build normalizes p and constructs the predictor.
func Build(kind string, p Params, env Env) (Predictor, error) {
	np, err := NormalizeParams(kind, p)
	if err != nil {
		return nil, err
	}
	e, _ := Lookup(kind)
	return e.New(np, env)
}

// StateBytes normalizes p and returns the kind's hardware budget in bytes
// without constructing the predictor.
func StateBytes(kind string, p Params) (int, error) {
	np, err := NormalizeParams(kind, p)
	if err != nil {
		return 0, err
	}
	e, _ := Lookup(kind)
	if e.StateBytes == nil {
		return 0, nil
	}
	return e.StateBytes(np), nil
}
