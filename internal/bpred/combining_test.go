package bpred

import (
	"math/rand"
	"testing"
)

func TestLocalLearnsPerBranchPattern(t *testing.T) {
	l := NewLocal(10, 10)
	// Branch A alternates T/N; branch B is always taken. A local predictor
	// learns both without interference.
	missA, missB := 0, 0
	for i := 0; i < 2000; i++ {
		takenA := i%2 == 0
		if l.Predict(100, 0) != takenA && i > 100 {
			missA++
		}
		l.Update(100, 0, takenA)
		if l.Predict(200, 0) != true && i > 100 {
			missB++
		}
		l.Update(200, 0, true)
	}
	if missA > 0 {
		t.Errorf("local predictor mispredicted alternating branch %d times", missA)
	}
	if missB > 0 {
		t.Errorf("local predictor mispredicted constant branch %d times", missB)
	}
}

func TestLocalIgnoresGlobalHistory(t *testing.T) {
	l := NewLocal(8, 8)
	for i := 0; i < 100; i++ {
		l.Update(5, uint64(i*37), true)
	}
	if !l.Predict(5, 0xFFFF) || !l.Predict(5, 0) {
		t.Error("local prediction must not depend on the global history argument")
	}
}

func TestLocalStateAndReset(t *testing.T) {
	l := NewLocal(10, 12)
	if l.StateBytes() != (1<<12)/4+(1<<10)*12/8 {
		t.Errorf("state bytes = %d", l.StateBytes())
	}
	for i := 0; i < 4; i++ {
		l.Update(9, 0, true)
	}
	l.Reset()
	if l.Predict(9, 0) {
		t.Error("reset should clear local predictor")
	}
}

func TestLocalBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLocal(0, 8)
}

func TestCombiningPicksBetterComponent(t *testing.T) {
	// Component 1: gshare (learns global patterns). Component 2: bimodal.
	// A branch whose outcome mirrors the global history parity is
	// learnable by gshare and not by bimodal; the chooser must migrate to
	// gshare for it.
	g := NewGshare(12)
	bi := NewBimodal(10)
	c := NewCombining(bi, g, 10)
	rng := rand.New(rand.NewSource(4))
	hist := uint64(0)
	miss := 0
	n := 20000
	for i := 0; i < n; i++ {
		taken := hist&1 == 1 // perfectly correlated with last outcome
		if c.Predict(77, hist) != taken && i > n/2 {
			miss++
		}
		c.Update(77, hist, taken)
		// Interleave a second, random branch to keep bimodal noisy.
		rtaken := rng.Intn(2) == 0
		c.Update(501, hist, rtaken)
		hist = PushHistory(hist, taken)
	}
	rate := float64(miss) / float64(n/2)
	if rate > 0.05 {
		t.Errorf("combining predictor missed %.1f%% on a gshare-learnable branch", 100*rate)
	}
}

func TestCombiningFallsBackToBimodalForBiasedBranch(t *testing.T) {
	// With random global history, gshare dilutes a biased branch across
	// cold contexts while bimodal nails it; combining must not be worse
	// than bimodal alone by more than a small margin.
	measure := func(p Predictor, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		hist := uint64(0)
		miss, n := 0, 20000
		for i := 0; i < n; i++ {
			taken := rng.Float64() < 0.95
			if p.Predict(33, hist) != taken {
				miss++
			}
			p.Update(33, hist, taken)
			hist = PushHistory(hist, rng.Intn(2) == 0) // noisy global history
		}
		return float64(miss) / float64(n)
	}
	bimodal := measure(NewBimodal(10), 8)
	comb := measure(NewCombining(NewBimodal(10), NewGshare(12), 10), 8)
	if comb > bimodal+0.02 {
		t.Errorf("combining (%.3f) much worse than bimodal (%.3f) on biased branch", comb, bimodal)
	}
}

func TestCombiningStateAndReset(t *testing.T) {
	c := NewCombining(NewBimodal(8), NewGshare(10), 8)
	want := NewBimodal(8).StateBytes() + NewGshare(10).StateBytes() + (1<<8)/4
	if c.StateBytes() != want {
		t.Errorf("state bytes = %d, want %d", c.StateBytes(), want)
	}
	for i := 0; i < 8; i++ {
		c.Update(3, 0, true)
	}
	c.Reset()
	if c.Predict(3, 0) {
		t.Error("reset should clear all components")
	}
}

func TestCombiningBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCombining(NewBimodal(8), NewGshare(8), 0)
}

func TestBTBLastTargetPrediction(t *testing.T) {
	b := NewBTB(8)
	if _, ok := b.Predict(100); ok {
		t.Error("cold BTB must miss")
	}
	b.Update(100, 42)
	if tgt, ok := b.Predict(100); !ok || tgt != 42 {
		t.Errorf("predict = %d,%v want 42,true", tgt, ok)
	}
	b.Update(100, 77)
	if tgt, _ := b.Predict(100); tgt != 77 {
		t.Error("BTB must track the last target")
	}
	if b.Hits() != 2 || b.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d", b.Hits(), b.Misses())
	}
}

func TestBTBTagDisambiguation(t *testing.T) {
	b := NewBTB(4) // 16 entries: pcs 5 and 21 collide
	b.Update(5, 50)
	if _, ok := b.Predict(21); ok {
		t.Error("aliased pc with different tag must miss")
	}
	b.Update(21, 99)
	if tgt, ok := b.Predict(21); !ok || tgt != 99 {
		t.Error("after update, aliased pc hits with its own target")
	}
	if _, ok := b.Predict(5); ok {
		t.Error("evicted pc must miss")
	}
}

func TestBTBResetAndState(t *testing.T) {
	b := NewBTB(6)
	b.Update(1, 2)
	b.Reset()
	if _, ok := b.Predict(1); ok {
		t.Error("reset must clear entries")
	}
	if b.StateBytes() != 64*9 {
		t.Errorf("state bytes = %d", b.StateBytes())
	}
}

func TestBTBBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBTB(0)
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS must not predict")
	}
	r.Push(10)
	r.Push(20)
	if a, ok := r.Pop(); !ok || a != 20 {
		t.Errorf("pop = %d,%v want 20", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 10 {
		t.Errorf("pop = %d,%v want 10", a, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("drained RAS must not predict")
	}
}

func TestRASCircularOverflow(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if a, _ := r.Pop(); a != 3 {
		t.Error("LIFO order after overflow")
	}
	if a, _ := r.Pop(); a != 2 {
		t.Error("second frame after overflow")
	}
	if _, ok := r.Pop(); ok {
		t.Error("the overwritten frame must be gone")
	}
}

func TestRASCloneAndRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(5)
	snap := r.Clone()
	r.Push(6)
	r.Pop()
	r.Pop()
	r.CopyFrom(snap)
	if a, ok := r.Pop(); !ok || a != 5 {
		t.Errorf("restored pop = %d,%v want 5", a, ok)
	}
	if r.Depth() != 8 || snap.StateBytes() != 32 {
		t.Error("accessors")
	}
}

func TestRASDepthMismatchPanics(t *testing.T) {
	r := NewRAS(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.CopyFrom(NewRAS(8))
}

func TestRASBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRAS(0)
}
