package bpred

import (
	"fmt"
	"math"
	"math/bits"
)

// Tage is a TAGE-class predictor (Seznec/Michaud): a base bimodal table
// backed by N partially-tagged tables indexed with geometrically increasing
// global-history lengths. The provider is the matching table with the
// longest history; an alternate prediction comes from the next-longest
// match (or the base table).
//
// Provider selection is O(1) in the number of tables: the parallel tag
// compares set one bit per table in a hit bitmap, and a count-leading-zeros
// over the bitmap yields the longest match directly — the bitmap+CLZ
// pattern this repo already uses for window wakeup/select.
//
// Like every predictor here, Tage is a pure pattern table over
// (pc, history): the pipeline owns the per-path speculative history and
// trains at commit with the history that was live at prediction, so Update
// can recompute the provider deterministically from (pc, hist) alone and
// needs no side-band metadata. Allocation on misprediction is likewise
// deterministic (first useful==0 entry in a longer table), keeping
// simulations bit-reproducible.
type Tage struct {
	cfg      TageConfig
	histLens []int // per-table history length, strictly increasing

	base []uint8 // 2-bit counters, 1<<BaseBits entries

	// Tagged-table state, one slice per table, 1<<IdxBits entries each.
	tags   [][]uint16
	ctrs   [][]int8  // 3-bit signed prediction counters in [-4,3]
	useful [][]uint8 // 2-bit useful counters

	idxMask uint64
	tagMask uint16

	// updates counts Update calls for the periodic useful-bit aging of the
	// original TAGE proposal: every UsefulPeriod updates, one of the two
	// useful bits (alternating) is cleared in every entry so stale entries
	// become reclaimable.
	updates  uint64
	ageUpper bool
}

// TageConfig sizes a Tage predictor. TageParams/NormalizeParams fill the
// registry defaults; NewTage validates against the same bounds.
type TageConfig struct {
	BaseBits int // log2 entries of the base bimodal table
	Tables   int // number of tagged tables
	IdxBits  int // log2 entries per tagged table
	TagBits  int // partial tag width
	MinHist  int // shortest tagged history length
	MaxHist  int // longest tagged history length (<= 64: history is one word)
	// UsefulPeriod is the number of updates between useful-bit aging
	// events (0 selects the default 1<<18).
	UsefulPeriod int
}

const defaultUsefulPeriod = 1 << 18

// tageParamSpecs is the registry schema; defaults reproduce the
// iso-storage point matching the repo's default gshare(11).
var tageParamSpecs = []ParamSpec{
	{Name: "base_bits", Doc: "log2 base bimodal entries", Min: 2, Max: 28, Default: 10},
	{Name: "tables", Doc: "tagged tables", Min: 1, Max: 16, Default: 4},
	{Name: "idx_bits", Doc: "log2 entries per tagged table", Min: 2, Max: 24, Default: 5},
	{Name: "tag_bits", Doc: "partial tag width", Min: 4, Max: 15, Default: 11},
	{Name: "min_hist", Doc: "shortest tagged history", Min: 1, Max: 64, Default: 4},
	{Name: "max_hist", Doc: "longest tagged history", Min: 1, Max: 64, Default: 64},
}

func tageConfigFromParams(p Params) TageConfig {
	return TageConfig{
		BaseBits: p.Get("base_bits", 10),
		Tables:   p.Get("tables", 4),
		IdxBits:  p.Get("idx_bits", 5),
		TagBits:  p.Get("tag_bits", 11),
		MinHist:  p.Get("min_hist", 4),
		MaxHist:  p.Get("max_hist", 64),
	}
}

// TageStateBytes returns the storage budget of a TAGE configuration:
// 2 bits per base counter plus (tag + 3-bit ctr + 2-bit useful) per tagged
// entry. With the default tag_bits=11 a tagged entry is exactly 16 bits,
// which is what makes the equal-area sweep land exactly on the gshare
// points.
func TageStateBytes(c TageConfig) int {
	baseBits := 2 * (1 << uint(c.BaseBits))
	entryBits := c.TagBits + 3 + 2
	taggedBits := c.Tables * (1 << uint(c.IdxBits)) * entryBits
	return (baseBits + taggedBits) / 8
}

// TageIsoParams returns TAGE parameters sized to exactly the storage of a
// gshare predictor with budgetBits of history (2^budgetBits 2-bit
// counters): half the budget in the base table, half split across four
// tagged tables of 16-bit entries. Valid for budgetBits >= 8; the Figure
// 9-TAGE sweep uses 8..14.
func TageIsoParams(budgetBits int) Params {
	return Params{
		"base_bits": budgetBits - 1,
		"tables":    4,
		"idx_bits":  budgetBits - 6,
		"tag_bits":  11,
		"min_hist":  4,
		"max_hist":  64,
	}
}

// NewTage constructs a TAGE predictor. Configuration errors (tables out of
// range, min >= max history) are reported, never panicked: the registry
// feeds this from validated user input.
func NewTage(c TageConfig) (*Tage, error) {
	if c.UsefulPeriod == 0 {
		c.UsefulPeriod = defaultUsefulPeriod
	}
	switch {
	case c.BaseBits < 2 || c.BaseBits > 28:
		return nil, fmt.Errorf("bpred: tage base_bits %d out of [2,28]", c.BaseBits)
	case c.Tables < 1 || c.Tables > 16:
		return nil, fmt.Errorf("bpred: tage tables %d out of [1,16]", c.Tables)
	case c.IdxBits < 2 || c.IdxBits > 24:
		return nil, fmt.Errorf("bpred: tage idx_bits %d out of [2,24]", c.IdxBits)
	case c.TagBits < 4 || c.TagBits > 15:
		return nil, fmt.Errorf("bpred: tage tag_bits %d out of [4,15]", c.TagBits)
	case c.MinHist < 1 || c.MaxHist > 64 || (c.Tables > 1 && c.MinHist >= c.MaxHist):
		return nil, fmt.Errorf("bpred: tage history schedule min=%d max=%d invalid (need 1 <= min < max <= 64)", c.MinHist, c.MaxHist)
	case c.UsefulPeriod < 1:
		return nil, fmt.Errorf("bpred: tage useful_period %d must be positive", c.UsefulPeriod)
	}
	t := &Tage{
		cfg:      c,
		histLens: geometricHistLens(c.MinHist, c.MaxHist, c.Tables),
		base:     make([]uint8, 1<<uint(c.BaseBits)),
		tags:     make([][]uint16, c.Tables),
		ctrs:     make([][]int8, c.Tables),
		useful:   make([][]uint8, c.Tables),
		idxMask:  (1 << uint(c.IdxBits)) - 1,
		tagMask:  uint16(1<<uint(c.TagBits)) - 1,
	}
	for i := 0; i < c.Tables; i++ {
		t.tags[i] = make([]uint16, 1<<uint(c.IdxBits))
		t.ctrs[i] = make([]int8, 1<<uint(c.IdxBits))
		t.useful[i] = make([]uint8, 1<<uint(c.IdxBits))
	}
	return t, nil
}

// geometricHistLens builds a strictly increasing geometric schedule from
// min to max over n tables (Seznec's L(i) = min * r^i with r chosen so
// L(n-1) = max), e.g. min=4 max=64 n=4 -> [4, 10, 25, 64].
func geometricHistLens(min, max, n int) []int {
	lens := make([]int, n)
	if n == 1 {
		lens[0] = min
		return lens
	}
	ratio := math.Pow(float64(max)/float64(min), 1/float64(n-1))
	prev := 0
	for i := range lens {
		l := int(math.Round(float64(min) * math.Pow(ratio, float64(i))))
		if l <= prev {
			l = prev + 1
		}
		if l > 64 {
			l = 64
		}
		lens[i] = l
		prev = l
	}
	return lens
}

// HistLens exposes the per-table history schedule (for tests and docs).
func (t *Tage) HistLens() []int {
	out := make([]int, len(t.histLens))
	copy(out, t.histLens)
	return out
}

// foldHist compresses the low histLen bits of hist into width bits by
// XOR-folding successive width-bit chunks — the standard TAGE folded
// history, computed directly since history is a single word here.
func foldHist(hist uint64, histLen, width int) uint64 {
	h := hist
	if histLen < 64 {
		h &= (uint64(1) << uint(histLen)) - 1
	}
	var folded uint64
	for histLen > 0 {
		folded ^= h & ((1 << uint(width)) - 1)
		h >>= uint(width)
		histLen -= width
	}
	return folded
}

// index computes table i's entry index for (pc, hist).
func (t *Tage) index(i, pc int, hist uint64) uint64 {
	h := foldHist(hist, t.histLens[i], t.cfg.IdxBits)
	return (uint64(pc) ^ uint64(pc)>>uint(t.cfg.IdxBits) ^ h ^ uint64(i)) & t.idxMask
}

// tag computes table i's partial tag for (pc, hist). Two independent folds
// at different widths decorrelate the tag from the index, so entries that
// collide on index still disambiguate on tag.
func (t *Tage) tag(i, pc int, hist uint64) uint16 {
	h1 := foldHist(hist, t.histLens[i], t.cfg.TagBits)
	h2 := foldHist(hist, t.histLens[i], t.cfg.TagBits-1)
	return uint16(uint64(pc)^h1^(h2<<1)) & t.tagMask
}

// lookup computes the hit bitmap (bit i set when table i's tag matches)
// and returns it with the per-table indices in scratch arrays.
func (t *Tage) lookup(pc int, hist uint64, idxs []uint64) uint32 {
	var hits uint32
	for i := range t.tags {
		idx := t.index(i, pc, hist)
		idxs[i] = idx
		if t.tags[i][idx] == t.tag(i, pc, hist) {
			hits |= 1 << uint(i)
		}
	}
	return hits
}

// provider returns the table index of the longest-history match in the hit
// bitmap, or -1 when only the base table applies. This is the CLZ
// selection: the highest set bit is 31 - LeadingZeros32.
func provider(hits uint32) int {
	if hits == 0 {
		return -1
	}
	return 31 - bits.LeadingZeros32(hits)
}

// altProvider returns the next-longest match below prov, or -1 (base).
func altProvider(hits uint32, prov int) int {
	below := hits & ((1 << uint(prov)) - 1)
	return provider(below)
}

func (t *Tage) baseIndex(pc int) uint64 {
	return uint64(pc) & ((1 << uint(t.cfg.BaseBits)) - 1)
}

func (t *Tage) basePredict(pc int) bool {
	return ctrPredict(t.base[t.baseIndex(pc)])
}

// Predict implements Predictor.
func (t *Tage) Predict(pc int, hist uint64) bool {
	var idxBuf [16]uint64 // Tables <= 16; stays on the stack
	idxs := idxBuf[:len(t.tags)]
	hits := t.lookup(pc, hist, idxs)
	prov := provider(hits)
	if prov < 0 {
		return t.basePredict(pc)
	}
	return t.ctrs[prov][idxs[prov]] >= 0
}

// Update implements Predictor. The provider and alternate are recomputed
// from (pc, hist) — identical to what Predict saw, since predictors are
// trained with the history live at prediction.
func (t *Tage) Update(pc int, hist uint64, taken bool) {
	var idxBuf [16]uint64
	idxs := idxBuf[:len(t.tags)]
	hits := t.lookup(pc, hist, idxs)
	prov := provider(hits)

	var provPred, altPred bool
	if prov < 0 {
		provPred = t.basePredict(pc)
		altPred = provPred
	} else {
		provPred = t.ctrs[prov][idxs[prov]] >= 0
		if alt := altProvider(hits, prov); alt >= 0 {
			altPred = t.ctrs[alt][idxs[alt]] >= 0
		} else {
			altPred = t.basePredict(pc)
		}
	}

	// Train the provider (base counter when no tagged entry matched).
	if prov < 0 {
		bi := t.baseIndex(pc)
		t.base[bi] = ctrUpdate(t.base[bi], taken)
	} else {
		t.ctrs[prov][idxs[prov]] = ctrUpdate3(t.ctrs[prov][idxs[prov]], taken)
		// The useful counter tracks whether the provider beats the
		// alternate: it only moves when they disagree.
		if provPred != altPred {
			u := &t.useful[prov][idxs[prov]]
			if provPred == taken {
				if *u < 3 {
					*u++
				}
			} else if *u > 0 {
				*u--
			}
		}
	}

	// Allocate a longer-history entry on a provider misprediction
	// (deterministically: the first useful==0 slot above the provider; if
	// none, decay their useful counters so a later attempt succeeds).
	if provPred != taken && prov < len(t.tags)-1 {
		t.allocate(prov, pc, hist, taken, idxs)
	}

	t.updates++
	if t.updates%uint64(t.cfg.UsefulPeriod) == 0 {
		t.ageUseful()
	}
}

// allocate installs (pc, hist, taken) into the first entry with useful==0
// in a table with longer history than prov.
func (t *Tage) allocate(prov int, pc int, hist uint64, taken bool, idxs []uint64) {
	for i := prov + 1; i < len(t.tags); i++ {
		if t.useful[i][idxs[i]] == 0 {
			t.tags[i][idxs[i]] = t.tag(i, pc, hist)
			if taken {
				t.ctrs[i][idxs[i]] = 0 // weakly taken
			} else {
				t.ctrs[i][idxs[i]] = -1 // weakly not-taken
			}
			t.useful[i][idxs[i]] = 0
			return
		}
	}
	for i := prov + 1; i < len(t.tags); i++ {
		t.useful[i][idxs[i]]--
	}
}

// ageUseful is the periodic useful-bit reset of the original TAGE: clear
// the upper and lower useful bits alternately across all entries, so
// long-unused entries gracefully become allocation victims.
func (t *Tage) ageUseful() {
	var mask uint8 = 0b01
	if t.ageUpper {
		mask = 0b10
	}
	t.ageUpper = !t.ageUpper
	for i := range t.useful {
		col := t.useful[i]
		for j := range col {
			col[j] &^= mask
		}
	}
}

// ctrUpdate3 is a 3-bit signed saturating counter in [-4,3]; >= 0 predicts
// taken.
func ctrUpdate3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > -4 {
		return c - 1
	}
	return -4
}

// StateBytes implements Predictor; it agrees with TageStateBytes by
// construction.
func (t *Tage) StateBytes() int { return TageStateBytes(t.cfg) }

// Reset implements Predictor.
func (t *Tage) Reset() {
	for i := range t.base {
		t.base[i] = 0
	}
	for i := range t.tags {
		for j := range t.tags[i] {
			t.tags[i][j] = 0
			t.ctrs[i][j] = 0
			t.useful[i][j] = 0
		}
	}
	t.updates = 0
	t.ageUpper = false
}

func init() {
	MustRegister(Entry{
		Kind:   "tage",
		Doc:    "TAGE: base bimodal + tagged geometric-history tables, CLZ longest-match provider selection",
		Params: tageParamSpecs,
		New: func(p Params, _ Env) (Predictor, error) {
			return NewTage(tageConfigFromParams(p))
		},
		StateBytes: func(p Params) int {
			return TageStateBytes(tageConfigFromParams(p))
		},
	})
}
