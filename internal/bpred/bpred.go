// Package bpred implements the branch predictors used in the paper's
// evaluation: the gshare predictor of McFarling (the baseline, Sec. 4.2),
// plus bimodal and static predictors for comparison studies.
//
// The global history register itself is owned by the pipeline, because in
// the PolyPath architecture each execution path carries its own
// speculatively-updated history copy (children of a divergence inherit the
// parent's history extended with their direction, and misprediction
// recovery restores the history checkpointed with the branch). Predictors
// here are pure pattern tables: given (pc, history) they predict, and at
// commit time they are trained with the history that was live at
// prediction.
package bpred

import "fmt"

// Predictor is a direction predictor for conditional branches.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc, given
	// the global history at prediction time.
	Predict(pc int, hist uint64) bool
	// Update trains the predictor with the resolved outcome. hist must be
	// the same history value passed to Predict for this dynamic branch.
	Update(pc int, hist uint64, taken bool)
	// StateBytes returns the predictor's hardware state budget in bytes,
	// used for the equal-area comparison of Fig. 9.
	StateBytes() int
	// Reset clears all learned state.
	Reset()
}

// counter2 semantics: 0,1 predict not-taken; 2,3 predict taken.
func ctrPredict(c uint8) bool { return c >= 2 }

func ctrUpdate(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// Gshare is McFarling's gshare predictor: global history XOR branch address
// indexes a table of 2-bit saturating counters. The paper's baseline uses
// 14 bits of history and 16k counters.
type Gshare struct {
	histBits int
	mask     uint64
	table    []uint8
}

// NewGshare creates a gshare predictor with 2^histBits two-bit counters.
func NewGshare(histBits int) *Gshare {
	if histBits < 1 || histBits > 28 {
		panic(fmt.Sprintf("bpred: gshare history bits %d out of range [1,28]", histBits))
	}
	return &Gshare{
		histBits: histBits,
		mask:     (1 << uint(histBits)) - 1,
		table:    make([]uint8, 1<<uint(histBits)),
	}
}

// HistBits returns the history length (= log2 table size).
func (g *Gshare) HistBits() int { return g.histBits }

func (g *Gshare) index(pc int, hist uint64) uint64 {
	return (uint64(pc) ^ hist) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc int, hist uint64) bool {
	return ctrPredict(g.table[g.index(pc, hist)])
}

// Update implements Predictor.
func (g *Gshare) Update(pc int, hist uint64, taken bool) {
	i := g.index(pc, hist)
	g.table[i] = ctrUpdate(g.table[i], taken)
}

// StateBytes implements Predictor: 2 bits per counter.
func (g *Gshare) StateBytes() int { return len(g.table) / 4 }

// Reset implements Predictor.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 0
	}
}

// Bimodal is a per-address table of 2-bit counters (no history).
type Bimodal struct {
	mask  uint64
	table []uint8
}

// NewBimodal creates a bimodal predictor with 2^indexBits counters.
func NewBimodal(indexBits int) *Bimodal {
	if indexBits < 1 || indexBits > 28 {
		panic(fmt.Sprintf("bpred: bimodal index bits %d out of range [1,28]", indexBits))
	}
	return &Bimodal{
		mask:  (1 << uint(indexBits)) - 1,
		table: make([]uint8, 1<<uint(indexBits)),
	}
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc int, _ uint64) bool {
	return ctrPredict(b.table[uint64(pc)&b.mask])
}

// Update implements Predictor.
func (b *Bimodal) Update(pc int, _ uint64, taken bool) {
	i := uint64(pc) & b.mask
	b.table[i] = ctrUpdate(b.table[i], taken)
}

// StateBytes implements Predictor.
func (b *Bimodal) StateBytes() int { return len(b.table) / 4 }

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
}

// Static predicts backward branches taken and forward branches not taken
// (BTFNT). It needs the branch target, so the pipeline constructs it with
// a target lookup function.
type Static struct {
	// TargetOf returns the target instruction index for the branch at pc.
	TargetOf func(pc int) int
}

// Predict implements Predictor: taken iff the target is at or before pc.
func (s *Static) Predict(pc int, _ uint64) bool { return s.TargetOf(pc) <= pc }

// Update implements Predictor (no state).
func (s *Static) Update(int, uint64, bool) {}

// StateBytes implements Predictor.
func (s *Static) StateBytes() int { return 0 }

// Reset implements Predictor.
func (s *Static) Reset() {}

// PushHistory returns hist shifted left with the new outcome in the low
// bit. Paths use this for speculative history update at prediction time
// (Sec. 4.2: "the global history is speculatively updated at branch
// prediction with the predicted branch outcome").
func PushHistory(hist uint64, taken bool) uint64 {
	hist <<= 1
	if taken {
		hist |= 1
	}
	return hist
}
