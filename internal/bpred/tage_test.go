package bpred

import (
	"math/rand"
	"testing"
)

func mustTage(t *testing.T, c TageConfig) *Tage {
	t.Helper()
	tg, err := NewTage(c)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func smallTage(t *testing.T) *Tage {
	return mustTage(t, TageConfig{
		BaseBits: 4, Tables: 4, IdxBits: 4, TagBits: 8, MinHist: 2, MaxHist: 16,
	})
}

func TestTageProviderIsLongestMatch(t *testing.T) {
	// provider() is the CLZ selection over the hit bitmap: the highest set
	// bit must win, at every boundary of the bitmap.
	cases := []struct {
		hits uint32
		want int
	}{
		{0, -1},
		{1 << 0, 0},
		{1 << 15, 15},               // the registry's table cap
		{1<<15 | 1, 15},             // longest wins over shortest
		{1<<7 | 1<<6, 7},            // adjacent tables
		{1<<3 | 1<<2 | 1<<1 | 1, 3}, // dense low bitmap
		{0xFFFF, 15},                // all tables hit
		{1<<14 | 1<<13 | 1<<12, 14}, // cluster below the cap
	}
	for _, tc := range cases {
		if got := provider(tc.hits); got != tc.want {
			t.Errorf("provider(%#x) = %d, want %d", tc.hits, got, tc.want)
		}
	}
}

func TestTageAltProviderSkipsProvider(t *testing.T) {
	cases := []struct {
		hits uint32
		prov int
		want int
	}{
		{1<<5 | 1<<2, 5, 2},
		{1 << 5, 5, -1},    // no alternate: base table
		{1<<15 | 1, 15, 0}, // alternate across the full bitmap
		{0xFF, 7, 6},       // alternate is the next-longest, not shortest
	}
	for _, tc := range cases {
		if got := altProvider(tc.hits, tc.prov); got != tc.want {
			t.Errorf("altProvider(%#x, %d) = %d, want %d", tc.hits, tc.prov, got, tc.want)
		}
	}
}

func TestTageGeometricSchedule(t *testing.T) {
	got := geometricHistLens(4, 64, 4)
	want := []int{4, 10, 25, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("geometricHistLens(4,64,4) = %v, want %v", got, want)
		}
	}
	// Strictly increasing even when rounding would collide.
	lens := geometricHistLens(1, 4, 8)
	for i := 1; i < len(lens); i++ {
		if lens[i] <= lens[i-1] {
			t.Fatalf("schedule not strictly increasing: %v", lens)
		}
	}
	if lens[len(lens)-1] > 64 {
		t.Fatalf("schedule exceeds the 64-bit history word: %v", lens)
	}
}

// TestTageTagAliasing: two branches that collide on a table index but carry
// different tags must not read each other's prediction — the second branch
// falls through to the base table instead of consuming the alias's counter.
func TestTageTagAliasing(t *testing.T) {
	tg := smallTage(t)
	table := len(tg.tags) - 1

	// Find two (pc) values with the same index but different tags in the
	// longest table under a fixed history.
	const hist = 0xA5A5
	pcA := 3
	var pcB int
	for pc := pcA + 1; ; pc++ {
		if tg.index(table, pc, hist) == tg.index(table, pcA, hist) &&
			tg.tag(table, pc, hist) != tg.tag(table, pcA, hist) {
			pcB = pc
			break
		}
		if pc > 1<<20 {
			t.Fatal("no index-colliding, tag-distinct pc pair found")
		}
	}

	// Install a strongly-taken entry for pcA directly.
	idx := tg.index(table, pcA, hist)
	tg.tags[table][idx] = tg.tag(table, pcA, hist)
	tg.ctrs[table][idx] = 3

	if !tg.Predict(pcA, hist) {
		t.Fatal("installed entry must provide a taken prediction for its own tag")
	}
	// pcB aliases the index but not the tag: the tagged entry must NOT
	// provide, so the prediction comes from pcB's (untrained, not-taken)
	// base counter.
	if tg.Predict(pcB, hist) {
		t.Error("tag mismatch must not hit: aliased entry leaked its prediction")
	}
}

// TestTageAllocatesOnMispredict: a provider misprediction must install the
// branch into a longer-history table (deterministically, the first
// useful==0 slot), after which the longer table provides.
func TestTageAllocatesOnMispredict(t *testing.T) {
	tg := smallTage(t)
	const pc, hist = 7, uint64(0x3C)

	// Fresh predictor: no tags match, base provides (weakly not-taken).
	if tg.Predict(pc, hist) {
		t.Fatal("fresh predictor must predict not-taken")
	}
	// One taken outcome mispredicts the base provider -> allocation into
	// the shortest tagged table with useful==0 (table 0).
	tg.Update(pc, hist, true)
	var idxBuf [16]uint64
	hits := tg.lookup(pc, hist, idxBuf[:len(tg.tags)])
	if provider(hits) != 0 {
		t.Fatalf("after one mispredict, provider = %d, want table 0 (hits %#x)", provider(hits), hits)
	}
	// The allocated entry starts weakly taken: it must now predict taken.
	if !tg.Predict(pc, hist) {
		t.Error("allocated entry must predict the outcome that allocated it")
	}
}

// TestTageUsefulAgingReclaimsEntries: with a tiny UsefulPeriod, useful
// counters saturated to 3 must decay to 0 after two aging events (upper bit
// then lower bit), making the entries reclaimable.
func TestTageUsefulAging(t *testing.T) {
	tg := mustTage(t, TageConfig{
		BaseBits: 4, Tables: 2, IdxBits: 4, TagBits: 8, MinHist: 2, MaxHist: 8,
		UsefulPeriod: 4,
	})
	// Saturate a useful counter by hand.
	tg.useful[1][5] = 3

	// Drive updates through branches that do not touch entry [1][5]'s
	// useful counter directly; aging is global.
	for i := 0; i < 4; i++ { // first aging event: clears bit 0 -> 3 -> 2
		tg.Update(1000+i, 0, false)
	}
	if got := tg.useful[1][5]; got != 0b10 {
		t.Fatalf("after first aging event useful = %b, want 10", got)
	}
	for i := 0; i < 4; i++ { // second aging event: clears bit 1 -> 0
		tg.Update(2000+i, 0, false)
	}
	if got := tg.useful[1][5]; got != 0 {
		t.Fatalf("after second aging event useful = %b, want 0", got)
	}
}

func TestTageUsefulTracksProviderAdvantage(t *testing.T) {
	tg := smallTage(t)
	const pc, hist = 11, uint64(0x55)
	// Allocate into table 0 via a base mispredict.
	tg.Update(pc, hist, true)
	var idxBuf [16]uint64
	idxs := idxBuf[:len(tg.tags)]
	hits := tg.lookup(pc, hist, idxs)
	prov := provider(hits)
	if prov != 0 {
		t.Fatalf("provider = %d, want 0", prov)
	}
	// Provider (weak taken) and base (now weak taken after its own training)
	// currently agree -> useful must not move.
	u0 := tg.useful[prov][idxs[prov]]
	tg.Update(pc, hist, true)
	// Train base away: flood the base counter with not-taken via direct
	// counter writes, creating provider/alternate disagreement.
	tg.base[tg.baseIndex(pc)] = 0 // strongly not-taken
	before := tg.useful[prov][idxs[prov]]
	tg.Update(pc, hist, true) // provider correct, alt wrong -> useful++
	after := tg.useful[prov][idxs[prov]]
	if after != before+1 {
		t.Errorf("useful did not increment on provider advantage: %d -> %d (initial %d)", before, after, u0)
	}
}

func TestTageReset(t *testing.T) {
	tg := smallTage(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		pc := rng.Intn(256)
		hist := rng.Uint64()
		tg.Update(pc, hist, rng.Intn(2) == 0)
	}
	tg.Reset()
	for i := range tg.base {
		if tg.base[i] != 0 {
			t.Fatal("Reset left base counter state")
		}
	}
	for i := range tg.tags {
		for j := range tg.tags[i] {
			if tg.tags[i][j] != 0 || tg.ctrs[i][j] != 0 || tg.useful[i][j] != 0 {
				t.Fatal("Reset left tagged-table state")
			}
		}
	}
	if tg.updates != 0 {
		t.Fatal("Reset left the update counter")
	}
}

// TestTageIsoStorageWithGshare is the Figure 9-TAGE accounting proof: at
// every sweep point b in 8..14, the TAGE configuration from TageIsoParams(b)
// occupies exactly the same number of bytes as gshare with hist_bits=b,
// measured through the registry's StateBytes (the same accounting the
// equal-area sweep plots on its x-axis).
func TestTageIsoStorageWithGshare(t *testing.T) {
	for b := 8; b <= 14; b++ {
		gBytes, err := StateBytes("gshare", Params{"hist_bits": b})
		if err != nil {
			t.Fatal(err)
		}
		tBytes, err := StateBytes("tage", TageIsoParams(b))
		if err != nil {
			t.Fatal(err)
		}
		if gBytes != tBytes {
			t.Errorf("budget %d bits: gshare %d B, tage %d B — not iso-storage", b, gBytes, tBytes)
		}
		// And the constructed predictor agrees with the registry accounting.
		p, err := Build("tage", TageIsoParams(b), Env{})
		if err != nil {
			t.Fatal(err)
		}
		if p.StateBytes() != tBytes {
			t.Errorf("budget %d: constructed StateBytes %d != registry %d", b, p.StateBytes(), tBytes)
		}
	}
}

func TestTageRejectsInvalidConfig(t *testing.T) {
	bad := []TageConfig{
		{BaseBits: 1, Tables: 4, IdxBits: 5, TagBits: 11, MinHist: 4, MaxHist: 64},
		{BaseBits: 10, Tables: 0, IdxBits: 5, TagBits: 11, MinHist: 4, MaxHist: 64},
		{BaseBits: 10, Tables: 17, IdxBits: 5, TagBits: 11, MinHist: 4, MaxHist: 64},
		{BaseBits: 10, Tables: 4, IdxBits: 1, TagBits: 11, MinHist: 4, MaxHist: 64},
		{BaseBits: 10, Tables: 4, IdxBits: 5, TagBits: 16, MinHist: 4, MaxHist: 64},
		{BaseBits: 10, Tables: 4, IdxBits: 5, TagBits: 11, MinHist: 64, MaxHist: 4},
		{BaseBits: 10, Tables: 4, IdxBits: 5, TagBits: 11, MinHist: 4, MaxHist: 65},
	}
	for i, c := range bad {
		if _, err := NewTage(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

// TestTageLearnsHistoryCorrelatedPattern: sanity end-to-end check that the
// predictor actually predicts — a branch whose outcome equals the history
// bit MinHist-1 positions back is learnable by the tagged tables but not by
// the bimodal base.
func TestTageLearnsHistoryCorrelatedPattern(t *testing.T) {
	tg := smallTage(t)
	const pc = 42
	var hist uint64
	correct := 0
	const warmup, measure = 2000, 2000
	for i := 0; i < warmup+measure; i++ {
		outcome := (hist>>1)&1 == 1 // correlated with recent history
		pred := tg.Predict(pc, hist)
		if i >= warmup && pred == outcome {
			correct++
		}
		tg.Update(pc, hist, outcome)
		hist = hist<<1 | b2u(outcome)
	}
	if acc := float64(correct) / measure; acc < 0.95 {
		t.Errorf("history-correlated accuracy %.3f, want >= 0.95", acc)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
