package bpred

import "fmt"

// BTB is a direct-mapped branch target buffer used to predict indirect
// jump targets (switch tables, function-pointer dispatch). Each entry
// holds a tag (the full PC) and the last observed target for that PC.
type BTB struct {
	mask    uint64
	tags    []int32
	targets []int32
	valid   []bool
	hits    uint64
	misses  uint64
}

// NewBTB creates a BTB with 2^indexBits entries.
func NewBTB(indexBits int) *BTB {
	if indexBits < 1 || indexBits > 20 {
		panic(fmt.Sprintf("bpred: BTB index bits %d out of range [1,20]", indexBits))
	}
	n := 1 << uint(indexBits)
	return &BTB{
		mask:    uint64(n - 1),
		tags:    make([]int32, n),
		targets: make([]int32, n),
		valid:   make([]bool, n),
	}
}

// Predict returns the predicted target for the indirect jump at pc.
// ok is false on a BTB miss (no prediction available); the front end then
// stalls the path until the jump resolves, like a real fetch unit with no
// target to follow.
func (b *BTB) Predict(pc int) (target int, ok bool) {
	i := uint64(pc) & b.mask
	if b.valid[i] && b.tags[i] == int32(pc) {
		b.hits++
		return int(b.targets[i]), true
	}
	b.misses++
	return 0, false
}

// Update records the resolved target for pc (last-target prediction).
func (b *BTB) Update(pc, target int) {
	i := uint64(pc) & b.mask
	b.tags[i] = int32(pc)
	b.targets[i] = int32(target)
	b.valid[i] = true
}

// Hits returns lookup hits.
func (b *BTB) Hits() uint64 { return b.hits }

// Misses returns lookup misses.
func (b *BTB) Misses() uint64 { return b.misses }

// StateBytes returns the hardware budget (tag + target + valid per entry,
// 32-bit fields).
func (b *BTB) StateBytes() int { return len(b.tags) * 9 }

// Reset clears all entries and statistics.
func (b *BTB) Reset() {
	for i := range b.valid {
		b.valid[i] = false
	}
	b.hits, b.misses = 0, 0
}
