package bpred

import "fmt"

// Null is the no-op predictor: it always predicts not-taken and learns
// nothing. The pipeline installs it under the "oracle" kind, where
// predictions come from the reference trace and the pattern tables are
// never consulted.
type Null struct{}

// Predict implements Predictor.
func (Null) Predict(int, uint64) bool { return false }

// Update implements Predictor.
func (Null) Update(int, uint64, bool) {}

// StateBytes implements Predictor.
func (Null) StateBytes() int { return 0 }

// Reset implements Predictor.
func (Null) Reset() {}

// histBitsSpec is the shared hist_bits schema of the classic predictors:
// history length / log2 table size, required with no default (the paper's
// baseline passes 14, the repo default 11).
func histBitsSpec(max int) ParamSpec {
	return ParamSpec{
		Name:     "hist_bits",
		Doc:      "history length / log2 table size",
		Min:      2,
		Max:      max,
		Required: true,
	}
}

func init() {
	MustRegister(Entry{
		Kind:   "gshare",
		Doc:    "McFarling gshare: global history XOR pc indexes 2-bit counters (the paper's baseline)",
		Params: []ParamSpec{histBitsSpec(28)},
		New: func(p Params, _ Env) (Predictor, error) {
			return NewGshare(p.Get("hist_bits", 0)), nil
		},
		StateBytes: func(p Params) int { return (1 << uint(p.Get("hist_bits", 0))) / 4 },
	})
	MustRegister(Entry{
		Kind:   "bimodal",
		Doc:    "per-address 2-bit counter table (hist_bits = index bits)",
		Params: []ParamSpec{histBitsSpec(28)},
		New: func(p Params, _ Env) (Predictor, error) {
			return NewBimodal(p.Get("hist_bits", 0)), nil
		},
		StateBytes: func(p Params) int { return (1 << uint(p.Get("hist_bits", 0))) / 4 },
	})
	MustRegister(Entry{
		Kind: "static",
		Doc:  "backward-taken/forward-not-taken; no learned state",
		New: func(_ Params, env Env) (Predictor, error) {
			if env.TargetOf == nil {
				return nil, fmt.Errorf("bpred: static predictor needs Env.TargetOf")
			}
			return &Static{TargetOf: env.TargetOf}, nil
		},
	})
	MustRegister(Entry{
		Kind: "oracle",
		Doc:  "perfect prediction from the reference trace (pipeline-special; the registry supplies a null table)",
		New: func(Params, Env) (Predictor, error) {
			return Null{}, nil
		},
	})
	MustRegister(Entry{
		// NewLocal bounds per-branch history registers at 16 bits, so the
		// schema is tighter than the 28-bit global-history kinds.
		Kind:   "local",
		Doc:    "two-level local-history (PAg): per-branch histories index a shared counter table",
		Params: []ParamSpec{histBitsSpec(16)},
		New: func(p Params, _ Env) (Predictor, error) {
			bits := p.Get("hist_bits", 0)
			return NewLocal(bits, bits), nil
		},
		StateBytes: func(p Params) int {
			bits := p.Get("hist_bits", 0)
			return (1<<uint(bits))/4 + (1<<uint(bits))*bits/8
		},
	})
	MustRegister(Entry{
		// NewCombining bounds the chooser at 20 bits, so the budget tops
		// out at 21 (components run one bit under it).
		Kind:   "combining",
		Doc:    "McFarling combining: bimodal + gshare with a pc-indexed chooser, each one bit under the budget",
		Params: []ParamSpec{histBitsSpec(21)},
		New: func(p Params, _ Env) (Predictor, error) {
			bits := combiningComponentBits(p.Get("hist_bits", 0))
			return NewCombining(NewBimodal(bits), NewGshare(bits), bits), nil
		},
		StateBytes: func(p Params) int {
			bits := combiningComponentBits(p.Get("hist_bits", 0))
			return 3 * (1 << uint(bits)) / 4
		},
	})
}

// combiningComponentBits is the equal-area-ish split the combining entry
// uses: each component (and the chooser) one bit smaller than the budget.
func combiningComponentBits(histBits int) int {
	bits := histBits - 1
	if bits < 2 {
		bits = 2
	}
	return bits
}
