package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterSaturation(t *testing.T) {
	c := uint8(0)
	for i := 0; i < 10; i++ {
		c = ctrUpdate(c, true)
	}
	if c != 3 {
		t.Errorf("counter saturates high at 3, got %d", c)
	}
	for i := 0; i < 10; i++ {
		c = ctrUpdate(c, false)
	}
	if c != 0 {
		t.Errorf("counter saturates low at 0, got %d", c)
	}
}

func TestCounterHysteresis(t *testing.T) {
	// Strongly taken counter must survive a single not-taken outcome.
	c := uint8(3)
	c = ctrUpdate(c, false)
	if !ctrPredict(c) {
		t.Error("one not-taken must not flip a strongly-taken counter")
	}
	c = ctrUpdate(c, false)
	if ctrPredict(c) {
		t.Error("two not-taken must flip the prediction")
	}
}

func TestGshareLearnsBiasedBranch(t *testing.T) {
	g := NewGshare(10)
	pc := 1234
	hist := uint64(0)
	for i := 0; i < 8; i++ {
		g.Update(pc, hist, true)
	}
	if !g.Predict(pc, hist) {
		t.Error("gshare should predict taken after training")
	}
}

func TestGshareSeparatesByHistory(t *testing.T) {
	g := NewGshare(10)
	pc := 77
	// Same PC, two histories, opposite outcomes: both must be learnable.
	for i := 0; i < 4; i++ {
		g.Update(pc, 0b1010, true)
		g.Update(pc, 0b0101, false)
	}
	if !g.Predict(pc, 0b1010) || g.Predict(pc, 0b0101) {
		t.Error("gshare must separate contexts by history")
	}
}

func TestGshareLearnsPatternWithHistory(t *testing.T) {
	// A period-4 pattern TTTN is perfectly predictable once each history
	// context's counter trains.
	g := NewGshare(12)
	pc := 3
	pattern := []bool{true, true, true, false}
	hist := uint64(0)
	mispred := 0
	for i := 0; i < 4000; i++ {
		taken := pattern[i%4]
		if g.Predict(pc, hist) != taken && i > 100 {
			mispred++
		}
		g.Update(pc, hist, taken)
		hist = PushHistory(hist, taken)
	}
	if mispred > 0 {
		t.Errorf("gshare mispredicted trained pattern %d times", mispred)
	}
}

func TestGshareRandomBranchNearFiftyPercent(t *testing.T) {
	g := NewGshare(14)
	rng := rand.New(rand.NewSource(7))
	hist := uint64(0)
	mispred := 0
	n := 20000
	for i := 0; i < n; i++ {
		taken := rng.Intn(2) == 0
		if g.Predict(100, hist) != taken {
			mispred++
		}
		g.Update(100, hist, taken)
		hist = PushHistory(hist, taken)
	}
	rate := float64(mispred) / float64(n)
	if rate < 0.40 || rate > 0.60 {
		t.Errorf("random branch misprediction rate = %.3f, want ~0.5", rate)
	}
}

func TestGshareStateBytes(t *testing.T) {
	// Paper baseline: 14-bit history, 16k 2-bit counters = 4 kB.
	g := NewGshare(14)
	if g.StateBytes() != 4096 {
		t.Errorf("StateBytes = %d, want 4096", g.StateBytes())
	}
	if g.HistBits() != 14 {
		t.Errorf("HistBits = %d", g.HistBits())
	}
}

func TestGshareReset(t *testing.T) {
	g := NewGshare(8)
	for i := 0; i < 8; i++ {
		g.Update(5, 0, true)
	}
	g.Reset()
	if g.Predict(5, 0) {
		t.Error("reset predictor should predict not-taken")
	}
}

func TestGshareBoundsPanic(t *testing.T) {
	for _, bits := range []int{0, 29} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d: expected panic", bits)
				}
			}()
			NewGshare(bits)
		}()
	}
}

func TestBimodalIgnoresHistory(t *testing.T) {
	b := NewBimodal(10)
	for i := 0; i < 4; i++ {
		b.Update(50, 0xDEAD, true)
	}
	if !b.Predict(50, 0xBEEF) {
		t.Error("bimodal must ignore history")
	}
	if b.StateBytes() != 256 {
		t.Errorf("StateBytes = %d, want 256", b.StateBytes())
	}
	b.Reset()
	if b.Predict(50, 0) {
		t.Error("reset")
	}
}

func TestBimodalBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBimodal(0)
}

func TestStaticBTFNT(t *testing.T) {
	targets := map[int]int{10: 2, 20: 35}
	s := &Static{TargetOf: func(pc int) int { return targets[pc] }}
	if !s.Predict(10, 0) {
		t.Error("backward branch should predict taken")
	}
	if s.Predict(20, 0) {
		t.Error("forward branch should predict not-taken")
	}
	s.Update(10, 0, false) // no-op
	if s.StateBytes() != 0 {
		t.Error("static predictor has no state")
	}
	s.Reset()
}

func TestPushHistory(t *testing.T) {
	h := uint64(0)
	h = PushHistory(h, true)
	h = PushHistory(h, false)
	h = PushHistory(h, true)
	if h != 0b101 {
		t.Errorf("history = %b, want 101", h)
	}
}

// Property: prediction is a pure function of (pc, hist) between updates.
func TestPredictPure(t *testing.T) {
	g := NewGshare(12)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		g.Update(rng.Intn(4096), rng.Uint64(), rng.Intn(2) == 0)
	}
	f := func(pc uint16, hist uint64) bool {
		p := int(pc)
		return g.Predict(p, hist) == g.Predict(p, hist)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: updates to one index never change predictions whose index
// differs (aliasing only through the masked xor index).
func TestUpdateLocality(t *testing.T) {
	g := NewGshare(10)
	idx := func(pc int, hist uint64) uint64 { return (uint64(pc) ^ hist) & g.mask }
	f := func(pc1, pc2 uint16, h1, h2 uint64, taken bool) bool {
		if idx(int(pc1), h1) == idx(int(pc2), h2) {
			return true // same table entry, skip
		}
		before := g.Predict(int(pc2), h2)
		g.Update(int(pc1), h1, taken)
		return g.Predict(int(pc2), h2) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
