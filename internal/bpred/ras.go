package bpred

import "fmt"

// RAS is a return-address stack: the standard predictor for function
// returns. Calls push the return address at fetch; returns pop the top as
// their predicted target. In the PolyPath machine the RAS is speculative
// per-path state (like the global history register): each execution path
// carries its own copy, and misprediction recovery restores the snapshot
// taken with the branch's checkpoint.
//
// The stack is circular: pushing beyond the depth silently overwrites the
// oldest frame, and popping an empty stack returns no prediction — both
// standard hardware behaviours.
type RAS struct {
	depth   int
	entries []int32
	top     int // index of the next free slot
	count   int // live frames (<= depth)
}

// NewRAS creates a return-address stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth < 1 || depth > 1024 {
		panic(fmt.Sprintf("bpred: RAS depth %d out of range [1,1024]", depth))
	}
	return &RAS{depth: depth, entries: make([]int32, depth)}
}

// Push records a return address (on a call's fetch).
func (r *RAS) Push(addr int) {
	r.entries[r.top] = int32(addr)
	r.top = (r.top + 1) % r.depth
	if r.count < r.depth {
		r.count++
	}
}

// Pop predicts a return target and removes the frame. ok is false when
// the stack holds no live frames (prediction unavailable).
func (r *RAS) Pop() (addr int, ok bool) {
	if r.count == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + r.depth) % r.depth
	r.count--
	return int(r.entries[r.top]), true
}

// Depth returns the configured capacity.
func (r *RAS) Depth() int { return r.depth }

// Count returns the number of live frames.
func (r *RAS) Count() int { return r.count }

// Clone returns an independent copy (per-path speculative state).
func (r *RAS) Clone() *RAS {
	c := &RAS{depth: r.depth, entries: make([]int32, r.depth), top: r.top, count: r.count}
	copy(c.entries, r.entries)
	return c
}

// CopyFrom restores r from a snapshot with the same depth.
func (r *RAS) CopyFrom(src *RAS) {
	if src.depth != r.depth {
		panic("bpred: RAS snapshot depth mismatch")
	}
	copy(r.entries, src.entries)
	r.top = src.top
	r.count = src.count
}

// StateBytes returns the hardware budget (32-bit entries).
func (r *RAS) StateBytes() int { return r.depth * 4 }
