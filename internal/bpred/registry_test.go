package bpred

import (
	"errors"
	"sort"
	"strings"
	"testing"
)

func TestRegistryBuiltinsRegistered(t *testing.T) {
	kinds := Kinds()
	if !sort.StringsAreSorted(kinds) {
		t.Errorf("Kinds() not sorted: %v", kinds)
	}
	for _, want := range []string{"gshare", "bimodal", "static", "oracle", "local", "combining", "tage"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("built-in kind %q not registered", want)
		}
	}
}

func TestRegisterRejectsBadEntries(t *testing.T) {
	factory := func(Params, Env) (Predictor, error) { return Null{}, nil }
	cases := []struct {
		name string
		e    Entry
	}{
		{"empty kind", Entry{New: factory}},
		{"nil factory", Entry{Kind: "reg-test-nilfactory"}},
		{"duplicate kind", Entry{Kind: "gshare", New: factory}},
		{"case-folded duplicate", Entry{Kind: "  GSHARE ", New: factory}},
		{"duplicate param", Entry{Kind: "reg-test-dupparam", New: factory,
			Params: []ParamSpec{{Name: "x", Min: 0, Max: 1}, {Name: "x", Min: 0, Max: 1}}}},
		{"empty param name", Entry{Kind: "reg-test-emptyparam", New: factory,
			Params: []ParamSpec{{Name: "", Min: 0, Max: 1}}}},
		{"empty range", Entry{Kind: "reg-test-emptyrange", New: factory,
			Params: []ParamSpec{{Name: "x", Min: 2, Max: 1}}}},
	}
	for _, tc := range cases {
		if err := Register(tc.e); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// None of the rejects may have landed in the registry.
	for _, k := range Kinds() {
		if strings.HasPrefix(k, "reg-test-") {
			t.Errorf("rejected registration leaked into the registry: %q", k)
		}
	}
}

func TestNormalizeParamsContract(t *testing.T) {
	// Defaults fill in; result is fresh, never an alias of the input.
	in := Params{"hist_bits": 10}
	out, err := NormalizeParams("gshare", in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Get("hist_bits", 0) != 10 {
		t.Fatalf("normalized params = %v", out)
	}
	out["hist_bits"] = 99
	if in["hist_bits"] != 10 {
		t.Error("NormalizeParams returned an alias of the caller's map")
	}

	// Unknown parameter name is a typed *ParamError naming the parameter.
	_, err = NormalizeParams("gshare", Params{"tables": 4})
	var pe *ParamError
	if !errors.As(err, &pe) || pe.Param != "tables" {
		t.Fatalf("unknown param: got %v", err)
	}

	// Out-of-range value.
	_, err = NormalizeParams("tage", Params{"tag_bits": 99})
	if !errors.As(err, &pe) || pe.Param != "tag_bits" {
		t.Fatalf("out-of-range: got %v", err)
	}

	// Required parameter missing (gshare's hist_bits is required).
	_, err = NormalizeParams("gshare", nil)
	if !errors.As(err, &pe) || pe.Param != "hist_bits" {
		t.Fatalf("missing required: got %v", err)
	}

	// Unknown kind lists the registered spellings.
	_, err = NormalizeParams("nonesuch", nil)
	if err == nil || !strings.Contains(err.Error(), "gshare") {
		t.Fatalf("unknown kind error should enumerate kinds, got %v", err)
	}

	// A schema-free kind normalizes to nil.
	out, err = NormalizeParams("oracle", nil)
	if err != nil || out != nil {
		t.Fatalf("oracle normalize = %v, %v; want nil, nil", out, err)
	}

	// tage defaults fill the complete schema.
	out, err = NormalizeParams("tage", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"base_bits", "tables", "idx_bits", "tag_bits", "min_hist", "max_hist"} {
		if _, ok := out[name]; !ok {
			t.Errorf("tage default normalization missing %q: %v", name, out)
		}
	}
}

func TestBuildConstructsEveryBuiltin(t *testing.T) {
	env := Env{TargetOf: func(pc int) int { return pc + 1 }}
	for _, kind := range Kinds() {
		e, _ := Lookup(kind)
		// Satisfy required parameters with a mid-range value so the loop
		// stays schema-driven as new kinds are registered.
		params := Params{}
		for _, ps := range e.Params {
			if ps.Required {
				params[ps.Name] = (ps.Min + ps.Max) / 2
			}
		}
		p, err := Build(kind, params, env)
		if err != nil {
			t.Errorf("Build(%q): %v", kind, err)
			continue
		}
		// The predictor must be callable and its accounting must agree
		// with the registry's params-only accounting.
		p.Predict(1, 0)
		p.Update(1, 0, true)
		want, err := StateBytes(kind, params)
		if err != nil {
			t.Errorf("StateBytes(%q): %v", kind, err)
			continue
		}
		if got := p.StateBytes(); got != want {
			t.Errorf("%q: constructed StateBytes %d != registry %d", kind, got, want)
		}
	}
}

func TestBuildRequiredParamPropagates(t *testing.T) {
	if _, err := Build("gshare", nil, Env{}); err == nil {
		t.Fatal("gshare without hist_bits must fail")
	}
	p, err := Build("gshare", Params{"hist_bits": 8}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := StateBytes("gshare", Params{"hist_bits": 8})
	if err != nil || p.StateBytes() != want {
		t.Fatalf("gshare accounting: built %d, registry %d (err %v)", p.StateBytes(), want, err)
	}
}

func TestStaticRequiresTargetResolver(t *testing.T) {
	if _, err := Build("static", nil, Env{}); err == nil {
		t.Fatal("static predictor without Env.TargetOf must fail")
	}
	if _, err := Build("static", nil, Env{TargetOf: func(pc int) int { return 0 }}); err != nil {
		t.Fatal(err)
	}
}
