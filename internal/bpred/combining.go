package bpred

import "fmt"

// Local is a two-level local-history predictor (PAg-style): a table of
// per-branch history registers indexes a shared table of 2-bit counters.
type Local struct {
	histBits  int
	histories []uint16
	table     []uint8
	histMask  uint64
	pcMask    uint64
}

// NewLocal creates a local predictor with 2^pcBits history registers of
// histBits bits each, and a 2^histBits counter table.
func NewLocal(pcBits, histBits int) *Local {
	if pcBits < 1 || pcBits > 20 || histBits < 1 || histBits > 16 {
		panic(fmt.Sprintf("bpred: local predictor bits out of range (pc %d, hist %d)", pcBits, histBits))
	}
	return &Local{
		histBits:  histBits,
		histories: make([]uint16, 1<<uint(pcBits)),
		table:     make([]uint8, 1<<uint(histBits)),
		histMask:  (1 << uint(histBits)) - 1,
		pcMask:    (1 << uint(pcBits)) - 1,
	}
}

func (l *Local) localHist(pc int) uint64 {
	return uint64(l.histories[uint64(pc)&l.pcMask]) & l.histMask
}

// Predict implements Predictor. The global history argument is unused:
// local predictors keep per-branch histories, which are updated at Update
// time (commit), making the predictor immune to wrong-path pollution but
// slightly stale — a standard modeling choice.
func (l *Local) Predict(pc int, _ uint64) bool {
	return ctrPredict(l.table[l.localHist(pc)])
}

// Update implements Predictor.
func (l *Local) Update(pc int, _ uint64, taken bool) {
	h := l.localHist(pc)
	l.table[h] = ctrUpdate(l.table[h], taken)
	idx := uint64(pc) & l.pcMask
	nh := uint64(l.histories[idx]) << 1
	if taken {
		nh |= 1
	}
	l.histories[idx] = uint16(nh & l.histMask)
}

// StateBytes implements Predictor.
func (l *Local) StateBytes() int {
	return len(l.table)/4 + len(l.histories)*l.histBits/8
}

// Reset implements Predictor.
func (l *Local) Reset() {
	for i := range l.table {
		l.table[i] = 0
	}
	for i := range l.histories {
		l.histories[i] = 0
	}
}

// Combining is McFarling's combining predictor: two component predictors
// plus a chooser table of 2-bit counters indexed by PC that learns which
// component to trust per branch.
type Combining struct {
	p1, p2  Predictor
	chooser []uint8
	pcMask  uint64
}

// NewCombining builds a combining predictor with a 2^chooserBits chooser.
func NewCombining(p1, p2 Predictor, chooserBits int) *Combining {
	if chooserBits < 1 || chooserBits > 20 {
		panic(fmt.Sprintf("bpred: chooser bits %d out of range", chooserBits))
	}
	return &Combining{
		p1:      p1,
		p2:      p2,
		chooser: make([]uint8, 1<<uint(chooserBits)),
		pcMask:  (1 << uint(chooserBits)) - 1,
	}
}

// Predict implements Predictor: the chooser's counter selects p2 when it
// is high, p1 when low.
func (c *Combining) Predict(pc int, hist uint64) bool {
	if ctrPredict(c.chooser[uint64(pc)&c.pcMask]) {
		return c.p2.Predict(pc, hist)
	}
	return c.p1.Predict(pc, hist)
}

// Update implements Predictor: both components train; the chooser moves
// toward the component that was right when they disagree.
func (c *Combining) Update(pc int, hist uint64, taken bool) {
	d1 := c.p1.Predict(pc, hist)
	d2 := c.p2.Predict(pc, hist)
	if d1 != d2 {
		i := uint64(pc) & c.pcMask
		c.chooser[i] = ctrUpdate(c.chooser[i], d2 == taken)
	}
	c.p1.Update(pc, hist, taken)
	c.p2.Update(pc, hist, taken)
}

// StateBytes implements Predictor.
func (c *Combining) StateBytes() int {
	return c.p1.StateBytes() + c.p2.StateBytes() + len(c.chooser)/4
}

// Reset implements Predictor.
func (c *Combining) Reset() {
	c.p1.Reset()
	c.p2.Reset()
	for i := range c.chooser {
		c.chooser[i] = 0
	}
}
