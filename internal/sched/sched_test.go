package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderPreservingMerge: results are aligned with the task slice no
// matter how shards interleave, across a range of worker counts.
func TestOrderPreservingMerge(t *testing.T) {
	const n = 64
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[int]{
			ID: fmt.Sprintf("task-%02d", i),
			Run: func(tc *TaskContext) (int, error) {
				// Vary the work so completion order differs from
				// submission order.
				time.Sleep(time.Duration(tc.Rand.Intn(100)) * time.Microsecond)
				return i * i, nil
			},
		}
	}
	for _, workers := range []int{1, 2, 4, 16, 100} {
		res, err := Run(Options{Workers: workers}, tasks, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), n)
		}
		for i, r := range res {
			if r.Index != i || r.Value != i*i || r.ID != tasks[i].ID || r.Err != nil {
				t.Fatalf("workers=%d: result %d = %+v, want index %d value %d id %s", workers, i, r, i, i*i, tasks[i].ID)
			}
			if r.Shard < 0 || r.Shard >= workers {
				t.Fatalf("workers=%d: result %d ran on shard %d", workers, i, r.Shard)
			}
		}
	}
}

// TestWorkerBound: the pool never runs more than Workers tasks at once.
func TestWorkerBound(t *testing.T) {
	const workers, n = 3, 24
	var inflight, peak atomic.Int64
	tasks := make([]Task[struct{}], n)
	for i := range tasks {
		tasks[i] = Task[struct{}]{
			ID: fmt.Sprintf("t%d", i),
			Run: func(tc *TaskContext) (struct{}, error) {
				cur := inflight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inflight.Add(-1)
				return struct{}{}, nil
			},
		}
	}
	if _, err := Run(Options{Workers: workers}, tasks, nil); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, worker bound is %d", got, workers)
	}
}

// TestPerTaskRandIsScheduleIndependent: the random stream a task sees
// depends only on (seed, task ID) — not on worker count or interleaving.
func TestPerTaskRandIsScheduleIndependent(t *testing.T) {
	draw := func(workers int) []int64 {
		tasks := make([]Task[int64], 16)
		for i := range tasks {
			tasks[i] = Task[int64]{
				ID:  fmt.Sprintf("cell-%d", i),
				Run: func(tc *TaskContext) (int64, error) { return tc.Rand.Int63(), nil },
			}
		}
		res, err := Run(Options{Workers: workers, Seed: 42}, tasks, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, len(res))
		for i, r := range res {
			out[i] = r.Value
		}
		return out
	}
	seq := draw(1)
	for _, workers := range []int{2, 8} {
		par := draw(workers)
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: task %d drew %d, sequential drew %d", workers, i, par[i], seq[i])
			}
		}
	}
	// Different base seeds must give different streams.
	res, _ := Run(Options{Workers: 1, Seed: 43}, []Task[int64]{{
		ID:  "cell-0",
		Run: func(tc *TaskContext) (int64, error) { return tc.Rand.Int63(), nil },
	}}, nil)
	if res[0].Value == seq[0] {
		t.Fatal("different seeds produced the same per-task stream")
	}
}

// TestTaskSeedStability pins the seed derivation: changing it would
// silently re-seed every replicate in recorded experiments.
func TestTaskSeedStability(t *testing.T) {
	if TaskSeed(0, "a") == TaskSeed(0, "b") {
		t.Fatal("distinct IDs collided")
	}
	if TaskSeed(1, "a") == TaskSeed(2, "a") {
		t.Fatal("distinct bases collided")
	}
	if TaskSeed(7, "gcc/see/r0") != TaskSeed(7, "gcc/see/r0") {
		t.Fatal("TaskSeed is not a pure function")
	}
}

// TestErrorSelectionIsDeterministic: the run error is the lowest-indexed
// failure regardless of completion order.
func TestErrorSelectionIsDeterministic(t *testing.T) {
	errLate := errors.New("late failure (low index)")
	errFast := errors.New("fast failure (high index)")
	tasks := []Task[int]{
		{ID: "ok", Run: func(tc *TaskContext) (int, error) { return 1, nil }},
		{ID: "slow-fail", Run: func(tc *TaskContext) (int, error) {
			time.Sleep(20 * time.Millisecond)
			return 0, errLate
		}},
		{ID: "fast-fail", Run: func(tc *TaskContext) (int, error) { return 0, errFast }},
	}
	for i := 0; i < 3; i++ {
		res, err := Run(Options{Workers: 3}, tasks, nil)
		if !errors.Is(err, errLate) {
			t.Fatalf("run error = %v, want the lowest-indexed failure %v", err, errLate)
		}
		if res[0].Err != nil || !errors.Is(res[1].Err, errLate) || !errors.Is(res[2].Err, errFast) {
			t.Fatalf("per-task errors misplaced: %v / %v / %v", res[0].Err, res[1].Err, res[2].Err)
		}
	}
}

// TestPanicContainment: a panicking task becomes a *PanicError naming the
// task, and the rest of the schedule still completes.
func TestPanicContainment(t *testing.T) {
	tasks := []Task[string]{
		{ID: "fine", Run: func(tc *TaskContext) (string, error) { return "ok", nil }},
		{ID: "bomb", Run: func(tc *TaskContext) (string, error) { panic("boom") }},
		{ID: "also-fine", Run: func(tc *TaskContext) (string, error) { return "ok", nil }},
	}
	res, err := Run(Options{Workers: 2, ContainPanics: true}, tasks, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("run error = %v, want *PanicError", err)
	}
	if pe.Task != "bomb" || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic error = %+v, want task bomb value boom with stack", pe)
	}
	if !strings.Contains(pe.Error(), "bomb") || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("panic error text %q does not name task and value", pe.Error())
	}
	if res[0].Value != "ok" || res[2].Value != "ok" {
		t.Fatal("healthy tasks did not complete around the panic")
	}
}

// TestCancellation: tasks not yet started fail with the context error;
// in-flight tasks observe the same context.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	tasks := make([]Task[int], 32)
	for i := range tasks {
		tasks[i] = Task[int]{
			ID: fmt.Sprintf("t%d", i),
			Run: func(tc *TaskContext) (int, error) {
				once.Do(func() { close(started) })
				<-tc.Context.Done()
				return 0, tc.Context.Err()
			},
		}
	}
	go func() {
		<-started
		cancel()
	}()
	res, err := Run(Options{Workers: 2, Context: ctx}, tasks, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run error = %v, want context.Canceled", err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("task %d error = %v, want context.Canceled", i, r.Err)
		}
	}
}

// obsRecorder records observer events with a lock (observer contract:
// called concurrently).
type obsRecorder struct {
	mu       sync.Mutex
	started  []string
	done     []string
	inflight int
	peak     int
	errs     int
}

func (o *obsRecorder) TaskStarted(shard int, id string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started = append(o.started, id)
	o.inflight++
	if o.inflight > o.peak {
		o.peak = o.inflight
	}
}

func (o *obsRecorder) TaskDone(shard int, id string, d time.Duration, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.done = append(o.done, id)
	o.inflight--
	if err != nil {
		o.errs++
	}
	if d < 0 {
		panic("negative duration")
	}
}

// TestObserverAndStreaming: every task produces exactly one started and
// one done event, the in-flight count peaks within the worker bound, and
// the OnDone stream carries every result exactly once.
func TestObserverAndStreaming(t *testing.T) {
	const n = 20
	rec := &obsRecorder{}
	var streamMu sync.Mutex
	streamed := map[int]bool{}
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		fail := i == 7
		tasks[i] = Task[int]{
			ID: fmt.Sprintf("t%02d", i),
			Run: func(tc *TaskContext) (int, error) {
				if fail {
					return 0, errors.New("deliberate")
				}
				return i, nil
			},
		}
	}
	_, err := Run(Options{Workers: 4, Observer: rec}, tasks, func(r Result[int]) {
		streamMu.Lock()
		defer streamMu.Unlock()
		if streamed[r.Index] {
			t.Errorf("result %d streamed twice", r.Index)
		}
		streamed[r.Index] = true
	})
	if err == nil {
		t.Fatal("expected the deliberate failure to surface")
	}
	if len(rec.started) != n || len(rec.done) != n {
		t.Fatalf("observer saw %d started / %d done, want %d each", len(rec.started), len(rec.done), n)
	}
	if rec.errs != 1 {
		t.Fatalf("observer saw %d errors, want 1", rec.errs)
	}
	if rec.peak > 4 || rec.inflight != 0 {
		t.Fatalf("observer inflight peak %d (bound 4), final %d (want 0)", rec.peak, rec.inflight)
	}
	if len(streamed) != n {
		t.Fatalf("streamed %d results, want %d", len(streamed), n)
	}
}

// TestEmptyAndDefaults: zero tasks are a no-op; Workers 0 resolves to
// GOMAXPROCS; a nil context defaults to background.
func TestEmptyAndDefaults(t *testing.T) {
	res, err := Run[int](Options{}, nil, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v, %d results", err, len(res))
	}
	if (Options{}).workers() < 1 {
		t.Fatal("default worker count < 1")
	}
	if (Options{Workers: 7}).workers() != 7 {
		t.Fatal("explicit worker count not honored")
	}
	if (Options{}).context() == nil {
		t.Fatal("default context is nil")
	}
}

// TestMap: the slice fan-out helper preserves order and identity.
func TestMap(t *testing.T) {
	items := []string{"compress", "gcc", "go"}
	res, err := Map(Options{Workers: 2}, items,
		func(s string, i int) string { return fmt.Sprintf("gen/%s/r%d", s, i) },
		func(tc *TaskContext, s string) (string, error) { return strings.ToUpper(s), nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Value != strings.ToUpper(items[i]) {
			t.Fatalf("item %d: %q", i, r.Value)
		}
		if want := fmt.Sprintf("gen/%s/r%d", items[i], i); r.ID != want {
			t.Fatalf("item %d id %q, want %q", i, r.ID, want)
		}
	}
	if _, err := Map(Options{}, []int{1}, func(int, int) string { return "x" },
		func(tc *TaskContext, v int) (int, error) { return 0, errors.New("mapped failure") }); err == nil {
		t.Fatal("Map swallowed the task error")
	}
}
