// Package sched is the deterministic parallel execution engine behind
// the experiment harness, the polysim comparison mode, and polyserve's
// /v1/sweeps endpoint.
//
// A run shards a fixed list of tasks — experiment cells, workload
// generations, anything shaped func(*TaskContext) (T, error) — across a
// bounded pool of workers and merges the outcomes positionally, so the
// result slice is ordered by submission regardless of which shard
// finished first. Determinism is a design contract, not an accident:
//
//   - Results are merged order-preservingly: Run's result slice is
//     aligned index-for-index with the task slice.
//   - Error selection is by task order, not completion order: the run's
//     error is the failed task with the lowest index, every time.
//   - Each task gets a private *rand.Rand seeded from (Options.Seed,
//     Task.ID) only. Worker count, shard assignment and completion order
//     cannot leak into anything a task derives from its TaskContext.
//
// Consequently a sweep run with Workers: 1 is bit-identical to the same
// sweep with Workers: N — the property the harness's rendered tables rely
// on and internal/harness's golden tests enforce.
package sched

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one schedulable unit of work. ID must be stable across runs
// (e.g. "gcc/see/r0"): it names the task in errors and observer events,
// and seeds the task's private rand state.
type Task[T any] struct {
	ID  string
	Run func(tc *TaskContext) (T, error)
}

// TaskContext carries per-task execution state into Task.Run.
type TaskContext struct {
	// Context is the run's context; tasks should thread it into
	// cancellable work (the harness passes it down to the cycle loop).
	Context context.Context
	// Rand is private to this task, seeded from (Options.Seed, task ID)
	// alone — identical across runs no matter how many workers execute
	// the schedule or in what order shards finish.
	Rand *rand.Rand
	// ID is the task's stable identity.
	ID string
	// Index is the task's position in the submitted slice.
	Index int
	// Shard is the worker executing this task, in [0, Workers). The same
	// task may land on different shards across runs; nothing
	// result-bearing may depend on it (it exists for observability).
	Shard int
}

// Result is one task's outcome, reported positionally by Run and
// incrementally through the OnDone stream.
type Result[T any] struct {
	ID      string
	Index   int
	Shard   int
	Value   T
	Err     error
	Elapsed time.Duration
}

// Observer receives task lifecycle events from worker goroutines;
// implementations must be safe for concurrent use. polyserve wires this
// to its /metrics shard gauges and histograms.
type Observer interface {
	// TaskStarted fires when a shard picks the task up.
	TaskStarted(shard int, id string)
	// TaskDone fires when the task returns (err is the task's error,
	// including a contained panic or a skip due to cancellation).
	TaskDone(shard int, id string, elapsed time.Duration, err error)
}

// Options configure a Run.
type Options struct {
	// Workers bounds the pool (0 = GOMAXPROCS). One worker executes the
	// schedule strictly sequentially.
	Workers int
	// Context cancels the run: in-flight tasks see it through their
	// TaskContext, tasks not yet started fail with the context's error.
	Context context.Context
	// Seed is the base of every task's private rand state (the task ID is
	// mixed in). Zero is a valid seed.
	Seed int64
	// ContainPanics converts a panicking task into a *PanicError result
	// instead of crashing the process.
	ContainPanics bool
	// Observer, when non-nil, receives task lifecycle events.
	Observer Observer
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// PanicError is a contained task panic (Options.ContainPanics).
type PanicError struct {
	Task  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task %s panicked: %v", e.Task, e.Value)
}

// TaskSeed derives the private rand seed of a task: a 64-bit FNV-1a hash
// of the task ID mixed with the base seed through a splitmix64 finalizer.
// It depends on nothing but (base, id), which is what makes per-task rand
// state reproducible under any worker count.
func TaskSeed(base int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	x := uint64(base) ^ h.Sum64()
	// splitmix64 finalizer: full-avalanche mixing so adjacent IDs and
	// seeds land far apart.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Run executes tasks on a bounded worker pool and returns the outcomes
// aligned index-for-index with tasks (the order-preserving merge). The
// returned error is the lowest-indexed task failure (nil if every task
// succeeded); per-task errors are also available on the results.
//
// onDone, when non-nil, streams each result as it completes, from worker
// goroutines in completion order; it must be safe for concurrent use.
// Run itself only returns after every task has finished or been skipped.
func Run[T any](opts Options, tasks []Task[T], onDone func(Result[T])) ([]Result[T], error) {
	results := make([]Result[T], len(tasks))
	if len(tasks) == 0 {
		return results, nil
	}
	ctx := opts.context()
	workers := opts.workers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for shard := 0; shard < workers; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				results[i] = runOne(opts, ctx, shard, i, tasks[i])
				if onDone != nil {
					onDone(results[i])
				}
			}
		}(shard)
	}
	wg.Wait()
	for i := range results {
		if results[i].Err != nil {
			return results, results[i].Err
		}
	}
	return results, nil
}

// runOne executes a single task on the given shard, with lifecycle
// observation and (optionally) panic containment.
func runOne[T any](opts Options, ctx context.Context, shard, index int, t Task[T]) (res Result[T]) {
	res = Result[T]{ID: t.ID, Index: index, Shard: shard}
	if opts.Observer != nil {
		opts.Observer.TaskStarted(shard, t.ID)
	}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if opts.Observer != nil {
			opts.Observer.TaskDone(shard, t.ID, res.Elapsed, res.Err)
		}
	}()
	// A cancelled run skips tasks that have not started yet; tasks
	// already in flight observe the same context through TaskContext.
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	tc := &TaskContext{
		Context: ctx,
		Rand:    rand.New(rand.NewSource(TaskSeed(opts.Seed, t.ID))),
		ID:      t.ID,
		Index:   index,
		Shard:   shard,
	}
	if opts.ContainPanics {
		defer func() {
			if r := recover(); r != nil {
				res.Err = &PanicError{Task: t.ID, Value: r, Stack: debug.Stack()}
			}
		}()
	}
	res.Value, res.Err = t.Run(tc)
	return res
}

// Map is the common fan-out: it builds one task per item with
// id(item, index) naming it and run(tc, item) executing it, then Runs the
// schedule. Results are positionally aligned with items.
func Map[In, Out any](opts Options, items []In, id func(In, int) string, run func(*TaskContext, In) (Out, error)) ([]Result[Out], error) {
	tasks := make([]Task[Out], len(items))
	for i, item := range items {
		item := item
		tasks[i] = Task[Out]{ID: id(item, i), Run: func(tc *TaskContext) (Out, error) { return run(tc, item) }}
	}
	return Run(opts, tasks, nil)
}
