package pipeline

import (
	"bytes"
	"strings"
	"testing"
)

func TestPipeTraceCollectsTimelines(t *testing.T) {
	prog := diamondProgram(5_000, 0.5)
	cfg := DefaultConfig()
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPipeTrace(50)
	m.SetTracer(pt)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pt.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"seq", "fetch", "rename", "instruction", "li"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
	// Committed instructions should show a C<cycle> end marker; with a
	// random branch there must also be kills.
	if !strings.Contains(out, "C") {
		t.Error("no committed instruction in trace")
	}
	if pt.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestPipeTraceStageOrdering(t *testing.T) {
	prog := diamondProgram(5_000, 0.7)
	m, err := New(prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPipeTrace(200)
	m.SetTracer(pt)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Invariant: for every collected instruction, stage cycles are
	// monotone: fetch < rename <= issue <= writeback (when present).
	for seq, r := range pt.rows {
		if r.rename != 0 && r.rename <= r.fetch {
			t.Fatalf("seq %d: rename %d not after fetch %d", seq, r.rename, r.fetch)
		}
		if r.issue != 0 && r.issue < r.rename {
			t.Fatalf("seq %d: issue %d before rename %d", seq, r.issue, r.rename)
		}
		if r.writeback != 0 && r.writeback <= r.issue {
			t.Fatalf("seq %d: writeback %d not after issue %d", seq, r.writeback, r.issue)
		}
		if r.commit != 0 && r.writeback != 0 && r.commit <= r.writeback {
			t.Fatalf("seq %d: commit %d not after writeback %d", seq, r.commit, r.writeback)
		}
	}
	// Front-end latency: rename - fetch must equal FrontEndStages for
	// unstalled instructions; it can only be larger under stall.
	min := uint64(1 << 62)
	for _, r := range pt.rows {
		if r.rename != 0 && r.rename-r.fetch < min {
			min = r.rename - r.fetch
		}
	}
	if min != uint64(DefaultConfig().FrontEndStages) {
		t.Errorf("minimum fetch-to-rename latency %d, want %d stages", min, DefaultConfig().FrontEndStages)
	}
}

func TestTraceKindNames(t *testing.T) {
	for k := TraceFetch; k <= TraceRecover; k++ {
		if strings.Contains(k.String(), "?") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestTracerDetach(t *testing.T) {
	prog := diamondProgram(3_000, 0.5)
	m, err := New(prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPipeTrace(10)
	m.SetTracer(pt)
	m.SetTracer(nil) // detached before running: no events
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pt.rows) != 0 {
		t.Error("detached tracer received events")
	}
}

func TestPipeTraceControlEventsOnPolyPath(t *testing.T) {
	prog := diamondProgram(8_000, 0.5)
	m, err := New(prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[TraceKind]int{}
	m.SetTracer(tracerFunc(func(e TraceEvent) { kinds[e.Kind]++ }))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []TraceKind{TraceFetch, TraceRename, TraceIssue, TraceWriteback, TraceCommit, TraceKill, TraceDiverge, TraceResolve} {
		if kinds[k] == 0 {
			t.Errorf("no %v events on a divergence-heavy run", k)
		}
	}
	// Conservation: every instruction fetched is eventually committed or
	// killed (up to the in-flight tail at halt).
	if kinds[TraceCommit]+kinds[TraceKill] > kinds[TraceFetch] {
		t.Error("more terminations than fetches")
	}
	// Events must never outnumber their upstream stage.
	if kinds[TraceRename] > kinds[TraceFetch] || kinds[TraceIssue] > kinds[TraceRename] {
		t.Error("stage event ordering violated in aggregate")
	}
}

// tracerFunc adapts a function to the Tracer interface.
type tracerFunc func(TraceEvent)

func (f tracerFunc) Event(e TraceEvent) { f(e) }

func TestStatsSummaryMentionsNewSubsystems(t *testing.T) {
	prog := switchProgram(10_000, 4)
	cfg := DefaultConfig()
	cfg.EnableMRC = true
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.Stats.Summary()
	if !strings.Contains(out, "indirect jumps") {
		t.Errorf("summary missing indirect jump line:\n%s", out)
	}
	if !strings.Contains(out, "window occupancy") || !strings.Contains(out, "stall cycles") {
		t.Errorf("summary missing cycle accounting:\n%s", out)
	}
}
