package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// diamondProgram builds a program whose single hot branch depends on
// Bernoulli(bias) data and whose arms write different values — the
// smallest program where wrong-path execution visibly computes wrong
// values that must never commit.
func diamondProgram(iters int, bias float64) *isa.Program {
	p, err := workload.Generate(workload.Spec{
		Name: "diamond", Seed: 9,
		TargetInsts: uint64(iters),
		Branches:    []workload.BranchSpec{{Kind: workload.KindBernoulli, Bias: bias}},
		BlockLen:    6, Chains: 4,
		LoadFrac: 0.2, StoreFrac: 0.1, PredDepth: 4,
	})
	if err != nil {
		panic(err)
	}
	return p
}

func TestDivergenceCreatesAndResolvesPaths(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(diamondProgram(30_000, 0.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
	s := &m.Stats
	if s.Divergences == 0 {
		t.Fatal("expected divergences on a random branch")
	}
	if s.WrongSubtreeKills == 0 {
		t.Error("every resolved divergence should kill a subtree")
	}
	// At the end, all context resources must be recycled.
	if m.ctxAlloc.InUse() != 0 {
		t.Errorf("history positions leaked: %d in use", m.ctxAlloc.InUse())
	}
	if m.divergences != 0 {
		t.Errorf("divergence counter leaked: %d", m.divergences)
	}
	if live := m.livePathCount(); live != 1 {
		t.Errorf("paths leaked: %d live at halt", live)
	}
	if m.ckpts.Available() != m.ckpts.Capacity() {
		t.Errorf("checkpoints leaked: %d/%d free", m.ckpts.Available(), m.ckpts.Capacity())
	}
}

func TestPhysicalRegistersConserved(t *testing.T) {
	for _, kind := range []ConfidenceKind{ConfAlwaysHigh, ConfJRS, ConfAlwaysLow} {
		cfg := DefaultConfig()
		cfg.Confidence.Kind = kind
		m, err := New(diamondProgram(30_000, 0.5), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		// Every in-flight allocation is freed at kill or commit; at halt
		// the only live registers are the 32 named by the retirement map.
		if got := m.freeList.InUse(); got != isa.NumRegs {
			t.Errorf("kind %q: %d physical registers in use at halt, want %d", kind, got, isa.NumRegs)
		}
	}
}

func TestWrongPathValuesNeverCommit(t *testing.T) {
	// Run with maximal eagerness and a 50/50 branch: wrong arms execute
	// constantly. VerifyArchState (bit-exact vs the interpreter) is the
	// assertion; this test exists to pin the scenario explicitly.
	cfg := DefaultConfig()
	cfg.Confidence.Kind = ConfAlwaysLow
	m, err := New(diamondProgram(40_000, 0.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Killed == 0 {
		t.Error("eager execution must kill wrong-path instructions")
	}
}

func TestStoreForwardingStaysOnPath(t *testing.T) {
	// A program where each diamond arm stores a different value to the
	// same address and then loads it back: forwarding across sibling
	// paths would commit the wrong value, so architectural verification
	// doubles as the CTX-filter check. Build it by hand for precision.
	b := workload.NewBuilder("fwd")
	data := make([]int64, 256)
	for i := range data {
		if i%2 == 0 {
			data[i] = 1
		}
	}
	base := b.Data(data)
	cell := b.Data([]int64{0}) // the contested address
	acc := b.Data([]int64{0})
	b.Li(1, 0)   // i
	b.Li(2, 200) // n
	b.Li(3, 0)   // acc value
	b.Label("top")
	b.Load(4, 1, base) // pseudo-random 0/1
	b.Branch(isa.Bne, 4, 0, "odd")
	// even arm: cell = 111; acc += cell
	b.Li(5, 111)
	b.Store(5, 0, cell)
	b.Load(6, 0, cell)
	b.Op3(isa.Add, 3, 3, 6)
	b.Jump("next")
	b.Label("odd")
	// odd arm: cell = 222; acc += cell
	b.Li(5, 222)
	b.Store(5, 0, cell)
	b.Load(6, 0, cell)
	b.Op3(isa.Add, 3, 3, 6)
	b.Label("next")
	b.OpI(isa.Addi, 1, 1, 1)
	b.Branch(isa.Blt, 1, 2, "top")
	b.Store(3, 0, acc)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Confidence.Kind = ConfAlwaysLow // force divergence at every branch
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatalf("cross-path forwarding corrupted state: %v", err)
	}
	if m.Stats.StoreForwards == 0 {
		t.Error("scenario should exercise store-to-load forwarding")
	}
	// acc = 100*111 + 100*222 (alternating data) = 33300.
	if got := m.Memory()[acc]; got != 33300 {
		t.Errorf("acc = %d, want 33300", got)
	}
}

func TestContextResourceExhaustionFallsBackToMonopath(t *testing.T) {
	// With a single history position, at most one divergence can be in
	// flight; further low-confidence branches must proceed monopath-style
	// (DivergenceBlocked) rather than deadlocking.
	cfg := DefaultConfig()
	cfg.CtxHistoryWidth = 1
	cfg.Confidence.Kind = ConfAlwaysLow
	m, err := New(diamondProgram(30_000, 0.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.DivergenceBlocked == 0 {
		t.Error("expected blocked divergences with one history position")
	}
	if m.Stats.PathHist.FracAtMost(3) < 0.999 {
		t.Error("one history position allows at most 3 simultaneous paths")
	}
}

func TestDualPathRestrictsDivergences(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDivergences = 1
	cfg.Confidence.Kind = ConfAlwaysLow
	m, err := New(diamondProgram(30_000, 0.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// One divergence means at most 3 fetch-relevant paths (paper Sec. 5.2);
	// the CTX table may briefly hold an extra draining parent context whose
	// older instructions are still in flight.
	if m.Stats.PathHist.FracAtMost(4) < 0.99 {
		t.Error("dual-path must cap live paths at 3 (+1 draining context)")
	}
	if m.Stats.PathHist.FracAtMost(3) < 0.75 {
		t.Error("dual-path should run with <=3 paths most of the time")
	}
	if m.Stats.DivergenceBlocked == 0 {
		t.Error("dual-path should block divergences while one is in flight")
	}
}

func TestTinyCheckpointPoolStallsButCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checkpoints = 2
	m, err := New(diamondProgram(20_000, 0.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
}

func TestTinyPhysRegFileStallsButCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowSize = 32
	cfg.PhysRegs = 72 // barely above 32 logical + 32 window
	cfg.Checkpoints = 8
	m, err := New(diamondProgram(20_000, 0.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinFetchPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchPolicy = FetchRoundRobin
	m, err := New(diamondProgram(30_000, 0.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Divergences == 0 {
		t.Error("round-robin run should still diverge")
	}
}

func TestNonSpeculativeHistoryRunsCorrectly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Monopath
	cfg.Confidence.Kind = ConfAlwaysHigh
	cfg.NonSpeculativeHistory = true
	m, err := New(diamondProgram(30_000, 0.7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveEstimatorEndToEnd(t *testing.T) {
	// m88ksim-like biased branches: the adaptive estimator should issue
	// markedly fewer divergences than plain JRS.
	prog := diamondProgram(60_000, 0.94)
	cfgJRS := DefaultConfig()
	cfgAd := DefaultConfig()
	cfgAd.Confidence.Kind = ConfAdaptive

	run := func(cfg Config) *Machine {
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	jrs := run(cfgJRS)
	ad := run(cfgAd)
	if ad.Stats.Divergences >= jrs.Stats.Divergences {
		t.Errorf("adaptive divergences %d should be below plain JRS %d on a low-PVN workload",
			ad.Stats.Divergences, jrs.Stats.Divergences)
	}
}

func TestStatsAccountingInvariants(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(diamondProgram(40_000, 0.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := &m.Stats
	if s.Renamed > s.Fetched {
		t.Error("cannot rename more than fetched")
	}
	if s.Committed > s.Renamed {
		t.Error("cannot commit more than renamed")
	}
	if s.LowConfMispred > s.LowConf || s.LowConfMispred > s.Mispredicts {
		t.Error("low-confidence mispredict accounting")
	}
	if s.Mispredicts != s.LowConfMispred+s.HighConfMispred {
		t.Error("mispredicts must split into low/high confidence")
	}
	if s.TakenBranches > s.CondBranches {
		t.Error("taken branches exceed branches")
	}
	// All fetched instructions are eventually renamed+killed or still in
	// flight at halt; killed counts both window and front-end squashes.
	if s.Killed+s.Committed > s.Fetched {
		t.Error("killed+committed exceeds fetched")
	}
}

func TestWindowOccupancyBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowSize = 64
	m, err := New(diamondProgram(20_000, 0.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.WindowHist.FracAtMost(64) < 0.999 {
		t.Error("window occupancy exceeded its configured size")
	}
}

// TestDeterminism: identical configs and programs must produce identical
// cycle counts and statistics (the simulator is single-threaded and
// seeded; any nondeterminism is a bug, e.g. map-iteration order leaking
// into simulation decisions).
func TestDeterminism(t *testing.T) {
	prog := diamondProgram(30_000, 0.5)
	run := func() runFingerprint {
		m, err := New(prog, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return runFingerprint{m.Stats.Cycles, m.Stats.Committed, m.Stats.Fetched, m.Stats.Divergences, m.Stats.Mispredicts}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic simulation: %+v vs %+v", a, b)
	}
}

type runFingerprint struct{ cycles, committed, fetched, div, mis uint64 }

func TestResolutionBusLimit(t *testing.T) {
	prog := diamondProgram(20_000, 0.5)
	run := func(buses int) *Machine {
		cfg := DefaultConfig()
		cfg.ResolutionBuses = buses
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if err := m.VerifyArchState(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	unlimited := run(0)
	one := run(1)
	// A single resolution bus delays kills and recoveries; it must never
	// be faster than unlimited buses.
	if one.Stats.Cycles < unlimited.Stats.Cycles {
		t.Errorf("one bus (%d cycles) beat unlimited buses (%d cycles)",
			one.Stats.Cycles, unlimited.Stats.Cycles)
	}
}

func TestAlternatePredictorsEndToEnd(t *testing.T) {
	prog := diamondProgram(25_000, 0.7)
	for _, kind := range []PredictorKind{PredBimodal, PredStatic, PredLocal, PredCombining} {
		cfg := DefaultConfig()
		cfg.Predictor.Kind = kind
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		if err := m.VerifyArchState(); err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		if m.Stats.CondBranches == 0 {
			t.Fatalf("kind %q: no branches", kind)
		}
	}
}

func TestCycleAccounting(t *testing.T) {
	m, err := New(diamondProgram(20_000, 0.5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := &m.Stats
	zeroCommit := s.CommitHist.Bucket(0)
	if zeroCommit != s.StallEmptyWindow+s.StallExecution {
		t.Errorf("stall taxonomy (%d+%d) must cover zero-commit cycles (%d)",
			s.StallEmptyWindow, s.StallExecution, zeroCommit)
	}
	if s.CommitHist.Samples() == 0 {
		t.Error("commit histogram not sampled")
	}
	// Average commits/cycle must equal IPC (same numerator/denominator,
	// modulo the final halting cycle).
	if diff := s.CommitHist.Mean() - s.IPC(); diff > 0.1 || diff < -0.1 {
		t.Errorf("commit histogram mean %.3f far from IPC %.3f", s.CommitHist.Mean(), s.IPC())
	}
}

func TestMRCArchEquivalenceAndBenefit(t *testing.T) {
	// MRC is a timing optimization only: committed state must be exact,
	// and with a hot cache it should not be slower than plain monopath
	// on a misprediction-heavy workload that revisits recovery targets.
	prog := diamondProgram(40_000, 0.5)
	run := func(mrcOn bool) *Machine {
		cfg := DefaultConfig()
		cfg.Mode = Monopath
		cfg.Confidence.Kind = ConfAlwaysHigh
		cfg.EnableMRC = mrcOn
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if err := m.VerifyArchState(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain := run(false)
	mrc := run(true)
	if mrc.Stats.MRCInjections == 0 {
		t.Fatal("MRC never injected on a misprediction-heavy loop")
	}
	if mrc.Stats.IPC() < plain.Stats.IPC()*0.98 {
		t.Errorf("MRC should not hurt: %.3f vs %.3f", mrc.Stats.IPC(), plain.Stats.IPC())
	}
	t.Logf("monopath %.3f IPC, +MRC %.3f IPC (%d injections)",
		plain.Stats.IPC(), mrc.Stats.IPC(), mrc.Stats.MRCInjections)
}

func TestMRCWithSEE(t *testing.T) {
	// MRC and SEE compose: SEE removes penalties for caught divergences,
	// MRC shortens the rest. State must stay exact.
	prog := diamondProgram(30_000, 0.5)
	cfg := DefaultConfig()
	cfg.EnableMRC = true
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
}
