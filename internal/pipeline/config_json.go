package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/cache"
)

// SchemaV1 is the wire-format identifier of the versioned canonical JSON
// encoding of a Config. Every encoded document carries it in a "schema"
// field; decoders reject documents with any other (or a missing) schema,
// so the format can evolve with explicit versioning instead of silent
// drift.
const SchemaV1 = "polypath/v1"

// wireCacheV1 mirrors cache.Config with stable field names.
type wireCacheV1 struct {
	Sets      int `json:"sets"`
	Ways      int `json:"ways"`
	LineWords int `json:"line_words"`
}

// wirePredictorV1 mirrors PredictorSpec; the kind travels as its canonical
// spelling.
type wirePredictorV1 struct {
	Kind     string `json:"kind"`
	HistBits int    `json:"hist_bits"`
}

// wireConfidenceV1 mirrors ConfidenceSpec.
type wireConfidenceV1 struct {
	Kind           string  `json:"kind"`
	IndexBits      int     `json:"index_bits"`
	CtrBits        int     `json:"ctr_bits"`
	Threshold      int     `json:"threshold"`
	EnhancedIndex  bool    `json:"enhanced_index"`
	AdaptiveMinPVN float64 `json:"adaptive_min_pvn"`
	AdaptiveWindow int     `json:"adaptive_window"`
}

// wireConfigV1 is the polypath/v1 wire form of Config. Field names are
// frozen: renaming or reordering a Go struct field must not change the
// wire format, and new fields require a schema bump.
type wireConfigV1 struct {
	Schema                string           `json:"schema"`
	Mode                  string           `json:"mode"`
	FetchWidth            int              `json:"fetch_width"`
	RenameWidth           int              `json:"rename_width"`
	CommitWidth           int              `json:"commit_width"`
	FrontEndStages        int              `json:"front_end_stages"`
	WindowSize            int              `json:"window_size"`
	NumIntType0           int              `json:"num_int_type0"`
	NumIntType1           int              `json:"num_int_type1"`
	NumFPAdd              int              `json:"num_fp_add"`
	NumFPMul              int              `json:"num_fp_mul"`
	NumMemPorts           int              `json:"num_mem_ports"`
	PhysRegs              int              `json:"phys_regs"`
	Checkpoints           int              `json:"checkpoints"`
	CtxHistoryWidth       int              `json:"ctx_history_width"`
	MaxPaths              int              `json:"max_paths"`
	MaxDivergences        int              `json:"max_divergences"`
	Predictor             wirePredictorV1  `json:"predictor"`
	Confidence            wireConfidenceV1 `json:"confidence"`
	FetchPolicy           string           `json:"fetch_policy"`
	EnableDCache          bool             `json:"enable_dcache"`
	DCache                wireCacheV1      `json:"dcache"`
	DCacheMissLatency     int              `json:"dcache_miss_latency"`
	EnableICache          bool             `json:"enable_icache"`
	ICache                wireCacheV1      `json:"icache"`
	ICacheMissLatency     int              `json:"icache_miss_latency"`
	BTBBits               int              `json:"btb_bits"`
	RASDepth              int              `json:"ras_depth"`
	EnableMRC             bool             `json:"enable_mrc"`
	MRCBits               int              `json:"mrc_bits"`
	ResolutionBuses       int              `json:"resolution_buses"`
	NonSpeculativeHistory bool             `json:"non_speculative_history"`
	MaxInsts              uint64           `json:"max_insts"`
}

// EncodeConfigV1 renders the configuration as canonical polypath/v1 JSON:
// the config is normalized (derived defaults filled, inert fields zeroed,
// constraints checked) and encoded with a fixed field order, so two
// configurations describing the same machine encode byte-identically.
func EncodeConfigV1(c Config) ([]byte, error) {
	n, err := c.normalize()
	if err != nil {
		return nil, err
	}
	w := wireConfigV1{
		Schema:          SchemaV1,
		Mode:            modeNames[n.Mode],
		FetchWidth:      n.FetchWidth,
		RenameWidth:     n.RenameWidth,
		CommitWidth:     n.CommitWidth,
		FrontEndStages:  n.FrontEndStages,
		WindowSize:      n.WindowSize,
		NumIntType0:     n.NumIntType0,
		NumIntType1:     n.NumIntType1,
		NumFPAdd:        n.NumFPAdd,
		NumFPMul:        n.NumFPMul,
		NumMemPorts:     n.NumMemPorts,
		PhysRegs:        n.PhysRegs,
		Checkpoints:     n.Checkpoints,
		CtxHistoryWidth: n.CtxHistoryWidth,
		MaxPaths:        n.MaxPaths,
		MaxDivergences:  n.MaxDivergences,
		Predictor: wirePredictorV1{
			Kind:     predictorNames[n.Predictor.Kind],
			HistBits: n.Predictor.HistBits,
		},
		Confidence: wireConfidenceV1{
			Kind:           confidenceNames[n.Confidence.Kind],
			IndexBits:      n.Confidence.IndexBits,
			CtrBits:        n.Confidence.CtrBits,
			Threshold:      n.Confidence.Threshold,
			EnhancedIndex:  n.Confidence.EnhancedIndex,
			AdaptiveMinPVN: n.Confidence.AdaptiveMinPVN,
			AdaptiveWindow: n.Confidence.AdaptiveWindow,
		},
		FetchPolicy:           fetchPolicyNames[n.FetchPolicy],
		EnableDCache:          n.EnableDCache,
		DCache:                wireCacheV1{n.DCache.Sets, n.DCache.Ways, n.DCache.LineWords},
		DCacheMissLatency:     n.DCacheMissLatency,
		EnableICache:          n.EnableICache,
		ICache:                wireCacheV1{n.ICache.Sets, n.ICache.Ways, n.ICache.LineWords},
		ICacheMissLatency:     n.ICacheMissLatency,
		BTBBits:               n.BTBBits,
		RASDepth:              n.RASDepth,
		EnableMRC:             n.EnableMRC,
		MRCBits:               n.MRCBits,
		ResolutionBuses:       n.ResolutionBuses,
		NonSpeculativeHistory: n.NonSpeculativeHistory,
		MaxInsts:              n.MaxInsts,
	}
	return json.Marshal(w)
}

// DecodeConfigV1 parses polypath/v1 JSON into a validated Config. Unknown
// fields are rejected (a misspelled parameter is an error, never a silent
// default), the schema field is mandatory, and the decoded machine is
// validated before it is returned.
func DecodeConfigV1(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wireConfigV1
	if err := dec.Decode(&w); err != nil {
		return Config{}, &ConfigError{Field: "json", Reason: err.Error()}
	}
	if err := ensureEOF(dec); err != nil {
		return Config{}, err
	}
	if w.Schema != SchemaV1 {
		return Config{}, cfgErr("schema", "got %q, want %q", w.Schema, SchemaV1)
	}
	mode, err := ParseMode(w.Mode)
	if err != nil {
		return Config{}, err
	}
	pk, err := ParsePredictorKind(w.Predictor.Kind)
	if err != nil {
		return Config{}, err
	}
	ck, err := ParseConfidenceKind(w.Confidence.Kind)
	if err != nil {
		return Config{}, err
	}
	fp, err := ParseFetchPolicy(w.FetchPolicy)
	if err != nil {
		return Config{}, err
	}
	c := Config{
		Mode:            mode,
		FetchWidth:      w.FetchWidth,
		RenameWidth:     w.RenameWidth,
		CommitWidth:     w.CommitWidth,
		FrontEndStages:  w.FrontEndStages,
		WindowSize:      w.WindowSize,
		NumIntType0:     w.NumIntType0,
		NumIntType1:     w.NumIntType1,
		NumFPAdd:        w.NumFPAdd,
		NumFPMul:        w.NumFPMul,
		NumMemPorts:     w.NumMemPorts,
		PhysRegs:        w.PhysRegs,
		Checkpoints:     w.Checkpoints,
		CtxHistoryWidth: w.CtxHistoryWidth,
		MaxPaths:        w.MaxPaths,
		MaxDivergences:  w.MaxDivergences,
		Predictor: PredictorSpec{
			Kind:     pk,
			HistBits: w.Predictor.HistBits,
		},
		Confidence: ConfidenceSpec{
			Kind:           ck,
			IndexBits:      w.Confidence.IndexBits,
			CtrBits:        w.Confidence.CtrBits,
			Threshold:      w.Confidence.Threshold,
			EnhancedIndex:  w.Confidence.EnhancedIndex,
			AdaptiveMinPVN: w.Confidence.AdaptiveMinPVN,
			AdaptiveWindow: w.Confidence.AdaptiveWindow,
		},
		FetchPolicy:           fp,
		EnableDCache:          w.EnableDCache,
		DCache:                cache.Config{Sets: w.DCache.Sets, Ways: w.DCache.Ways, LineWords: w.DCache.LineWords},
		DCacheMissLatency:     w.DCacheMissLatency,
		EnableICache:          w.EnableICache,
		ICache:                cache.Config{Sets: w.ICache.Sets, Ways: w.ICache.Ways, LineWords: w.ICache.LineWords},
		ICacheMissLatency:     w.ICacheMissLatency,
		BTBBits:               w.BTBBits,
		RASDepth:              w.RASDepth,
		EnableMRC:             w.EnableMRC,
		MRCBits:               w.MRCBits,
		ResolutionBuses:       w.ResolutionBuses,
		NonSpeculativeHistory: w.NonSpeculativeHistory,
		MaxInsts:              w.MaxInsts,
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

func ensureEOF(dec *json.Decoder) error {
	if dec.More() {
		return &ConfigError{Field: "json", Reason: "trailing data after config document"}
	}
	return nil
}

// CanonicalHash returns the hex SHA-256 of the canonical polypath/v1
// encoding of the normalized configuration: the stable identity used to
// key result memoization. Configurations that normalize identically hash
// identically, regardless of how they were spelled. An invalid config is
// reported as a *ConfigError, never a panic; there is deliberately no
// panicking Must variant, so every caller handles the error.
//
// Audit is a runtime diagnostic knob that cannot change results, so it is
// not part of the wire encoding: configs differing only in audit level
// hash identically and share memoized results.
func CanonicalHash(c Config) (string, error) {
	blob, err := EncodeConfigV1(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}
