package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/policy"
)

// SchemaV1 is the wire-format identifier of the original versioned
// canonical JSON encoding of a Config. Every encoded document carries its
// schema in a "schema" field; decoders reject documents with any other (or
// a missing) schema, so the format can evolve with explicit versioning
// instead of silent drift.
//
// polypath/v1 is frozen: it predates the open predictor registry and can
// express exactly the closed predictor/estimator set it shipped with
// (kind + hist_bits). Documents in this schema remain decodable forever
// through the compat shim in DecodeConfigV1/DecodeConfig, and configs
// expressible in v1 are still hashed over their v1 encoding so every
// pre-existing CanonicalHash (memoization keys, journals) stays valid.
const SchemaV1 = "polypath/v1"

// SchemaV2 is the open-registry wire format: the predictor travels as an
// opaque (kind, params) pair and the confidence spec gains the same open
// params map, so any registered kind round-trips without a schema bump.
const SchemaV2 = "polypath/v2"

// wireCacheV1 mirrors cache.Config with stable field names.
type wireCacheV1 struct {
	Sets      int `json:"sets"`
	Ways      int `json:"ways"`
	LineWords int `json:"line_words"`
}

// wirePredictorV1 mirrors the closed pre-registry PredictorSpec; the kind
// travels as its canonical spelling.
type wirePredictorV1 struct {
	Kind     string `json:"kind"`
	HistBits int    `json:"hist_bits"`
}

// wireConfidenceV1 mirrors ConfidenceSpec (without the open params map,
// which did not exist in v1).
type wireConfidenceV1 struct {
	Kind           string  `json:"kind"`
	IndexBits      int     `json:"index_bits"`
	CtrBits        int     `json:"ctr_bits"`
	Threshold      int     `json:"threshold"`
	EnhancedIndex  bool    `json:"enhanced_index"`
	AdaptiveMinPVN float64 `json:"adaptive_min_pvn"`
	AdaptiveWindow int     `json:"adaptive_window"`
}

// wirePredictorV2 carries the open predictor spec. Params is omitted when
// empty; encoding/json writes map keys sorted, so the encoding is
// canonical.
type wirePredictorV2 struct {
	Kind   string         `json:"kind"`
	Params map[string]int `json:"params,omitempty"`
}

// wireConfidenceV2 is wireConfidenceV1 plus the open params map.
type wireConfidenceV2 struct {
	Kind           string         `json:"kind"`
	IndexBits      int            `json:"index_bits"`
	CtrBits        int            `json:"ctr_bits"`
	Threshold      int            `json:"threshold"`
	EnhancedIndex  bool           `json:"enhanced_index"`
	AdaptiveMinPVN float64        `json:"adaptive_min_pvn"`
	AdaptiveWindow int            `json:"adaptive_window"`
	Params         map[string]int `json:"params,omitempty"`
}

// wireConfigV1 is the polypath/v1 wire form of Config. Field names are
// frozen: renaming or reordering a Go struct field must not change the
// wire format, and new fields require a schema bump.
type wireConfigV1 struct {
	Schema                string           `json:"schema"`
	Mode                  string           `json:"mode"`
	FetchWidth            int              `json:"fetch_width"`
	RenameWidth           int              `json:"rename_width"`
	CommitWidth           int              `json:"commit_width"`
	FrontEndStages        int              `json:"front_end_stages"`
	WindowSize            int              `json:"window_size"`
	NumIntType0           int              `json:"num_int_type0"`
	NumIntType1           int              `json:"num_int_type1"`
	NumFPAdd              int              `json:"num_fp_add"`
	NumFPMul              int              `json:"num_fp_mul"`
	NumMemPorts           int              `json:"num_mem_ports"`
	PhysRegs              int              `json:"phys_regs"`
	Checkpoints           int              `json:"checkpoints"`
	CtxHistoryWidth       int              `json:"ctx_history_width"`
	MaxPaths              int              `json:"max_paths"`
	MaxDivergences        int              `json:"max_divergences"`
	Predictor             wirePredictorV1  `json:"predictor"`
	Confidence            wireConfidenceV1 `json:"confidence"`
	FetchPolicy           string           `json:"fetch_policy"`
	EnableDCache          bool             `json:"enable_dcache"`
	DCache                wireCacheV1      `json:"dcache"`
	DCacheMissLatency     int              `json:"dcache_miss_latency"`
	EnableICache          bool             `json:"enable_icache"`
	ICache                wireCacheV1      `json:"icache"`
	ICacheMissLatency     int              `json:"icache_miss_latency"`
	BTBBits               int              `json:"btb_bits"`
	RASDepth              int              `json:"ras_depth"`
	EnableMRC             bool             `json:"enable_mrc"`
	MRCBits               int              `json:"mrc_bits"`
	ResolutionBuses       int              `json:"resolution_buses"`
	NonSpeculativeHistory bool             `json:"non_speculative_history"`
	MaxInsts              uint64           `json:"max_insts"`
}

// wireSettingV2 mirrors policy.Setting with stable field names.
type wireSettingV2 struct {
	ConfThreshold  int `json:"conf_threshold"`
	MaxDivergences int `json:"max_divergences"`
	FetchWidth     int `json:"fetch_width"`
}

// wirePolicyV2 carries the optional policy controller spec. The field is a
// pointer in wireConfigV2 with omitempty, so policy-free configs encode
// byte-identically to documents minted before the policy framework existed
// — polypath/v2 is open to new optional fields, unlike frozen v1.
type wirePolicyV2 struct {
	Kind        string          `json:"kind"`
	EpochCycles int             `json:"epoch_cycles"`
	Candidates  []wireSettingV2 `json:"candidates,omitempty"`
	Params      map[string]int  `json:"params,omitempty"`
}

// wireConfigV2 is the polypath/v2 wire form: identical to v1 except for
// the open predictor/confidence specs and the optional policy spec.
type wireConfigV2 struct {
	Schema                string           `json:"schema"`
	Mode                  string           `json:"mode"`
	FetchWidth            int              `json:"fetch_width"`
	RenameWidth           int              `json:"rename_width"`
	CommitWidth           int              `json:"commit_width"`
	FrontEndStages        int              `json:"front_end_stages"`
	WindowSize            int              `json:"window_size"`
	NumIntType0           int              `json:"num_int_type0"`
	NumIntType1           int              `json:"num_int_type1"`
	NumFPAdd              int              `json:"num_fp_add"`
	NumFPMul              int              `json:"num_fp_mul"`
	NumMemPorts           int              `json:"num_mem_ports"`
	PhysRegs              int              `json:"phys_regs"`
	Checkpoints           int              `json:"checkpoints"`
	CtxHistoryWidth       int              `json:"ctx_history_width"`
	MaxPaths              int              `json:"max_paths"`
	MaxDivergences        int              `json:"max_divergences"`
	Predictor             wirePredictorV2  `json:"predictor"`
	Confidence            wireConfidenceV2 `json:"confidence"`
	FetchPolicy           string           `json:"fetch_policy"`
	EnableDCache          bool             `json:"enable_dcache"`
	DCache                wireCacheV1      `json:"dcache"`
	DCacheMissLatency     int              `json:"dcache_miss_latency"`
	EnableICache          bool             `json:"enable_icache"`
	ICache                wireCacheV1      `json:"icache"`
	ICacheMissLatency     int              `json:"icache_miss_latency"`
	BTBBits               int              `json:"btb_bits"`
	RASDepth              int              `json:"ras_depth"`
	EnableMRC             bool             `json:"enable_mrc"`
	MRCBits               int              `json:"mrc_bits"`
	ResolutionBuses       int              `json:"resolution_buses"`
	NonSpeculativeHistory bool             `json:"non_speculative_history"`
	MaxInsts              uint64           `json:"max_insts"`
	Policy                *wirePolicyV2    `json:"policy,omitempty"`
}

// v1PredictorKinds is the frozen predictor set of polypath/v1 and the
// parameters it can express. A normalized config is v1-representable only
// when its predictor is one of these kinds, its only parameter is
// hist_bits, and its confidence spec uses a v1 kind with no open params.
var v1PredictorKinds = map[PredictorKind]bool{
	PredGshare: true, PredBimodal: true, PredStatic: true,
	PredOracle: true, PredLocal: true, PredCombining: true,
}

var v1ConfidenceKinds = map[ConfidenceKind]bool{
	ConfJRS: true, ConfOracle: true, ConfAlwaysHigh: true,
	ConfAlwaysLow: true, ConfAdaptive: true,
}

// v1Representable reports whether a normalized config can be expressed in
// the frozen polypath/v1 schema.
func v1Representable(n Config) bool {
	if !v1PredictorKinds[n.Predictor.Kind] || !v1ConfidenceKinds[n.Confidence.Kind] {
		return false
	}
	if n.Policy.Kind != "" {
		// The frozen v1 schema predates the policy framework; a
		// policy-bearing config must hash over its v2 encoding.
		return false
	}
	for name := range n.Predictor.Params {
		if name != "hist_bits" {
			return false
		}
	}
	return len(n.Confidence.Params) == 0
}

// EncodeConfigV1 renders the configuration as canonical polypath/v1 JSON:
// the config is normalized (derived defaults filled, inert fields zeroed,
// constraints checked) and encoded with a fixed field order, so two
// configurations describing the same machine encode byte-identically.
// Configs using post-v1 registry kinds or parameters are not expressible
// in this schema and report a *ConfigError; use EncodeConfigV2.
func EncodeConfigV1(c Config) ([]byte, error) {
	n, err := c.normalize()
	if err != nil {
		return nil, err
	}
	return encodeNormalizedV1(n)
}

func encodeNormalizedV1(n Config) ([]byte, error) {
	if !v1Representable(n) {
		return nil, cfgErr("schema", "predictor %q / confidence %q is not expressible in %s; encode with %s", string(n.Predictor.Kind), string(n.Confidence.Kind), SchemaV1, SchemaV2)
	}
	w := wireConfigV1{
		Schema:          SchemaV1,
		Mode:            modeNames[n.Mode],
		FetchWidth:      n.FetchWidth,
		RenameWidth:     n.RenameWidth,
		CommitWidth:     n.CommitWidth,
		FrontEndStages:  n.FrontEndStages,
		WindowSize:      n.WindowSize,
		NumIntType0:     n.NumIntType0,
		NumIntType1:     n.NumIntType1,
		NumFPAdd:        n.NumFPAdd,
		NumFPMul:        n.NumFPMul,
		NumMemPorts:     n.NumMemPorts,
		PhysRegs:        n.PhysRegs,
		Checkpoints:     n.Checkpoints,
		CtxHistoryWidth: n.CtxHistoryWidth,
		MaxPaths:        n.MaxPaths,
		MaxDivergences:  n.MaxDivergences,
		Predictor: wirePredictorV1{
			Kind:     string(n.Predictor.Kind),
			HistBits: n.Predictor.Param("hist_bits", 0),
		},
		Confidence: wireConfidenceV1{
			Kind:           string(n.Confidence.Kind),
			IndexBits:      n.Confidence.IndexBits,
			CtrBits:        n.Confidence.CtrBits,
			Threshold:      n.Confidence.Threshold,
			EnhancedIndex:  n.Confidence.EnhancedIndex,
			AdaptiveMinPVN: n.Confidence.AdaptiveMinPVN,
			AdaptiveWindow: n.Confidence.AdaptiveWindow,
		},
		FetchPolicy:           fetchPolicyNames[n.FetchPolicy],
		EnableDCache:          n.EnableDCache,
		DCache:                wireCacheV1{n.DCache.Sets, n.DCache.Ways, n.DCache.LineWords},
		DCacheMissLatency:     n.DCacheMissLatency,
		EnableICache:          n.EnableICache,
		ICache:                wireCacheV1{n.ICache.Sets, n.ICache.Ways, n.ICache.LineWords},
		ICacheMissLatency:     n.ICacheMissLatency,
		BTBBits:               n.BTBBits,
		RASDepth:              n.RASDepth,
		EnableMRC:             n.EnableMRC,
		MRCBits:               n.MRCBits,
		ResolutionBuses:       n.ResolutionBuses,
		NonSpeculativeHistory: n.NonSpeculativeHistory,
		MaxInsts:              n.MaxInsts,
	}
	return json.Marshal(w)
}

// EncodeConfigV2 renders the configuration as canonical polypath/v2 JSON.
// Any valid config — including ones using runtime-registered predictor or
// estimator kinds — is expressible; map parameters encode with sorted
// keys, so the output is byte-canonical.
func EncodeConfigV2(c Config) ([]byte, error) {
	n, err := c.normalize()
	if err != nil {
		return nil, err
	}
	return encodeNormalizedV2(n)
}

func encodeNormalizedV2(n Config) ([]byte, error) {
	w := wireConfigV2{
		Schema:          SchemaV2,
		Mode:            modeNames[n.Mode],
		FetchWidth:      n.FetchWidth,
		RenameWidth:     n.RenameWidth,
		CommitWidth:     n.CommitWidth,
		FrontEndStages:  n.FrontEndStages,
		WindowSize:      n.WindowSize,
		NumIntType0:     n.NumIntType0,
		NumIntType1:     n.NumIntType1,
		NumFPAdd:        n.NumFPAdd,
		NumFPMul:        n.NumFPMul,
		NumMemPorts:     n.NumMemPorts,
		PhysRegs:        n.PhysRegs,
		Checkpoints:     n.Checkpoints,
		CtxHistoryWidth: n.CtxHistoryWidth,
		MaxPaths:        n.MaxPaths,
		MaxDivergences:  n.MaxDivergences,
		Predictor: wirePredictorV2{
			Kind:   string(n.Predictor.Kind),
			Params: n.Predictor.Params,
		},
		Confidence: wireConfidenceV2{
			Kind:           string(n.Confidence.Kind),
			IndexBits:      n.Confidence.IndexBits,
			CtrBits:        n.Confidence.CtrBits,
			Threshold:      n.Confidence.Threshold,
			EnhancedIndex:  n.Confidence.EnhancedIndex,
			AdaptiveMinPVN: n.Confidence.AdaptiveMinPVN,
			AdaptiveWindow: n.Confidence.AdaptiveWindow,
			Params:         n.Confidence.Params,
		},
		FetchPolicy:           fetchPolicyNames[n.FetchPolicy],
		EnableDCache:          n.EnableDCache,
		DCache:                wireCacheV1{n.DCache.Sets, n.DCache.Ways, n.DCache.LineWords},
		DCacheMissLatency:     n.DCacheMissLatency,
		EnableICache:          n.EnableICache,
		ICache:                wireCacheV1{n.ICache.Sets, n.ICache.Ways, n.ICache.LineWords},
		ICacheMissLatency:     n.ICacheMissLatency,
		BTBBits:               n.BTBBits,
		RASDepth:              n.RASDepth,
		EnableMRC:             n.EnableMRC,
		MRCBits:               n.MRCBits,
		ResolutionBuses:       n.ResolutionBuses,
		NonSpeculativeHistory: n.NonSpeculativeHistory,
		MaxInsts:              n.MaxInsts,
	}
	if n.Policy.Kind != "" {
		wp := &wirePolicyV2{
			Kind:        n.Policy.Kind,
			EpochCycles: n.Policy.EpochCycles,
			Params:      n.Policy.Params,
		}
		for _, c := range n.Policy.Candidates {
			wp.Candidates = append(wp.Candidates, wireSettingV2{
				ConfThreshold:  c.ConfThreshold,
				MaxDivergences: c.MaxDivergences,
				FetchWidth:     c.FetchWidth,
			})
		}
		w.Policy = wp
	}
	return json.Marshal(w)
}

// DecodeConfig parses a versioned config document, dispatching on its
// "schema" field: polypath/v1 documents go through the lossless compat
// shim, polypath/v2 documents through the open-registry decoder. This is
// the decoder service endpoints and tools should use.
func DecodeConfig(data []byte) (Config, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return Config{}, &ConfigError{Field: "json", Reason: err.Error()}
	}
	switch probe.Schema {
	case SchemaV1:
		return DecodeConfigV1(data)
	case SchemaV2:
		return DecodeConfigV2(data)
	default:
		return Config{}, cfgErr("schema", "got %q, want %q or %q", probe.Schema, SchemaV1, SchemaV2)
	}
}

// DecodeConfigV1 parses polypath/v1 JSON into a validated Config — the
// compat shim over the open registry. Unknown fields are rejected (a
// misspelled parameter is an error, never a silent default), the schema
// field is mandatory, and the decoded machine is validated before it is
// returned. Every document this decoder accepted before the registry
// redesign still decodes, to a config with the same CanonicalHash.
func DecodeConfigV1(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wireConfigV1
	if err := dec.Decode(&w); err != nil {
		return Config{}, &ConfigError{Field: "json", Reason: err.Error()}
	}
	if err := ensureEOF(dec); err != nil {
		return Config{}, err
	}
	if w.Schema != SchemaV1 {
		return Config{}, cfgErr("schema", "got %q, want %q", w.Schema, SchemaV1)
	}
	pk, err := ParsePredictorKind(w.Predictor.Kind)
	if err != nil {
		return Config{}, err
	}
	if !v1PredictorKinds[pk] {
		return Config{}, cfgErr("Predictor.Kind", "kind %q postdates %s; encode this config as %s", w.Predictor.Kind, SchemaV1, SchemaV2)
	}
	// v1 always carries hist_bits; for kinds whose schema has no such
	// parameter (static, oracle) the field was inert and is dropped, which
	// is exactly how v1 normalization canonicalized it.
	var params map[string]int
	if w.Predictor.HistBits != 0 && predictorAcceptsParam(pk, "hist_bits") {
		params = map[string]int{"hist_bits": w.Predictor.HistBits}
	}
	return decodeCommon(wireConfigV2{
		Schema:          SchemaV2,
		Mode:            w.Mode,
		FetchWidth:      w.FetchWidth,
		RenameWidth:     w.RenameWidth,
		CommitWidth:     w.CommitWidth,
		FrontEndStages:  w.FrontEndStages,
		WindowSize:      w.WindowSize,
		NumIntType0:     w.NumIntType0,
		NumIntType1:     w.NumIntType1,
		NumFPAdd:        w.NumFPAdd,
		NumFPMul:        w.NumFPMul,
		NumMemPorts:     w.NumMemPorts,
		PhysRegs:        w.PhysRegs,
		Checkpoints:     w.Checkpoints,
		CtxHistoryWidth: w.CtxHistoryWidth,
		MaxPaths:        w.MaxPaths,
		MaxDivergences:  w.MaxDivergences,
		Predictor:       wirePredictorV2{Kind: w.Predictor.Kind, Params: params},
		Confidence: wireConfidenceV2{
			Kind:           w.Confidence.Kind,
			IndexBits:      w.Confidence.IndexBits,
			CtrBits:        w.Confidence.CtrBits,
			Threshold:      w.Confidence.Threshold,
			EnhancedIndex:  w.Confidence.EnhancedIndex,
			AdaptiveMinPVN: w.Confidence.AdaptiveMinPVN,
			AdaptiveWindow: w.Confidence.AdaptiveWindow,
		},
		FetchPolicy:           w.FetchPolicy,
		EnableDCache:          w.EnableDCache,
		DCache:                w.DCache,
		DCacheMissLatency:     w.DCacheMissLatency,
		EnableICache:          w.EnableICache,
		ICache:                w.ICache,
		ICacheMissLatency:     w.ICacheMissLatency,
		BTBBits:               w.BTBBits,
		RASDepth:              w.RASDepth,
		EnableMRC:             w.EnableMRC,
		MRCBits:               w.MRCBits,
		ResolutionBuses:       w.ResolutionBuses,
		NonSpeculativeHistory: w.NonSpeculativeHistory,
		MaxInsts:              w.MaxInsts,
	})
}

// predictorAcceptsParam reports whether a registered kind's schema
// declares the named parameter.
func predictorAcceptsParam(kind PredictorKind, name string) bool {
	e, ok := bpred.Lookup(string(kind))
	if !ok {
		return false
	}
	for _, ps := range e.Params {
		if ps.Name == name {
			return true
		}
	}
	return false
}

// DecodeConfigV2 parses polypath/v2 JSON into a validated Config.
func DecodeConfigV2(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wireConfigV2
	if err := dec.Decode(&w); err != nil {
		return Config{}, &ConfigError{Field: "json", Reason: err.Error()}
	}
	if err := ensureEOF(dec); err != nil {
		return Config{}, err
	}
	if w.Schema != SchemaV2 {
		return Config{}, cfgErr("schema", "got %q, want %q", w.Schema, SchemaV2)
	}
	return decodeCommon(w)
}

// decodeCommon converts the v2 wire struct (the superset both decoders
// funnel into) to a validated Config.
func decodeCommon(w wireConfigV2) (Config, error) {
	mode, err := ParseMode(w.Mode)
	if err != nil {
		return Config{}, err
	}
	pk, err := ParsePredictorKind(w.Predictor.Kind)
	if err != nil {
		return Config{}, err
	}
	ck, err := ParseConfidenceKind(w.Confidence.Kind)
	if err != nil {
		return Config{}, err
	}
	fp, err := ParseFetchPolicy(w.FetchPolicy)
	if err != nil {
		return Config{}, err
	}
	c := Config{
		Mode:            mode,
		FetchWidth:      w.FetchWidth,
		RenameWidth:     w.RenameWidth,
		CommitWidth:     w.CommitWidth,
		FrontEndStages:  w.FrontEndStages,
		WindowSize:      w.WindowSize,
		NumIntType0:     w.NumIntType0,
		NumIntType1:     w.NumIntType1,
		NumFPAdd:        w.NumFPAdd,
		NumFPMul:        w.NumFPMul,
		NumMemPorts:     w.NumMemPorts,
		PhysRegs:        w.PhysRegs,
		Checkpoints:     w.Checkpoints,
		CtxHistoryWidth: w.CtxHistoryWidth,
		MaxPaths:        w.MaxPaths,
		MaxDivergences:  w.MaxDivergences,
		Predictor:       PredictorSpec{Kind: pk, Params: w.Predictor.Params},
		Confidence: ConfidenceSpec{
			Kind:           ck,
			IndexBits:      w.Confidence.IndexBits,
			CtrBits:        w.Confidence.CtrBits,
			Threshold:      w.Confidence.Threshold,
			EnhancedIndex:  w.Confidence.EnhancedIndex,
			AdaptiveMinPVN: w.Confidence.AdaptiveMinPVN,
			AdaptiveWindow: w.Confidence.AdaptiveWindow,
			Params:         w.Confidence.Params,
		},
		FetchPolicy:           fp,
		EnableDCache:          w.EnableDCache,
		DCache:                cache.Config{Sets: w.DCache.Sets, Ways: w.DCache.Ways, LineWords: w.DCache.LineWords},
		DCacheMissLatency:     w.DCacheMissLatency,
		EnableICache:          w.EnableICache,
		ICache:                cache.Config{Sets: w.ICache.Sets, Ways: w.ICache.Ways, LineWords: w.ICache.LineWords},
		ICacheMissLatency:     w.ICacheMissLatency,
		BTBBits:               w.BTBBits,
		RASDepth:              w.RASDepth,
		EnableMRC:             w.EnableMRC,
		MRCBits:               w.MRCBits,
		ResolutionBuses:       w.ResolutionBuses,
		NonSpeculativeHistory: w.NonSpeculativeHistory,
		MaxInsts:              w.MaxInsts,
	}
	if w.Policy != nil {
		c.Policy = PolicySpec{
			Kind:        w.Policy.Kind,
			EpochCycles: w.Policy.EpochCycles,
			Params:      w.Policy.Params,
		}
		for _, s := range w.Policy.Candidates {
			c.Policy.Candidates = append(c.Policy.Candidates, policy.Setting{
				ConfThreshold:  s.ConfThreshold,
				MaxDivergences: s.MaxDivergences,
				FetchWidth:     s.FetchWidth,
			})
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

func ensureEOF(dec *json.Decoder) error {
	if dec.More() {
		return &ConfigError{Field: "json", Reason: "trailing data after config document"}
	}
	return nil
}

// CanonicalHash returns the hex SHA-256 of the canonical encoding of the
// normalized configuration: the stable identity used to key result
// memoization. Configurations that normalize identically hash identically,
// regardless of how they were spelled or which schema version carried
// them.
//
// Configs expressible in the frozen polypath/v1 schema hash over their v1
// encoding — so every hash minted before polypath/v2 existed (server memo
// caches, journals) is still the hash of the same machine. Configs using
// post-v1 kinds or parameters hash over their canonical v2 encoding. An
// invalid config is reported as a *ConfigError, never a panic; there is
// deliberately no panicking Must variant, so every caller handles the
// error.
//
// Audit is a runtime diagnostic knob that cannot change results, so it is
// not part of the wire encoding: configs differing only in audit level
// hash identically and share memoized results.
func CanonicalHash(c Config) (string, error) {
	n, err := c.normalize()
	if err != nil {
		return "", err
	}
	var blob []byte
	if v1Representable(n) {
		blob, err = encodeNormalizedV1(n)
	} else {
		blob, err = encodeNormalizedV2(n)
	}
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}
