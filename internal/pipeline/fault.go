package pipeline

import "repro/internal/rename"

// fault.go exposes the deterministic fault-injection surface used by
// internal/faultinject: a per-cycle hook plus primitives that corrupt one
// piece of micro-architectural state the way a hardware fault would (a bit
// flip in a rename structure, a lost wakeup broadcast, a corrupted CTX
// tag). The hooks are always compiled in — no build tags — and cost one nil
// check per cycle when unused, so chaos tests exercise exactly the binary
// that ships.
//
// Every fault kind is chosen so the invariant auditor (audit.go) detects it
// deterministically: injecting under AuditCycle yields a machine check the
// same cycle, which is what the chaos tests assert.

// Fault enumerates the injectable micro-architectural faults.
type Fault int

const (
	// FaultRenameBitFlip redirects a window entry's destination register to
	// a currently-free physical register, as a flipped bit in the rename CAM
	// would (detected: free-list reference sweep).
	FaultRenameBitFlip Fault = iota
	// FaultRenameMapFlip corrupts a live path's logical-to-physical map so a
	// logical register names a free physical register (detected: path map
	// sweep).
	FaultRenameMapFlip
	// FaultDropWakeup unpublishes a completed producer's result, simulating
	// a lost wakeup broadcast (detected: done-but-not-ready check).
	FaultDropWakeup
	// FaultFreeListFlip toggles one register's allocation bit without
	// touching the free stack, desynchronizing the free list's two
	// structures (detected: free-list consistency audit).
	FaultFreeListFlip
	// FaultCtxTagFlip flips one history position of a window entry's CTX
	// tag, the fault the store buffer's path filter and the kill buses are
	// most sensitive to (detected: tag-vs-path drift check).
	FaultCtxTagFlip
)

// String names the fault kind for logs and test output.
func (f Fault) String() string {
	switch f {
	case FaultRenameBitFlip:
		return "rename-bit-flip"
	case FaultRenameMapFlip:
		return "rename-map-flip"
	case FaultDropWakeup:
		return "drop-wakeup"
	case FaultFreeListFlip:
		return "free-list-flip"
	case FaultCtxTagFlip:
		return "ctx-tag-flip"
	default:
		return "unknown-fault"
	}
}

// SetFaultHook installs fn to be called at the top of every cycle (before
// commit), with the cycle number about to execute. The hook may call
// InjectFault. A nil fn removes the hook.
func (m *Machine) SetFaultHook(fn func(cycle uint64)) { m.faultHook = fn }

// InjectFault corrupts machine state according to kind, using arg to pick
// the victim deterministically. It reports whether a fault was actually
// injected: some kinds need a victim in a particular state (e.g. a
// completed producer for FaultDropWakeup), and the injector retries on a
// later cycle when none exists yet. After a successful injection the
// machine's results are void; the only supported continuation is detection
// via the auditor or a contained bookkeeping panic.
func (m *Machine) InjectFault(kind Fault, arg uint64) bool {
	switch kind {
	case FaultRenameBitFlip:
		victim := m.pickEntry(arg, func(e *entry) bool { return e.hasDest })
		if victim == nil {
			return false
		}
		fr, ok := m.pickFreeReg(arg)
		if !ok {
			return false
		}
		victim.dstPhys = fr
		return true
	case FaultRenameMapFlip:
		fr, ok := m.pickFreeReg(arg)
		if !ok {
			return false
		}
		for _, p := range m.paths {
			if p != nil && p.regmap != nil {
				p.regmap.Set(0, fr)
				return true
			}
		}
		return false
	case FaultDropWakeup:
		// Only completed producers stuck behind an incomplete older entry
		// qualify: they cannot retire this cycle, so the end-of-cycle audit
		// is guaranteed to observe the dropped wakeup.
		blocked := false
		var candidates []*entry
		for _, e := range m.window {
			if e.state != stateDone {
				blocked = true
				continue
			}
			if blocked && e.hasDest {
				candidates = append(candidates, e)
			}
		}
		if len(candidates) == 0 {
			return false
		}
		victim := candidates[arg%uint64(len(candidates))]
		m.physReady.Clear(victim.dstPhys)
		return true
	case FaultFreeListFlip:
		m.freeList.FlipInUse(rename.PhysReg(arg % uint64(m.freeList.Total())))
		return true
	case FaultCtxTagFlip:
		victim := m.pickEntry(arg, func(e *entry) bool { return m.paths[e.path.id] == e.path })
		if victim == nil {
			return false
		}
		pos := int(arg % uint64(m.ctxAlloc.Width()))
		if victim.tag.Valid(pos) {
			victim.tag = victim.tag.WithPosition(pos, !victim.tag.Taken(pos))
		} else {
			victim.tag = victim.tag.WithPosition(pos, true)
		}
		return true
	default:
		return false
	}
}

// pickEntry deterministically selects the arg-th window entry satisfying ok
// (wrapping), or nil when none does.
func (m *Machine) pickEntry(arg uint64, ok func(*entry) bool) *entry {
	var candidates []*entry
	for _, e := range m.window {
		if ok(e) {
			candidates = append(candidates, e)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[arg%uint64(len(candidates))]
}

// pickFreeReg deterministically selects a currently-free physical register.
func (m *Machine) pickFreeReg(arg uint64) (rename.PhysReg, bool) {
	total := m.freeList.Total()
	start := int(arg % uint64(total))
	for i := 0; i < total; i++ {
		p := rename.PhysReg((start + i) % total)
		if !m.freeList.IsAllocated(p) {
			return p, true
		}
	}
	return 0, false
}
