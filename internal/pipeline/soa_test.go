package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/isa/progfuzz"
	"repro/internal/rename"
	"repro/internal/workload"
)

// naiveWalk is the obviously-correct form of walkBits: test every
// position in [lo, hi) in ascending order.
func naiveWalk(words []uint64, lo, hi int) []int {
	var got []int
	for pos := lo; pos < hi; pos++ {
		if words[pos>>6]&(1<<uint(pos&63)) != 0 {
			got = append(got, pos)
		}
	}
	return got
}

func collectWalk(words []uint64, lo, hi int) []int {
	var got []int
	walkBits(words, lo, hi, func(pos int) bool {
		got = append(got, pos)
		return true
	})
	return got
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWalkBitsExhaustiveBoundaries sweeps every (bit, lo, hi) combination
// for window sizes that land exactly on, one past, and well beyond the
// 64-slot word boundary — the off-by-one surface of the per-word masked
// walk. Every single-bit pattern must be reported iff it lies in [lo, hi).
func TestWalkBitsExhaustiveBoundaries(t *testing.T) {
	for _, n := range []int{63, 64, 65, 127, 128} {
		words := make([]uint64, (n+63)/64)
		for bit := 0; bit < n; bit++ {
			clear(words)
			words[bit>>6] |= 1 << uint(bit&63)
			for lo := 0; lo <= n; lo++ {
				for hi := lo; hi <= n; hi++ {
					got := collectWalk(words, lo, hi)
					inRange := bit >= lo && bit < hi
					switch {
					case inRange && (len(got) != 1 || got[0] != bit):
						t.Fatalf("n=%d bit=%d range [%d,%d): got %v, want [%d]", n, bit, lo, hi, got, bit)
					case !inRange && len(got) != 0:
						t.Fatalf("n=%d bit=%d range [%d,%d): got %v, want empty", n, bit, lo, hi, got)
					}
				}
			}
		}
	}
}

// TestWalkBitsRandomPatterns cross-checks the masked walk against the
// naive position scan on dense random bitmaps, including ranges that
// start and end mid-word, span word boundaries, and cover whole words.
func TestWalkBitsRandomPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{64, 65, 128, 192} {
		words := make([]uint64, (n+63)/64)
		for trial := 0; trial < 200; trial++ {
			for i := range words {
				words[i] = rng.Uint64()
			}
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n+1-lo)
			if got, want := collectWalk(words, lo, hi), naiveWalk(words, lo, hi); !intsEqual(got, want) {
				t.Fatalf("n=%d range [%d,%d): walk %v != naive %v", n, lo, hi, got, want)
			}
		}
	}
}

// TestWalkBitsEarlyStop verifies the callback's false return halts the
// walk immediately.
func TestWalkBitsEarlyStop(t *testing.T) {
	words := []uint64{^uint64(0), ^uint64(0)}
	var got []int
	walkBits(words, 0, 128, func(pos int) bool {
		got = append(got, pos)
		return len(got) < 3
	})
	if !intsEqual(got, []int{0, 1, 2}) {
		t.Fatalf("early stop yielded %v", got)
	}
}

// TestSoASelectOrderMatchesDequeScan is the scheduler-equivalence
// property test: with the audit hook armed, every issue cycle
// cross-checks the ready-bitmap walk against a naive oldest-first window
// scan applying the pre-SoA readiness predicate. Any ordering or
// membership divergence trips a machine check and fails the run. The
// suite workloads push divergence trees, kills, and store forwarding
// through the window; the fuzzed programs add irregular control flow.
func TestSoASelectOrderMatchesDequeScan(t *testing.T) {
	soaSelectAudit = true
	defer func() { soaSelectAudit = false }()

	insts := uint64(30_000)
	if testing.Short() {
		insts = 8_000
	}
	for _, bm := range workload.Suite(insts) {
		prog, err := workload.Generate(bm.Spec)
		if err != nil {
			t.Fatal(err)
		}
		for name, cfg := range auditConfigs() {
			m, err := New(prog, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", bm.Spec.Name, name, err)
			}
			if err := m.Run(); err != nil {
				t.Fatalf("%s/%s: select order diverged: %v", bm.Spec.Name, name, err)
			}
			if err := m.VerifyArchState(); err != nil {
				t.Fatalf("%s/%s: %v", bm.Spec.Name, name, err)
			}
		}
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		prog := progfuzz.Generate(rng, 120)
		cfg := DefaultConfig()
		cfg.MaxInsts = 15_000
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("fuzz program %d: select order diverged: %v", i, err)
		}
	}
}

// statKey is the statistics slice used for bit-identical comparisons.
type statKey struct {
	cycles, committed, killed uint64
	mispred, divergences      uint64
	forwards, loads           uint64
	dAcc, dMiss               uint64
}

func keyOf(m *Machine) statKey {
	return statKey{
		cycles:      m.Stats.Cycles,
		committed:   m.Stats.Committed,
		killed:      m.Stats.Killed,
		mispred:     m.Stats.Mispredicts,
		divergences: m.Stats.Divergences,
		forwards:    m.Stats.StoreForwards,
		loads:       m.Stats.LoadsExecuted,
		dAcc:        m.Stats.DCacheAccesses,
		dMiss:       m.Stats.DCacheMisses,
	}
}

// TestArenaRecyclingBitIdentical runs a mixed cell sequence — different
// programs AND different machine shapes (window, register file, RAS
// depth) back to back — twice: once allocating fresh, once recycling
// through a single shared arena. Every cell must produce bit-identical
// statistics, which means every arena-drawn buffer was reset exactly like
// a fresh allocation even when a larger previous machine donated it.
func TestArenaRecyclingBitIdentical(t *testing.T) {
	small := DefaultConfig()
	small.WindowSize = 32
	small.PhysRegs = 80
	small.Checkpoints = 8
	small.MaxPaths = 4
	small.CtxHistoryWidth = 3

	progs := []struct {
		name string
		n    int
	}{{"sum-large", 400}, {"sum-small", 50}, {"sum-mid", 200}}
	cfgs := map[string]Config{
		"default": DefaultConfig(),
		"small":   small,
	}

	run := func(a *Arena) []statKey {
		var keys []statKey
		for _, p := range progs {
			prog := sumProgram(p.n)
			for _, cn := range []string{"default", "small", "default"} {
				m, err := NewWithArena(prog, cfgs[cn], a)
				if err != nil {
					t.Fatalf("%s/%s: %v", p.name, cn, err)
				}
				if err := m.Run(); err != nil {
					t.Fatalf("%s/%s: %v", p.name, cn, err)
				}
				if err := m.VerifyArchState(); err != nil {
					t.Fatalf("%s/%s: %v", p.name, cn, err)
				}
				keys = append(keys, keyOf(m))
				m.Recycle(a)
			}
		}
		return keys
	}

	fresh := run(nil) // Recycle(nil) is a no-op: every cell allocates
	recycled := run(NewArena())
	if len(fresh) != len(recycled) {
		t.Fatalf("cell count mismatch: %d vs %d", len(fresh), len(recycled))
	}
	for i := range fresh {
		if fresh[i] != recycled[i] {
			t.Fatalf("cell %d diverged under arena recycling:\nfresh    %+v\nrecycled %+v", i, fresh[i], recycled[i])
		}
	}
}

// TestRecycleGutsMachine documents the Recycle contract: the donated
// machine must fail loudly on reuse rather than corrupt the arena's next
// tenant.
func TestRecycleGutsMachine(t *testing.T) {
	m, err := New(sumProgram(50), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	m.Recycle(a)
	if !m.halted {
		t.Fatal("recycled machine should read as halted")
	}
	if m.winBuf != nil || m.mem != nil || m.physReady.Len() != 0 {
		t.Fatal("recycled machine retained donated buffers")
	}

	// The arena must now serve a machine of a different shape correctly.
	cfg := DefaultConfig()
	cfg.WindowSize = 32
	cfg.PhysRegs = 80
	cfg.Checkpoints = 8
	cfg.MaxPaths = 4
	cfg.CtxHistoryWidth = 3
	m2, err := NewWithArena(sumProgram(80), cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m2.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
}

// TestReadySetBasics covers the packed readiness bitmap at its word
// boundaries, including capacity-reusing reinitialization.
func TestReadySetBasics(t *testing.T) {
	s := rename.NewReadySet(130)
	for _, p := range []rename.PhysReg{0, 63, 64, 127, 128, 129} {
		if s.Test(p) {
			t.Fatalf("fresh set has p%d ready", p)
		}
		s.Set(p)
		if !s.Test(p) {
			t.Fatalf("p%d not ready after Set", p)
		}
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("p64 ready after Clear")
	}
	if s.Test(63) != true || s.Test(128) != true {
		t.Fatal("Clear(64) disturbed neighboring words")
	}

	// Reuse shrinks and clears.
	r := rename.ReuseReadySet(s, 70)
	if r.Len() != 70 {
		t.Fatalf("reused set covers %d regs, want 70", r.Len())
	}
	for p := rename.PhysReg(0); p < 70; p++ {
		if r.Test(p) {
			t.Fatalf("reused set has stale ready bit p%d", p)
		}
	}
	// Reuse beyond capacity allocates fresh.
	big := rename.ReuseReadySet(r, 1024)
	if big.Len() != 1024 {
		t.Fatalf("grown set covers %d regs, want 1024", big.Len())
	}
	big.Set(1023)
	if !big.Test(1023) {
		t.Fatal("grown set lost Set(1023)")
	}
}
