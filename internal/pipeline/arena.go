package pipeline

import (
	"repro/internal/rename"
)

// arena.go: arena-style reuse of a machine's large allocations across
// simulations. An experiment sweep builds one Machine per (benchmark,
// config, replicate) cell; without reuse every cell re-allocates the
// memory image, the physical register file, the window backing array and
// its SoA scheduler state, the completion ring, and the object pools the
// cycle loop warmed up. A worker that runs cells back-to-back instead
// donates the finished machine's buffers to its Arena and the next
// NewWithArena draws them out again, so steady-state per-cell allocation
// approaches the small fixed state (predictors, rename tables,
// histograms) that either escapes with the result or depends on the
// configuration shape.
//
// An Arena is NOT safe for concurrent use: it belongs to one worker
// (harness.RunConfigs keeps one per scheduler shard). Buffers are taken
// out of the arena at NewWithArena and returned by Machine.Recycle, so a
// cell that panics or fails mid-run simply never returns them — the
// arena stays valid and the next cell allocates fresh.

// Arena holds the recyclable buffers of at most one finished machine.
// The zero value is an empty, usable arena.
type Arena struct {
	mem        []int64
	physVal    []int64
	ready      rename.ReadySet
	winBuf     []*entry
	soa        soaState
	ring       [][]*entry
	deco       []deco
	paths      []*path
	frontEnd   [][]*finst
	entryPool  []*entry
	finstPool  []*finst
	latchPool  [][]*finst
	fpsScratch []*path
	auditInts  []int
	auditBools []bool
	// rasDepth is the RAS depth the pooled finsts' snapshot buffers were
	// sized for; a different configuration invalidates them.
	rasDepth int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Recycle donates m's large buffers to a for the next NewWithArena call.
// The machine must be finished (halted or abandoned after an error you
// do not intend to inspect further) and must not be used again: its
// internal state is gutted to make accidental reuse fail loudly.
// Recycling a machine that returned an error is safe for the arena —
// every donated buffer is fully reset when drawn out — but callers
// typically skip it to keep the error state inspectable.
func (m *Machine) Recycle(a *Arena) {
	if a == nil {
		return
	}
	a.mem = m.mem
	a.physVal = m.physVal
	a.ready = m.physReady
	a.winBuf = m.winBuf
	a.soa = m.soa
	a.ring = m.ring
	a.deco = m.deco
	a.paths = m.paths
	a.frontEnd = m.frontEnd
	// Only pooled (free) objects transfer; entries still live in a window
	// cut mid-flight by MaxInsts are simply left to the collector.
	a.entryPool = m.entryPool
	a.finstPool = m.finstPool
	a.latchPool = m.latchPool
	a.fpsScratch = m.fpsScratch
	a.auditInts = m.auditInts
	a.auditBools = m.auditBools
	a.rasDepth = m.cfg.RASDepth

	m.mem = nil
	m.physVal = nil
	m.physReady = rename.ReadySet{}
	m.winBuf = nil
	m.window = nil
	m.soa = soaState{}
	m.ring = nil
	m.deco = nil
	m.paths = nil
	m.frontEnd = nil
	m.entryPool = nil
	m.finstPool = nil
	m.latchPool = nil
	m.halted = true
}

// takeI64 draws an n-length zeroed []int64 from buf, or allocates one.
func takeI64(buf *[]int64, n int) []int64 {
	s := *buf
	*buf = nil
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// takeWords returns an n-length zeroed word slice reusing s's capacity.
func takeWords(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// takePhys returns an n-length PhysReg slice reusing s's capacity. Values
// are not cleared: every live slot is overwritten by soaSet before use.
func takePhys(s []rename.PhysReg, n int) []rename.PhysReg {
	if cap(s) < n {
		return make([]rename.PhysReg, n)
	}
	return s[:n]
}

// takeBytes returns an n-length byte slice reusing s's capacity.
func takeBytes(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

// takeSoA removes the arena's SoA state (the per-array sizing happens in
// soaInit).
func (a *Arena) takeSoA() soaState {
	s := a.soa
	a.soa = soaState{}
	return s
}

// takeEntries draws an n-length nil-cleared entry-pointer slice.
func (a *Arena) takeEntries(n int) []*entry {
	s := a.winBuf
	a.winBuf = nil
	if cap(s) < n {
		return make([]*entry, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// takeRing draws an n-slot completion ring. Inner slices keep their
// capacity with length reset, so the ring is allocation-free again after
// the first few cycles.
func (a *Arena) takeRing(n int) [][]*entry {
	s := a.ring
	a.ring = nil
	if cap(s) < n {
		return make([][]*entry, n)
	}
	s = s[:cap(s)]
	for i := range s {
		if s[i] != nil {
			s[i] = s[i][:0]
		}
	}
	return s[:n]
}

// takeDeco draws an n-length zeroed predecode table.
func (a *Arena) takeDeco(n int) []deco {
	s := a.deco
	a.deco = nil
	if cap(s) < n {
		return make([]deco, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// takePaths draws an n-length nil-cleared CTX table.
func (a *Arena) takePaths(n int) []*path {
	s := a.paths
	a.paths = nil
	if cap(s) < n {
		return make([]*path, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// takeFrontEnd draws an n-length nil-cleared latch array.
func (a *Arena) takeFrontEnd(n int) [][]*finst {
	s := a.frontEnd
	a.frontEnd = nil
	if cap(s) < n {
		return make([][]*finst, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// takePools moves the object pools out of the arena. Pooled entries and
// latches are shape-independent (every field is overwritten at
// allocation); pooled finsts carry RAS snapshot buffers sized for
// rasDepth, which are dropped when the new configuration differs.
func (a *Arena) takePools(rasDepth int) (es []*entry, fs []*finst, ls [][]*finst, fps []*path) {
	es, fs, ls, fps = a.entryPool, a.finstPool, a.latchPool, a.fpsScratch
	a.entryPool, a.finstPool, a.latchPool, a.fpsScratch = nil, nil, nil, nil
	if a.rasDepth != rasDepth {
		for _, f := range fs {
			f.rasSnap = nil
		}
	}
	if fps != nil {
		fps = fps[:0]
	}
	return es, fs, ls, fps
}

// takeAudit moves the audit scratch buffers out of the arena.
func (a *Arena) takeAudit() ([]int, []bool) {
	ints, bools := a.auditInts, a.auditBools
	a.auditInts, a.auditBools = nil, nil
	return ints, bools
}
