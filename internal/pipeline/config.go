// Package pipeline implements the cycle-level micro-architecture simulator
// of the PolyPath paper: an 8-wide, out-of-order, in-order-commit machine
// (Fig. 1) extended with context tags, a context manager, per-path register
// maps and confidence-guided selective eager execution (Fig. 2).
//
// The simulator is execution-driven: instructions — including wrong-path
// instructions after divergent or mispredicted branches — execute with real
// register values, and the committed architectural state is bit-identical
// to the functional interpreter's (enforced by integration tests).
package pipeline

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/confidence"
	"repro/internal/ctxtag"
	"repro/internal/policy"
)

// Mode selects the execution model.
type Mode int

const (
	// Monopath is the baseline speculative architecture: every branch
	// follows its prediction, mispredictions pay the full recovery
	// penalty.
	Monopath Mode = iota
	// PolyPath enables selective eager execution: low-confidence branches
	// diverge and both successor paths execute until resolution.
	PolyPath
)

func (m Mode) String() string {
	switch m {
	case Monopath:
		return "monopath"
	case PolyPath:
		return "polypath"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// PredictorKind names a branch direction predictor registered in
// bpred.Registry. The set of valid kinds is open: any kind registered with
// bpred.Register (built-in or at runtime) is accepted, and ParsePredictorKind
// enumerates the currently registered set.
type PredictorKind string

// Built-in predictor kinds. These constants are retained for source
// compatibility with pre-registry code; new code can use any registered
// kind string directly.
const (
	// PredGshare is the paper's baseline (McFarling).
	PredGshare PredictorKind = "gshare"
	// PredBimodal is a per-address 2-bit counter table.
	PredBimodal PredictorKind = "bimodal"
	// PredStatic is backward-taken/forward-not-taken.
	PredStatic PredictorKind = "static"
	// PredOracle predicts perfectly on the architecturally correct path
	// (the "oracle" bars of Fig. 8).
	PredOracle PredictorKind = "oracle"
	// PredLocal is a two-level local-history (PAg) predictor.
	PredLocal PredictorKind = "local"
	// PredCombining is McFarling's combining predictor (bimodal + gshare
	// with a chooser).
	PredCombining PredictorKind = "combining"
	// PredTage is the TAGE predictor: base bimodal + tagged
	// geometric-history tables with CLZ longest-match selection.
	PredTage PredictorKind = "tage"
)

// ConfidenceKind names a confidence estimator registered in
// confidence.Registry; like PredictorKind the valid set is open.
type ConfidenceKind string

// Built-in confidence kinds, retained for source compatibility.
const (
	// ConfJRS is the Jacobsen-Rotenberg-Smith estimator with resetting
	// counters (the paper's real estimator).
	ConfJRS ConfidenceKind = "jrs"
	// ConfOracle is the perfect estimator: low confidence exactly on
	// mispredictions ("gshare/oracle" in Fig. 8).
	ConfOracle ConfidenceKind = "oracle"
	// ConfAlwaysHigh never diverges (monopath behaviour).
	ConfAlwaysHigh ConfidenceKind = "always-high"
	// ConfAlwaysLow diverges on every branch resources permit.
	ConfAlwaysLow ConfidenceKind = "always-low"
	// ConfAdaptive is JRS wrapped with the PVN monitor of Sec. 5.1's
	// "lesson learned".
	ConfAdaptive ConfidenceKind = "adaptive"
)

// PredictorSpec configures the direction predictor as an opaque
// (kind, parameters) pair resolved against bpred.Registry: the pipeline
// carries the parameter map without interpreting it, so adding a predictor
// requires edits only under internal/bpred.
type PredictorSpec struct {
	Kind PredictorKind
	// Params are the kind's sizing parameters by schema name (for the
	// classic kinds, "hist_bits": history length / log2 table size — the
	// paper's baseline is 14). Absent optional parameters take their
	// registered defaults; normalization fills them in and rejects unknown
	// names and out-of-range values. nil and empty are equivalent.
	Params map[string]int
}

// Param returns the named parameter, or def when absent.
func (p PredictorSpec) Param(name string, def int) int {
	if v, ok := p.Params[name]; ok {
		return v
	}
	return def
}

// WithParam returns a copy of the spec with one parameter set. The
// parameter map is copied, never mutated in place, so specs embedded in
// configs copied by value cannot alias each other's state.
func (p PredictorSpec) WithParam(name string, v int) PredictorSpec {
	np := make(map[string]int, len(p.Params)+1)
	for k, pv := range p.Params {
		np[k] = pv
	}
	np[name] = v
	p.Params = np
	return p
}

// PredictorOf builds a spec from a kind and a literal parameter map.
func PredictorOf(kind PredictorKind, params map[string]int) PredictorSpec {
	return PredictorSpec{Kind: kind, Params: params}
}

// ConfidenceSpec configures the confidence estimator.
type ConfidenceSpec struct {
	Kind ConfidenceKind
	// IndexBits is log2 of the JRS table (paper: same as the predictor).
	IndexBits int
	// CtrBits is the JRS counter width (paper: 1).
	CtrBits int
	// Threshold overrides the high-confidence threshold (0 = saturation).
	Threshold int
	// EnhancedIndex includes the current prediction in the JRS index
	// (paper's enhancement; on in the baseline).
	EnhancedIndex bool
	// AdaptiveMinPVN / AdaptiveWindow configure ConfAdaptive.
	AdaptiveMinPVN float64
	AdaptiveWindow int
	// Params carries extra integer parameters for estimator kinds
	// registered from outside internal/confidence; the built-in kinds
	// accept none. nil and empty are equivalent.
	Params map[string]int
}

// PolicySpec configures the optional phase-aware policy controller as an
// opaque (kind, epoch, candidates, parameters) tuple resolved against
// policy.Registry — the same open-registry shape as PredictorSpec and
// ConfidenceSpec, so adding a controller requires edits only under
// internal/policy. The zero value means "no controller".
type PolicySpec struct {
	// Kind names a registered controller ("static", "oracle", "online",
	// or any runtime registration); empty disables policy control.
	Kind string
	// EpochCycles is the actuation interval in cycles (0 = the registry
	// default).
	EpochCycles int
	// Candidates is the setting set the controller selects over.
	Candidates []policy.Setting
	// Params carries the kind's integer parameters by schema name.
	Params map[string]int
}

// spec converts to the policy package's spec type.
func (ps PolicySpec) spec() policy.Spec {
	return policy.Spec{
		Kind:        ps.Kind,
		EpochCycles: ps.EpochCycles,
		Candidates:  ps.Candidates,
		Params:      ps.Params,
	}
}

// normalize resolves the spec against policy.Registry. The zero spec
// passes through unchanged; anything else is validated and canonicalized.
func (ps PolicySpec) normalize() (PolicySpec, error) {
	if ps.Kind == "" {
		// No controller: candidates/epoch/params are inert, canonicalize
		// them away so equivalent configs hash identically.
		return PolicySpec{}, nil
	}
	ns, err := policy.Normalize(ps.spec())
	if err != nil {
		var se *policy.SpecError
		if errors.As(err, &se) {
			return ps, cfgErr("Policy."+se.Field, "%s (kind %s)", se.Reason, se.Kind)
		}
		return ps, cfgErr("Policy.Kind", "unknown policy kind %q (registered: %s)", ps.Kind, strings.Join(policy.Kinds(), ", "))
	}
	return PolicySpec{
		Kind:        ns.Kind,
		EpochCycles: ns.EpochCycles,
		Candidates:  ns.Candidates,
		Params:      ns.Params,
	}, nil
}

// Config describes the simulated machine. DefaultConfig returns the
// paper's baseline (Sec. 4.2).
type Config struct {
	Mode Mode

	// Widths (instructions per cycle).
	FetchWidth  int
	RenameWidth int
	CommitWidth int

	// FrontEndStages is the number of in-order front-end stages between
	// fetch and window insertion; the total pipeline depth reported in
	// Fig. 12 is FrontEndStages + 3 (window/issue, execute, commit).
	FrontEndStages int

	// WindowSize is the central instruction window / reorder buffer size.
	WindowSize int

	// Functional units.
	NumIntType0 int
	NumIntType1 int
	NumFPAdd    int
	NumFPMul    int
	NumMemPorts int

	// Rename resources.
	PhysRegs    int
	Checkpoints int

	// PolyPath context resources.
	CtxHistoryWidth int // CTX-tag history positions (max unresolved divergences)
	MaxPaths        int // CTX table entries
	MaxDivergences  int // cap on simultaneous divergences; 0 = unlimited, 1 = dual-path

	Predictor  PredictorSpec
	Confidence ConfidenceSpec

	// Policy optionally attaches a phase-aware policy controller
	// (internal/policy): per-epoch feedback drives threshold/divergence/
	// fetch-width actuation at epoch boundaries. The zero spec (empty Kind)
	// means no controller — the machine behaves exactly as before the
	// policy framework existed, and the canonical hash of every policy-free
	// config is unchanged.
	Policy PolicySpec

	// FetchPolicy selects the multi-path fetch arbitration scheme
	// (Sec. 3.2.6 calls fetch policy a topic of future work; the paper's
	// evaluation uses the exponential-decay policy).
	FetchPolicy FetchPolicy

	// Memory hierarchy extension. The paper's baseline assumes always-hit
	// caches (Sec. 4.2); enabling these replaces that assumption with a
	// set-associative LRU cache model and a fixed miss penalty, for the
	// memory-sensitivity extension study.
	EnableDCache      bool
	DCache            cache.Config
	DCacheMissLatency int
	EnableICache      bool
	ICache            cache.Config
	ICacheMissLatency int

	// BTBBits sizes the branch target buffer used for indirect jumps
	// (2^BTBBits entries). Workloads without indirect jumps never touch
	// it.
	BTBBits int

	// RASDepth sizes the return-address stack predicting function-return
	// targets. Each path carries its own speculative copy.
	RASDepth int

	// EnableMRC adds a misprediction recovery cache (Bondi et al, the
	// paper's related work [1]): decoded sequences at previous recovery
	// targets are injected past the front end on later recoveries.
	EnableMRC bool
	// MRCBits sizes the recovery cache (2^MRCBits lines; 0 = 8).
	MRCBits int

	// ResolutionBuses bounds how many branches may resolve per cycle
	// (Sec. 3.2.3: "If support for multiple branch resolutions per cycle
	// is desired, multiple branch resolution busses are necessary").
	// 0 means unlimited.
	ResolutionBuses int

	// NonSpeculativeHistory disables speculative global-history update:
	// predictions index with the architectural (commit-time) history
	// instead of the per-path speculative history. The paper reports that
	// speculative update improves prediction accuracy by about 1%
	// (Sec. 4.2); this knob exists for that ablation.
	NonSpeculativeHistory bool

	// MaxInsts bounds committed instructions (0 = run to Halt).
	MaxInsts uint64

	// Audit selects machine-check invariant auditing (off/commit/cycle;
	// see machinecheck.go and audit.go). Auditing is a runtime diagnostic
	// knob: it never changes simulated results, so it is excluded from the
	// polypath/v1 wire format and from the canonical config hash.
	Audit AuditLevel
}

// FetchPolicy selects how live paths share fetch bandwidth.
type FetchPolicy int

const (
	// FetchExponential gives each older path half of the remaining
	// bandwidth (the paper's policy): bandwidth decreases exponentially
	// with a path's distance from the oldest divergence.
	FetchExponential FetchPolicy = iota
	// FetchRoundRobin divides bandwidth evenly across live paths.
	FetchRoundRobin
)

// DefaultConfig returns the paper's baseline machine: 8-wide, 8-stage,
// 256-entry window, 4+4 integer ALUs, 4+4 FP units, 4 memory ports,
// gshare(14) with speculative history update, JRS 1-bit estimator with
// enhanced indexing.
func DefaultConfig() Config {
	return Config{
		Mode:            PolyPath,
		FetchWidth:      8,
		RenameWidth:     8,
		CommitWidth:     8,
		FrontEndStages:  5,
		WindowSize:      256,
		NumIntType0:     4,
		NumIntType1:     4,
		NumFPAdd:        4,
		NumFPMul:        4,
		NumMemPorts:     4,
		PhysRegs:        0, // derived: NumRegs + WindowSize + 64
		Checkpoints:     0, // derived: max(16, WindowSize/4)
		CtxHistoryWidth: 8,
		MaxPaths:        24,
		MaxDivergences:  0,
		BTBBits:         9,
		RASDepth:        16,
		Predictor:       PredictorSpec{Kind: PredGshare, Params: map[string]int{"hist_bits": 11}},
		Confidence: ConfidenceSpec{
			Kind:          ConfJRS,
			IndexBits:     11,
			CtrBits:       1,
			EnhancedIndex: true,
		},
	}
}

// PipelineDepth returns the total pipeline depth as the paper counts it.
func (c Config) PipelineDepth() int { return c.FrontEndStages + 3 }

// normalize fills derived defaults and validates. Every violation is
// reported as a *ConfigError; nothing in here (or downstream of a
// normalized config) panics on user-supplied values.
func (c Config) normalize() (Config, error) {
	if c.PhysRegs == 0 {
		c.PhysRegs = 32 + c.WindowSize + 64
	}
	if c.Checkpoints == 0 {
		c.Checkpoints = c.WindowSize / 4
		if c.Checkpoints < 16 {
			c.Checkpoints = 16
		}
	}
	switch {
	case c.Mode != Monopath && c.Mode != PolyPath:
		return c, cfgErr("Mode", "unknown mode %d", int(c.Mode))
	case c.FetchWidth < 1 || c.RenameWidth < 1 || c.CommitWidth < 1:
		return c, cfgErr("FetchWidth/RenameWidth/CommitWidth", "widths must be positive (got %d/%d/%d)", c.FetchWidth, c.RenameWidth, c.CommitWidth)
	case c.FrontEndStages < 1:
		return c, cfgErr("FrontEndStages", "must be >= 1 (got %d)", c.FrontEndStages)
	case c.WindowSize < 4:
		return c, cfgErr("WindowSize", "must be >= 4 (got %d)", c.WindowSize)
	case c.NumIntType0 < 1 || c.NumIntType1 < 1 || c.NumFPAdd < 1 || c.NumFPMul < 1 || c.NumMemPorts < 1:
		return c, cfgErr("NumIntType0/NumIntType1/NumFPAdd/NumFPMul/NumMemPorts", "need at least one functional unit of each type")
	case c.PhysRegs < 32+c.WindowSize:
		return c, cfgErr("PhysRegs", "%d cannot cover 32 logical + %d window entries", c.PhysRegs, c.WindowSize)
	case c.Checkpoints < 1:
		return c, cfgErr("Checkpoints", "need at least one checkpoint")
	case c.CtxHistoryWidth < 1 || c.CtxHistoryWidth > ctxtag.MaxPositions:
		return c, cfgErr("CtxHistoryWidth", "tag count %d exceeds the CTX-tag encoding capacity [1,%d]", c.CtxHistoryWidth, ctxtag.MaxPositions)
	case c.MaxPaths < 3:
		return c, cfgErr("MaxPaths", "must be >= 3 (parent + two children), got %d", c.MaxPaths)
	case c.MaxPaths > 1024:
		return c, cfgErr("MaxPaths", "%d exceeds the 1024-entry CTX table bound", c.MaxPaths)
	case c.MaxDivergences < 0:
		return c, cfgErr("MaxDivergences", "must be >= 0 (got %d)", c.MaxDivergences)
	case c.ResolutionBuses < 0:
		return c, cfgErr("ResolutionBuses", "must be >= 0 (got %d)", c.ResolutionBuses)
	case c.MaxInsts > 1<<40:
		return c, cfgErr("MaxInsts", "%d exceeds the 2^40 instruction bound", c.MaxInsts)
	case c.Audit != AuditOff && c.Audit != AuditCommit && c.Audit != AuditCycle:
		return c, cfgErr("Audit", "unknown audit level %d", int(c.Audit))
	}
	np, err := c.Predictor.normalize()
	if err != nil {
		return c, err
	}
	c.Predictor = np
	nc, err := c.Confidence.normalize()
	if err != nil {
		return c, err
	}
	c.Confidence = nc
	npol, err := c.Policy.normalize()
	if err != nil {
		return c, err
	}
	c.Policy = npol
	if c.Predictor.Kind == PredOracle && c.Confidence.Kind == ConfAdaptive {
		return c, cfgErr("Confidence.Kind", "adaptive (PVN-monitoring) confidence is undefined under the oracle predictor: a perfect predictor never mispredicts, so the monitored PVN has no sample to converge on")
	}
	if c.FetchPolicy != FetchExponential && c.FetchPolicy != FetchRoundRobin {
		return c, cfgErr("FetchPolicy", "unknown policy %d", int(c.FetchPolicy))
	}
	if c.BTBBits == 0 {
		c.BTBBits = 9
	}
	if c.BTBBits < 1 || c.BTBBits > 20 {
		return c, cfgErr("BTBBits", "%d out of [1,20]", c.BTBBits)
	}
	if c.RASDepth == 0 {
		c.RASDepth = 16
	}
	if c.RASDepth < 1 || c.RASDepth > 1024 {
		return c, cfgErr("RASDepth", "%d out of [1,1024]", c.RASDepth)
	}
	if c.MRCBits == 0 {
		c.MRCBits = 8
	}
	if c.MRCBits < 1 || c.MRCBits > 16 {
		return c, cfgErr("MRCBits", "%d out of [1,16]", c.MRCBits)
	}
	if c.EnableDCache {
		if err := c.DCache.Validate(); err != nil {
			return c, &ConfigError{Field: "DCache", Reason: err.Error()}
		}
		if c.DCacheMissLatency < 1 {
			return c, cfgErr("DCacheMissLatency", "must be >= 1 when the D-cache model is enabled")
		}
	} else {
		// The always-hit assumption is in effect: geometry and latency are
		// inert, so canonicalize them away.
		c.DCache = cache.Config{}
		c.DCacheMissLatency = 0
	}
	if c.EnableICache {
		if err := c.ICache.Validate(); err != nil {
			return c, &ConfigError{Field: "ICache", Reason: err.Error()}
		}
		if c.ICacheMissLatency < 1 {
			return c, cfgErr("ICacheMissLatency", "must be >= 1 when the I-cache model is enabled")
		}
	} else {
		c.ICache = cache.Config{}
		c.ICacheMissLatency = 0
	}
	if !c.EnableMRC {
		c.MRCBits = 8 // inert; keep the canonical default
	}
	return c, nil
}

// normalize resolves the spec against bpred.Registry: the kind must be
// registered, parameters are schema-checked with defaults filled, and the
// returned spec's parameter map is canonical and freshly allocated (inert
// and unknown-name errors surface as *ConfigError, never panics).
func (p PredictorSpec) normalize() (PredictorSpec, error) {
	if _, ok := bpred.Lookup(string(p.Kind)); !ok {
		return p, cfgErr("Predictor.Kind", "unknown predictor kind %q (registered: %s)", string(p.Kind), strings.Join(bpred.Kinds(), ", "))
	}
	p.Kind = PredictorKind(strings.ToLower(strings.TrimSpace(string(p.Kind))))
	// hist_bits is the legacy sizing field every pre-registry config carried;
	// on the legacy v1 kinds whose schema has no such parameter (static,
	// oracle) it was inert, and normalization canonicalizes it away rather
	// than rejecting it — the Figure 9 sweep sets hist_bits uniformly across
	// its config set, oracle bars included. Post-v1 kinds (tage, runtime
	// registrations) get strict schema validation: any parameter their
	// schema does not declare, hist_bits included, is an error.
	if _, ok := p.Params["hist_bits"]; ok && v1PredictorKinds[p.Kind] && !predictorAcceptsParam(p.Kind, "hist_bits") {
		np := make(map[string]int, len(p.Params)-1)
		for k, v := range p.Params {
			if k != "hist_bits" {
				np[k] = v
			}
		}
		p.Params = np
	}
	np, err := bpred.NormalizeParams(string(p.Kind), bpred.Params(p.Params))
	if err != nil {
		var pe *bpred.ParamError
		if errors.As(err, &pe) {
			return p, cfgErr("Predictor."+pe.Param, "%s (kind %s)", pe.Reason, pe.Kind)
		}
		return p, cfgErr("Predictor", "%v", err)
	}
	p.Params = np
	return p, nil
}

// normalize resolves the spec against confidence.Registry, canonicalizing
// inert fields and filling kind defaults.
func (cs ConfidenceSpec) normalize() (ConfidenceSpec, error) {
	ns, err := confidence.Normalize(confidence.Spec{
		Kind:           string(cs.Kind),
		IndexBits:      cs.IndexBits,
		CtrBits:        cs.CtrBits,
		Threshold:      cs.Threshold,
		EnhancedIndex:  cs.EnhancedIndex,
		AdaptiveMinPVN: cs.AdaptiveMinPVN,
		AdaptiveWindow: cs.AdaptiveWindow,
		Params:         cs.Params,
	})
	if err != nil {
		var se *confidence.SpecError
		if errors.As(err, &se) {
			return cs, cfgErr("Confidence."+se.Field, "%s (kind %s)", se.Reason, se.Kind)
		}
		return cs, cfgErr("Confidence.Kind", "unknown confidence kind %q (registered: %s)", string(cs.Kind), strings.Join(confidence.Kinds(), ", "))
	}
	return ConfidenceSpec{
		Kind:           ConfidenceKind(ns.Kind),
		IndexBits:      ns.IndexBits,
		CtrBits:        ns.CtrBits,
		Threshold:      ns.Threshold,
		EnhancedIndex:  ns.EnhancedIndex,
		AdaptiveMinPVN: ns.AdaptiveMinPVN,
		AdaptiveWindow: ns.AdaptiveWindow,
		Params:         ns.Params,
	}, nil
}

// buildConfidence constructs the estimator for a (normalized or raw) spec.
func buildConfidence(cs ConfidenceSpec) (confidence.Estimator, error) {
	return confidence.Build(confidence.Spec{
		Kind:           string(cs.Kind),
		IndexBits:      cs.IndexBits,
		CtrBits:        cs.CtrBits,
		Threshold:      cs.Threshold,
		EnhancedIndex:  cs.EnhancedIndex,
		AdaptiveMinPVN: cs.AdaptiveMinPVN,
		AdaptiveWindow: cs.AdaptiveWindow,
		Params:         cs.Params,
	})
}
