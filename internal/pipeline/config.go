// Package pipeline implements the cycle-level micro-architecture simulator
// of the PolyPath paper: an 8-wide, out-of-order, in-order-commit machine
// (Fig. 1) extended with context tags, a context manager, per-path register
// maps and confidence-guided selective eager execution (Fig. 2).
//
// The simulator is execution-driven: instructions — including wrong-path
// instructions after divergent or mispredicted branches — execute with real
// register values, and the committed architectural state is bit-identical
// to the functional interpreter's (enforced by integration tests).
package pipeline

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/confidence"
	"repro/internal/ctxtag"
)

// Mode selects the execution model.
type Mode int

const (
	// Monopath is the baseline speculative architecture: every branch
	// follows its prediction, mispredictions pay the full recovery
	// penalty.
	Monopath Mode = iota
	// PolyPath enables selective eager execution: low-confidence branches
	// diverge and both successor paths execute until resolution.
	PolyPath
)

func (m Mode) String() string {
	switch m {
	case Monopath:
		return "monopath"
	case PolyPath:
		return "polypath"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// PredictorKind selects the branch direction predictor.
type PredictorKind int

const (
	// PredGshare is the paper's baseline (McFarling).
	PredGshare PredictorKind = iota
	// PredBimodal is a per-address 2-bit counter table.
	PredBimodal
	// PredStatic is backward-taken/forward-not-taken.
	PredStatic
	// PredOracle predicts perfectly on the architecturally correct path
	// (the "oracle" bars of Fig. 8).
	PredOracle
	// PredLocal is a two-level local-history (PAg) predictor.
	PredLocal
	// PredCombining is McFarling's combining predictor (bimodal + gshare
	// with a chooser).
	PredCombining
)

// ConfidenceKind selects the branch confidence estimator.
type ConfidenceKind int

const (
	// ConfJRS is the Jacobsen-Rotenberg-Smith estimator with resetting
	// counters (the paper's real estimator).
	ConfJRS ConfidenceKind = iota
	// ConfOracle is the perfect estimator: low confidence exactly on
	// mispredictions ("gshare/oracle" in Fig. 8).
	ConfOracle
	// ConfAlwaysHigh never diverges (monopath behaviour).
	ConfAlwaysHigh
	// ConfAlwaysLow diverges on every branch resources permit.
	ConfAlwaysLow
	// ConfAdaptive is JRS wrapped with the PVN monitor of Sec. 5.1's
	// "lesson learned".
	ConfAdaptive
)

// PredictorSpec configures the direction predictor.
type PredictorSpec struct {
	Kind PredictorKind
	// HistBits is the history length / log2 table size for gshare (index
	// bits for bimodal). The paper's baseline is 14.
	HistBits int
}

// ConfidenceSpec configures the confidence estimator.
type ConfidenceSpec struct {
	Kind ConfidenceKind
	// IndexBits is log2 of the JRS table (paper: same as the predictor).
	IndexBits int
	// CtrBits is the JRS counter width (paper: 1).
	CtrBits int
	// Threshold overrides the high-confidence threshold (0 = saturation).
	Threshold int
	// EnhancedIndex includes the current prediction in the JRS index
	// (paper's enhancement; on in the baseline).
	EnhancedIndex bool
	// AdaptiveMinPVN / AdaptiveWindow configure ConfAdaptive.
	AdaptiveMinPVN float64
	AdaptiveWindow int
}

// Config describes the simulated machine. DefaultConfig returns the
// paper's baseline (Sec. 4.2).
type Config struct {
	Mode Mode

	// Widths (instructions per cycle).
	FetchWidth  int
	RenameWidth int
	CommitWidth int

	// FrontEndStages is the number of in-order front-end stages between
	// fetch and window insertion; the total pipeline depth reported in
	// Fig. 12 is FrontEndStages + 3 (window/issue, execute, commit).
	FrontEndStages int

	// WindowSize is the central instruction window / reorder buffer size.
	WindowSize int

	// Functional units.
	NumIntType0 int
	NumIntType1 int
	NumFPAdd    int
	NumFPMul    int
	NumMemPorts int

	// Rename resources.
	PhysRegs    int
	Checkpoints int

	// PolyPath context resources.
	CtxHistoryWidth int // CTX-tag history positions (max unresolved divergences)
	MaxPaths        int // CTX table entries
	MaxDivergences  int // cap on simultaneous divergences; 0 = unlimited, 1 = dual-path

	Predictor  PredictorSpec
	Confidence ConfidenceSpec

	// FetchPolicy selects the multi-path fetch arbitration scheme
	// (Sec. 3.2.6 calls fetch policy a topic of future work; the paper's
	// evaluation uses the exponential-decay policy).
	FetchPolicy FetchPolicy

	// Memory hierarchy extension. The paper's baseline assumes always-hit
	// caches (Sec. 4.2); enabling these replaces that assumption with a
	// set-associative LRU cache model and a fixed miss penalty, for the
	// memory-sensitivity extension study.
	EnableDCache      bool
	DCache            cache.Config
	DCacheMissLatency int
	EnableICache      bool
	ICache            cache.Config
	ICacheMissLatency int

	// BTBBits sizes the branch target buffer used for indirect jumps
	// (2^BTBBits entries). Workloads without indirect jumps never touch
	// it.
	BTBBits int

	// RASDepth sizes the return-address stack predicting function-return
	// targets. Each path carries its own speculative copy.
	RASDepth int

	// EnableMRC adds a misprediction recovery cache (Bondi et al, the
	// paper's related work [1]): decoded sequences at previous recovery
	// targets are injected past the front end on later recoveries.
	EnableMRC bool
	// MRCBits sizes the recovery cache (2^MRCBits lines; 0 = 8).
	MRCBits int

	// ResolutionBuses bounds how many branches may resolve per cycle
	// (Sec. 3.2.3: "If support for multiple branch resolutions per cycle
	// is desired, multiple branch resolution busses are necessary").
	// 0 means unlimited.
	ResolutionBuses int

	// NonSpeculativeHistory disables speculative global-history update:
	// predictions index with the architectural (commit-time) history
	// instead of the per-path speculative history. The paper reports that
	// speculative update improves prediction accuracy by about 1%
	// (Sec. 4.2); this knob exists for that ablation.
	NonSpeculativeHistory bool

	// MaxInsts bounds committed instructions (0 = run to Halt).
	MaxInsts uint64

	// Audit selects machine-check invariant auditing (off/commit/cycle;
	// see machinecheck.go and audit.go). Auditing is a runtime diagnostic
	// knob: it never changes simulated results, so it is excluded from the
	// polypath/v1 wire format and from the canonical config hash.
	Audit AuditLevel
}

// FetchPolicy selects how live paths share fetch bandwidth.
type FetchPolicy int

const (
	// FetchExponential gives each older path half of the remaining
	// bandwidth (the paper's policy): bandwidth decreases exponentially
	// with a path's distance from the oldest divergence.
	FetchExponential FetchPolicy = iota
	// FetchRoundRobin divides bandwidth evenly across live paths.
	FetchRoundRobin
)

// DefaultConfig returns the paper's baseline machine: 8-wide, 8-stage,
// 256-entry window, 4+4 integer ALUs, 4+4 FP units, 4 memory ports,
// gshare(14) with speculative history update, JRS 1-bit estimator with
// enhanced indexing.
func DefaultConfig() Config {
	return Config{
		Mode:            PolyPath,
		FetchWidth:      8,
		RenameWidth:     8,
		CommitWidth:     8,
		FrontEndStages:  5,
		WindowSize:      256,
		NumIntType0:     4,
		NumIntType1:     4,
		NumFPAdd:        4,
		NumFPMul:        4,
		NumMemPorts:     4,
		PhysRegs:        0, // derived: NumRegs + WindowSize + 64
		Checkpoints:     0, // derived: max(16, WindowSize/4)
		CtxHistoryWidth: 8,
		MaxPaths:        24,
		MaxDivergences:  0,
		BTBBits:         9,
		RASDepth:        16,
		Predictor:       PredictorSpec{Kind: PredGshare, HistBits: 11},
		Confidence: ConfidenceSpec{
			Kind:          ConfJRS,
			IndexBits:     11,
			CtrBits:       1,
			EnhancedIndex: true,
		},
	}
}

// PipelineDepth returns the total pipeline depth as the paper counts it.
func (c Config) PipelineDepth() int { return c.FrontEndStages + 3 }

// normalize fills derived defaults and validates. Every violation is
// reported as a *ConfigError; nothing in here (or downstream of a
// normalized config) panics on user-supplied values.
func (c Config) normalize() (Config, error) {
	if c.PhysRegs == 0 {
		c.PhysRegs = 32 + c.WindowSize + 64
	}
	if c.Checkpoints == 0 {
		c.Checkpoints = c.WindowSize / 4
		if c.Checkpoints < 16 {
			c.Checkpoints = 16
		}
	}
	switch {
	case c.Mode != Monopath && c.Mode != PolyPath:
		return c, cfgErr("Mode", "unknown mode %d", int(c.Mode))
	case c.FetchWidth < 1 || c.RenameWidth < 1 || c.CommitWidth < 1:
		return c, cfgErr("FetchWidth/RenameWidth/CommitWidth", "widths must be positive (got %d/%d/%d)", c.FetchWidth, c.RenameWidth, c.CommitWidth)
	case c.FrontEndStages < 1:
		return c, cfgErr("FrontEndStages", "must be >= 1 (got %d)", c.FrontEndStages)
	case c.WindowSize < 4:
		return c, cfgErr("WindowSize", "must be >= 4 (got %d)", c.WindowSize)
	case c.NumIntType0 < 1 || c.NumIntType1 < 1 || c.NumFPAdd < 1 || c.NumFPMul < 1 || c.NumMemPorts < 1:
		return c, cfgErr("NumIntType0/NumIntType1/NumFPAdd/NumFPMul/NumMemPorts", "need at least one functional unit of each type")
	case c.PhysRegs < 32+c.WindowSize:
		return c, cfgErr("PhysRegs", "%d cannot cover 32 logical + %d window entries", c.PhysRegs, c.WindowSize)
	case c.Checkpoints < 1:
		return c, cfgErr("Checkpoints", "need at least one checkpoint")
	case c.CtxHistoryWidth < 1 || c.CtxHistoryWidth > ctxtag.MaxPositions:
		return c, cfgErr("CtxHistoryWidth", "tag count %d exceeds the CTX-tag encoding capacity [1,%d]", c.CtxHistoryWidth, ctxtag.MaxPositions)
	case c.MaxPaths < 3:
		return c, cfgErr("MaxPaths", "must be >= 3 (parent + two children), got %d", c.MaxPaths)
	case c.MaxPaths > 1024:
		return c, cfgErr("MaxPaths", "%d exceeds the 1024-entry CTX table bound", c.MaxPaths)
	case c.MaxDivergences < 0:
		return c, cfgErr("MaxDivergences", "must be >= 0 (got %d)", c.MaxDivergences)
	case c.ResolutionBuses < 0:
		return c, cfgErr("ResolutionBuses", "must be >= 0 (got %d)", c.ResolutionBuses)
	case c.MaxInsts > 1<<40:
		return c, cfgErr("MaxInsts", "%d exceeds the 2^40 instruction bound", c.MaxInsts)
	case c.Audit != AuditOff && c.Audit != AuditCommit && c.Audit != AuditCycle:
		return c, cfgErr("Audit", "unknown audit level %d", int(c.Audit))
	}
	if err := c.Predictor.validate(); err != nil {
		return c, err
	}
	if err := c.Confidence.validate(); err != nil {
		return c, err
	}
	if c.Predictor.Kind == PredOracle && c.Confidence.Kind == ConfAdaptive {
		return c, cfgErr("Confidence.Kind", "adaptive (PVN-monitoring) confidence is undefined under the oracle predictor: a perfect predictor never mispredicts, so the monitored PVN has no sample to converge on")
	}
	if c.FetchPolicy != FetchExponential && c.FetchPolicy != FetchRoundRobin {
		return c, cfgErr("FetchPolicy", "unknown policy %d", int(c.FetchPolicy))
	}
	if c.BTBBits == 0 {
		c.BTBBits = 9
	}
	if c.BTBBits < 1 || c.BTBBits > 20 {
		return c, cfgErr("BTBBits", "%d out of [1,20]", c.BTBBits)
	}
	if c.RASDepth == 0 {
		c.RASDepth = 16
	}
	if c.RASDepth < 1 || c.RASDepth > 1024 {
		return c, cfgErr("RASDepth", "%d out of [1,1024]", c.RASDepth)
	}
	if c.MRCBits == 0 {
		c.MRCBits = 8
	}
	if c.MRCBits < 1 || c.MRCBits > 16 {
		return c, cfgErr("MRCBits", "%d out of [1,16]", c.MRCBits)
	}
	if c.EnableDCache {
		if err := c.DCache.Validate(); err != nil {
			return c, &ConfigError{Field: "DCache", Reason: err.Error()}
		}
		if c.DCacheMissLatency < 1 {
			return c, cfgErr("DCacheMissLatency", "must be >= 1 when the D-cache model is enabled")
		}
	} else {
		// The always-hit assumption is in effect: geometry and latency are
		// inert, so canonicalize them away.
		c.DCache = cache.Config{}
		c.DCacheMissLatency = 0
	}
	if c.EnableICache {
		if err := c.ICache.Validate(); err != nil {
			return c, &ConfigError{Field: "ICache", Reason: err.Error()}
		}
		if c.ICacheMissLatency < 1 {
			return c, cfgErr("ICacheMissLatency", "must be >= 1 when the I-cache model is enabled")
		}
	} else {
		c.ICache = cache.Config{}
		c.ICacheMissLatency = 0
	}
	if !c.EnableMRC {
		c.MRCBits = 8 // inert; keep the canonical default
	}
	// Canonicalize inert sizing fields so that configurations describing
	// the same machine normalize (and therefore hash) identically.
	switch c.Predictor.Kind {
	case PredStatic, PredOracle:
		c.Predictor.HistBits = 0
	}
	switch c.Confidence.Kind {
	case ConfOracle, ConfAlwaysHigh, ConfAlwaysLow:
		c.Confidence = ConfidenceSpec{Kind: c.Confidence.Kind}
	case ConfJRS:
		c.Confidence.AdaptiveMinPVN = 0
		c.Confidence.AdaptiveWindow = 0
	case ConfAdaptive:
		if c.Confidence.AdaptiveMinPVN == 0 {
			c.Confidence.AdaptiveMinPVN = 0.30
		}
		if c.Confidence.AdaptiveWindow == 0 {
			c.Confidence.AdaptiveWindow = 256
		}
	}
	return c, nil
}

// validate checks the predictor spec against the table-size bounds of the
// bpred constructors, so construction can never panic on user input.
func (p PredictorSpec) validate() error {
	switch p.Kind {
	case PredGshare, PredBimodal, PredLocal, PredCombining:
		if p.HistBits < 2 || p.HistBits > 28 {
			return cfgErr("Predictor.HistBits", "%d out of [2,28] for %s", p.HistBits, p.Kind)
		}
	case PredStatic, PredOracle:
		// History length is inert for these kinds.
	default:
		return cfgErr("Predictor.Kind", "unknown predictor kind %d", int(p.Kind))
	}
	return nil
}

// validate checks the confidence spec against the JRS/adaptive constructor
// bounds (panic-free construction for any validated config).
func (cs ConfidenceSpec) validate() error {
	switch cs.Kind {
	case ConfJRS, ConfAdaptive:
		if cs.IndexBits < 1 || cs.IndexBits > 28 {
			return cfgErr("Confidence.IndexBits", "%d out of [1,28]", cs.IndexBits)
		}
		if cs.CtrBits < 1 || cs.CtrBits > 8 {
			return cfgErr("Confidence.CtrBits", "%d out of [1,8]", cs.CtrBits)
		}
		if cs.Threshold < 0 || cs.Threshold > (1<<cs.CtrBits)-1 {
			return cfgErr("Confidence.Threshold", "%d exceeds the %d-bit counter maximum %d (0 selects saturation)", cs.Threshold, cs.CtrBits, (1<<cs.CtrBits)-1)
		}
	case ConfOracle, ConfAlwaysHigh, ConfAlwaysLow:
		// Sizing fields are inert.
	default:
		return cfgErr("Confidence.Kind", "unknown confidence kind %d", int(cs.Kind))
	}
	if cs.Kind == ConfAdaptive {
		if cs.AdaptiveMinPVN < 0 || cs.AdaptiveMinPVN >= 1 {
			return cfgErr("Confidence.AdaptiveMinPVN", "%g out of [0,1) (0 selects the default 0.30)", cs.AdaptiveMinPVN)
		}
		if cs.AdaptiveWindow != 0 && cs.AdaptiveWindow < 8 {
			return cfgErr("Confidence.AdaptiveWindow", "%d must be 0 (default 256) or >= 8", cs.AdaptiveWindow)
		}
	}
	return nil
}

// buildConfidence constructs the estimator for a spec.
func buildConfidence(cs ConfidenceSpec) (confidence.Estimator, error) {
	switch cs.Kind {
	case ConfJRS, ConfAdaptive:
		jrs := confidence.NewJRS(confidence.JRSConfig{
			IndexBits:     cs.IndexBits,
			CtrBits:       cs.CtrBits,
			Threshold:     cs.Threshold,
			EnhancedIndex: cs.EnhancedIndex,
		})
		if cs.Kind == ConfJRS {
			return jrs, nil
		}
		minPVN, window := cs.AdaptiveMinPVN, cs.AdaptiveWindow
		if minPVN == 0 {
			minPVN = 0.30
		}
		if window == 0 {
			window = 256
		}
		return confidence.NewAdaptive(jrs, confidence.AdaptiveConfig{MinPVN: minPVN, Window: window}), nil
	case ConfOracle:
		return confidence.Oracle{}, nil
	case ConfAlwaysHigh:
		return confidence.AlwaysHigh{}, nil
	case ConfAlwaysLow:
		return confidence.AlwaysLow{}, nil
	default:
		return nil, fmt.Errorf("pipeline: unknown confidence kind %d", cs.Kind)
	}
}
