package pipeline

import (
	"math/bits"
	"repro/internal/rename"
)

// soa.go is the structure-of-arrays scheduler core: dense per-window-slot
// bitmaps and parallel field arrays that let wakeup and select walk set
// bits with bits.TrailingZeros64 instead of scanning pointer-heavy window
// entries (the ready-bitmap + CTZ scheduler pattern, cf. ROADMAP item 3).
//
// Slots are winBuf positions: the window occupies winBuf[winOff :
// winOff+len(window)] in seq (age) order, so an ascending bit walk IS the
// oldest-first scan order the pre-SoA deque used — the property the
// select-order cross-check test asserts. Bits outside the live range are
// always clear (maintained at insert, issue, commit pop, and the rebuild
// that follows any window compaction), so the hot walks need no boundary
// masking beyond the "stores older than this load" cut.
//
// Semantics are deliberately recompute-exact: operand readiness is
// tested live against physReady at every select walk, never cached
// across cycles, so the select candidates are the same set the old
// per-entry scan produced — under fault injection included — and every
// experiment table stays byte-identical.

// soaState holds the scheduler's structure-of-arrays view of the window.
// All slices are indexed by winBuf position; the bitmaps pack 64 slots
// per word.
type soaState struct {
	waitW  []uint64 // slot holds an entry in stateWaiting
	readyW []uint64 // verify-hook scratch: recomputed select candidates
	staW   []uint64 // waiting store whose effective address is not yet computed
	storeW []uint64 // slot holds a store (any state): the load-disambiguation walk

	// Wakeup-critical per-slot fields, copied from the entry at insert so
	// the per-cycle readiness recompute touches only these dense arrays.
	src1  []rename.PhysReg
	src2  []rename.PhysReg
	flags []uint8
	class []uint8
}

// soaState.flags bits.
const (
	fReadsSrc1 uint8 = 1 << iota
	fReadsSrc2
)

// soaInit sizes the scheduler arrays for a winBuf of n slots, drawing
// backing storage from the arena when possible.
func (m *Machine) soaInit(n int, a *Arena) {
	words := (n + 63) / 64
	s := &m.soa
	*s = a.takeSoA()
	s.waitW = takeWords(s.waitW, words)
	s.readyW = takeWords(s.readyW, words)
	s.staW = takeWords(s.staW, words)
	s.storeW = takeWords(s.storeW, words)
	s.src1 = takePhys(s.src1, n)
	s.src2 = takePhys(s.src2, n)
	s.flags = takeBytes(s.flags, n)
	s.class = takeBytes(s.class, n)
}

// soaOperandsReady reports whether every source operand of the entry at
// pos is ready, reading only the SoA arrays and the physical-register
// readiness bitmap.
func (m *Machine) soaOperandsReady(pos int) bool {
	s := &m.soa
	fl := s.flags[pos]
	if fl&fReadsSrc1 != 0 && !m.physReady.Test(s.src1[pos]) {
		return false
	}
	if fl&fReadsSrc2 != 0 && !m.physReady.Test(s.src2[pos]) {
		return false
	}
	return true
}

// soaSet derives the scheduler state of entry e at slot pos: the SoA
// field copies and the wait/sta/store bits. Used at window insert and by
// the post-compaction rebuild. Operand readiness is never cached here —
// the select walk tests it live against physReady.
func (m *Machine) soaSet(pos int, e *entry) {
	s := &m.soa
	s.src1[pos] = e.src1Phys
	s.src2[pos] = e.src2Phys
	var fl uint8
	if e.readsSrc1 {
		fl |= fReadsSrc1
	}
	if e.readsSrc2 {
		fl |= fReadsSrc2
	}
	s.flags[pos] = fl
	s.class[pos] = uint8(e.class)

	w, bit := pos>>6, uint64(1)<<uint(pos&63)
	if e.isStore {
		s.storeW[w] |= bit
	}
	if e.state == stateWaiting {
		s.waitW[w] |= bit
		if e.isStore && !e.addrReady {
			s.staW[w] |= bit
		}
	}
}

// soaClearPos clears every scheduler bit of slot pos (the commit pop).
func (m *Machine) soaClearPos(pos int) {
	s := &m.soa
	w, bit := pos>>6, uint64(1)<<uint(pos&63)
	s.waitW[w] &^= bit
	s.staW[w] &^= bit
	s.storeW[w] &^= bit
}

// soaIssued clears the waiting bit of slot pos when its entry leaves
// stateWaiting for a functional unit.
func (m *Machine) soaIssued(pos int) {
	s := &m.soa
	s.waitW[pos>>6] &^= uint64(1) << uint(pos&63)
}

// soaClearRange clears every scheduler bit in slot range [lo, hi).
func (m *Machine) soaClearRange(lo, hi int) {
	if lo >= hi {
		return
	}
	s := &m.soa
	loW, hiW := lo>>6, (hi-1)>>6
	for w := loW; w <= hiW; w++ {
		mask := ^uint64(0)
		if w == loW {
			mask &^= (uint64(1) << uint(lo&63)) - 1
		}
		if w == hiW && (hi&63) != 0 {
			mask &= (uint64(1) << uint(hi&63)) - 1
		}
		s.waitW[w] &^= mask
		s.staW[w] &^= mask
		s.storeW[w] &^= mask
	}
}

// soaRebuild re-derives every bitmap and SoA field from the live window.
// Called after a compaction that moves every entry to a new winBuf
// position (the windowPush wrap); already O(window), so the rebuild does
// not change its complexity.
func (m *Machine) soaRebuild() {
	s := &m.soa
	clear(s.waitW)
	clear(s.staW)
	clear(s.storeW)
	for i, e := range m.window {
		m.soaSet(m.winOff+i, e)
	}
}

// soaRebuildFrom re-derives scheduler state for window indices >= from,
// where oldLen is the window length before a kill-sweep compaction.
// Entries below from kept their winBuf positions, so only the shifted
// suffix (and the vacated tail) needs touching — a kill that squashes a
// young subtree leaves the old prefix's bits alone.
func (m *Machine) soaRebuildFrom(from, oldLen int) {
	m.soaClearRange(m.winOff+from, m.winOff+oldLen)
	for i := from; i < len(m.window); i++ {
		m.soaSet(m.winOff+i, m.window[i])
	}
}

// walkBits calls fn with each set bit position of words inside [lo, hi),
// ascending, stopping early when fn returns false. It is the reference
// form of the masked per-word walk the hot loops inline; the exhaustive
// 64/65/128-slot boundary tests run against it and the audit sweep uses
// it to cross-check the inlined walks.
func walkBits(words []uint64, lo, hi int, fn func(pos int) bool) {
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	for w := loW; w <= hiW; w++ {
		word := words[w]
		if w == loW {
			word &^= (uint64(1) << uint(lo&63)) - 1
		}
		if w == hiW && (hi&63) != 0 {
			word &= (uint64(1) << uint(hi&63)) - 1
		}
		for ; word != 0; word &= word - 1 {
			if !fn(w<<6 | bits.TrailingZeros64(word)) {
				return
			}
		}
	}
}

// soaSelectAudit, when set by tests, cross-checks every select pass: the
// candidate sequence produced by the ready-bitmap walk must equal a naive
// oldest-first scan of the window applying the pre-SoA readiness
// predicate. It is a test hook only; the hot path pays one branch.
var soaSelectAudit bool

// soaVerifySelectOrder machine-checks when the bitmap-derived select
// order diverges from the old deque scan order. It recomputes the
// candidate set into the readyW scratch exactly as the fused select walk
// derives it (waitW bits filtered by live operand readiness), then
// compares the masked walk against a naive oldest-first window scan
// applying the pre-SoA predicate.
func (m *Machine) soaVerifySelectOrder() {
	var naive []uint64
	for _, e := range m.window {
		if e.state != stateWaiting {
			continue
		}
		if e.readsSrc1 && !m.physReady.Test(e.src1Phys) {
			continue
		}
		if e.readsSrc2 && !m.physReady.Test(e.src2Phys) {
			continue
		}
		naive = append(naive, e.seq)
	}
	s := &m.soa
	lo, hi := m.winOff, m.winOff+len(m.window)
	clear(s.readyW)
	if hi > lo {
		for w, hiW := lo>>6, (hi-1)>>6; w <= hiW; w++ {
			var ready uint64
			for t := s.waitW[w]; t != 0; t &= t - 1 {
				b := bits.TrailingZeros64(t)
				if m.soaOperandsReady(w<<6 | b) {
					ready |= uint64(1) << uint(b)
				}
			}
			s.readyW[w] = ready
		}
	}
	var got []uint64
	walkBits(s.readyW, lo, hi, func(pos int) bool {
		got = append(got, m.winBuf[pos].seq)
		return true
	})
	if len(naive) != len(got) {
		m.machineCheckf("wakeup", -1, "soa select order: bitmap yields %d candidates, deque scan %d", len(got), len(naive))
	}
	for i := range naive {
		if naive[i] != got[i] {
			m.machineCheckf("wakeup", -1, "soa select order: candidate %d is seq %d via bitmap, seq %d via deque scan", i, got[i], naive[i])
		}
	}
}

// auditScheduler verifies the SoA scheduler against the window: every
// bit must agree with its entry's state, the SoA field copies must not
// have drifted, and no bit may be set outside the live slot range. It
// runs last in the audit sweep so the pre-existing invariant checks keep
// reporting first on the faults they were designed to catch.
func (m *Machine) auditScheduler() {
	s := &m.soa
	lo := m.winOff
	var nWait, nSta, nStore int
	for i, e := range m.window {
		pos := lo + i
		w, bit := pos>>6, uint64(1)<<uint(pos&63)
		waiting := e.state == stateWaiting
		if (s.waitW[w]&bit != 0) != waiting {
			m.machineCheckf("wakeup", e.pc, "entry seq %d waiting=%v but wait bit=%v", e.seq, waiting, s.waitW[w]&bit != 0)
		}
		if (s.storeW[w]&bit != 0) != e.isStore {
			m.machineCheckf("store-filter", e.pc, "entry seq %d store=%v but store bit=%v", e.seq, e.isStore, s.storeW[w]&bit != 0)
		}
		wantSta := waiting && e.isStore && !e.addrReady
		if (s.staW[w]&bit != 0) != wantSta {
			m.machineCheckf("store-filter", e.pc, "entry seq %d sta bit=%v, want %v", e.seq, s.staW[w]&bit != 0, wantSta)
		}
		if e.readsSrc1 && s.src1[pos] != e.src1Phys {
			m.machineCheckf("wakeup", e.pc, "entry seq %d src1 drifted: soa p%d, entry p%d", e.seq, s.src1[pos], e.src1Phys)
		}
		if e.readsSrc2 && s.src2[pos] != e.src2Phys {
			m.machineCheckf("wakeup", e.pc, "entry seq %d src2 drifted: soa p%d, entry p%d", e.seq, s.src2[pos], e.src2Phys)
		}
		if s.waitW[w]&bit != 0 {
			nWait++
		}
		if s.staW[w]&bit != 0 {
			nSta++
		}
		if s.storeW[w]&bit != 0 {
			nStore++
		}
	}
	count := func(words []uint64) int {
		n := 0
		for _, w := range words {
			n += bits.OnesCount64(w)
		}
		return n
	}
	if got := count(s.waitW); got != nWait {
		m.machineCheckf("wakeup", -1, "wait bitmap holds %d bits, %d belong to live slots (stray bits)", got, nWait)
	}
	if got := count(s.staW); got != nSta {
		m.machineCheckf("store-filter", -1, "sta bitmap holds %d bits, %d belong to live slots (stray bits)", got, nSta)
	}
	if got := count(s.storeW); got != nStore {
		m.machineCheckf("store-filter", -1, "store bitmap holds %d bits, %d belong to live slots (stray bits)", got, nStore)
	}
}
