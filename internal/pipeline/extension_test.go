package pipeline

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/bpred"
)

// toyPredictor is a deliberately silly predictor defined OUTSIDE
// internal/bpred: it predicts taken whenever its single counter of the last
// "stride" outcomes is majority-taken. It exists to prove the acceptance
// criterion of the registry redesign — a new predictor plugs in through
// bpred.Register alone, with no edits to the pipeline, wire format, or
// CLIs.
type toyPredictor struct {
	window uint64
	stride int
}

func (p *toyPredictor) Predict(pc int, hist uint64) bool {
	ones := 0
	for i := 0; i < p.stride; i++ {
		if p.window>>uint(i)&1 == 1 {
			ones++
		}
	}
	return ones*2 >= p.stride
}

func (p *toyPredictor) Update(pc int, hist uint64, taken bool) {
	p.window <<= 1
	if taken {
		p.window |= 1
	}
}

func (p *toyPredictor) StateBytes() int { return (p.stride + 7) / 8 }
func (p *toyPredictor) Reset()          { p.window = 0 }

var registerToyOnce sync.Once

func registerToy(t *testing.T) {
	t.Helper()
	registerToyOnce.Do(func() {
		err := bpred.Register(bpred.Entry{
			Kind: "toy-majority",
			Doc:  "test-only majority-vote predictor",
			Params: []bpred.ParamSpec{
				{Name: "stride", Doc: "votes in the majority window", Min: 1, Max: 64, Default: 8},
			},
			New: func(p bpred.Params, _ bpred.Env) (bpred.Predictor, error) {
				return &toyPredictor{stride: p.Get("stride", 8)}, nil
			},
			StateBytes: func(p bpred.Params) int { return (p.Get("stride", 8) + 7) / 8 },
		})
		if err != nil {
			t.Fatalf("runtime registration failed: %v", err)
		}
	})
}

// TestRuntimeRegisteredPredictorRunsEndToEnd is the tentpole acceptance
// test: a predictor kind registered at runtime from outside internal/bpred
// is immediately usable everywhere — config validation, kind parsing, the
// polypath/v2 wire format, canonical hashing, and a full simulation run.
func TestRuntimeRegisteredPredictorRunsEndToEnd(t *testing.T) {
	registerToy(t)

	cfg, err := NewConfig(WithPredictor(PredictorSpec{
		Kind:   "toy-majority",
		Params: map[string]int{"stride": 4},
	}))
	if err != nil {
		t.Fatal(err)
	}

	// The parser sees it.
	if k, err := ParsePredictorKind("Toy-Majority"); err != nil || k != "toy-majority" {
		t.Fatalf("ParsePredictorKind: %v, %v", k, err)
	}

	// The wire format carries it (as polypath/v2; the frozen v1 schema
	// must refuse it).
	if _, err := EncodeConfigV1(cfg); err == nil {
		t.Error("runtime kind must not be representable in frozen polypath/v1")
	}
	blob, err := EncodeConfigV2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"toy-majority"`) {
		t.Fatalf("v2 encoding lost the kind: %s", blob)
	}
	back, err := DecodeConfig(blob)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := CanonicalHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := CanonicalHash(back)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("wire round trip changed the hash: %s vs %s", h1, h2)
	}

	// And it simulates: a full machine runs and commits with the toy
	// predictor making real predictions.
	m, err := New(diamondProgram(2000, 0.7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Committed == 0 || m.Stats.CondBranches == 0 {
		t.Fatalf("toy-predictor machine made no progress: %+v", m.Stats)
	}
	// Majority-vote over a 70%-taken branch stream must beat never-taken
	// (i.e. it actually predicts; exact accuracy is not the point).
	if m.Stats.Mispredicts >= m.Stats.CondBranches {
		t.Errorf("toy predictor never predicted correctly: %d mispredicts / %d branches",
			m.Stats.Mispredicts, m.Stats.CondBranches)
	}
}

// TestRuntimeKindParamValidation: schema enforcement applies to runtime
// kinds exactly as to built-ins.
func TestRuntimeKindParamValidation(t *testing.T) {
	registerToy(t)
	_, err := NewConfig(WithPredictor(PredictorSpec{
		Kind:   "toy-majority",
		Params: map[string]int{"stride": 100},
	}))
	requireConfigError(t, err, "Predictor.stride")
}
