package pipeline

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestEncodeConfigV1CarriesSchema(t *testing.T) {
	blob, err := EncodeConfigV1(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != SchemaV1 {
		t.Fatalf("schema = %v, want %q", m["schema"], SchemaV1)
	}
}

// TestConfigV1RoundTrip encodes and re-decodes a spread of configurations
// and requires the normalized forms (and the canonical encodings) to be
// identical.
func TestConfigV1RoundTrip(t *testing.T) {
	cfgs := []Config{DefaultConfig()}
	c := DefaultConfig()
	c.Mode = Monopath
	c.Confidence.Kind = ConfAlwaysHigh
	cfgs = append(cfgs, c)
	c = DefaultConfig()
	c.Predictor = PredictorSpec{Kind: PredCombining, Params: map[string]int{"hist_bits": 9}}
	c.Confidence = ConfidenceSpec{Kind: ConfAdaptive, IndexBits: 9, CtrBits: 4, Threshold: 8, EnhancedIndex: true}
	c.MaxDivergences = 1
	c.ResolutionBuses = 2
	c.NonSpeculativeHistory = true
	c.MaxInsts = 123456
	cfgs = append(cfgs, c)

	for i, cfg := range cfgs {
		blob, err := EncodeConfigV1(cfg)
		if err != nil {
			t.Fatalf("cfg %d: encode: %v", i, err)
		}
		back, err := DecodeConfigV1(blob)
		if err != nil {
			t.Fatalf("cfg %d: decode: %v", i, err)
		}
		want, err := cfg.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cfg %d: round-trip changed the normalized config\n got %+v\nwant %+v", i, got, want)
		}
		blob2, err := EncodeConfigV1(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Errorf("cfg %d: canonical encoding not stable across a round trip", i)
		}
	}
}

func TestDecodeConfigV1RejectsUnknownFields(t *testing.T) {
	blob, err := EncodeConfigV1(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(blob, []byte(`"mode"`), []byte(`"widow_size":9,"mode"`), 1)
	_, err = DecodeConfigV1(bad)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConfigError, got %T (%v)", err, err)
	}
	if !strings.Contains(err.Error(), "widow_size") {
		t.Errorf("error should name the unknown field, got %q", err)
	}
}

func TestDecodeConfigV1RejectsWrongSchema(t *testing.T) {
	blob, err := EncodeConfigV1(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, schema := range []string{`"polypath/v2"`, `""`} {
		bad := bytes.Replace(blob, []byte(`"`+SchemaV1+`"`), []byte(schema), 1)
		if _, err := DecodeConfigV1(bad); err == nil {
			t.Errorf("schema %s accepted", schema)
		}
	}
}

func TestDecodeConfigV1RejectsInvalidMachine(t *testing.T) {
	blob, err := EncodeConfigV1(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(blob, []byte(`"fetch_width":8`), []byte(`"fetch_width":0`), 1)
	if !bytes.Contains(bad, []byte(`"fetch_width":0`)) {
		t.Fatal("test fixture: substitution failed")
	}
	_, err = DecodeConfigV1(bad)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("invalid machine must yield *ConfigError, got %T (%v)", err, err)
	}
}

// TestCanonicalHashNormalizationInvariance: two spellings of the same
// machine (derived defaults left implicit vs written out; inert sizing
// fields differing) must hash identically, and a real parameter change
// must change the hash.
func TestCanonicalHashNormalizationInvariance(t *testing.T) {
	a := DefaultConfig() // PhysRegs/Checkpoints implicit (0 = derived)
	b := DefaultConfig()
	b.PhysRegs = 32 + b.WindowSize + 64 // written out explicitly
	b.Checkpoints = b.WindowSize / 4
	ha, err := CanonicalHash(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := CanonicalHash(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Error("derived-default spelling changed the canonical hash")
	}

	// Inert confidence sizing under a degenerate estimator.
	c1 := DefaultConfig()
	c1.Confidence = ConfidenceSpec{Kind: ConfAlwaysHigh, IndexBits: 11}
	c2 := DefaultConfig()
	c2.Confidence = ConfidenceSpec{Kind: ConfAlwaysHigh, IndexBits: 14, CtrBits: 4}
	h1, _ := CanonicalHash(c1)
	h2, _ := CanonicalHash(c2)
	if h1 != h2 {
		t.Error("inert confidence sizing changed the canonical hash")
	}

	d := DefaultConfig()
	d.WindowSize = 128
	d.PhysRegs, d.Checkpoints = 0, 0
	hd, _ := CanonicalHash(d)
	if hd == ha {
		t.Error("window size change did not change the canonical hash")
	}
}

func TestCanonicalHashInvalidConfigErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.WindowSize = 0
	if _, err := CanonicalHash(bad); err == nil {
		t.Fatal("invalid config must not hash")
	}
}
