package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/isa/progfuzz"
)

// The random-program generator lives in internal/isa/progfuzz, shared
// with that package's Go-native differential fuzz target
// (FuzzPipelineVsInterp); this test keeps the fixed-trial randomized
// sweep in the ordinary test suite.

// TestRandomProgramsArchEquivalence is the simulator's fuzz oracle: across
// many random programs with chaotic control flow, every machine model must
// commit exactly the interpreter's architectural state. This exercises
// divergence, nested misprediction recovery, CTX reuse, store forwarding
// and wrong-path garbage execution far beyond the structured workloads.
func TestRandomProgramsArchEquivalence(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	configs := []struct {
		name string
		cfg  func() Config
	}{
		{"monopath", func() Config {
			c := DefaultConfig()
			c.Mode = Monopath
			c.Confidence.Kind = ConfAlwaysHigh
			c.MaxInsts = 5_000
			return c
		}},
		{"polypath-jrs", func() Config {
			c := DefaultConfig()
			c.MaxInsts = 5_000
			return c
		}},
		{"polypath-eager", func() Config {
			c := DefaultConfig()
			c.Confidence.Kind = ConfAlwaysLow
			c.MaxInsts = 5_000
			return c
		}},
		{"dualpath", func() Config {
			c := DefaultConfig()
			c.MaxDivergences = 1
			c.MaxInsts = 5_000
			return c
		}},
		{"tiny-machine", func() Config {
			c := DefaultConfig()
			c.Confidence.Kind = ConfAlwaysLow
			c.WindowSize = 16
			c.PhysRegs = 52
			c.Checkpoints = 4
			c.CtxHistoryWidth = 2
			c.MaxPaths = 5
			c.FetchWidth = 4
			c.RenameWidth = 4
			c.CommitWidth = 4
			c.FrontEndStages = 2
			c.NumIntType0 = 1
			c.NumIntType1 = 1
			c.NumFPAdd = 1
			c.NumFPMul = 1
			c.NumMemPorts = 1
			c.MaxInsts = 3_000
			return c
		}},
	}
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < trials; trial++ {
		prog := progfuzz.Generate(rng, 40+rng.Intn(80))
		if err := prog.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		for _, c := range configs {
			m, err := New(prog, c.cfg())
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, c.name, err)
			}
			if err := m.Run(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, c.name, err)
			}
			if err := m.VerifyArchState(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, c.name, err)
			}
		}
	}
}
