package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// randomProgram generates a structurally valid random program: arbitrary
// ALU/memory instructions, branches and jumps with random targets. The
// control flow may loop arbitrarily (including infinitely); the simulation
// is cut by MaxInsts, and the architectural check compares the committed
// prefix against the interpreter at the same cut.
func randomProgram(rng *rand.Rand, n int) *isa.Program {
	code := make([]isa.Inst, 0, n+1)
	reg := func() isa.Reg { return isa.Reg(rng.Intn(isa.NumRegs)) }
	for i := 0; i < n; i++ {
		var in isa.Inst
		switch rng.Intn(12) {
		case 0:
			in = isa.Inst{Op: isa.Li, Dst: reg(), Imm: int64(rng.Intn(2048) - 1024)}
		case 1:
			in = isa.Inst{Op: isa.Load, Dst: reg(), Src1: reg(), Imm: int64(rng.Intn(64))}
		case 2:
			in = isa.Inst{Op: isa.Store, Src1: reg(), Src2: reg(), Imm: int64(rng.Intn(64))}
		case 3, 4:
			ops := []isa.Op{isa.Beq, isa.Bne, isa.Blt, isa.Bge}
			target := rng.Intn(n)
			if target == i+1 { // fall-through target is invalid
				target = i
			}
			in = isa.Inst{Op: ops[rng.Intn(len(ops))], Src1: reg(), Src2: reg(), Target: int32(target)}
		case 5:
			in = isa.Inst{Op: isa.Jmp, Target: int32(rng.Intn(n))}
		case 9:
			in = isa.Inst{Op: isa.Jri, Src1: reg()}
		case 10:
			in = isa.Inst{Op: isa.Call, Dst: reg(), Target: int32(rng.Intn(n))}
		case 11:
			in = isa.Inst{Op: isa.Ret, Src1: reg()}
		case 6:
			in = isa.Inst{Op: isa.Mul, Dst: reg(), Src1: reg(), Src2: reg()}
		case 7:
			op := []isa.Op{isa.FAdd, isa.FMul}[rng.Intn(2)]
			in = isa.Inst{Op: op, Dst: reg(), Src1: reg(), Src2: reg()}
		case 8:
			in = isa.Inst{Op: isa.Nop}
		default:
			ops := []isa.Op{isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr, isa.Slt,
				isa.Addi, isa.Andi, isa.Ori, isa.Xori, isa.Slti, isa.Shli, isa.Shri}
			op := ops[rng.Intn(len(ops))]
			in = isa.Inst{Op: op, Dst: reg(), Src1: reg(), Src2: reg(), Imm: int64(rng.Intn(256))}
		}
		code = append(code, in)
	}
	code = append(code, isa.Inst{Op: isa.Halt})
	data := make([]int64, 128)
	for i := range data {
		data[i] = rng.Int63n(1 << 20)
	}
	return &isa.Program{Name: "random", Code: code, DataInit: data, MemWords: 256}
}

// TestRandomProgramsArchEquivalence is the simulator's fuzz oracle: across
// many random programs with chaotic control flow, every machine model must
// commit exactly the interpreter's architectural state. This exercises
// divergence, nested misprediction recovery, CTX reuse, store forwarding
// and wrong-path garbage execution far beyond the structured workloads.
func TestRandomProgramsArchEquivalence(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	configs := []struct {
		name string
		cfg  func() Config
	}{
		{"monopath", func() Config {
			c := DefaultConfig()
			c.Mode = Monopath
			c.Confidence.Kind = ConfAlwaysHigh
			c.MaxInsts = 5_000
			return c
		}},
		{"polypath-jrs", func() Config {
			c := DefaultConfig()
			c.MaxInsts = 5_000
			return c
		}},
		{"polypath-eager", func() Config {
			c := DefaultConfig()
			c.Confidence.Kind = ConfAlwaysLow
			c.MaxInsts = 5_000
			return c
		}},
		{"dualpath", func() Config {
			c := DefaultConfig()
			c.MaxDivergences = 1
			c.MaxInsts = 5_000
			return c
		}},
		{"tiny-machine", func() Config {
			c := DefaultConfig()
			c.Confidence.Kind = ConfAlwaysLow
			c.WindowSize = 16
			c.PhysRegs = 52
			c.Checkpoints = 4
			c.CtxHistoryWidth = 2
			c.MaxPaths = 5
			c.FetchWidth = 4
			c.RenameWidth = 4
			c.CommitWidth = 4
			c.FrontEndStages = 2
			c.NumIntType0 = 1
			c.NumIntType1 = 1
			c.NumFPAdd = 1
			c.NumFPMul = 1
			c.NumMemPorts = 1
			c.MaxInsts = 3_000
			return c
		}},
	}
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < trials; trial++ {
		prog := randomProgram(rng, 40+rng.Intn(80))
		if err := prog.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		for _, c := range configs {
			m, err := New(prog, c.cfg())
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, c.name, err)
			}
			if err := m.Run(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, c.name, err)
			}
			if err := m.VerifyArchState(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, c.name, err)
			}
		}
	}
}
