package pipeline

import "fmt"

// ConfigError is the typed error returned for every invalid machine
// configuration: Field names the offending parameter (or parameter group)
// and Reason describes the constraint it violates. All configuration
// validation goes through this type — an invalid user-supplied config is
// never a panic.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("pipeline: invalid config: %s: %s", e.Field, e.Reason)
}

func cfgErr(field, format string, args ...any) *ConfigError {
	return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Option mutates a Config under construction. Options compose left to
// right; validation happens once, after all options are applied.
type Option func(*Config)

// NewConfig builds a validated configuration starting from the paper's
// baseline (DefaultConfig) and applying the given options. It returns a
// *ConfigError if the resulting machine is invalid.
func NewConfig(opts ...Option) (Config, error) {
	return NewConfigFrom(DefaultConfig(), opts...)
}

// NewConfigFrom builds a validated configuration starting from an explicit
// base (e.g. one of the named model configurations in internal/core).
func NewConfigFrom(base Config, opts ...Option) (Config, error) {
	for _, opt := range opts {
		opt(&base)
	}
	if err := base.Validate(); err != nil {
		return Config{}, err
	}
	return base, nil
}

// Validate checks the configuration without mutating it, returning a
// *ConfigError describing the first violated constraint. Derived defaults
// (PhysRegs, Checkpoints, BTB/RAS/MRC sizes) are filled before checking,
// exactly as the simulator will fill them.
func (c *Config) Validate() error {
	_, err := c.normalize()
	return err
}

// Normalized returns the canonical form of the configuration: derived
// defaults filled in and all constraints checked. Two configurations that
// normalize identically describe the same machine; the canonical JSON
// encoding and the memoization hash are both computed over this form.
func (c Config) Normalized() (Config, error) {
	return c.normalize()
}

// WithMode sets the execution model (monopath or polypath).
func WithMode(m Mode) Option { return func(c *Config) { c.Mode = m } }

// WithWindowSize sets the instruction window / reorder buffer size and
// re-derives the physical register file and checkpoint pool to match.
func WithWindowSize(n int) Option {
	return func(c *Config) {
		c.WindowSize = n
		c.PhysRegs = 0
		c.Checkpoints = 0
	}
}

// WithPipelineDepth sets the total pipeline depth as the paper counts it
// (front-end stages + window/issue + execute + commit).
func WithPipelineDepth(depth int) Option {
	return func(c *Config) { c.FrontEndStages = depth - 3 }
}

// WithUniformUnits sets every functional-unit count (both integer types,
// both FP types, and memory ports) to n, the paper's Figure 11 scaling.
func WithUniformUnits(n int) Option {
	return func(c *Config) {
		c.NumIntType0, c.NumIntType1 = n, n
		c.NumFPAdd, c.NumFPMul, c.NumMemPorts = n, n, n
	}
}

// WithHistoryBits sets the predictor's hist_bits parameter and keeps the
// confidence-estimator index in lockstep, the pairing the paper evaluates.
// (It applies to the classic global-history kinds; predictors without a
// hist_bits parameter reject it at validation.)
func WithHistoryBits(bits int) Option {
	return func(c *Config) {
		c.Predictor = c.Predictor.WithParam("hist_bits", bits)
		c.Confidence.IndexBits = bits
	}
}

// WithPredictorParam sets one named predictor parameter (copy-on-write:
// the underlying map is never shared between configs).
func WithPredictorParam(name string, v int) Option {
	return func(c *Config) {
		c.Predictor = c.Predictor.WithParam(name, v)
	}
}

// WithPredictor replaces the direction-predictor spec.
func WithPredictor(spec PredictorSpec) Option {
	return func(c *Config) { c.Predictor = spec }
}

// WithConfidence replaces the confidence-estimator spec.
func WithConfidence(spec ConfidenceSpec) Option {
	return func(c *Config) { c.Confidence = spec }
}

// WithConfidenceKind switches only the estimator kind, keeping the sizing
// of the current spec.
func WithConfidenceKind(k ConfidenceKind) Option {
	return func(c *Config) { c.Confidence.Kind = k }
}

// WithMaxDivergences caps simultaneous divergences (0 = unlimited,
// 1 = dual-path).
func WithMaxDivergences(n int) Option {
	return func(c *Config) { c.MaxDivergences = n }
}

// WithFetchPolicy selects the multi-path fetch arbitration scheme.
func WithFetchPolicy(p FetchPolicy) Option {
	return func(c *Config) { c.FetchPolicy = p }
}

// WithMaxInsts bounds committed instructions (0 = run to Halt).
func WithMaxInsts(n uint64) Option {
	return func(c *Config) { c.MaxInsts = n }
}
