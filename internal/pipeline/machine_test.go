package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// sumProgram computes the sum of data[0..n) with a data-dependent diamond
// per element, then halts. It exercises loads, stores, branches on loaded
// data (hard to predict), and loop control.
func sumProgram(n int) *isa.Program {
	b := workload.NewBuilder("sum")
	data := make([]int64, n)
	for i := range data {
		data[i] = int64((i*7)%13 - 6)
	}
	base := b.Data(data)
	b.Li(1, 0)        // i
	b.Li(2, int64(n)) // n
	b.Li(3, 0)        // sum
	b.Li(4, 0)        // count of negatives
	b.Label("top")
	b.Load(5, 1, base) // v = data[i]
	b.Branch(isa.Bge, 5, 0, "nonneg")
	b.OpI(isa.Addi, 4, 4, 1) // negative: count++
	b.Op3(isa.Sub, 3, 3, 5)  // sum -= v (abs accumulate)
	b.Jump("next")
	b.Label("nonneg")
	b.Op3(isa.Add, 3, 3, 5) // sum += v
	b.Label("next")
	b.OpI(isa.Addi, 1, 1, 1)
	b.Branch(isa.Blt, 1, 2, "top")
	b.Store(3, 0, base+int64(n)) // mem[base+n] = sum
	b.Store(4, 0, base+int64(n)+1)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func runProg(t *testing.T, p *isa.Program, cfg Config) *Machine {
	t.Helper()
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonopathArchEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Monopath
	cfg.Confidence.Kind = ConfAlwaysHigh
	m := runProg(t, sumProgram(500), cfg)
	if m.Stats.Committed == 0 || m.Stats.Cycles == 0 {
		t.Fatal("no work simulated")
	}
	if m.Stats.CondBranches == 0 {
		t.Fatal("no branches committed")
	}
}

func TestPolyPathArchEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	m := runProg(t, sumProgram(500), cfg)
	if m.Stats.Divergences == 0 {
		t.Fatal("PolyPath on a data-dependent diamond should diverge")
	}
}

func TestPolyPathAlwaysLowArchEquivalence(t *testing.T) {
	// Maximal eagerness stresses context management hardest.
	cfg := DefaultConfig()
	cfg.Confidence.Kind = ConfAlwaysLow
	m := runProg(t, sumProgram(500), cfg)
	if m.Stats.Divergences == 0 {
		t.Fatal("always-low confidence must diverge")
	}
}

func TestDualPathArchEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDivergences = 1
	m := runProg(t, sumProgram(500), cfg)
	if m.Stats.PathHist.FracAtMost(3) < 0.999 {
		t.Error("dual-path must never exceed 3 live paths")
	}
}

func TestOraclePredictorNoMispredicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Monopath
	cfg.Predictor.Kind = PredOracle
	cfg.Confidence.Kind = ConfAlwaysHigh
	m := runProg(t, sumProgram(500), cfg)
	if m.Stats.Mispredicts != 0 {
		t.Errorf("oracle predictor mispredicted %d times", m.Stats.Mispredicts)
	}
	if m.Stats.MonopathRecoveries != 0 {
		t.Errorf("oracle run performed %d recoveries", m.Stats.MonopathRecoveries)
	}
}

func TestOracleConfidenceDivergesOnlyOnMispredicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Confidence.Kind = ConfOracle
	m := runProg(t, sumProgram(500), cfg)
	// With a perfect estimator, every committed low-confidence branch is a
	// misprediction: PVN = 1.
	if m.Stats.LowConf > 0 && m.Stats.PVN() < 0.999 {
		t.Errorf("oracle confidence PVN = %.3f, want 1.0", m.Stats.PVN())
	}
	if m.Stats.HighConfMispred != 0 {
		t.Errorf("oracle confidence missed %d mispredictions", m.Stats.HighConfMispred)
	}
}

func TestWorkloadSuiteArchEquivalence(t *testing.T) {
	// Every suite benchmark, both modes, must commit the exact functional
	// execution. This is the repo's core execution-driven correctness
	// claim; it exercises divergence, subtree kills, recovery, store
	// forwarding and context-tag reuse under real pressure.
	for _, bm := range workload.Suite(60_000) {
		bm := bm
		t.Run(bm.Spec.Name, func(t *testing.T) {
			t.Parallel()
			p, err := workload.Generate(bm.Spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []struct {
				name string
				cfg  func() Config
			}{
				{"monopath", func() Config {
					c := DefaultConfig()
					c.Mode = Monopath
					c.Confidence.Kind = ConfAlwaysHigh
					return c
				}},
				{"polypath", DefaultConfig},
				{"dualpath", func() Config {
					c := DefaultConfig()
					c.MaxDivergences = 1
					return c
				}},
			} {
				m := runProg(t, p, mode.cfg())
				if m.Stats.IPC() <= 0 {
					t.Errorf("%s: non-positive IPC", mode.name)
				}
			}
		})
	}
}

func TestMaxInstsCutsExactly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInsts = 1000
	m := runProg(t, sumProgram(500), cfg)
	if m.Stats.Committed != 1000 {
		t.Errorf("committed %d, want exactly 1000", m.Stats.Committed)
	}
}

func TestConfigValidation(t *testing.T) {
	p := sumProgram(10)
	bad := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.FrontEndStages = 0 },
		func(c *Config) { c.WindowSize = 2 },
		func(c *Config) { c.NumIntType1 = 0 },
		func(c *Config) { c.PhysRegs = 40 },
		func(c *Config) { c.CtxHistoryWidth = 0 },
		func(c *Config) { c.MaxPaths = 1 },
		func(c *Config) { c.MaxDivergences = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(p, cfg); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
}

func TestNonHaltingProgramRejected(t *testing.T) {
	p := &isa.Program{
		Name: "spin", MemWords: 2,
		Code: []isa.Inst{{Op: isa.Jmp, Target: 0}, {Op: isa.Halt}},
	}
	if _, err := New(p, DefaultConfig()); err == nil {
		t.Error("expected error for non-halting program without MaxInsts")
	}
	cfg := DefaultConfig()
	cfg.MaxInsts = 100
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Committed != 100 {
		t.Errorf("committed %d, want 100", m.Stats.Committed)
	}
}

func TestPipelineDepthAccessor(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.PipelineDepth() != 8 {
		t.Errorf("baseline depth = %d, want 8 (paper)", cfg.PipelineDepth())
	}
}
