package pipeline

import (
	"fmt"
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/ctxtag"
	"repro/internal/isa"
)

// issue selects ready instructions through the SoA scheduler (soa.go):
// the STA pass computes store addresses whose base register became
// ready, then the select pass walks waiting bits oldest-first —
// ascending winBuf slots are ascending seq — testing operand readiness
// against the dense SoA arrays and issuing to free functional units (one
// issue per unit per cycle; all units are pipelined). Loads obey the
// memory-ordering rule: every older store on the load's path ancestry
// must have computed its address, and a matching store forwards its data
// through the CTX-filtered store buffer.
//
// The candidate set and its order are exactly the pre-SoA oldest-first
// window scan's (operand readiness is tested live, never cached across
// cycles), so simulated results are bit-identical; only the walk is
// cheaper — executing and completed entries cost nothing, and a waiting
// entry's wakeup check touches dense arrays instead of its window entry
// struct. Exiting once every unit is consumed is safe because nothing
// after that point had side effects in the scan form: store accumulation
// lives in the persistent store bitmap and address generation in the STA
// pass.
func (m *Machine) issue() {
	lo := m.winOff
	hi := lo + len(m.window)
	if lo == hi {
		return
	}
	s := &m.soa
	loW, hiW := lo>>6, (hi-1)>>6

	if soaSelectAudit {
		m.soaVerifySelectOrder()
	}

	// Store address generation is decoupled from the data operand
	// (STA/STD split): once the base register is ready the effective
	// address is known for disambiguation, even while the store waits
	// for its data. Bits outside [lo, hi) are never set, so no boundary
	// masking is needed.
	for w := loW; w <= hiW; w++ {
		sta := s.staW[w]
		for t := sta; t != 0; t &= t - 1 {
			b := bits.TrailingZeros64(t)
			pos := w<<6 | b
			if s.flags[pos]&fReadsSrc1 != 0 && !m.physReady.Test(s.src1[pos]) {
				continue
			}
			e := m.winBuf[pos]
			e.addr = isa.EffAddr(m.physVal[e.src1Phys], e.inst.Imm, m.prog.MemWords)
			e.addrReady = true
			sta &^= uint64(1) << uint(b)
		}
		s.staW[w] = sta
	}

	// Select: walk waiting bits oldest-first, wake against the physical
	// register readiness bitmap, issue against functional-unit
	// availability.
	availInt0 := m.cfg.NumIntType0
	availInt1 := m.cfg.NumIntType1
	availFPAdd := m.cfg.NumFPAdd
	availFPMul := m.cfg.NumFPMul
	availMem := m.cfg.NumMemPorts
	for w := loW; w <= hiW; w++ {
		for cand := s.waitW[w]; cand != 0; cand &= cand - 1 {
			b := bits.TrailingZeros64(cand)
			pos := w<<6 | b

			fl := s.flags[pos]
			if fl&fReadsSrc1 != 0 && !m.physReady.Test(s.src1[pos]) {
				continue
			}
			if fl&fReadsSrc2 != 0 && !m.physReady.Test(s.src2[pos]) {
				continue
			}

			var unit isa.FUClass
			ok := false
			switch isa.FUClass(s.class[pos]) {
			case isa.ClassIntEither:
				if availInt0 > 0 {
					unit, ok = isa.ClassIntType0, true
				} else if availInt1 > 0 {
					unit, ok = isa.ClassIntType1, true
				}
			case isa.ClassIntType0:
				ok = availInt0 > 0
				unit = isa.ClassIntType0
			case isa.ClassIntType1:
				ok = availInt1 > 0
				unit = isa.ClassIntType1
			case isa.ClassMem:
				ok = availMem > 0
				unit = isa.ClassMem
			case isa.ClassFPAdd:
				ok = availFPAdd > 0
				unit = isa.ClassFPAdd
			case isa.ClassFPMul:
				ok = availFPMul > 0
				unit = isa.ClassFPMul
			}
			if !ok {
				continue
			}

			e := m.winBuf[pos]
			lat := int(e.lat)
			if e.isLoad {
				issued, forwarded := m.issueLoad(e, pos)
				if !issued {
					continue
				}
				if forwarded {
					lat = 1 // 1-cycle store-buffer forward (Sec. 4.2)
				} else if m.dcache != nil {
					m.Stats.DCacheAccesses++
					if !m.dcache.Access(e.addr) {
						m.Stats.DCacheMisses++
						lat += m.cfg.DCacheMissLatency
					}
				}
			} else {
				m.execute(e)
			}

			e.state = stateExecuting
			m.soaIssued(pos)
			m.schedule(e, lat)
			if m.tracer != nil {
				m.emit(TraceIssue, e.seq, e.pc, e.path, e.tag, unit.String())
			}
			m.Stats.FUIssued[unit]++
			switch unit {
			case isa.ClassIntType0:
				availInt0--
			case isa.ClassIntType1:
				availInt1--
			case isa.ClassFPAdd:
				availFPAdd--
			case isa.ClassFPMul:
				availFPMul--
			case isa.ClassMem:
				availMem--
			}
			if availInt0|availInt1|availFPAdd|availFPMul|availMem == 0 {
				return // every unit consumed; nothing left to select
			}
		}
	}
}

// execute computes e's result with real operand values (the execution-
// driven contract: wrong paths compute wrong values).
func (m *Machine) execute(e *entry) {
	var v1, v2 int64
	if e.readsSrc1 {
		v1 = m.physVal[e.src1Phys]
	}
	if e.readsSrc2 {
		v2 = m.physVal[e.src2Phys]
	}
	op := e.inst.Op
	switch {
	case op.IsCondBranch():
		e.outcome = isa.EvalBranch(op, v1, v2)
	case op == isa.Jmp:
		// Direct jump: nothing to compute.
	case op == isa.Jri || op == isa.Ret:
		e.actualTarget = isa.IndirectTarget(v1, len(m.prog.Code))
	case op == isa.Call:
		e.result = int64(e.pc + 1) // the link value
	case op == isa.Store:
		e.addr = isa.EffAddr(v1, e.inst.Imm, m.prog.MemWords)
		e.addrReady = true
		e.storeData = v2
	default:
		e.result = isa.EvalALU(op, v1, v2, e.inst.Imm)
	}
}

// issueLoad applies the memory ordering rules and, when the load can
// proceed, computes its value from the store buffer or architectural
// memory. The older-store set is the store bitmap cut below the load's
// own slot: ascending winBuf positions are ascending seq, so masking off
// pos and above in the load's word yields exactly the in-flight stores
// older than the load, walked oldest-first.
func (m *Machine) issueLoad(e *entry, pos int) (issued, forwarded bool) {
	v1 := m.physVal[e.src1Phys]
	addr := isa.EffAddr(v1, e.inst.Imm, m.prog.MemWords)

	// Perfect-disambiguation approximation: older ancestor stores must
	// have computed their addresses before a load may issue; the youngest
	// matching completed store forwards.
	var match *entry
	soa := &m.soa
	for w, hiW := m.winOff>>6, pos>>6; w <= hiW; w++ {
		sw := soa.storeW[w]
		if w == hiW {
			sw &= (uint64(1) << uint(pos&63)) - 1
		}
		for ; sw != 0; sw &= sw - 1 {
			s := m.winBuf[w<<6|bits.TrailingZeros64(sw)]
			if !s.tag.IsAncestorOrSelf(e.tag) {
				continue // unrelated path: no ordering constraint
			}
			if !s.addrReady {
				return false, false
			}
			if s.addr == addr {
				match = s // stores walked oldest-first: keep the youngest
			}
		}
	}
	if match != nil {
		if match.state != stateDone {
			return false, false // data not yet available to forward
		}
		e.result = match.storeData
		forwarded = true
		m.Stats.StoreForwards++
	} else {
		e.result = m.mem[addr]
	}
	e.addr = addr
	e.addrReady = true
	m.Stats.LoadsExecuted++
	return true, forwarded
}

// schedule queues e's writeback lat cycles from now.
func (m *Machine) schedule(e *entry, lat int) {
	if lat >= len(m.ring) {
		m.machineCheckf("completion-ring", e.pc, "latency %d exceeds completion ring size %d", lat, len(m.ring))
	}
	slot := (m.cycle + uint64(lat)) % uint64(len(m.ring))
	m.ring[slot] = append(m.ring[slot], e)
}

// writeback completes instructions whose latency expires this cycle:
// results are published to the physical register file (waking dependents)
// and branches resolve on the branch resolution bus.
func (m *Machine) writeback() {
	slot := m.cycle % uint64(len(m.ring))
	completing := m.ring[slot]
	m.ring[slot] = nil
	buses := m.cfg.ResolutionBuses
	for _, e := range completing {
		if e.killed {
			// Dropped from the ring: the last reference to a squashed
			// entry, so it can be recycled now.
			m.freeEntry(e)
			continue
		}
		if (e.isBranch || e.isIndirect) && m.cfg.ResolutionBuses > 0 && buses == 0 {
			// All resolution buses are occupied this cycle; the branch
			// retries next cycle (Sec. 3.2.3's bus-contention case).
			next := (m.cycle + 1) % uint64(len(m.ring))
			m.ring[next] = append(m.ring[next], e)
			continue
		}
		e.state = stateDone
		if m.tracer != nil {
			m.emit(TraceWriteback, e.seq, e.pc, e.path, e.tag, "")
		}
		if e.hasDest {
			m.physVal[e.dstPhys] = e.result
			m.physReady.Set(e.dstPhys)
		}
		if e.isBranch {
			m.resolve(e)
			buses--
		}
		if e.isIndirect {
			m.resolveIndirect(e)
			buses--
		}
	}
	// Keep the drained slot's capacity for future completion events.
	m.ring[slot] = completing[:0]
}

// resolve handles a conditional branch's resolution (Sec. 3.2.3): for a
// divergent branch the wrong successor subtree is killed; for a coherent
// branch a misprediction triggers conventional checkpoint recovery.
func (m *Machine) resolve(e *entry) {
	e.resolved = true
	if m.tracer != nil {
		note := "correct"
		if !e.diverged && e.outcome != e.predTaken {
			note = "mispredicted"
		} else if e.diverged {
			note = fmt.Sprintf("divergence resolved (taken=%v)", e.outcome)
		}
		if m.tracer != nil {
			m.emit(TraceResolve, e.seq, e.pc, e.path, e.tag, note)
		}
	}
	e.path.pendingBranches--
	if e.diverged {
		m.divergences--
		m.killWrongSubtree(e.histPos, e.outcome)
		m.releaseCkpt(e)
	} else if e.outcome == e.predTaken {
		m.releaseCkpt(e)
	} else {
		m.recoverMispredict(e)
	}
	m.maybeReclaimZombie(e.path)
}

func (m *Machine) releaseCkpt(e *entry) {
	if e.hasCkpt {
		m.ckpts.Release(e.ckptID)
		e.hasCkpt = false
	}
}

// killWrongSubtree kills every instruction and path on the wrong side of a
// resolved divergence: exactly the entries whose CTX tag has the branch's
// history position valid with the opposite direction.
func (m *Machine) killWrongSubtree(pos int, outcome bool) {
	m.Stats.WrongSubtreeKills++
	m.killMatching(0, func(t ctxtag.Tag) bool { return t.OnWrongPath(pos, outcome) }, nil)
}

// recoverMispredict is conventional monopath recovery: kill all younger
// instructions on the branch's path and its descendants, restore the
// checkpointed register map and global history, and redirect fetch.
func (m *Machine) recoverMispredict(e *entry) {
	m.Stats.MonopathRecoveries++
	if m.tracer != nil {
		m.emit(TraceRecover, e.seq, e.pc, e.path, e.tag, "checkpoint restore + fetch redirect")
	}
	p := e.path
	// Revive the path before killing its younger instructions: the kill
	// sweep may squash a younger divergent branch on p, and the zombie
	// reclaimer must not free p while this recovery still needs its map.
	p.fetching = true
	p.halted = false
	p.divergedParent = false

	bt := e.tag
	m.killMatching(e.seq, func(t ctxtag.Tag) bool { return bt.IsAncestorOrSelf(t) }, p)

	ghr := m.ckpts.Restore(e.ckptID, p.regmap)
	if m.hasCallRet {
		p.ras.CopyFrom(m.ckptRAS[e.ckptID])
	}
	m.ckpts.Release(e.ckptID)
	e.hasCkpt = false

	p.ghr = bpred.PushHistory(ghr, e.outcome)
	if e.outcome {
		p.fetchPC = int(e.inst.Target)
	} else {
		p.fetchPC = e.pc + 1
	}
	p.onTrace = e.onTrace
	p.traceIdx = e.traceIdx + 1
	// MRC comparator: service the recovery from the cache when possible,
	// hiding the front-end refill. The injected instructions are on the
	// corrected path, so the trace cursor handling above stays valid.
	m.injectMRC(p)
}

// killMatching squashes window entries and front-end instructions with
// seq > minSeq whose tag satisfies pred, and releases matching paths
// (except protect). This is the hardware's parallel tag-match kill,
// expressed sequentially.
func (m *Machine) killMatching(minSeq uint64, pred func(ctxtag.Tag) bool, protect *path) {
	kept := m.window[:0]
	firstKilled := -1
	for i, e := range m.window {
		if e.seq > minSeq && pred(e.tag) {
			if firstKilled < 0 {
				firstKilled = i
			}
			m.killEntry(e)
		} else {
			kept = append(kept, e)
		}
	}
	// Clear the tail so killed entries do not linger in the backing array.
	oldLen := len(m.window)
	for i := len(kept); i < oldLen; i++ {
		m.window[i] = nil
	}
	m.window = kept
	if firstKilled >= 0 {
		// Entries below the first kill kept their winBuf slots; only the
		// shifted survivors above it need their scheduler state re-derived
		// (kills target young subtrees, so this is usually a short suffix).
		m.soaRebuildFrom(firstKilled, oldLen)
	}

	for i, latch := range m.frontEnd {
		if len(latch) == 0 {
			continue
		}
		keptF := latch[:0]
		for _, f := range latch {
			if f.seq > minSeq && pred(f.tag) {
				m.killFinst(f)
			} else {
				keptF = append(keptF, f)
			}
		}
		for j := len(keptF); j < len(latch); j++ {
			latch[j] = nil
		}
		if len(keptF) == 0 {
			m.frontEnd[i] = nil
			m.freeLatch(keptF)
		} else {
			m.frontEnd[i] = keptF
		}
	}

	for _, p := range m.paths {
		if p != nil && p != protect && pred(p.tag) {
			m.releasePath(p)
		}
	}
}

// killEntry squashes a window entry, returning its resources.
func (m *Machine) killEntry(e *entry) {
	e.killed = true
	m.Stats.Killed++
	if m.tracer != nil {
		m.emit(TraceKill, e.seq, e.pc, e.path, e.tag, "")
	}
	if e.hasDest {
		m.freeList.Free(e.dstPhys)
	}
	m.releaseCkpt(e)
	if (e.isBranch || e.isIndirect) && !e.resolved {
		e.path.pendingBranches--
		defer m.maybeReclaimZombie(e.path)
	}
	if e.diverged {
		if !e.resolved {
			m.divergences--
		}
		m.ctxAlloc.Free(e.histPos)
	}
	if e.state != stateExecuting {
		// Not scheduled in the completion ring (never issued, or already
		// written back), so this was the last reference: recycle. Entries
		// mid-flight in the ring are recycled by writeback when their
		// completion event drains.
		m.freeEntry(e)
	}
}

// killFinst squashes a front-end instruction.
func (m *Machine) killFinst(f *finst) {
	m.Stats.Killed++
	if m.tracer != nil {
		m.emit(TraceKill, f.seq, f.pc, f.path, f.tag, "")
	}
	if f.isBranch || f.isIndirect {
		f.path.pendingBranches--
		defer m.maybeReclaimZombie(f.path)
	}
	if f.diverged {
		m.divergences--
		m.ctxAlloc.Free(f.histPos)
	}
	m.freeFinst(f)
}

// broadcastClear is the branch commit bus (Sec. 3.2.2/3.2.3): when a
// divergent branch commits, its history position is invalidated in every
// in-flight CTX tag so the position can be reused.
func (m *Machine) broadcastClear(pos int) {
	for _, e := range m.window {
		e.tag = e.tag.ClearPosition(pos)
	}
	for _, latch := range m.frontEnd {
		for _, f := range latch {
			f.tag = f.tag.ClearPosition(pos)
		}
	}
	for _, p := range m.paths {
		if p != nil {
			p.tag = p.tag.ClearPosition(pos)
		}
	}
}

// commit retires up to CommitWidth completed instructions from the window
// head in program order (Sec. 3.1's in-order back end).
func (m *Machine) commit() {
	committed := 0
	for budget := m.cfg.CommitWidth; budget > 0 && len(m.window) > 0; budget-- {
		e := m.window[0]
		if e.state != stateDone {
			break
		}
		m.window[0] = nil
		m.window = m.window[1:]
		m.soaClearPos(m.winOff)
		m.winOff++
		m.commitEntry(e)
		m.freeEntry(e)
		committed++
		if m.halted {
			return
		}
	}
	m.Stats.CommitHist.Add(committed)
	if committed == 0 {
		// Cycle accounting: why did nothing retire this cycle?
		if len(m.window) == 0 {
			m.Stats.StallEmptyWindow++
		} else {
			m.Stats.StallExecution++
		}
	}
}

func (m *Machine) commitEntry(e *entry) {
	m.Stats.Committed++
	if m.tracer != nil {
		m.emit(TraceCommit, e.seq, e.pc, e.path, e.tag, "")
	}
	if e.isStore {
		m.mem[e.addr] = e.storeData
		if m.dcache != nil {
			m.Stats.DCacheAccesses++
			if !m.dcache.Access(e.addr) {
				m.Stats.DCacheMisses++
			}
		}
	}
	if e.hasDest {
		m.retireMap.Set(e.inst.Dst, e.dstPhys)
		m.freeList.Free(e.oldPhys)
	}
	if e.isBranch {
		m.commitBranch(e)
	}
	if e.isIndirect {
		m.commitIndirect(e)
	}
	if e.inst.Op == isa.Halt {
		m.halted = true
	}
	if m.cfg.MaxInsts > 0 && m.Stats.Committed >= m.cfg.MaxInsts {
		m.halted = true
	}
}

func (m *Machine) commitBranch(e *entry) {
	if !e.resolved {
		m.machineCheckf("rob-order", e.pc, "committing unresolved branch seq %d", e.seq)
	}
	// Only architecturally-correct branches reach commit, so this is the
	// pollution-free training point for the predictor and the estimator.
	if !m.oracle {
		m.pred.Update(e.pc, e.ghrAtPredict, e.outcome)
	}
	m.archGHR = bpred.PushHistory(m.archGHR, e.outcome)
	correct := e.predTaken == e.outcome
	m.conf.Update(e.pc, e.ghrAtPredict, e.predTaken, correct)

	m.Stats.CondBranches++
	if e.outcome {
		m.Stats.TakenBranches++
	}
	if !correct {
		m.Stats.Mispredicts++
	}
	if e.lowConf {
		m.Stats.LowConf++
		if !correct {
			m.Stats.LowConfMispred++
		}
	} else if !correct {
		m.Stats.HighConfMispred++
	}

	// Trace invariant: a committed branch that tracked the architectural
	// stream must agree with the reference execution.
	if e.onTrace && e.traceIdx < len(m.trace) {
		if r := m.trace[e.traceIdx]; !r.Indirect && r.Taken != e.outcome {
			m.machineCheckf("trace-divergence", e.pc, "committed branch disagrees with reference trace (got taken=%v)", e.outcome)
		}
	}

	if e.diverged {
		// Branch commit bus: invalidate and reclaim the history position.
		m.ctxAlloc.Free(e.histPos)
		m.broadcastClear(e.histPos)
	}
}

// resolveIndirect handles an indirect jump's resolution: a correct BTB
// prediction needs no action; a wrong or missing prediction triggers the
// same checkpoint recovery a mispredicted branch uses, redirected to the
// computed target.
func (m *Machine) resolveIndirect(e *entry) {
	e.resolved = true
	if m.tracer != nil {
		note := "indirect target correct"
		if !e.predTargetOK || e.predTarget != e.actualTarget {
			note = fmt.Sprintf("indirect target mispredicted -> %d", e.actualTarget)
		}
		if m.tracer != nil {
			m.emit(TraceResolve, e.seq, e.pc, e.path, e.tag, note)
		}
	}
	e.path.pendingBranches--
	if e.predTargetOK && e.predTarget == e.actualTarget {
		m.releaseCkpt(e)
	} else {
		m.recoverIndirect(e)
	}
	m.maybeReclaimZombie(e.path)
}

// recoverIndirect redirects the path to the computed indirect target and
// squashes everything fetched down the predicted (wrong) target.
func (m *Machine) recoverIndirect(e *entry) {
	m.Stats.IndirectRecoveries++
	p := e.path
	p.fetching = true
	p.halted = false
	p.divergedParent = false

	bt := e.tag
	m.killMatching(e.seq, func(t ctxtag.Tag) bool { return bt.IsAncestorOrSelf(t) }, p)

	ghr := m.ckpts.Restore(e.ckptID, p.regmap)
	if m.hasCallRet {
		p.ras.CopyFrom(m.ckptRAS[e.ckptID])
	}
	m.ckpts.Release(e.ckptID)
	e.hasCkpt = false

	p.ghr = ghr // indirect jumps do not enter the direction history
	p.fetchPC = e.actualTarget
	p.onTrace = e.onTrace
	p.traceIdx = e.traceIdx + 1
}

// commitIndirect trains the BTB with the architecturally correct target
// and accounts statistics.
func (m *Machine) commitIndirect(e *entry) {
	if !e.resolved {
		m.machineCheckf("rob-order", e.pc, "committing unresolved indirect jump seq %d", e.seq)
	}
	if !e.isRet {
		m.btb.Update(e.pc, e.actualTarget)
	}
	m.Stats.IndirectJumps++
	if !e.predTargetOK || e.predTarget != e.actualTarget {
		m.Stats.IndirectMispredicts++
	}
	if e.onTrace && e.traceIdx < len(m.trace) {
		if r := m.trace[e.traceIdx]; r.Indirect && int(r.Target) != e.actualTarget {
			m.machineCheckf("trace-divergence", e.pc, "committed indirect jump disagrees with reference trace (got target %d, want %d)", e.actualTarget, int(r.Target))
		}
	}
}
