package pipeline

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/isa"
)

// TraceKind classifies pipeline trace events.
type TraceKind uint8

// Trace event kinds, in rough pipeline order.
const (
	TraceFetch TraceKind = iota
	TraceRename
	TraceIssue
	TraceWriteback
	TraceCommit
	TraceKill
	TraceDiverge
	TraceResolve
	TraceRecover
)

var traceKindNames = [...]string{
	TraceFetch:     "fetch",
	TraceRename:    "rename",
	TraceIssue:     "issue",
	TraceWriteback: "writeback",
	TraceCommit:    "commit",
	TraceKill:      "kill",
	TraceDiverge:   "diverge",
	TraceResolve:   "resolve",
	TraceRecover:   "recover",
}

// String returns the event kind name.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return "event(?)"
}

// TraceEvent is one pipeline event, emitted when a Tracer is attached.
type TraceEvent struct {
	Cycle uint64
	Kind  TraceKind
	Seq   uint64 // instruction sequence number (0 for path-level events)
	PC    int
	Path  int    // CTX-table slot of the owning path (-1 if unknown)
	Tag   string // CTX tag in T/N/X notation
	Note  string // disassembly or event-specific detail
}

// Tracer receives pipeline events. Implementations must be fast; the
// simulator calls them inline.
type Tracer interface {
	Event(TraceEvent)
}

// SetTracer attaches a tracer (nil detaches). Tracing is off by default
// and has no overhead beyond a nil check when disabled.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

func (m *Machine) emit(kind TraceKind, seq uint64, pc int, p *path, tag fmt.Stringer, note string) {
	if m.tracer == nil {
		return
	}
	ts := ""
	if tag != nil {
		ts = tag.String()
	}
	pathID := -1
	if p != nil {
		pathID = p.id
	}
	m.tracer.Event(TraceEvent{Cycle: m.cycle, Kind: kind, Seq: seq, PC: pc, Path: pathID, Tag: ts, Note: note})
}

// PipeTrace collects events and renders per-instruction pipeline timelines
// (fetch/rename/issue/writeback/commit cycles), in the style of textual
// pipeline viewers. It caps collection to avoid unbounded memory.
type PipeTrace struct {
	maxInsts uint64
	rows     map[uint64]*pipeRow
	events   []TraceEvent
	firstSeq uint64
}

type pipeRow struct {
	seq                                     uint64
	pc                                      int
	tag                                     string
	note                                    string
	fetch, rename, issue, writeback, commit uint64
	killed                                  uint64
	hasKill                                 bool
}

// NewPipeTrace collects timelines for the first maxInsts fetched
// instructions.
func NewPipeTrace(maxInsts uint64) *PipeTrace {
	return &PipeTrace{maxInsts: maxInsts, rows: make(map[uint64]*pipeRow)}
}

// Event implements Tracer.
func (pt *PipeTrace) Event(e TraceEvent) {
	if e.Seq == 0 {
		pt.events = append(pt.events, e)
		return
	}
	if pt.firstSeq == 0 {
		pt.firstSeq = e.Seq
	}
	if e.Seq-pt.firstSeq >= pt.maxInsts {
		return
	}
	r := pt.rows[e.Seq]
	if r == nil {
		r = &pipeRow{seq: e.Seq}
		pt.rows[e.Seq] = r
	}
	r.pc, r.tag = e.PC, e.Tag
	switch e.Kind {
	case TraceFetch:
		r.fetch = e.Cycle
		r.note = e.Note
	case TraceRename:
		r.rename = e.Cycle
	case TraceIssue:
		r.issue = e.Cycle
	case TraceWriteback:
		r.writeback = e.Cycle
	case TraceCommit:
		r.commit = e.Cycle
	case TraceKill:
		r.killed = e.Cycle
		r.hasKill = true
	}
}

// Render writes the collected timelines, one instruction per line, with
// the cycle of each stage and the outcome (commit or kill).
func (pt *PipeTrace) Render(w io.Writer) error {
	seqs := make([]uint64, 0, len(pt.rows))
	for s := range pt.rows {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	if _, err := fmt.Fprintf(w, "%6s %6s %-8s %8s %8s %8s %8s %8s  %s\n",
		"seq", "pc", "ctx", "fetch", "rename", "issue", "wback", "end", "instruction"); err != nil {
		return err
	}
	cyc := func(c uint64) string {
		if c == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", c)
	}
	for _, s := range seqs {
		r := pt.rows[s]
		end := "-"
		if r.hasKill {
			end = fmt.Sprintf("K%d", r.killed)
		} else if r.commit != 0 {
			end = fmt.Sprintf("C%d", r.commit)
		}
		if _, err := fmt.Fprintf(w, "%6d %6d %-8s %8s %8s %8s %8s %8s  %s\n",
			r.seq, r.pc, r.tag, cyc(r.fetch), cyc(r.rename), cyc(r.issue), cyc(r.writeback), end, r.note); err != nil {
			return err
		}
	}
	for _, e := range pt.events {
		if _, err := fmt.Fprintf(w, "@%d %s %s\n", e.Cycle, e.Kind, e.Note); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns counts of collected rows and control events.
func (pt *PipeTrace) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipetrace: %d instructions, %d control events", len(pt.rows), len(pt.events))
	return b.String()
}

// disasmNote renders a fetched instruction for trace notes.
func disasmNote(in isa.Inst) string { return isa.Disasm(in) }
