package pipeline

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/confidence"
	"repro/internal/ctxtag"
	"repro/internal/isa"
	"repro/internal/rename"
	"repro/internal/stats"
)

// entryState tracks a window entry through its lifetime.
type entryState uint8

const (
	stateWaiting entryState = iota
	stateExecuting
	stateDone
)

// entry is one instruction window (reorder buffer) slot. Each entry also
// carries the small CTX state machine of Fig. 6 via its tag, which the
// resolution and commit buses operate on.
type entry struct {
	seq  uint64
	pc   int
	inst isa.Inst
	path *path
	tag  ctxtag.Tag

	// Predecoded issue metadata (copied from the machine's deco table at
	// rename so issue never indexes it).
	class isa.FUClass
	lat   uint8

	state     entryState
	killed    bool
	hasDest   bool
	dstPhys   rename.PhysReg
	oldPhys   rename.PhysReg
	src1Phys  rename.PhysReg
	src2Phys  rename.PhysReg
	readsSrc1 bool
	readsSrc2 bool
	result    int64

	// Memory state.
	isLoad    bool
	isStore   bool
	addrReady bool
	addr      int
	storeData int64
	forwarded bool

	// Branch state.
	isBranch     bool
	isIndirect   bool
	isRet        bool
	predTarget   int
	predTargetOK bool
	actualTarget int
	predTaken    bool
	lowConf      bool
	diverged     bool
	histPos      int
	ghrAtPredict uint64
	ckptID       int
	hasCkpt      bool
	resolved     bool
	outcome      bool
	onTrace      bool
	traceIdx     int
}

// path is one CTX-table entry (Fig. 7): a live execution path with its own
// fetch PC, register map, speculative global history and trace cursor.
type path struct {
	id       int
	seqNo    uint64 // creation order; fetch priority
	tag      ctxtag.Tag
	live     bool
	fetching bool
	halted   bool
	// divergedParent marks a path that stopped fetching because its last
	// fetched branch diverged; it stays live (zombie) while older branches
	// on it may still need recovery, then its slot is reclaimed.
	divergedParent bool
	// pendingBranches counts fetched-but-unresolved conditional branches
	// on this path.
	pendingBranches int

	fetchPC int
	ghr     uint64
	ras     *bpred.RAS
	regmap  *rename.Map
	// fetchStallUntil blocks fetch on this path until the given cycle
	// (instruction cache miss refill).
	fetchStallUntil uint64

	onTrace  bool
	traceIdx int
}

// deco is the per-PC predecoded metadata table entry: everything the
// fetch/rename/issue stages would otherwise recompute from the opcode on
// every dynamic instance of the instruction.
type deco struct {
	class     isa.FUClass
	lat       uint8
	kind      uint8 // fetch-stage dispatch (fk*)
	hasDest   bool  // writes a register and Dst != r0
	readsSrc1 bool
	readsSrc2 bool
	isLoad    bool
	isStore   bool
	isRet     bool
}

// Fetch-stage dispatch kinds (deco.kind).
const (
	fkOther uint8 = iota
	fkJmp
	fkHalt
	fkCond
	fkCall
	fkIndirect
)

// finst is an instruction in flight in the in-order front end.
type finst struct {
	seq  uint64
	pc   int
	inst isa.Inst
	path *path
	tag  ctxtag.Tag

	// Branch metadata captured at fetch.
	isBranch     bool
	isIndirect   bool
	isRet        bool
	predTarget   int
	predTargetOK bool
	predTaken    bool
	// rasSnap captures the path's return-address stack at fetch (after a
	// return's pop); it becomes the checkpoint's RAS snapshot at rename.
	rasSnap      *bpred.RAS
	lowConf      bool
	diverged     bool
	histPos      int
	ghrAtPredict uint64
	onTrace      bool
	traceIdx     int
	childT       *path
	childN       *path
}

// Machine is the simulated processor bound to one program.
type Machine struct {
	cfg  Config
	prog *isa.Program

	// Architectural state (committed).
	mem       []int64
	retireMap *rename.Map

	// Rename state. physReady is a packed per-physical-register bitmap:
	// the wakeup recompute tests it for every pending operand every cycle.
	physVal   []int64
	physReady rename.ReadySet
	freeList  *rename.FreeList
	ckpts     *rename.Checkpoints
	// ckptRAS holds the return-address-stack snapshot for each checkpoint
	// slot (parallel to ckpts; the rename package stays RAS-agnostic).
	ckptRAS []*bpred.RAS

	// Prediction state.
	pred     bpred.Predictor
	btb      *bpred.BTB
	oracle   bool // PredOracle: predict from the trace
	conf     confidence.Estimator
	trace    []isa.BranchRecord
	interp   *isa.Interp // final state of the functional reference run
	refCount uint64      // dynamic instructions the reference run executed

	// Context management.
	ctxAlloc    *ctxtag.Allocator
	paths       []*path // slot table, len MaxPaths
	pathSeq     uint64
	divergences int // unresolved divergent branches in flight

	// Pipeline structures.
	frontEnd [][]*finst // FrontEndStages latches, each up to FetchWidth
	window   []*entry   // seq-ordered, alive entries only: winBuf[winOff : winOff+len]
	winBuf   []*entry   // window backing array, compacted when the tail is reached
	winOff   int        // offset of window[0] in winBuf
	ring     [][]*entry // completion events indexed by cycle % len(ring)
	// soa is the structure-of-arrays scheduler state over winBuf slots:
	// wakeup and select walk its per-64-entry bitmaps with
	// bits.TrailingZeros64 instead of scanning entry structs (soa.go).
	soa soaState

	// deco caches per-PC decode and classification work (FU class, latency,
	// operand/dest usage, fetch-stage dispatch kind) so the per-cycle loop
	// never re-derives it from the opcode.
	deco []deco

	// Object pools and per-cycle scratch buffers. The steady-state cycle
	// loop allocates nothing: window entries, front-end instructions and
	// latch slices are recycled, and fetch reuses its scratch space.
	entryPool  []*entry
	finstPool  []*finst
	latchPool  [][]*finst
	fpsScratch []*path
	livePaths  int // live CTX-table entries (maintained by newPath/releasePath)

	// Optional memory hierarchy (nil when the paper's always-hit
	// assumption is in effect).
	dcache *cache.Cache
	icache *cache.Cache
	// Optional misprediction recovery cache comparator.
	mrc *mrcCache

	cycle   uint64
	seq     uint64
	halted  bool
	archGHR uint64 // commit-time global history (non-speculative ablation)
	tracer  Tracer
	// pol is the policy-controller state (policy.go); nil when no policy
	// spec is configured, in which case every policy hook is a no-op.
	pol *polState
	// faultHook, when set, is called at the top of every cycle; it is the
	// deterministic fault-injection surface (fault.go).
	faultHook func(cycle uint64)
	// auditInts/auditBools are scratch buffers for the invariant auditor
	// (audit.go), allocated on first sweep and reused.
	auditInts  []int
	auditBools []bool
	// hasCallRet is true when the program contains Call/Ret instructions;
	// when false, the per-branch RAS snapshot machinery is skipped
	// entirely (a measurable win on branch-heavy workloads).
	hasCallRet bool

	Stats stats.Sim
}

// New builds a machine for prog. The functional reference run (which also
// produces the oracle branch trace) executes eagerly so that construction
// surfaces program errors early.
func New(prog *isa.Program, cfg Config) (*Machine, error) {
	return NewWithArena(prog, cfg, nil)
}

// NewWithArena is New drawing the machine's large allocations — memory
// image, register file, window backing array and SoA scheduler state,
// completion ring, predecode table, object pools — from a (see arena.go).
// A nil arena behaves exactly like New. The caller donates the buffers
// back with Machine.Recycle once the simulation is finished; results are
// bit-identical with or without an arena.
func NewWithArena(prog *isa.Program, cfg Config, a *Arena) (*Machine, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if a == nil {
		a = &Arena{}
	}
	// The reference (functional) run bounds the simulation. Without an
	// explicit MaxInsts we cap it generously; longer programs must set
	// MaxInsts explicitly.
	const defaultRefCap = 1 << 26
	maxInsts := cfg.MaxInsts
	if maxInsts == 0 {
		maxInsts = defaultRefCap
	}
	trace, ref, err := isa.TraceCached(prog, maxInsts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: reference run: %w", err)
	}
	if !ref.Halted && cfg.MaxInsts == 0 {
		return nil, fmt.Errorf("pipeline: program does not halt")
	}

	m := &Machine{
		cfg:       cfg,
		prog:      prog,
		mem:       takeI64(&a.mem, prog.MemWords),
		retireMap: rename.NewIdentityMap(),
		physVal:   takeI64(&a.physVal, cfg.PhysRegs),
		physReady: rename.ReuseReadySet(a.ready, cfg.PhysRegs),
		freeList:  rename.NewFreeList(cfg.PhysRegs, isa.NumRegs),
		ckpts:     rename.NewCheckpoints(cfg.Checkpoints),
		trace:     trace,
		interp:    ref,
		refCount:  ref.InstCount,
		ctxAlloc:  ctxtag.NewAllocator(cfg.CtxHistoryWidth),
		paths:     a.takePaths(cfg.MaxPaths),
		frontEnd:  a.takeFrontEnd(cfg.FrontEndStages),
	}
	a.ready = rename.ReadySet{}
	m.entryPool, m.finstPool, m.latchPool, m.fpsScratch = a.takePools(cfg.RASDepth)
	m.auditInts, m.auditBools = a.takeAudit()
	// The completion ring must cover the longest possible operation
	// latency (integer multiply, plus the D-cache miss penalty when the
	// cache model is enabled).
	maxLat := 8
	if cfg.EnableDCache {
		maxLat += cfg.DCacheMissLatency + 2
	}
	m.ring = a.takeRing(maxLat + 2)
	// The window is bounded by WindowSize; a 2x backing array makes the
	// head-popping commit path O(1) with amortized-free compaction.
	m.winBuf = a.takeEntries(2 * cfg.WindowSize)
	m.window = m.winBuf[:0]
	m.soaInit(len(m.winBuf), a)
	copy(m.mem, prog.DataInit)
	// Logical registers start architecturally zero and ready.
	for i := 0; i < isa.NumRegs; i++ {
		m.physReady.Set(rename.PhysReg(i))
	}

	// The predictor is resolved through the open registry: the normalized
	// config's (kind, params) pair picks the registered factory, so a
	// predictor added under internal/bpred (or registered at runtime) runs
	// here with no pipeline edits. The oracle kind is the one
	// pipeline-special case — its registry factory supplies a null pattern
	// table and the machine predicts from the reference trace instead.
	m.pred, err = bpred.Build(string(cfg.Predictor.Kind), bpred.Params(cfg.Predictor.Params), bpred.Env{
		TargetOf: func(pc int) int { return int(prog.Code[pc].Target) },
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: predictor %q: %w", string(cfg.Predictor.Kind), err)
	}
	m.oracle = cfg.Predictor.Kind == PredOracle
	m.conf, err = buildConfidence(cfg.Confidence)
	if err != nil {
		return nil, err
	}
	if err := m.buildPolicy(); err != nil {
		return nil, err
	}
	m.btb = bpred.NewBTB(cfg.BTBBits)
	for _, in := range prog.Code {
		if in.Op == isa.Call || in.Op == isa.Ret {
			m.hasCallRet = true
			break
		}
	}
	// Checkpoint RAS snapshots are preallocated per slot and overwritten in
	// place (CopyFrom) when a branch renames, so the per-branch snapshot
	// never allocates in steady state.
	m.ckptRAS = make([]*bpred.RAS, cfg.Checkpoints)
	if m.hasCallRet {
		for i := range m.ckptRAS {
			m.ckptRAS[i] = bpred.NewRAS(cfg.RASDepth)
		}
	}

	// Predecode the program once; the fetch/rename/issue stages index this
	// table instead of re-deriving classification from the opcode.
	m.deco = a.takeDeco(len(prog.Code))
	for pc, in := range prog.Code {
		d := &m.deco[pc]
		op := in.Op
		d.class = op.Class()
		d.lat = uint8(op.Latency())
		d.hasDest = op.HasDest() && in.Dst != 0
		d.readsSrc1 = op.ReadsSrc1()
		d.readsSrc2 = op.ReadsSrc2()
		d.isLoad = op == isa.Load
		d.isStore = op == isa.Store
		d.isRet = op == isa.Ret
		switch {
		case op == isa.Jmp:
			d.kind = fkJmp
		case op == isa.Halt:
			d.kind = fkHalt
		case op.IsCondBranch():
			d.kind = fkCond
		case op == isa.Call:
			d.kind = fkCall
		case op == isa.Jri || op == isa.Ret:
			d.kind = fkIndirect
		}
	}

	if cfg.EnableMRC {
		m.mrc = newMRC(cfg.MRCBits)
	}
	if cfg.EnableDCache {
		m.dcache = cache.New(cfg.DCache)
	}
	if cfg.EnableICache {
		m.icache = cache.New(cfg.ICache)
	}

	m.Stats.PathHist = stats.NewHistogram(cfg.MaxPaths)
	m.Stats.WindowHist = stats.NewHistogram(cfg.WindowSize)
	m.Stats.CommitHist = stats.NewHistogram(cfg.CommitWidth)

	// Root path: the architectural execution stream.
	root := m.newPath(ctxtag.Root(), 0, 0, true, 0)
	root.regmap = rename.NewIdentityMap()
	root.ras = bpred.NewRAS(cfg.RASDepth)
	return m, nil
}

// allocEntry takes a window entry from the pool (or the heap when the pool
// is dry). Callers overwrite every field, so no reset happens here.
func (m *Machine) allocEntry() *entry {
	if n := len(m.entryPool); n > 0 {
		e := m.entryPool[n-1]
		m.entryPool = m.entryPool[:n-1]
		return e
	}
	return new(entry)
}

// freeEntry recycles a window entry. The entry must no longer be reachable
// from the window, the completion ring, or any scratch buffer in use.
func (m *Machine) freeEntry(e *entry) {
	m.entryPool = append(m.entryPool, e)
}

// allocFinst takes a front-end instruction from the pool, fully reset. The
// RAS snapshot buffer (if one was ever allocated for this object) is kept
// so per-branch snapshots are allocation-free in steady state.
func (m *Machine) allocFinst() *finst {
	if n := len(m.finstPool); n > 0 {
		f := m.finstPool[n-1]
		m.finstPool = m.finstPool[:n-1]
		snap := f.rasSnap
		*f = finst{rasSnap: snap}
		return f
	}
	return new(finst)
}

// freeFinst recycles a front-end instruction.
func (m *Machine) freeFinst(f *finst) {
	m.finstPool = append(m.finstPool, f)
}

// allocLatch takes an empty front-end latch slice from the pool.
func (m *Machine) allocLatch() []*finst {
	if n := len(m.latchPool); n > 0 {
		l := m.latchPool[n-1]
		m.latchPool = m.latchPool[:n-1]
		return l[:0]
	}
	return make([]*finst, 0, m.cfg.FetchWidth)
}

// freeLatch recycles a latch slice's backing storage.
func (m *Machine) freeLatch(l []*finst) {
	m.latchPool = append(m.latchPool, l[:0])
}

// windowPush appends a renamed entry to the window. The backing array is
// twice WindowSize, so compaction triggers at most once per WindowSize
// pushes: amortized O(1), never allocating. Compaction moves entries to
// new slots, so the SoA scheduler state is rebuilt alongside.
func (m *Machine) windowPush(e *entry) {
	if m.winOff+len(m.window) == len(m.winBuf) {
		n := copy(m.winBuf, m.window)
		for i := n; i < n+m.winOff; i++ {
			m.winBuf[i] = nil
		}
		m.winOff = 0
		m.window = m.winBuf[:n]
		m.soaRebuild()
	}
	pos := m.winOff + len(m.window)
	m.window = append(m.window, e)
	m.soaSet(pos, e)
}

// newPath allocates a CTX-table slot. Callers must have verified a slot is
// free (freePathSlots > 0).
func (m *Machine) newPath(tag ctxtag.Tag, fetchPC int, ghr uint64, onTrace bool, traceIdx int) *path {
	for i, p := range m.paths {
		if p == nil {
			m.pathSeq++
			np := &path{
				id: i, seqNo: m.pathSeq, tag: tag,
				live: true, fetching: true,
				fetchPC: fetchPC, ghr: ghr,
				onTrace: onTrace, traceIdx: traceIdx,
			}
			m.paths[i] = np
			m.livePaths++
			return np
		}
	}
	m.machineCheckf("ctx-refcount", fetchPC, "newPath with no free CTX slot (%d live of %d)", m.livePaths, len(m.paths))
	return nil
}

func (m *Machine) freePathSlots() int {
	return len(m.paths) - m.livePaths
}

func (m *Machine) livePathCount() int {
	return m.livePaths
}

// releasePath frees a CTX-table slot.
func (m *Machine) releasePath(p *path) {
	p.live = false
	p.fetching = false
	p.regmap = nil
	m.paths[p.id] = nil
	m.livePaths--
}

// maybeReclaimZombie frees a diverged parent whose obligations are done:
// it will never fetch again and no unresolved branch on it can demand a
// recovery restart.
func (m *Machine) maybeReclaimZombie(p *path) {
	if p.live && !p.fetching && p.divergedParent && p.pendingBranches == 0 {
		m.releasePath(p)
	}
}

// Run simulates until the program's Halt commits, MaxInsts instructions
// commit, or a liveness failure is detected.
func (m *Machine) Run() error {
	return m.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is polled
// every ctxCheckInterval cycles (cheap enough to be invisible in the hot
// loop), and a cancelled or expired context aborts the simulation with the
// context's error. A background context adds no per-cycle work.
//
// Internal corruption — a violated invariant caught by the auditor, a
// bookkeeping panic in the pipeline or its resource managers — never
// escapes as a panic: it is contained and returned as a *MachineCheckError
// (see machinecheck.go). The machine must be abandoned after such an error.
func (m *Machine) RunContext(ctx context.Context) (err error) {
	defer func() { m.containMachineCheck(recover(), &err) }()
	const stallLimit = 100_000 // cycles without a commit => liveness bug
	const ctxCheckInterval = 4096
	lastCommit := m.Stats.Committed
	stall := uint64(0)
	done := ctx.Done()
	for !m.halted {
		m.step()
		if done != nil && m.cycle%ctxCheckInterval == 0 {
			select {
			case <-done:
				return fmt.Errorf("pipeline: simulation aborted at cycle %d: %w", m.cycle, ctx.Err())
			default:
			}
		}
		if m.Stats.Committed == lastCommit {
			stall++
			if stall > stallLimit {
				return fmt.Errorf("pipeline: no commit for %d cycles at cycle %d (deadlock)", stallLimit, m.cycle)
			}
		} else {
			stall = 0
			lastCommit = m.Stats.Committed
		}
	}
	m.policyFinalize()
	return nil
}

// step advances one cycle. Stage order (commit, writeback, issue, rename,
// front-end advance, fetch) lets results written back in cycle t feed
// issues in cycle t and lets a resolution in cycle t redirect fetch in
// cycle t, matching the latch-level timing described in Sec. 3/4.
func (m *Machine) step() {
	m.cycle++
	m.Stats.Cycles++
	if m.faultHook != nil {
		m.faultHook(m.cycle)
	}
	committedBefore := m.Stats.Committed
	m.commit()
	if !m.halted {
		m.writeback()
		m.issue()
		m.rename()
		m.advanceFrontEnd()
		m.fetch()
		m.sample()
		// Epoch boundary: the controller observes the completed epoch and
		// its setting governs every cycle until the next boundary. The
		// boundary sits at end-of-cycle, before the invariant sweep, so a
		// setting never changes mid-cycle.
		if m.pol != nil && m.cycle%m.pol.epochCycles == 0 {
			m.policyEpoch()
		}
	}
	// The invariant sweep runs at end-of-cycle, when the stages have reached
	// their inter-cycle fixed point (and also after the halting cycle, as a
	// final-state sweep).
	if m.cfg.Audit == AuditCycle || (m.cfg.Audit == AuditCommit && m.Stats.Committed != committedBefore) {
		m.runAudit()
	}
}

func (m *Machine) sample() {
	if m.pol != nil {
		m.pol.pathSum += uint64(m.livePathCount())
	}
	m.Stats.PathHist.Add(m.livePathCount())
	m.Stats.WindowHist.Add(len(m.window))
	m.Stats.FUCapacity[isa.ClassIntType0] += uint64(m.cfg.NumIntType0)
	m.Stats.FUCapacity[isa.ClassIntType1] += uint64(m.cfg.NumIntType1)
	m.Stats.FUCapacity[isa.ClassFPAdd] += uint64(m.cfg.NumFPAdd)
	m.Stats.FUCapacity[isa.ClassFPMul] += uint64(m.cfg.NumFPMul)
	m.Stats.FUCapacity[isa.ClassMem] += uint64(m.cfg.NumMemPorts)
}

// Cycle returns the current simulated cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Halted reports whether the simulation has finished.
func (m *Machine) Halted() bool { return m.halted }

// FinalRegs reads the committed architectural register file through the
// retirement map.
func (m *Machine) FinalRegs() [isa.NumRegs]int64 {
	var regs [isa.NumRegs]int64
	for r := 0; r < isa.NumRegs; r++ {
		regs[r] = m.physVal[m.retireMap.Get(isa.Reg(r))]
	}
	return regs
}

// Memory returns the committed architectural memory.
func (m *Machine) Memory() []int64 { return m.mem }

// VerifyArchState compares the committed architectural state against the
// functional reference execution and returns a descriptive error on any
// mismatch. This is the execution-driven correctness contract.
func (m *Machine) VerifyArchState() error {
	if m.Stats.Committed != m.refCount {
		return fmt.Errorf("pipeline: committed %d instructions, reference executed %d", m.Stats.Committed, m.refCount)
	}
	regs := m.FinalRegs()
	for r := 0; r < isa.NumRegs; r++ {
		if regs[r] != m.interp.Regs[r] {
			return fmt.Errorf("pipeline: r%d = %d, reference %d", r, regs[r], m.interp.Regs[r])
		}
	}
	for a := range m.mem {
		if m.mem[a] != m.interp.Mem[a] {
			return fmt.Errorf("pipeline: mem[%d] = %d, reference %d", a, m.mem[a], m.interp.Mem[a])
		}
	}
	return nil
}
