package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/isa/progfuzz"
	"repro/internal/workload"
)

// pcCollector records the committed-PC stream — the architectural program
// order the machine retired.
type pcCollector struct{ pcs []int32 }

func (c *pcCollector) Event(ev TraceEvent) {
	if ev.Kind == TraceCommit {
		c.pcs = append(c.pcs, int32(ev.PC))
	}
}

// runCollectingCommits simulates prog under cfg and returns the committed
// PC stream and final cycle count, verifying architectural state.
func runCollectingCommits(t *testing.T, prog *isa.Program, cfg Config) ([]int32, uint64) {
	t.Helper()
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := &pcCollector{}
	m.SetTracer(col)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
	return col.pcs, m.Cycle()
}

// TestMetamorphicNoForkEqualsMonopath is the metamorphic equivalence
// relation behind selective eager execution: a PolyPath machine whose
// confidence estimator never reports low confidence (ConfAlwaysHigh)
// never forks, so it must commit exactly the monopath baseline's
// instruction stream — same PCs, same order, same length — and spend a
// near-identical number of cycles doing it, across all eight workloads.
// Any drift here means the PolyPath machinery perturbs the single-path
// machine even when architecturally idle, which would invalidate every
// "SEE speedup over monopath" number in the reproduction.
func TestMetamorphicNoForkEqualsMonopath(t *testing.T) {
	insts := uint64(30000)
	if testing.Short() {
		insts = 10000
	}
	for _, bm := range workload.Suite(insts) {
		bm := bm
		t.Run(bm.Spec.Name, func(t *testing.T) {
			prog, err := workload.Generate(bm.Spec)
			if err != nil {
				t.Fatal(err)
			}

			noFork := DefaultConfig()
			noFork.Confidence.Kind = ConfAlwaysHigh // threshold never met: zero forks

			mono := DefaultConfig()
			mono.Mode = Monopath
			mono.Confidence.Kind = ConfAlwaysHigh

			gotPCs, gotCycles := runCollectingCommits(t, prog, noFork)
			wantPCs, wantCycles := runCollectingCommits(t, prog, mono)

			if len(gotPCs) != len(wantPCs) {
				t.Fatalf("no-fork PolyPath committed %d instructions, monopath %d", len(gotPCs), len(wantPCs))
			}
			for i := range wantPCs {
				if gotPCs[i] != wantPCs[i] {
					t.Fatalf("commit streams diverge at instruction %d: no-fork pc=%d, monopath pc=%d",
						i, gotPCs[i], wantPCs[i])
				}
			}
			// "Near-identical" cycle budget: currently the two are exactly
			// equal; the tolerance only allows benign micro-differences in
			// idle PolyPath bookkeeping, never a real performance gap.
			lo, hi := wantCycles, gotCycles
			if lo > hi {
				lo, hi = hi, lo
			}
			if float64(hi-lo) > 0.005*float64(wantCycles) {
				t.Fatalf("cycle counts differ beyond 0.5%%: no-fork %d vs monopath %d", gotCycles, wantCycles)
			}
		})
	}
}

// TestMetamorphicNoForkEqualsMonopathRandomPrograms extends the relation
// beyond the structured suite: on random chaotic control flow the
// never-fork machine must still track the baseline commit stream exactly.
func TestMetamorphicNoForkEqualsMonopathRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		prog := progfuzz.Generate(rng, 40+rng.Intn(100))

		noFork := DefaultConfig()
		noFork.Confidence.Kind = ConfAlwaysHigh
		noFork.MaxInsts = 5000

		mono := DefaultConfig()
		mono.Mode = Monopath
		mono.Confidence.Kind = ConfAlwaysHigh
		mono.MaxInsts = 5000

		gotPCs, _ := runCollectingCommits(t, prog, noFork)
		wantPCs, _ := runCollectingCommits(t, prog, mono)
		if len(gotPCs) != len(wantPCs) {
			t.Fatalf("trial %d: no-fork committed %d instructions, monopath %d", trial, len(gotPCs), len(wantPCs))
		}
		for i := range wantPCs {
			if gotPCs[i] != wantPCs[i] {
				t.Fatalf("trial %d: commit streams diverge at instruction %d (no-fork pc=%d, monopath pc=%d)",
					trial, i, gotPCs[i], wantPCs[i])
			}
		}
	}
}
