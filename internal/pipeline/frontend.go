package pipeline

import "repro/internal/isa"

// advanceFrontEnd moves instruction groups one latch forward where the next
// latch is empty. The last latch feeds rename; a stalled rename backs the
// whole front end up, which in turn stalls fetch.
func (m *Machine) advanceFrontEnd() {
	for i := len(m.frontEnd) - 2; i >= 0; i-- {
		if len(m.frontEnd[i+1]) == 0 && len(m.frontEnd[i]) > 0 {
			m.frontEnd[i+1] = m.frontEnd[i]
			m.frontEnd[i] = nil
		}
	}
}

// rename consumes instructions from the last front-end latch in order,
// renaming registers and dispatching into the instruction window. It stops
// at the first instruction that cannot proceed (window full, free list or
// checkpoint pool empty) — an in-order stall.
func (m *Machine) rename() {
	latch := m.frontEnd[len(m.frontEnd)-1]
	consumed := 0
	for consumed < len(latch) && consumed < m.cfg.RenameWidth {
		f := latch[consumed]
		if !m.renameOne(f) {
			break
		}
		m.freeFinst(f)
		consumed++
	}
	if consumed == len(latch) {
		m.frontEnd[len(m.frontEnd)-1] = nil
		if latch != nil {
			m.freeLatch(latch)
		}
	} else if consumed > 0 {
		m.frontEnd[len(m.frontEnd)-1] = latch[consumed:]
	}
}

// renameOne renames and dispatches a single instruction. It returns false
// on a structural stall, leaving the instruction in the latch.
func (m *Machine) renameOne(f *finst) bool {
	if len(m.window) >= m.cfg.WindowSize {
		return false
	}
	p := f.path
	op := f.inst.Op
	d := &m.deco[f.pc]
	hasDest := d.hasDest
	if hasDest && m.freeList.Available() == 0 {
		return false
	}
	if (f.isBranch || f.isIndirect) && m.ckpts.Available() == 0 {
		return false
	}

	e := m.allocEntry()
	*e = entry{
		seq:  f.seq,
		pc:   f.pc,
		inst: f.inst,
		path: p,
		tag:  f.tag,

		class: d.class,
		lat:   d.lat,

		isLoad:  d.isLoad,
		isStore: d.isStore,

		isBranch:     f.isBranch,
		isIndirect:   f.isIndirect,
		isRet:        f.isRet,
		predTarget:   f.predTarget,
		predTargetOK: f.predTargetOK,
		predTaken:    f.predTaken,
		lowConf:      f.lowConf,
		diverged:     f.diverged,
		histPos:      f.histPos,
		ghrAtPredict: f.ghrAtPredict,
		onTrace:      f.onTrace,
		traceIdx:     f.traceIdx,
	}
	if d.readsSrc1 {
		e.readsSrc1 = true
		e.src1Phys = p.regmap.Get(f.inst.Src1)
	}
	if d.readsSrc2 {
		e.readsSrc2 = true
		e.src2Phys = p.regmap.Get(f.inst.Src2)
	}
	if f.isBranch || f.isIndirect {
		// Checkpoint the register map and pre-prediction history for
		// misprediction recovery (coherent branches) or, for divergent
		// branches, as the second map copy the paper accounts for.
		id, ok := m.ckpts.Take(p.regmap, f.ghrAtPredict)
		if !ok {
			return false
		}
		e.ckptID = id
		e.hasCkpt = true
		// The return-address stack is speculative per-path state like the
		// register map and the history register: the snapshot captured at
		// fetch (post-pop for returns) rides along with the checkpoint,
		// copied into the slot's preallocated buffer.
		if m.hasCallRet {
			m.ckptRAS[id].CopyFrom(f.rasSnap)
		}
		if f.diverged {
			f.childT.regmap = p.regmap.Clone()
			f.childN.regmap = p.regmap.Clone()
		}
	}
	if hasDest {
		np, ok := m.freeList.Alloc()
		if !ok {
			// Cannot happen: availability checked above, and the branch
			// path allocates no registers in between.
			m.machineCheckf("free-list", f.pc, "free list exhausted after availability check (raced)")
		}
		e.hasDest = true
		e.dstPhys = np
		e.oldPhys = p.regmap.Set(f.inst.Dst, np)
		m.physReady.Clear(np)
	}
	if op == isa.Nop || op == isa.Halt {
		e.state = stateDone // no functional unit needed
	}
	m.windowPush(e)
	m.Stats.Renamed++
	if m.tracer != nil {
		m.emit(TraceRename, e.seq, e.pc, e.path, e.tag, "")
	}
	return true
}
