package pipeline

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

// policyTestProg generates a small branchy workload for the policy tests.
func policyTestProg(t *testing.T, name string, insts uint64) *workload.Benchmark {
	t.Helper()
	bm, err := workload.ByName(name, insts)
	if err != nil {
		t.Fatal(err)
	}
	return &bm
}

func runWithPolicy(t *testing.T, name string, insts uint64, audit AuditLevel, spec PolicySpec) *Machine {
	t.Helper()
	bm := policyTestProg(t, name, insts)
	prog, err := workload.Generate(bm.Spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Audit = audit
	cfg.Policy = spec
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestOnlineSingleCandidateEqualsStatic is the metamorphic identity of the
// controller framework: an online bandit with exactly one candidate has no
// choice to make, so its run must be indistinguishable from the static
// controller pinning that candidate — identical committed work, cycle
// count, epoch-IPC series, zero switches, and an otherwise byte-identical
// statistics block.
func TestOnlineSingleCandidateEqualsStatic(t *testing.T) {
	see, _ := policy.PresetSetting("see")
	static := runWithPolicy(t, "gcc", 20000, AuditOff, PolicySpec{
		Kind: "static", EpochCycles: 256, Candidates: []policy.Setting{see},
	})
	online := runWithPolicy(t, "gcc", 20000, AuditOff, PolicySpec{
		Kind: "online", EpochCycles: 256, Candidates: []policy.Setting{see},
	})
	if online.Stats.PolicySwitches != 0 {
		t.Errorf("single-candidate online switched %d times", online.Stats.PolicySwitches)
	}
	if !reflect.DeepEqual(static.Stats, online.Stats) {
		t.Errorf("single-candidate online diverged from static:\n static %+v\n online %+v",
			static.Stats, online.Stats)
	}
}

// TestStaticPolicyEqualsBareMachine: wrapping the machine's own configured
// behaviour in a static policy (the all-zero "configured" setting) must not
// perturb the simulation — the policy layer only observes. Everything
// except the policy-only observability fields must match a policy-free run.
func TestStaticPolicyEqualsBareMachine(t *testing.T) {
	bare := runWithPolicy(t, "go", 20000, AuditOff, PolicySpec{})
	wrapped := runWithPolicy(t, "go", 20000, AuditOff, PolicySpec{
		Kind: "static", EpochCycles: 256,
	})
	ws := wrapped.Stats
	if len(ws.EpochIPC) == 0 {
		t.Fatalf("policy run recorded no epochs")
	}
	ws.EpochIPC = nil
	ws.PolicySwitches = 0
	if !reflect.DeepEqual(bare.Stats, ws) {
		t.Errorf("static policy perturbed the machine:\n bare    %+v\n wrapped %+v", bare.Stats, ws)
	}
}

// TestEpochLongerThanRun: an epoch that never completes inside the run
// must still be accounted once, by the end-of-run finalization — one
// epoch-IPC sample covering the whole run.
func TestEpochLongerThanRun(t *testing.T) {
	m := runWithPolicy(t, "gcc", 5000, AuditCycle, PolicySpec{
		Kind: "static", EpochCycles: policy.MaxEpochCycles,
	})
	if len(m.Stats.EpochIPC) != 1 {
		t.Fatalf("EpochIPC = %v, want exactly one sample", m.Stats.EpochIPC)
	}
	if got, want := m.Stats.EpochIPC[0], m.Stats.IPC(); got != want {
		t.Errorf("sole epoch IPC %v, want whole-run IPC %v", got, want)
	}
}

// TestNoZeroLengthFinalEpoch: the number of epoch samples must be exactly
// ceil(cycles/epochCycles) — a run ending on an epoch boundary must not
// record a spurious empty final epoch, and a partial tail must be
// accounted exactly once.
func TestNoZeroLengthFinalEpoch(t *testing.T) {
	for _, ep := range []int{64, 100, 256, 1024} {
		m := runWithPolicy(t, "perl", 15000, AuditOff, PolicySpec{
			Kind: "static", EpochCycles: ep,
		})
		cycles := m.Cycle()
		want := int((cycles + uint64(ep) - 1) / uint64(ep))
		if got := len(m.Stats.EpochIPC); got != want {
			t.Errorf("epoch %d: %d samples over %d cycles, want ceil = %d", ep, got, cycles, want)
		}
	}
}

// TestSwitchWithLivePaths forces policy switches while divergent paths are
// in flight: an always-low confidence estimator keeps the path set full,
// and an oracle schedule alternates divergence-on/divergence-off every
// epoch (64 cycles, the minimum). Turning divergence off must only stop
// new forks — live paths keep executing and resolving — and the cycle-level
// invariant auditor plus architectural verification must stay clean
// through every transition, including switches landing mid-recovery.
func TestSwitchWithLivePaths(t *testing.T) {
	see, _ := policy.PresetSetting("see")
	mono, _ := policy.PresetSetting("monopath")
	sched := make([]int, 128)
	for i := range sched {
		sched[i] = i % 2
	}
	bm := policyTestProg(t, "go", 20000)
	prog, err := workload.Generate(bm.Spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Audit = AuditCycle
	cfg.Confidence.Kind = ConfAlwaysLow // every branch forks while allowed
	cfg.Policy = PolicySpec{
		Kind: "oracle", EpochCycles: policy.MinEpochCycles,
		Candidates: []policy.Setting{see, mono},
		Params:     policy.OracleParams(sched),
	}
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.PolicySwitches == 0 {
		t.Fatal("alternating oracle schedule produced no switches")
	}
	if m.Stats.Divergences == 0 {
		t.Fatal("always-low confidence produced no divergences")
	}

	// The identical run must also be bit-reproducible switch for switch.
	m2, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Stats, m2.Stats) {
		t.Errorf("policy-switching run is not deterministic:\n 1st %+v\n 2nd %+v", m.Stats, m2.Stats)
	}
}

// TestPolicyRejectsBadSpecs: malformed policy specs must be rejected at
// construction with the config-error pathway, not at runtime.
func TestPolicyRejectsBadSpecs(t *testing.T) {
	bad := []PolicySpec{
		{Kind: "no-such-controller"},
		{Kind: "static", EpochCycles: 1},                                    // below minimum
		{Kind: "static", Candidates: []policy.Setting{{ConfThreshold: -2}}}, // bad knob
		{Kind: "online"},                                                    // needs candidates
		{Kind: "online", Candidates: []policy.Setting{{}}, Params: map[string]int{"bogus": 1}}, // unknown param
		{Kind: "oracle"}, // needs candidates
	}
	for _, spec := range bad {
		cfg := DefaultConfig()
		cfg.Policy = spec
		if _, err := New(nil, cfg); err == nil {
			t.Errorf("spec %+v: want construction error, got none", spec)
		}
	}
}

// TestPolicyFreeV2EncodingHasNoPolicyField pins the wire compatibility of
// the polypath/v2 extension: configs without a controller must encode to
// the exact same canonical v2 bytes as before the policy field existed
// (polyserve's result store byte-compares encodings).
func TestPolicyFreeV2EncodingHasNoPolicyField(t *testing.T) {
	blob, err := EncodeConfigV2(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, []byte(`"policy"`)) {
		t.Errorf("policy-free v2 encoding grew a policy field: %s", blob)
	}
}

// TestPolicyConfigV2RoundTrip: a policy-bearing config must round-trip
// through polypath/v2 as a fixed point with a stable canonical hash, and
// must refuse the frozen v1 schema.
func TestPolicyConfigV2RoundTrip(t *testing.T) {
	see, _ := policy.PresetSetting("see")
	mono, _ := policy.PresetSetting("monopath")
	cfg := DefaultConfig()
	cfg.Policy = PolicySpec{
		Kind: "online", EpochCycles: 1024,
		Candidates: []policy.Setting{see, mono},
		Params:     map[string]int{"explore_every": 6, "shift_milli": 120},
	}
	if _, err := EncodeConfigV1(cfg); err == nil {
		t.Fatal("policy-bearing config must not be representable in the frozen polypath/v1 schema")
	}
	v2, err := EncodeConfigV2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeConfig(v2)
	if err != nil {
		t.Fatal(err)
	}
	v2again, err := EncodeConfigV2(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v2, v2again) {
		t.Errorf("policy v2 encoding is not a fixed point\n 1st %s\n 2nd %s", v2, v2again)
	}
	h1, err := CanonicalHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := CanonicalHash(back)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("v2 round trip changed the canonical hash: %s vs %s", h1, h2)
	}
	if h0, _ := CanonicalHash(DefaultConfig()); h0 == h1 {
		t.Error("policy-bearing config hashed identically to the policy-free config")
	}
}
