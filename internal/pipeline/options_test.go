package pipeline

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestNewConfigDefaultsAreValid(t *testing.T) {
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, DefaultConfig()) {
		t.Error("NewConfig() without options must equal DefaultConfig()")
	}
}

func TestNewConfigOptionsCompose(t *testing.T) {
	cfg, err := NewConfig(
		WithMode(Monopath),
		WithWindowSize(128),
		WithPipelineDepth(10),
		WithUniformUnits(2),
		WithHistoryBits(9),
		WithMaxDivergences(1),
		WithMaxInsts(5000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != Monopath || cfg.WindowSize != 128 || cfg.FrontEndStages != 7 ||
		cfg.NumMemPorts != 2 || cfg.Predictor.Param("hist_bits", 0) != 9 || cfg.Confidence.IndexBits != 9 ||
		cfg.MaxDivergences != 1 || cfg.MaxInsts != 5000 {
		t.Errorf("options not applied: %+v", cfg)
	}
	if cfg.PhysRegs != 0 || cfg.Checkpoints != 0 {
		t.Error("WithWindowSize must leave PhysRegs/Checkpoints to be re-derived")
	}
}

// requireConfigError asserts the typed-error contract: every invalid
// configuration yields a *ConfigError naming the offending field.
func requireConfigError(t *testing.T, err error, field string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: invalid config accepted", field)
	}
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("%s: want *ConfigError, got %T (%v)", field, err, err)
	}
	if !strings.Contains(ce.Field, field) {
		t.Errorf("error field %q should reference %q", ce.Field, field)
	}
}

func TestValidateZeroWidthMachine(t *testing.T) {
	_, err := NewConfig(func(c *Config) { c.FetchWidth = 0 })
	requireConfigError(t, err, "FetchWidth")
}

func TestValidateTagCountExceedsCapacity(t *testing.T) {
	// More CTX-tag history positions than the tag encoding can hold.
	_, err := NewConfig(func(c *Config) { c.CtxHistoryWidth = 33 })
	requireConfigError(t, err, "CtxHistoryWidth")
	// More CTX-table entries than the path-table bound.
	_, err = NewConfig(func(c *Config) { c.MaxPaths = 4096 })
	requireConfigError(t, err, "MaxPaths")
}

func TestValidateOraclePredictorAdaptiveConfidence(t *testing.T) {
	_, err := NewConfig(
		WithPredictor(PredictorSpec{Kind: PredOracle}),
		WithConfidenceKind(ConfAdaptive),
	)
	requireConfigError(t, err, "Confidence.Kind")
}

func TestValidateRejectsConstructorPanicRanges(t *testing.T) {
	// Each of these used to reach a constructor panic (bpred/confidence);
	// with the validated constructor they are typed errors instead.
	cases := []struct {
		field string
		opt   Option
	}{
		{"Predictor.hist_bits", func(c *Config) { c.Predictor = c.Predictor.WithParam("hist_bits", 40) }},
		{"Predictor.hist_bits", func(c *Config) { c.Predictor = c.Predictor.WithParam("hist_bits", -1) }},
		{"Predictor.table_bits", func(c *Config) { c.Predictor = c.Predictor.WithParam("table_bits", 12) }},
		{"Predictor.Kind", func(c *Config) { c.Predictor.Kind = "nonesuch" }},
		{"Confidence.IndexBits", func(c *Config) { c.Confidence.IndexBits = 30 }},
		{"Confidence.CtrBits", func(c *Config) { c.Confidence.CtrBits = 9 }},
		{"Confidence.Threshold", func(c *Config) { c.Confidence.CtrBits = 2; c.Confidence.Threshold = 4 }},
		{"Confidence.Kind", func(c *Config) { c.Confidence.Kind = "nonesuch" }},
		{"Confidence.Params", func(c *Config) { c.Confidence.Params = map[string]int{"mystery": 1} }},
		{"Confidence.AdaptiveMinPVN", func(c *Config) { c.Confidence.Kind = ConfAdaptive; c.Confidence.AdaptiveMinPVN = 1.5 }},
		{"Confidence.AdaptiveWindow", func(c *Config) { c.Confidence.Kind = ConfAdaptive; c.Confidence.AdaptiveWindow = 3 }},
		{"Mode", func(c *Config) { c.Mode = Mode(7) }},
		{"FetchPolicy", func(c *Config) { c.FetchPolicy = FetchPolicy(7) }},
		{"BTBBits", func(c *Config) { c.BTBBits = 30 }},
		{"RASDepth", func(c *Config) { c.RASDepth = 5000 }},
		{"WindowSize", func(c *Config) { c.WindowSize = 2 }},
	}
	for _, tc := range cases {
		_, err := NewConfig(tc.opt)
		requireConfigError(t, err, tc.field)
	}
}

func TestValidateDoesNotMutate(t *testing.T) {
	cfg := DefaultConfig()
	before, err := EncodeConfigV2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	after, err := EncodeConfigV2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("Validate mutated the config")
	}
}

func TestNormalizedFillsDerivedDefaults(t *testing.T) {
	n, err := DefaultConfig().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.PhysRegs == 0 || n.Checkpoints == 0 {
		t.Error("Normalized must fill derived defaults")
	}
}

// TestMachineNewNeverPanicsOnInvalidConfig sweeps a grid of hostile
// configurations through the full constructor path: every outcome must be
// an error, never a panic.
func TestMachineNewNeverPanicsOnInvalidConfig(t *testing.T) {
	prog := diamondProgram(100, 0.5)
	mutations := []Option{
		func(c *Config) { c.Predictor = c.Predictor.WithParam("hist_bits", 64) },
		func(c *Config) { c.Confidence.CtrBits = -3 },
		func(c *Config) { c.Confidence.Kind = ConfAdaptive; c.Confidence.AdaptiveMinPVN = -0.1 },
		func(c *Config) { c.CtxHistoryWidth = 40 },
		func(c *Config) { c.PhysRegs = 5 },
		func(c *Config) { c.Checkpoints = -1 },
		func(c *Config) { c.EnableDCache = true },
		func(c *Config) { c.EnableICache = true; c.ICache.Sets = 3 },
		func(c *Config) { c.MRCBits = 99 },
	}
	for i, mut := range mutations {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("mutation %d: panic on user-supplied config: %v", i, r)
				}
			}()
			cfg := DefaultConfig()
			mut(&cfg)
			if _, err := New(prog, cfg); err == nil {
				t.Errorf("mutation %d: invalid config accepted", i)
			}
		}()
	}
}

func TestRunContextCancellation(t *testing.T) {
	m, err := New(diamondProgram(200_000, 0.5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = m.RunContext(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run must surface context.Canceled, got %v", err)
	}
	if m.Halted() {
		t.Error("cancelled run should not report a completed simulation")
	}
}
