package pipeline

import (
	"testing"

	"repro/internal/cache"
)

func cacheConfig(miss int) Config {
	cfg := DefaultConfig()
	cfg.EnableDCache = true
	cfg.DCache = cache.Config{Sets: 32, Ways: 2, LineWords: 8}
	cfg.DCacheMissLatency = miss
	cfg.EnableICache = true
	cfg.ICache = cache.Config{Sets: 64, Ways: 2, LineWords: 8}
	cfg.ICacheMissLatency = miss
	return cfg
}

func TestCacheModelArchEquivalence(t *testing.T) {
	// Caches change timing only, never values: architectural state must be
	// identical with and without them, for both execution models.
	prog := diamondProgram(30_000, 0.5)
	for _, mode := range []Mode{Monopath, PolyPath} {
		cfg := cacheConfig(10)
		cfg.Mode = mode
		if mode == Monopath {
			cfg.Confidence.Kind = ConfAlwaysHigh
		}
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if err := m.VerifyArchState(); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if m.Stats.DCacheAccesses == 0 || m.Stats.ICacheAccesses == 0 {
			t.Errorf("mode %v: cache counters not populated", mode)
		}
	}
}

func TestCacheMissesSlowTheMachine(t *testing.T) {
	prog := diamondProgram(30_000, 0.5)
	base := DefaultConfig()
	base.Mode = Monopath
	base.Confidence.Kind = ConfAlwaysHigh
	mBase, err := New(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := mBase.Run(); err != nil {
		t.Fatal(err)
	}
	slow := cacheConfig(20)
	slow.Mode = Monopath
	slow.Confidence.Kind = ConfAlwaysHigh
	mSlow, err := New(prog, slow)
	if err != nil {
		t.Fatal(err)
	}
	if err := mSlow.Run(); err != nil {
		t.Fatal(err)
	}
	if mSlow.Stats.DCacheMisses == 0 {
		t.Fatal("expected data cache misses with a 256-word cache")
	}
	if mSlow.Stats.IPC() >= mBase.Stats.IPC() {
		t.Errorf("cache misses should reduce IPC: %.3f vs always-hit %.3f",
			mSlow.Stats.IPC(), mBase.Stats.IPC())
	}
}

func TestCacheConfigValidation(t *testing.T) {
	prog := diamondProgram(5_000, 0.5)
	bad := cacheConfig(10)
	bad.DCache.Sets = 3
	if _, err := New(prog, bad); err == nil {
		t.Error("expected invalid dcache config error")
	}
	bad2 := cacheConfig(0)
	if _, err := New(prog, bad2); err == nil {
		t.Error("expected invalid miss latency error")
	}
	bad3 := cacheConfig(10)
	bad3.ICache.LineWords = 0
	if _, err := New(prog, bad3); err == nil {
		t.Error("expected invalid icache config error")
	}
}

func TestICacheStallsFetch(t *testing.T) {
	prog := diamondProgram(20_000, 0.5)
	cfg := cacheConfig(30)
	cfg.ICache = cache.Config{Sets: 1, Ways: 1, LineWords: 1} // pathological
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.ICacheMissRate() < 0.5 {
		t.Errorf("one-line icache should thrash, miss rate %.2f", m.Stats.ICacheMissRate())
	}
	// With a 30-cycle refill per instruction line, IPC must collapse.
	if m.Stats.IPC() > 0.2 {
		t.Errorf("IPC %.3f too high for a thrashing icache", m.Stats.IPC())
	}
}

// TestCacheLatencyMonotonic is a regression test for the completion-ring
// sizing bug: a miss latency larger than the old fixed ring (16 entries)
// must actually slow the machine down, not alias to a short latency.
func TestCacheLatencyMonotonic(t *testing.T) {
	prog := diamondProgram(20_000, 0.5)
	run := func(miss int) float64 {
		cfg := cacheConfig(miss)
		cfg.Mode = Monopath
		cfg.Confidence.Kind = ConfAlwaysHigh
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if err := m.VerifyArchState(); err != nil {
			t.Fatal(err)
		}
		return m.Stats.IPC()
	}
	fast, mid, slow := run(4), run(12), run(40)
	if !(fast > mid && mid > slow) {
		t.Errorf("IPC must fall with miss latency: %.3f, %.3f, %.3f", fast, mid, slow)
	}
}
