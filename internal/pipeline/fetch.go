package pipeline

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/confidence"
	"repro/internal/isa"
)

// fetch implements the multi-path fetch stage. All live, actively fetching
// paths contend for the aggregate fetch bandwidth; paths are prioritized by
// age (creation order), and bandwidth decreases exponentially with a path's
// distance from the oldest path: the oldest path receives half of the
// remaining bandwidth (rounded up) and the last path receives the rest, so
// a single-path (monopath) machine always gets the full width (Sec. 3.2.6
// and the fetch assumptions of Sec. 4.2).
func (m *Machine) fetch() {
	if len(m.frontEnd[0]) > 0 {
		return // stage 0 latch stalled
	}
	fps := m.fpsScratch[:0]
	for _, p := range m.paths {
		if p != nil && p.fetching && !p.halted && m.cycle >= p.fetchStallUntil {
			fps = append(fps, p)
		}
	}
	m.fpsScratch = fps
	if len(fps) == 0 {
		return
	}
	// Insertion sort by creation order; seqNo is unique, so this yields the
	// same order sort.Slice did, without the per-cycle reflection cost.
	for i := 1; i < len(fps); i++ {
		p := fps[i]
		j := i - 1
		for j >= 0 && fps[j].seqNo > p.seqNo {
			fps[j+1] = fps[j]
			j--
		}
		fps[j+1] = p
	}

	bw := m.policyFetchWidth()
	fetched := m.allocLatch()
	for i, p := range fps {
		if bw <= 0 {
			break
		}
		grant := bw
		if i < len(fps)-1 {
			switch m.cfg.FetchPolicy {
			case FetchRoundRobin:
				// Even division across the remaining paths.
				grant = (bw + len(fps) - 1 - i) / (len(fps) - i)
			default:
				// Exponential decay: each path takes half of the remaining
				// bandwidth, the last path the remainder, so bandwidth
				// halves with a path's distance from the oldest divergence
				// and a single-path machine keeps the full width.
				grant = (bw + 1) / 2
			}
		}
		bw -= m.fetchPath(p, grant, &fetched)
	}
	if len(fetched) > 0 {
		m.frontEnd[0] = fetched
		m.Stats.Fetched += uint64(len(fetched))
	} else {
		m.freeLatch(fetched)
	}
}

// fetchPath fetches up to grant instructions along path p, following
// predicted directions (fetch may cross basic blocks within one cycle) and
// creating a divergence when the confidence estimator flags a branch as
// low confidence. Returns the number of instructions fetched.
func (m *Machine) fetchPath(p *path, grant int, out *[]*finst) int {
	n := 0
	for n < grant && p.fetching && !p.halted {
		pc := p.fetchPC
		if pc < 0 || pc >= len(m.prog.Code) {
			// Wrong-path fall-through past the end of the program; this
			// path idles until it is killed.
			p.fetching = false
			break
		}
		if m.icache != nil {
			m.Stats.ICacheAccesses++
			if !m.icache.Access(pc) {
				// Refill stall: the path resumes after the miss latency;
				// the line is now allocated so the retry hits.
				m.Stats.ICacheMisses++
				p.fetchStallUntil = m.cycle + uint64(m.cfg.ICacheMissLatency)
				break
			}
		}
		in := m.prog.Code[pc]
		m.seq++
		f := m.allocFinst()
		f.seq, f.pc, f.inst, f.path, f.tag = m.seq, pc, in, p, p.tag
		switch m.deco[pc].kind {
		case fkJmp:
			// Direct jump: the target is known at fetch; redirect with no
			// bubble (multi-block fetch).
			p.fetchPC = int(in.Target)
		case fkHalt:
			p.halted = true
		case fkCond:
			m.fetchBranch(p, f)
		case fkCall:
			// Direct call: redirect and push the return address onto this
			// path's speculative return-address stack.
			p.ras.Push(pc + 1)
			p.fetchPC = int(in.Target)
		case fkIndirect:
			m.fetchIndirect(p, f)
		default:
			p.fetchPC = pc + 1
		}
		*out = append(*out, f)
		n++
		if m.tracer != nil {
			m.emit(TraceFetch, f.seq, f.pc, f.path, f.tag, disasmNote(in))
		}
		if f.diverged {
			if m.tracer != nil {
				m.emit(TraceDiverge, f.seq, f.pc, f.path, f.tag,
					fmt.Sprintf("divergence at history position %d", f.histPos))
			}
			break // parent stops fetching; children start next cycle
		}
	}
	return n
}

// fetchBranch predicts a conditional branch, consults the confidence
// estimator, and either follows the prediction (coherent branch) or
// creates a divergence (selective eager execution).
func (m *Machine) fetchBranch(p *path, f *finst) {
	pc := f.pc
	// Trace cursor: the oracle predictor and oracle confidence estimator
	// need the actual outcome, which is known at fetch only while this
	// path tracks the architectural execution stream.
	actualKnown, actualTaken := false, false
	if p.onTrace && p.traceIdx < len(m.trace) {
		if r := m.trace[p.traceIdx]; !r.Indirect && int(r.PC) == pc {
			actualKnown, actualTaken = true, r.Taken
		}
	}

	// Prediction history: speculative per-path history by default, or the
	// architectural commit-time history for the non-speculative ablation.
	hist := p.ghr
	if m.cfg.NonSpeculativeHistory {
		hist = m.archGHR
	}
	var predTaken bool
	if m.oracle {
		predTaken = actualKnown && actualTaken
	} else {
		predTaken = m.pred.Predict(pc, hist)
	}
	hint := confidence.Hint{Known: actualKnown, Taken: actualTaken}
	highConf := m.conf.Estimate(pc, hist, predTaken, hint)

	f.isBranch = true
	f.predTaken = predTaken
	f.lowConf = !highConf
	f.ghrAtPredict = hist
	if m.hasCallRet {
		m.snapshotRAS(f, p)
	}
	f.onTrace = p.onTrace && actualKnown
	f.traceIdx = p.traceIdx
	p.pendingBranches++

	if !highConf && m.cfg.Mode == PolyPath && m.divergeAllowed() {
		if m.tryDiverge(p, f, actualKnown, actualTaken) {
			return
		}
		m.Stats.DivergenceBlocked++
	}

	// Coherent branch: follow the prediction, update the speculative
	// per-path history, and advance the trace cursor.
	p.ghr = bpred.PushHistory(p.ghr, predTaken)
	p.onTrace = p.onTrace && actualKnown && predTaken == actualTaken
	p.traceIdx++
	if predTaken {
		p.fetchPC = int(f.inst.Target)
	} else {
		p.fetchPC = pc + 1
	}
}

// tryDiverge creates a divergence at branch f if context resources allow:
// a free CTX history position, two free CTX table entries, and (for the
// dual-path restriction of Sec. 5.2) an available divergence slot.
func (m *Machine) tryDiverge(p *path, f *finst, actualKnown, actualTaken bool) bool {
	if limit := m.divergenceLimit(); limit > 0 && m.divergences >= limit {
		return false
	}
	if m.freePathSlots() < 2 {
		return false
	}
	pos, ok := m.ctxAlloc.Alloc()
	if !ok {
		return false
	}
	m.divergences++
	m.Stats.Divergences++
	f.diverged = true
	f.histPos = pos

	// The predicted successor is created first so it sits ahead of its
	// sibling in the fetch priority order: the likely continuation keeps
	// most of the bandwidth, the hedge path gets the decayed remainder.
	childTrace := p.traceIdx + 1
	mkTaken := func() {
		f.childT = m.newPath(
			p.tag.WithPosition(pos, true),
			int(f.inst.Target),
			bpred.PushHistory(p.ghr, true),
			p.onTrace && actualKnown && actualTaken,
			childTrace,
		)
		if m.hasCallRet {
			f.childT.ras = p.ras.Clone()
		} else {
			f.childT.ras = p.ras
		}
	}
	mkNotTaken := func() {
		f.childN = m.newPath(
			p.tag.WithPosition(pos, false),
			f.pc+1,
			bpred.PushHistory(p.ghr, false),
			p.onTrace && actualKnown && !actualTaken,
			childTrace,
		)
		if m.hasCallRet {
			f.childN.ras = p.ras.Clone()
		} else {
			f.childN.ras = p.ras
		}
	}
	if f.predTaken {
		mkTaken()
		mkNotTaken()
	} else {
		mkNotTaken()
		mkTaken()
	}
	// The children's register maps are cloned from the parent when the
	// branch reaches rename (the front end is in order, so every child
	// instruction renames after the branch).
	p.fetching = false
	p.divergedParent = true
	return true
}

// snapshotRAS captures the path's return-address stack into the finst's
// persistent snapshot buffer (allocated once per pooled finst, reused for
// the rest of the machine's lifetime).
func (m *Machine) snapshotRAS(f *finst, p *path) {
	if f.rasSnap == nil {
		f.rasSnap = bpred.NewRAS(m.cfg.RASDepth)
	}
	f.rasSnap.CopyFrom(p.ras)
}

// fetchIndirect predicts an indirect jump's target with the BTB. On a BTB
// miss the path stalls until the jump resolves (a real fetch unit has no
// address to follow); on a hit fetch continues at the predicted target and
// a wrong prediction is repaired by checkpoint recovery at resolution.
func (m *Machine) fetchIndirect(p *path, f *finst) {
	pc := f.pc
	f.isIndirect = true
	f.ghrAtPredict = p.ghr
	f.traceIdx = p.traceIdx
	p.pendingBranches++

	// Trace cursor: consume the indirect record if this path tracks the
	// architectural stream.
	actualKnown, actualTarget := false, 0
	if p.onTrace && p.traceIdx < len(m.trace) {
		if r := m.trace[p.traceIdx]; r.Indirect && int(r.PC) == pc {
			actualKnown, actualTarget = true, int(r.Target)
		}
	}
	f.onTrace = p.onTrace && actualKnown

	f.isRet = f.inst.Op == isa.Ret
	var target int
	var ok bool
	switch {
	case m.oracle && actualKnown:
		target, ok = actualTarget, true
		if f.isRet {
			p.ras.Pop() // keep the speculative stack balanced
		}
	case m.oracle:
		target, ok = 0, false
	case f.isRet:
		// Function returns are predicted by the return-address stack.
		target, ok = p.ras.Pop()
	default:
		target, ok = m.btb.Predict(pc)
	}
	f.predTarget, f.predTargetOK = target, ok
	if m.hasCallRet {
		m.snapshotRAS(f, p) // post-pop state: recovery resumes after the return
	}
	p.traceIdx++
	if !ok {
		// No prediction: stall this path until resolution redirects it.
		p.fetching = false
		p.onTrace = false
		return
	}
	p.fetchPC = target
	p.onTrace = p.onTrace && actualKnown && target == actualTarget
}
