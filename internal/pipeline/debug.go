package pipeline

import "repro/internal/isa"

// debug.go exposes a read-only inspection API over the machine's
// micro-architectural state, for the interactive debugger (cmd/polydbg)
// and for tests that need visibility without reaching into internals.

// Step advances the simulation by one cycle (no-op once halted). The
// normal driver is Run; Step exists for interactive debugging.
func (m *Machine) Step() {
	if !m.halted {
		m.step()
	}
}

// WindowEntryView is a snapshot of one instruction window entry.
type WindowEntryView struct {
	Seq      uint64
	PC       int
	Tag      string
	State    string
	Disasm   string
	Branch   bool
	Diverged bool
	Resolved bool
}

// WindowView snapshots the instruction window in program (seq) order,
// up to max entries (0 = all).
func (m *Machine) WindowView(max int) []WindowEntryView {
	n := len(m.window)
	if max > 0 && n > max {
		n = max
	}
	out := make([]WindowEntryView, 0, n)
	for _, e := range m.window[:n] {
		state := "waiting"
		switch e.state {
		case stateExecuting:
			state = "executing"
		case stateDone:
			state = "done"
		}
		out = append(out, WindowEntryView{
			Seq:      e.seq,
			PC:       e.pc,
			Tag:      e.tag.String(),
			State:    state,
			Disasm:   isa.Disasm(e.inst),
			Branch:   e.isBranch,
			Diverged: e.diverged,
			Resolved: e.resolved,
		})
	}
	return out
}

// WindowLen returns the number of in-flight window entries.
func (m *Machine) WindowLen() int { return len(m.window) }

// PathView is a snapshot of one CTX-table entry.
type PathView struct {
	ID       int
	Tag      string
	FetchPC  int
	Fetching bool
	Zombie   bool
	Halted   bool
	Pending  int // unresolved control instructions on this path
	OnTrace  bool
}

// PathsView snapshots the live CTX table.
func (m *Machine) PathsView() []PathView {
	var out []PathView
	for _, p := range m.paths {
		if p == nil {
			continue
		}
		out = append(out, PathView{
			ID:       p.id,
			Tag:      p.tag.String(),
			FetchPC:  p.fetchPC,
			Fetching: p.fetching,
			Zombie:   p.divergedParent,
			Halted:   p.halted,
			Pending:  p.pendingBranches,
			OnTrace:  p.onTrace,
		})
	}
	return out
}

// ArchRegs returns the committed architectural register values (the
// retirement-map view), like FinalRegs but usable mid-simulation.
func (m *Machine) ArchRegs() [isa.NumRegs]int64 { return m.FinalRegs() }

// Program returns the simulated program.
func (m *Machine) Program() *isa.Program { return m.prog }
