package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// switchProgram builds a program dominated by one switch statement.
func switchProgram(iters, fanout int) *isa.Program {
	p, err := workload.Generate(workload.Spec{
		Name: "switchy", Seed: 17,
		TargetInsts: uint64(iters),
		Branches: []workload.BranchSpec{
			{Kind: workload.KindSwitch, Fanout: fanout},
			{Kind: workload.KindBernoulli, Bias: 0.6},
		},
		BlockLen: 6, Chains: 4,
		LoadFrac: 0.15, StoreFrac: 0.08, PredDepth: 3,
	})
	if err != nil {
		panic(err)
	}
	return p
}

func TestIndirectJumpArchEquivalence(t *testing.T) {
	prog := switchProgram(30_000, 6)
	for _, mode := range []struct {
		name string
		cfg  func() Config
	}{
		{"monopath", func() Config {
			c := DefaultConfig()
			c.Mode = Monopath
			c.Confidence.Kind = ConfAlwaysHigh
			return c
		}},
		{"polypath", DefaultConfig},
		{"eager", func() Config {
			c := DefaultConfig()
			c.Confidence.Kind = ConfAlwaysLow
			return c
		}},
		{"oracle", func() Config {
			c := DefaultConfig()
			c.Mode = Monopath
			c.Predictor.Kind = PredOracle
			c.Confidence.Kind = ConfAlwaysHigh
			return c
		}},
	} {
		m, err := New(prog, mode.cfg())
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if err := m.VerifyArchState(); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if m.Stats.IndirectJumps == 0 {
			t.Fatalf("%s: no indirect jumps committed", mode.name)
		}
	}
}

func TestIndirectTargetMispredictRateMatchesFanout(t *testing.T) {
	// A uniform random switch over K cases with last-target BTB prediction
	// mispredicts with probability ~ (K-1)/K.
	prog := switchProgram(40_000, 8)
	cfg := DefaultConfig()
	cfg.Mode = Monopath
	cfg.Confidence.Kind = ConfAlwaysHigh
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rate := float64(m.Stats.IndirectMispredicts) / float64(m.Stats.IndirectJumps)
	if rate < 0.75 || rate > 0.95 {
		t.Errorf("indirect mispredict rate %.3f, want ~7/8 for fanout 8", rate)
	}
	if m.Stats.IndirectRecoveries == 0 {
		t.Error("expected indirect recoveries")
	}
}

func TestOraclePredictsIndirectTargets(t *testing.T) {
	// The oracle configuration predicts indirect targets perfectly from
	// the reference trace: no indirect recoveries on the correct path...
	// wrong paths may still recover, but committed mispredicts must be 0.
	prog := switchProgram(30_000, 6)
	cfg := DefaultConfig()
	cfg.Mode = Monopath
	cfg.Predictor.Kind = PredOracle
	cfg.Confidence.Kind = ConfAlwaysHigh
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.IndirectMispredicts != 0 {
		t.Errorf("oracle committed %d indirect mispredicts", m.Stats.IndirectMispredicts)
	}
}

func TestIndirectWithSEEStillGainsOnBranches(t *testing.T) {
	// Indirect jumps don't diverge, but the conditional branch in the
	// workload still benefits from SEE.
	prog := switchProgram(40_000, 4)
	run := func(cfg Config) float64 {
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if err := m.VerifyArchState(); err != nil {
			t.Fatal(err)
		}
		return m.Stats.IPC()
	}
	mono := DefaultConfig()
	mono.Mode = Monopath
	mono.Confidence.Kind = ConfAlwaysHigh
	see := DefaultConfig()
	see.Confidence.Kind = ConfOracle // cleanest signal
	if gain := run(see)/run(mono) - 1; gain <= 0 {
		t.Errorf("SEE with oracle CE should still gain on switchy code, got %+.2f%%", 100*gain)
	}
}

// callProgram builds a workload whose control flow is dominated by
// function calls and returns.
func callProgram(iters int) *isa.Program {
	p, err := workload.Generate(workload.Spec{
		Name: "cally", Seed: 23,
		TargetInsts: uint64(iters),
		Branches: []workload.BranchSpec{
			{Kind: workload.KindCall, CallDepth: 1},
			{Kind: workload.KindCall, CallDepth: 2},
			{Kind: workload.KindBernoulli, Bias: 0.7},
		},
		BlockLen: 6, Chains: 4,
		LoadFrac: 0.15, StoreFrac: 0.08, PredDepth: 3,
	})
	if err != nil {
		panic(err)
	}
	return p
}

func TestCallReturnArchEquivalence(t *testing.T) {
	prog := callProgram(30_000)
	for _, kind := range []ConfidenceKind{ConfAlwaysHigh, ConfJRS, ConfAlwaysLow} {
		cfg := DefaultConfig()
		cfg.Confidence.Kind = kind
		if kind == ConfAlwaysHigh {
			cfg.Mode = Monopath
		}
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		if err := m.VerifyArchState(); err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		if m.Stats.IndirectJumps == 0 {
			t.Fatalf("kind %q: no returns committed", kind)
		}
	}
}

func TestRASPredictsReturnsNearPerfectly(t *testing.T) {
	// Returns through the RAS should essentially never mispredict on the
	// correct path — in contrast to the ~(K-1)/K rate of random switches.
	prog := callProgram(40_000)
	cfg := DefaultConfig()
	cfg.Mode = Monopath
	cfg.Confidence.Kind = ConfAlwaysHigh
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rate := float64(m.Stats.IndirectMispredicts) / float64(m.Stats.IndirectJumps)
	if rate > 0.02 {
		t.Errorf("return target mispredict rate %.3f, want ~0 with a RAS", rate)
	}
}

func TestRASSurvivesBranchRecovery(t *testing.T) {
	// Calls inside mispredicted regions push garbage frames onto the
	// speculative RAS; checkpoint recovery must restore it, or later
	// returns on the correct path would mispredict. The near-zero
	// mispredict rate under heavy branch misprediction is the evidence.
	p, err := workload.Generate(workload.Spec{
		Name: "callbranch", Seed: 29,
		TargetInsts: 40_000,
		Branches: []workload.BranchSpec{
			{Kind: workload.KindBernoulli, Bias: 0.5}, // mispredicts a lot
			{Kind: workload.KindCall, CallDepth: 2},
		},
		BlockLen: 6, Chains: 4,
		LoadFrac: 0.15, StoreFrac: 0.08, PredDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig() // PolyPath: divergences clone the RAS too
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyArchState(); err != nil {
		t.Fatal(err)
	}
	rate := float64(m.Stats.IndirectMispredicts) / float64(max64(m.Stats.IndirectJumps, 1))
	if rate > 0.02 {
		t.Errorf("return mispredict rate %.3f under branch recovery, want ~0", rate)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
