package pipeline

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// machinecheck.go implements the simulator's machine-check layer: instead
// of killing the process, every internal-corruption detection on the
// cycle-level hot path — a violated invariant found by the auditor, a
// bookkeeping panic in the pipeline or its resource managers (rename free
// list, checkpoint pool, CTX-tag allocator) — surfaces as a typed
// *MachineCheckError from Run/RunContext, carrying the cycle number, the
// program counter involved, and a snapshot of the machine's resource state.
// Just as the PolyPath hardware must keep architected state correct while
// wrong paths execute speculatively, the simulator contains its own faults:
// a corrupted Machine is abandoned, never trusted, and never fatal to the
// embedding process (polyserve quarantines the offending job instead).

// AuditLevel selects how aggressively the machine audits its own
// micro-architectural invariants (see audit.go for the checked set).
// Auditing never changes simulated results: it only detects corruption, so
// tables are bit-identical across levels.
type AuditLevel int

const (
	// AuditOff disables invariant sweeps (the default; corruption is still
	// contained when it trips a bookkeeping check, but not actively hunted).
	AuditOff AuditLevel = iota
	// AuditCommit sweeps after every cycle that retires at least one
	// instruction: corruption is caught before much wrong state commits.
	AuditCommit
	// AuditCycle sweeps after every cycle: corruption is caught the cycle
	// it happens. This is the chaos-testing and debugging mode.
	AuditCycle
)

var auditLevelNames = map[AuditLevel]string{
	AuditOff:    "off",
	AuditCommit: "commit",
	AuditCycle:  "cycle",
}

func (l AuditLevel) String() string {
	if s, ok := auditLevelNames[l]; ok {
		return s
	}
	return fmt.Sprintf("auditlevel(%d)", int(l))
}

// ParseAuditLevel resolves the canonical spellings "off", "commit" and
// "cycle" (the empty string means off).
func ParseAuditLevel(s string) (AuditLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off":
		return AuditOff, nil
	case "commit":
		return AuditCommit, nil
	case "cycle":
		return AuditCycle, nil
	default:
		return AuditOff, cfgErr("Audit", "unknown audit level %q (valid: off, commit, cycle)", s)
	}
}

// StateSnapshot summarizes the machine's resource accounting at the moment
// a machine check fired, for post-mortem triage without the Machine itself.
type StateSnapshot struct {
	Cycle           uint64 `json:"cycle"`
	Committed       uint64 `json:"committed"`
	WindowLen       int    `json:"window_len"`
	LivePaths       int    `json:"live_paths"`
	FreeRegs        int    `json:"free_regs"`
	FreeCheckpoints int    `json:"free_checkpoints"`
	Divergences     int    `json:"divergences"`
	CtxTagsInUse    int    `json:"ctx_tags_in_use"`
}

// MachineCheckError reports detected internal corruption of the simulated
// machine: a violated invariant (auditor), a resource-manager bookkeeping
// fault (double free, exhausted pool that was checked as available), or a
// contained runtime panic on the cycle loop. The machine's state is
// untrustworthy past this point; the simulation result must be discarded.
type MachineCheckError struct {
	// Check names the violated invariant (e.g. "free-list", "rob-order",
	// "ctx-refcount", "store-filter", or "panic" for a contained crash).
	Check string
	// Cycle is the simulated cycle at which the check fired.
	Cycle uint64
	// PC is the program counter of the instruction involved (-1 when the
	// fault is not attributable to one instruction).
	PC int
	// Detail describes the specific violation.
	Detail string
	// Snapshot captures the machine's resource accounting at fire time.
	Snapshot StateSnapshot
	// Stack holds the goroutine stack for contained runtime panics (empty
	// for auditor- and bookkeeping-raised checks, whose origin Check/Detail
	// already identify).
	Stack string
}

func (e *MachineCheckError) Error() string {
	if e.PC >= 0 {
		return fmt.Sprintf("pipeline: machine check [%s] at cycle %d pc %d: %s", e.Check, e.Cycle, e.PC, e.Detail)
	}
	return fmt.Sprintf("pipeline: machine check [%s] at cycle %d: %s", e.Check, e.Cycle, e.Detail)
}

// snapshot captures the resource-accounting summary attached to machine
// checks.
func (m *Machine) snapshot() StateSnapshot {
	return StateSnapshot{
		Cycle:           m.cycle,
		Committed:       m.Stats.Committed,
		WindowLen:       len(m.window),
		LivePaths:       m.livePaths,
		FreeRegs:        m.freeList.Available(),
		FreeCheckpoints: m.ckpts.Available(),
		Divergences:     m.divergences,
		CtxTagsInUse:    m.ctxAlloc.InUse(),
	}
}

// machineCheckf raises a machine check: it panics with a fully-populated
// *MachineCheckError, which RunContext's containment recover converts into
// an ordinary error return. Using panic keeps the hot path free of error
// plumbing — the cost is paid only on the (terminal) failure path.
func (m *Machine) machineCheckf(check string, pc int, format string, args ...any) {
	panic(&MachineCheckError{
		Check:    check,
		Cycle:    m.cycle,
		PC:       pc,
		Detail:   fmt.Sprintf(format, args...),
		Snapshot: m.snapshot(),
	})
}

// containMachineCheck converts a recovered panic value into the error the
// simulation returns: *MachineCheckError values pass through, anything else
// (a resource-manager bookkeeping panic, an index fault from corrupted
// state) is wrapped with the machine's context and the crashing stack.
func (m *Machine) containMachineCheck(r any, err *error) {
	if r == nil {
		return
	}
	if mce, ok := r.(*MachineCheckError); ok {
		*err = mce
		return
	}
	*err = &MachineCheckError{
		Check:    "panic",
		Cycle:    m.cycle,
		PC:       -1,
		Detail:   fmt.Sprint(r),
		Snapshot: m.snapshot(),
		Stack:    string(debug.Stack()),
	}
}
