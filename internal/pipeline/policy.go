package pipeline

import (
	"repro/internal/confidence"
	"repro/internal/policy"
)

// polState is the machine-side half of the policy control loop: it tracks
// the stat snapshot at the current epoch's start, accumulates the per-cycle
// live-path sum, and holds the controller plus the setting currently in
// force. All actuation happens at epoch boundaries (policyEpoch), so within
// an epoch the machine is exactly a fixed-policy machine and every
// invariant the auditor checks is unaffected.
type polState struct {
	ctrl        policy.Controller
	epochCycles uint64
	cur         policy.Setting
	epoch       int

	// Snapshot of the cumulative counters at the epoch's first cycle.
	baseCycles    uint64
	baseCommitted uint64
	baseCond      uint64
	baseMispred   uint64
	baseLowConf   uint64
	baseLowConfMp uint64
	// pathSum accumulates live-path occupancy, one sample per cycle.
	pathSum uint64
}

// snapshot derives the completed epoch's EpochStats from the counter
// deltas since the epoch's start.
func (ps *polState) snapshot(m *Machine) policy.EpochStats {
	s := &m.Stats
	dc := s.Cycles - ps.baseCycles
	di := s.Committed - ps.baseCommitted
	db := s.CondBranches - ps.baseCond
	dm := s.Mispredicts - ps.baseMispred
	dl := s.LowConf - ps.baseLowConf
	dlm := s.LowConfMispred - ps.baseLowConfMp
	st := policy.EpochStats{
		Epoch: ps.epoch, Cycles: dc, Committed: di,
		CondBranches: db, Mispredicts: dm, LowConf: dl, LowConfMispred: dlm,
	}
	if dc > 0 {
		st.IPC = float64(di) / float64(dc)
		st.AvgLivePaths = float64(ps.pathSum) / float64(dc)
	}
	if db > 0 {
		st.MispredictRate = float64(dm) / float64(db)
		st.LowConfRate = float64(dl) / float64(db)
	}
	if dl > 0 {
		st.PVN = float64(dlm) / float64(dl)
	}
	return st
}

// rebase starts a new epoch at the current counter values.
func (ps *polState) rebase(m *Machine) {
	s := &m.Stats
	ps.baseCycles = s.Cycles
	ps.baseCommitted = s.Committed
	ps.baseCond = s.CondBranches
	ps.baseMispred = s.Mispredicts
	ps.baseLowConf = s.LowConf
	ps.baseLowConfMp = s.LowConfMispred
	ps.pathSum = 0
}

// buildPolicy constructs the controller for a normalized policy spec and
// applies its initial setting. Called from NewWithArena after the
// confidence estimator exists; a nil return with nil error means no policy
// is configured.
func (m *Machine) buildPolicy() error {
	if m.cfg.Policy.Kind == "" {
		return nil
	}
	ctrl, err := policy.Build(m.cfg.Policy.spec())
	if err != nil {
		return err
	}
	m.pol = &polState{
		ctrl:        ctrl,
		epochCycles: uint64(m.cfg.Policy.EpochCycles),
		cur:         ctrl.Initial(),
	}
	m.applySetting(m.pol.cur)
	return nil
}

// policyEpoch closes the epoch that ended on this cycle: it feeds the
// epoch's deltas to the controller and applies the returned setting, which
// governs every cycle until the next boundary.
func (m *Machine) policyEpoch() {
	st := m.pol.snapshot(m)
	m.Stats.EpochIPC = append(m.Stats.EpochIPC, st.IPC)
	next := m.pol.ctrl.Decide(st)
	m.pol.epoch++
	m.pol.rebase(m)
	if next != m.pol.cur {
		m.Stats.PolicySwitches++
		m.pol.cur = next
		m.applySetting(next)
	}
}

// policyFinalize records the trailing partial epoch when the run halts
// between boundaries. A run whose last cycle lands exactly on a boundary
// has no partial epoch — EpochIPC never carries a zero-length entry.
func (m *Machine) policyFinalize() {
	if m.pol == nil || m.Stats.Cycles == m.pol.baseCycles {
		return
	}
	m.Stats.EpochIPC = append(m.Stats.EpochIPC, m.pol.snapshot(m).IPC)
}

// applySetting actuates the setting's confidence-threshold knob. The
// divergence and fetch-width knobs are not pushed anywhere: fetch reads
// them through policyFetchWidth/divergeAllowed/divergenceLimit every
// cycle, so they take effect at the boundary with no estimator state
// touched.
func (m *Machine) applySetting(s policy.Setting) {
	if ts, ok := m.conf.(confidence.ThresholdSetter); ok {
		ts.SetThreshold(s.ConfThreshold)
	}
}

// divergeAllowed reports whether the policy currently permits divergence
// at all. When it does not, a low-confidence branch is fetched coherently
// by choice — that is not a DivergenceBlocked event, which counts only
// resource exhaustion.
func (m *Machine) divergeAllowed() bool {
	return m.pol == nil || m.pol.cur.MaxDivergences >= 0
}

// divergenceLimit returns the in-force cap on simultaneous divergences
// (0 = unlimited): the policy's positive override, else the config's.
func (m *Machine) divergenceLimit() int {
	if m.pol != nil && m.pol.cur.MaxDivergences > 0 {
		return m.pol.cur.MaxDivergences
	}
	return m.cfg.MaxDivergences
}

// policyFetchWidth returns the in-force fetch bandwidth: the configured
// width, capped by the policy's throttle when one is active.
func (m *Machine) policyFetchWidth() int {
	bw := m.cfg.FetchWidth
	if m.pol != nil && m.pol.cur.FetchWidth > 0 && m.pol.cur.FetchWidth < bw {
		bw = m.pol.cur.FetchWidth
	}
	return bw
}
