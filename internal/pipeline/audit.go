package pipeline

import (
	"repro/internal/ctxtag"
	"repro/internal/isa"
	"repro/internal/rename"
)

// audit.go is the machine-check invariant auditor: an opt-in sweep
// (Config.Audit: off/commit/cycle) over the micro-architectural state that
// detects internal corruption — a free-list desync, an out-of-order ROB, a
// leaked or double-owned CTX history position, a store-buffer filter tag
// that drifted from its path — and raises a typed *MachineCheckError the
// moment it finds one, instead of letting the corruption silently commit
// wrong architectural state or crash the process cycles later.
//
// Every check asserts a property that holds at the end of any cycle of a
// healthy machine, across all modes and fetch policies; the auditor is
// validated by running the benchmark suite under AuditCycle in tests.
// Sweeps only read state: auditing can never change simulated results.

// runAudit sweeps every invariant class and raises a machine check on the
// first violation. It runs at end-of-cycle, when the pipeline stages have
// reached their inter-cycle fixed point.
func (m *Machine) runAudit() {
	if err := m.freeList.AuditConsistency(); err != nil {
		m.machineCheckf("free-list", -1, "%v", err)
	}
	m.auditWindow()
	m.auditPaths()
	m.auditCtxTags()
	m.auditCheckpoints()
	// The SoA scheduler cross-check runs last so the long-standing audits
	// above keep first-report priority on the faults they target.
	m.auditScheduler()
}

// auditWindow verifies ROB discipline: entries in strictly increasing
// program order, no squashed entries lingering, occupancy within bounds,
// per-entry state-machine consistency (a completed producer must have
// published its result; an incomplete one must not read as ready), and that
// every physical register an entry references is still allocated.
func (m *Machine) auditWindow() {
	if len(m.window) > m.cfg.WindowSize {
		m.machineCheckf("rob-order", -1, "window holds %d entries, capacity %d", len(m.window), m.cfg.WindowSize)
	}
	if m.winOff+len(m.window) > len(m.winBuf) {
		m.machineCheckf("rob-order", -1, "window offset %d + length %d exceeds backing array %d", m.winOff, len(m.window), len(m.winBuf))
	}
	var prevSeq uint64
	for i, e := range m.window {
		if e == nil {
			m.machineCheckf("rob-order", -1, "nil window entry at index %d", i)
		}
		if i > 0 && e.seq <= prevSeq {
			m.machineCheckf("rob-order", e.pc, "window order violated: seq %d at index %d after seq %d", e.seq, i, prevSeq)
		}
		prevSeq = e.seq
		if e.killed {
			m.machineCheckf("rob-order", e.pc, "squashed entry seq %d still in the window", e.seq)
		}
		if e.state != stateWaiting && e.state != stateExecuting && e.state != stateDone {
			m.machineCheckf("rob-order", e.pc, "entry seq %d in impossible state %d", e.seq, e.state)
		}
		if e.hasDest {
			if !m.freeList.IsAllocated(e.dstPhys) {
				m.machineCheckf("free-list", e.pc, "entry seq %d destination p%d is not allocated", e.seq, e.dstPhys)
			}
			if !m.freeList.IsAllocated(e.oldPhys) {
				m.machineCheckf("free-list", e.pc, "entry seq %d previous mapping p%d is not allocated", e.seq, e.oldPhys)
			}
			if e.state == stateDone && !m.physReady.Test(e.dstPhys) {
				m.machineCheckf("wakeup", e.pc, "entry seq %d completed but p%d never published (dropped wakeup)", e.seq, e.dstPhys)
			}
			if e.state != stateDone && m.physReady.Test(e.dstPhys) {
				m.machineCheckf("wakeup", e.pc, "entry seq %d incomplete but p%d reads ready (spurious wakeup)", e.seq, e.dstPhys)
			}
		}
		if e.readsSrc1 && !m.freeList.IsAllocated(e.src1Phys) {
			m.machineCheckf("free-list", e.pc, "entry seq %d source p%d is not allocated", e.seq, e.src1Phys)
		}
		if e.readsSrc2 && !m.freeList.IsAllocated(e.src2Phys) {
			m.machineCheckf("free-list", e.pc, "entry seq %d source p%d is not allocated", e.seq, e.src2Phys)
		}
		if (e.isLoad || e.isStore) && e.addrReady && (e.addr < 0 || e.addr >= len(m.mem)) {
			m.machineCheckf("store-filter", e.pc, "entry seq %d effective address %d outside memory [0,%d)", e.seq, e.addr, len(m.mem))
		}
	}
	// Architected references: the retirement map must only name allocated
	// registers (these hold the committed architectural values).
	for r := 0; r < isa.NumRegs; r++ {
		if p := m.retireMap.Get(isa.Reg(r)); !m.freeList.IsAllocated(p) {
			m.machineCheckf("free-list", -1, "retirement map r%d names unallocated p%d", r, p)
		}
	}
}

// auditPaths verifies the CTX table: the live-path count, per-path rename
// map references, and the pending-branch refcount that gates zombie-slot
// reclamation.
func (m *Machine) auditPaths() {
	live := 0
	for id, p := range m.paths {
		if p == nil {
			continue
		}
		live++
		if p.id != id {
			m.machineCheckf("ctx-refcount", p.fetchPC, "path in slot %d believes it is slot %d", id, p.id)
		}
		if !p.live {
			m.machineCheckf("ctx-refcount", p.fetchPC, "released path still occupies CTX slot %d", id)
		}
		// A fresh child path has no rename map until its creating divergent
		// branch renames (the map copies are cloned at that point); a nil
		// map is therefore legal, but a present map must be sound.
		if p.regmap != nil {
			for r := 0; r < isa.NumRegs; r++ {
				if phys := p.regmap.Get(isa.Reg(r)); !m.freeList.IsAllocated(phys) {
					m.machineCheckf("free-list", p.fetchPC, "path %d maps r%d to unallocated p%d", id, r, phys)
				}
			}
		}
		if p.pendingBranches < 0 {
			m.machineCheckf("ctx-refcount", p.fetchPC, "path %d pending-branch refcount is %d", id, p.pendingBranches)
		}
	}
	if live != m.livePaths {
		m.machineCheckf("ctx-refcount", -1, "CTX table holds %d paths but the live counter says %d", live, m.livePaths)
	}

	// Recompute each path's unresolved-control refcount from the window and
	// the front end; a drifted count reclaims (or leaks) CTX slots.
	pending := m.auditScratchInts(len(m.paths))
	count := func(pp *path, pc int) {
		if m.paths[pp.id] != pp {
			m.machineCheckf("ctx-refcount", pc, "unresolved control instruction on released path %d", pp.id)
		}
		pending[pp.id]++
	}
	for _, e := range m.window {
		if (e.isBranch || e.isIndirect) && !e.resolved {
			count(e.path, e.pc)
		}
	}
	for _, latch := range m.frontEnd {
		for _, f := range latch {
			if f.isBranch || f.isIndirect {
				count(f.path, f.pc)
			}
		}
	}
	for id, p := range m.paths {
		if p != nil && p.pendingBranches != pending[id] {
			m.machineCheckf("ctx-refcount", p.fetchPC, "path %d pending-branch refcount %d, recounted %d", id, p.pendingBranches, pending[id])
		}
	}
}

// auditCtxTags verifies CTX-tag accounting: every allocated history
// position must be owned by exactly one in-flight divergent branch, the
// divergence counter must match the unresolved divergences in flight, every
// valid position in any in-flight tag must be backed by an allocated
// position, and every in-flight instruction must carry exactly its path's
// tag — the property the store buffer's path-ancestry forwarding filter and
// the kill buses rely on.
func (m *Machine) auditCtxTags() {
	owners := m.auditScratchInts(m.ctxAlloc.Width())
	divergences := 0
	claim := func(pos, pc int) {
		if pos < 0 || pos >= len(owners) {
			m.machineCheckf("ctx-refcount", pc, "divergent branch owns impossible history position %d", pos)
		}
		owners[pos]++
	}
	for _, e := range m.window {
		if e.diverged {
			claim(e.histPos, e.pc)
			if !e.resolved {
				divergences++
			}
		}
		m.auditTag(e.tag, e.pc)
		if m.paths[e.path.id] == e.path && e.tag != e.path.tag {
			m.machineCheckf("store-filter", e.pc, "entry seq %d tag %s drifted from path %d tag %s", e.seq, e.tag, e.path.id, e.path.tag)
		}
	}
	for _, latch := range m.frontEnd {
		for _, f := range latch {
			if f.diverged {
				claim(f.histPos, f.pc)
				divergences++
			}
			m.auditTag(f.tag, f.pc)
			if m.paths[f.path.id] == f.path && f.tag != f.path.tag {
				m.machineCheckf("store-filter", f.pc, "front-end instruction seq %d tag %s drifted from path %d tag %s", f.seq, f.tag, f.path.id, f.path.tag)
			}
		}
	}
	for _, p := range m.paths {
		if p != nil {
			m.auditTag(p.tag, p.fetchPC)
		}
	}
	if divergences != m.divergences {
		m.machineCheckf("ctx-refcount", -1, "divergence counter %d, recounted %d unresolved divergences in flight", m.divergences, divergences)
	}
	inUse := 0
	for pos, n := range owners {
		if n > 1 {
			m.machineCheckf("ctx-refcount", -1, "history position %d owned by %d divergent branches", pos, n)
		}
		if n == 1 {
			inUse++
			if !m.ctxAlloc.Allocated(pos) {
				m.machineCheckf("ctx-refcount", -1, "history position %d owned by a divergent branch but free in the allocator", pos)
			}
		}
	}
	if got := m.ctxAlloc.InUse(); got != inUse {
		m.machineCheckf("ctx-refcount", -1, "allocator holds %d history positions, %d owned by in-flight branches (leak)", got, inUse)
	}
}

// auditTag checks that every valid position of an in-flight tag is backed
// by an allocated history position (a set-but-freed bit means a commit-bus
// broadcast was lost, or the tag itself was corrupted), and that no
// position beyond the configured history width is valid.
func (m *Machine) auditTag(t ctxtag.Tag, pc int) {
	width := m.ctxAlloc.Width()
	for pos := 0; pos < width; pos++ {
		if t.Valid(pos) && !m.ctxAlloc.Allocated(pos) {
			m.machineCheckf("ctx-refcount", pc, "tag %s holds freed history position %d", t, pos)
		}
	}
	for pos := width; pos < ctxtag.MaxPositions; pos++ {
		if t.Valid(pos) {
			m.machineCheckf("ctx-refcount", pc, "tag %s holds position %d beyond the configured width %d", t, pos, width)
		}
	}
}

// auditCheckpoints verifies the checkpoint pool: every unresolved branch's
// checkpoint handle must name a distinct live slot, the pool's books must
// balance, and every register a checkpoint could restore must be allocated.
func (m *Machine) auditCheckpoints() {
	held := m.auditScratchBools(m.ckpts.Capacity())
	n := 0
	for _, e := range m.window {
		if !e.hasCkpt {
			continue
		}
		n++
		if e.ckptID < 0 || e.ckptID >= m.ckpts.Capacity() {
			m.machineCheckf("checkpoint", e.pc, "entry seq %d holds impossible checkpoint %d", e.seq, e.ckptID)
		}
		if !m.ckpts.Used(e.ckptID) {
			m.machineCheckf("checkpoint", e.pc, "entry seq %d holds released checkpoint %d", e.seq, e.ckptID)
		}
		if held[e.ckptID] {
			m.machineCheckf("checkpoint", e.pc, "checkpoint %d held by two entries", e.ckptID)
		}
		held[e.ckptID] = true
	}
	if used := m.ckpts.Capacity() - m.ckpts.Available(); used != n {
		m.machineCheckf("checkpoint", -1, "checkpoint pool says %d slots used, %d held by window entries (leak)", used, n)
	}
	m.ckpts.ForEachUsed(func(id int, mp *rename.Map) {
		for r := 0; r < isa.NumRegs; r++ {
			if phys := mp.Get(isa.Reg(r)); !m.freeList.IsAllocated(phys) {
				m.machineCheckf("free-list", -1, "checkpoint %d maps r%d to unallocated p%d", id, r, phys)
			}
		}
	})
}

// auditScratchInts returns a zeroed int scratch slice of length n, reusing
// the machine's audit buffer so sweeps allocate only on first use.
func (m *Machine) auditScratchInts(n int) []int {
	if cap(m.auditInts) < n {
		m.auditInts = make([]int, n)
	}
	s := m.auditInts[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// auditScratchBools returns a zeroed bool scratch slice of length n.
func (m *Machine) auditScratchBools(n int) []bool {
	if cap(m.auditBools) < n {
		m.auditBools = make([]bool, n)
	}
	s := m.auditBools[:n]
	for i := range s {
		s[i] = false
	}
	return s
}
