package pipeline

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa/progfuzz"
)

// auditConfigs returns machine variants that exercise every major
// micro-architectural mechanism the auditor sweeps: monopath recovery,
// selective eager execution, dual-path, deep divergence trees, and the
// cache/MRC extensions.
func auditConfigs() map[string]Config {
	mono := DefaultConfig()
	mono.Mode = Monopath
	mono.Confidence.Kind = ConfAlwaysHigh

	see := DefaultConfig()

	dual := DefaultConfig()
	dual.MaxDivergences = 1

	small := DefaultConfig()
	small.WindowSize = 32
	small.PhysRegs = 80
	small.Checkpoints = 8
	small.MaxPaths = 4
	small.CtxHistoryWidth = 3

	caches := DefaultConfig()
	caches.EnableDCache = true
	caches.DCache = cache.Config{Sets: 32, Ways: 2, LineWords: 8}
	caches.DCacheMissLatency = 12
	caches.EnableICache = true
	caches.ICache = cache.Config{Sets: 64, Ways: 2, LineWords: 8}
	caches.ICacheMissLatency = 12
	caches.EnableMRC = true

	return map[string]Config{
		"monopath": mono,
		"see":      see,
		"dualpath": dual,
		"small":    small,
		"caches":   caches,
	}
}

// TestAuditCleanAcrossConfigs runs the per-cycle invariant sweep against
// healthy machines of every flavor: the auditor must stay silent and the
// architectural contract must hold.
func TestAuditCleanAcrossConfigs(t *testing.T) {
	prog := sumProgram(300)
	for name, cfg := range auditConfigs() {
		cfg.Audit = AuditCycle
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("%s: audit tripped on a healthy machine: %v", name, err)
		}
		if err := m.VerifyArchState(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestAuditCleanRandomPrograms fuzzes the auditor against random control
// flow (calls, returns, indirect jumps, loops cut by MaxInsts).
func TestAuditCleanRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 6; i++ {
		prog := progfuzz.Generate(rng, 120)
		cfg := DefaultConfig()
		cfg.MaxInsts = 20_000
		cfg.Audit = AuditCycle
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("program %d: audit tripped on a healthy machine: %v", i, err)
		}
	}
}

// TestAuditLevelsBitIdentical verifies the central auditing contract:
// the audit level observes, never perturbs — every simulated statistic is
// identical across off/commit/cycle.
func TestAuditLevelsBitIdentical(t *testing.T) {
	prog := sumProgram(400)
	type key struct {
		cycles, committed, mispred, killed uint64
		divergences                        uint64
		forwards                           uint64
	}
	var got [3]key
	for i, lvl := range []AuditLevel{AuditOff, AuditCommit, AuditCycle} {
		cfg := DefaultConfig()
		cfg.Audit = lvl
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("audit=%s: %v", lvl, err)
		}
		got[i] = key{
			cycles:      m.Stats.Cycles,
			committed:   m.Stats.Committed,
			mispred:     m.Stats.Mispredicts,
			killed:      m.Stats.Killed,
			divergences: m.Stats.Divergences,
			forwards:    m.Stats.StoreForwards,
		}
	}
	if got[0] != got[1] || got[0] != got[2] {
		t.Fatalf("audit level changed results: off=%+v commit=%+v cycle=%+v", got[0], got[1], got[2])
	}
}

// TestInjectedFaultsYieldMachineChecks injects each micro-architectural
// fault kind into a running machine under per-cycle auditing and requires a
// typed *MachineCheckError — never a process-killing panic, never a
// silently wrong result.
func TestInjectedFaultsYieldMachineChecks(t *testing.T) {
	kinds := []Fault{FaultRenameBitFlip, FaultRenameMapFlip, FaultDropWakeup, FaultFreeListFlip, FaultCtxTagFlip}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Audit = AuditCycle
			m, err := New(sumProgram(400), cfg)
			if err != nil {
				t.Fatal(err)
			}
			injected := false
			m.SetFaultHook(func(cycle uint64) {
				if !injected && cycle >= 50 {
					injected = m.InjectFault(kind, cycle*2654435761)
				}
			})
			err = m.Run()
			if !injected {
				t.Fatalf("fault %s never found an injection victim", kind)
			}
			var mce *MachineCheckError
			if !errors.As(err, &mce) {
				t.Fatalf("fault %s: want *MachineCheckError, got %v", kind, err)
			}
			if mce.Cycle == 0 || mce.Snapshot.Cycle == 0 {
				t.Fatalf("fault %s: machine check missing cycle context: %+v", kind, mce)
			}
			if mce.Check == "" || mce.Detail == "" {
				t.Fatalf("fault %s: machine check missing check/detail: %+v", kind, mce)
			}
		})
	}
}

// TestForeignPanicContained verifies that an arbitrary panic on the cycle
// loop (not a raised machine check) is converted into a *MachineCheckError
// carrying the crashing stack, instead of escaping to the caller.
func TestForeignPanicContained(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(sumProgram(50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultHook(func(cycle uint64) {
		if cycle == 10 {
			panic("injected chaos")
		}
	})
	err = m.Run()
	var mce *MachineCheckError
	if !errors.As(err, &mce) {
		t.Fatalf("want contained *MachineCheckError, got %v", err)
	}
	if mce.Check != "panic" {
		t.Fatalf("want check=panic, got %q", mce.Check)
	}
	if !strings.Contains(mce.Detail, "injected chaos") {
		t.Fatalf("detail lost the panic value: %q", mce.Detail)
	}
	if mce.Stack == "" {
		t.Fatal("contained panic lost its stack trace")
	}
}

// TestParseAuditLevel covers the flag-parsing surface.
func TestParseAuditLevel(t *testing.T) {
	for in, want := range map[string]AuditLevel{
		"":       AuditOff,
		"off":    AuditOff,
		"commit": AuditCommit,
		"Cycle":  AuditCycle,
		" cycle": AuditCycle,
	} {
		got, err := ParseAuditLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseAuditLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseAuditLevel("paranoid"); err == nil {
		t.Fatal("ParseAuditLevel accepted an unknown level")
	}
	if s := AuditCommit.String(); s != "commit" {
		t.Fatalf("AuditCommit.String() = %q", s)
	}
}

// TestAuditExcludedFromCanonicalHash pins the memoization contract: configs
// differing only in audit level share one canonical identity, because
// auditing cannot change results.
func TestAuditExcludedFromCanonicalHash(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.Audit = AuditCycle
	ha, err := CanonicalHash(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := CanonicalHash(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("audit level leaked into the canonical config hash")
	}
	bad := DefaultConfig()
	bad.WindowSize = -1
	if _, err := CanonicalHash(bad); err == nil {
		t.Fatal("CanonicalHash accepted an invalid config")
	}
}
