package pipeline

import "repro/internal/isa"

// mrc.go implements a Misprediction Recovery Cache comparator (Bondi,
// Nanda and Dutta, MICRO '96 — related work [1] in the PolyPath paper):
// a small cache of decoded instruction sequences that begin at previous
// misprediction-recovery targets. On a later recovery to the same target,
// the cached sequence is injected directly into the last front-end latch,
// hiding the front-end refill portion of the misprediction penalty (the
// paper evaluated the idea in an in-order CISC pipeline; here it rides on
// the same out-of-order machine as monopath and SEE so the three recovery
// strategies are comparable).
//
// The cache stores instruction indices only: the machine re-reads the
// static program at injection time, so stale-code hazards cannot arise
// (the program is immutable).

// mrcEntry caches the straight-line decoded sequence starting at a
// recovery target. Seq holds up to mrcLineLen instruction indices,
// following fall-through and direct-jump flow only (a conditional branch
// or indirect jump ends the line, as in the original design where lines
// end at hard-to-predecode points).
type mrcEntry struct {
	target int
	seq    []int32
	valid  bool
}

// mrcCache is a direct-mapped recovery cache.
type mrcCache struct {
	entries []mrcEntry
	mask    uint64
	hits    uint64
	misses  uint64
}

const mrcLineLen = 8

func newMRC(indexBits int) *mrcCache {
	n := 1 << uint(indexBits)
	return &mrcCache{entries: make([]mrcEntry, n), mask: uint64(n - 1)}
}

// lookup returns the cached sequence for a recovery target.
func (c *mrcCache) lookup(target int) ([]int32, bool) {
	e := &c.entries[uint64(target)&c.mask]
	if e.valid && e.target == target {
		c.hits++
		return e.seq, true
	}
	c.misses++
	return nil, false
}

// fill captures the decoded straight-line sequence at target from the
// static program.
func (c *mrcCache) fill(p *isa.Program, target int) {
	var seq []int32
	pc := target
	for len(seq) < mrcLineLen && pc >= 0 && pc < len(p.Code) {
		in := p.Code[pc]
		// Lines end before instructions whose successor is not statically
		// known (or that terminate execution).
		if in.Op.IsCondBranch() || in.Op.IsIndirect() || in.Op == isa.Halt {
			break
		}
		seq = append(seq, int32(pc))
		if in.Op == isa.Jmp || in.Op == isa.Call {
			pc = int(in.Target)
		} else {
			pc++
		}
	}
	if len(seq) == 0 {
		return
	}
	e := &c.entries[uint64(target)&c.mask]
	*e = mrcEntry{target: target, seq: seq, valid: true}
}

// injectMRC services a misprediction recovery from the MRC: if the
// recovery target hits in the cache, the cached decoded instructions are
// fed straight into the last front-end latch (skipping the fetch/decode
// stages) and the path's fetch resumes after them. Returns whether an
// injection happened.
//
// Injection re-drives the normal fetch bookkeeping (sequence numbers,
// RAS pushes for calls, tags) so the injected instructions are
// indistinguishable from normally fetched ones downstream.
func (m *Machine) injectMRC(p *path) bool {
	if m.mrc == nil {
		return false
	}
	target := p.fetchPC
	seq, ok := m.mrc.lookup(target)
	if !ok {
		m.mrc.fill(m.prog, target)
		return false
	}
	last := len(m.frontEnd) - 1
	if len(m.frontEnd[last]) > 0 {
		return false // latch busy; fall back to normal refetch
	}
	injected := m.allocLatch()
	for _, pci := range seq {
		pc := int(pci)
		in := m.prog.Code[pc]
		m.seq++
		f := m.allocFinst()
		f.seq, f.pc, f.inst, f.path, f.tag = m.seq, pc, in, p, p.tag
		switch in.Op {
		case isa.Call:
			p.ras.Push(pc + 1)
		}
		injected = append(injected, f)
	}
	if len(injected) == 0 {
		m.freeLatch(injected)
		return false
	}
	m.Stats.Fetched += uint64(len(injected))
	m.Stats.MRCInjections++
	m.frontEnd[last] = injected
	// Resume fetch after the cached line, following the line's own flow.
	lastPC := int(seq[len(seq)-1])
	lastIn := m.prog.Code[lastPC]
	if lastIn.Op == isa.Jmp || lastIn.Op == isa.Call {
		p.fetchPC = int(lastIn.Target)
	} else {
		p.fetchPC = lastPC + 1
	}
	return true
}
