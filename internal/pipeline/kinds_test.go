package pipeline

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bpred"
	"repro/internal/confidence"
)

// TestKindRoundTrips drives every registered kind (and every enumerator of
// the closed enums) through String() and back through its parser,
// exhaustively: a spelling printed anywhere in the system must parse
// everywhere in the system.
func TestKindRoundTrips(t *testing.T) {
	for _, name := range bpred.Kinds() {
		got, err := ParsePredictorKind(name)
		if err != nil || got.String() != name {
			t.Errorf("predictor %q: round-trip got %v, err %v", name, got, err)
		}
	}
	for _, name := range confidence.Kinds() {
		got, err := ParseConfidenceKind(name)
		if err != nil || got.String() != name {
			t.Errorf("confidence %q: round-trip got %v, err %v", name, got, err)
		}
	}
	for m := range modeNames {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("mode %v: round-trip got %v, err %v", m, got, err)
		}
	}
	for p := range fetchPolicyNames {
		got, err := ParseFetchPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("fetch policy %v: round-trip got %v, err %v", p, got, err)
		}
	}
}

// TestBuiltinKindsRegistered pins the deprecated constants to the
// registries: every constant this package exports must resolve to a
// registered kind, and the closed enums keep their exhaustive name tables.
func TestBuiltinKindsRegistered(t *testing.T) {
	for _, k := range []PredictorKind{PredGshare, PredBimodal, PredStatic, PredOracle, PredLocal, PredCombining, PredTage} {
		if _, ok := bpred.Lookup(string(k)); !ok {
			t.Errorf("predictor constant %q is not registered", k)
		}
	}
	for _, k := range []ConfidenceKind{ConfJRS, ConfOracle, ConfAlwaysHigh, ConfAlwaysLow, ConfAdaptive} {
		if _, ok := confidence.Lookup(string(k)); !ok {
			t.Errorf("confidence constant %q is not registered", k)
		}
	}
	if len(modeNames) != int(PolyPath)+1 {
		t.Errorf("modeNames has %d entries, enum has %d", len(modeNames), int(PolyPath)+1)
	}
	if len(fetchPolicyNames) != int(FetchRoundRobin)+1 {
		t.Errorf("fetchPolicyNames has %d entries, enum has %d", len(fetchPolicyNames), int(FetchRoundRobin)+1)
	}
}

func TestParseKindNormalizesSpelling(t *testing.T) {
	k, err := ParsePredictorKind("  GShare ")
	if err != nil || k != PredGshare {
		t.Fatalf("case/space-insensitive parse: got %v, err %v", k, err)
	}
}

// TestParseKindUnknownIsTypedAndDescriptive requires unknown-kind errors
// to enumerate the live registry contents — including kinds (like tage)
// added after the original closed enums — so the message can never drift
// from the accepted set.
func TestParseKindUnknownIsTypedAndDescriptive(t *testing.T) {
	_, err := ParseConfidenceKind("grapefruit")
	if err == nil {
		t.Fatal("expected error")
	}
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConfigError, got %T", err)
	}
	if !strings.Contains(err.Error(), "jrs") || !strings.Contains(err.Error(), "adaptive") {
		t.Errorf("error should list valid spellings, got %q", err)
	}

	_, err = ParsePredictorKind("grapefruit")
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range bpred.Kinds() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("predictor error should list registered kind %q, got %q", want, err)
		}
	}
}
