package pipeline

import (
	"errors"
	"strings"
	"testing"
)

// TestKindRoundTrips drives every enumerator of every kind through
// String() and back through its parser, exhaustively: a spelling printed
// anywhere in the system must parse everywhere in the system.
func TestKindRoundTrips(t *testing.T) {
	for k := range predictorNames {
		got, err := ParsePredictorKind(k.String())
		if err != nil || got != k {
			t.Errorf("predictor %v: round-trip got %v, err %v", k, got, err)
		}
	}
	for k := range confidenceNames {
		got, err := ParseConfidenceKind(k.String())
		if err != nil || got != k {
			t.Errorf("confidence %v: round-trip got %v, err %v", k, got, err)
		}
	}
	for m := range modeNames {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("mode %v: round-trip got %v, err %v", m, got, err)
		}
	}
	for p := range fetchPolicyNames {
		got, err := ParseFetchPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("fetch policy %v: round-trip got %v, err %v", p, got, err)
		}
	}
}

// TestKindTablesExhaustive pins the name tables to the enum definitions:
// adding an enumerator without a spelling (or vice versa) fails here.
func TestKindTablesExhaustive(t *testing.T) {
	if len(predictorNames) != int(PredCombining)+1 {
		t.Errorf("predictorNames has %d entries, enum has %d", len(predictorNames), int(PredCombining)+1)
	}
	if len(confidenceNames) != int(ConfAdaptive)+1 {
		t.Errorf("confidenceNames has %d entries, enum has %d", len(confidenceNames), int(ConfAdaptive)+1)
	}
	if len(modeNames) != int(PolyPath)+1 {
		t.Errorf("modeNames has %d entries, enum has %d", len(modeNames), int(PolyPath)+1)
	}
	if len(fetchPolicyNames) != int(FetchRoundRobin)+1 {
		t.Errorf("fetchPolicyNames has %d entries, enum has %d", len(fetchPolicyNames), int(FetchRoundRobin)+1)
	}
}

func TestParseKindNormalizesSpelling(t *testing.T) {
	k, err := ParsePredictorKind("  GShare ")
	if err != nil || k != PredGshare {
		t.Fatalf("case/space-insensitive parse: got %v, err %v", k, err)
	}
}

func TestParseKindUnknownIsTypedAndDescriptive(t *testing.T) {
	_, err := ParseConfidenceKind("grapefruit")
	if err == nil {
		t.Fatal("expected error")
	}
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConfigError, got %T", err)
	}
	if !strings.Contains(err.Error(), "jrs") || !strings.Contains(err.Error(), "adaptive") {
		t.Errorf("error should list valid spellings, got %q", err)
	}
}
