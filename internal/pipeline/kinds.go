package pipeline

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the single source of truth for the textual spellings of the
// configuration enumerations (mode, predictor kind, confidence kind, fetch
// policy). Every command-line flag and every wire-format field parses and
// prints through these tables, so a spelling accepted by one tool is
// accepted by all of them.

var modeNames = map[Mode]string{
	Monopath: "monopath",
	PolyPath: "polypath",
}

var predictorNames = map[PredictorKind]string{
	PredGshare:    "gshare",
	PredBimodal:   "bimodal",
	PredStatic:    "static",
	PredOracle:    "oracle",
	PredLocal:     "local",
	PredCombining: "combining",
}

var confidenceNames = map[ConfidenceKind]string{
	ConfJRS:        "jrs",
	ConfOracle:     "oracle",
	ConfAlwaysHigh: "always-high",
	ConfAlwaysLow:  "always-low",
	ConfAdaptive:   "adaptive",
}

var fetchPolicyNames = map[FetchPolicy]string{
	FetchExponential: "exponential",
	FetchRoundRobin:  "round-robin",
}

func (k PredictorKind) String() string {
	if s, ok := predictorNames[k]; ok {
		return s
	}
	return fmt.Sprintf("predictor(%d)", int(k))
}

func (k ConfidenceKind) String() string {
	if s, ok := confidenceNames[k]; ok {
		return s
	}
	return fmt.Sprintf("confidence(%d)", int(k))
}

func (p FetchPolicy) String() string {
	if s, ok := fetchPolicyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("fetchpolicy(%d)", int(p))
}

// parseKind resolves a case-insensitive spelling against a name table,
// returning a typed error listing the accepted spellings on failure.
func parseKind[K comparable](field, s string, names map[K]string) (K, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	for k, name := range names {
		if name == want {
			return k, nil
		}
	}
	var zero K
	valid := make([]string, 0, len(names))
	for _, name := range names {
		valid = append(valid, name)
	}
	sort.Strings(valid)
	return zero, &ConfigError{Field: field, Reason: fmt.Sprintf("unknown value %q (valid: %s)", s, strings.Join(valid, ", "))}
}

// ParseMode parses a mode spelling ("monopath", "polypath").
func ParseMode(s string) (Mode, error) {
	return parseKind("Mode", s, modeNames)
}

// ParsePredictorKind parses a predictor spelling ("gshare", "bimodal",
// "static", "oracle", "local", "combining").
func ParsePredictorKind(s string) (PredictorKind, error) {
	return parseKind("Predictor.Kind", s, predictorNames)
}

// ParseConfidenceKind parses a confidence-estimator spelling ("jrs",
// "oracle", "always-high", "always-low", "adaptive").
func ParseConfidenceKind(s string) (ConfidenceKind, error) {
	return parseKind("Confidence.Kind", s, confidenceNames)
}

// ParseFetchPolicy parses a fetch-policy spelling ("exponential",
// "round-robin").
func ParseFetchPolicy(s string) (FetchPolicy, error) {
	return parseKind("FetchPolicy", s, fetchPolicyNames)
}
