package pipeline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bpred"
	"repro/internal/confidence"
)

// This file is the single source of truth for the textual spellings of the
// configuration enumerations. Mode and fetch policy are closed enums with
// name tables here; predictor and confidence kinds are open sets
// enumerated from the bpred/confidence registries, so a kind registered
// anywhere (built-in or at runtime) is immediately parseable by every
// command-line flag and wire-format field — the accepted set can never
// drift from the registered set.

var modeNames = map[Mode]string{
	Monopath: "monopath",
	PolyPath: "polypath",
}

var fetchPolicyNames = map[FetchPolicy]string{
	FetchExponential: "exponential",
	FetchRoundRobin:  "round-robin",
}

func (k PredictorKind) String() string { return string(k) }

func (k ConfidenceKind) String() string { return string(k) }

func (p FetchPolicy) String() string {
	if s, ok := fetchPolicyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("fetchpolicy(%d)", int(p))
}

// parseKind resolves a case-insensitive spelling against a name table,
// returning a typed error listing the accepted spellings on failure.
func parseKind[K comparable](field, s string, names map[K]string) (K, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	for k, name := range names {
		if name == want {
			return k, nil
		}
	}
	var zero K
	valid := make([]string, 0, len(names))
	for _, name := range names {
		valid = append(valid, name)
	}
	sort.Strings(valid)
	return zero, &ConfigError{Field: field, Reason: fmt.Sprintf("unknown value %q (valid: %s)", s, strings.Join(valid, ", "))}
}

// ParseMode parses a mode spelling ("monopath", "polypath").
func ParseMode(s string) (Mode, error) {
	return parseKind("Mode", s, modeNames)
}

// ParsePredictorKind resolves a predictor spelling against bpred.Registry.
// The error for an unknown spelling lists the currently registered kinds.
func ParsePredictorKind(s string) (PredictorKind, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	if _, ok := bpred.Lookup(want); ok {
		return PredictorKind(want), nil
	}
	return "", &ConfigError{Field: "Predictor.Kind", Reason: fmt.Sprintf("unknown value %q (registered: %s)", s, strings.Join(bpred.Kinds(), ", "))}
}

// ParseConfidenceKind resolves a confidence-estimator spelling against
// confidence.Registry; unknown spellings list the registered kinds.
func ParseConfidenceKind(s string) (ConfidenceKind, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	if _, ok := confidence.Lookup(want); ok {
		return ConfidenceKind(want), nil
	}
	return "", &ConfigError{Field: "Confidence.Kind", Reason: fmt.Sprintf("unknown value %q (registered: %s)", s, strings.Join(confidence.Kinds(), ", "))}
}

// PredictorKinds returns the currently registered predictor kinds, sorted
// (for CLI help text and docs).
func PredictorKinds() []string { return bpred.Kinds() }

// ConfidenceKinds returns the currently registered confidence-estimator
// kinds, sorted.
func ConfidenceKinds() []string { return confidence.Kinds() }

// ParseFetchPolicy parses a fetch-policy spelling ("exponential",
// "round-robin").
func ParseFetchPolicy(s string) (FetchPolicy, error) {
	return parseKind("FetchPolicy", s, fetchPolicyNames)
}
