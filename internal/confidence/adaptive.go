package confidence

// Adaptive wraps an underlying estimator and monitors its PVN (predictive
// value of a negative test: the fraction of low-confidence estimates that
// are actually mispredictions) over a sliding window of resolved branches.
// When the observed PVN drops below MinPVN, the estimator reverts to strict
// monopath behaviour (always signalling high confidence) while continuing
// to monitor its *shadow* decisions, and re-enables eager execution once
// the shadow PVN recovers.
//
// This is exactly the mechanism the paper derives from the m88ksim anomaly
// (Sec. 5.1): "a successful branch confidence estimator for SEE should be
// able to monitor its performance dynamically and revert back to strict
// monopath execution if it makes too many errors."
type Adaptive struct {
	inner Estimator
	// MinPVN is the PVN below which eager execution is disabled.
	minPVN float64
	// window is the number of low-confidence resolutions over which PVN is
	// measured.
	window int

	lowRing  []bool // ring buffer: was each recent low-confidence estimate a mispredict?
	ringPos  int
	ringFill int
	misses   int // mispredicts among the ring contents
	disabled bool
}

// AdaptiveConfig configures an Adaptive estimator.
type AdaptiveConfig struct {
	// MinPVN disables divergence while measured PVN is below it.
	// The paper's data suggests ~0.30: every benchmark with PVN >= 40%
	// gains from SEE, m88ksim at 16% loses.
	MinPVN float64
	// Window is the number of recent low-confidence branches tracked.
	Window int
}

// NewAdaptive wraps inner with PVN monitoring.
func NewAdaptive(inner Estimator, cfg AdaptiveConfig) *Adaptive {
	if cfg.MinPVN <= 0 || cfg.MinPVN >= 1 {
		panic("confidence: adaptive MinPVN must be in (0,1)")
	}
	if cfg.Window < 8 {
		panic("confidence: adaptive window must be at least 8")
	}
	return &Adaptive{
		inner:   inner,
		minPVN:  cfg.MinPVN,
		window:  cfg.Window,
		lowRing: make([]bool, cfg.Window),
	}
}

// Disabled reports whether the estimator is currently suppressing
// divergence (monopath fallback active).
func (a *Adaptive) Disabled() bool { return a.disabled }

// Estimate implements Estimator. While disabled it reports high confidence
// regardless of the inner estimate; the inner (shadow) estimate continues
// to be trained and monitored through Update.
func (a *Adaptive) Estimate(pc int, hist uint64, predTaken bool, hint Hint) bool {
	if a.inner.Estimate(pc, hist, predTaken, hint) {
		return true
	}
	return a.disabled
}

// Update implements Estimator. It trains the inner estimator and tracks
// the shadow decision's accuracy to adapt the disabled state.
func (a *Adaptive) Update(pc int, hist uint64, predTaken bool, correct bool) {
	shadowLow := !a.inner.Estimate(pc, hist, predTaken, Hint{})
	a.inner.Update(pc, hist, predTaken, correct)
	if !shadowLow {
		return
	}
	// Record this low-confidence event in the ring.
	miss := !correct
	if a.ringFill == a.window {
		if a.lowRing[a.ringPos] {
			a.misses--
		}
	} else {
		a.ringFill++
	}
	a.lowRing[a.ringPos] = miss
	if miss {
		a.misses++
	}
	a.ringPos = (a.ringPos + 1) % a.window
	// Only adapt once the window is reasonably full.
	if a.ringFill >= a.window/2 {
		pvn := float64(a.misses) / float64(a.ringFill)
		a.disabled = pvn < a.minPVN
	}
}

// PVN returns the currently measured shadow PVN and the number of samples
// backing it.
func (a *Adaptive) PVN() (pvn float64, samples int) {
	if a.ringFill == 0 {
		return 0, 0
	}
	return float64(a.misses) / float64(a.ringFill), a.ringFill
}

// StateBytes implements Estimator: the inner table plus the monitor ring
// (1 bit per entry) and counters.
func (a *Adaptive) StateBytes() int { return a.inner.StateBytes() + a.window/8 + 4 }

// SetThreshold implements ThresholdSetter by delegating to the inner
// estimator when it supports threshold actuation.
func (a *Adaptive) SetThreshold(t int) {
	if ts, ok := a.inner.(ThresholdSetter); ok {
		ts.SetThreshold(t)
	}
}

// Reset implements Estimator.
func (a *Adaptive) Reset() {
	a.inner.Reset()
	for i := range a.lowRing {
		a.lowRing[i] = false
	}
	a.ringPos, a.ringFill, a.misses = 0, 0, 0
	a.disabled = false
}
