package confidence

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Spec is the kind-agnostic description of a confidence estimator: the
// named fields cover the built-in JRS/adaptive family (they are part of the
// frozen polypath/v1 wire format), and Params is the open extension point
// for estimators registered from outside this package. A registered kind's
// Normalize canonicalizes the fields it does not use, so specs describing
// the same estimator compare and hash identically.
type Spec struct {
	Kind          string
	IndexBits     int
	CtrBits       int
	Threshold     int
	EnhancedIndex bool
	// AdaptiveMinPVN / AdaptiveWindow configure the adaptive kind.
	AdaptiveMinPVN float64
	AdaptiveWindow int
	// Params carries extra integer parameters for registered estimators
	// that need more than the named fields. nil and empty are equivalent.
	Params map[string]int
}

// SpecError reports a spec field that violates a registered estimator's
// constraints; the pipeline converts it into its typed config error.
type SpecError struct {
	Kind   string
	Field  string
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("confidence: %s: %s: %s", e.Kind, e.Field, e.Reason)
}

// Entry describes one registered estimator kind. Normalize validates the
// spec and returns its canonical form (inert fields zeroed, defaults
// filled); New constructs the estimator from a normalized spec; StateBytes
// returns the hardware budget in bytes for a normalized spec (nil = 0).
type Entry struct {
	Kind       string
	Doc        string
	Normalize  func(Spec) (Spec, error)
	New        func(Spec) (Estimator, error)
	StateBytes func(Spec) int
}

type registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

var reg = &registry{entries: make(map[string]Entry)}

// Register adds an estimator kind; duplicate or malformed registrations
// are errors, never silent replacement.
func Register(e Entry) error {
	e.Kind = strings.ToLower(strings.TrimSpace(e.Kind))
	if e.Kind == "" {
		return fmt.Errorf("confidence: register: empty kind")
	}
	if e.New == nil {
		return fmt.Errorf("confidence: register %q: nil factory", e.Kind)
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, dup := reg.entries[e.Kind]; dup {
		return fmt.Errorf("confidence: register %q: already registered", e.Kind)
	}
	reg.entries[e.Kind] = e
	return nil
}

// MustRegister is Register for init-time built-ins; it panics on error.
func MustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// Lookup returns the entry for a kind (case-insensitive).
func Lookup(kind string) (Entry, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	e, ok := reg.entries[strings.ToLower(strings.TrimSpace(kind))]
	return e, ok
}

// Kinds returns the registered kind spellings, sorted.
func Kinds() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]string, 0, len(reg.entries))
	for k := range reg.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Normalize validates s against its kind's constraints and returns the
// canonical spec. The returned spec never aliases s.Params.
func Normalize(s Spec) (Spec, error) {
	e, ok := Lookup(s.Kind)
	if !ok {
		return Spec{}, fmt.Errorf("confidence: unknown estimator kind %q (registered: %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
	s.Kind = e.Kind
	ns, err := e.Normalize(s)
	if err != nil {
		return Spec{}, err
	}
	if len(ns.Params) == 0 {
		ns.Params = nil
	} else {
		clone := make(map[string]int, len(ns.Params))
		for k, v := range ns.Params {
			clone[k] = v
		}
		ns.Params = clone
	}
	return ns, nil
}

// Build normalizes s and constructs the estimator.
func Build(s Spec) (Estimator, error) {
	ns, err := Normalize(s)
	if err != nil {
		return nil, err
	}
	e, _ := Lookup(ns.Kind)
	return e.New(ns)
}

// SpecStateBytes normalizes s and returns its hardware budget in bytes.
func SpecStateBytes(s Spec) (int, error) {
	ns, err := Normalize(s)
	if err != nil {
		return 0, err
	}
	e, _ := Lookup(ns.Kind)
	if e.StateBytes == nil {
		return 0, nil
	}
	return e.StateBytes(ns), nil
}

// rejectParams is shared by the built-in kinds, none of which use the open
// Params map.
func rejectParams(kind string, s Spec) error {
	if len(s.Params) > 0 {
		names := make([]string, 0, len(s.Params))
		for k := range s.Params {
			names = append(names, k)
		}
		sort.Strings(names)
		return &SpecError{Kind: kind, Field: "Params", Reason: fmt.Sprintf("kind accepts no extra parameters (got %s)", strings.Join(names, ", "))}
	}
	return nil
}

// normalizeJRSFields validates the JRS table sizing shared by the jrs and
// adaptive kinds.
func normalizeJRSFields(kind string, s Spec) (Spec, error) {
	if err := rejectParams(kind, s); err != nil {
		return Spec{}, err
	}
	if s.IndexBits < 1 || s.IndexBits > 28 {
		return Spec{}, &SpecError{Kind: kind, Field: "IndexBits", Reason: fmt.Sprintf("%d out of [1,28]", s.IndexBits)}
	}
	if s.CtrBits < 1 || s.CtrBits > 8 {
		return Spec{}, &SpecError{Kind: kind, Field: "CtrBits", Reason: fmt.Sprintf("%d out of [1,8]", s.CtrBits)}
	}
	if max := (1 << uint(s.CtrBits)) - 1; s.Threshold < 0 || s.Threshold > max {
		return Spec{}, &SpecError{Kind: kind, Field: "Threshold", Reason: fmt.Sprintf("%d exceeds the %d-bit counter maximum %d (0 selects saturation)", s.Threshold, s.CtrBits, max)}
	}
	return s, nil
}

func jrsFromSpec(s Spec) *JRS {
	return NewJRS(JRSConfig{
		IndexBits:     s.IndexBits,
		CtrBits:       s.CtrBits,
		Threshold:     s.Threshold,
		EnhancedIndex: s.EnhancedIndex,
	})
}

// degenerateEntry registers a stateless estimator kind: every sizing field
// is inert and canonicalized away.
func degenerateEntry(kind, doc string, est Estimator) Entry {
	return Entry{
		Kind: kind,
		Doc:  doc,
		Normalize: func(s Spec) (Spec, error) {
			if err := rejectParams(kind, s); err != nil {
				return Spec{}, err
			}
			return Spec{Kind: kind}, nil
		},
		New: func(Spec) (Estimator, error) { return est, nil },
	}
}

func init() {
	MustRegister(Entry{
		Kind: "jrs",
		Doc:  "Jacobsen-Rotenberg-Smith resetting counters (the paper's estimator)",
		Normalize: func(s Spec) (Spec, error) {
			ns, err := normalizeJRSFields("jrs", s)
			if err != nil {
				return Spec{}, err
			}
			ns.AdaptiveMinPVN = 0
			ns.AdaptiveWindow = 0
			return ns, nil
		},
		New:        func(s Spec) (Estimator, error) { return jrsFromSpec(s), nil },
		StateBytes: func(s Spec) int { return (1 << uint(s.IndexBits)) * s.CtrBits / 8 },
	})
	MustRegister(Entry{
		Kind: "adaptive",
		Doc:  "JRS wrapped with the Sec. 5.1 PVN monitor (reverts to monopath when PVN drops)",
		Normalize: func(s Spec) (Spec, error) {
			ns, err := normalizeJRSFields("adaptive", s)
			if err != nil {
				return Spec{}, err
			}
			if ns.AdaptiveMinPVN < 0 || ns.AdaptiveMinPVN >= 1 {
				return Spec{}, &SpecError{Kind: "adaptive", Field: "AdaptiveMinPVN", Reason: fmt.Sprintf("%g out of [0,1) (0 selects the default 0.30)", ns.AdaptiveMinPVN)}
			}
			if ns.AdaptiveWindow != 0 && ns.AdaptiveWindow < 8 {
				return Spec{}, &SpecError{Kind: "adaptive", Field: "AdaptiveWindow", Reason: fmt.Sprintf("%d must be 0 (default 256) or >= 8", ns.AdaptiveWindow)}
			}
			if ns.AdaptiveMinPVN == 0 {
				ns.AdaptiveMinPVN = 0.30
			}
			if ns.AdaptiveWindow == 0 {
				ns.AdaptiveWindow = 256
			}
			return ns, nil
		},
		New: func(s Spec) (Estimator, error) {
			return NewAdaptive(jrsFromSpec(s), AdaptiveConfig{MinPVN: s.AdaptiveMinPVN, Window: s.AdaptiveWindow}), nil
		},
		StateBytes: func(s Spec) int {
			return (1<<uint(s.IndexBits))*s.CtrBits/8 + s.AdaptiveWindow/8 + 4
		},
	})
	MustRegister(degenerateEntry("oracle", "perfect estimator: low confidence exactly on mispredictions", Oracle{}))
	MustRegister(degenerateEntry("always-high", "never diverge (monopath behaviour)", AlwaysHigh{}))
	MustRegister(degenerateEntry("always-low", "diverge on every branch resources permit", AlwaysLow{}))
}
