package confidence

import (
	"math/rand"
	"testing"
)

func TestJRSResettingCounterBehaviour(t *testing.T) {
	j := NewJRS(JRSConfig{IndexBits: 10, CtrBits: 1})
	pc, hist := 42, uint64(0)
	// Fresh counters are saturated: an index that has never seen a
	// misprediction reports high confidence (avoids spurious divergence
	// on cold contexts).
	if !j.Estimate(pc, hist, true, Hint{}) {
		t.Error("fresh JRS entry must be high confidence (saturated init)")
	}
	// A misprediction resets: low confidence.
	j.Update(pc, hist, true, false)
	if j.Estimate(pc, hist, true, Hint{}) {
		t.Error("after a mispredict, JRS must reset to low confidence")
	}
	// One correct prediction re-saturates a 1-bit counter.
	j.Update(pc, hist, true, true)
	if !j.Estimate(pc, hist, true, Hint{}) {
		t.Error("after a correct prediction, 1-bit JRS is high confidence")
	}
}

func TestJRS4BitNeedsSaturation(t *testing.T) {
	j := NewJRS(JRSConfig{IndexBits: 8, CtrBits: 4})
	pc, hist := 7, uint64(3)
	j.Update(pc, hist, false, false) // reset the saturated-init counter
	for i := 0; i < 14; i++ {
		j.Update(pc, hist, false, true)
		if j.Estimate(pc, hist, false, Hint{}) {
			t.Fatalf("4-bit JRS high-confidence after only %d corrects", i+1)
		}
	}
	j.Update(pc, hist, false, true)
	if !j.Estimate(pc, hist, false, Hint{}) {
		t.Error("4-bit JRS should be high confidence at saturation (15)")
	}
}

func TestJRSThresholdOverride(t *testing.T) {
	j := NewJRS(JRSConfig{IndexBits: 8, CtrBits: 4, Threshold: 2})
	pc, hist := 1, uint64(1)
	j.Update(pc, hist, true, false) // reset the saturated-init counter
	j.Update(pc, hist, true, true)
	if j.Estimate(pc, hist, true, Hint{}) {
		t.Error("one correct < threshold 2")
	}
	j.Update(pc, hist, true, true)
	if !j.Estimate(pc, hist, true, Hint{}) {
		t.Error("two corrects reach threshold 2")
	}
}

func TestJRSEnhancedIndexSeparatesByPrediction(t *testing.T) {
	j := NewJRS(JRSConfig{IndexBits: 12, CtrBits: 1, EnhancedIndex: true})
	pc, hist := 9, uint64(0b1100)
	// Reset the predicted-taken context only: the predicted-not-taken
	// context must be unaffected because the prediction is in the index.
	j.Update(pc, hist, true, false)
	if j.Estimate(pc, hist, true, Hint{}) {
		t.Error("reset context should be low confidence")
	}
	if !j.Estimate(pc, hist, false, Hint{}) {
		t.Error("enhanced index must separate by predicted outcome")
	}

	// Classic indexing conflates the two contexts.
	c := NewJRS(JRSConfig{IndexBits: 12, CtrBits: 1, EnhancedIndex: false})
	c.Update(pc, hist, true, false)
	if c.Estimate(pc, hist, false, Hint{}) {
		t.Error("classic index should not separate by predicted outcome")
	}
}

func TestJRSStateBytes(t *testing.T) {
	// Paper baseline: 16k 1-bit counters = 2 kB.
	j := NewJRS(JRSConfig{IndexBits: 14, CtrBits: 1})
	if j.StateBytes() != 2048 {
		t.Errorf("StateBytes = %d, want 2048", j.StateBytes())
	}
	j4 := NewJRS(JRSConfig{IndexBits: 14, CtrBits: 4})
	if j4.StateBytes() != 8192 {
		t.Errorf("4-bit StateBytes = %d, want 8192", j4.StateBytes())
	}
}

func TestJRSReset(t *testing.T) {
	j := NewJRS(JRSConfig{IndexBits: 8, CtrBits: 1})
	j.Update(3, 0, true, false)
	j.Reset()
	if !j.Estimate(3, 0, true, Hint{}) {
		t.Error("reset should re-saturate counters (high confidence)")
	}
}

func TestJRSConfigValidation(t *testing.T) {
	bad := []JRSConfig{
		{IndexBits: 0, CtrBits: 1},
		{IndexBits: 30, CtrBits: 1},
		{IndexBits: 8, CtrBits: 0},
		{IndexBits: 8, CtrBits: 9},
		{IndexBits: 8, CtrBits: 1, Threshold: 2},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			NewJRS(cfg)
		}()
	}
}

// The paper's key observation: on a stream of isolated mispredictions
// (highly biased branches, m88ksim-like), 1-bit JRS low-confidence signals
// have LOW PVN; on a random branch (go-like) they have ~50% PVN. This test
// verifies the mechanism our m88ksim reproduction relies on.
func TestJRSPVNCharacter(t *testing.T) {
	measure := func(bias float64, seed int64) float64 {
		j := NewJRS(JRSConfig{IndexBits: 14, CtrBits: 1, EnhancedIndex: true})
		rng := rand.New(rand.NewSource(seed))
		hist := uint64(0)
		var low, lowMiss int
		pc := 77
		for i := 0; i < 50000; i++ {
			taken := rng.Float64() < bias
			pred := true // a bias-aware static prediction: majority direction
			correct := pred == taken
			if !j.Estimate(pc, hist, pred, Hint{}) {
				low++
				if !correct {
					lowMiss++
				}
			}
			j.Update(pc, hist, pred, correct)
			hist = hist<<1 | map[bool]uint64{true: 1, false: 0}[taken]
		}
		if low == 0 {
			return 0
		}
		return float64(lowMiss) / float64(low)
	}
	biased := measure(0.95, 11) // m88ksim-like
	random := measure(0.50, 12) // go-like
	if biased >= 0.30 {
		t.Errorf("biased-branch PVN = %.2f, want < 0.30 (isolated misses)", biased)
	}
	if random <= 0.35 {
		t.Errorf("random-branch PVN = %.2f, want > 0.35 (clustered misses)", random)
	}
}

func TestOracle(t *testing.T) {
	var o Oracle
	if o.Estimate(1, 0, true, Hint{Known: true, Taken: false}) {
		t.Error("oracle must flag a wrong prediction as low confidence")
	}
	if !o.Estimate(1, 0, true, Hint{Known: true, Taken: true}) {
		t.Error("oracle must flag a correct prediction as high confidence")
	}
	if !o.Estimate(1, 0, true, Hint{}) {
		t.Error("oracle defaults to high confidence when outcome unknown")
	}
	o.Update(1, 0, true, true)
	if o.StateBytes() != 0 {
		t.Error("oracle has no state")
	}
	o.Reset()
}

func TestDegenerateEstimators(t *testing.T) {
	var hi AlwaysHigh
	var lo AlwaysLow
	if !hi.Estimate(5, 9, true, Hint{}) {
		t.Error("AlwaysHigh")
	}
	if lo.Estimate(5, 9, true, Hint{}) {
		t.Error("AlwaysLow")
	}
	hi.Update(0, 0, false, false)
	lo.Update(0, 0, false, false)
	if hi.StateBytes() != 0 || lo.StateBytes() != 0 {
		t.Error("degenerate estimators have no state")
	}
	hi.Reset()
	lo.Reset()
}

func TestAdaptiveDisablesOnLowPVN(t *testing.T) {
	a := NewAdaptive(NewJRS(JRSConfig{IndexBits: 12, CtrBits: 1}), AdaptiveConfig{MinPVN: 0.30, Window: 64})
	rng := rand.New(rand.NewSource(5))
	hist := uint64(0)
	// m88ksim-like stream: bias 0.96, prediction always the majority.
	for i := 0; i < 20000; i++ {
		taken := rng.Float64() < 0.96
		a.Update(100, hist, true, taken)
		hist = hist << 1
		if taken {
			hist |= 1
		}
	}
	if !a.Disabled() {
		pvn, n := a.PVN()
		t.Errorf("adaptive should disable on isolated-miss stream (pvn=%.2f over %d)", pvn, n)
	}
	// While disabled it must report high confidence even when the inner
	// estimator says low.
	if !a.Estimate(100, hist, true, Hint{}) {
		t.Error("disabled adaptive must report high confidence")
	}
}

func TestAdaptiveStaysEnabledOnHighPVN(t *testing.T) {
	a := NewAdaptive(NewJRS(JRSConfig{IndexBits: 12, CtrBits: 1}), AdaptiveConfig{MinPVN: 0.30, Window: 64})
	rng := rand.New(rand.NewSource(6))
	hist := uint64(0)
	// go-like stream: random outcomes, prediction fixed.
	for i := 0; i < 20000; i++ {
		taken := rng.Intn(2) == 0
		a.Update(200, hist, true, taken)
		hist = hist << 1
		if taken {
			hist |= 1
		}
	}
	if a.Disabled() {
		pvn, n := a.PVN()
		t.Errorf("adaptive should stay enabled on clustered-miss stream (pvn=%.2f over %d)", pvn, n)
	}
}

func TestAdaptiveRecovers(t *testing.T) {
	a := NewAdaptive(NewJRS(JRSConfig{IndexBits: 10, CtrBits: 1}), AdaptiveConfig{MinPVN: 0.30, Window: 32})
	rng := rand.New(rand.NewSource(7))
	hist := uint64(0)
	push := func(taken bool) {
		a.Update(300, hist, true, taken)
		hist = hist << 1
		if taken {
			hist |= 1
		}
	}
	for i := 0; i < 10000; i++ {
		push(rng.Float64() < 0.97)
	}
	if !a.Disabled() {
		t.Fatal("setup: adaptive should be disabled")
	}
	for i := 0; i < 10000; i++ {
		push(rng.Intn(2) == 0)
	}
	if a.Disabled() {
		t.Error("adaptive should re-enable once shadow PVN recovers")
	}
}

func TestAdaptiveReset(t *testing.T) {
	a := NewAdaptive(NewJRS(JRSConfig{IndexBits: 10, CtrBits: 1}), AdaptiveConfig{MinPVN: 0.30, Window: 32})
	for i := 0; i < 100; i++ {
		a.Update(1, 0, true, i%10 == 0)
	}
	a.Reset()
	if a.Disabled() {
		t.Error("reset must clear disabled state")
	}
	if _, n := a.PVN(); n != 0 {
		t.Error("reset must clear monitor window")
	}
	if a.StateBytes() <= 0 {
		t.Error("state accounting")
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	inner := NewJRS(JRSConfig{IndexBits: 8, CtrBits: 1})
	for i, cfg := range []AdaptiveConfig{{MinPVN: 0, Window: 64}, {MinPVN: 1.5, Window: 64}, {MinPVN: 0.3, Window: 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			NewAdaptive(inner, cfg)
		}()
	}
}
