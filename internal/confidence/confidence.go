// Package confidence implements branch confidence estimation for selective
// eager execution, centered on the Jacobsen-Rotenberg-Smith (JRS) one-level
// estimator with resetting counters used in the paper (Sec. 4.2), plus the
// oracle and degenerate estimators used for calibration, and the adaptive
// PVN-monitoring estimator the paper's Sec. 5.1 proposes as future work.
//
// The paper's two JRS modifications are both implemented:
//
//   - 1-bit resetting counters instead of the 4-bit counters Jacobsen et al
//     advocate (higher PVN, the design parameter that matters for SEE);
//   - enhanced indexing that includes the speculative outcome of the
//     current branch in the global history used to index the counter table.
package confidence

// Hint optionally carries the actual branch outcome to an estimator.
type Hint struct {
	// Known reports whether the actual outcome of the branch is known at
	// estimation time. Only the oracle estimator uses it; the pipeline can
	// supply it when fetch is on the architecturally correct path.
	Known bool
	// Taken is the actual outcome (meaningful only if Known).
	Taken bool
}

// Estimator assesses the quality of an individual branch prediction.
// Estimate returns true for high confidence (follow the prediction,
// monopath style) and false for low confidence (diverge and eagerly
// execute both successor paths).
type Estimator interface {
	Estimate(pc int, hist uint64, predTaken bool, hint Hint) bool
	// Update trains the estimator at branch resolution with whether the
	// prediction was correct. hist and predTaken must be the values that
	// were live at estimation time.
	Update(pc int, hist uint64, predTaken bool, correct bool)
	// StateBytes returns the estimator's hardware budget in bytes (for the
	// equal-area comparison of Fig. 9).
	StateBytes() int
	// Reset clears learned state.
	Reset()
}

// JRS is the one-level resetting-counter estimator of Jacobsen, Rotenberg
// and Smith (MICRO '96). Each counter counts correct predictions since the
// last misprediction at that index; a branch is high-confidence when its
// counter has reached the threshold.
type JRS struct {
	indexBits int
	ctrBits   int
	threshold uint8
	baseThr   uint8 // configured threshold, restored by SetThreshold(0)/Reset
	enhanced  bool  // include predTaken in the index (the paper's enhancement)
	mask      uint64
	table     []uint8
	maxCtr    uint8
}

// JRSConfig configures a JRS estimator.
type JRSConfig struct {
	// IndexBits is log2 of the counter table size. The paper sizes this
	// equal to the branch predictor's table.
	IndexBits int
	// CtrBits is the counter width; the paper found 1-bit counters give
	// the best PVN for SEE (Jacobsen et al used 4).
	CtrBits int
	// Threshold is the counter value at which a prediction counts as high
	// confidence. Defaults to the counter maximum (saturation) when 0.
	Threshold int
	// EnhancedIndex includes the speculative outcome of the current branch
	// in the history used to index the table (paper Sec. 4.2: "resulted in
	// a substantial performance improvement").
	EnhancedIndex bool
}

// NewJRS creates a JRS estimator.
func NewJRS(cfg JRSConfig) *JRS {
	if cfg.IndexBits < 1 || cfg.IndexBits > 28 {
		panic("confidence: JRS index bits out of range [1,28]")
	}
	if cfg.CtrBits < 1 || cfg.CtrBits > 8 {
		panic("confidence: JRS counter bits out of range [1,8]")
	}
	maxCtr := uint8(1)<<uint(cfg.CtrBits) - 1
	thr := uint8(cfg.Threshold)
	if cfg.Threshold == 0 {
		thr = maxCtr
	}
	if thr > maxCtr {
		panic("confidence: JRS threshold exceeds counter maximum")
	}
	j := &JRS{
		indexBits: cfg.IndexBits,
		ctrBits:   cfg.CtrBits,
		threshold: thr,
		baseThr:   thr,
		enhanced:  cfg.EnhancedIndex,
		mask:      (1 << uint(cfg.IndexBits)) - 1,
		table:     make([]uint8, 1<<uint(cfg.IndexBits)),
		maxCtr:    maxCtr,
	}
	j.Reset()
	return j
}

func (j *JRS) index(pc int, hist uint64, predTaken bool) uint64 {
	if j.enhanced {
		hist <<= 1
		if predTaken {
			hist |= 1
		}
	}
	return (uint64(pc) ^ hist) & j.mask
}

// Estimate implements Estimator.
func (j *JRS) Estimate(pc int, hist uint64, predTaken bool, _ Hint) bool {
	return j.table[j.index(pc, hist, predTaken)] >= j.threshold
}

// Update implements Estimator: correct predictions saturate the counter
// upward; a misprediction resets it to zero.
func (j *JRS) Update(pc int, hist uint64, predTaken bool, correct bool) {
	i := j.index(pc, hist, predTaken)
	if correct {
		if j.table[i] < j.maxCtr {
			j.table[i]++
		}
	} else {
		j.table[i] = 0
	}
}

// StateBytes implements Estimator.
func (j *JRS) StateBytes() int { return len(j.table) * j.ctrBits / 8 }

// ThresholdSetter is implemented by estimators whose high-confidence
// threshold can be actuated at runtime (the policy controller's
// conf_threshold knob). Estimators without a meaningful threshold simply
// do not implement it and the knob is inert for them.
type ThresholdSetter interface {
	// SetThreshold changes the high-confidence threshold: t > 0 sets
	// threshold t (clamped to the estimator's maximum), t == 0 restores the
	// configured threshold, and t < 0 selects counter saturation.
	SetThreshold(t int)
}

// SetThreshold implements ThresholdSetter. Only the comparison threshold
// changes; the counter table is untouched, so actuation at an epoch
// boundary carries no hidden retraining cost.
func (j *JRS) SetThreshold(t int) {
	switch {
	case t == 0:
		j.threshold = j.baseThr
	case t < 0:
		j.threshold = j.maxCtr
	case t > int(j.maxCtr):
		j.threshold = j.maxCtr
	default:
		j.threshold = uint8(t)
	}
}

// Reset implements Estimator. Counters initialize saturated (high
// confidence): an index that has never seen a misprediction is treated as
// confident, so unvisited (cold) contexts — abundant on wrong-path fetch
// streams — do not trigger spurious divergences.
func (j *JRS) Reset() {
	j.threshold = j.baseThr
	for i := range j.table {
		j.table[i] = j.maxCtr
	}
}

// Oracle is the perfect confidence estimator of Sec. 5.1 ("gshare/oracle"):
// it signals low confidence exactly when the prediction is wrong. It needs
// the actual outcome via Hint; when the outcome is unknown (wrong-path
// fetch) it reports high confidence, which is harmless because those
// instructions are killed anyway.
type Oracle struct{}

// Estimate implements Estimator.
func (Oracle) Estimate(_ int, _ uint64, predTaken bool, hint Hint) bool {
	if !hint.Known {
		return true
	}
	return predTaken == hint.Taken
}

// Update implements Estimator.
func (Oracle) Update(int, uint64, bool, bool) {}

// StateBytes implements Estimator.
func (Oracle) StateBytes() int { return 0 }

// Reset implements Estimator.
func (Oracle) Reset() {}

// AlwaysHigh reports high confidence for every branch; running PolyPath
// with it degenerates to the monopath architecture.
type AlwaysHigh struct{}

// Estimate implements Estimator.
func (AlwaysHigh) Estimate(int, uint64, bool, Hint) bool { return true }

// Update implements Estimator.
func (AlwaysHigh) Update(int, uint64, bool, bool) {}

// StateBytes implements Estimator.
func (AlwaysHigh) StateBytes() int { return 0 }

// Reset implements Estimator.
func (AlwaysHigh) Reset() {}

// AlwaysLow reports low confidence for every branch: maximal eagerness,
// bounded only by the machine's context resources. Useful as a limit study
// of divergence pressure.
type AlwaysLow struct{}

// Estimate implements Estimator.
func (AlwaysLow) Estimate(int, uint64, bool, Hint) bool { return false }

// Update implements Estimator.
func (AlwaysLow) Update(int, uint64, bool, bool) {}

// StateBytes implements Estimator.
func (AlwaysLow) StateBytes() int { return 0 }

// Reset implements Estimator.
func (AlwaysLow) Reset() {}
