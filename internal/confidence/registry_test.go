package confidence

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestConfRegistryBuiltins(t *testing.T) {
	kinds := Kinds()
	if !sort.StringsAreSorted(kinds) {
		t.Errorf("Kinds() not sorted: %v", kinds)
	}
	for _, want := range []string{"jrs", "adaptive", "oracle", "always-high", "always-low"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("built-in kind %q not registered", want)
		}
	}
}

func TestConfRegisterRejectsBadEntries(t *testing.T) {
	factory := func(Spec) (Estimator, error) { return AlwaysHigh{}, nil }
	norm := func(s Spec) (Spec, error) { return s, nil }
	cases := []struct {
		name string
		e    Entry
	}{
		{"empty kind", Entry{Normalize: norm, New: factory}},
		{"nil factory", Entry{Kind: "conf-test-nilfactory", Normalize: norm}},
		{"duplicate", Entry{Kind: "jrs", Normalize: norm, New: factory}},
		{"case-folded duplicate", Entry{Kind: " JRS ", Normalize: norm, New: factory}},
	}
	for _, tc := range cases {
		if err := Register(tc.e); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestConfNormalizeCanonicalizesDegenerateKinds(t *testing.T) {
	// Inert sizing on a stateless kind is canonicalized away entirely, so
	// two spellings of "always-high" are one spec (and one canonical hash
	// upstream).
	a, err := Normalize(Spec{Kind: "always-high", IndexBits: 11, CtrBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Normalize(Spec{Kind: "ALWAYS-HIGH", Threshold: 3, EnhancedIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, Spec{Kind: "always-high"}) {
		t.Errorf("degenerate normalization not canonical: %+v vs %+v", a, b)
	}
}

func TestConfNormalizeJRSBounds(t *testing.T) {
	cases := []struct {
		field string
		spec  Spec
	}{
		{"IndexBits", Spec{Kind: "jrs", IndexBits: 0, CtrBits: 1}},
		{"IndexBits", Spec{Kind: "jrs", IndexBits: 29, CtrBits: 1}},
		{"CtrBits", Spec{Kind: "jrs", IndexBits: 11, CtrBits: 9}},
		{"Threshold", Spec{Kind: "jrs", IndexBits: 11, CtrBits: 2, Threshold: 4}},
		{"Params", Spec{Kind: "jrs", IndexBits: 11, CtrBits: 1, Params: map[string]int{"x": 1}}},
		{"AdaptiveMinPVN", Spec{Kind: "adaptive", IndexBits: 11, CtrBits: 1, AdaptiveMinPVN: 1.0}},
		{"AdaptiveWindow", Spec{Kind: "adaptive", IndexBits: 11, CtrBits: 1, AdaptiveWindow: 3}},
	}
	for _, tc := range cases {
		_, err := Normalize(tc.spec)
		var se *SpecError
		if !errors.As(err, &se) || se.Field != tc.field {
			t.Errorf("spec %+v: want SpecError on %s, got %v", tc.spec, tc.field, err)
		}
	}
}

func TestConfNormalizeFillsAdaptiveDefaults(t *testing.T) {
	ns, err := Normalize(Spec{Kind: "adaptive", IndexBits: 11, CtrBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ns.AdaptiveMinPVN != 0.30 || ns.AdaptiveWindow != 256 {
		t.Errorf("adaptive defaults not filled: %+v", ns)
	}
	// JRS zeroes the adaptive fields it does not use.
	ns, err = Normalize(Spec{Kind: "jrs", IndexBits: 11, CtrBits: 1, AdaptiveMinPVN: 0.9, AdaptiveWindow: 512})
	if err != nil {
		t.Fatal(err)
	}
	if ns.AdaptiveMinPVN != 0 || ns.AdaptiveWindow != 0 {
		t.Errorf("jrs must canonicalize inert adaptive fields: %+v", ns)
	}
}

func TestConfNormalizeUnknownKindListsRegistry(t *testing.T) {
	_, err := Normalize(Spec{Kind: "grapefruit"})
	if err == nil || !strings.Contains(err.Error(), "jrs") || !strings.Contains(err.Error(), "always-low") {
		t.Fatalf("unknown kind error should enumerate kinds, got %v", err)
	}
}

func TestConfBuildEveryBuiltin(t *testing.T) {
	for _, kind := range Kinds() {
		est, err := Build(Spec{Kind: kind, IndexBits: 8, CtrBits: 2})
		if err != nil {
			t.Errorf("Build(%q): %v", kind, err)
			continue
		}
		est.Estimate(1, 0, true, Hint{})
		est.Update(1, 0, true, true)
	}
}

func TestConfSpecStateBytes(t *testing.T) {
	// jrs: 2^idx * ctr bits / 8.
	n, err := SpecStateBytes(Spec{Kind: "jrs", IndexBits: 11, CtrBits: 4})
	if err != nil || n != (1<<11)*4/8 {
		t.Errorf("jrs state bytes = %d (err %v)", n, err)
	}
	// adaptive adds the PVN window shift register and counter.
	a, err := SpecStateBytes(Spec{Kind: "adaptive", IndexBits: 11, CtrBits: 4})
	if err != nil || a != (1<<11)*4/8+256/8+4 {
		t.Errorf("adaptive state bytes = %d (err %v)", a, err)
	}
	// Degenerate kinds occupy no storage.
	z, err := SpecStateBytes(Spec{Kind: "always-low"})
	if err != nil || z != 0 {
		t.Errorf("always-low state bytes = %d (err %v)", z, err)
	}
}
