package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func testProg(t *testing.T) *isa.Program {
	t.Helper()
	p, err := workload.Generate(workload.Spec{
		Name: "core-test", Seed: 7, TargetInsts: 40_000,
		Branches: []workload.BranchSpec{
			{Kind: workload.KindBernoulli, Bias: 0.6},
			{Kind: workload.KindLoop, Trip: 4},
		},
		BlockLen: 5, Chains: 4, LoadFrac: 0.2, StoreFrac: 0.1, PredDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNamedConfigsMatchPaperLegend(t *testing.T) {
	mono := ConfigMonopath()
	if mono.Mode != pipeline.Monopath || mono.Confidence.Kind != pipeline.ConfAlwaysHigh {
		t.Error("monopath must never diverge")
	}
	oracle := ConfigOracleBP()
	if oracle.Predictor.Kind != pipeline.PredOracle || oracle.Mode != pipeline.Monopath {
		t.Error("oracle is perfect prediction on the monopath machine")
	}
	see := ConfigSEE()
	if see.Mode != pipeline.PolyPath || see.Confidence.Kind != pipeline.ConfJRS {
		t.Error("SEE is PolyPath with JRS")
	}
	if !see.Confidence.EnhancedIndex || see.Confidence.CtrBits != 1 {
		t.Error("SEE uses the paper's modified JRS: 1-bit counters, enhanced index")
	}
	orcCE := ConfigSEEOracleCE()
	if orcCE.Confidence.Kind != pipeline.ConfOracle || orcCE.Mode != pipeline.PolyPath {
		t.Error("gshare/oracle is PolyPath with the perfect estimator")
	}
	dual := ConfigDualPath()
	if dual.MaxDivergences != 1 {
		t.Error("dual-path restricts to one divergence (3 paths)")
	}
	dualOrc := ConfigDualPathOracleCE()
	if dualOrc.MaxDivergences != 1 || dualOrc.Confidence.Kind != pipeline.ConfOracle {
		t.Error("dual-path oracle config")
	}
	ad := ConfigSEEAdaptive()
	if ad.Confidence.Kind != pipeline.ConfAdaptive {
		t.Error("adaptive config")
	}
}

func TestRunVerifiesAndReports(t *testing.T) {
	p := testProg(t)
	res, err := Run(p, ConfigSEE())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("Run must verify architectural state")
	}
	if res.Program != "core-test" {
		t.Errorf("program name %q", res.Program)
	}
	if res.IPC <= 0 || res.IPC != res.Stats.IPC() {
		t.Errorf("IPC accounting: %v vs %v", res.IPC, res.Stats.IPC())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	p := testProg(t)
	cfg := ConfigSEE()
	cfg.WindowSize = 1
	if _, err := Run(p, cfg); err == nil {
		t.Error("expected config validation error")
	}
}

func TestRunRejectsBadProgram(t *testing.T) {
	p := &isa.Program{Name: "bad", MemWords: 3, Code: []isa.Inst{{Op: isa.Halt}}}
	if _, err := Run(p, ConfigSEE()); err == nil {
		t.Error("expected program validation error")
	}
}

// TestConfigOrdering pins the performance ordering the whole evaluation
// relies on: monopath <= SEE-oracle-CE <= oracle, with real-JRS SEE in
// between monopath and the oracle estimator.
func TestConfigOrdering(t *testing.T) {
	p := testProg(t)
	run := func(cfg Config) float64 {
		res, err := Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	mono := run(ConfigMonopath())
	see := run(ConfigSEE())
	orcCE := run(ConfigSEEOracleCE())
	oracle := run(ConfigOracleBP())
	if !(mono < orcCE && orcCE < oracle) {
		t.Errorf("ordering violated: mono %.3f, SEE/orcCE %.3f, oracle %.3f", mono, orcCE, oracle)
	}
	if see > orcCE {
		t.Errorf("real estimator %.3f cannot beat the perfect estimator %.3f", see, orcCE)
	}
}

// TestSEEGainSeedStability: the go benchmark's SEE gain must be positive
// for multiple workload seeds (guards against tuning to one RNG stream).
func TestSEEGainSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed simulation")
	}
	bm, err := workload.ByName("go", 150_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{104, 777} {
		spec := bm.Spec
		spec.Seed = seed
		p, err := workload.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		mono, err := Run(p, ConfigMonopath())
		if err != nil {
			t.Fatal(err)
		}
		see, err := Run(p, ConfigSEE())
		if err != nil {
			t.Fatal(err)
		}
		if gain := see.IPC/mono.IPC - 1; gain < 0.02 {
			t.Errorf("seed %d: go SEE gain %+.1f%%, want clearly positive", seed, 100*gain)
		}
	}
}
