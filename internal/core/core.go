// Package core is the public API of the PolyPath / Selective Eager
// Execution reproduction: it assembles the pipeline simulator, predictors,
// confidence estimators and workloads into the named machine configurations
// the paper evaluates, and runs simulations.
//
// The configurations of Fig. 8 map onto this API as:
//
//	monopath            -> ConfigMonopath()
//	oracle              -> ConfigOracleBP()
//	gshare/oracle       -> ConfigSEEOracleCE()
//	gshare/JRS          -> ConfigSEE()
//	gshare/oracle/dual  -> ConfigDualPathOracleCE()
//	gshare/JRS/dual     -> ConfigDualPath()
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// Config is the machine configuration; it re-exports the pipeline package
// configuration as the library's public surface.
type Config = pipeline.Config

// PolicySpec re-exports the pipeline's adaptive-policy configuration: the
// optional per-epoch SEE policy controller attached to a Config (see
// internal/policy). The zero value means no controller.
type PolicySpec = pipeline.PolicySpec

// Result holds the outcome of one simulation.
type Result struct {
	Program string
	Config  Config
	Stats   stats.Sim
	// IPC is committed instructions per cycle, the paper's primary metric.
	IPC float64
	// Verified records that the committed architectural state matched the
	// functional reference execution.
	Verified bool
}

// Run simulates prog under cfg and verifies the committed architectural
// state against the functional reference execution.
func Run(prog *isa.Program, cfg Config) (*Result, error) {
	return RunContext(context.Background(), prog, cfg)
}

// RunContext is Run with cooperative cancellation threaded through the
// cycle loop: cancelling (or timing out) the context aborts the simulation
// promptly with the context's error.
func RunContext(ctx context.Context, prog *isa.Program, cfg Config) (*Result, error) {
	return runWithTracer(ctx, prog, cfg, nil)
}

// RunWithTracer is Run with a pipeline tracer attached (e.g. a
// pipeline.PipeTrace collecting per-instruction stage timelines).
func RunWithTracer(prog *isa.Program, cfg Config, tr pipeline.Tracer) (*Result, error) {
	return runWithTracer(context.Background(), prog, cfg, tr)
}

// RunContextTracer combines RunContext and RunWithTracer: cooperative
// cancellation plus an attached pipeline tracer (e.g. an obs.Ring
// capturing a bounded cycle-level event stream). Tracing is observation
// only; the result is bit-identical to an untraced run.
func RunContextTracer(ctx context.Context, prog *isa.Program, cfg Config, tr pipeline.Tracer) (*Result, error) {
	return runWithTracer(ctx, prog, cfg, tr)
}

func runWithTracer(ctx context.Context, prog *isa.Program, cfg Config, tr pipeline.Tracer) (*Result, error) {
	return RunCell(ctx, prog, cfg, tr, nil)
}

// RunCell is the experiment-sweep entry point: RunContextTracer plus
// arena-style buffer recycling. A worker that runs cells back-to-back
// passes the same *pipeline.Arena each time; the machine draws its large
// allocations (memory image, register file, window, scheduler state,
// pools) from the arena and donates them back after a successful,
// verified run. A nil arena degrades to plain allocation. Failed or
// panicked cells never recycle, so their state stays inspectable and the
// arena stays valid.
func RunCell(ctx context.Context, prog *isa.Program, cfg Config, tr pipeline.Tracer, a *pipeline.Arena) (*Result, error) {
	m, err := pipeline.NewWithArena(prog, cfg, a)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		m.SetTracer(tr)
	}
	if err := m.RunContext(ctx); err != nil {
		return nil, fmt.Errorf("core: %s: %w", prog.Name, err)
	}
	if err := m.VerifyArchState(); err != nil {
		return nil, fmt.Errorf("core: %s: architectural state mismatch: %w", prog.Name, err)
	}
	res := &Result{
		Program:  prog.Name,
		Config:   cfg,
		Stats:    m.Stats,
		IPC:      m.Stats.IPC(),
		Verified: true,
	}
	m.Recycle(a)
	return res, nil
}

// ConfigMonopath returns the paper's baseline: a speculative, monopath,
// out-of-order machine with the gshare predictor.
func ConfigMonopath() Config {
	c := pipeline.DefaultConfig()
	c.Mode = pipeline.Monopath
	c.Confidence.Kind = pipeline.ConfAlwaysHigh
	return c
}

// ConfigOracleBP returns the perfect-branch-prediction calibration machine
// ("oracle" in Fig. 8).
func ConfigOracleBP() Config {
	c := ConfigMonopath()
	c.Predictor.Kind = pipeline.PredOracle
	return c
}

// ConfigSEE returns the real SEE machine: gshare plus the JRS confidence
// estimator with the paper's modifications ("gshare/JRS").
func ConfigSEE() Config {
	return pipeline.DefaultConfig()
}

// ConfigSEEOracleCE returns SEE with a perfect confidence estimator
// ("gshare/oracle"): divergence happens exactly on mispredictions.
func ConfigSEEOracleCE() Config {
	c := pipeline.DefaultConfig()
	c.Confidence.Kind = pipeline.ConfOracle
	return c
}

// ConfigDualPath returns the dual-path restriction of Sec. 5.2: at most
// one divergence (3 paths) in flight ("gshare/JRS/dual-path").
func ConfigDualPath() Config {
	c := ConfigSEE()
	c.MaxDivergences = 1
	return c
}

// ConfigDualPathOracleCE returns dual-path with the perfect confidence
// estimator ("gshare/oracle/dual-path").
func ConfigDualPathOracleCE() Config {
	c := ConfigSEEOracleCE()
	c.MaxDivergences = 1
	return c
}

// ConfigSEEAdaptive returns SEE with the PVN-monitoring adaptive estimator
// (the paper's Sec. 5.1 "lesson learned", implemented as an extension).
func ConfigSEEAdaptive() Config {
	c := pipeline.DefaultConfig()
	c.Confidence.Kind = pipeline.ConfAdaptive
	return c
}

// ConfigSEETage returns SEE with the TAGE predictor sized to exactly the
// storage of the default gshare(11) ("tage/JRS"): the iso-storage point the
// Figure 9-TAGE equal-area sweep passes through at 11 budget bits.
func ConfigSEETage() Config {
	c := pipeline.DefaultConfig()
	c.Predictor = pipeline.PredictorSpec{
		Kind:   pipeline.PredTage,
		Params: map[string]int(bpred.TageIsoParams(11)),
	}
	return c
}

// modelConfigs is the single registry of machine-model spellings shared by
// every front end (polysim, polydbg, polyserve): one place to add a model,
// one set of accepted names.
var modelConfigs = map[string]func() Config{
	"monopath":       ConfigMonopath,
	"see":            ConfigSEE,
	"dualpath":       ConfigDualPath,
	"oracle":         ConfigOracleBP,
	"see-oracle-ce":  ConfigSEEOracleCE,
	"dual-oracle-ce": ConfigDualPathOracleCE,
	"adaptive":       ConfigSEEAdaptive,
	"tage":           ConfigSEETage,
	"eager": func() Config {
		c := ConfigSEE()
		c.Confidence.Kind = pipeline.ConfAlwaysLow
		return c
	},
}

// ModelNames returns the accepted model spellings, sorted.
func ModelNames() []string {
	names := make([]string, 0, len(modelConfigs))
	for name := range modelConfigs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ModelConfig resolves a model name (e.g. "see", "monopath", "dualpath")
// to its machine configuration. Unknown names return a descriptive error
// listing the accepted spellings.
func ModelConfig(name string) (Config, error) {
	mk, ok := modelConfigs[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Config{}, fmt.Errorf("core: unknown model %q (valid: %s)", name, strings.Join(ModelNames(), ", "))
	}
	return mk(), nil
}
