package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// TestAPIErrorSurfacesAttemptsAndRetryAfter: when the retry budget is
// exhausted on a retryable status, the returned APIError reports how
// many tries the call burned and the server's last Retry-After hint.
func TestAPIErrorSurfacesAttemptsAndRetryAfter(t *testing.T) {
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"server: job queue full"}`))
	}))
	c.MaxAttempts = 3
	_, err := c.Submit(context.Background(), server.JobRequest{Experiment: "fig8"})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", ae.Attempts)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", ae.RetryAfter)
	}
	msg := ae.Error()
	if !strings.Contains(msg, "3 attempts") || !strings.Contains(msg, "retry after 7s") {
		t.Fatalf("Error() = %q should mention attempts and the Retry-After hint", msg)
	}
}

// TestAPIErrorImmediateFailureIsOneAttempt: non-retryable responses
// report a single attempt and keep the terse error text.
func TestAPIErrorImmediateFailureIsOneAttempt(t *testing.T) {
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"bad"}`))
	}))
	_, err := c.Submit(context.Background(), server.JobRequest{Experiment: "fig8"})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Attempts != 1 || ae.RetryAfter != 0 {
		t.Fatalf("Attempts=%d RetryAfter=%v, want 1 and 0", ae.Attempts, ae.RetryAfter)
	}
	if got := ae.Error(); got != "polyserve: bad (HTTP 400)" {
		t.Fatalf("Error() = %q", got)
	}
}

// TestRetriesMidBodyHang: a server that sends headers and then wedges
// mid-body is indistinguishable from a dead worker; the per-attempt
// deadline must cut the body read loose (context.DeadlineExceeded
// surfacing from resp.Body) and the call must retry and succeed, all
// within the caller's larger context.
func TestRetriesMidBodyHang(t *testing.T) {
	var calls atomic.Int32
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Headers and half a JSON body, then hang until the client
			// abandons the attempt.
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"jobs_sub`))
			w.(http.Flusher).Flush()
			<-r.Context().Done()
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{}`))
	}))
	c.AttemptTimeout = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("Stats should survive a mid-body hang via retry, got %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (hang, then retry)", got)
	}
}

// TestLogfReceivesRetryDetail: the debug hook sees one line per retry
// with the attempt counter, the backoff, and the Retry-After hint.
func TestLogfReceivesRetryDetail(t *testing.T) {
	var calls atomic.Int32
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"server: job queue full"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{}`))
	}))
	var lines []string
	c.Logf = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("Logf got %d lines, want 1: %v", len(lines), lines)
	}
	for _, want := range []string{"attempt 2/", "queue full", "Retry-After 2s"} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("log line %q missing %q", lines[0], want)
		}
	}
}
