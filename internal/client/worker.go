package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
)

// worker.go is the client half of the fleet protocol: the coordinator's
// transport to worker nodes (DialWorker, a server.WorkerCaller over
// HTTP) and the worker's attachment loop to its coordinator
// (register + heartbeat with automatic re-registration).

// workerCaller issues single-shot POST /v1/cells calls to one worker.
// Deliberately no inner retries: the coordinator's dispatcher owns the
// retry/hedge/redispatch policy and needs to see every individual
// failure to drive it. The per-attempt deadline is the caller's ctx
// (dispatch wraps each cell in Config.CellTimeout).
type workerCaller struct {
	base string
	http *http.Client
}

// DialWorker returns a server.WorkerCaller speaking the /v1/cells
// protocol to the worker at addr. It matches the signature of
// server.Config.DialWorker, so wiring the coordinator is one line:
//
//	cfg.DialWorker = client.DialWorker
func DialWorker(addr string) server.WorkerCaller {
	return &workerCaller{base: strings.TrimRight(addr, "/"), http: http.DefaultClient}
}

// RunCell executes one cell on the worker. Failures are returned as
// *server.CellCallError carrying the worker's self-reported node ID and
// crash attribution from the fleet protocol headers.
func (w *workerCaller) RunCell(ctx context.Context, req server.CellRequest) (server.CellResponse, error) {
	var out server.CellResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, &server.CellCallError{Err: err}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return out, &server.CellCallError{Err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.http.Do(hreq)
	if err != nil {
		// Transport failure: the worker never identified itself.
		return out, &server.CellCallError{Err: err}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	resp.Body.Close()
	node := resp.Header.Get(server.HeaderNode)
	if err != nil {
		return out, &server.CellCallError{Node: node, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return out, &server.CellCallError{
			Node:   node,
			Crash:  resp.Header.Get(server.HeaderCrash) != "",
			Status: resp.StatusCode,
			Msg:    errText(data, resp.Status),
		}
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return out, &server.CellCallError{Node: node, Err: fmt.Errorf("malformed cell response: %w", err)}
	}
	return out, nil
}

// RegisterWorker announces a worker to the coordinator and returns the
// granted lease.
func (c *Client) RegisterWorker(ctx context.Context, reg server.WorkerRegistration) (server.WorkerLease, error) {
	var lease server.WorkerLease
	body, err := json.Marshal(reg)
	if err != nil {
		return lease, err
	}
	err = c.do(ctx, http.MethodPost, "/v1/workers", body, http.StatusOK, &lease)
	return lease, err
}

// HeartbeatWorker renews a worker's lease. A 404 *APIError means the
// coordinator no longer knows the worker (it restarted, or the lease
// expired long ago) and the worker must re-register.
func (c *Client) HeartbeatWorker(ctx context.Context, id string) (server.WorkerLease, error) {
	var lease server.WorkerLease
	err := c.do(ctx, http.MethodPost, "/v1/workers/"+id+"/heartbeat", []byte("{}"), http.StatusOK, &lease)
	return lease, err
}

// Workers fetches the coordinator's fleet membership table.
func (c *Client) Workers(ctx context.Context) (server.FleetStatus, error) {
	var st server.FleetStatus
	err := c.do(ctx, http.MethodGet, "/v1/workers", nil, http.StatusOK, &st)
	return st, err
}

// Attachment keeps one worker registered with its coordinator: register,
// then heartbeat at a fraction of the granted lease, re-registering
// whenever the coordinator forgets us (its restart) or becomes
// unreachable (a partition). Run blocks until ctx is cancelled; the
// worker keeps serving /v1/cells throughout — attachment state only
// governs whether new work is routed here.
type Attachment struct {
	// Coordinator is the client for the coordinator's /v1 API.
	Coordinator *Client
	// ID and Addr are this worker's stable identity and reachable base URL.
	ID   string
	Addr string
	// Interval overrides the heartbeat period (default: lease/3).
	Interval time.Duration
	// OnState receives "attached"/"detached" transitions (may be nil).
	OnState func(state string)
	// Logf receives attachment lifecycle lines (may be nil).
	Logf func(format string, args ...any)
}

func (a *Attachment) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

func (a *Attachment) setState(attached *bool, now bool) {
	if *attached == now {
		return
	}
	*attached = now
	state := "detached"
	if now {
		state = "attached"
	}
	a.logf("polyserve worker %s: %s (coordinator %s)", a.ID, state, a.Coordinator.BaseURL)
	if a.OnState != nil {
		a.OnState(state)
	}
}

// Run drives the attachment loop until ctx ends.
func (a *Attachment) Run(ctx context.Context) {
	attached := false
	var interval time.Duration
	for ctx.Err() == nil {
		lease, err := a.Coordinator.RegisterWorker(ctx, server.WorkerRegistration{ID: a.ID, Addr: a.Addr})
		if err != nil {
			a.setState(&attached, false)
			a.logf("polyserve worker %s: registration failed: %v", a.ID, err)
			if sleepErr := a.Coordinator.sleep(ctx, time.Second); sleepErr != nil {
				return
			}
			continue
		}
		a.setState(&attached, true)
		interval = a.Interval
		if interval <= 0 {
			interval = time.Duration(lease.LeaseMS) * time.Millisecond / 3
			if interval <= 0 {
				interval = time.Second
			}
		}
		// Heartbeat until the coordinator stops answering or forgets us.
		for ctx.Err() == nil {
			if err := a.Coordinator.sleep(ctx, interval); err != nil {
				return
			}
			if _, err := a.Coordinator.HeartbeatWorker(ctx, a.ID); err != nil {
				a.setState(&attached, false)
				a.logf("polyserve worker %s: heartbeat failed: %v; re-registering", a.ID, err)
				break // fall back to registration
			}
			a.setState(&attached, true)
		}
	}
}
