// Package client is the Go client for polyserve's /v1 API with built-in
// retry handling: transient failures (connection errors, 429 backpressure,
// 5xx) are retried with capped exponential backoff and full jitter, and a
// server-provided Retry-After hint overrides the computed delay. Client
// errors (400, 403 quarantine, 404) are never retried — they are returned
// as *APIError so callers can branch on the status code.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
)

// Client talks to one polyserve instance. The zero value is not usable;
// create with New.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080" (no /v1).
	BaseURL string
	// HTTP is the underlying HTTP client (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds tries per call, first attempt included (default 5).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms); Delay for
	// attempt n is min(BaseDelay<<n, MaxDelay) scaled by jitter in [½,1).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 5s).
	MaxDelay time.Duration
	// AttemptTimeout, when > 0, deadlines every individual attempt
	// (connection + headers + body read). An attempt that exceeds it —
	// including a server that sends headers and then hangs mid-body — is
	// treated like any other transport failure and retried, while the
	// caller's context keeps governing the call as a whole. 0 means
	// attempts are bounded only by the caller's context.
	AttemptTimeout time.Duration

	// Sleep and Jitter are injection points for tests: Sleep pauses between
	// attempts (default time.Sleep honoring ctx) and Jitter returns a
	// uniform value in [0,1) (default math/rand).
	Sleep  func(ctx context.Context, d time.Duration) error
	Jitter func() float64

	// Logf, when set, receives a debug line per retry: the attempt number,
	// the failure being retried, the computed backoff, and whether a
	// server Retry-After hint stretched it (nil = silent).
	Logf func(format string, args ...any)
}

// New returns a client for the polyserve instance at baseURL with the
// default retry policy.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// APIError is a non-retryable response from the server (4xx, or a 5xx that
// outlived the retry budget).
type APIError struct {
	Status  int    // HTTP status code
	Message string // the server's error text
	// Attempts is how many tries the call consumed before this error was
	// returned (1 for an immediately non-retryable response).
	Attempts int
	// RetryAfter is the server's last Retry-After hint, if it sent one —
	// how long it asked us to wait before coming back. Surfaced so callers
	// that give up (budget exhausted) can still honor the hint later.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	msg := fmt.Sprintf("polyserve: %s (HTTP %d", e.Message, e.Status)
	if e.Attempts > 1 {
		msg += fmt.Sprintf(", %d attempts", e.Attempts)
	}
	if e.RetryAfter > 0 {
		msg += fmt.Sprintf(", server asked to retry after %s", e.RetryAfter)
	}
	return msg + ")"
}

// IsQuarantined reports whether err is the server refusing a request whose
// signature crashed repeatedly (HTTP 403).
func IsQuarantined(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusForbidden
}

// errText extracts the server's JSON error message, falling back to the
// HTTP status line for non-JSON bodies.
func errText(data []byte, fallback string) string {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	return fallback
}

// Submit posts a job request and returns the accepted job.
func (c *Client) Submit(ctx context.Context, req server.JobRequest) (server.Job, error) {
	var j server.Job
	body, err := json.Marshal(req)
	if err != nil {
		return j, err
	}
	err = c.do(ctx, http.MethodPost, "/v1/jobs", body, http.StatusAccepted, &j)
	return j, err
}

// Job fetches the current view of a job.
func (c *Client) Job(ctx context.Context, id string) (server.Job, error) {
	var j server.Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, http.StatusOK, &j)
	return j, err
}

// Wait polls until the job leaves the queued/running states (or ctx ends).
func (c *Client) Wait(ctx context.Context, id string) (server.Job, error) {
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return j, err
		}
		if j.State != server.JobQueued && j.State != server.JobRunning {
			return j, nil
		}
		if err := c.sleep(ctx, 100*time.Millisecond); err != nil {
			return j, err
		}
	}
}

// Result fetches a finished job's rendered result.
func (c *Client) Result(ctx context.Context, id string) (server.JobResult, error) {
	var res server.JobResult
	err := c.do(ctx, http.MethodGet, "/v1/results/"+id, nil, http.StatusOK, &res)
	return res, err
}

// Run submits a request and waits for its result.
func (c *Client) Run(ctx context.Context, req server.JobRequest) (server.JobResult, error) {
	j, err := c.Submit(ctx, req)
	if err != nil {
		return server.JobResult{}, err
	}
	j, err = c.Wait(ctx, j.ID)
	if err != nil {
		return server.JobResult{}, err
	}
	if j.State != server.JobDone {
		return server.JobResult{}, fmt.Errorf("polyserve: job %s %s: %s", j.ID, j.State, j.Error)
	}
	return c.Result(ctx, j.ID)
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (server.Snapshot, error) {
	var snap server.Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, http.StatusOK, &snap)
	return snap, err
}

// Quarantine fetches the crash-quarantine list.
func (c *Client) Quarantine(ctx context.Context) ([]server.QuarantineEntry, error) {
	var entries []server.QuarantineEntry
	err := c.do(ctx, http.MethodGet, "/v1/quarantine", nil, http.StatusOK, &entries)
	return entries, err
}

// Healthz probes the server's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	var body map[string]string
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, http.StatusOK, &body)
}

// do issues one API call with the retry policy and decodes the wanted
// response into out.
func (c *Client) do(ctx context.Context, method, path string, body []byte, want int, out any) error {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	attempts := c.MaxAttempts
	if attempts < 1 {
		attempts = 5
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt, lastErr)
			if c.Logf != nil {
				hint := ""
				if ra, ok := lastErr.(*retryAfterError); ok && ra.after > 0 {
					hint = fmt.Sprintf(" (server Retry-After %s)", ra.after)
				}
				c.Logf("polyserve client: %s %s attempt %d/%d after %v; retrying in %s%s",
					method, path, attempt+1, attempts, lastErr, d, hint)
			}
			if err := c.sleep(ctx, d); err != nil {
				return err
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		// Per-attempt deadline: a worker that accepts the connection and
		// then wedges (before or during the response body) costs one
		// attempt, not the whole call budget.
		attemptCtx, attemptCancel := ctx, context.CancelFunc(func() {})
		if c.AttemptTimeout > 0 {
			attemptCtx, attemptCancel = context.WithTimeout(ctx, c.AttemptTimeout)
		}
		req, err := http.NewRequestWithContext(attemptCtx, method, c.BaseURL+path, rd)
		if err != nil {
			attemptCancel()
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := httpc.Do(req)
		if err != nil {
			attemptCancel()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err // connection-level failure (incl. attempt timeout): retry
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		attemptCancel()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// A failed body read — connection reset, or the attempt
			// deadline expiring mid-body (context.DeadlineExceeded) — is a
			// transport error like any other: the response is unusable and
			// the request is safe to retry.
			lastErr = err
			continue
		}
		if resp.StatusCode == want {
			if out == nil || len(data) == 0 {
				return nil
			}
			return json.Unmarshal(data, out)
		}
		apiErr := &APIError{Status: resp.StatusCode, Message: errText(data, resp.Status), Attempts: attempt + 1}
		if !retryable(resp.StatusCode) {
			return apiErr
		}
		lastErr = &retryAfterError{err: apiErr, after: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
	if ra, ok := lastErr.(*retryAfterError); ok {
		// Budget exhausted on a retryable status: report how many tries the
		// call burned and the server's last Retry-After hint.
		ra.err.Attempts = attempts
		ra.err.RetryAfter = ra.after
		return ra.err
	}
	return fmt.Errorf("polyserve: %s %s failed after %d attempts: %w", method, path, attempts, lastErr)
}

// retryable reports whether a status is worth another attempt: 429
// (backpressure — the server asked us to come back) and 5xx (transient
// server trouble, including 503 while draining).
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// retryAfterError carries the server's Retry-After hint to the backoff.
type retryAfterError struct {
	err   *APIError
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// backoff computes the sleep before the attempt-th try (attempt >= 1):
// capped exponential growth with full jitter, overridden by a larger
// server-provided Retry-After hint.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := c.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	d := base << (attempt - 1)
	if d > maxd || d <= 0 { // <= 0 catches shift overflow
		d = maxd
	}
	jitter := c.Jitter
	if jitter == nil {
		jitter = rand.Float64
	}
	// Full jitter in [½d, d): desynchronizes a fleet of retrying clients
	// without ever collapsing the delay to ~0.
	d = d/2 + time.Duration(jitter()*float64(d/2))
	if ra, ok := lastErr.(*retryAfterError); ok && ra.after > d {
		d = ra.after
	}
	return d
}

// parseRetryAfter reads a Retry-After header (seconds form only).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleep pauses for d, honoring ctx cancellation and the test hook.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
