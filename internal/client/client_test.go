package client

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

func testLogger(t *testing.T) *log.Logger {
	return log.New(testWriter{t}, "", 0)
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// testClient returns a client against handler with sleeping replaced by
// recording, and zero jitter so delays are exact.
func testClient(t *testing.T, handler http.Handler) (*Client, *[]time.Duration) {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	var slept []time.Duration
	c := New(ts.URL)
	c.BaseDelay = 100 * time.Millisecond
	c.MaxDelay = time.Second
	c.Jitter = func() float64 { return 1 } // delay = base<<n exactly
	c.Sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	return c, &slept
}

// TestRetriesBackpressureHonoringRetryAfter rejects two submissions with
// 429 + Retry-After: 3 before accepting, and checks the client slept the
// server-mandated 3s (not the smaller computed backoff) both times.
func TestRetriesBackpressureHonoringRetryAfter(t *testing.T) {
	var calls atomic.Int32
	c, slept := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"server: job queue full"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(server.Job{ID: "job-000001", State: server.JobQueued})
	}))

	j, err := c.Submit(context.Background(), server.JobRequest{Experiment: "fig8"})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-000001" {
		t.Fatalf("job ID %q", j.ID)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if len(*slept) != 2 || (*slept)[0] != 3*time.Second || (*slept)[1] != 3*time.Second {
		t.Fatalf("sleeps %v, want [3s 3s] from Retry-After", *slept)
	}
}

// TestExponentialBackoffOn5xx checks the computed delays double per
// attempt and cap at MaxDelay when the server gives no hint.
func TestExponentialBackoffOn5xx(t *testing.T) {
	var calls atomic.Int32
	c, slept := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 4 {
			http.Error(w, "boom", http.StatusBadGateway)
			return
		}
		_ = json.NewEncoder(w).Encode(server.Snapshot{})
	}))
	c.MaxAttempts = 5
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("sleeps %v, want %v", *slept, want)
	}
	for i := range want {
		if (*slept)[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (all: %v)", i, (*slept)[i], want[i], *slept)
		}
	}
}

// TestRetryBudgetExhausted checks a persistent 503 surfaces as the typed
// API error after MaxAttempts tries.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"server: draining, not accepting jobs"}`))
	}))
	c.MaxAttempts = 3
	_, err := c.Submit(context.Background(), server.JobRequest{Experiment: "fig8"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if !strings.Contains(ae.Message, "draining") {
		t.Fatalf("message %q lost the server error", ae.Message)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want exactly MaxAttempts=3", got)
	}
}

// TestClientErrorsAreNotRetried checks 400/403/404 return immediately.
func TestClientErrorsAreNotRetried(t *testing.T) {
	cases := []struct {
		status int
		body   string
	}{
		{http.StatusBadRequest, `{"error":"unknown experiment \"fig99\""}`},
		{http.StatusForbidden, `{"error":"server: request quarantined after repeated worker crashes"}`},
		{http.StatusNotFound, `{"error":"unknown job \"job-9\""}`},
	}
	for _, tc := range cases {
		var calls atomic.Int32
		c, slept := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(tc.status)
			_, _ = w.Write([]byte(tc.body))
		}))
		_, err := c.Submit(context.Background(), server.JobRequest{Experiment: "fig8"})
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != tc.status {
			t.Fatalf("status %d: err = %v", tc.status, err)
		}
		if calls.Load() != 1 || len(*slept) != 0 {
			t.Fatalf("status %d: %d calls, %d sleeps — client errors must not retry", tc.status, calls.Load(), len(*slept))
		}
		if tc.status == http.StatusForbidden && !IsQuarantined(err) {
			t.Fatalf("IsQuarantined(%v) = false", err)
		}
	}
}

// TestRunAgainstRealServer drives the full client surface against an
// actual polyserve instance: submit, wait, result, stats, quarantine.
func TestRunAgainstRealServer(t *testing.T) {
	srv, err := server.New(server.Config{CacheCells: 16, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Drain() })

	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx, server.JobRequest{
		Configs:    []server.ConfigEntry{{Name: "mono", Model: "monopath"}},
		Benchmarks: []string{"compress"},
		Insts:      10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "compress") || res.Cells != 1 {
		t.Fatalf("result: cells=%d text:\n%s", res.Cells, res.Text)
	}
	snap, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.JobsCompleted != 1 {
		t.Fatalf("stats: %+v", snap)
	}
	entries, err := c.Quarantine(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("quarantine list should be empty: %+v", entries)
	}
}
