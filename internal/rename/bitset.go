package rename

// bitset.go: a dense readiness bitset over the physical register file.
//
// The pipeline's wakeup logic tests "is physical register p ready" for
// every pending source operand every cycle; packing the flags 64 to a
// machine word keeps the whole readiness state of a 352-register machine
// in six words (one cache line) instead of a 352-byte bool slice, and
// lets arena reuse reset it with a handful of word stores.

// ReadySet tracks per-physical-register readiness as a packed bitmap.
// The zero value is unusable; create one with NewReadySet.
type ReadySet struct {
	words []uint64
	n     int
}

// NewReadySet returns an all-clear readiness set for n physical registers.
func NewReadySet(n int) ReadySet {
	return ReadySet{words: make([]uint64, (n+63)/64), n: n}
}

// ReuseReadySet re-initializes s for n registers, reusing its backing
// words when they are large enough (the arena-recycling path). The result
// is all-clear, exactly like NewReadySet(n).
func ReuseReadySet(s ReadySet, n int) ReadySet {
	w := (n + 63) / 64
	if cap(s.words) < w {
		return NewReadySet(n)
	}
	s.words = s.words[:w]
	clear(s.words)
	s.n = n
	return s
}

// Test reports whether physical register p is ready.
func (s *ReadySet) Test(p PhysReg) bool {
	return s.words[p>>6]&(1<<uint(p&63)) != 0
}

// Set marks physical register p ready (the writeback publish).
func (s *ReadySet) Set(p PhysReg) {
	s.words[p>>6] |= 1 << uint(p&63)
}

// Clear marks physical register p not ready (rename allocation, or an
// injected dropped-wakeup fault).
func (s *ReadySet) Clear(p PhysReg) {
	s.words[p>>6] &^= 1 << uint(p&63)
}

// Len returns the number of registers the set covers.
func (s *ReadySet) Len() int { return s.n }
