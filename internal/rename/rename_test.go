package rename

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func TestIdentityMap(t *testing.T) {
	mp := NewIdentityMap()
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if mp.Get(r) != PhysReg(r) {
			t.Fatalf("identity map: r%d -> p%d", r, mp.Get(r))
		}
	}
}

func TestMapSetReturnsOld(t *testing.T) {
	mp := NewIdentityMap()
	old := mp.Set(5, 100)
	if old != 5 {
		t.Errorf("old mapping = %d, want 5", old)
	}
	if mp.Get(5) != 100 {
		t.Errorf("new mapping = %d, want 100", mp.Get(5))
	}
}

func TestMapCloneIsIndependent(t *testing.T) {
	mp := NewIdentityMap()
	mp.Set(3, 50)
	c := mp.Clone()
	c.Set(3, 60)
	mp.Set(4, 70)
	if mp.Get(3) != 50 {
		t.Error("clone write leaked into original")
	}
	if c.Get(4) != 4 {
		t.Error("original write leaked into clone")
	}
}

func TestMapCopyFrom(t *testing.T) {
	a := NewIdentityMap()
	b := NewIdentityMap()
	a.Set(1, 99)
	b.CopyFrom(a)
	if b.Get(1) != 99 {
		t.Error("CopyFrom did not copy")
	}
	a.Set(1, 88)
	if b.Get(1) != 99 {
		t.Error("CopyFrom aliased storage")
	}
}

func TestFreeListAllocFree(t *testing.T) {
	fl := NewFreeList(40, isa.NumRegs)
	if fl.Available() != 8 {
		t.Fatalf("available = %d, want 8", fl.Available())
	}
	if fl.Total() != 40 || fl.InUse() != 32 {
		t.Fatalf("total/inuse = %d/%d", fl.Total(), fl.InUse())
	}
	seen := map[PhysReg]bool{}
	for i := 0; i < 8; i++ {
		p, ok := fl.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if int(p) < isa.NumRegs || int(p) >= 40 || seen[p] {
			t.Fatalf("alloc returned bad or duplicate register %d", p)
		}
		seen[p] = true
	}
	if _, ok := fl.Alloc(); ok {
		t.Error("alloc must fail when exhausted")
	}
	for p := range seen {
		fl.Free(p)
	}
	if fl.Available() != 8 {
		t.Errorf("after frees, available = %d", fl.Available())
	}
}

func TestFreeListDoubleFreePanics(t *testing.T) {
	fl := NewFreeList(34, isa.NumRegs)
	p, _ := fl.Alloc()
	fl.Free(p)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double free")
		}
	}()
	fl.Free(p)
}

func TestFreeListTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFreeList(isa.NumRegs, isa.NumRegs)
}

func TestCheckpointsTakeRestoreRelease(t *testing.T) {
	cp := NewCheckpoints(4)
	if cp.Capacity() != 4 || cp.Available() != 4 {
		t.Fatal("fresh pool sizing")
	}
	mp := NewIdentityMap()
	mp.Set(2, 77)
	id, ok := cp.Take(mp, 0xABC)
	if !ok {
		t.Fatal("take failed")
	}
	// Mutate the live map, then restore.
	mp.Set(2, 88)
	mp.Set(3, 99)
	ghr := cp.Restore(id, mp)
	if ghr != 0xABC {
		t.Errorf("restored ghr = %x", ghr)
	}
	if mp.Get(2) != 77 || mp.Get(3) != 3 {
		t.Error("restore did not recover the checkpointed map")
	}
	cp.Release(id)
	if cp.Available() != 4 {
		t.Error("release did not return slot")
	}
}

func TestCheckpointsSnapshotIsDeep(t *testing.T) {
	cp := NewCheckpoints(2)
	mp := NewIdentityMap()
	id, _ := cp.Take(mp, 1)
	mp.Set(0, 40) // mutate after checkpoint
	fresh := NewIdentityMap()
	cp.Restore(id, fresh)
	if fresh.Get(0) != 0 {
		t.Error("checkpoint must snapshot, not alias")
	}
}

func TestCheckpointsExhaustion(t *testing.T) {
	cp := NewCheckpoints(2)
	mp := NewIdentityMap()
	a, _ := cp.Take(mp, 0)
	if _, ok := cp.Take(mp, 0); !ok {
		t.Fatal("second take should succeed")
	}
	if _, ok := cp.Take(mp, 0); ok {
		t.Error("third take must fail: pool limits pending branches")
	}
	cp.Release(a)
	if _, ok := cp.Take(mp, 0); !ok {
		t.Error("take after release should succeed")
	}
}

func TestCheckpointsMisusePanics(t *testing.T) {
	cp := NewCheckpoints(1)
	mp := NewIdentityMap()
	id, _ := cp.Take(mp, 0)
	cp.Release(id)
	t.Run("double release", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		cp.Release(id)
	})
	t.Run("restore freed", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		cp.Restore(id, mp)
	})
	t.Run("zero capacity", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		NewCheckpoints(0)
	})
}

// The divergent-branch pattern from the paper: clone the map twice, run the
// two paths independently, kill one, continue the other.
func TestDivergentMapUsage(t *testing.T) {
	parent := NewIdentityMap()
	parent.Set(1, 40)
	taken := parent.Clone()
	notTaken := parent.Clone()
	taken.Set(2, 41)
	notTaken.Set(2, 42)
	if taken.Get(2) == notTaken.Get(2) {
		t.Fatal("sibling paths must rename independently")
	}
	if taken.Get(1) != 40 || notTaken.Get(1) != 40 {
		t.Error("both siblings inherit pre-divergence mappings")
	}
}

// Property: any interleaving of allocs and frees conserves registers —
// available + inUse == total, no register is handed out twice while live.
func TestFreeListConservationProperty(t *testing.T) {
	fl := NewFreeList(64, isa.NumRegs)
	live := map[PhysReg]bool{}
	rng := rand.New(rand.NewSource(12))
	for step := 0; step < 10_000; step++ {
		if rng.Intn(2) == 0 {
			if p, ok := fl.Alloc(); ok {
				if live[p] {
					t.Fatalf("step %d: register %d allocated twice", step, p)
				}
				live[p] = true
			}
		} else if len(live) > 0 {
			// free a random live register
			var victim PhysReg
			n := rng.Intn(len(live))
			for p := range live {
				if n == 0 {
					victim = p
					break
				}
				n--
			}
			delete(live, victim)
			fl.Free(victim)
		}
		if fl.Available()+fl.InUse() != fl.Total() {
			t.Fatalf("step %d: conservation violated: %d + %d != %d",
				step, fl.Available(), fl.InUse(), fl.Total())
		}
		if fl.InUse() != len(live)+isa.NumRegs {
			t.Fatalf("step %d: in-use mismatch: %d vs %d live + %d reserved",
				step, fl.InUse(), len(live), isa.NumRegs)
		}
	}
}

// Property: checkpoints restore exactly the mapped state at Take time, for
// random mutation sequences.
func TestCheckpointSnapshotProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cp := NewCheckpoints(8)
	mp := NewIdentityMap()
	for trial := 0; trial < 500; trial++ {
		// Random mutations before the snapshot.
		for i := 0; i < rng.Intn(10); i++ {
			mp.Set(isa.Reg(rng.Intn(isa.NumRegs)), PhysReg(rng.Intn(512)))
		}
		var want [isa.NumRegs]PhysReg
		for r := 0; r < isa.NumRegs; r++ {
			want[r] = mp.Get(isa.Reg(r))
		}
		ghr := rng.Uint64()
		id, ok := cp.Take(mp, ghr)
		if !ok {
			t.Fatal("take failed")
		}
		// Random mutations after the snapshot.
		for i := 0; i < rng.Intn(20); i++ {
			mp.Set(isa.Reg(rng.Intn(isa.NumRegs)), PhysReg(rng.Intn(512)))
		}
		if got := cp.Restore(id, mp); got != ghr {
			t.Fatalf("trial %d: ghr %x != %x", trial, got, ghr)
		}
		for r := 0; r < isa.NumRegs; r++ {
			if mp.Get(isa.Reg(r)) != want[r] {
				t.Fatalf("trial %d: r%d restored to %d, want %d", trial, r, mp.Get(isa.Reg(r)), want[r])
			}
		}
		cp.Release(id)
	}
}
