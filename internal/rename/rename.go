// Package rename implements register renaming for the PolyPath pipeline:
// logical-to-physical register map tables, the physical-register free list,
// and branch checkpoints.
//
// The PolyPath twist (paper Sec. 3.2.5) is that a divergent branch uses its
// two RegMap copies for the two successor paths instead of keeping one as a
// misprediction backup — the same number of map copies a monopath machine
// needs per branch, deployed differently.
package rename

import (
	"fmt"

	"repro/internal/isa"
)

// PhysReg names a physical register.
type PhysReg uint16

// Map is a register mapping table from logical to physical registers.
type Map struct {
	m [isa.NumRegs]PhysReg
}

// NewIdentityMap returns a map where logical register i maps to physical
// register i (the conventional reset state: the first NumRegs physical
// registers hold the architectural values).
func NewIdentityMap() *Map {
	var mp Map
	for i := range mp.m {
		mp.m[i] = PhysReg(i)
	}
	return &mp
}

// Get returns the physical register currently holding logical register r.
func (mp *Map) Get(r isa.Reg) PhysReg { return mp.m[r] }

// Set redirects logical register r to physical register p and returns the
// previous mapping (the "old physical register" that the renamed
// instruction carries to commit/rollback).
func (mp *Map) Set(r isa.Reg, p PhysReg) (old PhysReg) {
	old = mp.m[r]
	mp.m[r] = p
	return old
}

// Clone returns an independent copy — the checkpoint operation, and the way
// a divergent branch gives each successor path its own map.
func (mp *Map) Clone() *Map {
	c := *mp
	return &c
}

// CopyFrom overwrites mp with the contents of src (checkpoint restore).
func (mp *Map) CopyFrom(src *Map) { mp.m = src.m }

// FreeList manages the pool of unallocated physical registers.
type FreeList struct {
	free  []PhysReg
	total int
	inUse []bool // allocation tracking for invariant checks, indexed by PhysReg
}

// NewFreeList creates a free list for a machine with total physical
// registers, of which the first reserved (= isa.NumRegs) are pre-allocated
// to the identity map and therefore not initially free.
func NewFreeList(total, reserved int) *FreeList {
	if total <= reserved {
		panic(fmt.Sprintf("rename: %d physical registers cannot cover %d reserved", total, reserved))
	}
	fl := &FreeList{total: total, inUse: make([]bool, total)}
	for p := total - 1; p >= reserved; p-- {
		fl.free = append(fl.free, PhysReg(p))
	}
	for p := 0; p < reserved; p++ {
		fl.inUse[PhysReg(p)] = true
	}
	return fl
}

// Alloc takes a physical register off the free list. ok is false when the
// pool is exhausted, in which case rename must stall this cycle.
func (fl *FreeList) Alloc() (p PhysReg, ok bool) {
	n := len(fl.free)
	if n == 0 {
		return 0, false
	}
	p = fl.free[n-1]
	fl.free = fl.free[:n-1]
	fl.inUse[p] = true
	return p, true
}

// Free returns a physical register to the pool. Double frees panic: they
// indicate a pipeline bookkeeping bug (e.g. freeing a register both at
// path kill and at commit).
func (fl *FreeList) Free(p PhysReg) {
	if !fl.inUse[p] {
		panic(fmt.Sprintf("rename: double free of physical register %d", p))
	}
	fl.inUse[p] = false
	fl.free = append(fl.free, p)
}

// Available returns the number of free physical registers.
func (fl *FreeList) Available() int { return len(fl.free) }

// Total returns the machine's physical register count.
func (fl *FreeList) Total() int { return fl.total }

// InUse returns the number of allocated physical registers.
func (fl *FreeList) InUse() int { return fl.total - len(fl.free) }

// IsAllocated reports whether physical register p is currently allocated.
// Out-of-range registers report false (a corrupted reference, not a panic),
// so invariant auditors can probe suspect values safely.
func (fl *FreeList) IsAllocated(p PhysReg) bool {
	return int(p) < fl.total && fl.inUse[p]
}

// AuditConsistency cross-checks the free stack against the allocation
// bitmap: every stacked register must be marked free, no register may
// appear twice, and the stack must account for every unallocated register.
// A non-nil error means the free list has been corrupted (e.g. by a
// hardware-style bit flip) and the machine's rename state cannot be
// trusted.
func (fl *FreeList) AuditConsistency() error {
	seen := make([]bool, fl.total)
	for _, p := range fl.free {
		if int(p) >= fl.total {
			return fmt.Errorf("rename: free list holds out-of-range register %d (total %d)", p, fl.total)
		}
		if fl.inUse[p] {
			return fmt.Errorf("rename: register %d is both on the free list and marked in use", p)
		}
		if seen[p] {
			return fmt.Errorf("rename: register %d appears twice on the free list", p)
		}
		seen[p] = true
	}
	freeMarked := 0
	for p := 0; p < fl.total; p++ {
		if !fl.inUse[p] {
			freeMarked++
		}
	}
	if freeMarked != len(fl.free) {
		return fmt.Errorf("rename: %d registers marked free but %d on the free list", freeMarked, len(fl.free))
	}
	return nil
}

// FlipInUse toggles the allocation bit of physical register p without
// touching the free stack, desynchronizing the two structures. It exists
// for deterministic fault injection (internal/faultinject) and must never
// be called on a machine whose results matter.
func (fl *FreeList) FlipInUse(p PhysReg) {
	if int(p) < fl.total {
		fl.inUse[p] = !fl.inUse[p]
	}
}

// Checkpoints is a bounded pool of register-map checkpoints. The number of
// checkpoints limits the number of unresolved branches in flight, exactly
// as in the paper's monopath description (Sec. 3.1).
type Checkpoints struct {
	slots []checkpointSlot
	free  []int
}

type checkpointSlot struct {
	mp   Map
	ghr  uint64
	used bool
}

// NewCheckpoints creates a pool with n slots.
func NewCheckpoints(n int) *Checkpoints {
	if n < 1 {
		panic("rename: need at least one checkpoint")
	}
	c := &Checkpoints{slots: make([]checkpointSlot, n)}
	for i := n - 1; i >= 0; i-- {
		c.free = append(c.free, i)
	}
	return c
}

// Take captures a checkpoint of mp and the global history ghr, returning a
// handle. ok is false when no slot is free (rename stalls on the branch).
func (c *Checkpoints) Take(mp *Map, ghr uint64) (id int, ok bool) {
	n := len(c.free)
	if n == 0 {
		return -1, false
	}
	id = c.free[n-1]
	c.free = c.free[:n-1]
	c.slots[id] = checkpointSlot{mp: *mp, ghr: ghr, used: true}
	return id, true
}

// Restore copies checkpoint id back into dst and returns the checkpointed
// global history. The checkpoint remains allocated until Release.
func (c *Checkpoints) Restore(id int, dst *Map) (ghr uint64) {
	s := &c.slots[id]
	if !s.used {
		panic(fmt.Sprintf("rename: restore of free checkpoint %d", id))
	}
	dst.m = s.mp.m
	return s.ghr
}

// Release frees checkpoint id (branch resolved correctly or committed, or
// was killed).
func (c *Checkpoints) Release(id int) {
	if !c.slots[id].used {
		panic(fmt.Sprintf("rename: double release of checkpoint %d", id))
	}
	c.slots[id].used = false
	c.free = append(c.free, id)
}

// Available returns the number of free checkpoint slots.
func (c *Checkpoints) Available() int { return len(c.free) }

// Capacity returns the total number of slots.
func (c *Checkpoints) Capacity() int { return len(c.slots) }

// Used reports whether slot id currently holds a live checkpoint.
// Out-of-range ids report false.
func (c *Checkpoints) Used(id int) bool {
	return id >= 0 && id < len(c.slots) && c.slots[id].used
}

// ForEachUsed calls fn for every live checkpoint slot with a read-only view
// of its captured map. Invariant auditors use this to verify that every
// register a checkpoint can restore is still allocated.
func (c *Checkpoints) ForEachUsed(fn func(id int, mp *Map)) {
	for i := range c.slots {
		if c.slots[i].used {
			fn(i, &c.slots[i].mp)
		}
	}
}
