package harness

import (
	"fmt"
	"strings"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// fig8Configs are the six machine configurations of Figure 8, in the
// paper's legend order.
func fig8Configs() []NamedConfig {
	return []NamedConfig{
		{Name: "monopath", Cfg: core.ConfigMonopath()},
		{Name: "oracle", Cfg: core.ConfigOracleBP()},
		{Name: "gshare/oracle", Cfg: core.ConfigSEEOracleCE()},
		{Name: "gshare/JRS", Cfg: core.ConfigSEE()},
		{Name: "gshare/oracle/dual", Cfg: core.ConfigDualPathOracleCE()},
		{Name: "gshare/JRS/dual", Cfg: core.ConfigDualPath()},
	}
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Benchmark       string
	Insts           uint64  // dynamic instructions simulated
	MispredictRate  float64 // under the baseline (scaled) gshare
	PaperMInsts     float64 // the paper's instruction count (millions)
	PaperMispredict float64 // the paper's misprediction rate
}

// Table1Result reproduces Table 1: benchmark characteristics on the
// baseline monopath machine.
type Table1Result struct {
	Rows    []Table1Row
	Average Table1Row
}

// Table1 runs the monopath baseline over the suite and reports each
// benchmark's dynamic instruction count and branch misprediction rate next
// to the paper's Table 1 values.
func Table1(opts Options) (*Table1Result, error) {
	mat, err := runMatrix(opts, []NamedConfig{{Name: "monopath", Cfg: core.ConfigMonopath()}})
	if err != nil {
		return nil, err
	}
	paperByName := make(map[string]workload.Benchmark)
	for _, bm := range workload.Suite(opts.TargetInsts) {
		paperByName[bm.Spec.Name] = bm
	}
	res := &Table1Result{}
	var sumInsts uint64
	var sumRate, sumPaperRate, sumPaperM float64
	for _, b := range mat.Benchmarks {
		c := mat.Cell(b, "monopath")
		pb := paperByName[b]
		row := Table1Row{
			Benchmark:       b,
			Insts:           c.Stats.Committed,
			MispredictRate:  c.Stats.MispredictRate(),
			PaperMInsts:     pb.PaperMInsts,
			PaperMispredict: pb.PaperMispredict,
		}
		res.Rows = append(res.Rows, row)
		sumInsts += row.Insts
		sumRate += row.MispredictRate
		sumPaperRate += row.PaperMispredict
		sumPaperM += row.PaperMInsts
	}
	n := float64(len(res.Rows))
	res.Average = Table1Row{
		Benchmark:       "average",
		Insts:           sumInsts / uint64(len(res.Rows)),
		MispredictRate:  sumRate / n,
		PaperMInsts:     sumPaperM / n,
		PaperMispredict: sumPaperRate / n,
	}
	return res, nil
}

// Render formats Table 1 next to the paper's values.
func (t *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: benchmark characteristics (measured vs paper)\n")
	fmt.Fprintf(&b, "%-10s %14s %12s | %12s %12s\n",
		"benchmark", "instructions", "mispredict", "paper Minsts", "paper mispr")
	for _, r := range append(t.Rows, t.Average) {
		fmt.Fprintf(&b, "%-10s %14d %11.2f%% | %11.1fM %11.2f%%\n",
			r.Benchmark, r.Insts, 100*r.MispredictRate, r.PaperMInsts, 100*r.PaperMispredict)
	}
	return b.String()
}

// Fig8Extra carries the per-benchmark SEE diagnostics the paper discusses
// alongside Figure 8 (Sec. 5.1-5.2).
type Fig8Extra struct {
	Benchmark     string
	PVN           float64 // JRS predictive value of a negative test
	SpeedupJRS    float64 // gshare/JRS over monopath
	SpeedupOrcCE  float64 // gshare/oracle over monopath
	SpeedupOracle float64 // oracle BP over monopath
	AvgPaths      float64 // mean live paths (gshare/JRS)
	PathsLE3      float64 // fraction of cycles with <= 3 paths
	UselessDelta  float64 // relative change in useless instructions vs monopath
	FetchOverhead float64 // monopath fetched/committed (paper: 1.86)
}

// Fig8Result holds the Figure 8 matrix plus its companion diagnostics.
type Fig8Result struct {
	Matrix *Matrix
	Extras []Fig8Extra
}

// Figure8 reproduces the baseline performance comparison of Figure 8: the
// six machine configurations over all benchmarks, with harmonic means, plus
// the PVN / path-utilization / useless-instruction analyses of Sec. 5.1-5.2.
func Figure8(opts Options) (*Fig8Result, error) {
	mat, err := runMatrix(opts, fig8Configs())
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{Matrix: mat}
	for _, b := range mat.Benchmarks {
		mono := mat.Cell(b, "monopath")
		see := mat.Cell(b, "gshare/JRS")
		orc := mat.Cell(b, "gshare/oracle")
		obp := mat.Cell(b, "oracle")
		uselessMono := float64(mono.Stats.UselessInstructions())
		uselessSEE := float64(see.Stats.UselessInstructions())
		delta := 0.0
		if uselessMono > 0 {
			delta = uselessSEE/uselessMono - 1
		}
		res.Extras = append(res.Extras, Fig8Extra{
			Benchmark:     b,
			PVN:           see.Stats.PVN(),
			SpeedupJRS:    see.IPC/mono.IPC - 1,
			SpeedupOrcCE:  orc.IPC/mono.IPC - 1,
			SpeedupOracle: obp.IPC/mono.IPC - 1,
			AvgPaths:      see.Stats.AvgPaths(),
			PathsLE3:      see.Stats.PathsAtMost(3),
			UselessDelta:  delta,
			FetchOverhead: mono.Stats.FetchOverhead(),
		})
	}
	return res, nil
}

// Render formats Figure 8 and its companion analysis.
func (f *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString(renderIPCTable("Figure 8: baseline architecture performance (IPC)", f.Matrix))
	b.WriteString("\nSec 5.1/5.2 companion metrics (gshare/JRS vs monopath):\n")
	fmt.Fprintf(&b, "%-10s %8s %9s %9s %9s %9s %8s %9s %9s\n",
		"benchmark", "PVN", "dIPC:JRS", "dIPC:oCE", "dIPC:oBP", "avgpaths", "<=3path", "useless", "fetch/ci")
	for _, e := range f.Extras {
		fmt.Fprintf(&b, "%-10s %7.1f%% %+8.1f%% %+8.1f%% %+8.1f%% %9.2f %7.0f%% %+8.1f%% %9.2f\n",
			e.Benchmark, 100*e.PVN, 100*e.SpeedupJRS, 100*e.SpeedupOrcCE, 100*e.SpeedupOracle,
			e.AvgPaths, 100*e.PathsLE3, 100*e.UselessDelta, e.FetchOverhead)
	}
	m := f.Matrix
	mono := m.HarmonicMean("monopath")
	fmt.Fprintf(&b, "\nharmonic-mean speedups over monopath: oracle %+.1f%%, gshare/oracle %+.1f%%, gshare/JRS %+.1f%%, dual oracle %+.1f%%, dual JRS %+.1f%%\n",
		100*(m.HarmonicMean("oracle")/mono-1),
		100*(m.HarmonicMean("gshare/oracle")/mono-1),
		100*(m.HarmonicMean("gshare/JRS")/mono-1),
		100*(m.HarmonicMean("gshare/oracle/dual")/mono-1),
		100*(m.HarmonicMean("gshare/JRS/dual")/mono-1))
	seeGain := m.HarmonicMean("gshare/JRS") - mono
	dualGain := m.HarmonicMean("gshare/JRS/dual") - mono
	orcGain := m.HarmonicMean("gshare/oracle") - mono
	dualOrcGain := m.HarmonicMean("gshare/oracle/dual") - mono
	if seeGain != 0 && orcGain != 0 {
		fmt.Fprintf(&b, "dual-path fraction of SEE improvement: real %.0f%% (paper 66%%), oracle %.0f%% (paper 58%%)\n",
			100*dualGain/seeGain, 100*dualOrcGain/orcGain)
	}
	return b.String()
}

// SweepPoint is one x-position of a scalability figure: a label, an x
// value, and the harmonic-mean IPC of each configuration. PerBench holds
// the per-benchmark breakdown (config -> benchmark -> IPC) behind the
// means — the paper reads individual benchmarks off these curves (e.g.
// compress and jpeg falling off fastest below 256 window entries).
type SweepPoint struct {
	Label    string
	X        float64
	IPC      map[string]float64            // config name -> harmonic mean IPC
	PerBench map[string]map[string]float64 // config -> benchmark -> IPC
}

// SweepResult is a scalability figure: series of harmonic-mean IPC over a
// machine parameter, for the four standard configurations (monopath,
// oracle, gshare/oracle, gshare/JRS) the paper plots in Figures 9-12.
type SweepResult struct {
	Title   string
	XLabel  string
	Configs []string
	Points  []SweepPoint
}

// Render formats the sweep as aligned series rows followed by an ASCII
// chart of the same data.
func (s *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-22s", s.Title, s.XLabel)
	for _, c := range s.Configs {
		fmt.Fprintf(&b, " %14s", c)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-22s", p.Label)
		for _, c := range s.Configs {
			fmt.Fprintf(&b, " %14.3f", p.IPC[c])
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	b.WriteString(s.Plot(12))
	return b.String()
}

// sweepConfigs are the four configurations plotted in Figures 9-12.
func sweepConfigs(mutate func(*core.Config)) []NamedConfig {
	ncs := []NamedConfig{
		{Name: "oracle", Cfg: core.ConfigOracleBP()},
		{Name: "gshare/monopath", Cfg: core.ConfigMonopath()},
		{Name: "gshare/oracle", Cfg: core.ConfigSEEOracleCE()},
		{Name: "gshare/JRS", Cfg: core.ConfigSEE()},
	}
	for i := range ncs {
		mutate(&ncs[i].Cfg)
	}
	return ncs
}

func runSweep(opts Options, title, xlabel string, points []struct {
	label  string
	x      float64
	mutate func(*core.Config)
}) (*SweepResult, error) {
	res := &SweepResult{
		Title:  title,
		XLabel: xlabel,
		Configs: []string{
			"oracle", "gshare/monopath", "gshare/oracle", "gshare/JRS",
		},
	}
	for _, pt := range points {
		mat, err := runMatrix(opts, sweepConfigs(pt.mutate))
		if err != nil {
			return nil, err
		}
		sp := SweepPoint{
			Label:    pt.label,
			X:        pt.x,
			IPC:      make(map[string]float64),
			PerBench: make(map[string]map[string]float64),
		}
		for _, c := range res.Configs {
			sp.IPC[c] = mat.HarmonicMean(c)
			row := make(map[string]float64, len(mat.Benchmarks))
			for _, b := range mat.Benchmarks {
				row[b] = mat.IPC(b, c)
			}
			sp.PerBench[c] = row
		}
		res.Points = append(res.Points, sp)
	}
	return res, nil
}

// Figure9 reproduces the branch-predictor-size scalability study: IPC as a
// function of total predictor state (branch predictor + confidence
// estimator), equal-area comparison. The paper sweeps 10-16 history bits
// around its 14-bit baseline; this reproduction sweeps the same span
// around its scaled 11-bit baseline (see DESIGN.md).
func Figure9(opts Options) (*SweepResult, error) {
	var points []struct {
		label  string
		x      float64
		mutate func(*core.Config)
	}
	for _, bits := range []int{8, 9, 10, 11, 12, 13, 14} {
		bits := bits
		pred := 1 << uint(bits) / 4 // 2-bit counters
		conf := 1 << uint(bits) / 8 // 1-bit counters
		points = append(points, struct {
			label  string
			x      float64
			mutate func(*core.Config)
		}{
			label: fmt.Sprintf("%d bits (%d B)", bits, pred+conf),
			x:     float64(pred + conf),
			mutate: func(c *core.Config) {
				c.Predictor = c.Predictor.WithParam("hist_bits", bits)
				c.Confidence.IndexBits = bits
			},
		})
	}
	return runSweep(opts, "Figure 9: branch predictor size (harmonic mean IPC)", "predictor state", points)
}

// Figure9TAGE is the equal-area companion to Figure 9: at every storage
// budget of the Figure 9 sweep (8-14 budget bits), it compares gshare
// against a TAGE predictor sized by bpred.TageIsoParams to occupy exactly
// the same number of bytes (asserted by the bpred iso-storage tests), under
// both the monopath baseline and the SEE machine with the JRS estimator.
// The x axis is total predictor + confidence state, as in Figure 9.
func Figure9TAGE(opts Options) (*SweepResult, error) {
	res := &SweepResult{
		Title:  "Figure 9-TAGE: equal-area predictor comparison (harmonic mean IPC)",
		XLabel: "predictor state",
		Configs: []string{
			"gshare/monopath", "tage/monopath", "gshare/JRS", "tage/JRS",
		},
	}
	for _, bits := range []int{8, 9, 10, 11, 12, 13, 14} {
		predBytes, err := bpred.StateBytes("gshare", bpred.Params{"hist_bits": bits})
		if err != nil {
			return nil, err
		}
		tageParams := map[string]int(bpred.TageIsoParams(bits))
		confBytes := 1 << uint(bits) / 8 // 1-bit JRS counters
		gshare := func(c *core.Config) {
			c.Predictor = c.Predictor.WithParam("hist_bits", bits)
			c.Confidence.IndexBits = bits
		}
		tage := func(c *core.Config) {
			c.Predictor = pipeline.PredictorSpec{Kind: pipeline.PredTage, Params: tageParams}
			c.Confidence.IndexBits = bits
		}
		mono, see := core.ConfigMonopath(), core.ConfigSEE()
		cells := []NamedConfig{
			{Name: "gshare/monopath", Cfg: mono},
			{Name: "tage/monopath", Cfg: mono},
			{Name: "gshare/JRS", Cfg: see},
			{Name: "tage/JRS", Cfg: see},
		}
		gshare(&cells[0].Cfg)
		tage(&cells[1].Cfg)
		gshare(&cells[2].Cfg)
		tage(&cells[3].Cfg)
		mat, err := runMatrix(opts, cells)
		if err != nil {
			return nil, err
		}
		sp := SweepPoint{
			Label:    fmt.Sprintf("%d bits (%d B)", bits, predBytes+confBytes),
			X:        float64(predBytes + confBytes),
			IPC:      make(map[string]float64),
			PerBench: make(map[string]map[string]float64),
		}
		for _, c := range res.Configs {
			sp.IPC[c] = mat.HarmonicMean(c)
			row := make(map[string]float64, len(mat.Benchmarks))
			for _, b := range mat.Benchmarks {
				row[b] = mat.IPC(b, c)
			}
			sp.PerBench[c] = row
		}
		res.Points = append(res.Points, sp)
	}
	return res, nil
}

// Figure10 reproduces the instruction-window-size study (64-1024 entries).
func Figure10(opts Options) (*SweepResult, error) {
	var points []struct {
		label  string
		x      float64
		mutate func(*core.Config)
	}
	for _, w := range []int{64, 128, 256, 512, 1024} {
		w := w
		points = append(points, struct {
			label  string
			x      float64
			mutate func(*core.Config)
		}{
			label: fmt.Sprintf("%d entries", w),
			x:     float64(w),
			mutate: func(c *core.Config) {
				c.WindowSize = w
				c.PhysRegs = 0    // re-derive
				c.Checkpoints = 0 // re-derive
			},
		})
	}
	return runSweep(opts, "Figure 10: instruction window size (harmonic mean IPC)", "window entries", points)
}

// Figure11 reproduces the functional-unit-configuration study: 1-4 units
// of each type (and memory ports), scaled uniformly as in the paper.
func Figure11(opts Options) (*SweepResult, error) {
	var points []struct {
		label  string
		x      float64
		mutate func(*core.Config)
	}
	for _, n := range []int{1, 2, 3, 4} {
		n := n
		points = append(points, struct {
			label  string
			x      float64
			mutate func(*core.Config)
		}{
			label: fmt.Sprintf("%d of each", n),
			x:     float64(n),
			mutate: func(c *core.Config) {
				c.NumIntType0 = n
				c.NumIntType1 = n
				c.NumFPAdd = n
				c.NumFPMul = n
				c.NumMemPorts = n
			},
		})
	}
	return runSweep(opts, "Figure 11: functional unit configuration (harmonic mean IPC)", "units per type", points)
}

// Figure12 reproduces the pipeline-depth study: total depths 6-10, varied
// through the in-order front end as in the paper.
func Figure12(opts Options) (*SweepResult, error) {
	var points []struct {
		label  string
		x      float64
		mutate func(*core.Config)
	}
	for _, depth := range []int{6, 7, 8, 9, 10} {
		depth := depth
		points = append(points, struct {
			label  string
			x      float64
			mutate func(*core.Config)
		}{
			label: fmt.Sprintf("%d stages", depth),
			x:     float64(depth),
			mutate: func(c *core.Config) {
				c.FrontEndStages = depth - 3
			},
		})
	}
	return runSweep(opts, "Figure 12: pipeline depth (harmonic mean IPC)", "pipeline stages", points)
}

// PathHistogram reports the live-path-count distribution for the SEE
// machine (Sec. 5.2's path-utilization analysis: "the average number of
// active paths is only 2.9; SEE uses 3 paths or fewer approximately 75% of
// the time").
type PathHistogram struct {
	Benchmark string
	AvgPaths  float64
	AtMost    map[int]float64 // n -> fraction of cycles with <= n paths
}

// PathUtilization measures path-count statistics under gshare/JRS SEE.
func PathUtilization(opts Options) ([]PathHistogram, error) {
	mat, err := runMatrix(opts, []NamedConfig{{Name: "gshare/JRS", Cfg: core.ConfigSEE()}})
	if err != nil {
		return nil, err
	}
	var out []PathHistogram
	for _, b := range mat.Benchmarks {
		c := mat.Cell(b, "gshare/JRS")
		h := PathHistogram{Benchmark: b, AvgPaths: c.Stats.AvgPaths(), AtMost: make(map[int]float64)}
		for _, n := range []int{1, 2, 3, 4, 5, 8} {
			h.AtMost[n] = c.Stats.PathsAtMost(n)
		}
		out = append(out, h)
	}
	return out, nil
}

// PathReport wraps PathUtilization in a renderable result.
type PathReport struct {
	Histograms []PathHistogram
	Average    float64
}

// Paths runs the path-utilization study of Sec. 5.2.
func Paths(opts Options) (*PathReport, error) {
	hists, err := PathUtilization(opts)
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, h := range hists {
		sum += h.AvgPaths
	}
	return &PathReport{Histograms: hists, Average: sum / float64(len(hists))}, nil
}

// Render formats the path-utilization report.
func (r *PathReport) Render() string {
	var b strings.Builder
	b.WriteString("Path utilization under gshare/JRS (Sec. 5.2)\n")
	fmt.Fprintf(&b, "%-10s %9s %7s %7s %7s %7s\n", "benchmark", "avgpaths", "<=1", "<=2", "<=3", "<=5")
	for _, h := range r.Histograms {
		fmt.Fprintf(&b, "%-10s %9.2f %6.0f%% %6.0f%% %6.0f%% %6.0f%%\n",
			h.Benchmark, h.AvgPaths, 100*h.AtMost[1], 100*h.AtMost[2], 100*h.AtMost[3], 100*h.AtMost[5])
	}
	fmt.Fprintf(&b, "%-10s %9.2f   (paper: 2.9 average, <=3 paths ~75%% of cycles)\n", "average", r.Average)
	return b.String()
}
