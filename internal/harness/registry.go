package harness

// The experiment registry: the single list of named experiments shared by
// cmd/experiments (CLI) and internal/server (polyserve jobs). Both front
// ends resolve names here and render through the same Render methods, so a
// job submitted to the service returns byte-identical text to the CLI.

import (
	"fmt"
	"sort"
	"strings"
)

// Renderable is a structured experiment result that can render itself as
// the paper-style fixed-width text table.
type Renderable interface{ Render() string }

// Experiment pairs an experiment name with its runner.
type Experiment struct {
	Name string
	Run  func(Options) (Renderable, error)
}

// Experiments returns the full registry in canonical (presentation) order:
// Table 1, Figures 8-12, path utilization, the ablations, then the
// extension studies.
func Experiments() []Experiment {
	wrap := func(f func(Options) (*SweepResult, error)) func(Options) (Renderable, error) {
		return func(o Options) (Renderable, error) { return f(o) }
	}
	wrapA := func(f func(Options) (*AblationResult, error)) func(Options) (Renderable, error) {
		return func(o Options) (Renderable, error) { return f(o) }
	}
	return []Experiment{
		{"table1", func(o Options) (Renderable, error) { return Table1(o) }},
		{"fig8", func(o Options) (Renderable, error) { return Figure8(o) }},
		{"fig8-char", func(o Options) (Renderable, error) { return CharTable(o) }},
		{"fig9", wrap(Figure9)},
		{"fig9-tage", wrap(Figure9TAGE)},
		{"fig10", wrap(Figure10)},
		{"fig11", wrap(Figure11)},
		{"fig12", wrap(Figure12)},
		{"paths", func(o Options) (Renderable, error) { return Paths(o) }},
		{"abl-jrswidth", wrapA(AblationJRSWidth)},
		{"abl-ceindex", wrapA(AblationCEIndex)},
		{"abl-spechistory", wrapA(AblationSpecHistory)},
		{"abl-adaptive", wrapA(AblationAdaptive)},
		{"abl-fetchpolicy", wrapA(AblationFetchPolicy)},
		{"abl-eagerness", wrapA(AblationEagerness)},
		{"abl-predictors", wrapA(AblationPredictors)},
		{"abl-resbuses", wrapA(AblationResolutionBuses)},
		{"abl-mrc", wrapA(AblationMRC)},
		{"ext-cache", func(o Options) (Renderable, error) { return ExtensionCacheSensitivity(o) }},
		{"ext-cedesign", func(o Options) (Renderable, error) { return ExtensionCEDesignSpace(o) }},
		{"fig-adaptive", func(o Options) (Renderable, error) { return Adaptive(o) }},
	}
}

// ExperimentNames returns the registered names, sorted.
func ExperimentNames() []string {
	exps := Experiments()
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.Name
	}
	sort.Strings(names)
	return names
}

// RunExperiment resolves a registered experiment by name and runs it.
func RunExperiment(name string, opts Options) (Renderable, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e.Run(opts)
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (valid: %s)", name, strings.Join(ExperimentNames(), ", "))
}
