package harness

import (
	"fmt"
	"strings"

	"repro/internal/btrace"
	"repro/internal/sched"
	"repro/internal/workload"
)

// CharRow is one workload's predictability profile in the Figure 8
// placement table.
type CharRow struct {
	Name         string  `json:"name"`
	Digest       string  `json:"digest"`
	Rate         float64 `json:"rate"`
	MeanBias     float64 `json:"mean_bias"`
	NeighborProb float64 `json:"neighbor_prob"`
	ClusterScore float64 `json:"cluster_score"`
	Placement    float64 `json:"placement"`
	Class        string  `json:"class"`
}

// CharResult is the fig8-char experiment output: every workload family
// characterized and placed on the paper's Figure 8 clustered-vs-isolated
// misprediction spectrum.
type CharResult struct {
	Insts uint64    `json:"insts"`
	Rows  []CharRow `json:"rows"`
}

// CharTable runs the fig8-char experiment: each workload family (the
// Table 1 suite, the extended families, plus any Options.Extra
// trace-derived workloads — or exactly Options.Benchmarks when set) is
// generated and profiled by the btrace characterizer, and placed on the
// Figure 8 spectrum. Characterization is functional (interpreter-driven),
// deterministic, and sharded across Options.Parallelism workers with the
// same byte-identical-output contract as the simulation experiments.
func CharTable(o Options) (*CharResult, error) {
	insts := o.TargetInsts
	if insts == 0 {
		insts = workload.DefaultTargetInsts
	}
	names := o.Benchmarks
	if len(names) == 0 {
		names = append(workload.Names(), extendedNames()...)
		for _, b := range o.Extra {
			names = append(names, b.Spec.Name)
		}
	}
	rows, err := sched.Map(
		sched.Options{Workers: o.parallelism(), Context: o.context()},
		names,
		func(name string, _ int) string { return "char/" + name },
		func(tc *sched.TaskContext, name string) (CharRow, error) {
			bm, err := o.lookup(name)
			if err != nil {
				return CharRow{}, err
			}
			p, err := workload.Generate(bm.Spec)
			if err != nil {
				return CharRow{}, fmt.Errorf("%s: %w", name, err)
			}
			ch, err := btrace.CharacterizeProgram(p, insts, name)
			if err != nil {
				return CharRow{}, fmt.Errorf("%s: %w", name, err)
			}
			return CharRow{
				Name:         name,
				Digest:       ch.Digest[:12],
				Rate:         ch.Rate,
				MeanBias:     ch.MeanBias,
				NeighborProb: ch.NeighborProb,
				ClusterScore: ch.ClusterScore,
				Placement:    ch.Placement,
				Class:        ch.Class,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &CharResult{Insts: insts}
	for _, r := range rows {
		res.Rows = append(res.Rows, r.Value)
	}
	return res, nil
}

func extendedNames() []string {
	var names []string
	for _, b := range workload.Extended(1) {
		names = append(names, b.Spec.Name)
	}
	return names
}

// Render formats the placement table in the paper's presentation style.
func (r *CharResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 placement: workload characterization (%d insts, gshare %d-bit)\n",
		r.Insts, btrace.RefHistBits)
	fmt.Fprintf(&b, "%-16s %12s %9s %9s %9s %9s %11s  %s\n",
		"workload", "digest", "mispred", "bias", "neighbor", "cluster", "placement", "class")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12s %8.2f%% %9.3f %9.3f %9.2f %11.2f  %s\n",
			row.Name, row.Digest, 100*row.Rate, row.MeanBias,
			row.NeighborProb, row.ClusterScore, row.Placement, row.Class)
	}
	b.WriteString("placement: 0 = isolated mispredictions (m88ksim-like), 1 = clustered (go-like)\n")
	return b.String()
}
