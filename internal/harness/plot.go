package harness

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders a SweepResult as an ASCII line chart, one glyph per
// configuration, so cmd/experiments output conveys the figures' shapes
// without external plotting tools.
//
//	5.2 |                          o  o
//	    |              o   o
//	    |      o                        *  *
//	    |  o           *   *  *
//	    |      *
//	2.1 +---------------------------------
//	      64     128    256    512   1024
func (s *SweepResult) Plot(height int) string {
	if height < 4 {
		height = 4
	}
	if len(s.Points) == 0 || len(s.Configs) == 0 {
		return "(no data)\n"
	}
	glyphs := []byte{'o', '*', '+', 'x', '#', '@'}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		for _, c := range s.Configs {
			v := p.IPC[c]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	// One column block per point, wide enough for labels.
	colW := 7
	width := len(s.Points) * colW
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		f := (v - lo) / (hi - lo)
		r := int(math.Round(f * float64(height-1)))
		return height - 1 - r // row 0 is the top
	}
	for pi, p := range s.Points {
		col := pi*colW + colW/2
		for ci, c := range s.Configs {
			g := glyphs[ci%len(glyphs)]
			r := row(p.IPC[c])
			if grid[r][col] == ' ' {
				grid[r][col] = g
			} else {
				// Overlapping series: mark the collision.
				grid[r][col] = '='
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	for r := 0; r < height; r++ {
		label := "      "
		if r == 0 {
			label = fmt.Sprintf("%6.2f", hi)
		} else if r == height-1 {
			label = fmt.Sprintf("%6.2f", lo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "       +%s\n        ", strings.Repeat("-", width))
	for _, p := range s.Points {
		lbl := p.Label
		if i := strings.IndexByte(lbl, ' '); i > 0 {
			lbl = lbl[:i] // first token: the numeric part
		}
		fmt.Fprintf(&b, "%-*s", colW, lbl)
	}
	b.WriteByte('\n')
	for ci, c := range s.Configs {
		fmt.Fprintf(&b, "        %c %s\n", glyphs[ci%len(glyphs)], c)
	}
	return b.String()
}
