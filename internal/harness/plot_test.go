package harness

import (
	"strings"
	"testing"
)

func plotFixture() *SweepResult {
	return &SweepResult{
		Title:   "fixture",
		XLabel:  "x",
		Configs: []string{"up", "down"},
		Points: []SweepPoint{
			{Label: "1 a", IPC: map[string]float64{"up": 1.0, "down": 4.0}},
			{Label: "2 b", IPC: map[string]float64{"up": 2.0, "down": 3.0}},
			{Label: "3 c", IPC: map[string]float64{"up": 3.0, "down": 2.0}},
			{Label: "4 d", IPC: map[string]float64{"up": 4.0, "down": 1.0}},
		},
	}
}

func TestPlotRendersSeries(t *testing.T) {
	out := plotFixture().Plot(8)
	for _, want := range []string{"fixture", "o up", "* down", "4.00", "1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The rising series' glyph must appear higher (earlier line) at the
	// last point than at the first.
	lines := strings.Split(out, "\n")
	firstO, lastO := -1, -1
	for i, line := range lines {
		body := line
		if idx := strings.IndexByte(line, '|'); idx >= 0 {
			body = line[idx:]
		} else {
			continue
		}
		if strings.Contains(body, "o") {
			if firstO == -1 {
				firstO = i
			}
			lastO = i
		}
	}
	if firstO == -1 || firstO == lastO {
		t.Fatalf("rising series not spread across rows:\n%s", out)
	}
}

func TestPlotHandlesDegenerateData(t *testing.T) {
	s := &SweepResult{Title: "t", Configs: []string{"a"},
		Points: []SweepPoint{{Label: "p", IPC: map[string]float64{"a": 2}}}}
	out := s.Plot(2) // height clamps up
	if !strings.Contains(out, "o a") {
		t.Errorf("degenerate plot: %s", out)
	}
	empty := &SweepResult{Title: "e"}
	if !strings.Contains(empty.Plot(5), "no data") {
		t.Error("empty plot should say so")
	}
}

func TestPlotMarksCollisions(t *testing.T) {
	s := &SweepResult{
		Title:   "c",
		Configs: []string{"a", "b"},
		Points: []SweepPoint{
			{Label: "1", IPC: map[string]float64{"a": 1, "b": 1}},
			{Label: "2", IPC: map[string]float64{"a": 2, "b": 2}},
		},
	}
	if !strings.Contains(s.Plot(6), "=") {
		t.Error("coincident series should be marked with =")
	}
}
