package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// AblationResult compares a small set of design variants by harmonic-mean
// IPC (and PVN where the variant concerns the confidence estimator).
type AblationResult struct {
	Title    string
	Variants []AblationVariant
}

// AblationVariant is one design point of an ablation.
type AblationVariant struct {
	Name  string
	HMean float64
	// MeanPVN is the arithmetic-mean PVN across benchmarks (only
	// meaningful for confidence-estimator ablations; 0 otherwise).
	MeanPVN float64
	// MeanMispredict is the mean misprediction rate across benchmarks.
	MeanMispredict float64
}

// Render formats the ablation.
func (a *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-34s %10s %10s %12s\n", a.Title, "variant", "hmean IPC", "mean PVN", "mean mispred")
	for _, v := range a.Variants {
		fmt.Fprintf(&b, "%-34s %10.3f %9.1f%% %11.2f%%\n", v.Name, v.HMean, 100*v.MeanPVN, 100*v.MeanMispredict)
	}
	return b.String()
}

func runAblation(opts Options, title string, ncs []NamedConfig) (*AblationResult, error) {
	mat, err := runMatrix(opts, ncs)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: title}
	for _, c := range mat.Configs {
		var pvnSum, misSum float64
		for _, b := range mat.Benchmarks {
			cell := mat.Cell(b, c)
			pvnSum += cell.Stats.PVN()
			misSum += cell.Stats.MispredictRate()
		}
		n := float64(len(mat.Benchmarks))
		res.Variants = append(res.Variants, AblationVariant{
			Name:           c,
			HMean:          mat.HarmonicMean(c),
			MeanPVN:        pvnSum / n,
			MeanMispredict: misSum / n,
		})
	}
	return res, nil
}

// AblationJRSWidth compares 1-bit vs 4-bit JRS resetting counters. The
// paper (Sec. 4.2): "rather than the 4-bit counters advocated by Jacobsen
// et al, we found that 1-bit counters result in the best performance for
// our application" because they achieve much higher PVN.
func AblationJRSWidth(opts Options) (*AblationResult, error) {
	c1 := core.ConfigSEE()
	c4 := core.ConfigSEE()
	c4.Confidence.CtrBits = 4
	c4mid := core.ConfigSEE()
	c4mid.Confidence.CtrBits = 4
	c4mid.Confidence.Threshold = 8
	return runAblation(opts, "Ablation: JRS counter width (paper Sec. 4.2)", []NamedConfig{
		{Name: "JRS 1-bit (paper choice)", Cfg: c1},
		{Name: "JRS 4-bit, threshold=saturation", Cfg: c4},
		{Name: "JRS 4-bit, threshold=8", Cfg: c4mid},
	})
}

// AblationCEIndex compares the paper's enhanced confidence-estimator
// indexing (speculative outcome of the current branch folded into the
// history) against the original JRS indexing.
func AblationCEIndex(opts Options) (*AblationResult, error) {
	enh := core.ConfigSEE()
	orig := core.ConfigSEE()
	orig.Confidence.EnhancedIndex = false
	return runAblation(opts, "Ablation: confidence estimator indexing (paper Sec. 4.2)", []NamedConfig{
		{Name: "enhanced index (prediction in history)", Cfg: enh},
		{Name: "original JRS index", Cfg: orig},
	})
}

// AblationSpecHistory compares speculative vs commit-time global history
// update for the branch predictor (paper Sec. 4.2: "speculative history
// update improved the overall branch prediction accuracy by approximately
// 1%").
func AblationSpecHistory(opts Options) (*AblationResult, error) {
	spec := core.ConfigMonopath()
	nonspec := core.ConfigMonopath()
	nonspec.NonSpeculativeHistory = true
	return runAblation(opts, "Ablation: speculative history update (paper Sec. 4.2)", []NamedConfig{
		{Name: "speculative update (baseline)", Cfg: spec},
		{Name: "commit-time update", Cfg: nonspec},
	})
}

// AblationAdaptive evaluates the PVN-monitoring adaptive estimator the
// paper proposes after the m88ksim anomaly (Sec. 5.1: "a successful branch
// confidence estimator for SEE should be able to monitor its performance
// dynamically and revert back to strict monopath execution").
func AblationAdaptive(opts Options) (*AblationResult, error) {
	return runAblation(opts, "Extension: adaptive PVN-monitoring estimator (paper Sec. 5.1)", []NamedConfig{
		{Name: "monopath", Cfg: core.ConfigMonopath()},
		{Name: "gshare/JRS", Cfg: core.ConfigSEE()},
		{Name: "gshare/JRS+PVN-monitor", Cfg: core.ConfigSEEAdaptive()},
	})
}

// AblationFetchPolicy compares the exponential-decay fetch arbitration
// against round-robin (fetch policy is the paper's named future-work item,
// Sec. 3.2.6/6).
func AblationFetchPolicy(opts Options) (*AblationResult, error) {
	exp := core.ConfigSEE()
	rr := core.ConfigSEE()
	rr.FetchPolicy = pipeline.FetchRoundRobin
	return runAblation(opts, "Ablation: multi-path fetch arbitration (paper future work)", []NamedConfig{
		{Name: "exponential decay (paper)", Cfg: exp},
		{Name: "round robin", Cfg: rr},
	})
}

// AblationEagerness compares the JRS-guided selective policy against
// always-eager divergence, isolating the value of confidence estimation.
func AblationEagerness(opts Options) (*AblationResult, error) {
	return runAblation(opts, "Ablation: selectivity of eager execution", []NamedConfig{
		{Name: "monopath (never diverge)", Cfg: core.ConfigMonopath()},
		{Name: "gshare/JRS (selective)", Cfg: core.ConfigSEE()},
		{Name: "always diverge (greedy eager)", Cfg: func() core.Config {
			c := core.ConfigSEE()
			c.Confidence.Kind = pipeline.ConfAlwaysLow
			return c
		}()},
	})
}

// AblationPredictors compares predictor families under both execution
// models at equal table budget: SEE's benefit shrinks as the predictor
// improves (fewer mispredictions to save) but persists across families.
func AblationPredictors(opts Options) (*AblationResult, error) {
	mk := func(kind pipeline.PredictorKind, mode pipeline.Mode) core.Config {
		var c core.Config
		if mode == pipeline.Monopath {
			c = core.ConfigMonopath()
		} else {
			c = core.ConfigSEE()
		}
		c.Predictor.Kind = kind
		return c
	}
	return runAblation(opts, "Ablation: predictor family (monopath vs SEE)", []NamedConfig{
		{Name: "static BTFNT / monopath", Cfg: mk(pipeline.PredStatic, pipeline.Monopath)},
		{Name: "static BTFNT / SEE", Cfg: mk(pipeline.PredStatic, pipeline.PolyPath)},
		{Name: "bimodal / monopath", Cfg: mk(pipeline.PredBimodal, pipeline.Monopath)},
		{Name: "bimodal / SEE", Cfg: mk(pipeline.PredBimodal, pipeline.PolyPath)},
		{Name: "local 2-level / monopath", Cfg: mk(pipeline.PredLocal, pipeline.Monopath)},
		{Name: "local 2-level / SEE", Cfg: mk(pipeline.PredLocal, pipeline.PolyPath)},
		{Name: "gshare / monopath", Cfg: mk(pipeline.PredGshare, pipeline.Monopath)},
		{Name: "gshare / SEE", Cfg: mk(pipeline.PredGshare, pipeline.PolyPath)},
		{Name: "combining / monopath", Cfg: mk(pipeline.PredCombining, pipeline.Monopath)},
		{Name: "combining / SEE", Cfg: mk(pipeline.PredCombining, pipeline.PolyPath)},
	})
}

// AblationResolutionBuses sweeps the number of branch resolution buses
// (Sec. 3.2.3 notes multiple buses are needed for multiple resolutions
// per cycle).
func AblationResolutionBuses(opts Options) (*AblationResult, error) {
	mk := func(n int) core.Config {
		c := core.ConfigSEE()
		c.ResolutionBuses = n
		return c
	}
	return runAblation(opts, "Ablation: branch resolution buses (paper Sec. 3.2.3)", []NamedConfig{
		{Name: "1 bus", Cfg: mk(1)},
		{Name: "2 buses", Cfg: mk(2)},
		{Name: "4 buses", Cfg: mk(4)},
		{Name: "unlimited", Cfg: mk(0)},
	})
}

// AblationMRC compares the misprediction-recovery-cache comparator
// (related work [1] in the paper) against monopath and SEE: MRC shortens
// each recovery, SEE removes caught recoveries entirely, and the two
// compose.
func AblationMRC(opts Options) (*AblationResult, error) {
	monoMRC := core.ConfigMonopath()
	monoMRC.EnableMRC = true
	seeMRC := core.ConfigSEE()
	seeMRC.EnableMRC = true
	return runAblation(opts, "Comparator: misprediction recovery cache (related work [1])", []NamedConfig{
		{Name: "monopath", Cfg: core.ConfigMonopath()},
		{Name: "monopath + MRC", Cfg: monoMRC},
		{Name: "gshare/JRS (SEE)", Cfg: core.ConfigSEE()},
		{Name: "SEE + MRC", Cfg: seeMRC},
	})
}
